// Transient recovery: the paper's headline scenario, end to end.
//
// At t=0 a transient fault hits: every node's protocol state is scrambled
// (bogus i_values, last(G)/last(G,m), ready flags, phantom broadcast
// instances, even "already returned" beliefs), clocks lose any common
// reference, forged messages sit on the wire, and the network itself drops
// / corrupts / delays until ι0 = 10ms. No node is restarted and no outside
// intervention happens.
//
// A correct General then proposes at a steady cadence. The example prints
// the timeline: which proposals fail or half-fail during convergence, and
// from when on every proposal yields a unanimous correct decision — well
// before the paper's worst-case bound ∆stb.
//
// Build & run:   ./build/examples/transient_recovery
#include <cstdio>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace ssbft;

  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);             // 2 Byzantine nodes, permanently
  sc.adversary = AdversaryKind::kNoise;
  sc.transient_scramble = true;       // arbitrary state at every node
  sc.transient.spurious_per_node = 64;
  sc.chaos_period = milliseconds(10); // network faulty until ι0
  sc.seed = 2026;

  const Params params = sc.make_params();
  const Duration slot = params.delta_0() + 5 * params.d();
  const int kRounds = 30;
  for (int i = 0; i < kRounds; ++i) {
    sc.with_proposal(sc.chaos_period + milliseconds(1) + i * slot, 0,
                     1000 + Value(i));
  }
  sc.run_for = sc.chaos_period + kRounds * slot + milliseconds(100);

  Cluster cluster(sc);
  cluster.run();

  std::printf("transient fault at t=0; network coherent from ι0=%.1fms; "
              "∆stb bound = %.1fms\n\n",
              sc.chaos_period.millis(), params.delta_stb().millis());
  std::printf("%-8s %-12s %-10s %-28s\n", "round", "proposed at", "value",
              "outcome");

  const auto execs = cluster_executions(cluster.decisions(), cluster.params());
  Duration convergence = Duration::zero();
  bool converged = false;
  for (int i = 0; i < kRounds; ++i) {
    const Value value = 1000 + Value(i);
    const RealTime at =
        RealTime::zero() + sc.chaos_period + milliseconds(1) + i * slot;
    const char* outcome = "no decision (still converging)";
    for (const auto& e : execs) {
      if (e.general.node != 0) continue;
      if (e.agreed_value().value_or(kBottom) != value) continue;
      if (e.decided_count() == cluster.correct_count()) {
        outcome = "unanimous decision";
        if (!converged) {
          converged = true;
          convergence = e.first_return() - (RealTime::zero() + sc.chaos_period);
        }
      } else {
        outcome = "partial (some nodes still dirty)";
      }
      break;
    }
    std::printf("%-8d %-12.1f %-10llu %-28s\n", i, at.millis(),
                static_cast<unsigned long long>(value), outcome);
  }

  if (converged) {
    std::printf("\nconverged %.1fms after ι0 (paper bound ∆stb = %.1fms, "
                "%.1f%% of it)\n",
                convergence.millis(), params.delta_stb().millis(),
                100.0 * double(convergence.ns()) /
                    double(params.delta_stb().ns()));
  } else {
    std::printf("\nDID NOT CONVERGE — this would be a bug\n");
  }
  return converged ? 0 : 1;
}
