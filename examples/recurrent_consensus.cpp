// Recurrent consensus: a replicated command log driven by rotating
// Generals.
//
// The paper's protocol runs one instance per General and supports recurrent
// invocations (§3). This example uses it the way a replicated service
// would: nodes 0..2 take turns proposing commands; every correct node
// appends each decided (general, value) pair to its local log; at the end
// the logs must be identical — with two Byzantine nodes flooding noise the
// whole time.
//
// Build & run:   ./build/examples/recurrent_consensus
#include <cstdio>
#include <map>
#include <vector>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace ssbft;

  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.adversary = AdversaryKind::kNoise;
  sc.seed = 7;

  const Params params = sc.make_params();
  // A correct General must space initiations by ∆0 (different values).
  const Duration slot = params.delta_0() + 5 * params.d();
  const int kCommands = 12;
  for (int i = 0; i < kCommands; ++i) {
    const NodeId general = NodeId(i % 3);          // rotate the proposer
    const Value command = 0xC0DE0000 + Value(i);   // "command id"
    sc.with_proposal(milliseconds(5) + i * slot, general, command);
  }
  sc.run_for = milliseconds(5) + kCommands * slot + milliseconds(100);

  Cluster cluster(sc);
  cluster.run();

  // Build each node's committed log, ordered by its own decision times.
  std::map<NodeId, std::vector<std::pair<NodeId, Value>>> logs;
  for (const auto& d : cluster.decisions()) {
    if (d.decision.decided()) {
      logs[d.decision.node].emplace_back(d.decision.general.node,
                                         d.decision.value);
    }
  }

  std::printf("committed log per node (general:command)\n");
  bool all_equal = true;
  const auto& reference = logs.begin()->second;
  for (const auto& [node, log] : logs) {
    std::printf("  node %u:", node);
    for (const auto& [general, value] : log) {
      std::printf(" %u:%llx", general, static_cast<unsigned long long>(value));
    }
    std::printf("\n");
    if (log != reference) all_equal = false;
  }

  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  std::printf("\n%d commands proposed, %u executions decided, logs %s, "
              "agreement violations %u\n",
              kCommands, m.executions, all_equal ? "IDENTICAL" : "DIVERGED",
              m.agreement_violations);
  return (all_equal && m.agreement_violations == 0 &&
          m.executions == std::uint32_t(kCommands))
             ? 0
             : 1;
}
