// Byzantine General: what a malicious initiator can and cannot do.
//
// The General (node 0) equivocates — it tells one victim a different value
// than everyone else — and two more Byzantine nodes assist with forged
// support/approve/ready traffic. The paper's guarantee is *Agreement*, not
// validity: correct nodes may or may not associate a value with the faulty
// initiation, but if any correct node decides, all decide the same value
// within 3d of each other and with τG estimates within 6d (Timeliness-1).
//
// Build & run:   ./build/examples/byzantine_general
#include <cstdio>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace ssbft;

  Scenario sc;
  sc.n = 10;
  sc.f = 3;
  sc.byz_nodes = {0, 9, 8};  // node 0 is the equivocating General
  sc.adversary = AdversaryKind::kEquivocatingGeneral;
  sc.equivocate_v0 = 111;
  sc.equivocate_v1 = 222;
  sc.equivocate_split = 9;  // node 8 (byz) and the victim see v1
  sc.run_for = milliseconds(400);
  sc.seed = 99;

  Cluster cluster(sc);
  cluster.run();

  std::printf("equivocating General sent value 111 to most nodes, 222 to a "
              "victim; assisted by 2 Byzantine helpers\n\n");
  std::printf("%-6s %-8s %-14s %-14s\n", "node", "value", "decided (ms)",
              "rt(tauG) (ms)");
  for (const auto& d : cluster.decisions()) {
    std::printf("%-6u %-8llu %-14.3f %-14.3f\n", d.decision.node,
                static_cast<unsigned long long>(d.decision.value),
                d.real_at.millis(), d.tau_g_real.millis());
  }

  const auto execs = cluster_executions(cluster.decisions(), cluster.params());
  bool ok = true;
  for (const auto& e : execs) {
    if (!e.agreement_holds()) ok = false;
    if (e.decided_count() > 0 && e.decided_count() != cluster.correct_count()) {
      ok = false;  // relay: a decision anywhere means decisions everywhere
    }
    if (e.decision_skew() > 3 * cluster.params().d()) ok = false;
    if (e.tau_g_skew() > 6 * cluster.params().d()) ok = false;
  }
  if (execs.empty()) {
    std::printf("\nno correct node recognized the initiation — an allowed "
                "outcome for a faulty General\n");
  }
  std::printf("\nAgreement %s: %s\n", ok ? "HELD" : "VIOLATED",
              ok ? "correct nodes never split, skews within paper bounds"
                 : "bug!");
  return ok ? 0 : 1;
}
