// Replicated key-value store — a domain application of the replicated log,
// deployed through the unified Scenario → Cluster path
// (stack = kReplicatedLog).
//
// Commands are 32-bit words: op(4 bits) ‖ key(12 bits) ‖ value(16 bits).
// Each correct node applies committed entries in slot order to a local
// std::map; Agreement makes every replica's materialized state identical,
// with 2/7 nodes Byzantine and clients submitting through different nodes.
//
// Build & run:   ./build/examples/replicated_kv
#include <cstdio>
#include <map>
#include <vector>

#include "app/replicated_log.hpp"
#include "harness/runner.hpp"

namespace {

using namespace ssbft;

constexpr std::uint32_t kOpSet = 1;
constexpr std::uint32_t kOpDel = 2;

std::uint32_t make_cmd(std::uint32_t op, std::uint32_t key,
                       std::uint32_t value) {
  return (op << 28) | ((key & 0xFFF) << 16) | (value & 0xFFFF);
}

struct KvReplica {
  std::map<std::uint32_t, std::uint32_t> state;

  void apply(std::uint32_t cmd) {
    const std::uint32_t op = cmd >> 28;
    const std::uint32_t key = (cmd >> 16) & 0xFFF;
    const std::uint32_t value = cmd & 0xFFFF;
    if (op == kOpSet) {
      state[key] = value;
    } else if (op == kOpDel) {
      state.erase(key);
    }
  }
};

}  // namespace

int main() {
  Scenario sc;
  sc.stack = StackKind::kReplicatedLog;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);  // two Byzantine replicas flooding noise
  sc.adversary = AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  sc.seed = 4242;

  // Clients hit different replicas: sets, an overwrite, and a delete.
  sc.with_proposal(Duration::zero(), 0, make_cmd(kOpSet, 1, 100))  // x := 100
      .with_proposal(Duration::zero(), 1, make_cmd(kOpSet, 2, 200))  // y := 200
      .with_proposal(Duration::zero(), 2, make_cmd(kOpSet, 1, 150))  // x := 150
      .with_proposal(Duration::zero(), 3, make_cmd(kOpSet, 3, 300))  // z := 300
      .with_proposal(Duration::zero(), 4, make_cmd(kOpDel, 2, 0));   // del y

  Cluster cluster(sc);
  cluster.start();
  cluster.world().run_until(
      RealTime::zero() +
      30 * cluster.node<ReplicatedLogNode>(0)->slot_period());

  // Materialize each replica's state from its committed log (slot order).
  std::vector<KvReplica> replicas(5);
  for (NodeId i = 0; i < 5; ++i) {
    for (const auto& [slot, entry] :
         cluster.node<ReplicatedLogNode>(i)->log()) {
      replicas[i].apply(entry.command);
    }
  }

  std::printf("replica state after %zu committed entries:\n",
              cluster.node<ReplicatedLogNode>(0)->log().size());
  bool identical = true;
  for (NodeId i = 0; i < 5; ++i) {
    std::printf("  node %u:", i);
    for (const auto& [key, value] : replicas[i].state) {
      std::printf(" k%u=%u", key, value);
    }
    std::printf("\n");
    if (replicas[i].state != replicas[0].state) identical = false;
  }

  // Expected materialized state: k1=150, k3=300 (k2 deleted). The exact
  // overwrite order of k1 depends on slot order, but it is the SAME order
  // everywhere — that is the guarantee. Check identity plus sanity.
  const bool sane = replicas[0].state.count(3) == 1 &&
                    replicas[0].state.count(2) == 0 &&
                    replicas[0].state.count(1) == 1;
  std::printf("\nreplicas %s, state %s\n",
              identical ? "IDENTICAL" : "DIVERGED",
              sane ? "as expected" : "UNEXPECTED");
  return identical && sane ? 0 : 1;
}
