// Quickstart: 7 nodes, 2 Byzantine, one correct General proposing a value.
//
// Demonstrates the minimal public-API flow — the same one every protocol
// stack uses:
//   Scenario (pick a StackKind, describe the world) → Cluster → run →
//   inspect the probe's streams.
//
// `Scenario.stack` selects which layer of the paper's construction the
// correct nodes run: kAgree (ss-Byz-Agree, shown here), kPulse,
// kClockSync, kReplicatedLog, kPipelinedLog, or kBaselineTps. Swapping the
// stack swaps the protocol AND the metrics stream (decisions, pulses,
// clock snapshots, committed entries) without touching the deployment
// code — see examples/clock_sync_demo.cpp and examples/pipelined_bank.cpp
// for the same flow on other stacks.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace ssbft;

  Scenario sc;
  sc.stack = StackKind::kAgree;  // the base agreement stack (the default)
  sc.n = 7;                 // cluster size
  sc.f = 2;                 // designed fault tolerance (n > 3f)
  sc.with_tail_faults(2);   // nodes 5 and 6 are actually Byzantine
  sc.adversary = AdversaryKind::kNoise;  // they flood random junk
  sc.delta = milliseconds(1);            // network delay bound δ
  sc.seed = 2024;

  // Node 0, a correct General, proposes value 42 at t = 5ms.
  sc.with_proposal(milliseconds(5), /*general=*/0, /*value=*/42);
  sc.run_for = milliseconds(300);

  Cluster cluster(sc);
  cluster.run();

  std::printf("d = %.3f ms, Phi = %.3f ms, Delta_agr = %.3f ms\n\n",
              cluster.params().d().millis(), cluster.params().phi().millis(),
              cluster.params().delta_agr().millis());

  std::printf("%-6s %-10s %-8s %-16s\n", "node", "value", "general",
              "real time (ms)");
  for (const auto& d : cluster.decisions()) {
    std::printf("%-6u %-10llu %-8u %-16.3f\n", d.decision.node,
                static_cast<unsigned long long>(d.decision.value),
                d.decision.general.node, d.real_at.millis());
  }

  const auto metrics = evaluate_run(cluster.decisions(), cluster.proposals(),
                                    cluster.correct_count(), cluster.params());
  std::printf("\nagreement violations: %u, validity violations: %u\n",
              metrics.agreement_violations, metrics.validity_violations);
  std::printf("decision skew: %.3f ms (paper bound 2d = %.3f ms)\n",
              metrics.max_decision_skew.millis(),
              (2 * cluster.params().d()).millis());
  return metrics.agreement_violations + metrics.validity_violations == 0 ? 0
                                                                         : 1;
}
