// A replicated bank ledger on the pipelined log — the footnote-9 payoff in
// application form, deployed through the unified Scenario → Cluster path
// (stack = kPipelinedLog).
//
// Four replicas each accept deposit/withdraw commands from local clients
// (the scenario's proposal list routes each command through a replica) and
// submit them to the pipelined replicated log (depth 4: four slots in
// flight through concurrent indexed agreement instances). Every replica's
// delivery stream — read back from the cluster's probe — applies, in slot
// order, to its copy of the accounts; and because delivery sequences are
// identical at all correct replicas, so are the final balances, even though
// commands raced each other across four concurrent agreements.
//
// Build & run:   ./build/examples/pipelined_bank
#include <array>
#include <cstdio>
#include <map>
#include <vector>

#include "app/pipelined_log.hpp"
#include "harness/runner.hpp"

using namespace ssbft;

namespace {

// Command encoding: account (8 bits) | signed amount (16 bits).
std::uint32_t make_cmd(std::uint32_t account, std::int16_t amount) {
  return (account << 16) | std::uint16_t(amount);
}
void apply(std::map<std::uint32_t, std::int64_t>& accounts,
           std::uint32_t cmd) {
  accounts[cmd >> 16] += std::int16_t(cmd & 0xFFFF);
}

}  // namespace

int main() {
  constexpr std::uint32_t kN = 4, kF = 1, kDepth = 4;

  Scenario sc;
  sc.stack = StackKind::kPipelinedLog;
  sc.n = kN;
  sc.f = kF;
  sc.pipeline.depth = kDepth;
  sc.seed = 17;

  // Client workload: deposits and withdrawals hitting different replicas.
  struct Tx { NodeId via; std::uint32_t account; std::int16_t amount; };
  const std::vector<Tx> workload = {
      {0, 1, +500}, {1, 1, -120}, {2, 2, +900}, {3, 1, +75},
      {0, 2, -300}, {1, 3, +42},  {2, 1, -55},  {3, 2, +10},
      {0, 3, +7},   {1, 2, -1},
  };
  for (const auto& tx : workload) {
    sc.with_proposal(Duration::zero(), tx.via,
                     make_cmd(tx.account, tx.amount));
  }

  Cluster cluster(sc);
  cluster.start();
  cluster.world().run_for(
      6 * cluster.node<PipelinedLogNode>(0)->slot_period());

  // Each replica's applied state, rebuilt from its delivery stream.
  std::array<std::map<std::uint32_t, std::int64_t>, kN> ledgers;
  std::array<std::vector<PipelinedEntry>, kN> streams;
  for (const auto& d : cluster.probe().deliveries()) {
    streams[d.node].push_back(d.entry);
    if (!d.entry.skipped) apply(ledgers[d.node], d.entry.command);
  }

  std::printf("pipeline depth %u, slot period %.1f ms\n\n", kDepth,
              cluster.node<PipelinedLogNode>(0)->slot_period().millis());
  std::printf("replica 0 delivery stream (slot order):\n");
  for (const auto& e : streams[0]) {
    if (e.skipped) {
      std::printf("  slot %2llu  [skipped: proposer %u idle]\n",
                  static_cast<unsigned long long>(e.slot), e.proposer);
    } else {
      std::printf("  slot %2llu  account %u %+d  (via replica %u)\n",
                  static_cast<unsigned long long>(e.slot), e.command >> 16,
                  int(std::int16_t(e.command & 0xFFFF)), e.proposer);
    }
  }

  std::printf("\nfinal balances per replica:\n");
  std::printf("%-10s", "account");
  for (NodeId i = 0; i < kN; ++i) std::printf("  replica %u", i);
  std::printf("\n");
  for (std::uint32_t account = 1; account <= 3; ++account) {
    std::printf("%-10u", account);
    for (NodeId i = 0; i < kN; ++i) {
      std::printf("  %9lld", static_cast<long long>(ledgers[i][account]));
    }
    std::printf("\n");
  }

  bool identical = true;
  for (NodeId i = 1; i < kN; ++i) {
    if (ledgers[i] != ledgers[0]) identical = false;
  }
  std::printf("\nledgers identical at all replicas: %s\n",
              identical ? "yes" : "NO — agreement broken?!");
  return identical ? 0 : 1;
}
