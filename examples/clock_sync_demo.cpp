// Synchronized, self-stabilizing cluster clocks — the paper's companion
// application (its refs [5], [6]): agreement pulses make clock
// synchronization Byzantine-tolerant AND self-stabilizing.
//
// The demo runs 7 nodes (2 Byzantine), lets the logical clocks synchronize,
// then hits EVERY node with a transient fault that scrambles clock and
// protocol state — and shows the clocks re-converging on their own.
//
// Build & run:   ./build/examples/clock_sync_demo
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "adversary/adversaries.hpp"
#include "clocksync/clock_sync.hpp"
#include "sim/world.hpp"

using namespace ssbft;

namespace {

Duration skew(const std::vector<ClockSyncNode*>& nodes) {
  Duration worst = Duration::zero();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == nullptr || !nodes[i]->synchronized()) continue;
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[j] == nullptr || !nodes[j]->synchronized()) continue;
      worst = std::max(worst, abs(nodes[i]->clock() - nodes[j]->clock()));
    }
  }
  return worst;
}

void print_state(const World& world, const std::vector<ClockSyncNode*>& nodes,
                 const char* label) {
  std::printf("t=%8.1f ms  %-28s", world.now().millis(), label);
  for (const auto* node : nodes) {
    if (node == nullptr) {
      std::printf("  [byz]   ");
    } else if (!node->synchronized()) {
      std::printf("  [unsync]");
    } else {
      std::printf("  %8.2f", node->clock().millis());
    }
  }
  std::printf("   skew=%.0f us\n", skew(nodes).micros() * 1e-3 * 1e3);
}

}  // namespace

int main() {
  constexpr std::uint32_t kN = 7, kF = 2;

  WorldConfig wc;
  wc.n = kN;
  wc.seed = 7;
  World world(wc);
  Params params{kN, kF, wc.d_bound()};

  std::vector<ClockSyncNode*> nodes(kN, nullptr);
  for (NodeId i = 0; i < kN; ++i) {
    if (i >= kN - kF) {  // the last two nodes are Byzantine junk-flooders
      world.set_behavior(i,
                         std::make_unique<RandomNoiseAdversary>(milliseconds(2)));
      continue;
    }
    auto node = std::make_unique<ClockSyncNode>(params, ClockSyncConfig{});
    nodes[i] = node.get();
    world.set_behavior(i, std::move(node));
  }

  world.start();
  const Duration cycle = nodes[0]->cycle();
  std::printf("pulse cycle = %.1f ms, precision bound = %.0f us\n\n",
              cycle.millis(), nodes[0]->precision_bound().micros());
  std::printf("%-14s %-28s  per-node logical clocks (ms)\n", "", "");

  print_state(world, nodes, "cold start");
  for (int i = 0; i < 4; ++i) {
    world.run_for(cycle);
    print_state(world, nodes, i == 0 ? "first pulses" : "running");
  }

  std::printf("\n*** transient fault: scrambling ALL nodes' state ***\n\n");
  for (NodeId i = 0; i < kN; ++i) world.scramble_node(i);
  print_state(world, nodes, "immediately after fault");

  for (int i = 0; i < 6; ++i) {
    world.run_for(cycle);
    print_state(world, nodes, "self-stabilizing...");
  }

  std::printf("\nfinal skew: %.0f us (bound %.0f us) — no restart, no "
              "operator, just the protocol.\n",
              skew(nodes).micros(), nodes[0]->precision_bound().micros());
  return 0;
}
