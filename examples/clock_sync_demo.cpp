// Synchronized, self-stabilizing cluster clocks — the paper's companion
// application (its refs [5], [6]): agreement pulses make clock
// synchronization Byzantine-tolerant AND self-stabilizing.
//
// The demo deploys the clock-sync stack through the unified
// Scenario → Cluster path (stack = kClockSync): 7 nodes (2 Byzantine),
// lets the logical clocks synchronize, then hits EVERY node with a
// transient fault that scrambles clock and protocol state — and shows the
// clocks re-converging on their own.
//
// Build & run:   ./build/examples/clock_sync_demo
#include <cstdio>

#include "clocksync/clock_sync.hpp"
#include "harness/metrics.hpp"
#include "harness/runner.hpp"

using namespace ssbft;

namespace {

void print_state(Cluster& cluster, const char* label) {
  std::printf("t=%8.1f ms  %-28s", cluster.world().now().millis(), label);
  for (NodeId i = 0; i < cluster.scenario().n; ++i) {
    const auto* node = cluster.node<ClockSyncNode>(i);
    if (node == nullptr) {
      std::printf("  [byz]   ");
    } else if (!node->synchronized()) {
      std::printf("  [unsync]");
    } else {
      std::printf("  %8.2f", node->clock().millis());
    }
  }
  std::printf("   skew=%.0f us\n", clock_skew(cluster).micros() * 1e-3 * 1e3);
}

}  // namespace

int main() {
  Scenario sc;
  sc.stack = StackKind::kClockSync;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);  // the last two nodes are Byzantine junk-flooders
  sc.adversary = AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  sc.seed = 7;

  Cluster cluster(sc);
  cluster.start();
  const Duration cycle = cluster.node<ClockSyncNode>(0)->cycle();
  const Duration bound = cluster.node<ClockSyncNode>(0)->precision_bound();
  std::printf("pulse cycle = %.1f ms, precision bound = %.0f us\n\n",
              cycle.millis(), bound.micros());
  std::printf("%-14s %-28s  per-node logical clocks (ms)\n", "", "");

  print_state(cluster, "cold start");
  for (int i = 0; i < 4; ++i) {
    cluster.world().run_for(cycle);
    print_state(cluster, i == 0 ? "first pulses" : "running");
  }

  std::printf("\n*** transient fault: scrambling ALL nodes' state ***\n\n");
  for (NodeId i = 0; i < sc.n; ++i) cluster.world().scramble_node(i);
  print_state(cluster, "immediately after fault");

  for (int i = 0; i < 6; ++i) {
    cluster.world().run_for(cycle);
    print_state(cluster, "self-stabilizing...");
  }

  std::printf("\nfinal skew: %.0f us (bound %.0f us) — no restart, no "
              "operator, just the protocol. (%zu pulses, %zu clock snaps "
              "recorded by the probe.)\n",
              clock_skew(cluster).micros(), bound.micros(),
              cluster.probe().pulses().size(),
              cluster.probe().adjustments().size());
  return 0;
}
