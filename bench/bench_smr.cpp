// E12 — State-machine replication throughput: sequential slots vs the
// footnote-9 pipeline. Both designs deploy through the unified
// Scenario → Cluster path (stack = kReplicatedLog / kPipelinedLog); the
// workload is the scenario's proposal list and commits/deliveries are read
// back from the cluster's probe.
//
// The sequential replicated log settles one slot at a time, so its rate is
// bounded by one agreement latency per command. The pipelined log keeps
// `depth` slots in flight through concurrent indexed instances (footnote 9)
// — throughput should scale with depth until the agreement traffic itself
// saturates the cluster.
//
// Reported: commands committed per second (measured at node 0 over a fixed
// simulated horizon under an over-subscribed workload) and the
// depth-scaling curve.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

constexpr std::uint32_t kCommandsPerNode = 100;

struct SmrResult {
  std::size_t committed = 0;
  double horizon_seconds = 0;
  [[nodiscard]] double throughput() const {
    return horizon_seconds > 0 ? double(committed) / horizon_seconds : 0;
  }
};

/// Over-subscribed workload: every node submits kCommandsPerNode commands
/// up front, through the scenario's unified proposal list.
void add_workload(Scenario& sc) {
  for (NodeId i = 0; i < sc.n; ++i) {
    for (std::uint32_t c = 0; c < kCommandsPerNode; ++c) {
      sc.with_proposal(Duration::zero(), i, 1000 * i + c);
    }
  }
}

SmrResult run_pipelined(std::uint32_t n, std::uint32_t f, std::uint32_t depth,
                        Duration horizon, std::uint64_t seed) {
  Scenario sc;
  sc.stack = StackKind::kPipelinedLog;
  sc.n = n;
  sc.f = f;
  sc.pipeline.depth = depth;
  sc.seed = seed;
  sc.run_for = horizon;
  add_workload(sc);
  Cluster cluster(sc);
  cluster.run();
  std::size_t committed_at_0 = 0;
  for (const auto& d : cluster.probe().deliveries()) {
    if (d.node == 0 && !d.entry.skipped) ++committed_at_0;
  }
  return {committed_at_0, horizon.seconds()};
}

SmrResult run_sequential(std::uint32_t n, std::uint32_t f, Duration horizon,
                         std::uint64_t seed) {
  Scenario sc;
  sc.stack = StackKind::kReplicatedLog;
  sc.n = n;
  sc.f = f;
  sc.seed = seed;
  sc.run_for = horizon;
  add_workload(sc);
  Cluster cluster(sc);
  cluster.run();
  std::size_t committed_at_0 = 0;
  for (const auto& c : cluster.probe().commits()) {
    if (c.node == 0) ++committed_at_0;
  }
  return {committed_at_0, horizon.seconds()};
}

void BM_SmrPipelined(benchmark::State& state) {
  const auto depth = std::uint32_t(state.range(0));
  SmrResult r;
  for (auto _ : state) {
    r = run_pipelined(4, 1, depth, milliseconds(50), 42);
  }
  state.counters["commits_per_s"] = r.throughput();
}
BENCHMARK(BM_SmrPipelined)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void print_tables() {
  std::printf(
      "\nE12a: SMR throughput, sequential vs pipelined (n=4, f=1, "
      "over-subscribed: %u cmds/node, 50 ms horizon)\n",
      kCommandsPerNode);
  Table t({"design", "depth", "committed", "commits/s", "vs sequential"});
  const auto seq = run_sequential(4, 1, milliseconds(50), 42);
  t.add_row({"sequential", "1", std::to_string(seq.committed),
             Table::fmt_int(std::uint64_t(seq.throughput())), "1.00x"});
  for (std::uint32_t depth : {1u, 2u, 4u, 8u, 16u}) {
    const auto r = run_pipelined(4, 1, depth, milliseconds(50), 42);
    t.add_row({"pipelined", std::to_string(depth),
               std::to_string(r.committed),
               Table::fmt_int(std::uint64_t(r.throughput())),
               Table::fmt_ratio(seq.committed > 0
                                    ? double(r.committed) / seq.committed
                                    : 0)});
  }
  t.print();

  std::printf(
      "\nE12b: pipelined SMR scaling with cluster size (depth=4, f=(n-1)/3, "
      "50 ms horizon)\n");
  Table t2({"n", "f", "committed", "commits/s"});
  for (std::uint32_t n : {4u, 7u, 10u, 13u}) {
    const std::uint32_t f = (n - 1) / 3;
    const auto r = run_pipelined(n, f, 4, milliseconds(50), 42);
    t2.add_row({std::to_string(n), std::to_string(f),
                std::to_string(r.committed),
                Table::fmt_int(std::uint64_t(r.throughput()))});
  }
  t2.print();
}

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_tables();
  return 0;
}
