// E7 — Complexity scaling: messages and simulated work vs n.
//
// The protocol's message pattern is all-to-all per stage (Initiator-Accept:
// 4 stages; msgd-broadcast: ≤ 4 stages per relay round), so one agreement
// costs Θ(n²) messages with a small constant and the rounds scale with the
// relay chain length, not with f in the common case. This bench counts
// actual wire messages per agreement across n, plus simulator wall-clock
// (events/sec) as an engineering sanity metric.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

struct ScalingResult {
  double msgs_per_agreement = 0;
  double msgs_per_node_pair = 0;  // messages / n² — should be ~constant
  double latency_p50_ms = 0;
  double sim_events = 0;
  double wall_ms = 0;
};

ScalingResult run_scaling(std::uint32_t n, std::uint32_t trials,
                          std::uint64_t seed0) {
  Scenario sc;
  sc.n = n;
  sc.f = (n - 1) / 3;
  sc.with_tail_faults(sc.f);
  sc.with_proposal(milliseconds(5), 0, 7);
  sc.run_for = milliseconds(150);

  SweepSpec spec;
  spec.scenarios = {sc};
  spec.seeds_per_scenario = trials;
  spec.seed0 = seed0;
  spec.threads = 0;  // all cores; each trial is an independent World
  SweepReport report = SweepRunner(spec).run();

  ScalingResult result;
  result.msgs_per_agreement = double(report.messages) / trials;
  result.msgs_per_node_pair = result.msgs_per_agreement / (double(n) * n);
  result.latency_p50_ms =
      report.latency.empty() ? 0 : report.latency.quantile(0.5) * 1e-6;
  result.sim_events = double(report.events) / trials;
  // Per-run cost from the in-worker clocks, not sweep wall / trials — the
  // latter shrinks with the core count and would corrupt the trajectory.
  for (const auto& run : report.runs) {
    result.wall_ms += run.wall_seconds * 1e3 / trials;
  }
  return result;
}

void print_table() {
  std::printf("\nE7: message and work scaling per agreement (f = ⌊(n−1)/3⌋ "
              "silent faults, correct General)\n");
  Table table({"n", "msgs/agreement", "msgs/n² (≈const)", "latency p50 (ms)",
               "sim events", "wall ms/run"});
  CsvWriter csv("bench_scaling.csv",
                {"n", "msgs", "msgs_per_n2", "latency_p50_ms", "events",
                 "wall_ms"});
  for (std::uint32_t n : {4u, 7u, 10u, 13u, 16u, 19u, 25u, 31u}) {
    auto r = run_scaling(n, 10, 10000);
    char msgs_n2[32];
    std::snprintf(msgs_n2, sizeof msgs_n2, "%.2f", r.msgs_per_node_pair);
    char wall[32];
    std::snprintf(wall, sizeof wall, "%.2f", r.wall_ms);
    table.add_row({std::to_string(n),
                   Table::fmt_int(std::uint64_t(r.msgs_per_agreement)),
                   msgs_n2, Table::fmt_ms(r.latency_p50_ms * 1e6),
                   Table::fmt_int(std::uint64_t(r.sim_events)), wall});
    csv.row({double(n), r.msgs_per_agreement, r.msgs_per_node_pair,
             r.latency_p50_ms, r.sim_events, r.wall_ms});
  }
  table.print();
  std::printf("(msgs/n² flat ⇒ Θ(n²) total messages, matching the all-to-all "
              "stage structure; latency grows only mildly with n via "
              "straggler quorums.)\n");
}

void BM_Scaling(benchmark::State& state) {
  const auto n = std::uint32_t(state.range(0));
  ScalingResult r;
  for (auto _ : state) r = run_scaling(n, 3, 1);
  state.counters["msgs"] = r.msgs_per_agreement;
  state.counters["events"] = r.sim_events;
}
BENCHMARK(BM_Scaling)->Arg(4)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
