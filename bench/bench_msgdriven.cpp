// E4 — Message-driven vs time-driven rounds (the paper's systems headline).
//
// Paper claim (§1, §5): "the actual time for terminating the protocol
// depends on the actual communication network speed and not on the worst
// possible bound on message delivery time" — unlike TPS'87, whose rounds
// each span a fixed, worst-case interval.
//
// Sweep the *actual* typical delay δa from δ/20 up to δ while both
// protocols keep the same worst-case bound δ (hence the same Φ / phase
// length). ss-Byz-Agree's latency must track δa; the TPS baseline's must
// stay pinned at its phase grid. The expected shape: a large speed-up at
// fast networks, shrinking toward ~1 as δa → δ.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

/// ss-Byz-Agree: last correct decision time − proposal time.
SampleSet ss_latency(Duration typical, std::uint32_t trials,
                     std::uint64_t seed0) {
  SampleSet latency;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    Scenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.with_tail_faults(2);
    sc.link_delay = DelayModel::exp_truncated(typical, sc.delta);
    sc.with_proposal(milliseconds(5), 0, 7);
    sc.run_for = milliseconds(300);
    sc.seed = seed0 + trial;
    Cluster cluster(sc);
    cluster.run();
    const RealTime t0 = cluster.proposals().empty()
                            ? RealTime::zero()
                            : cluster.proposals()[0].real_at;
    RealTime last = RealTime::min();
    for (const auto& d : cluster.decisions()) {
      if (d.decision.decided()) last = std::max(last, d.real_at);
    }
    if (last > RealTime::min()) latency.add(last - t0);
  }
  return latency;
}

/// TPS baseline: last correct decision time − proposal (anchor) time.
/// Same unified path; stack = kBaselineTps, which also grants the baseline
/// its synchrony assumption (zero clock offset) for free.
SampleSet tps_latency(Duration typical, std::uint32_t trials,
                      std::uint64_t seed0) {
  SampleSet latency;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    Scenario sc;
    sc.stack = StackKind::kBaselineTps;
    sc.n = 7;
    sc.f = 2;
    sc.with_tail_faults(2);  // kSilent adversary, as before
    sc.link_delay = DelayModel::exp_truncated(typical, sc.delta);
    // Phase length covers the worst case (Φb = 2d, the stack default);
    // the General's value is queued before the 5 ms phase-0 anchor.
    sc.tps.anchor = milliseconds(5);
    sc.with_proposal(milliseconds(1), 0, 7);
    sc.run_for = milliseconds(300);
    sc.seed = seed0 + trial;
    Cluster cluster(sc);
    cluster.run();
    RealTime last = RealTime::min();
    for (const auto& d : cluster.decisions()) {
      if (d.decision.decided()) last = std::max(last, d.real_at);
    }
    if (last > RealTime::min()) {
      latency.add(last - (RealTime::zero() + sc.tps.anchor));
    }
  }
  return latency;
}

void print_table() {
  const Duration delta = Scenario{}.delta;
  std::printf("\nE4: message-driven (ss-Byz-Agree) vs time-driven (TPS'87) "
              "decision latency as actual delay varies (bound δ=%.3fms "
              "fixed)\n",
              delta.millis());
  Table table({"δa/δ", "ss p50 (ms)", "ss max (ms)", "tps p50 (ms)",
               "tps max (ms)", "speed-up (p50)"});
  CsvWriter csv("bench_msgdriven.csv",
                {"ratio", "ss_p50_ms", "ss_max_ms", "tps_p50_ms",
                 "tps_max_ms", "speedup"});
  for (double ratio : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const Duration typical{std::int64_t(double(delta.ns()) * ratio)};
    auto ss = ss_latency(typical, 25, 5000);
    auto tps = tps_latency(typical, 25, 6000);
    const double speedup =
        ss.empty() || tps.empty() ? 0 : tps.quantile(0.5) / ss.quantile(0.5);
    char ratio_s[16];
    std::snprintf(ratio_s, sizeof ratio_s, "%.2f", ratio);
    table.add_row({ratio_s, ss.empty() ? "-" : Table::fmt_ms(ss.quantile(0.5)),
                   ss.empty() ? "-" : Table::fmt_ms(ss.max()),
                   tps.empty() ? "-" : Table::fmt_ms(tps.quantile(0.5)),
                   tps.empty() ? "-" : Table::fmt_ms(tps.max()),
                   Table::fmt_ratio(speedup)});
    csv.row({ratio, ss.empty() ? 0 : ss.quantile(0.5) * 1e-6,
             ss.empty() ? 0 : ss.max() * 1e-6,
             tps.empty() ? 0 : tps.quantile(0.5) * 1e-6,
             tps.empty() ? 0 : tps.max() * 1e-6, speedup});
  }
  table.print();
  std::printf("(Expected shape per the paper: ss tracks actual delay; tps is "
              "pinned to its worst-case phase grid, so the speed-up shrinks "
              "as δa → δ.)\n");
}

void BM_MsgDriven(benchmark::State& state) {
  const double ratio = double(state.range(0)) / 100.0;
  const Duration delta = Scenario{}.delta;
  const Duration typical{std::int64_t(double(delta.ns()) * ratio)};
  SampleSet ss;
  for (auto _ : state) ss = ss_latency(typical, 10, 1);
  if (!ss.empty()) state.counters["ss_p50_ms"] = ss.quantile(0.5) * 1e-6;
}
BENCHMARK(BM_MsgDriven)->Arg(5)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
