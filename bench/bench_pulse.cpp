// E9 (extension) — pulse synchronization atop ss-Byz-Agree.
//
// The paper (§1) positions its protocol as a *more efficient* substrate for
// self-stabilizing Byzantine pulse synchronization (their follow-up [6]).
// This bench measures the pulse layer built in src/pulse:
//   - pulse skew across correct nodes (inherits Timeliness-1a: ≤ 3d)
//   - cycle-length stability
//   - convergence of pulsing after a transient scramble
//   - tolerance of Byzantine nodes occupying rotation slots
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "adversary/adversaries.hpp"
#include "harness/report.hpp"
#include "pulse/pulse_sync.hpp"
#include "sim/world.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

// Default model constant d = (δ+π)(1+ρ) without pulling the harness in.
Duration default_d() {
  WorldConfig wc;
  return wc.d_bound();
}

struct PulseRun {
  SampleSet skew;          // per complete pulse: max − min real fire time
  SampleSet cycle_error;   // per node: |gap − cycle| for consecutive pulses
  std::uint32_t complete_pulses = 0;
  std::uint32_t partial_pulses = 0;
  Duration convergence = Duration::zero();  // scramble → first complete pulse
  bool converged = false;
};

PulseRun run_pulse(std::uint32_t n, std::uint32_t f, std::uint32_t byz,
                   bool scramble, std::uint64_t seed) {
  WorldConfig wc;
  wc.n = n;
  wc.seed = seed;
  World world(wc);
  const Params params{n, f, wc.d_bound()};

  struct Record {
    NodeId node;
    std::uint64_t counter;
    RealTime at;
  };
  std::vector<Record> pulses;
  std::vector<PulseSyncNode*> nodes(n, nullptr);
  const std::uint32_t correct = n - byz;
  for (NodeId i = 0; i < n; ++i) {
    if (i >= correct) {
      world.set_behavior(i,
                         std::make_unique<RandomNoiseAdversary>(milliseconds(2)));
      continue;
    }
    auto node = std::make_unique<PulseSyncNode>(
        params, PulseConfig{}, [i, &pulses, &world](const PulseEvent& e) {
          pulses.push_back({i, e.counter, world.now()});
        });
    nodes[i] = node.get();
    world.set_behavior(i, std::move(node));
  }
  world.start();
  if (scramble) {
    for (NodeId i = 0; i < correct; ++i) world.scramble_node(i);
  }
  const Duration cycle = nodes[0]->cycle();
  world.run_until(RealTime::zero() + params.delta_stb() + 24 * cycle);

  PulseRun result;
  std::map<std::uint64_t, std::vector<Record>> by_counter;
  for (const auto& p : pulses) by_counter[p.counter].push_back(p);
  for (const auto& [counter, records] : by_counter) {
    if (records.size() < correct) {
      ++result.partial_pulses;
      continue;
    }
    ++result.complete_pulses;
    RealTime lo = RealTime::max(), hi = RealTime::min();
    for (const auto& r : records) {
      lo = std::min(lo, r.at);
      hi = std::max(hi, r.at);
    }
    result.skew.add(hi - lo);
    if (!result.converged) {
      result.converged = true;
      result.convergence = lo - RealTime::zero();
    }
  }
  std::map<NodeId, std::vector<RealTime>> per_node;
  for (const auto& p : pulses) per_node[p.node].push_back(p.at);
  for (auto& [node, times] : per_node) {
    for (std::size_t i = 1; i < times.size(); ++i) {
      result.cycle_error.add(abs((times[i] - times[i - 1]) - cycle));
    }
  }
  return result;
}

void print_table() {
  const Params params{7, 2, default_d()};
  std::printf("\nE9 (extension): pulse synchronization atop ss-Byz-Agree "
              "(pulse = decision instant; skew bound = 3d = %.3fms)\n",
              (3 * params.d()).millis());
  Table table({"n", "f'", "scramble", "complete", "partial",
               "skew p50 (ms)", "skew max (ms)", "cycle err p50 (ms)",
               "first pulse (ms)"});
  struct Case {
    std::uint32_t n, f, byz;
    bool scramble;
  };
  for (const Case& c :
       {Case{4, 1, 0, false}, Case{7, 2, 0, false}, Case{7, 2, 2, false},
        Case{7, 2, 2, true}, Case{10, 3, 3, true}}) {
    // Aggregate three seeds.
    PulseRun agg;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      auto r = run_pulse(c.n, c.f, c.byz, c.scramble, 100 * seed);
      for (double x : r.skew.samples()) agg.skew.add(x);
      for (double x : r.cycle_error.samples()) agg.cycle_error.add(x);
      agg.complete_pulses += r.complete_pulses;
      agg.partial_pulses += r.partial_pulses;
      if (r.converged &&
          (!agg.converged || r.convergence > agg.convergence)) {
        agg.convergence = r.convergence;  // worst-case across seeds
        agg.converged = true;
      }
    }
    table.add_row({std::to_string(c.n), std::to_string(c.byz),
                   c.scramble ? "yes" : "no",
                   Table::fmt_int(agg.complete_pulses),
                   Table::fmt_int(agg.partial_pulses),
                   agg.skew.empty() ? "-" : Table::fmt_ms(agg.skew.quantile(0.5)),
                   agg.skew.empty() ? "-" : Table::fmt_ms(agg.skew.max()),
                   agg.cycle_error.empty()
                       ? "-"
                       : Table::fmt_ms(agg.cycle_error.quantile(0.5)),
                   agg.converged
                       ? Table::fmt_ms(double(agg.convergence.ns()))
                       : "-"});
  }
  table.print();
  std::printf("(Skew must stay ≤ 3d for every complete pulse; partial pulses "
              "only occur during convergence windows.)\n");
}

void BM_Pulse(benchmark::State& state) {
  PulseRun r;
  for (auto _ : state) r = run_pulse(7, 2, 2, false, 1);
  if (!r.skew.empty()) state.counters["skew_max_ms"] = r.skew.max() * 1e-6;
  state.counters["complete"] = r.complete_pulses;
}
BENCHMARK(BM_Pulse)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
