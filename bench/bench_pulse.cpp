// E9 (extension) — pulse synchronization atop ss-Byz-Agree.
//
// The paper (§1) positions its protocol as a *more efficient* substrate for
// self-stabilizing Byzantine pulse synchronization (their follow-up [6]).
// This bench measures the pulse layer built in src/pulse, deployed through
// the unified Scenario → Cluster path (stack = kPulse):
//   - pulse skew across correct nodes (inherits Timeliness-1a: ≤ 3d)
//   - cycle-length stability
//   - convergence of pulsing after a transient scramble
//   - tolerance of Byzantine nodes occupying rotation slots
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "pulse/pulse_sync.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

PulseStats run_pulse(std::uint32_t n, std::uint32_t f, std::uint32_t byz,
                     bool scramble, std::uint64_t seed) {
  Scenario sc;
  sc.stack = StackKind::kPulse;
  sc.n = n;
  sc.f = f;
  sc.with_tail_faults(byz);
  sc.adversary = AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  sc.seed = seed;
  Cluster cluster(sc);
  cluster.start();
  if (scramble) {
    for (NodeId i = 0; i < n - byz; ++i) cluster.world().scramble_node(i);
  }
  const Duration cycle = cluster.node<PulseSyncNode>(0)->cycle();
  cluster.world().run_until(RealTime::zero() + cluster.params().delta_stb() +
                            24 * cycle);
  return evaluate_pulses(cluster.probe().pulses(), cluster.correct_count(),
                         cycle);
}

void print_table() {
  const Params params = Scenario{}.make_params();
  std::printf("\nE9 (extension): pulse synchronization atop ss-Byz-Agree "
              "(pulse = decision instant; skew bound = 3d = %.3fms)\n",
              (3 * params.d()).millis());
  Table table({"n", "f'", "scramble", "complete", "partial",
               "skew p50 (ms)", "skew max (ms)", "cycle err p50 (ms)",
               "first pulse (ms)"});
  struct Case {
    std::uint32_t n, f, byz;
    bool scramble;
  };
  for (const Case& c :
       {Case{4, 1, 0, false}, Case{7, 2, 0, false}, Case{7, 2, 2, false},
        Case{7, 2, 2, true}, Case{10, 3, 3, true}}) {
    // Aggregate three seeds.
    PulseStats agg;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      auto r = run_pulse(c.n, c.f, c.byz, c.scramble, 100 * seed);
      for (double x : r.skew.samples()) agg.skew.add(x);
      for (double x : r.cycle_error.samples()) agg.cycle_error.add(x);
      agg.complete_pulses += r.complete_pulses;
      agg.partial_pulses += r.partial_pulses;
      if (r.converged &&
          (!agg.converged || r.convergence > agg.convergence)) {
        agg.convergence = r.convergence;  // worst-case across seeds
        agg.converged = true;
      }
    }
    table.add_row({std::to_string(c.n), std::to_string(c.byz),
                   c.scramble ? "yes" : "no",
                   Table::fmt_int(agg.complete_pulses),
                   Table::fmt_int(agg.partial_pulses),
                   agg.skew.empty() ? "-" : Table::fmt_ms(agg.skew.quantile(0.5)),
                   agg.skew.empty() ? "-" : Table::fmt_ms(agg.skew.max()),
                   agg.cycle_error.empty()
                       ? "-"
                       : Table::fmt_ms(agg.cycle_error.quantile(0.5)),
                   agg.converged
                       ? Table::fmt_ms(double(agg.convergence.ns()))
                       : "-"});
  }
  table.print();
  std::printf("(Skew must stay ≤ 3d for every complete pulse; partial pulses "
              "only occur during convergence windows.)\n");
}

void BM_Pulse(benchmark::State& state) {
  PulseStats r;
  for (auto _ : state) r = run_pulse(7, 2, 2, false, 1);
  if (!r.skew.empty()) state.counters["skew_max_ms"] = r.skew.max() * 1e-6;
  state.counters["complete"] = r.complete_pulses;
}
BENCHMARK(BM_Pulse)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
