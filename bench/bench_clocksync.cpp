// E11 — Clock synchronization atop ss-Byz-Agree (the paper's companion
// construction: pulses from agreement make any Byzantine algorithm — here,
// clock sync — self-stabilizing). Deployed through the unified
// Scenario → Cluster path (stack = kClockSync).
//
// Reported:
//   (a) precision: max pairwise skew between correct logical clocks, sampled
//       across the run, vs the construction's bound (≈ pulse skew + drift);
//   (b) convergence: real time from a full-cluster transient fault until all
//       correct clocks are back inside the precision envelope;
//   (c) effective rate: logical-clock advance per unit real time (digital
//       clock sync trades rate for bounded precision).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "clocksync/clock_sync.hpp"
#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

Scenario clock_scenario(std::uint32_t n, std::uint32_t f, std::uint32_t byz,
                        std::uint64_t seed) {
  Scenario sc;
  sc.stack = StackKind::kClockSync;
  sc.n = n;
  sc.f = f;
  sc.with_tail_faults(byz);
  sc.adversary = AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  sc.seed = seed;
  return sc;
}

struct PrecisionRow {
  SampleSet skew;             // settled instants only
  SampleSet transition_skew;  // snap-in-flight instants
  double rate = 0.0;
  Duration bound{};
  Duration cycle{};
};

PrecisionRow measure_precision(std::uint32_t n, std::uint32_t f,
                               std::uint32_t byz, std::uint64_t seed) {
  PrecisionRow row;
  Cluster cluster(clock_scenario(n, f, byz, seed));
  cluster.start();
  ClockSyncNode* head = cluster.node<ClockSyncNode>(0);
  const Duration cycle = head->cycle();
  row.cycle = cycle;
  row.bound = head->precision_bound();
  cluster.world().run_for(4 * cycle);  // warm-up
  const Duration c0 = head->clock();
  const RealTime t0 = cluster.world().now();
  for (int sample = 0; sample < 400; ++sample) {
    cluster.world().run_for(cycle / 40);
    if (!clocks_synchronized(cluster)) continue;
    (clocks_settled(cluster) ? row.skew : row.transition_skew)
        .add(clock_skew(cluster));
  }
  row.rate = (head->clock() - c0) / (cluster.world().now() - t0);
  return row;
}

struct ConvergenceResult {
  Duration time = Duration::max();
  Duration cycle{};
};

ConvergenceResult measure_convergence(std::uint32_t n, std::uint32_t f,
                                      std::uint64_t seed) {
  Cluster cluster(clock_scenario(n, f, 0, seed));
  cluster.start();
  ConvergenceResult result;
  result.cycle = cluster.node<ClockSyncNode>(0)->cycle();
  cluster.world().run_for(4 * result.cycle);
  for (NodeId i = 0; i < n; ++i) cluster.world().scramble_node(i);
  const RealTime fault_at = cluster.world().now();
  const Duration bound = cluster.node<ClockSyncNode>(0)->precision_bound();
  // First instant after which the cluster stays inside the envelope.
  const Duration step = result.cycle / 20;
  for (int i = 0; i < 400; ++i) {
    cluster.world().run_for(step);
    if (clocks_settled(cluster) && clock_skew(cluster) <= bound) {
      result.time = cluster.world().now() - fault_at;
      break;
    }
  }
  return result;
}

void BM_ClockPrecision(benchmark::State& state) {
  const auto n = std::uint32_t(state.range(0));
  const std::uint32_t f = (n - 1) / 3;
  PrecisionRow row;
  for (auto _ : state) {
    row = measure_precision(n, f, f, 42);
  }
  if (!row.skew.empty()) {
    state.counters["skew_max_us"] = row.skew.max() * 1e-3;
    state.counters["bound_us"] = double(row.bound.ns()) * 1e-3;
  }
}
BENCHMARK(BM_ClockPrecision)->Arg(4)->Arg(7)->Arg(13)->Unit(benchmark::kMillisecond);

void print_tables() {
  std::printf(
      "\nE11a: clock-sync precision (f Byzantine noise nodes in rotation; "
      "400 samples)\n");
  Table precision({"n", "f(byz)", "cycle (ms)", "settled p50 (us)",
                   "settled max (us)", "bound (us)", "within",
                   "transition max (us)", "rate"});
  for (std::uint32_t n : {4u, 7u, 10u, 13u}) {
    const std::uint32_t f = (n - 1) / 3;
    auto row = measure_precision(n, f, f, 42);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.6f", row.rate);
    char p50[32], mx[32], bd[32], tr[32];
    std::snprintf(p50, sizeof p50, "%.1f", row.skew.quantile(0.5) * 1e-3);
    std::snprintf(mx, sizeof mx, "%.1f", row.skew.max() * 1e-3);
    std::snprintf(bd, sizeof bd, "%.1f", double(row.bound.ns()) * 1e-3);
    std::snprintf(tr, sizeof tr, "%.1f",
                  row.transition_skew.empty()
                      ? 0.0
                      : row.transition_skew.max() * 1e-3);
    precision.add_row({std::to_string(n), std::to_string(f),
                       Table::fmt_ms(double(row.cycle.ns())), p50, mx, bd,
                       row.skew.max() <= double(row.bound.ns()) ? "yes" : "NO",
                       tr, rate});
  }
  precision.print();

  std::printf(
      "\nE11b: convergence after a full-cluster transient fault (all nodes "
      "scrambled; time until skew re-enters the envelope)\n");
  Table conv({"n", "f", "trials", "converge p50 (ms)", "converge max (ms)",
              "cycles (p50)"});
  for (std::uint32_t n : {4u, 7u, 13u}) {
    const std::uint32_t f = (n - 1) / 3;
    SampleSet times;
    Duration cycle{};
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto r = measure_convergence(n, f, seed);
      cycle = r.cycle;
      if (r.time != Duration::max()) times.add(r.time);
    }
    char cyc[32];
    std::snprintf(cyc, sizeof cyc, "%.2f",
                  times.empty() ? 0.0
                                : times.quantile(0.5) / double(cycle.ns()));
    conv.add_row({std::to_string(n), std::to_string(f),
                  std::to_string(std::uint32_t(times.size())),
                  times.empty() ? "-" : Table::fmt_ms(times.quantile(0.5)),
                  times.empty() ? "-" : Table::fmt_ms(times.max()), cyc});
  }
  conv.print();
}

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_tables();
  return 0;
}
