// E11 — Clock synchronization atop ss-Byz-Agree (the paper's companion
// construction: pulses from agreement make any Byzantine algorithm — here,
// clock sync — self-stabilizing).
//
// Reported:
//   (a) precision: max pairwise skew between correct logical clocks, sampled
//       across the run, vs the construction's bound (≈ pulse skew + drift);
//   (b) convergence: real time from a full-cluster transient fault until all
//       correct clocks are back inside the precision envelope;
//   (c) effective rate: logical-clock advance per unit real time (digital
//       clock sync trades rate for bounded precision).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "adversary/adversaries.hpp"
#include "clocksync/clock_sync.hpp"
#include "harness/report.hpp"
#include "sim/world.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

struct ClockCluster {
  std::unique_ptr<World> world;
  std::unique_ptr<Params> params;
  std::vector<ClockSyncNode*> nodes;
  std::uint32_t correct = 0;

  ClockCluster(std::uint32_t n, std::uint32_t f, std::uint32_t byz,
               std::uint64_t seed) {
    WorldConfig wc;
    wc.n = n;
    wc.seed = seed;
    world = std::make_unique<World>(wc);
    params = std::make_unique<Params>(n, f, wc.d_bound());
    nodes.assign(n, nullptr);
    for (NodeId i = 0; i < n; ++i) {
      if (i >= n - byz) {
        world->set_behavior(
            i, std::make_unique<RandomNoiseAdversary>(milliseconds(2)));
        continue;
      }
      auto node =
          std::make_unique<ClockSyncNode>(*params, ClockSyncConfig{});
      nodes[i] = node.get();
      world->set_behavior(i, std::move(node));
    }
    correct = n - byz;
  }

  [[nodiscard]] bool all_synced() const {
    std::uint32_t c = 0;
    for (const auto* node : nodes) {
      if (node != nullptr && node->synchronized()) ++c;
    }
    return c == correct;
  }

  /// All correct nodes snapped to the same pulse counter (the instants the
  /// precision bound speaks about; between them a snap is in flight and the
  /// skew transiently equals the adjustment size).
  [[nodiscard]] bool settled() const {
    std::optional<std::uint64_t> counter;
    for (const auto* node : nodes) {
      if (node == nullptr) continue;
      if (!node->synchronized() || !node->last_snap_counter()) return false;
      if (counter && *counter != *node->last_snap_counter()) return false;
      counter = node->last_snap_counter();
    }
    return counter.has_value();
  }

  [[nodiscard]] Duration skew() const {
    Duration worst = Duration::zero();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == nullptr || !nodes[i]->synchronized()) continue;
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        if (nodes[j] == nullptr || !nodes[j]->synchronized()) continue;
        worst = std::max(worst, abs(nodes[i]->clock() - nodes[j]->clock()));
      }
    }
    return worst;
  }
};

struct PrecisionRow {
  SampleSet skew;             // settled instants only
  SampleSet transition_skew;  // snap-in-flight instants
  double rate = 0.0;
  Duration bound{};
  Duration cycle{};
};

PrecisionRow measure_precision(std::uint32_t n, std::uint32_t f,
                               std::uint32_t byz, std::uint64_t seed) {
  PrecisionRow row;
  ClockCluster cc(n, f, byz, seed);
  cc.world->start();
  const Duration cycle = cc.nodes[0]->cycle();
  row.cycle = cycle;
  row.bound = cc.nodes[0]->precision_bound();
  cc.world->run_for(4 * cycle);  // warm-up
  const Duration c0 = cc.nodes[0]->clock();
  const RealTime t0 = cc.world->now();
  for (int sample = 0; sample < 400; ++sample) {
    cc.world->run_for(cycle / 40);
    if (!cc.all_synced()) continue;
    (cc.settled() ? row.skew : row.transition_skew).add(cc.skew());
  }
  row.rate = (cc.nodes[0]->clock() - c0) / (cc.world->now() - t0);
  return row;
}

Duration measure_convergence(std::uint32_t n, std::uint32_t f,
                             std::uint64_t seed) {
  ClockCluster cc(n, f, 0, seed);
  cc.world->start();
  const Duration cycle = cc.nodes[0]->cycle();
  cc.world->run_for(4 * cycle);
  for (NodeId i = 0; i < n; ++i) cc.world->scramble_node(i);
  const RealTime fault_at = cc.world->now();
  const Duration bound = cc.nodes[0]->precision_bound();
  // First instant after which the cluster stays inside the envelope.
  const Duration step = cycle / 20;
  for (int i = 0; i < 400; ++i) {
    cc.world->run_for(step);
    if (cc.settled() && cc.skew() <= bound) {
      return cc.world->now() - fault_at;
    }
  }
  return Duration::max();
}

void BM_ClockPrecision(benchmark::State& state) {
  const auto n = std::uint32_t(state.range(0));
  const std::uint32_t f = (n - 1) / 3;
  PrecisionRow row;
  for (auto _ : state) {
    row = measure_precision(n, f, f, 42);
  }
  if (!row.skew.empty()) {
    state.counters["skew_max_us"] = row.skew.max() * 1e-3;
    state.counters["bound_us"] = double(row.bound.ns()) * 1e-3;
  }
}
BENCHMARK(BM_ClockPrecision)->Arg(4)->Arg(7)->Arg(13)->Unit(benchmark::kMillisecond);

void print_tables() {
  std::printf(
      "\nE11a: clock-sync precision (f Byzantine noise nodes in rotation; "
      "400 samples)\n");
  Table precision({"n", "f(byz)", "cycle (ms)", "settled p50 (us)",
                   "settled max (us)", "bound (us)", "within",
                   "transition max (us)", "rate"});
  for (std::uint32_t n : {4u, 7u, 10u, 13u}) {
    const std::uint32_t f = (n - 1) / 3;
    auto row = measure_precision(n, f, f, 42);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.6f", row.rate);
    char p50[32], mx[32], bd[32], tr[32];
    std::snprintf(p50, sizeof p50, "%.1f", row.skew.quantile(0.5) * 1e-3);
    std::snprintf(mx, sizeof mx, "%.1f", row.skew.max() * 1e-3);
    std::snprintf(bd, sizeof bd, "%.1f", double(row.bound.ns()) * 1e-3);
    std::snprintf(tr, sizeof tr, "%.1f",
                  row.transition_skew.empty()
                      ? 0.0
                      : row.transition_skew.max() * 1e-3);
    precision.add_row({std::to_string(n), std::to_string(f),
                       Table::fmt_ms(double(row.cycle.ns())), p50, mx, bd,
                       row.skew.max() <= double(row.bound.ns()) ? "yes" : "NO",
                       tr, rate});
  }
  precision.print();

  std::printf(
      "\nE11b: convergence after a full-cluster transient fault (all nodes "
      "scrambled; time until skew re-enters the envelope)\n");
  Table conv({"n", "f", "trials", "converge p50 (ms)", "converge max (ms)",
              "cycles (p50)"});
  for (std::uint32_t n : {4u, 7u, 13u}) {
    const std::uint32_t f = (n - 1) / 3;
    SampleSet times;
    Duration cycle{};
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      ClockCluster probe(n, f, 0, seed);
      probe.world->start();
      cycle = probe.nodes[0]->cycle();
      const Duration t = measure_convergence(n, f, seed);
      if (t != Duration::max()) times.add(t);
    }
    char cyc[32];
    std::snprintf(cyc, sizeof cyc, "%.2f",
                  times.empty() ? 0.0
                                : times.quantile(0.5) / double(cycle.ns()));
    conv.add_row({std::to_string(n), std::to_string(f),
                  std::to_string(std::uint32_t(times.size())),
                  times.empty() ? "-" : Table::fmt_ms(times.quantile(0.5)),
                  times.empty() ? "-" : Table::fmt_ms(times.max()), cyc});
  }
  conv.print();
}

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_tables();
  return 0;
}
