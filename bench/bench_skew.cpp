// E2 — Timeliness-1: agreement skew bounds under Byzantine Generals.
//
// Paper claims (§3, Timeliness 1): for any two correct deciders q, q':
//   (a) |rt(τq) − rt(τq')| ≤ 3d   (2d when validity holds)
//   (b) |rt(τG_q) − rt(τG_q')| ≤ 6d
//
// This bench attacks the bounds with the adversarial Generals (equivocator,
// staggered initiator, spammer) and with a correct General for reference.
//
// Sweep-native: each case is one Scenario × 25 seeds on the SweepRunner
// worker pool (one independent World per trial, all cores, per_run hook for
// the per-execution skews). Results go to stdout, bench_skew.csv, and
// BENCH_skew.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <mutex>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

struct SkewResult {
  SampleSet decision_skew;  // per-execution max pairwise decision distance
  SampleSet tau_g_skew;
  std::uint32_t executions = 0;
  std::uint32_t agreement_violations = 0;
};

Scenario skew_scenario(AdversaryKind kind, bool correct_general) {
  Scenario sc;
  sc.n = 10;
  sc.f = 3;
  if (correct_general) {
    sc.with_tail_faults(3);
    sc.adversary = AdversaryKind::kSilent;
    sc.with_proposal(milliseconds(5), 0, 7);
  } else {
    sc.byz_nodes = {0, 9, 8};
    sc.adversary = kind;
    // Near-correct attacks: small stagger span and a lone equivocation
    // victim keep the wave completing, maximizing achievable skew.
    sc.stagger_span = milliseconds(2);
    sc.equivocate_split = sc.n - 1;
    sc.adversary_period = milliseconds(2);
  }
  sc.run_for = milliseconds(400);
  return sc;
}

SkewResult run_skew(AdversaryKind kind, bool correct_general,
                    std::uint32_t trials, std::uint64_t seed0) {
  const Scenario sc = skew_scenario(kind, correct_general);

  SkewResult result;
  std::mutex mu;
  SweepSpec spec;
  spec.scenarios = {sc};
  spec.seeds_per_scenario = trials;
  spec.seed0 = seed0;
  spec.threads = 0;  // all cores; each trial is an independent World
  spec.per_run = [&](const SweepRun&, Cluster& cluster) {
    const RealTime horizon =
        RealTime::zero() + sc.run_for -
        (cluster.params().delta_agr() + 7 * cluster.params().d());
    const std::lock_guard<std::mutex> lock(mu);
    for (const auto& e :
         cluster_executions(cluster.decisions(), cluster.params())) {
      if (e.first_return() > horizon) continue;
      if (!e.agreement_holds()) ++result.agreement_violations;
      if (e.decided_count() < 2) continue;
      ++result.executions;
      result.decision_skew.add(e.decision_skew());
      result.tau_g_skew.add(e.tau_g_skew());
    }
  };
  (void)SweepRunner(spec).run();
  return result;
}

void print_table() {
  const Params params = Scenario{}.make_params();
  const double d_ms = params.d().millis();
  std::printf("\nE2: Timeliness-1 skew bounds (d=%.3fms; bounds: decision "
              "3d=%.3fms [2d with validity], anchor 6d=%.3fms)\n",
              d_ms, 3 * d_ms, 6 * d_ms);

  CsvWriter csv("bench_skew.csv",
                {"scenario", "executions", "dec_skew_p50_ms", "dec_skew_max_ms",
                 "tau_skew_p50_ms", "tau_skew_max_ms", "violations"});
  Table table({"general", "executions", "dec skew p50 (ms)",
               "dec skew max (ms)", "bound (ms)", "anchor skew max (ms)",
               "bound (ms)", "agreement violations"});
  std::FILE* json = std::fopen("BENCH_skew.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n  \"d_ms\": %.6f,\n  \"decision_bound_3d_ms\": %.6f,\n"
                 "  \"anchor_bound_6d_ms\": %.6f,\n  \"cases\": [\n",
                 d_ms, 3 * d_ms, 6 * d_ms);
  }

  struct Case {
    const char* name;
    AdversaryKind kind;
    bool correct;
    double bound_d;  // decision-skew bound in units of d
  };
  const Case cases[] = {
      {"correct", AdversaryKind::kSilent, true, 2.0},
      {"equivocating", AdversaryKind::kEquivocatingGeneral, false, 3.0},
      {"staggered", AdversaryKind::kStaggeredGeneral, false, 3.0},
      {"spamming", AdversaryKind::kSpamGeneral, false, 3.0},
  };
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const Case& c = cases[i];
    auto r = run_skew(c.kind, c.correct, 25, 7000);
    const bool have = !r.decision_skew.empty();
    table.add_row(
        {c.name, Table::fmt_int(r.executions),
         have ? Table::fmt_ms(r.decision_skew.quantile(0.5)) : "-",
         have ? Table::fmt_ms(r.decision_skew.max()) : "-",
         Table::fmt_ms(c.bound_d * d_ms * 1e6),
         have ? Table::fmt_ms(r.tau_g_skew.max()) : "-",
         Table::fmt_ms(6 * d_ms * 1e6), Table::fmt_int(r.agreement_violations)});
    if (have) {
      csv.row({std::string(c.name), std::to_string(r.executions),
               Table::fmt_ms(r.decision_skew.quantile(0.5)),
               Table::fmt_ms(r.decision_skew.max()),
               Table::fmt_ms(r.tau_g_skew.quantile(0.5)),
               Table::fmt_ms(r.tau_g_skew.max()),
               std::to_string(r.agreement_violations)});
    }
    if (json) {
      std::fprintf(
          json,
          "    {\"general\": \"%s\", \"executions\": %u, "
          "\"dec_skew_p50_ms\": %.6f, \"dec_skew_max_ms\": %.6f, "
          "\"dec_bound_ms\": %.6f, \"tau_skew_max_ms\": %.6f, "
          "\"agreement_violations\": %u, \"within_bounds\": %s}%s\n",
          c.name, r.executions,
          have ? r.decision_skew.quantile(0.5) * 1e-6 : 0.0,
          have ? r.decision_skew.max() * 1e-6 : 0.0, c.bound_d * d_ms,
          have ? r.tau_g_skew.max() * 1e-6 : 0.0, r.agreement_violations,
          (r.agreement_violations == 0 &&
           (!have || (r.decision_skew.max() * 1e-6 <= c.bound_d * d_ms &&
                      r.tau_g_skew.max() * 1e-6 <= 6 * d_ms)))
              ? "true"
              : "false",
          i + 1 < std::size(cases) ? "," : "");
    }
  }
  table.print();
  if (json) {
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("(wrote BENCH_skew.json)\n");
  }
}

void BM_Skew(benchmark::State& state) {
  SkewResult r;
  for (auto _ : state) {
    r = run_skew(AdversaryKind::kEquivocatingGeneral, false, 5, 1);
  }
  if (!r.decision_skew.empty()) {
    state.counters["dec_skew_max_ms"] = r.decision_skew.max() * 1e-6;
    state.counters["tau_skew_max_ms"] = r.tau_g_skew.max() * 1e-6;
  }
}
BENCHMARK(BM_Skew)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
