// E10 — Quorum-policy ablation (paper footnote 7).
//
// The paper's thresholds are n−f / n−2f; footnote 7 says the coherence
// condition "can be replaced by (n+f)/2 correct nodes with some
// modifications". QuorumPolicy::kMajority is that variant:
// ⌊(n+f)/2⌋+1 / f+1.
//
// Two effects are measured, both functions of over-provisioning (n vs 3f+1):
//   (1) Latency: every protocol stage waits for its q_high-th message, so a
//       smaller quorum stops waiting for stragglers earlier. With link
//       delays uniform in [δ/5, δ], the q-th order statistic of each wave
//       drops as q drops.
//   (2) Crash tolerance: with c > f crashed nodes, optimal quorums need
//       n − c ≥ n − f alive (impossible), majority quorums keep deciding
//       while n − c ≥ ⌊(n+f)/2⌋+1. Safety is unaffected either way.
//
// Sweep-native: every (n, policy, crashes) case is one Scenario × seeds on
// the SweepRunner worker pool (one independent World per trial, all cores,
// per_run hook for the per-trial metrics). Results go to stdout and
// BENCH_quorum.json (registered with tools/bench_check.py: events_per_sec
// ratio-gated, deterministic flag = repeated-cell digest equality).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <mutex>
#include <string>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

struct QuorumRun {
  SampleSet latency;
  std::uint32_t trials = 0;
  std::uint32_t decided = 0;
  std::uint32_t agreement_violations = 0;
  double events_per_sec = 0;
};

Scenario quorum_scenario(std::uint32_t n, std::uint32_t f, QuorumPolicy policy,
                         std::uint32_t crashes) {
  Scenario sc;
  sc.n = n;
  sc.f = f;
  sc.quorum_policy = policy;
  sc.with_tail_faults(crashes);
  sc.with_proposal(milliseconds(5), 0, 7);
  sc.run_for = milliseconds(250);
  return sc;
}

QuorumRun run_policy(std::uint32_t n, std::uint32_t f, QuorumPolicy policy,
                     std::uint32_t crashes, std::uint32_t trials,
                     std::uint64_t seed0) {
  QuorumRun out;
  std::mutex mu;
  SweepSpec spec;
  spec.scenarios = {quorum_scenario(n, f, policy, crashes)};
  spec.seeds_per_scenario = trials;
  spec.seed0 = seed0;
  spec.threads = 0;  // all cores; each trial is an independent World
  spec.per_run = [&](const SweepRun&, Cluster& cluster) {
    const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                                cluster.correct_count(), cluster.params());
    const std::lock_guard<std::mutex> lock(mu);
    ++out.trials;
    out.agreement_violations += m.agreement_violations;
    if (m.unanimous_decides == 1) ++out.decided;
    if (cluster.proposals().empty()) return;
    const RealTime t0 = cluster.proposals()[0].real_at;
    for (const auto& d : cluster.decisions()) {
      if (d.decision.decided()) out.latency.add(d.real_at - t0);
    }
  };
  const SweepReport report = SweepRunner(spec).run();
  out.events_per_sec = report.events_per_sec;
  return out;
}

void BM_QuorumPolicy(benchmark::State& state) {
  const auto n = std::uint32_t(state.range(0));
  const auto policy =
      state.range(1) == 0 ? QuorumPolicy::kOptimal : QuorumPolicy::kMajority;
  QuorumRun r;
  for (auto _ : state) {
    r = run_policy(n, 2, policy, 2, 10, 7000);
  }
  if (!r.latency.empty()) {
    state.counters["latency_p50_ms"] = r.latency.quantile(0.5) * 1e-6;
  }
  state.counters["decided_pct"] = 100.0 * r.decided / std::max(1u, r.trials);
}
BENCHMARK(BM_QuorumPolicy)
    ->ArgsProduct({{7, 13, 19, 25}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void print_tables() {
  std::FILE* json = std::fopen("BENCH_quorum.json", "w");

  std::printf(
      "\nE10a: quorum-policy latency (f=2 silent faults, 30 trials, link "
      "delay ~ U[delta/5, delta]; sweep: all cores)\n");
  Table table({"n", "q_high opt", "q_high maj", "p50 opt (ms)", "p50 maj (ms)",
               "p90 opt (ms)", "p90 maj (ms)", "speedup p50"});
  if (json) std::fprintf(json, "{\n  \"latency\": [\n");
  const std::uint32_t sizes[] = {7u, 13u, 19u, 25u};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    const std::uint32_t n = sizes[i];
    const std::uint32_t f = 2;
    auto opt = run_policy(n, f, QuorumPolicy::kOptimal, f, 30, 42);
    auto maj = run_policy(n, f, QuorumPolicy::kMajority, f, 30, 42);
    Params p_opt{n, f, microseconds(1050)};
    Params p_maj = Params{n, f, microseconds(1050)}.set_quorum_policy(
        QuorumPolicy::kMajority);
    const double speedup = maj.latency.quantile(0.5) > 0
                               ? opt.latency.quantile(0.5) /
                                     maj.latency.quantile(0.5)
                               : 0.0;
    table.add_row({std::to_string(n), std::to_string(p_opt.q_high()),
                   std::to_string(p_maj.q_high()),
                   Table::fmt_ms(opt.latency.quantile(0.5)),
                   Table::fmt_ms(maj.latency.quantile(0.5)),
                   Table::fmt_ms(opt.latency.quantile(0.9)),
                   Table::fmt_ms(maj.latency.quantile(0.9)),
                   Table::fmt_ratio(speedup)});
    if (json) {
      std::fprintf(json,
                   "    {\"n\": %u, \"q_high_opt\": %u, \"q_high_maj\": %u, "
                   "\"p50_opt_ms\": %.6f, \"p50_maj_ms\": %.6f, "
                   "\"speedup_p50\": %.4f, "
                   "\"sweep_events_per_sec\": %.0f}%s\n",
                   n, p_opt.q_high(), p_maj.q_high(),
                   opt.latency.quantile(0.5) * 1e-6,
                   maj.latency.quantile(0.5) * 1e-6, speedup,
                   opt.events_per_sec + maj.events_per_sec,
                   i + 1 < std::size(sizes) ? "," : "");
    }
  }
  table.print();

  std::printf(
      "\nE10b: liveness under c crashed nodes, n=13, f=2 (decided%% over 10 "
      "trials; safety violations must be 0 everywhere)\n");
  Table table2({"crashes c", "optimal decided%", "majority decided%",
                "agreement violations"});
  if (json) std::fprintf(json, "  ],\n  \"crash_liveness\": [\n");
  const std::uint32_t crash_counts[] = {0u, 2u, 3u, 4u, 5u, 6u};
  std::uint32_t total_violations = 0;
  for (std::size_t i = 0; i < std::size(crash_counts); ++i) {
    const std::uint32_t c = crash_counts[i];
    const auto opt = run_policy(13, 2, QuorumPolicy::kOptimal, c, 10, 99);
    const auto maj = run_policy(13, 2, QuorumPolicy::kMajority, c, 10, 99);
    total_violations += opt.agreement_violations + maj.agreement_violations;
    table2.add_row(
        {std::to_string(c),
         std::to_string(100 * opt.decided / std::max(1u, opt.trials)),
         std::to_string(100 * maj.decided / std::max(1u, maj.trials)),
         std::to_string(opt.agreement_violations + maj.agreement_violations)});
    if (json) {
      std::fprintf(json,
                   "    {\"crashes\": %u, \"opt_decided_pct\": %u, "
                   "\"maj_decided_pct\": %u, \"violations\": %u}%s\n",
                   c, 100 * opt.decided / std::max(1u, opt.trials),
                   100 * maj.decided / std::max(1u, maj.trials),
                   opt.agreement_violations + maj.agreement_violations,
                   i + 1 < std::size(crash_counts) ? "," : "");
    }
  }
  table2.print();

  // Determinism gate: the same cell twice must digest identically (the
  // sweep pool must not perturb seeded runs).
  const Scenario det_sc = quorum_scenario(13, 2, QuorumPolicy::kOptimal, 2);
  const bool deterministic =
      SweepRunner::run_cell(det_sc, 99).digest ==
      SweepRunner::run_cell(det_sc, 99).digest;
  if (json) {
    std::fprintf(json, "  ],\n  \"safety_violations\": %u,\n", total_violations);
    std::fprintf(json, "  \"deterministic\": %s\n}\n",
                 deterministic ? "true" : "false");
    std::fclose(json);
    std::printf("(wrote BENCH_quorum.json)\n");
  }
  if (!deterministic) {
    std::fprintf(stderr, "bench_quorum: DETERMINISM FAILED\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_tables();
  return 0;
}
