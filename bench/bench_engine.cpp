// bench_engine — the simulation engine itself, before/after the slab
// refactor, plus the SweepRunner's multi-scenario throughput.
//
// Four measurements:
//  1. Raw dispatch: self-rescheduling event chains carrying a WireMessage-
//     sized closure (the network delivery shape) through (a) the seed's
//     std::function + copying std::priority_queue design, preserved here
//     verbatim as LegacyEventQueue, and (b) the slab-backed EventQueue.
//     The acceptance gate for the refactor is slab ≥ 2× legacy.
//  2. Timer saturation: dense periodic node timers (the protocol-timer
//     shape: round deadlines, watchdogs) at 64…8192 in-flight, through the
//     hierarchical timer wheel vs the legacy all-in-the-heap path. The
//     wheel's O(1) arm/cancel must beat the heap's O(log n) sift once the
//     in-flight population is dense (gate: wheel ≥ heap at ≥ 1024).
//  3. Scenario hot path: full (Scenario, seed) agreement runs through a
//     serial (threads=1) SweepRunner — events/sec and p50 latency.
//  4. Sweep scaling: the same grid on 1/2/4 worker threads — scenarios/sec
//     plus a digest check that every parallel run is bit-identical to its
//     serial twin.
//
// Results go to stdout (tables) and BENCH_engine.json (machine-readable,
// tracked in-repo so future PRs can diff the perf trajectory — and so the
// CI perf gate, tools/bench_check.py, has a committed baseline).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <thread>

#include "core/flat_map.hpp"
#include "core/node_set.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/report.hpp"
#include "harness/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/wire.hpp"
#include "sim/world.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

// ------------------------------------------------------------- legacy --
// The seed's event queue, kept verbatim so the before/after comparison is
// reproducible forever, not only against a historical commit.
class LegacyEventQueue {
 public:
  using Action = std::function<void()>;

  void schedule(RealTime when, Action action) {
    heap_.push(Entry{when, seq_++, std::move(action)});
  }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  void run_one() {
    auto& top = const_cast<Entry&>(heap_.top());
    now_ = top.when;
    Action action = std::move(top.action);
    heap_.pop();
    ++dispatched_;
    action();
  }
  [[nodiscard]] RealTime now() const { return now_; }

 private:
  struct Entry {
    RealTime when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  RealTime now_{};
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

// ---------------------------------------------------------- raw chains --
// The hot-path event shape: a closure carrying destination + WireMessage
// (as Network::route schedules), rescheduling itself to keep the in-flight
// population constant.
template <class Queue>
struct Chain {
  Queue* queue;
  std::uint64_t* fired;
  std::uint64_t total;
  NodeId dest;
  WireMessage msg;
  void operator()() const {
    ++*fired;
    if (*fired < total) queue->schedule(queue->now() + Duration{100}, *this);
  }
};

template <class Queue>
double chain_events_per_sec(std::uint32_t in_flight, std::uint64_t total) {
  Queue queue;
  std::uint64_t fired = 0;
  for (std::uint32_t i = 0; i < in_flight; ++i) {
    queue.schedule(RealTime{std::int64_t(i)},
                   Chain<Queue>{&queue, &fired, total, NodeId(i), WireMessage{}});
  }
  const auto t0 = std::chrono::steady_clock::now();
  while (!queue.empty() && fired < total) queue.run_one();
  const auto t1 = std::chrono::steady_clock::now();
  return double(fired) / std::chrono::duration<double>(t1 - t0).count();
}

struct RawResult {
  std::uint32_t in_flight;
  double legacy_eps;
  double slab_eps;
  [[nodiscard]] double speedup() const { return slab_eps / legacy_eps; }
};

RawResult measure_raw(std::uint32_t in_flight, std::uint64_t total) {
  RawResult r{in_flight, 0, 0};
  // Interleave and keep the best of three passes each: both queues deserve
  // their warmest cache, and a single descheduling blip must not skew the
  // tracked ratio.
  for (int pass = 0; pass < 3; ++pass) {
    r.legacy_eps = std::max(
        r.legacy_eps, chain_events_per_sec<LegacyEventQueue>(in_flight, total));
    r.slab_eps =
        std::max(r.slab_eps, chain_events_per_sec<EventQueue>(in_flight, total));
  }
  return r;
}

// ----------------------------------------------------- timer saturation --
// The protocol-timer shape: every node keeps a dense population of periodic
// timers in flight (round deadlines, back-offs), each re-arming itself on
// fire — and, like every stack's arm_watchdog(), each fire also
// RESCHEDULES a per-node watchdog (cancel + re-arm). Cancellation is where
// the structures truly differ: the wheel unlinks in O(1), while the
// heap-resident path must park the dead timer until its fire time and pop
// it as a suppressed no-op — exactly what the pre-wheel generation-counter
// pattern paid. No network traffic — this isolates the timer path.
struct TimerStorm final : NodeBehavior {
  static constexpr std::uint64_t kWatchdogCookie = ~std::uint64_t{0};

  std::uint32_t per_node = 0;
  std::uint64_t* fired = nullptr;
  TimerHandle watchdog{};

  void on_start(NodeContext& ctx) override {
    for (std::uint32_t k = 0; k < per_node; ++k) arm(ctx, k);
    watchdog = ctx.set_timer_after(microseconds(600), kWatchdogCookie);
  }
  void arm(NodeContext& ctx, std::uint64_t cookie) {
    // Staggered short-horizon periods (50–500 µs) so fires stay dense but
    // never synchronize into one batch.
    const Duration period = microseconds(50 + std::int64_t(cookie * 7 % 450));
    (void)ctx.set_timer_after(period, cookie);
  }
  void on_message(NodeContext&, const WireMessage&) override {}
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override {
    ++*fired;
    if (cookie == kWatchdogCookie) {  // quiet node: plain re-arm
      watchdog = ctx.set_timer_after(microseconds(600), kWatchdogCookie);
      return;
    }
    arm(ctx, cookie);
    watchdog = ctx.reschedule_timer(
        watchdog, ctx.local_now() + microseconds(600), kWatchdogCookie);
  }
};

double timer_events_per_sec(std::uint32_t in_flight, std::uint64_t total,
                            bool timer_wheel) {
  WorldConfig config;
  config.n = 8;  // fixed node count: only the timer population scales
  config.timer_wheel = timer_wheel;
  World world(config);
  std::uint64_t fired = 0;
  for (NodeId id = 0; id < config.n; ++id) {
    auto behavior = std::make_unique<TimerStorm>();
    behavior->per_node = in_flight / config.n;
    behavior->fired = &fired;
    world.set_behavior(id, std::move(behavior));
  }
  world.start();
  const auto t0 = std::chrono::steady_clock::now();
  while (fired < total) world.run_for(milliseconds(10));
  const auto t1 = std::chrono::steady_clock::now();
  return double(fired) / std::chrono::duration<double>(t1 - t0).count();
}

struct TimerResult {
  std::uint32_t in_flight;
  double heap_eps;
  double wheel_eps;
  [[nodiscard]] double speedup() const { return wheel_eps / heap_eps; }
};

TimerResult measure_timers(std::uint32_t in_flight, std::uint64_t total) {
  TimerResult r{in_flight, 0, 0};
  for (int pass = 0; pass < 3; ++pass) {  // interleaved best-of-three
    r.heap_eps =
        std::max(r.heap_eps, timer_events_per_sec(in_flight, total, false));
    r.wheel_eps =
        std::max(r.wheel_eps, timer_events_per_sec(in_flight, total, true));
  }
  return r;
}

// ---------------------------------------------------- quorum tracking --
// The flat-state refactor's hot shape: ss-Byz-Agree's per-round accept
// records. Every delivered (support/ready, round, sender) lands in a
// per-round distinct-sender set, then the quorum threshold is probed. The
// seed kept these as std::map<round, std::set<NodeId>> — preserved here
// verbatim (the LegacyEventQueue idiom) — the refactor moved them onto
// FlatMap<round, NodeSet> (sorted vector + inline/bitset membership).
// Workload: rounds advance in a sliding live window (old rounds erased,
// Fig. 2/3-style cleanup), senders arrive round-robin with a stride so
// insertion order is not presorted.
struct LegacyQuorumTracker {
  std::map<std::uint32_t, std::set<NodeId>> rounds;
  std::uint64_t note(std::uint32_t round, NodeId sender,
                     std::uint32_t quorum) {
    std::set<NodeId>& senders = rounds[round];
    senders.insert(sender);
    return senders.size() >= quorum ? 1 : 0;
  }
  void forget_before(std::uint32_t round) {
    for (auto it = rounds.begin(); it != rounds.end();) {
      if (it->first < round) {
        it = rounds.erase(it);
      } else {
        ++it;
      }
    }
  }
};

struct FlatQuorumTracker {
  FlatMap<std::uint32_t, NodeSet> rounds;
  std::uint64_t note(std::uint32_t round, NodeId sender,
                     std::uint32_t quorum) {
    NodeSet& senders = rounds[round];
    senders.insert(sender);
    return senders.size() >= quorum ? 1 : 0;
  }
  void forget_before(std::uint32_t round) {
    for (auto it = rounds.begin(); it != rounds.end();) {
      if (it->first < round) {
        it = rounds.erase(it);
      } else {
        ++it;
      }
    }
  }
};

template <class Tracker>
double quorum_updates_per_sec(std::uint32_t n, std::uint64_t total) {
  constexpr std::uint32_t kLiveRounds = 8;  // sliding cleanup window
  Tracker tracker;
  const std::uint32_t quorum = n - n / 3;
  std::uint64_t hits = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint32_t base_round = 0;
  for (std::uint64_t i = 0; i < total; ++i) {
    const std::uint32_t round = base_round + std::uint32_t(i % kLiveRounds);
    const NodeId sender = NodeId((i * 17) % n);  // not presorted
    hits += tracker.note(round, sender, quorum);
    if (i % (std::uint64_t(n) * kLiveRounds) == 0 && i > 0) {
      ++base_round;
      tracker.forget_before(base_round);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(hits);
  return double(total) / std::chrono::duration<double>(t1 - t0).count();
}

struct QuorumResult {
  std::uint32_t n;
  double map_ups = 0;
  double flat_ups = 0;
  [[nodiscard]] double speedup() const { return flat_ups / map_ups; }
};

QuorumResult measure_quorum(std::uint32_t n, std::uint64_t total) {
  QuorumResult r{n};
  for (int pass = 0; pass < 3; ++pass) {  // interleaved best-of-three
    r.map_ups = std::max(
        r.map_ups, quorum_updates_per_sec<LegacyQuorumTracker>(n, total));
    r.flat_ups = std::max(
        r.flat_ups, quorum_updates_per_sec<FlatQuorumTracker>(n, total));
  }
  return r;
}

// ------------------------------------------------------------- sweeps --

Scenario engine_scenario() {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.adversary = AdversaryKind::kNoise;
  sc.with_proposal(milliseconds(5), 0, 7);
  sc.run_for = milliseconds(150);
  return sc;
}

struct SweepResult {
  double events_per_sec_serial = 0;
  double latency_p50_ms = 0;
  double scenarios_per_sec[3] = {0, 0, 0};  // threads 1, 2, 4
  bool deterministic = true;
};

SweepResult measure_sweeps(std::uint32_t seeds) {
  SweepResult result;
  const std::uint32_t thread_axis[3] = {1, 2, 4};
  std::vector<std::uint64_t> serial_digests;
  for (int t = 0; t < 3; ++t) {
    SweepSpec spec;
    spec.scenarios = {engine_scenario()};
    spec.seeds_per_scenario = seeds;
    spec.seed0 = 1;
    spec.threads = thread_axis[t];
    SweepReport report = SweepRunner(spec).run();
    result.scenarios_per_sec[t] = report.scenarios_per_sec;
    if (t == 0) {
      result.events_per_sec_serial = report.events_per_sec;
      if (!report.latency.empty()) {
        result.latency_p50_ms = report.latency.quantile(0.5) * 1e-6;
      }
      for (const auto& run : report.runs) serial_digests.push_back(run.digest);
    } else {
      for (std::size_t i = 0; i < report.runs.size(); ++i) {
        if (report.runs[i].digest != serial_digests[i]) {
          result.deterministic = false;
        }
      }
    }
  }
  return result;
}

// --------------------------------------------------- payload pipeline --

/// The zero-copy authenticated payload pipeline (sim/payload.hpp) at bench
/// scale: the scenario hot path with an N-byte command body on every
/// proposal and the keyed scheme (sim/auth.hpp) verifying every delivery.
/// Per size the JSON records throughput, the wire-admitted payload bytes vs
/// the bytes actually memcpy'd into the pool (admission counts per unicast
/// copy, the pool fills once per body — the gap IS the zero-copy win), and
/// a parity flag: a sharded twin must stay bit-identical with bodies and
/// tags on.
struct PayloadRow {
  std::uint32_t size;
  double eps = 0;
  std::uint64_t admitted = 0;  // net.payload_bytes (per unicast copy)
  std::uint64_t copied = 0;    // bytes memcpy'd into the pool (once per body)
  bool parity = true;          // sharded digest == serial digest at this size
};

PayloadRow measure_payload(std::uint32_t size) {
  PayloadRow row{size};
  for (int pass = 0; pass < 3; ++pass) {  // best-of-three, like the others
    Scenario sc = engine_scenario();
    sc.auth = AuthKind::kHmac;
    sc.payload_bytes = size;
    const std::uint64_t copied_before = payload_pool().bytes_copied();
    Cluster cluster(sc);
    const auto t0 = std::chrono::steady_clock::now();
    cluster.run();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    row.eps = std::max(row.eps, double(cluster.world().dispatched()) / secs);
    // Deterministic counts — identical on every pass.
    row.admitted = cluster.world().net_stats().payload_bytes;
    row.copied = payload_pool().bytes_copied() - copied_before;
  }
  // Parity twin: the same model point with a delay floor (the sharded
  // engine's lookahead), serial vs two shards.
  Scenario floor = engine_scenario();
  floor.auth = AuthKind::kHmac;
  floor.payload_bytes = size;
  floor.link_delay =
      DelayModel::exp_truncated(floor.delta / 10, floor.delta / 5, floor.delta);
  const SweepRun serial = SweepRunner::run_cell(floor, 1);
  floor.shards = 2;
  const SweepRun sharded = SweepRunner::run_cell(floor, 1);
  row.parity = serial.digest == sharded.digest;
  return row;
}

// -------------------------------------------------------- trace cost --

/// Events/sec of the scenario hot path with tracing compiled in but
/// disarmed (Scenario::trace = false, the shipping default) vs armed.
/// The disarmed figure is the perf-gated one: emission sites cost one
/// thread-local load and a branch, so it must track the untraced baseline
/// within noise (tools/bench_check.py fails a >5% dip on identical
/// hardware). The armed figure documents what full recording costs.
struct TraceOverheadResult {
  double off_eps = 0;
  double on_eps = 0;
};

TraceOverheadResult measure_trace_overhead() {
  const auto events_per_sec = [](bool traced) {
    double best = 0;
    for (int pass = 0; pass < 3; ++pass) {  // best-of-three, like the others
      Scenario sc = engine_scenario();
      sc.trace = traced;
      Cluster cluster(sc);
      const auto start = std::chrono::steady_clock::now();
      cluster.run();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      best = std::max(best, double(cluster.world().dispatched()) / secs);
    }
    return best;
  };
  TraceOverheadResult r;
  r.off_eps = events_per_sec(false);
  r.on_eps = events_per_sec(true);
  return r;
}

void print_and_record() {
  std::printf("\nengine: raw dispatch — slab event core vs seed design "
              "(std::function heap in a copying priority_queue)\n");
  Table raw_table({"in-flight", "legacy Mev/s", "slab Mev/s", "speedup"});
  const RawResult raw_small = measure_raw(64, 2'000'000);
  const RawResult raw_large = measure_raw(4096, 2'000'000);
  for (const RawResult& r : {raw_small, raw_large}) {
    char legacy[32], slab[32], speedup[32];
    std::snprintf(legacy, sizeof legacy, "%.1f", r.legacy_eps / 1e6);
    std::snprintf(slab, sizeof slab, "%.1f", r.slab_eps / 1e6);
    std::snprintf(speedup, sizeof speedup, "%.2fx", r.speedup());
    raw_table.add_row({std::to_string(r.in_flight), legacy, slab, speedup});
  }
  raw_table.print();

  std::printf("\nengine: timer saturation — hierarchical wheel vs heap-"
              "resident timers (dense periodic, 8 nodes)\n");
  Table timer_table({"in-flight", "heap Mev/s", "wheel Mev/s", "speedup"});
  const TimerResult timer_rows[] = {
      measure_timers(64, 1'000'000),
      measure_timers(1024, 1'500'000),
      measure_timers(8192, 2'000'000),
  };
  for (const TimerResult& r : timer_rows) {
    char heap[32], wheel[32], speedup[32];
    std::snprintf(heap, sizeof heap, "%.1f", r.heap_eps / 1e6);
    std::snprintf(wheel, sizeof wheel, "%.1f", r.wheel_eps / 1e6);
    std::snprintf(speedup, sizeof speedup, "%.2fx", r.speedup());
    timer_table.add_row({std::to_string(r.in_flight), heap, wheel, speedup});
  }
  timer_table.print();

  std::printf("\nengine: quorum tracking — flat accept records "
              "(FlatMap+NodeSet) vs seed design (map<round, set<NodeId>>)\n");
  Table quorum_table({"n", "map Mup/s", "flat Mup/s", "speedup"});
  const QuorumResult quorum_rows[] = {
      measure_quorum(16, 4'000'000),
      measure_quorum(256, 4'000'000),
  };
  for (const QuorumResult& r : quorum_rows) {
    char map_s[32], flat_s[32], speedup[32];
    std::snprintf(map_s, sizeof map_s, "%.1f", r.map_ups / 1e6);
    std::snprintf(flat_s, sizeof flat_s, "%.1f", r.flat_ups / 1e6);
    std::snprintf(speedup, sizeof speedup, "%.2fx", r.speedup());
    quorum_table.add_row({std::to_string(r.n), map_s, flat_s, speedup});
  }
  quorum_table.print();

  const TraceOverheadResult trace = measure_trace_overhead();
  std::printf("\nengine: tracing cost — disarmed emission sites vs full "
              "recording (SSBFT_TRACING=%d)\n", SSBFT_TRACING);
  std::printf("tracing off: %.2f Mevents/s   tracing on: %.2f Mevents/s "
              "(%.1f%% overhead when armed)\n",
              trace.off_eps / 1e6, trace.on_eps / 1e6,
              trace.off_eps > 0
                  ? (1.0 - trace.on_eps / trace.off_eps) * 100.0
                  : 0.0);

  std::printf("\nengine: payload pipeline — pooled command bodies + keyed "
              "authentication on the scenario hot path\n");
  Table payload_table({"body bytes", "Mev/s", "wire bytes", "pool-copied",
                       "fan-out", "sharded parity"});
  const PayloadRow payload_rows[] = {
      measure_payload(0),
      measure_payload(256),
      measure_payload(4096),
  };
  for (const PayloadRow& r : payload_rows) {
    char eps[32], fanout[32];
    std::snprintf(eps, sizeof eps, "%.2f", r.eps / 1e6);
    if (r.copied > 0) {
      std::snprintf(fanout, sizeof fanout, "%.1fx",
                    double(r.admitted) / double(r.copied));
    } else {
      std::snprintf(fanout, sizeof fanout, "-");
    }
    payload_table.add_row({std::to_string(r.size), eps,
                           std::to_string(r.admitted),
                           std::to_string(r.copied), fanout,
                           r.parity ? "yes" : "DIVERGED"});
  }
  payload_table.print();

  const SweepResult sweeps = measure_sweeps(40);
  std::printf("\nengine: scenario hot path (n=7, f=2, noise adversary, one "
              "agreement per run)\n");
  std::printf("serial: %.2f Mevents/s, p50 agreement latency %.3f ms\n",
              sweeps.events_per_sec_serial / 1e6, sweeps.latency_p50_ms);
  std::printf("sweep scaling: %.0f (t=1)  %.0f (t=2)  %.0f (t=4) "
              "scenarios/s — per-run digests %s serial\n",
              sweeps.scenarios_per_sec[0], sweeps.scenarios_per_sec[1],
              sweeps.scenarios_per_sec[2],
              sweeps.deterministic ? "bit-identical to" : "DIVERGED from");

  if (std::FILE* out = std::fopen("BENCH_engine.json", "w")) {
    std::fprintf(
        out,
        "{\n"
        "  \"hardware_threads\": %u,\n"
        "  \"raw_dispatch\": {\n"
        "    \"in_flight_64\": {\"legacy_events_per_sec\": %.0f, "
        "\"slab_events_per_sec\": %.0f, \"speedup\": %.3f},\n"
        "    \"in_flight_4096\": {\"legacy_events_per_sec\": %.0f, "
        "\"slab_events_per_sec\": %.0f, \"speedup\": %.3f}\n"
        "  },\n"
        "  \"timer_saturation\": {\n"
        "    \"in_flight_64\": {\"heap_events_per_sec\": %.0f, "
        "\"wheel_events_per_sec\": %.0f, \"speedup\": %.3f},\n"
        "    \"in_flight_1024\": {\"heap_events_per_sec\": %.0f, "
        "\"wheel_events_per_sec\": %.0f, \"speedup\": %.3f},\n"
        "    \"in_flight_8192\": {\"heap_events_per_sec\": %.0f, "
        "\"wheel_events_per_sec\": %.0f, \"speedup\": %.3f}\n"
        "  },\n"
        "  \"quorum_tracking\": {\n"
        "    \"n_16\": {\"map_events_per_sec\": %.0f, "
        "\"flat_events_per_sec\": %.0f, \"speedup\": %.3f},\n"
        "    \"n_256\": {\"map_events_per_sec\": %.0f, "
        "\"flat_events_per_sec\": %.0f, \"speedup\": %.3f}\n"
        "  },\n"
        "  \"scenario_hot_path\": {\n"
        "    \"events_per_sec\": %.0f,\n"
        "    \"latency_p50_ms\": %.6f\n"
        "  },\n"
        "  \"trace_overhead\": {\n"
        "    \"traceoff_events_per_sec\": %.0f,\n"
        "    \"traceon_events_per_sec\": %.0f\n"
        "  },\n"
        "  \"payload_pipeline\": {\n"
        "    \"size_0\": {\"events_per_sec\": %.0f, "
        "\"wire_payload_bytes\": %llu, \"pool_copied_bytes\": %llu, "
        "\"parity\": %s},\n"
        "    \"size_256\": {\"events_per_sec\": %.0f, "
        "\"wire_payload_bytes\": %llu, \"pool_copied_bytes\": %llu, "
        "\"parity\": %s},\n"
        "    \"size_4096\": {\"events_per_sec\": %.0f, "
        "\"wire_payload_bytes\": %llu, \"pool_copied_bytes\": %llu, "
        "\"parity\": %s}\n"
        "  },\n"
        "  \"sweep\": {\n"
        "    \"scenarios_per_sec_t1\": %.2f,\n"
        "    \"scenarios_per_sec_t2\": %.2f,\n"
        "    \"scenarios_per_sec_t4\": %.2f,\n"
        "    \"deterministic\": %s\n"
        "  }\n"
        "}\n",
        std::thread::hardware_concurrency(),
        raw_small.legacy_eps, raw_small.slab_eps, raw_small.speedup(),
        raw_large.legacy_eps, raw_large.slab_eps, raw_large.speedup(),
        timer_rows[0].heap_eps, timer_rows[0].wheel_eps,
        timer_rows[0].speedup(), timer_rows[1].heap_eps,
        timer_rows[1].wheel_eps, timer_rows[1].speedup(),
        timer_rows[2].heap_eps, timer_rows[2].wheel_eps,
        timer_rows[2].speedup(),
        quorum_rows[0].map_ups, quorum_rows[0].flat_ups,
        quorum_rows[0].speedup(),
        quorum_rows[1].map_ups, quorum_rows[1].flat_ups,
        quorum_rows[1].speedup(),
        sweeps.events_per_sec_serial, sweeps.latency_p50_ms,
        trace.off_eps, trace.on_eps,
        payload_rows[0].eps,
        static_cast<unsigned long long>(payload_rows[0].admitted),
        static_cast<unsigned long long>(payload_rows[0].copied),
        payload_rows[0].parity ? "true" : "false",
        payload_rows[1].eps,
        static_cast<unsigned long long>(payload_rows[1].admitted),
        static_cast<unsigned long long>(payload_rows[1].copied),
        payload_rows[1].parity ? "true" : "false",
        payload_rows[2].eps,
        static_cast<unsigned long long>(payload_rows[2].admitted),
        static_cast<unsigned long long>(payload_rows[2].copied),
        payload_rows[2].parity ? "true" : "false",
        sweeps.scenarios_per_sec[0], sweeps.scenarios_per_sec[1],
        sweeps.scenarios_per_sec[2], sweeps.deterministic ? "true" : "false");
    std::fclose(out);
    std::printf("(wrote BENCH_engine.json)\n");
  }
}

void BM_RawDispatchLegacy(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chain_events_per_sec<LegacyEventQueue>(64, 200'000));
  }
}
BENCHMARK(BM_RawDispatchLegacy)->Unit(benchmark::kMillisecond);

void BM_RawDispatchSlab(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain_events_per_sec<EventQueue>(64, 200'000));
  }
}
BENCHMARK(BM_RawDispatchSlab)->Unit(benchmark::kMillisecond);

void BM_ScenarioSweep(benchmark::State& state) {
  for (auto _ : state) {
    SweepSpec spec;
    spec.scenarios = {engine_scenario()};
    spec.seeds_per_scenario = 5;
    spec.threads = std::uint32_t(state.range(0));
    benchmark::DoNotOptimize(SweepRunner(spec).run().passed);
  }
}
BENCHMARK(BM_ScenarioSweep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_and_record();
  return 0;
}
