// E3 — Termination and the O(f')·d claim.
//
// Paper claims: the protocol terminates within ∆agr = (2f+1)·Φ of
// invocation (Timeliness-3), and — the abstract's headline — agreement is
// reached "within O(f') communication rounds where f' ≤ f is the actual
// number of concurrent faults", at actual message speed.
//
// Sweep: fix the design bound f, vary the number of *actual* Byzantine
// nodes f', and measure decision latency. The message-driven structure
// means latency is a few actual network hops when the General is correct —
// regardless of f' — while the worst-case *bound* grows as (2f+1)Φ; with a
// crash-faulty (silent) General, aborts land at the U1 deadline, which the
// bench also verifies.
//
// Trial loops ride the SweepRunner worker pool (one independent World per
// trial, all cores, per_run hook for the per-decision figures); results go
// to stdout, bench_termination.csv, and BENCH_termination.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <mutex>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

struct TermResult {
  SampleSet latency;  // decision − proposal (correct General)
  std::uint32_t trials = 0;
  std::uint32_t all_decided = 0;
};

TermResult run_termination(std::uint32_t n, std::uint32_t f,
                           std::uint32_t f_actual, std::uint32_t trials,
                           std::uint64_t seed0) {
  Scenario sc;
  sc.n = n;
  sc.f = f;
  sc.with_tail_faults(f_actual);
  sc.adversary = AdversaryKind::kNoise;  // active faults, not just silent
  sc.adversary_period = milliseconds(1);
  sc.with_proposal(milliseconds(5), 0, 7);
  sc.run_for = milliseconds(400);

  TermResult result;
  std::mutex mu;
  SweepSpec spec;
  spec.scenarios = {sc};
  spec.seeds_per_scenario = trials;
  spec.seed0 = seed0;
  spec.threads = 0;  // all cores; each trial is an independent World
  spec.per_run = [&](const SweepRun&, Cluster& cluster) {
    const RealTime t0 = cluster.proposals().empty()
                            ? RealTime::zero()
                            : cluster.proposals()[0].real_at;
    std::uint32_t decided = 0;
    const std::lock_guard<std::mutex> lock(mu);
    ++result.trials;
    for (const auto& d : cluster.decisions()) {
      if (!d.decision.decided() || d.decision.general.node != 0) continue;
      result.latency.add(d.real_at - t0);
      ++decided;
    }
    if (decided == cluster.correct_count()) ++result.all_decided;
  };
  (void)SweepRunner(spec).run();
  return result;
}

/// Abort timing. In a stable system with a correct network, ⊥ returns are
/// essentially impossible to provoke (forging a partial I-accept at a
/// victim needs a correct approver, which needs an n−f support quorum) — a
/// property worth stating. Residual ⊥ returns therefore come from
/// *arbitrary initial states*: scrambled nodes that believe an agreement is
/// running must flush it via U1 within ∆agr of their (garbage) anchor,
/// i.e. within 2·∆agr of the scramble.
struct AbortResult {
  SampleSet abort_flush;  // ⊥-return time − scramble time
  std::uint32_t runs = 0;
  std::uint32_t late_flushes = 0;  // past the 2∆agr + Φ budget
};

AbortResult run_abort_flush(std::uint32_t n, std::uint32_t f,
                            std::uint32_t trials, std::uint64_t seed0) {
  Scenario sc;
  sc.n = n;
  sc.f = f;
  sc.with_tail_faults(f);
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = 32;
  sc.run_for = milliseconds(600);

  AbortResult result;
  std::mutex mu;
  SweepSpec spec;
  spec.scenarios = {sc};
  spec.seeds_per_scenario = trials;
  spec.seed0 = seed0;
  spec.threads = 0;
  spec.per_run = [&](const SweepRun&, Cluster& cluster) {
    const Params& params = cluster.params();
    const Duration budget = 2 * params.delta_agr() + params.phi();
    const std::lock_guard<std::mutex> lock(mu);
    ++result.runs;
    for (const auto& d : cluster.decisions()) {
      if (d.decision.decided()) continue;
      result.abort_flush.add(d.real_at - RealTime::zero());
      if (d.real_at - RealTime::zero() > budget) ++result.late_flushes;
    }
  };
  (void)SweepRunner(spec).run();
  return result;
}

void print_table() {
  std::printf("\nE3a: decision latency vs actual faults f' (n=13, f=4; "
              "paper bound ∆agr=(2f+1)Φ; message-driven ⇒ latency stays at "
              "a few actual hops)\n");
  Table table({"f'", "trials", "all-decided%", "latency p50 (ms)",
               "latency p99 (ms)", "latency max (ms)", "∆agr bound (ms)"});
  CsvWriter csv("bench_termination.csv",
                {"f_actual", "lat_p50_ms", "lat_p99_ms", "lat_max_ms",
                 "bound_ms"});
  std::FILE* json = std::fopen("BENCH_termination.json", "w");
  if (json) std::fprintf(json, "{\n  \"latency_vs_actual_faults\": [\n");
  const std::uint32_t n = 13, f = 4;
  const Params params{n, f, Scenario{}.make_params().d()};
  for (std::uint32_t fa = 0; fa <= f; ++fa) {
    auto r = run_termination(n, f, fa, 30, 3000);
    table.add_row({std::to_string(fa), std::to_string(r.trials),
                   Table::fmt_ms(1e6 * 100.0 * r.all_decided / r.trials),
                   Table::fmt_ms(r.latency.quantile(0.5)),
                   Table::fmt_ms(r.latency.quantile(0.99)),
                   Table::fmt_ms(r.latency.max()),
                   Table::fmt_ms(double(params.delta_agr().ns()))});
    csv.row({double(fa), r.latency.quantile(0.5) * 1e-6,
             r.latency.quantile(0.99) * 1e-6, r.latency.max() * 1e-6,
             params.delta_agr().millis()});
    if (json) {
      std::fprintf(json,
                   "    {\"f_actual\": %u, \"trials\": %u, "
                   "\"all_decided_pct\": %.1f, \"lat_p50_ms\": %.6f, "
                   "\"lat_p99_ms\": %.6f, \"lat_max_ms\": %.6f, "
                   "\"bound_ms\": %.6f}%s\n",
                   fa, r.trials, 100.0 * r.all_decided / r.trials,
                   r.latency.quantile(0.5) * 1e-6,
                   r.latency.quantile(0.99) * 1e-6, r.latency.max() * 1e-6,
                   params.delta_agr().millis(), fa < f ? "," : "");
    }
  }
  table.print();
  if (json) std::fprintf(json, "  ],\n  \"abort_flush\": [\n");

  std::printf("\nE3b: ⊥-flush after a transient scramble (residual phantom "
              "executions must abort via U1 within 2∆agr + Φ of the fault; "
              "in stable runs ⊥ is unprovokable — see bench comments)\n");
  Table table2({"n", "f", "runs", "⊥ returns", "flush p50 (ms)",
                "flush max (ms)", "2∆agr+Φ budget (ms)", "late"});
  const std::uint32_t sizes[] = {4u, 7u, 10u, 13u};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    const std::uint32_t nn = sizes[i];
    const std::uint32_t ff = (nn - 1) / 3;
    auto r = run_abort_flush(nn, ff, 20, 4000);
    const Params p{nn, ff, Scenario{}.make_params().d()};
    const Duration budget = 2 * p.delta_agr() + p.phi();
    table2.add_row({std::to_string(nn), std::to_string(ff),
                    std::to_string(r.runs),
                    Table::fmt_int(r.abort_flush.size()),
                    r.abort_flush.empty() ? "-"
                                          : Table::fmt_ms(r.abort_flush.quantile(0.5)),
                    r.abort_flush.empty() ? "-" : Table::fmt_ms(r.abort_flush.max()),
                    Table::fmt_ms(double(budget.ns())),
                    Table::fmt_int(r.late_flushes)});
    if (json) {
      std::fprintf(json,
                   "    {\"n\": %u, \"f\": %u, \"runs\": %u, "
                   "\"abort_returns\": %zu, \"late_flushes\": %u, "
                   "\"budget_ms\": %.6f}%s\n",
                   nn, ff, r.runs, r.abort_flush.size(), r.late_flushes,
                   budget.millis(), i + 1 < std::size(sizes) ? "," : "");
    }
  }
  table2.print();
  if (json) {
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("(wrote BENCH_termination.json)\n");
  }
}

void BM_Termination(benchmark::State& state) {
  const auto fa = std::uint32_t(state.range(0));
  TermResult r;
  for (auto _ : state) r = run_termination(13, 4, fa, 10, 1);
  if (!r.latency.empty()) {
    state.counters["latency_p50_ms"] = r.latency.quantile(0.5) * 1e-6;
  }
}
BENCHMARK(BM_Termination)->Arg(0)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
