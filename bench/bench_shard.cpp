// bench_shard — serial World vs sharded (conservative-parallel) engine on
// one big run, across every shard scheduling policy.
//
// SweepRunner parallelizes ACROSS runs; the sharded engine parallelizes
// WITHIN one run, which is what the "millions of users" workload needs.
// This bench deploys the agreement stack at n ∈ {32, 128, 512} with a
// 100 µs delay floor (the lookahead λ) and measures events/sec through the
// serial engine and through S = 4 shards under each shard_sched policy
// (static blocks, cost-aware balance, deterministic work stealing, lax
// windows), verifying on every row that the two engines produced
// bit-identical run digests — parity is the hard gate, speedup is reported
// per-machine (single-core containers show ≈ 1×; the multi-core CI runners
// demonstrate the scaling). Each sharded row also reports the scheduler's
// own health metrics: per-window imbalance (max/min worker dispatches),
// repartition count, and steal count. A post-chaos stabilization row per
// policy exercises the alternating engine (serial chaos window → windowed
// suffix, sim/duty_world.hpp) on the scramble + chaos + agreement-storm
// workload, splitting its wall time into migration (export/adopt) vs
// dispatch nanoseconds, with the same parity gate; bench_dutycycle extends
// it to recurring duty cycles.
//
// Results go to stdout (table) and BENCH_shard.json (machine-readable,
// tracked in-repo so future PRs can diff the perf trajectory).
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "sim/duty_world.hpp"
#include "sim/shard_world.hpp"

namespace ssbft {
namespace {

constexpr std::uint32_t kShards = 4;

/// Every scheduling policy of the windowed engine, benched side by side on
/// identical scenarios — the digests must agree across the whole column.
constexpr ShardSched kModes[] = {ShardSched::kStatic, ShardSched::kBalance,
                                 ShardSched::kSteal, ShardSched::kLax};

/// Simulated horizon per n. One agreement costs Θ(n²·f) relay messages
/// (~3M at n = 128, ~10⁸ at n = 512), so the big rows measure the engine's
/// events/sec on a bounded slice of the messaging storm rather than riding
/// a whole agreement; n = 32 runs its agreement to completion.
Duration bench_horizon(std::uint32_t n) {
  if (n <= 32) return milliseconds(60);
  if (n <= 128) return milliseconds(6);
  return microseconds(2200);
}

/// Process-wide peak resident set, in kilobytes (Linux ru_maxrss unit).
/// Sampled after the large-n runs, so it reflects the high-water mark the
/// 4096-node worlds actually reached — the memory half of the scale pin.
std::uint64_t peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return std::uint64_t(usage.ru_maxrss);
}

Scenario shard_bench_scenario(std::uint32_t n, std::uint32_t shards,
                              ShardSched sched) {
  Scenario sc;
  sc.n = n;
  sc.f = (n - 1) / 3;
  sc.with_tail_faults(sc.f);
  sc.shards = shards;
  sc.shard_sched = sched;
  // The delay floor that gives the engine its lookahead: exponential tail
  // as in the World default, floored at δ/10 = 100 µs.
  sc.link_delay =
      DelayModel::exp_truncated(sc.delta / 10, sc.delta / 5, sc.delta);
  sc.with_proposal(milliseconds(1), 0, 100);
  sc.run_for = bench_horizon(n);
  sc.seed = 1;
  return sc;
}

/// The scale pin: a 4096-node agreement world on the federated overlay
/// (64 contiguous clusters of 64), where the flat-state protocol cores and
/// the topology layer have to carry their weight together. Flat fan-out at
/// this n would cost the origin 4096 unicasts per broadcast; federated
/// drops the origin's out-degree to 64 + 63 and lets cluster
/// representatives relay. The horizon is a bounded slice of the
/// first broadcast storm — enough deliveries (millions) to measure a
/// steady events/sec, short enough that the row stays runnable in CI.
constexpr std::uint32_t kLargeN = 4096;
constexpr std::uint32_t kLargeClusterSize = 64;

Scenario large_n_scenario(std::uint32_t shards, ShardSched sched) {
  Scenario sc = shard_bench_scenario(kLargeN, shards, sched);
  sc.topology = Topology::kFederated;
  sc.cluster_size = kLargeClusterSize;
  sc.run_for = microseconds(1800);
  return sc;
}

/// The paper's stabilization-measurement shape: scrambled node state,
/// forged in-flight messages, and a chaotic network until ι0 = 2 ms — then
/// a post-chaos agreement storm. The chaos window runs serial on every
/// engine; what this row measures is the alternating engine's ability to
/// shard the (dominant) stabilization suffix, with digest parity as the
/// gate.
constexpr std::int64_t kChaosMs = 2;

Scenario chaos_bench_scenario(std::uint32_t n, std::uint32_t shards,
                              ShardSched sched) {
  Scenario sc = shard_bench_scenario(n, shards, sched);
  sc.chaos_period = milliseconds(kChaosMs);
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = 16;
  // Flooding Byzantine nodes plus a barrage of post-chaos proposals keep
  // the suffix a proper messaging storm even while the scrambled correct
  // nodes are still decaying their garbage state — the phase whose
  // events/sec this row measures.
  sc.adversary = AdversaryKind::kNoise;
  sc.adversary_period = microseconds(500);
  sc.proposals.clear();
  for (std::uint32_t i = 0; i < 8; ++i) {
    sc.with_proposal(milliseconds(kChaosMs) + microseconds(100) +
                         i * microseconds(700),
                     NodeId(i % 4), 100 + i);
  }
  sc.run_for = milliseconds(kChaosMs) + bench_horizon(n);
  return sc;
}

struct EngineRun {
  double events_per_sec = 0;
  double wall_seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
  std::uint32_t shards = 1;
  ShardSchedStats sched;       // windowed-engine scheduler health
  std::uint64_t migration_ns = 0;  // engine-switch cost (alternating only)

  /// Wall time actually spent dispatching, after subtracting the engine
  /// switches' export/adopt/re-register span.
  [[nodiscard]] std::uint64_t dispatch_ns() const {
    const auto wall = std::uint64_t(wall_seconds * 1e9);
    return wall > migration_ns ? wall - migration_ns : 0;
  }
};

EngineRun run_engine(const Scenario& sc) {
  Cluster cluster(sc);
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run();
  const auto t1 = std::chrono::steady_clock::now();

  EngineRun out;
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.events = cluster.world().dispatched();
  out.digest = evaluate_stack(cluster).digest;
  out.shards = cluster.shards();
  if (auto* sharded = dynamic_cast<ShardWorld*>(&cluster.world())) {
    out.sched = sharded->sched_stats();
  } else if (auto* duty = dynamic_cast<DutyWorld*>(&cluster.world())) {
    out.sched = duty->sched_stats();
    out.migration_ns = duty->migration_ns();
  }
  if (out.wall_seconds > 0) {
    out.events_per_sec = double(out.events) / out.wall_seconds;
  }
  return out;
}

struct Row {
  std::uint32_t n = 0;
  ShardSched mode = ShardSched::kStatic;
  EngineRun serial;
  EngineRun sharded;
  [[nodiscard]] double speedup() const {
    return serial.wall_seconds > 0 && sharded.wall_seconds > 0
               ? serial.wall_seconds / sharded.wall_seconds
               : 0;
  }
  [[nodiscard]] bool parity() const {
    return serial.digest == sharded.digest && serial.events == sharded.events;
  }
};

std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

void print_table() {
  std::printf("\nShard engine: one big run, serial vs %u shards × every "
              "shard_sched policy (lookahead 100 us, %u hardware threads)\n",
              kShards, std::thread::hardware_concurrency());
  Table table({"n", "sched", "events", "serial Mev/s", "sharded Mev/s",
               "speedup", "imb mean", "repart", "steals", "digest parity"});
  std::vector<Row> rows;
  for (const std::uint32_t n : {32u, 128u, 512u}) {
    const EngineRun serial =
        run_engine(shard_bench_scenario(n, 0, ShardSched::kStatic));
    for (const ShardSched mode : kModes) {
      Row row;
      row.n = n;
      row.mode = mode;
      row.serial = serial;
      row.sharded = run_engine(shard_bench_scenario(n, kShards, mode));
      table.add_row({std::to_string(n), to_string(mode),
                     Table::fmt_int(row.serial.events),
                     fmt2(row.serial.events_per_sec / 1e6),
                     fmt2(row.sharded.events_per_sec / 1e6),
                     fmt2(row.speedup()) + "x",
                     fmt2(row.sharded.sched.imbalance_mean()),
                     std::to_string(row.sharded.sched.repartitions),
                     std::to_string(row.sharded.sched.steals),
                     row.parity() ? "yes" : "NO — BUG"});
      rows.push_back(row);
    }
  }
  table.print();
  std::printf("(parity is the hard gate: a sharded run must be bit-identical "
              "to its serial twin under every policy; speedup is "
              "machine-dependent. imb mean = per-window max/min worker "
              "dispatches.)\n");

  // Post-chaos stabilization workload: the alternating engine
  // (serial chaos window -> windowed suffix) vs all-serial, on the
  // scramble + chaos + agreement-storm shape the paper actually measures —
  // once per scheduling policy, with the engine-switch cost split out of
  // the wall time.
  std::printf("\nPost-chaos stabilization (chaos [0, %lld ms) runs serial on "
              "both engines; the alternating engine shards the suffix)\n",
              static_cast<long long>(kChaosMs));
  Table chaos_table({"n", "sched", "events", "serial Mev/s", "two-phase Mev/s",
                     "speedup", "migration us", "imb mean", "repart",
                     "digest parity"});
  std::vector<Row> chaos_rows;
  const std::uint32_t chaos_n = 128;
  const EngineRun chaos_serial =
      run_engine(chaos_bench_scenario(chaos_n, 0, ShardSched::kStatic));
  for (const ShardSched mode : kModes) {
    Row row;
    row.n = chaos_n;
    row.mode = mode;
    row.serial = chaos_serial;
    row.sharded = run_engine(chaos_bench_scenario(chaos_n, kShards, mode));
    chaos_table.add_row({std::to_string(row.n), to_string(mode),
                         Table::fmt_int(row.serial.events),
                         fmt2(row.serial.events_per_sec / 1e6),
                         fmt2(row.sharded.events_per_sec / 1e6),
                         fmt2(row.speedup()) + "x",
                         fmt2(double(row.sharded.migration_ns) * 1e-3),
                         fmt2(row.sharded.sched.imbalance_mean()),
                         std::to_string(row.sharded.sched.repartitions),
                         row.parity() ? "yes" : "NO — BUG"});
    chaos_rows.push_back(row);
  }
  chaos_table.print();

  // Scale pin: n = 4096 on the federated overlay, serial vs sharded, with
  // the process peak RSS recorded alongside throughput. bench_check.py
  // gates both against the committed baseline (throughput floor, 2x RSS
  // ceiling) and hard-fails on parity.
  std::printf("\nLarge-n scale pin (n = %u, federated overlay, cluster size "
              "%u, %u us slice of the broadcast storm)\n",
              kLargeN, kLargeClusterSize, 1800u);
  Table large_table({"n", "topology", "events", "serial Mev/s",
                     "sharded Mev/s", "speedup", "peak RSS MB",
                     "digest parity"});
  Row large_row;
  large_row.n = kLargeN;
  large_row.mode = ShardSched::kStatic;
  large_row.serial = run_engine(large_n_scenario(0, ShardSched::kStatic));
  large_row.sharded =
      run_engine(large_n_scenario(kShards, ShardSched::kStatic));
  const std::uint64_t large_rss_kb = peak_rss_kb();
  large_table.add_row(
      {std::to_string(large_row.n), "federated/64",
       Table::fmt_int(large_row.serial.events),
       fmt2(large_row.serial.events_per_sec / 1e6),
       fmt2(large_row.sharded.events_per_sec / 1e6),
       fmt2(large_row.speedup()) + "x",
       Table::fmt_int(large_rss_kb / 1024),
       large_row.parity() ? "yes" : "NO — BUG"});
  large_table.print();

  bool all_parity = true;
  for (const Row& row : rows) all_parity = all_parity && row.parity();
  for (const Row& row : chaos_rows) all_parity = all_parity && row.parity();
  all_parity = all_parity && large_row.parity();

  if (std::FILE* out = std::fopen("BENCH_shard.json", "w")) {
    std::fprintf(out, "{\n  \"shards\": %u,\n  \"hardware_threads\": %u,\n",
                 kShards, std::thread::hardware_concurrency());
    std::fprintf(out, "  \"digest_parity\": %s,\n",
                 all_parity ? "true" : "false");
    std::fprintf(out, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(out,
                   "    {\"n\": %u, \"sched\": \"%s\", \"events\": %llu, "
                   "\"serial_events_per_sec\": %.0f, "
                   "\"sharded_events_per_sec\": %.0f, "
                   "\"speedup\": %.3f, \"imbalance_mean\": %.3f, "
                   "\"imbalance_max\": %.3f, \"repartitions\": %llu, "
                   "\"steals\": %llu, \"parity\": %s}%s\n",
                   row.n, to_string(row.mode),
                   static_cast<unsigned long long>(row.serial.events),
                   row.serial.events_per_sec, row.sharded.events_per_sec,
                   row.speedup(), row.sharded.sched.imbalance_mean(),
                   row.sharded.sched.imbalance_max,
                   static_cast<unsigned long long>(
                       row.sharded.sched.repartitions),
                   static_cast<unsigned long long>(row.sharded.sched.steals),
                   row.parity() ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"post_chaos_stabilization\": [\n");
    for (std::size_t i = 0; i < chaos_rows.size(); ++i) {
      const Row& row = chaos_rows[i];
      std::fprintf(out,
                   "    {\"n\": %u, \"sched\": \"%s\", \"chaos_ms\": %lld, "
                   "\"events\": %llu, "
                   "\"serial_events_per_sec\": %.0f, "
                   "\"sharded_events_per_sec\": %.0f, "
                   "\"speedup\": %.3f, \"migration_ns\": %llu, "
                   "\"dispatch_ns\": %llu, \"imbalance_mean\": %.3f, "
                   "\"repartitions\": %llu, \"parity\": %s}%s\n",
                   row.n, to_string(row.mode),
                   static_cast<long long>(kChaosMs),
                   static_cast<unsigned long long>(row.serial.events),
                   row.serial.events_per_sec, row.sharded.events_per_sec,
                   row.speedup(),
                   static_cast<unsigned long long>(row.sharded.migration_ns),
                   static_cast<unsigned long long>(row.sharded.dispatch_ns()),
                   row.sharded.sched.imbalance_mean(),
                   static_cast<unsigned long long>(
                       row.sharded.sched.repartitions),
                   row.parity() ? "true" : "false",
                   i + 1 < chaos_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    // The map-based protocol cores this PR's flat structures replaced,
    // measured on the n = 512 row at the commit that still carried them.
    // bench_check.py compares the fresh n = 512 serial throughput against
    // this pin (>= 1.2x) when hardware_threads match.
    std::fprintf(out,
                 "  \"flat_state_baseline\": {\"commit\": \"d9dfa12\", "
                 "\"hardware_threads\": 1, "
                 "\"n512_serial_events_per_sec\": 158726},\n");
    std::fprintf(out,
                 "  \"large_n\": {\"n\": %u, \"topology\": \"federated\", "
                 "\"cluster_size\": %u, \"sched\": \"%s\", "
                 "\"events\": %llu, "
                 "\"serial_events_per_sec\": %.0f, "
                 "\"sharded_events_per_sec\": %.0f, "
                 "\"speedup\": %.3f, \"peak_rss_kb\": %llu, "
                 "\"parity\": %s}\n",
                 large_row.n, kLargeClusterSize, to_string(large_row.mode),
                 static_cast<unsigned long long>(large_row.serial.events),
                 large_row.serial.events_per_sec,
                 large_row.sharded.events_per_sec, large_row.speedup(),
                 static_cast<unsigned long long>(large_rss_kb),
                 large_row.parity() ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("(wrote BENCH_shard.json)\n");
  }

  if (!all_parity) {
    std::fprintf(stderr, "bench_shard: DIGEST PARITY FAILED\n");
    std::exit(1);
  }
}

void BM_ShardEngine(benchmark::State& state) {
  const auto n = std::uint32_t(state.range(0));
  const auto shards = std::uint32_t(state.range(1));
  const auto sched = ShardSched(state.range(2));
  EngineRun run;
  for (auto _ : state) {
    run = run_engine(shard_bench_scenario(n, shards, sched));
  }
  state.counters["Mev_per_sec"] = run.events_per_sec / 1e6;
  state.counters["shards"] = run.shards;
}
BENCHMARK(BM_ShardEngine)
    ->Args({32, 0, std::int64_t(ShardSched::kStatic)})
    ->Args({32, kShards, std::int64_t(ShardSched::kStatic)})
    ->Args({32, kShards, std::int64_t(ShardSched::kSteal)})
    ->Args({32, kShards, std::int64_t(ShardSched::kLax)})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
