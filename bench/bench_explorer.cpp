// E13 — Adversarial-schedule coverage.
//
// The paper's proofs quantify over every message schedule the bounded-delay
// model admits; seeded random runs sample only a benign corner of that
// space. This bench drives the schedule explorer (src/check) over
// systematically enumerated extreme-delay prefixes plus randomized tails,
// under four adversary/initial-state regimes, and reports trials, explored
// prefix trees, executions checked, and safety violations (expected: 0).
//
// Provenance note: this harness is not decorative — an earlier revision of
// the codebase failed the transient-start regime here (dormant scrambled
// broadcast state replayed at anchor time and broke Agreement past ∆stb;
// fixed by decaying state before the anchor replay in msgd_broadcast.cpp).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "check/explorer.hpp"
#include "harness/report.hpp"

namespace ssbft {
namespace {

Scenario base_cluster() {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.with_tail_faults(1);
  sc.with_proposal(milliseconds(5), 0, 42);
  sc.run_for = milliseconds(150);
  return sc;
}

struct Regime {
  const char* name;
  ExplorerConfig config;
};

std::vector<Regime> regimes() {
  std::vector<Regime> out;
  {
    Regime r{"correct-general", {}};
    r.config.base = base_cluster();
    r.config.trials = 243;
    r.config.systematic_depth = 5;
    out.push_back(std::move(r));
  }
  {
    Regime r{"equivocating-general", {}};
    r.config.base = base_cluster();
    r.config.base.proposals.clear();
    r.config.base.adversary = AdversaryKind::kEquivocatingGeneral;
    r.config.base.equivocate_split = 3;
    r.config.expect_validity = false;
    r.config.trials = 243;
    r.config.systematic_depth = 5;
    out.push_back(std::move(r));
  }
  {
    Regime r{"quorum-faker", {}};
    r.config.base = base_cluster();
    r.config.base.adversary = AdversaryKind::kQuorumFaker;
    r.config.expect_validity = false;
    r.config.trials = 128;
    r.config.systematic_depth = 4;
    out.push_back(std::move(r));
  }
  {
    Regime r{"transient-start", {}};
    r.config.base = base_cluster();
    r.config.base.transient_scramble = true;
    const Duration stb = r.config.base.make_params().delta_stb();
    r.config.base.proposals.clear();
    r.config.base.with_proposal(stb + milliseconds(5), 0, 42);
    r.config.base.run_for = stb + milliseconds(150);
    r.config.check_after = RealTime::zero() + stb;
    r.config.trials = 128;
    r.config.systematic_depth = 4;
    out.push_back(std::move(r));
  }
  return out;
}

void BM_Explore(benchmark::State& state) {
  auto all = regimes();
  const auto& regime = all[std::size_t(state.range(0))];
  ExplorerReport report;
  for (auto _ : state) {
    report = explore(regime.config);
  }
  state.counters["violations"] = double(report.violations.size());
  state.counters["executions"] = double(report.executions_checked);
  state.SetLabel(regime.name);
}
BENCHMARK(BM_Explore)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void print_table() {
  std::printf(
      "\nE13: adversarial-schedule exploration (palette: ~0 / d/2 / delta+pi; "
      "exhaustive prefix tree + random tails)\n");
  Table t({"regime", "trials", "prefix tree", "executions", "decisions",
           "violations"});
  for (const auto& regime : regimes()) {
    const auto report = explore(regime.config);
    t.add_row({regime.name, std::to_string(report.trials),
               std::to_string(report.prefix_combinations),
               std::to_string(report.executions_checked),
               std::to_string(report.decisions_seen),
               std::to_string(report.violations.size())});
  }
  t.print();
}

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
