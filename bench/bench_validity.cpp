// E1 — Validity & Timeliness-2 under a correct General.
//
// Paper claims (§3, Timeliness validity; Theorem 3): with a correct General
// G conforming to the Sending Validity Criteria, every correct node decides
// G's value, with  t0 − d ≤ rt(τG) ≤ rt(τq) ≤ t0 + 4d.
//
// This bench sweeps n (with f = ⌊(n−1)/3⌋ actual Byzantine nodes) and
// reports decision latency vs the 4d bound, plus agreement/validity checks.
//
// Trial loops ride the SweepRunner worker pool (one independent World per
// trial, all cores, per_run hook for the per-decision figures); results go
// to stdout and BENCH_validity.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <mutex>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

struct ValidityResult {
  std::uint32_t trials = 0;
  std::uint32_t validity_ok = 0;
  SampleSet latency;       // decision real − proposal real
  SampleSet anchor_error;  // rt(τG) − t0 (paper: within [−d, +4d])
};

ValidityResult run_validity(std::uint32_t n, std::uint32_t f,
                            std::uint32_t trials, std::uint64_t seed0) {
  Scenario sc;
  sc.n = n;
  sc.f = f;
  sc.with_tail_faults(f);
  sc.adversary = AdversaryKind::kSilent;
  sc.with_proposal(milliseconds(5), 0, 11);
  sc.run_for = milliseconds(150);

  ValidityResult result;
  std::mutex mu;
  SweepSpec spec;
  spec.scenarios = {sc};
  spec.seeds_per_scenario = trials;
  spec.seed0 = seed0;
  spec.threads = 0;  // all cores; each trial is an independent World
  spec.per_run = [&](const SweepRun& run, Cluster& cluster) {
    const std::lock_guard<std::mutex> lock(mu);
    ++result.trials;
    if (run.agreement.validity_violations == 0 &&
        run.agreement.agreement_violations == 0) {
      ++result.validity_ok;
    }
    if (cluster.proposals().empty()) return;
    const RealTime t0 = cluster.proposals()[0].real_at;
    for (const auto& d : cluster.decisions()) {
      if (!d.decision.decided()) continue;
      result.latency.add(d.real_at - t0);
      result.anchor_error.add(d.tau_g_real - t0);
    }
  };
  (void)SweepRunner(spec).run();
  return result;
}

void BM_Validity(benchmark::State& state) {
  const auto n = std::uint32_t(state.range(0));
  const std::uint32_t f = (n - 1) / 3;
  ValidityResult result;
  for (auto _ : state) {
    result = run_validity(n, f, 20, 1000);
  }
  state.counters["validity_ok_pct"] =
      100.0 * result.validity_ok / std::max(1u, result.trials);
  if (!result.latency.empty()) {
    state.counters["latency_p50_ms"] = result.latency.quantile(0.5) * 1e-6;
    state.counters["latency_max_ms"] = result.latency.max() * 1e-6;
  }
}
BENCHMARK(BM_Validity)->Arg(4)->Arg(7)->Arg(10)->Arg(13)->Unit(benchmark::kMillisecond);

void print_table() {
  std::printf("\nE1: Validity under a correct General (paper bound: decide "
              "within t0+4d; here d=%.3fms)\n",
              Scenario{}.make_params().d().millis());
  Table table({"n", "f", "trials", "validity%", "latency p50 (ms)",
               "latency max (ms)", "4d bound (ms)", "anchor err in [-d,4d]"});
  std::FILE* json = std::fopen("BENCH_validity.json", "w");
  if (json) std::fprintf(json, "{\n  \"rows\": [\n");
  const std::uint32_t sizes[] = {4u, 7u, 10u, 13u, 16u, 25u};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    const std::uint32_t n = sizes[i];
    const std::uint32_t f = (n - 1) / 3;
    auto r = run_validity(n, f, 30, 42);
    const Params params = [&] {
      Scenario sc;
      sc.n = n;
      sc.f = f;
      return sc.make_params();
    }();
    const double d_ns = double(params.d().ns());
    bool anchor_ok = true;
    for (double e : r.anchor_error.samples()) {
      if (e < -d_ns || e > 4 * d_ns) anchor_ok = false;
    }
    table.add_row({std::to_string(n), std::to_string(f),
                   std::to_string(r.trials),
                   Table::fmt_ms(1e6 * 100.0 * r.validity_ok / r.trials),
                   r.latency.empty() ? "-" : Table::fmt_ms(r.latency.quantile(0.5)),
                   r.latency.empty() ? "-" : Table::fmt_ms(r.latency.max()),
                   Table::fmt_ms(4 * d_ns), anchor_ok ? "yes" : "NO"});
    if (json) {
      std::fprintf(json,
                   "    {\"n\": %u, \"f\": %u, \"trials\": %u, "
                   "\"validity_ok_pct\": %.1f, \"lat_p50_ms\": %.6f, "
                   "\"lat_max_ms\": %.6f, \"bound_4d_ms\": %.6f, "
                   "\"anchor_in_bounds\": %s}%s\n",
                   n, f, r.trials, 100.0 * r.validity_ok / r.trials,
                   r.latency.empty() ? 0.0 : r.latency.quantile(0.5) * 1e-6,
                   r.latency.empty() ? 0.0 : r.latency.max() * 1e-6,
                   4 * d_ns * 1e-6, anchor_ok ? "true" : "false",
                   i + 1 < std::size(sizes) ? "," : "");
    }
  }
  table.print();
  if (json) {
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("(wrote BENCH_validity.json)\n");
  }
}

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
