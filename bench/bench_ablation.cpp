// E8 — Ablations on the design choices DESIGN.md calls out.
//
// A1: Block R freshness window — Fig. 1's literal 4d vs our shipped 5d
//     (what IA-1D actually supports). Under delay jitter at the bound, the
//     4d variant strands nodes whose I-accept arrives "stale": they detour
//     through the S-path (slower) or — when only the General passed R —
//     abort while the General decided, breaking Agreement. The 5d variant
//     keeps everyone on the fast path.
//
// A2: cleanup/decay blocks on vs off — the self-stabilization machinery.
//     From a clean boot both variants agree; from a scrambled state the
//     no-cleanup variant never converges (stale last(G)/last(G,m)/ready
//     values block Block K forever), which is precisely the paper's point.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

struct R1Result {
  SampleSet latency;
  std::uint32_t trials = 0;
  std::uint32_t unanimous = 0;
  std::uint32_t mixed_outcome = 0;  // someone decided, someone aborted
};

R1Result run_r1(Duration window, std::uint32_t trials, std::uint64_t seed0) {
  R1Result result;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    Scenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.with_tail_faults(2);
    // Stress case: actual delays spread right up to the bound δ.
    sc.link_delay = DelayModel::uniform(sc.delta / 5, sc.delta);
    sc.r1_window = window;
    sc.with_proposal(milliseconds(5), 0, 7);
    sc.run_for = milliseconds(300);
    sc.seed = seed0 + trial;
    Cluster cluster(sc);
    cluster.run();
    ++result.trials;
    const RealTime t0 = cluster.proposals().empty()
                            ? RealTime::zero()
                            : cluster.proposals()[0].real_at;
    std::uint32_t decided = 0, aborted = 0;
    for (const auto& d : cluster.decisions()) {
      if (d.decision.decided()) {
        ++decided;
        result.latency.add(d.real_at - t0);
      } else {
        ++aborted;
      }
    }
    if (decided == cluster.correct_count()) ++result.unanimous;
    if (decided > 0 && aborted > 0) ++result.mixed_outcome;
  }
  return result;
}

struct CleanupResult {
  std::uint32_t runs = 0;
  std::uint32_t converged = 0;  // unanimous correct decision post-scramble
};

CleanupResult run_cleanup(bool enabled, std::uint32_t trials,
                          std::uint64_t seed0) {
  CleanupResult result;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    Scenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.with_tail_faults(2);
    sc.cleanup_enabled = enabled;
    sc.transient_scramble = true;
    sc.transient.spurious_per_node = 48;
    sc.chaos_period = milliseconds(8);
    sc.seed = seed0 + trial;
    const Params params = sc.make_params();
    const Duration gap = params.delta_0() + 5 * params.d();
    const std::uint32_t rounds = 72;
    for (std::uint32_t i = 0; i < rounds; ++i) {
      sc.with_proposal(sc.chaos_period + milliseconds(1) + i * gap, 0,
                       1000 + Value(i));
    }
    sc.run_for = sc.chaos_period + rounds * gap + milliseconds(100);
    Cluster cluster(sc);
    cluster.run();
    ++result.runs;
    for (const auto& e :
         cluster_executions(cluster.decisions(), cluster.params())) {
      if (e.general.node == 0 &&
          e.decided_count() == cluster.correct_count() &&
          e.agreement_holds() && e.agreed_value().value_or(kBottom) >= 1000) {
        ++result.converged;
        break;
      }
    }
  }
  return result;
}

void print_table() {
  const Params params = Scenario{}.make_params();
  std::printf("\nE8/A1: Block R window — Fig. 1's 4d vs shipped 5d, actual "
              "delays uniform up to the bound δ\n");
  Table t1({"R1 window", "trials", "unanimous%", "mixed decide/abort",
            "latency p50 (ms)", "latency max (ms)"});
  for (auto [name, w] : {std::pair<const char*, Duration>{"4d (paper literal)",
                                                          4 * params.d()},
                         {"5d (shipped)", 5 * params.d()}}) {
    auto r = run_r1(w, 40, 11000);
    t1.add_row({name, std::to_string(r.trials),
                Table::fmt_ms(1e6 * 100.0 * r.unanimous / r.trials),
                Table::fmt_int(r.mixed_outcome),
                r.latency.empty() ? "-" : Table::fmt_ms(r.latency.quantile(0.5)),
                r.latency.empty() ? "-" : Table::fmt_ms(r.latency.max())});
  }
  t1.print();

  std::printf("\nE8/A2: cleanup/decay blocks (the self-stabilization "
              "machinery) on vs off, after a transient scramble\n");
  Table t2({"cleanup", "runs", "converged", "converged%"});
  for (bool enabled : {true, false}) {
    auto r = run_cleanup(enabled, 12, 12000);
    t2.add_row({enabled ? "on (paper)" : "off (ablated)",
                std::to_string(r.runs), std::to_string(r.converged),
                Table::fmt_ms(1e6 * 100.0 * r.converged / r.runs)});
  }
  t2.print();
  std::printf("(Expected: with cleanup off, convergence from a scrambled "
              "state collapses — the decay rules are what buys "
              "self-stabilization.)\n");
}

void BM_AblationR1(benchmark::State& state) {
  const Params params = Scenario{}.make_params();
  R1Result r;
  for (auto _ : state) {
    r = run_r1(state.range(0) * params.d(), 10, 1);
  }
  state.counters["unanimous_pct"] = 100.0 * r.unanimous / r.trials;
}
BENCHMARK(BM_AblationR1)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
