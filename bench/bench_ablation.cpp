// E8 — Ablations on the design choices DESIGN.md calls out.
//
// A1: Block R freshness window — Fig. 1's literal 4d vs our shipped 5d
//     (what IA-1D actually supports). Under delay jitter at the bound, the
//     4d variant strands nodes whose I-accept arrives "stale": they detour
//     through the S-path (slower) or — when only the General passed R —
//     abort while the General decided, breaking Agreement. The 5d variant
//     keeps everyone on the fast path.
//
// A2: cleanup/decay blocks on vs off — the self-stabilization machinery.
//     From a clean boot both variants agree; from a scrambled state the
//     no-cleanup variant never converges (stale last(G)/last(G,m)/ready
//     values block Block K forever), which is precisely the paper's point.
//
// Sweep-native: every case is one Scenario × seeds on the SweepRunner
// worker pool (one independent World per trial, all cores, per_run hook
// for the per-trial outcome accounting). Results go to stdout and
// BENCH_ablation.json (registered with tools/bench_check.py: the
// events_per_sec aggregate is ratio-gated, the deterministic flag — the A2
// chaos scenario re-run through the sharded handoff engine — is a hard
// digest-parity gate).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <mutex>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

struct R1Result {
  SampleSet latency;
  std::uint32_t trials = 0;
  std::uint32_t unanimous = 0;
  std::uint32_t mixed_outcome = 0;  // someone decided, someone aborted
  double events_per_sec = 0;
};

Scenario r1_scenario(Duration window) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  // Stress case: actual delays spread right up to the bound δ.
  sc.link_delay = DelayModel::uniform(sc.delta / 5, sc.delta);
  sc.r1_window = window;
  sc.with_proposal(milliseconds(5), 0, 7);
  sc.run_for = milliseconds(300);
  return sc;
}

R1Result run_r1(Duration window, std::uint32_t trials, std::uint64_t seed0) {
  R1Result result;
  std::mutex mu;
  SweepSpec spec;
  spec.scenarios = {r1_scenario(window)};
  spec.seeds_per_scenario = trials;
  spec.seed0 = seed0;
  spec.threads = 0;  // all cores; each trial is an independent World
  spec.per_run = [&](const SweepRun&, Cluster& cluster) {
    const RealTime t0 = cluster.proposals().empty()
                            ? RealTime::zero()
                            : cluster.proposals()[0].real_at;
    std::uint32_t decided = 0, aborted = 0;
    const std::lock_guard<std::mutex> lock(mu);
    ++result.trials;
    for (const auto& d : cluster.decisions()) {
      if (d.decision.decided()) {
        ++decided;
        result.latency.add(d.real_at - t0);
      } else {
        ++aborted;
      }
    }
    if (decided == cluster.correct_count()) ++result.unanimous;
    if (decided > 0 && aborted > 0) ++result.mixed_outcome;
  };
  const SweepReport report = SweepRunner(spec).run();
  result.events_per_sec = report.events_per_sec;
  return result;
}

struct CleanupResult {
  std::uint32_t runs = 0;
  std::uint32_t converged = 0;  // unanimous correct decision post-scramble
  double events_per_sec = 0;
};

Scenario cleanup_scenario(bool enabled, std::uint32_t shards = 0) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.cleanup_enabled = enabled;
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = 48;
  sc.chaos_period = milliseconds(8);
  sc.shards = shards;
  if (shards > 0) {
    // The delay floor that lets the post-chaos suffix shard (handoff
    // engine); digest parity vs the serial twin is the bench's
    // determinism gate.
    sc.link_delay =
        DelayModel::exp_truncated(sc.delta / 10, sc.delta / 5, sc.delta);
  }
  const Params params = sc.make_params();
  const Duration gap = params.delta_0() + 5 * params.d();
  const std::uint32_t rounds = 72;
  for (std::uint32_t i = 0; i < rounds; ++i) {
    sc.with_proposal(sc.chaos_period + milliseconds(1) + i * gap, 0,
                     1000 + Value(i));
  }
  sc.run_for = sc.chaos_period + rounds * gap + milliseconds(100);
  return sc;
}

CleanupResult run_cleanup(bool enabled, std::uint32_t trials,
                          std::uint64_t seed0) {
  CleanupResult result;
  std::mutex mu;
  SweepSpec spec;
  spec.scenarios = {cleanup_scenario(enabled)};
  spec.seeds_per_scenario = trials;
  spec.seed0 = seed0;
  spec.threads = 0;
  spec.per_run = [&](const SweepRun&, Cluster& cluster) {
    // Analyze outside the lock — cluster_executions is the expensive part
    // and runs per worker; the mutex guards only the counter merge.
    bool converged = false;
    for (const auto& e :
         cluster_executions(cluster.decisions(), cluster.params())) {
      if (e.general.node == 0 &&
          e.decided_count() == cluster.correct_count() &&
          e.agreement_holds() && e.agreed_value().value_or(kBottom) >= 1000) {
        converged = true;
        break;
      }
    }
    const std::lock_guard<std::mutex> lock(mu);
    ++result.runs;
    if (converged) ++result.converged;
  };
  const SweepReport report = SweepRunner(spec).run();
  result.events_per_sec = report.events_per_sec;
  return result;
}

/// Determinism gate for the artifact: the A2 chaos scenario through the
/// serial engine vs the two-phase handoff engine (4-shard suffix) must
/// produce bit-identical digests.
bool chaos_handoff_parity() {
  const SweepRun serial =
      SweepRunner::run_cell(cleanup_scenario(true, 1), 77);
  const SweepRun sharded =
      SweepRunner::run_cell(cleanup_scenario(true, 4), 77);
  return serial.digest == sharded.digest && serial.events == sharded.events;
}

void print_table() {
  const Params params = Scenario{}.make_params();
  std::FILE* json = std::fopen("BENCH_ablation.json", "w");

  std::printf("\nE8/A1: Block R window — Fig. 1's 4d vs shipped 5d, actual "
              "delays uniform up to the bound δ (sweep: all cores)\n");
  Table t1({"R1 window", "trials", "unanimous%", "mixed decide/abort",
            "latency p50 (ms)", "latency max (ms)"});
  if (json) std::fprintf(json, "{\n  \"r1_window\": [\n");
  const struct {
    const char* name;
    const char* key;
    Duration window;
  } windows[] = {{"4d (paper literal)", "4d", 4 * params.d()},
                 {"5d (shipped)", "5d", 5 * params.d()}};
  for (std::size_t i = 0; i < std::size(windows); ++i) {
    auto r = run_r1(windows[i].window, 40, 11000);
    t1.add_row({windows[i].name, std::to_string(r.trials),
                Table::fmt_ms(1e6 * 100.0 * r.unanimous / r.trials),
                Table::fmt_int(r.mixed_outcome),
                r.latency.empty() ? "-" : Table::fmt_ms(r.latency.quantile(0.5)),
                r.latency.empty() ? "-" : Table::fmt_ms(r.latency.max())});
    if (json) {
      std::fprintf(json,
                   "    {\"window\": \"%s\", \"trials\": %u, "
                   "\"unanimous_pct\": %.1f, \"mixed_outcome\": %u, "
                   "\"latency_p50_ms\": %.6f, "
                   "\"sweep_events_per_sec\": %.0f}%s\n",
                   windows[i].key, r.trials,
                   100.0 * r.unanimous / r.trials, r.mixed_outcome,
                   r.latency.empty() ? 0.0
                                     : r.latency.quantile(0.5) * 1e-6,
                   r.events_per_sec, i + 1 < std::size(windows) ? "," : "");
    }
  }
  t1.print();

  std::printf("\nE8/A2: cleanup/decay blocks (the self-stabilization "
              "machinery) on vs off, after a transient scramble "
              "(sweep: all cores)\n");
  Table t2({"cleanup", "runs", "converged", "converged%"});
  if (json) std::fprintf(json, "  ],\n  \"cleanup\": [\n");
  for (bool enabled : {true, false}) {
    auto r = run_cleanup(enabled, 12, 12000);
    t2.add_row({enabled ? "on (paper)" : "off (ablated)",
                std::to_string(r.runs), std::to_string(r.converged),
                Table::fmt_ms(1e6 * 100.0 * r.converged / r.runs)});
    if (json) {
      std::fprintf(json,
                   "    {\"cleanup\": %s, \"runs\": %u, \"converged\": %u, "
                   "\"sweep_events_per_sec\": %.0f}%s\n",
                   enabled ? "true" : "false", r.runs, r.converged,
                   r.events_per_sec, enabled ? "," : "");
    }
  }
  t2.print();
  std::printf("(Expected: with cleanup off, convergence from a scrambled "
              "state collapses — the decay rules are what buys "
              "self-stabilization.)\n");

  const bool parity = chaos_handoff_parity();
  std::printf("chaos handoff digest parity (serial vs two-phase 4-shard): "
              "%s\n", parity ? "yes" : "NO — BUG");
  if (json) {
    std::fprintf(json, "  ],\n  \"deterministic\": %s\n}\n",
                 parity ? "true" : "false");
    std::fclose(json);
    std::printf("(wrote BENCH_ablation.json)\n");
  }
  if (!parity) {
    std::fprintf(stderr, "bench_ablation: DIGEST PARITY FAILED\n");
    std::exit(1);
  }
}

void BM_AblationR1(benchmark::State& state) {
  const Params params = Scenario{}.make_params();
  R1Result r;
  for (auto _ : state) {
    r = run_r1(state.range(0) * params.d(), 10, 1);
  }
  state.counters["unanimous_pct"] = 100.0 * r.unanimous / r.trials;
}
BENCHMARK(BM_AblationR1)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
