// bench_dutycycle — recurring chaos duty cycles: all-serial vs the
// alternating engine (sim/duty_world.hpp) on one multi-cycle run.
//
// A duty cycle [s_k, s_k + width), one window every `duty` ms, alternates
// serial chaos segments with sharded stabilization segments, migrating the
// COMPLETE in-flight state across every boundary in both directions. Two
// hard gates ride on that:
//   * digest parity — the alternating run must be bit-identical to its
//     all-serial twin (run digest, event count, AND every per-window
//     stabilization digest); any mismatch exits 1 and fails CI;
//   * stabilization observability — each row records the per-window
//     re-convergence metrics (recovery time after each burst, events in
//     each recovery span) that the paper's repeated-stabilization claims
//     are about.
// Speedup is reported per-machine, never gated: single-core containers
// show ≈ 1×, the multi-core CI runners demonstrate the scaling.
//
// Results go to stdout (table) and BENCH_dutycycle.json (machine-readable,
// tracked in-repo so future PRs can diff the perf trajectory;
// tools/bench_check.py hard-gates the parity keys).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "sim/duty_world.hpp"

namespace ssbft {
namespace {

constexpr std::uint32_t kShards = 4;

/// The measurement shape: scrambled node state, flooding Byzantine nodes,
/// and a chaos window that RECURS — the stack must re-converge after every
/// burst, and the engine must migrate serial↔sharded at every boundary.
/// Window geometry scales with n so the big row stays a bounded slice of
/// the messaging storm (one n=128 agreement is ~3M relays).
Scenario duty_scenario(std::uint32_t n, std::uint32_t shards,
                       ShardSched sched = ShardSched::kStatic) {
  Scenario sc;
  sc.n = n;
  sc.f = (n - 1) / 3;
  sc.with_tail_faults(sc.f);
  sc.shards = shards;
  sc.shard_sched = sched;
  // Delay floor = lookahead, as in bench_shard: exponential tail, floored
  // at δ/10 = 100 µs.
  sc.link_delay =
      DelayModel::exp_truncated(sc.delta / 10, sc.delta / 5, sc.delta);
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = 16;
  sc.adversary = AdversaryKind::kNoise;
  sc.adversary_period = microseconds(500);
  sc.seed = 1;
  if (n <= 32) {
    sc.chaos_period = milliseconds(2);       // window width
    sc.chaos_duty = milliseconds(15);        // start-to-start stride
    sc.chaos_count = 3;                      // bursts: 0, 15, 30 ms
    sc.run_for = milliseconds(60);
  } else {
    sc.chaos_period = microseconds(600);
    sc.chaos_duty = microseconds(2500);      // bursts: 0, 2.5 ms
    sc.chaos_count = 2;
    sc.run_for = microseconds(6000);
  }
  // Post-first-window proposal barrage: keeps every stabilization segment
  // a proper messaging storm (round-robin over early correct nodes).
  for (std::uint32_t i = 0; i < 8; ++i) {
    sc.with_proposal(sc.chaos_period + microseconds(100) +
                         i * microseconds(700),
                     NodeId(i % 4), 100 + i);
  }
  return sc;
}

struct EngineRun {
  double events_per_sec = 0;
  double wall_seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
  std::uint32_t shards = 1;
  std::size_t migrations = 0;  // engine switches performed (alternating only)
  std::uint64_t migration_ns = 0;  // wall time inside those switches
  std::vector<WindowStabilization> windows;

  /// Wall time actually spent dispatching events, after subtracting the
  /// engine switches' export → adopt → re-register span.
  [[nodiscard]] std::uint64_t dispatch_ns() const {
    const auto wall = std::uint64_t(wall_seconds * 1e9);
    return wall > migration_ns ? wall - migration_ns : 0;
  }
};

EngineRun run_engine(const Scenario& sc) {
  Cluster cluster(sc);
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run();
  const auto t1 = std::chrono::steady_clock::now();

  EngineRun out;
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.events = cluster.world().dispatched();
  out.digest = evaluate_stack(cluster).digest;
  out.shards = cluster.shards();
  out.windows = window_stabilization(cluster.scenario(), cluster.probe());
  if (auto* duty = dynamic_cast<DutyWorld*>(&cluster.world())) {
    out.migrations = duty->migrations();
    out.migration_ns = duty->migration_ns();
  }
  if (out.wall_seconds > 0) {
    out.events_per_sec = double(out.events) / out.wall_seconds;
  }
  return out;
}

struct Row {
  std::uint32_t n = 0;
  ShardSched sched = ShardSched::kStatic;
  EngineRun serial;
  EngineRun alternating;
  [[nodiscard]] double speedup() const {
    return serial.wall_seconds > 0 && alternating.wall_seconds > 0
               ? serial.wall_seconds / alternating.wall_seconds
               : 0;
  }
  /// The hard gate: run digest, event count, and EVERY per-window
  /// stabilization digest must match the all-serial twin.
  [[nodiscard]] bool parity() const {
    if (serial.digest != alternating.digest) return false;
    if (serial.events != alternating.events) return false;
    if (serial.windows.size() != alternating.windows.size()) return false;
    for (std::size_t w = 0; w < serial.windows.size(); ++w) {
      if (serial.windows[w].digest != alternating.windows[w].digest ||
          serial.windows[w].events != alternating.windows[w].events) {
        return false;
      }
    }
    return true;
  }
};

void append_windows_json(std::FILE* out, const EngineRun& run) {
  for (std::size_t w = 0; w < run.windows.size(); ++w) {
    const WindowStabilization& win = run.windows[w];
    std::fprintf(out,
                 "    {\"window\": %zu, \"chaos_start_ms\": %.3f, "
                 "\"chaos_end_ms\": %.3f, \"recovered\": %s, "
                 "\"recovery_ms\": %.3f, \"events\": %u, "
                 "\"digest\": \"%016llx\"}%s\n",
                 w, double((win.chaos_start - RealTime::zero()).ns()) * 1e-6,
                 double((win.chaos_end - RealTime::zero()).ns()) * 1e-6,
                 win.recovery ? "true" : "false",
                 win.recovery ? double(win.recovery->ns()) * 1e-6 : 0.0,
                 win.events, static_cast<unsigned long long>(win.digest),
                 w + 1 < run.windows.size() ? "," : "");
  }
}

void print_table() {
  std::printf("\nDuty-cycle engine: recurring chaos, all-serial vs "
              "alternating (%u shards between windows, %u hardware "
              "threads)\n",
              kShards, std::thread::hardware_concurrency());
  Table table({"n", "sched", "windows", "migrations", "events",
               "serial Mev/s", "alternating Mev/s", "speedup",
               "migration us", "digest parity"});
  std::vector<Row> rows;
  for (const std::uint32_t n : {32u, 128u}) {
    const EngineRun serial = run_engine(duty_scenario(n, 0));
    // static pins the configured shard count; balance re-sizes every
    // stabilization segment from the previous segment's event rate (and
    // repartitions inside segments) — same parity gate on both.
    for (const ShardSched sched :
         {ShardSched::kStatic, ShardSched::kBalance}) {
      Row row;
      row.n = n;
      row.sched = sched;
      row.serial = serial;
      row.alternating = run_engine(duty_scenario(n, kShards, sched));
      char serial_s[32], alt_s[32], speedup_s[32], mig_s[32];
      std::snprintf(serial_s, sizeof serial_s, "%.2f",
                    row.serial.events_per_sec / 1e6);
      std::snprintf(alt_s, sizeof alt_s, "%.2f",
                    row.alternating.events_per_sec / 1e6);
      std::snprintf(speedup_s, sizeof speedup_s, "%.2fx", row.speedup());
      std::snprintf(mig_s, sizeof mig_s, "%.1f",
                    double(row.alternating.migration_ns) * 1e-3);
      table.add_row({std::to_string(n), to_string(sched),
                     std::to_string(row.alternating.windows.size()),
                     std::to_string(row.alternating.migrations),
                     Table::fmt_int(row.serial.events), serial_s, alt_s,
                     speedup_s, mig_s, row.parity() ? "yes" : "NO — BUG"});
      rows.push_back(row);
    }
  }
  table.print();
  std::printf("(parity is the hard gate: the alternating run — %zu engine "
              "switches on the first row — must be bit-identical to "
              "all-serial, per-window digests included.)\n",
              rows.empty() ? std::size_t{0} : rows.front().alternating.migrations);

  // Per-window stabilization of the multi-cycle row: what the paper's
  // repeated-convergence claims actually measure.
  std::printf("\nStabilization per chaos window (n=%u, alternating):\n",
              rows.front().n);
  Table wt({"window", "chaos (ms)", "recovery (ms)", "events", "digest"});
  for (std::size_t w = 0; w < rows.front().alternating.windows.size(); ++w) {
    const WindowStabilization& win = rows.front().alternating.windows[w];
    char span[48], digest[32];
    std::snprintf(span, sizeof span, "[%.1f, %.1f)",
                  double((win.chaos_start - RealTime::zero()).ns()) * 1e-6,
                  double((win.chaos_end - RealTime::zero()).ns()) * 1e-6);
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(win.digest));
    wt.add_row({std::to_string(w), span,
                win.recovery ? Table::fmt_ms(double(win.recovery->ns()))
                             : "no recovery",
                std::to_string(win.events), digest});
  }
  wt.print();

  bool all_parity = true;
  for (const Row& row : rows) all_parity = all_parity && row.parity();

  if (std::FILE* out = std::fopen("BENCH_dutycycle.json", "w")) {
    std::fprintf(out, "{\n  \"shards\": %u,\n  \"hardware_threads\": %u,\n",
                 kShards, std::thread::hardware_concurrency());
    std::fprintf(out, "  \"digest_parity\": %s,\n",
                 all_parity ? "true" : "false");
    std::fprintf(out, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(out,
                   "    {\"n\": %u, \"sched\": \"%s\", \"windows\": %zu, "
                   "\"migrations\": %zu, \"events\": %llu, "
                   "\"serial_events_per_sec\": %.0f, "
                   "\"alternating_events_per_sec\": %.0f, "
                   "\"speedup\": %.3f, \"migration_ns\": %llu, "
                   "\"dispatch_ns\": %llu, \"parity\": %s}%s\n",
                   row.n, to_string(row.sched),
                   row.alternating.windows.size(),
                   row.alternating.migrations,
                   static_cast<unsigned long long>(row.serial.events),
                   row.serial.events_per_sec,
                   row.alternating.events_per_sec, row.speedup(),
                   static_cast<unsigned long long>(
                       row.alternating.migration_ns),
                   static_cast<unsigned long long>(
                       row.alternating.dispatch_ns()),
                   row.parity() ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"stabilization_windows\": [\n");
    append_windows_json(out, rows.front().alternating);
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("(wrote BENCH_dutycycle.json)\n");
  }

  if (!all_parity) {
    std::fprintf(stderr, "bench_dutycycle: DIGEST PARITY FAILED\n");
    std::exit(1);
  }
}

void BM_DutyCycle(benchmark::State& state) {
  const auto n = std::uint32_t(state.range(0));
  const auto shards = std::uint32_t(state.range(1));
  EngineRun run;
  for (auto _ : state) run = run_engine(duty_scenario(n, shards));
  state.counters["Mev_per_sec"] = run.events_per_sec / 1e6;
  state.counters["migrations"] = double(run.migrations);
}
BENCHMARK(BM_DutyCycle)
    ->Args({32, 0})
    ->Args({32, kShards})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
