// E5 — Self-stabilization: convergence time from an arbitrary state.
//
// Paper claims: once the system is coherent (ι0), it is *stable* after
// ∆stb = 2·∆reset (Corollary 5), after which every property holds. The
// abstract adds that agreement is then reached in O(f') rounds.
//
// Procedure: scramble every node's protocol state, re-randomize clocks,
// flood forged in-flight messages, and let the network misbehave until ι0.
// A correct General then proposes at a steady cadence; "convergence" is the
// first proposal after ι0 that yields a unanimous, correct decision.
// Measured convergence should be ≪ the ∆stb worst-case bound, and the
// fraction of runs converged by ∆stb must be 100%.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <mutex>
#include <optional>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

struct ConvergenceResult {
  SampleSet convergence;  // first unanimous decision − ι0, per run
  std::uint32_t runs = 0;
  std::uint32_t converged_by_stb = 0;
  std::uint32_t pre_stb_agreement_violations = 0;   // allowed by the model
  std::uint32_t post_stb_agreement_violations = 0;  // must be zero
};

ConvergenceResult run_convergence(std::uint32_t n, std::uint32_t f,
                                  std::uint32_t spurious,
                                  std::uint32_t trials, std::uint64_t seed0) {
  Scenario sc;
  sc.n = n;
  sc.f = f;
  sc.with_tail_faults(f);
  sc.adversary = AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(1);
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = spurious;
  sc.chaos_period = milliseconds(10);

  const Params params = sc.make_params();
  const Duration gap = params.delta_0() + 5 * params.d();
  const std::uint32_t rounds = 64;
  for (std::uint32_t i = 0; i < rounds; ++i) {
    sc.with_proposal(sc.chaos_period + milliseconds(1) + i * gap, 0,
                     1000 + Value(i));
  }
  sc.run_for = sc.chaos_period + rounds * gap + milliseconds(100);

  // Convergence detection needs the live cluster (executions clustered
  // against its decision stream), so it rides the per-run hook; trials
  // themselves fan out across all cores as independent Worlds.
  ConvergenceResult result;
  std::mutex mu;
  SweepSpec spec;
  spec.scenarios = {sc};
  spec.seeds_per_scenario = trials;
  spec.seed0 = seed0;
  spec.threads = 0;
  spec.per_run = [&](const SweepRun&, Cluster& cluster) {
    const RealTime iota0 = RealTime::zero() + sc.chaos_period;
    const RealTime stable = iota0 + params.delta_stb();
    std::uint32_t pre = 0, post = 0, by_stb = 0;
    std::optional<Duration> convergence;
    for (const auto& e :
         cluster_executions(cluster.decisions(), cluster.params())) {
      if (!e.agreement_holds()) {
        (e.first_return() >= stable ? post : pre)++;
      }
      if (!convergence && e.general.node == 0 &&
          e.decided_count() == cluster.correct_count() &&
          e.agreement_holds() && e.agreed_value().value_or(kBottom) >= 1000) {
        convergence = e.first_return() - iota0;
        if (e.first_return() <= stable) ++by_stb;
      }
    }
    const std::lock_guard<std::mutex> lock(mu);
    ++result.runs;
    result.pre_stb_agreement_violations += pre;
    result.post_stb_agreement_violations += post;
    result.converged_by_stb += by_stb;
    if (convergence) result.convergence.add(*convergence);
  };
  (void)SweepRunner(spec).run();
  return result;
}

void print_table() {
  std::printf("\nE5: convergence from arbitrary state (scrambled nodes + "
              "forged in-flight messages + faulty network until ι0)\n");
  Table table({"n", "f", "junk/node", "runs", "conv p50 (ms)", "conv max (ms)",
               "∆stb bound (ms)", "by-∆stb%", "post-∆stb violations"});
  CsvWriter csv("bench_convergence.csv",
                {"n", "f", "spurious", "conv_p50_ms", "conv_max_ms",
                 "stb_bound_ms", "converged_pct"});
  struct Case {
    std::uint32_t n, f, spurious;
  };
  for (const Case& c : {Case{4, 1, 32}, Case{7, 2, 32}, Case{7, 2, 128},
                        Case{10, 3, 64}, Case{13, 4, 64}}) {
    const Params params{c.n, c.f, Scenario{}.make_params().d()};
    auto r = run_convergence(c.n, c.f, c.spurious, 20, 8000);
    table.add_row({std::to_string(c.n), std::to_string(c.f),
                   std::to_string(c.spurious), std::to_string(r.runs),
                   r.convergence.empty() ? "-"
                                         : Table::fmt_ms(r.convergence.quantile(0.5)),
                   r.convergence.empty() ? "-" : Table::fmt_ms(r.convergence.max()),
                   Table::fmt_ms(double(params.delta_stb().ns())),
                   Table::fmt_ms(1e6 * 100.0 * r.converged_by_stb / r.runs),
                   Table::fmt_int(r.post_stb_agreement_violations)});
    csv.row({double(c.n), double(c.f), double(c.spurious),
             r.convergence.empty() ? 0 : r.convergence.quantile(0.5) * 1e-6,
             r.convergence.empty() ? 0 : r.convergence.max() * 1e-6,
             params.delta_stb().millis(),
             100.0 * r.converged_by_stb / r.runs});
  }
  table.print();
  std::printf("(Paper: stability within ∆stb = 2∆reset after coherence; "
              "measured convergence is typically a small fraction of the "
              "bound, and post-∆stb violations must be 0.)\n");
}

void BM_Convergence(benchmark::State& state) {
  ConvergenceResult r;
  for (auto _ : state) r = run_convergence(7, 2, 64, 5, 1);
  if (!r.convergence.empty()) {
    state.counters["conv_p50_ms"] = r.convergence.quantile(0.5) * 1e-6;
  }
}
BENCHMARK(BM_Convergence)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
