// E6 — Separation / Uniqueness (Timeliness-4, IA-4).
//
// Paper claims: for any two correct decisions regarding the same General,
//   (a) different values  ⇒ |rt(τG_q) − rt(τG_p)| > 4d
//   (b) same value        ⇒ |rt(τG)| gap ≤ 6d  or  > 2∆rmv − 3d
//
// The attacker here is a spamming General violating the Sending Validity
// Criteria at will; the correct nodes' own pacing state (last(G), last(G,m))
// must enforce the separation regardless.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/stats.hpp"

namespace ssbft {
namespace {

struct SeparationResult {
  std::uint64_t diff_value_pairs = 0;
  std::uint64_t diff_value_violations = 0;  // gap ≤ 4d
  Duration min_diff_gap = Duration::max();
  std::uint64_t same_value_pairs = 0;
  std::uint64_t same_value_violations = 0;  // gap in (6d, 2∆rmv−3d]
  std::uint32_t decisions = 0;
};

SeparationResult run_separation(Duration spam_period, std::uint32_t trials,
                                std::uint64_t seed0) {
  SeparationResult result;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    Scenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.byz_nodes = {0, 6};
    sc.adversary = AdversaryKind::kSpamGeneral;
    sc.adversary_period = spam_period;
    sc.run_for = milliseconds(600);
    sc.seed = seed0 + trial;
    Cluster cluster(sc);
    cluster.run();
    const Params& params = cluster.params();
    const Duration d = params.d();

    // All correct decisions for General 0 (one of the spammers).
    std::vector<TimedDecision> decs;
    for (const auto& dec : cluster.decisions()) {
      if (dec.decision.general.node == 0 && dec.decision.decided()) {
        decs.push_back(dec);
      }
    }
    result.decisions += std::uint32_t(decs.size());
    for (std::size_t i = 0; i < decs.size(); ++i) {
      for (std::size_t j = i + 1; j < decs.size(); ++j) {
        const Duration gap = abs(decs[i].tau_g_real - decs[j].tau_g_real);
        if (decs[i].decision.value != decs[j].decision.value) {
          ++result.diff_value_pairs;
          result.min_diff_gap = std::min(result.min_diff_gap, gap);
          if (gap <= 4 * d) ++result.diff_value_violations;
        } else {
          ++result.same_value_pairs;
          if (gap > 6 * d && gap <= 2 * params.delta_rmv() - 3 * d) {
            ++result.same_value_violations;
          }
        }
      }
    }
  }
  return result;
}

void print_table() {
  const Params params = Scenario{}.make_params();
  std::printf("\nE6: separation under a spamming General (bounds: distinct "
              "values > 4d = %.3fms apart; same value ≤ 6d or > 2∆rmv−3d = "
              "%.3fms)\n",
              (4 * params.d()).millis(),
              (2 * params.delta_rmv() - 3 * params.d()).millis());
  Table table({"spam period (ms)", "decisions", "≠value pairs",
               "min ≠value gap (ms)", "≠value violations",
               "=value pairs", "=value violations"});
  for (auto period : {microseconds(500), milliseconds(1), milliseconds(2),
                      milliseconds(5)}) {
    auto r = run_separation(period, 15, 9000);
    table.add_row(
        {Table::fmt_ms(double(period.ns())), Table::fmt_int(r.decisions),
         Table::fmt_int(r.diff_value_pairs),
         r.diff_value_pairs ? Table::fmt_ms(double(r.min_diff_gap.ns())) : "-",
         Table::fmt_int(r.diff_value_violations),
         Table::fmt_int(r.same_value_pairs),
         Table::fmt_int(r.same_value_violations)});
  }
  table.print();
  std::printf("(Both violation columns must be 0.)\n");
}

void BM_Separation(benchmark::State& state) {
  SeparationResult r;
  for (auto _ : state) r = run_separation(milliseconds(1), 5, 1);
  state.counters["violations"] =
      double(r.diff_value_violations + r.same_value_violations);
}
BENCHMARK(BM_Separation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssbft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ssbft::print_table();
  return 0;
}
