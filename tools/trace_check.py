#!/usr/bin/env python3
"""Structural validator for traces produced by ``ssbft_cli --trace``.

Checks the Perfetto / chrome://tracing JSON artifact the TraceWriter
emits (``{"traceEvents": [...]}``) for the invariants the writer is
supposed to normalize into existence, so CI can gate on a traced run
without loading the file into a UI:

  * document shape: a JSON object with a ``traceEvents`` list; every
    event is an object with the keys its phase requires (``name``,
    ``ph``, ``ts``, ``pid``, ``tid``; ``cat`` for non-metadata phases;
    ``id`` for async phases);
  * known phases only: B/E (sync spans), b/e (async spans), i (instant),
    C (counter), M (metadata);
  * sync-span balance: per (pid, tid) the B/E events form a proper
    stack — every E matches the name of the innermost open B, and
    nothing is left open at the end of the file;
  * async-span balance: per (cat, name, id) the b/e counts match;
  * monotone timestamps: ``ts`` never decreases over the event list
    (metadata events carry no meaningful ts and are skipped).

Any violation prints a line per defect and exits 1; malformed input
(unreadable file, not JSON, wrong shape) exits 2; a clean trace prints
a one-line summary and exits 0. stdlib-only by design: CI runs it
straight from the checkout.

Usage:
  tools/trace_check.py trace.json [trace2.json ...]
  tools/trace_check.py --self-test
"""

from __future__ import annotations

import json
import sys

KNOWN_PHASES = {"B", "E", "b", "e", "i", "C", "M"}
REQUIRED_KEYS = {"name", "ph", "ts", "pid", "tid"}
METADATA_KEYS = {"name", "ph", "pid"}  # M events carry no timeline position
ASYNC_PHASES = {"b", "e"}


def check_events(events: list, errors: list[str]) -> int:
    """Validate one traceEvents list; append defect lines to `errors`.

    Returns the number of non-metadata events checked.
    """
    open_spans: dict[tuple, list[str]] = {}  # (pid, tid) -> stack of names
    async_depth: dict[tuple, int] = {}       # (cat, name, id) -> open count
    last_ts = None
    checked = 0
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        missing = (METADATA_KEYS if ph == "M" else REQUIRED_KEYS) - event.keys()
        if missing:
            errors.append(f"{where}: missing keys {sorted(missing)}")
            continue
        if ph == "M":
            continue  # metadata: no cat or ts, tid optional (process_name)
        checked += 1
        where = f"event {index} ({event['name']!r})"
        if "cat" not in event:
            errors.append(f"{where}: missing category")
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: non-numeric ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(f"{where}: ts {ts} < previous {last_ts}")
        last_ts = ts
        if ph == "B":
            open_spans.setdefault((event["pid"], event["tid"]), []).append(
                event["name"])
        elif ph == "E":
            stack = open_spans.get((event["pid"], event["tid"]), [])
            if not stack:
                errors.append(f"{where}: span end with no open span")
            elif stack[-1] != event["name"]:
                errors.append(
                    f"{where}: span end crosses open span {stack[-1]!r}")
                stack.pop()
            else:
                stack.pop()
        elif ph in ASYNC_PHASES:
            if "id" not in event:
                errors.append(f"{where}: async event without id")
                continue
            key = (event.get("cat"), event["name"], event["id"])
            depth = async_depth.get(key, 0)
            if ph == "b":
                async_depth[key] = depth + 1
            elif depth == 0:
                errors.append(f"{where}: async end with no open span id="
                              f"{event['id']!r}")
            else:
                async_depth[key] = depth - 1
    for (pid, tid), stack in sorted(open_spans.items(), key=repr):
        for name in stack:
            errors.append(
                f"end of trace: span {name!r} still open on {pid}/{tid}")
    for (cat, name, span_id), depth in sorted(async_depth.items(), key=repr):
        if depth != 0:
            errors.append(f"end of trace: async span {name!r} id={span_id!r} "
                          f"left open {depth}x")
    return checked


def check_file(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"{path}: unreadable: {err}")
        return 2
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"),
                                                   list):
        print(f"{path}: not a traceEvents document")
        return 2
    errors: list[str] = []
    checked = check_events(doc["traceEvents"], errors)
    for line in errors:
        print(f"{path}: {line}")
    if errors:
        print(f"{path}: FAIL ({len(errors)} defect(s) over {checked} events)")
        return 1
    print(f"{path}: OK ({checked} events)")
    return 0


# --- self test --------------------------------------------------------------

def _event(ph, name="x", ts=0, pid=1, tid=1, cat="engine", **extra):
    event = {"name": name, "ph": ph, "ts": ts, "pid": pid, "tid": tid}
    if ph != "M":
        event["cat"] = cat
    event.update(extra)
    return event


def self_test() -> int:
    good = [
        _event("M", name="thread_name", args={"name": "windows"}),
        _event("B", "window", ts=0),
        _event("b", "round", ts=1, id="0x1"),
        _event("i", "steal", ts=2, s="t"),
        _event("C", "events", ts=3, args={"events": 4}),
        _event("e", "round", ts=4, id="0x1"),
        _event("E", "window", ts=5),
    ]
    cases = [
        ("balanced trace", good, 0),
        ("unclosed sync span", good[:2], 1),
        ("orphan sync end", [_event("E", "window", ts=0)], 1),
        ("crossed sync spans",
         [_event("B", "a", ts=0), _event("B", "b", ts=1),
          _event("E", "a", ts=2), _event("E", "b", ts=3)], 1),
        ("unclosed async span", good[:3] + [good[6]], 1),
        ("async end without begin",
         [_event("e", "round", ts=0, id="0x9")], 1),
        ("time runs backwards",
         [_event("i", "a", ts=5), _event("i", "b", ts=4)], 1),
        ("unknown phase", [_event("Z", ts=0)], 1),
        ("missing keys", [{"ph": "i", "ts": 0}], 1),
        ("async without id", [_event("b", "round", ts=0)], 1),
    ]
    failures = 0
    for label, events, expected in cases:
        errors: list[str] = []
        check_events(list(events), errors)
        got = 1 if errors else 0
        status = "ok" if got == expected else "MISMATCH"
        if got != expected:
            failures += 1
        print(f"self-test: {label}: {status}")
    print(f"self-test: {len(cases) - failures}/{len(cases)} cases passed")
    return 0 if failures == 0 else 1


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[0])
        print("usage: trace_check.py TRACE.json [...] | --self-test")
        return 2
    if argv[1] == "--self-test":
        return self_test()
    worst = 0
    for path in argv[1:]:
        worst = max(worst, check_file(path))
    return worst


if __name__ == "__main__":
    sys.exit(main(sys.argv))
