#!/usr/bin/env python3
"""CI perf-regression gate over the committed BENCH_*.json baselines.

Compares freshly produced bench artifacts (BENCH_engine.json,
BENCH_shard.json, BENCH_dutycycle.json, ...) against the baselines
committed in the repository:

  * every ``*events_per_sec`` metric is checked as a ratio
    fresh / baseline — below ``--fail-ratio`` (default 0.5×) fails the
    gate, below ``--warn-ratio`` (default 0.8×) warns. The tolerance is
    deliberately generous: CI runners are noisy and the baselines were
    measured on different hardware; the gate exists to catch collapses
    (an accidentally quadratic hot path), not 10% wobble.
  * every determinism/digest-parity flag (``deterministic``,
    ``digest_parity``, ``parity``) must be true in the fresh artifact —
    a mismatch is a HARD failure regardless of throughput: it means a
    sharded or wheel-backed run diverged from its serial twin, which
    invalidates every measurement in the file.
  * metrics present in the baseline but missing fresh are hard failures
    too (a silently dropped bench is a silently dropped gate).
  * ``speedup`` metrics are compared only when both artifacts report the
    same top-level ``hardware_threads``: a parallel-engine speedup
    measured on an 8-core runner says nothing against a 1-core baseline,
    so a core-count mismatch warn-skips those comparisons instead of
    failing them. With matching cores, a speedup below 0.9× of the
    baseline warns and below ``--fail-ratio`` fails.
  * ``imbalance_mean`` (per-window max/min worker dispatches from the
    shard scheduler) fails when the fresh value is both > 2× the
    baseline and > 1.2 — a cost-aware policy that stopped balancing is
    a silent perf regression even when throughput wobble hides it.
  * ``peak_rss_kb`` (the large-n scale pin's process high-water mark)
    fails above 2× the baseline: memory is the other axis the flat-state
    refactor is accountable for, and a doubled footprint at n = 4096
    means a per-node structure quietly went quadratic.
  * the ``flat_state_baseline`` pin (BENCH_shard.json): the fresh n = 512
    serial throughput must be ≥ 1.2× the recorded map-based-core
    throughput — but only when the fresh run's ``hardware_threads``
    matches the pin's; cross-machine the comparison is meaningless and
    warn-skips.

stdlib-only by design: CI runs it straight from the checkout.

Usage:
  tools/bench_check.py --baseline . --fresh build [--files BENCH_engine.json BENCH_shard.json]
  tools/bench_check.py --self-test
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

THROUGHPUT_SUFFIX = "events_per_sec"
THROUGHPUT_EXTRA = ("scenarios_per_sec",)
PARITY_KEYS = ("deterministic", "digest_parity", "parity")
SPEEDUP_KEY = "speedup"
IMBALANCE_KEY = "imbalance_mean"
TRACEOFF_PREFIX = "traceoff_"
SPEEDUP_WARN_RATIO = 0.9
IMBALANCE_FAIL_RATIO = 2.0
IMBALANCE_FAIL_FLOOR = 1.2
RSS_KEY = "peak_rss_kb"
RSS_FAIL_RATIO = 2.0
FLAT_STATE_KEY = "flat_state_baseline"
FLAT_STATE_MIN_RATIO = 1.2
# Tracing compiled in but DISARMED must stay within noise of the baseline:
# its contract is one thread-local load and a branch per emission site, so a
# >5% dip on identical hardware means the tracer leaked onto the hot path.
# Only enforced when hardware_threads match — cross-machine, the generous
# standard ratios apply instead.
TRACEOFF_FAIL_RATIO = 0.95

OK, WARN, FAIL = "ok", "WARN", "FAIL"


def walk(node, path=""):
    """Yield (dotted_path, leaf_value) for every leaf of a JSON tree."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from walk(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from walk(value, f"{path}[{i}]")
    else:
        yield path, node


def is_throughput(path):
    leaf = path.rsplit(".", 1)[-1]
    return leaf.endswith(THROUGHPUT_SUFFIX) or any(
        leaf.startswith(extra) for extra in THROUGHPUT_EXTRA
    )


def is_parity(path):
    return path.rsplit(".", 1)[-1] in PARITY_KEYS


def is_speedup(path):
    return path.rsplit(".", 1)[-1] == SPEEDUP_KEY


def is_imbalance(path):
    return path.rsplit(".", 1)[-1] == IMBALANCE_KEY


def is_rss(path):
    return path.rsplit(".", 1)[-1] == RSS_KEY


def is_traceoff(path):
    return path.rsplit(".", 1)[-1].startswith(TRACEOFF_PREFIX)


def hardware_threads(artifact):
    return artifact.get("hardware_threads") if isinstance(artifact, dict) \
        else None


def check_flat_state_pin(name, fresh):
    """The flat-state refactor's own acceptance gate: the fresh n = 512
    serial throughput must clear FLAT_STATE_MIN_RATIO x the recorded
    map-based-core throughput pinned in ``flat_state_baseline`` — on
    matching hardware only."""
    pin = fresh.get(FLAT_STATE_KEY) if isinstance(fresh, dict) else None
    if not isinstance(pin, dict):
        return []
    map_eps = pin.get("n512_serial_events_per_sec")
    if not isinstance(map_eps, (int, float)) or map_eps <= 0:
        return [(FAIL, f"{name}: {FLAT_STATE_KEY} present but carries no "
                       f"positive n512_serial_events_per_sec")]
    if pin.get("hardware_threads") != hardware_threads(fresh):
        return [(WARN, f"{name}: flat-state pin skipped — fresh run's "
                       f"hardware_threads {hardware_threads(fresh)} differs "
                       f"from the pin's {pin.get('hardware_threads')}")]
    eps = [row.get("serial_events_per_sec")
           for row in (fresh.get("rows") or [])
           if isinstance(row, dict) and row.get("n") == 512
           and isinstance(row.get("serial_events_per_sec"), (int, float))]
    if not eps:
        return [(FAIL, f"{name}: {FLAT_STATE_KEY} pinned but no n = 512 row "
                       f"reports serial_events_per_sec — the gated bench "
                       f"silently vanished")]
    ratio = max(eps) / float(map_eps)
    line = (f"{name}: flat-state n512 serial {max(eps):.0f} ev/s vs "
            f"map-based pin {float(map_eps):.0f} ({ratio:.2f}x)")
    if ratio < FLAT_STATE_MIN_RATIO:
        return [(FAIL, f"{line} — below the {FLAT_STATE_MIN_RATIO}x "
                       f"flat-state floor on identical hardware")]
    return [(OK, line)]


def check_file(name, baseline, fresh, fail_ratio, warn_ratio):
    """Compare one artifact; returns a list of (severity, message)."""
    results = []
    fresh_leaves = dict(walk(fresh))
    results.extend(check_flat_state_pin(name, fresh))

    # Speedups only transfer between machines with the same core count: a
    # 1-core container legitimately measures ≈ 1× where an 8-core baseline
    # measured 3×. Warn-skip those comparisons instead of failing them.
    base_threads = hardware_threads(baseline)
    fresh_threads = hardware_threads(fresh)
    threads_differ = (base_threads is not None and fresh_threads is not None
                      and base_threads != fresh_threads)
    if threads_differ:
        results.append(
            (WARN, f"{name}: hardware_threads {fresh_threads} vs baseline "
                   f"{base_threads} — speedup comparisons skipped"))

    # Digest parity: checked on the FRESH artifact — the baseline being
    # green is not evidence about this run.
    for path, value in fresh_leaves.items():
        if is_parity(path):
            if value is True:
                results.append((OK, f"{name}:{path} parity holds"))
            else:
                results.append(
                    (FAIL, f"{name}:{path} DIGEST PARITY MISMATCH — a "
                           f"parallel/wheel run diverged from serial"))

    for path, base_value in walk(baseline):
        # A parity flag the baseline had but the fresh artifact dropped is
        # a silently dropped gate — hard failure, same as a dropped metric.
        if is_parity(path) and path not in fresh_leaves:
            results.append(
                (FAIL, f"{name}:{path} parity flag present in baseline but "
                       f"missing from the fresh artifact"))
            continue
        if not isinstance(base_value, (int, float)) or base_value <= 0:
            continue
        throughput = is_throughput(path)
        speedup = is_speedup(path)
        imbalance = is_imbalance(path)
        rss = is_rss(path)
        if not (throughput or speedup or imbalance or rss):
            continue
        fresh_value = fresh_leaves.get(path)
        if fresh_value is None:
            results.append(
                (FAIL, f"{name}:{path} present in baseline but missing from "
                       f"the fresh artifact"))
            continue
        if imbalance:
            # Higher is worse here: imbalance is the scheduler's max/min
            # per-worker dispatch ratio, 1.0 = perfectly balanced.
            line = (f"{name}:{path} {float(fresh_value):.2f} vs baseline "
                    f"{float(base_value):.2f}")
            if (float(fresh_value) > IMBALANCE_FAIL_RATIO * float(base_value)
                    and float(fresh_value) > IMBALANCE_FAIL_FLOOR):
                results.append(
                    (FAIL, f"{line} — shard imbalance regressed (> "
                           f"{IMBALANCE_FAIL_RATIO}x baseline and > "
                           f"{IMBALANCE_FAIL_FLOOR})"))
            else:
                results.append((OK, line))
            continue
        if rss:
            # Higher is worse: the large-n scale pin's memory ceiling.
            line = (f"{name}:{path} {float(fresh_value):.0f} kB vs baseline "
                    f"{float(base_value):.0f} kB")
            if float(fresh_value) > RSS_FAIL_RATIO * float(base_value):
                results.append(
                    (FAIL, f"{line} — peak RSS above the {RSS_FAIL_RATIO}x "
                           f"ceiling: the large-n world's footprint blew up"))
            else:
                results.append((OK, line))
            continue
        if speedup and threads_differ:
            continue  # warned once above
        ratio = float(fresh_value) / float(base_value)
        line = (f"{name}:{path} {float(fresh_value):.2f} vs baseline "
                f"{float(base_value):.2f} ({ratio:.2f}x)")
        threads_match = (base_threads is not None
                         and base_threads == fresh_threads)
        if throughput and is_traceoff(path) and threads_match:
            if ratio < TRACEOFF_FAIL_RATIO:
                results.append(
                    (FAIL, f"{line} — tracing-off throughput regressed >"
                           f"{(1 - TRACEOFF_FAIL_RATIO) * 100:.0f}% on "
                           f"identical hardware: disarmed emission sites "
                           f"leaked onto the hot path"))
            else:
                results.append((OK, line))
            continue
        effective_warn = SPEEDUP_WARN_RATIO if speedup else warn_ratio
        if ratio < fail_ratio:
            results.append((FAIL, f"{line} — below the {fail_ratio}x floor"))
        elif ratio < effective_warn:
            results.append((WARN, line))
        else:
            results.append((OK, line))
    return results


def run_gate(args):
    failures = 0
    for filename in args.files:
        baseline_path = os.path.join(args.baseline, filename)
        fresh_path = os.path.join(args.fresh, filename)
        try:
            with open(baseline_path) as f:
                baseline = json.load(f)
        except OSError as e:
            print(f"FAIL {filename}: cannot read baseline: {e}")
            failures += 1
            continue
        try:
            with open(fresh_path) as f:
                fresh = json.load(f)
        except OSError as e:
            print(f"FAIL {filename}: cannot read fresh artifact: {e}")
            failures += 1
            continue
        for severity, message in check_file(
                filename, baseline, fresh, args.fail_ratio, args.warn_ratio):
            print(f"{severity:>4} {message}")
            if severity == FAIL:
                failures += 1
    if failures:
        print(f"bench_check: {failures} failure(s)")
        return 1
    print("bench_check: all gates passed")
    return 0


# --- self-test ---------------------------------------------------------------

GOOD_BASELINE = {
    "raw_dispatch": {"in_flight_64": {"slab_events_per_sec": 30e6}},
    "timer_saturation": {"in_flight_1024": {"wheel_events_per_sec": 4e6}},
    "sweep": {"scenarios_per_sec_t4": 1000.0, "deterministic": True},
}


def self_test():
    """Exercise the gate end-to-end through the real CLI path, including the
    non-zero exit on a seeded digest mismatch (the CI acceptance check)."""

    def run_cli(baseline, fresh):
        with tempfile.TemporaryDirectory() as base_dir, \
                tempfile.TemporaryDirectory() as fresh_dir:
            with open(os.path.join(base_dir, "B.json"), "w") as f:
                json.dump(baseline, f)
            with open(os.path.join(fresh_dir, "B.json"), "w") as f:
                json.dump(fresh, f)
            return main(["--baseline", base_dir, "--fresh", fresh_dir,
                         "--files", "B.json"])

    import copy

    checks = []

    # 1. Identical artifacts pass.
    checks.append(("identical artifacts pass",
                   run_cli(GOOD_BASELINE, GOOD_BASELINE) == 0))

    # 2. A mild dip (0.7x) warns but does not fail.
    dip = copy.deepcopy(GOOD_BASELINE)
    dip["raw_dispatch"]["in_flight_64"]["slab_events_per_sec"] *= 0.7
    checks.append(("0.7x dip only warns", run_cli(GOOD_BASELINE, dip) == 0))

    # 3. A collapse (0.3x) fails.
    collapse = copy.deepcopy(GOOD_BASELINE)
    collapse["timer_saturation"]["in_flight_1024"]["wheel_events_per_sec"] *= 0.3
    checks.append(("0.3x collapse fails",
                   run_cli(GOOD_BASELINE, collapse) != 0))

    # 4. A seeded digest mismatch hard-fails even with healthy throughput.
    mismatch = copy.deepcopy(GOOD_BASELINE)
    mismatch["sweep"]["deterministic"] = False
    checks.append(("digest mismatch exits non-zero",
                   run_cli(GOOD_BASELINE, mismatch) != 0))

    # 5. A dropped metric fails.
    dropped = copy.deepcopy(GOOD_BASELINE)
    del dropped["timer_saturation"]
    checks.append(("dropped metric fails",
                   run_cli(GOOD_BASELINE, dropped) != 0))

    # 6. A dropped parity flag fails too (a gate that vanished is not green).
    unparitied = copy.deepcopy(GOOD_BASELINE)
    del unparitied["sweep"]["deterministic"]
    checks.append(("dropped parity flag fails",
                   run_cli(GOOD_BASELINE, unparitied) != 0))

    # 7. Speedups are skipped (warn only) when the core counts differ —
    #    a 1-core container vs an 8-core baseline is not a regression.
    shard_base = {
        "hardware_threads": 8,
        "rows": [{"n": 32, "sched": "steal", "speedup": 3.1,
                  "imbalance_mean": 1.05, "parity": True}],
    }
    one_core = copy.deepcopy(shard_base)
    one_core["hardware_threads"] = 1
    one_core["rows"][0]["speedup"] = 0.97
    checks.append(("speedup skipped on core-count mismatch",
                   run_cli(shard_base, one_core) == 0))

    # 8. With MATCHING core counts a collapsed speedup fails.
    slow = copy.deepcopy(shard_base)
    slow["rows"][0]["speedup"] = 0.9  # 0.29x of the 3.1 baseline
    checks.append(("speedup collapse fails on same hardware",
                   run_cli(shard_base, slow) != 0))

    # 9. A scheduler that stopped balancing fails the imbalance gate…
    skewed = copy.deepcopy(shard_base)
    skewed["rows"][0]["imbalance_mean"] = 6.0
    checks.append(("imbalance regression fails",
                   run_cli(shard_base, skewed) != 0))
    #    …but wobble above a near-1.0 baseline stays below the 1.2 floor.
    wobble = copy.deepcopy(shard_base)
    wobble["rows"][0]["imbalance_mean"] = 1.15
    checks.append(("imbalance wobble under the floor passes",
                   run_cli(shard_base, wobble) == 0))

    # 10. The disarmed-tracer gate: on identical hardware a 7% traceoff dip
    #     fails even though it is far above the generous 0.5x floor…
    trace_base = {
        "hardware_threads": 8,
        "trace_overhead": {"traceoff_events_per_sec": 3.0e6,
                           "traceon_events_per_sec": 2.7e6},
    }
    leaked = copy.deepcopy(trace_base)
    leaked["trace_overhead"]["traceoff_events_per_sec"] *= 0.93
    checks.append(("traceoff 7% dip fails on same hardware",
                   run_cli(trace_base, leaked) != 0))
    #     …a 3% wobble passes…
    wobbly = copy.deepcopy(trace_base)
    wobbly["trace_overhead"]["traceoff_events_per_sec"] *= 0.97
    checks.append(("traceoff 3% wobble passes",
                   run_cli(trace_base, wobbly) == 0))
    #     …and across different machines only the standard ratios apply.
    other_machine = copy.deepcopy(leaked)
    other_machine["hardware_threads"] = 2
    checks.append(("traceoff dip tolerated across machines",
                   run_cli(trace_base, other_machine) == 0))
    #     traceon throughput stays under the standard generous gate: tracing
    #     ON is allowed to cost something.
    traced_slower = copy.deepcopy(trace_base)
    traced_slower["trace_overhead"]["traceon_events_per_sec"] *= 0.85
    checks.append(("traceon dip stays a warning",
                   run_cli(trace_base, traced_slower) == 0))

    # 11. The large-n RSS ceiling: within 2x passes, above it fails, and a
    #     dropped peak_rss_kb is a dropped gate.
    rss_base = {
        "hardware_threads": 8,
        "large_n": {"n": 4096, "serial_events_per_sec": 1.0e5,
                    "peak_rss_kb": 900_000, "parity": True},
    }
    heavier = copy.deepcopy(rss_base)
    heavier["large_n"]["peak_rss_kb"] = 1_500_000
    checks.append(("peak RSS within 2x passes",
                   run_cli(rss_base, heavier) == 0))
    blown = copy.deepcopy(rss_base)
    blown["large_n"]["peak_rss_kb"] = 2_000_000
    checks.append(("peak RSS above 2x ceiling fails",
                   run_cli(rss_base, blown) != 0))
    no_rss = copy.deepcopy(rss_base)
    del no_rss["large_n"]["peak_rss_kb"]
    checks.append(("dropped peak RSS metric fails",
                   run_cli(rss_base, no_rss) != 0))

    # 12. The flat-state pin: on the pin's hardware the n = 512 serial row
    #     must clear 1.2x the recorded map-based throughput; cross-machine
    #     the pin warn-skips; a vanished n = 512 row fails.
    flat_base = {
        "hardware_threads": 1,
        "rows": [{"n": 512, "sched": "static",
                  "serial_events_per_sec": 200_000.0, "parity": True}],
        "flat_state_baseline": {"commit": "d9dfa12", "hardware_threads": 1,
                                "n512_serial_events_per_sec": 158_726},
    }
    checks.append(("flat-state pin passes at 1.26x",
                   run_cli(flat_base, flat_base) == 0))
    too_slow = copy.deepcopy(flat_base)
    too_slow["rows"][0]["serial_events_per_sec"] = 170_000.0  # 1.07x
    checks.append(("flat-state pin fails below 1.2x",
                   run_cli(flat_base, too_slow) != 0))
    other_hw = copy.deepcopy(flat_base)
    other_hw["hardware_threads"] = 8
    checks.append(("flat-state pin skipped cross-machine",
                   run_cli(flat_base, other_hw) == 0))
    no_row = copy.deepcopy(flat_base)
    no_row["rows"] = []
    checks.append(("flat-state pin fails when the n512 row vanished",
                   run_cli(flat_base, no_row) != 0))

    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"{'ok' if ok else 'FAIL':>4} self-test: {name}")
    if failed:
        print(f"bench_check --self-test: {len(failed)} self-check(s) failed")
        return 1
    print("bench_check --self-test: all self-checks passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=".",
                        help="directory holding the committed baselines")
    parser.add_argument("--fresh", default=".",
                        help="directory holding the freshly produced JSONs")
    parser.add_argument("--files", nargs="+",
                        default=["BENCH_engine.json", "BENCH_shard.json",
                                 "BENCH_ablation.json", "BENCH_quorum.json",
                                 "BENCH_dutycycle.json"])
    parser.add_argument("--fail-ratio", type=float, default=0.5)
    parser.add_argument("--warn-ratio", type=float, default=0.8)
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in gate-behavior checks")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
