// ssbft_explore — drive the adversarial-schedule explorer from the command
// line: enumerate extreme-delay prefix schedules (plus randomized tails)
// for a chosen cluster/adversary and report any safety violation with its
// trial id, so a counterexample is reproducible by re-running the same
// configuration.
//
//   ssbft_explore [--n N] [--f F] [--byz COUNT] [--adversary KIND]
//                 [--trials T] [--depth K] [--scramble] [--quorum POLICY]
//                 [--help]
//
// KIND ∈ silent | noise | equivocate | faker       (default: silent)
// POLICY ∈ optimal | majority                       (default: optimal)
//
// Examples:
//   ssbft_explore --n 4 --byz 1 --trials 243 --depth 5
//   ssbft_explore --n 4 --adversary equivocate --trials 729 --depth 6
//   ssbft_explore --n 7 --byz 2 --scramble --trials 128 --depth 4
#include <cstdio>
#include <cstdlib>
#include <string>

#include "check/explorer.hpp"
#include "harness/runner.hpp"

namespace {

using namespace ssbft;

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--n N] [--f F] [--byz COUNT] [--adversary KIND]\n"
               "          [--trials T] [--depth K] [--scramble]\n"
               "          [--quorum optimal|majority] [--help]\n"
               "KIND: silent|noise|equivocate|faker\n",
               argv0);
}

[[noreturn]] void usage(const char* argv0) {
  print_usage(stderr, argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  ExplorerConfig config;
  Scenario& sc = config.base;
  sc.n = 4;
  sc.f = 1;
  std::uint32_t byz = 0;
  bool scramble = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--n") {
      sc.n = std::uint32_t(std::atoi(next()));
    } else if (arg == "--f") {
      sc.f = std::uint32_t(std::atoi(next()));
    } else if (arg == "--byz") {
      byz = std::uint32_t(std::atoi(next()));
    } else if (arg == "--trials") {
      config.trials = std::uint32_t(std::atoi(next()));
    } else if (arg == "--depth") {
      config.systematic_depth = std::uint32_t(std::atoi(next()));
    } else if (arg == "--scramble") {
      scramble = true;
    } else if (arg == "--help") {
      print_usage(stdout, argv[0]);
      return 0;
    } else if (arg == "--adversary") {
      const std::string kind = next();
      if (kind == "silent") {
        sc.adversary = AdversaryKind::kSilent;
      } else if (kind == "noise") {
        sc.adversary = AdversaryKind::kNoise;
      } else if (kind == "equivocate") {
        sc.adversary = AdversaryKind::kEquivocatingGeneral;
        config.expect_validity = false;
      } else if (kind == "faker") {
        sc.adversary = AdversaryKind::kQuorumFaker;
        config.expect_validity = false;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--quorum") {
      const std::string policy = next();
      if (policy == "optimal") {
        sc.quorum_policy = QuorumPolicy::kOptimal;
      } else if (policy == "majority") {
        sc.quorum_policy = QuorumPolicy::kMajority;
      } else {
        usage(argv[0]);
      }
    } else {
      usage(argv[0]);
    }
  }
  if (sc.f == 0 || sc.n <= 3 * sc.f) {
    std::fprintf(stderr, "need n > 3f with f >= 1 (got n=%u f=%u)\n", sc.n,
                 sc.f);
    return 2;
  }

  sc.with_tail_faults(byz);
  if (sc.adversary == AdversaryKind::kSilent ||
      sc.adversary == AdversaryKind::kNoise) {
    // Correct-General workload; the General is node 0 (never a tail fault
    // unless byz == n, which n > 3f forbids).
    sc.with_proposal(milliseconds(5), 0, 42);
  }
  sc.run_for = milliseconds(150);
  if (scramble) {
    sc.transient_scramble = true;
    const Duration stb = sc.make_params().delta_stb();
    sc.proposals.clear();
    sc.with_proposal(stb + milliseconds(5), 0, 42);
    sc.run_for = stb + milliseconds(150);
    config.check_after = RealTime::zero() + stb;
  }

  std::printf("exploring: n=%u f=%u byz=%u adversary=%s quorum=%s "
              "trials=%u depth=%u%s\n",
              sc.n, sc.f, byz, to_string(sc.adversary),
              to_string(sc.quorum_policy), config.trials,
              config.systematic_depth, scramble ? " scramble" : "");

  const ExplorerReport report = explore(config);

  std::printf("trials:            %u\n", report.trials);
  std::printf("prefix tree size:  %llu\n",
              static_cast<unsigned long long>(report.prefix_combinations));
  std::printf("executions:        %u\n", report.executions_checked);
  std::printf("decisions:         %u\n", report.decisions_seen);
  std::printf("violations:        %zu\n", report.violations.size());
  for (const auto& violation : report.violations) {
    std::printf("  trial %llu: %s\n",
                static_cast<unsigned long long>(violation.trial),
                violation.what.c_str());
  }
  return report.clean() ? 0 : 1;
}
