// ssbft_cli — run simulated scenarios from the command line, all through
// the unified Scenario → Cluster path. Any protocol stack is deployable:
// --stack selects the layer. Two modes:
//
// Single run (default): one (Scenario, seed), full metrics-stream report.
//   ssbft_cli [--stack KIND] [--n N] [--f F] [--byz COUNT]
//             [--adversary KIND] [--seed S] [--delta-us US] [--scramble]
//             [--chaos-ms MS] [--chaos-count K] [--chaos-duty MS]
//             [--proposals K] [--run-ms MS] [--depth D]
//             [--auth KIND] [--payload-bytes N]
//             [--topology KIND] [--cluster-size C] [--gossip-fanout F]
//             [--shards S] [--shard-sched MODE] [--link-min-us US]
//             [--trace PATH] [--stats-json PATH] [--json PATH]
//             [--wire-trace] [--verbose] [--help]
//
// Authenticated payloads (single run or sweep, any engine):
//   --auth hmac       tag every send with the deterministic keyed scheme
//                     (sim/auth.hpp); deliveries whose tag does not verify
//                     are discarded and counted (net auth_rejected). The
//                     default, --auth null, is the legacy untagged model.
//   --payload-bytes N attach an N-byte patterned command body to every
//                     injected proposal. Bodies ride the shared payload
//                     pool (zero-copy fan-out); the log stacks fold each
//                     committed body's checksum into the run digest.
//
// Observability outputs (single-run mode, any engine):
//   --trace PATH      record a structured timeline (harness/trace.hpp) and
//                     export it as Perfetto / chrome://tracing JSON — open
//                     at https://ui.perfetto.dev. Protocol round spans,
//                     engine window/steal/repartition/migration events,
//                     workload and chaos instants. Digests are bit-identical
//                     with or without it (test_trace pins that).
//   --stats-json PATH dump the self-describing stats registry (engine,
//                     network, scheduler, tracer counters with units+help).
//   --json PATH       machine-readable run report: outcome, net/sched
//                     stats (executor AND owner imbalance views), and the
//                     per-chaos-window stabilization rows.
//   --wire-trace      print every wire event to stdout (serial engine only;
//                     the old --trace flag).
//
// Dissemination overlay (sim/topology.hpp), single run or sweep:
//   --topology flat       all-to-all fan-out (the default)
//   --topology federated  two-level clusters: the origin reaches its own
//                         cluster plus one representative per foreign
//                         cluster; representatives relay locally. Needs
//                         --cluster-size C with C dividing n.
//   --topology gossip     fanout-F relay tree rooted at the origin. Needs
//                         --gossip-fanout F >= 1.
// Overlays change who fans a broadcast out, never who receives it; relays
// forward the origin's authenticated message unchanged. Same seed => same
// digest on every engine. With a chaos schedule non-flat overlays degrade
// to flat (a dropped relay copy would orphan a whole subtree).
//
// --shards S deploys on the conservative-parallel engine (S shards,
// bit-identical results). It needs a lookahead: a link-delay distribution
// with a positive minimum, e.g. --link-min-us 100. --shard-sched picks the
// scheduling policy for those shards — static (fixed equal blocks),
// balance (cost-aware repartitioning), steal (deterministic work
// stealing), or lax (slack-barrier windows); digests are identical under
// every mode, and the adaptive ones print a scheduler report. Without one the run
// degrades to the serial engine. Combined with --chaos-ms the run
// alternates: each chaos window executes on the serial engine, the
// complete in-flight state migrates to the windowed engine for the
// stabilization stretch that follows, and migrates back when the next
// window opens — digests identical to all-serial. --chaos-count K repeats
// the window K times, --chaos-duty MS sets the start-to-start stride
// (0 ⇒ back-to-back); each run prints a per-window stabilization report
// (time to first correct observable after every burst).
//
// Sweep (--sweep): a Scenarios × seeds grid on the SweepRunner worker pool
// — one independent World per run, bit-identical to serial execution.
//   ssbft_cli --sweep [--stack KIND] [--sweep-n LIST] [--sweep-f LIST]
//             [--sweep-adversary LIST] [--seeds K] [--threads T]
//             [--csv PATH] [--json PATH] [...model flags as above]
//
// --stack     ∈ agree | pulse | clock | log | pipeline | tps
// --adversary ∈ silent | noise | equivocate | stagger | spam | replay | faker
//
// Examples:
//   ssbft_cli --n 7 --byz 2 --adversary noise --proposals 3
//   ssbft_cli --n 10 --byz 3 --scramble --chaos-ms 10 --proposals 20
//   ssbft_cli --stack pulse --n 7 --byz 2 --scramble
//   ssbft_cli --sweep --sweep-n 4,7,10 --sweep-adversary silent,noise
//             --seeds 8 --threads 4 --csv sweep.csv --json sweep.json
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "app/pipelined_log.hpp"
#include "app/replicated_log.hpp"
#include "clocksync/clock_sync.hpp"
#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/stats_registry.hpp"
#include "harness/sweep.hpp"
#include "harness/trace.hpp"
#include "pulse/pulse_sync.hpp"
#include "sim/duty_world.hpp"
#include "sim/payload.hpp"
#include "sim/shard_world.hpp"
#include "sim/tap.hpp"
#include "util/csv.hpp"

namespace {

using namespace ssbft;

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--stack KIND] [--n N] [--f F] [--byz COUNT]\n"
               "          [--adversary KIND] [--seed S] [--delta-us US]\n"
               "          [--scramble] [--chaos-ms MS] [--chaos-count K]\n"
               "          [--chaos-duty MS] [--proposals K]\n"
               "          [--run-ms MS] [--depth D] [--shards S]\n"
               "          [--auth KIND] [--payload-bytes N]\n"
               "          [--topology KIND] [--cluster-size C]\n"
               "          [--gossip-fanout F]\n"
               "          [--shard-sched MODE] [--link-min-us US]\n"
               "          [--trace PATH] [--stats-json PATH] [--json PATH]\n"
               "          [--wire-trace] [--verbose] [--help]\n"
               "       %s --sweep [--sweep-n LIST] [--sweep-f LIST]\n"
               "          [--sweep-adversary LIST] [--seeds K] [--threads T]\n"
               "          [--csv PATH] [--json PATH]\n"
               "STACK: agree|pulse|clock|log|pipeline|tps\n"
               "ADVERSARY: silent|noise|equivocate|stagger|spam|replay|faker\n"
               "MODE: static|balance|steal|lax\n"
               "AUTH: null|hmac\n"
               "TOPOLOGY: flat|federated|gossip\n",
               argv0, argv0);
}

[[noreturn]] void usage(const char* argv0) {
  print_usage(stderr, argv0);
  std::exit(2);
}

AdversaryKind parse_adversary(const std::string& name, const char* argv0) {
  if (name == "silent") return AdversaryKind::kSilent;
  if (name == "noise") return AdversaryKind::kNoise;
  if (name == "equivocate") return AdversaryKind::kEquivocatingGeneral;
  if (name == "stagger") return AdversaryKind::kStaggeredGeneral;
  if (name == "spam") return AdversaryKind::kSpamGeneral;
  if (name == "replay") return AdversaryKind::kReplay;
  if (name == "faker") return AdversaryKind::kQuorumFaker;
  usage(argv0);
}

AuthKind parse_auth(const std::string& name, const char* argv0) {
  if (name == "null") return AuthKind::kNull;
  if (name == "hmac") return AuthKind::kHmac;
  usage(argv0);
}

Topology parse_topology(const std::string& name, const char* argv0) {
  if (name == "flat") return Topology::kFlat;
  if (name == "federated") return Topology::kFederated;
  if (name == "gossip") return Topology::kGossip;
  usage(argv0);
}

ShardSched parse_shard_sched(const std::string& name, const char* argv0) {
  if (name == "static") return ShardSched::kStatic;
  if (name == "balance") return ShardSched::kBalance;
  if (name == "steal") return ShardSched::kSteal;
  if (name == "lax") return ShardSched::kLax;
  usage(argv0);
}

StackKind parse_stack(const std::string& name, const char* argv0) {
  if (name == "agree") return StackKind::kAgree;
  if (name == "pulse") return StackKind::kPulse;
  if (name == "clock") return StackKind::kClockSync;
  if (name == "log") return StackKind::kReplicatedLog;
  if (name == "pipeline") return StackKind::kPipelinedLog;
  if (name == "tps") return StackKind::kBaselineTps;
  usage(argv0);
}

/// Strict decimal parse in [min_value, max_value]; anything else (junk,
/// sign, overflow) is a usage error — atoi/strtoul would silently wrap a
/// "-1" into ~4 billion threads/seeds/nodes.
std::uint32_t parse_u32(const std::string& item, const char* argv0,
                        std::uint32_t min_value, std::uint32_t max_value) {
  if (item.empty()) usage(argv0);
  unsigned long long value = 0;
  for (const char c : item) {
    if (c < '0' || c > '9') usage(argv0);
    value = value * 10 + (c - '0');
    if (value > max_value) usage(argv0);
  }
  if (value < min_value) usage(argv0);
  return std::uint32_t(value);
}

std::uint64_t parse_u64(const std::string& item, const char* argv0) {
  if (item.empty()) usage(argv0);
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  std::uint64_t value = 0;
  for (const char c : item) {
    if (c < '0' || c > '9') usage(argv0);
    const std::uint64_t digit = std::uint64_t(c - '0');
    if (value > (kMax - digit) / 10) usage(argv0);  // overflow, like parse_u32
    value = value * 10 + digit;
  }
  return value;
}

/// Split "a,b,c" and parse each item with `parse_item`.
template <class T, class ParseItem>
std::vector<T> parse_list(const std::string& list, const char* argv0,
                          ParseItem parse_item) {
  std::vector<T> out;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string item = list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (item.empty()) usage(argv0);
    out.push_back(parse_item(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) usage(argv0);
  return out;
}

std::vector<std::uint32_t> parse_u32_list(const std::string& list,
                                          const char* argv0) {
  // Zero is rejected: a silent 0 axis point would be dropped by the n > 3f
  // filter and the user would never know.
  return parse_list<std::uint32_t>(list, argv0, [&](const std::string& item) {
    return parse_u32(item, argv0, 1, 10'000);
  });
}

std::vector<AdversaryKind> parse_adversary_list(const std::string& list,
                                                const char* argv0) {
  return parse_list<AdversaryKind>(list, argv0, [&](const std::string& item) {
    return parse_adversary(item, argv0);
  });
}

/// Append the stack-shaped workload (after any scramble/chaos warm-up) and
/// return the matching run horizon. Shared by the single-run and sweep
/// paths — the deployment path is stack-agnostic, the workload is not.
/// With a recurring duty cycle the workload starts after the FIRST window
/// only (later windows hitting it mid-flight is the point), and the
/// horizon stretches past the LAST window so the final recovery span —
/// where the stabilization metrics live — is actually observed.
Duration shape_workload(Scenario& sc, std::uint32_t proposals) {
  const Params params = sc.make_params();
  const Duration first_chaos_end =
      sc.chaos_period > Duration::zero() && sc.chaos_count > 0
          ? sc.chaos_first_start + sc.chaos_period
          : Duration::zero();
  const Duration start = first_chaos_end +
                         (sc.transient_scramble ? params.delta_stb()
                                                : Duration::zero());
  const auto stretch_past_last_window = [&](Duration shaped) {
    if (sc.chaos_period <= Duration::zero() || sc.chaos_count < 2) {
      return shaped;
    }
    const Duration stride = sc.chaos_duty > Duration::zero() ? sc.chaos_duty
                                                             : sc.chaos_period;
    const Duration last_end = sc.chaos_first_start +
                              (sc.chaos_count - 1) * stride + sc.chaos_period;
    return std::max(shaped, last_end + params.delta_stb());
  };
  switch (sc.stack) {
    case StackKind::kAgree: {
      const Duration gap = params.delta_0() + 5 * params.d();
      for (std::uint32_t i = 0; i < proposals; ++i) {
        sc.with_proposal(start + milliseconds(1) + i * gap, 0, 100 + Value(i));
      }
      return stretch_past_last_window(start + proposals * gap +
                                     milliseconds(120));
    }
    case StackKind::kBaselineTps:
      sc.tps.anchor = start + milliseconds(5);
      sc.with_proposal(start + milliseconds(1), sc.tps.general, 100);
      return stretch_past_last_window(start + milliseconds(120));
    case StackKind::kReplicatedLog:
    case StackKind::kPipelinedLog: {
      // Round-robin over the CORRECT nodes only: a command routed to a
      // Byzantine replica would be silently dropped at injection.
      std::vector<NodeId> correct;
      for (NodeId id = 0; id < sc.n; ++id) {
        if (!sc.is_byzantine(id)) correct.push_back(id);
      }
      for (std::uint32_t i = 0; i < proposals && !correct.empty(); ++i) {
        sc.with_proposal(start, correct[i % correct.size()], 100 + Value(i));
      }
      return stretch_past_last_window(
          start + (proposals + 4) * (params.delta_0() + params.delta_agr() +
                                     10 * params.d()));
    }
    case StackKind::kPulse:
    case StackKind::kClockSync:
      // Self-clocking: no workload; run long enough to stabilize + pulse.
      return stretch_past_last_window(
          start + params.delta_stb() +
          16 * 2 * (params.delta_0() + params.delta_agr()));
  }
  return stretch_past_last_window(start + milliseconds(120));
}

/// Decision-stream report (kAgree / kBaselineTps): execution table plus
/// Agreement/Validity accounting. Returns the process exit code.
int report_decisions(Cluster& cluster) {
  const Params& params = cluster.params();
  Table table({"exec", "general", "value", "deciders", "aborts",
               "dec skew (ms)", "tauG skew (ms)", "first (ms)"});
  const auto execs = cluster_executions(cluster.decisions(), params);
  std::uint32_t id = 0;
  for (const auto& e : execs) {
    const auto value = e.agreed_value();
    table.add_row({std::to_string(id++), std::to_string(e.general.node),
                   value ? std::to_string(*value)
                         : (e.decided_count() ? "MIXED!" : "⊥"),
                   std::to_string(e.decided_count()),
                   std::to_string(e.abort_count()),
                   Table::fmt_ms(double(e.decision_skew().ns())),
                   Table::fmt_ms(double(e.tau_g_skew().ns())),
                   Table::fmt_ms(double((e.first_return() - RealTime::zero()).ns()))});
  }
  table.print();

  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), params);
  std::printf("\nagreement violations: %u   validity violations: %u   "
              "unanimous: %u/%u\n",
              m.agreement_violations, m.validity_violations,
              m.unanimous_decides, m.executions);
  return evaluate_stack(cluster).pass ? 0 : 1;
}

int report_pulses(Cluster& cluster) {
  auto* head = head_node<PulseSyncNode>(cluster);
  if (head == nullptr) {
    std::printf("no correct nodes — nothing to report\n");
    return 0;
  }
  const Duration cycle = head->cycle();
  auto stats = evaluate_pulses(cluster.probe().pulses(),
                               cluster.correct_count(), cycle);
  const Duration bound = 3 * cluster.params().d();
  std::printf("pulses: %u complete, %u partial (cycle %.1f ms)\n",
              stats.complete_pulses, stats.partial_pulses, cycle.millis());
  if (!stats.skew.empty()) {
    std::printf("pulse skew: p50 %.3f ms, max %.3f ms (bound 3d = %.3f ms)\n",
                stats.skew.quantile(0.5) * 1e-6, stats.skew.max() * 1e-6,
                bound.millis());
  }
  if (stats.converged) {
    std::printf("first complete pulse at %.1f ms\n",
                stats.convergence.millis());
  }
  return evaluate_stack(cluster).pass ? 0 : 1;
}

int report_clocks(Cluster& cluster) {
  auto* head = head_node<ClockSyncNode>(cluster);
  if (head == nullptr) {
    std::printf("no correct nodes — nothing to report\n");
    return 0;
  }
  const Duration bound = head->precision_bound();
  const bool settled = clocks_settled(cluster);
  const Duration skew = clock_skew(cluster);
  std::printf("clock snaps recorded: %zu   settled: %s\n",
              cluster.probe().adjustments().size(), settled ? "yes" : "no");
  std::printf("final skew: %.0f us (precision bound %.0f us)\n",
              skew.micros(), bound.micros());
  return evaluate_stack(cluster).pass ? 0 : 1;
}

int report_log(Cluster& cluster) {
  const auto* head = head_node<ReplicatedLogNode>(cluster);
  if (head == nullptr) {
    std::printf("no correct nodes — nothing to report\n");
    return 0;
  }
  std::size_t committed_at_head = 0;
  for (const auto& c : cluster.probe().commits()) {
    if (cluster.node<ReplicatedLogNode>(c.node) == head) ++committed_at_head;
  }
  bool identical = true;
  for (NodeId i = 0; i < cluster.scenario().n; ++i) {
    const auto* node = cluster.node<ReplicatedLogNode>(i);
    if (node != nullptr && node->log() != head->log()) identical = false;
  }
  std::printf("committed per node: %zu   logs identical: %s\n",
              committed_at_head, identical ? "yes" : "NO");
  return evaluate_stack(cluster).pass ? 0 : 1;
}

int report_pipeline(Cluster& cluster) {
  auto* head = head_node<PipelinedLogNode>(cluster);
  if (head == nullptr) {
    std::printf("no correct nodes — nothing to report\n");
    return 0;
  }
  std::size_t delivered_at_head = 0;
  for (const auto& d : cluster.probe().deliveries()) {
    if (cluster.node<PipelinedLogNode>(d.node) == head && !d.entry.skipped) {
      ++delivered_at_head;
    }
  }
  // Settled records must agree wherever two correct nodes both settled a
  // slot (cursors may trail each other).
  bool identical = true;
  for (NodeId i = 0; i < cluster.scenario().n; ++i) {
    auto* node = cluster.node<PipelinedLogNode>(i);
    if (node == nullptr || node == head) continue;
    for (const auto& [slot, entry] : node->settled()) {
      const auto it = head->settled().find(slot);
      if (it != head->settled().end() && !(it->second == entry)) {
        identical = false;
      }
    }
  }
  std::printf("delivered per node: %zu   settled slots agree: %s\n",
              delivered_at_head, identical ? "yes" : "NO");
  return evaluate_stack(cluster).pass ? 0 : 1;
}

/// Single-run --json: one machine-readable document per run — the outcome,
/// the model point, engine + scheduler statistics (executor AND owner
/// imbalance views), duty-cycle migration costs, the per-chaos-window
/// stabilization rows, and the wire totals. Schema is flat on purpose:
/// every value also exists in the human report above it.
bool write_single_run_json(const std::string& path, Cluster& cluster,
                           bool pass,
                           const std::vector<WindowStabilization>& windows) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const Scenario& sc = cluster.scenario();
  const NetworkStats net = cluster.world().net_stats();
  std::fprintf(out,
               "{\n"
               "  \"stack\": \"%s\",\n"
               "  \"adversary\": \"%s\",\n"
               "  \"n\": %u,\n"
               "  \"f\": %u,\n"
               "  \"seed\": %llu,\n"
               "  \"shards\": %u,\n"
               "  \"shard_sched\": \"%s\",\n"
               "  \"pass\": %s,\n"
               "  \"events\": %llu,\n",
               to_string(sc.stack), to_string(sc.adversary), sc.n, sc.f,
               static_cast<unsigned long long>(sc.seed), cluster.shards(),
               to_string(sc.shard_sched), pass ? "true" : "false",
               static_cast<unsigned long long>(cluster.world().dispatched()));
  std::fprintf(out,
               "  \"auth\": \"%s\",\n"
               "  \"payload_bytes_per_proposal\": %u,\n"
               "  \"net\": {\"sent\": %llu, \"delivered\": %llu, "
               "\"dropped\": %llu, \"corrupted\": %llu, "
               "\"duplicated\": %llu, \"forged\": %llu, "
               "\"auth_rejected\": %llu, \"payload_bytes\": %llu},\n",
               to_string(sc.auth), sc.payload_bytes,
               static_cast<unsigned long long>(net.sent),
               static_cast<unsigned long long>(net.delivered),
               static_cast<unsigned long long>(net.dropped),
               static_cast<unsigned long long>(net.corrupted),
               static_cast<unsigned long long>(net.duplicated),
               static_cast<unsigned long long>(net.forged),
               static_cast<unsigned long long>(net.auth_rejected),
               static_cast<unsigned long long>(net.payload_bytes));
  ShardSchedStats ss;
  bool have_sched = false;
  auto* duty = dynamic_cast<DutyWorld*>(&cluster.world());
  if (duty != nullptr) {
    ss = duty->sched_stats();
    have_sched = true;
  } else if (auto* sharded = dynamic_cast<ShardWorld*>(&cluster.world())) {
    ss = sharded->sched_stats();
    have_sched = true;
  }
  if (have_sched) {
    std::fprintf(
        out,
        "  \"sched_stats\": {\"windows\": %llu, \"measured_windows\": %llu, "
        "\"window_events\": %llu, \"repartitions\": %llu, \"steals\": %llu, "
        "\"stolen_events\": %llu, \"imbalance_mean\": %.6f, "
        "\"imbalance_max\": %.6f, \"owner_imbalance_mean\": %.6f, "
        "\"owner_imbalance_max\": %.6f},\n",
        static_cast<unsigned long long>(ss.windows),
        static_cast<unsigned long long>(ss.measured_windows),
        static_cast<unsigned long long>(ss.window_events),
        static_cast<unsigned long long>(ss.repartitions),
        static_cast<unsigned long long>(ss.steals),
        static_cast<unsigned long long>(ss.stolen_events), ss.imbalance_mean(),
        ss.imbalance_max, ss.owner_imbalance_mean(), ss.owner_imbalance_max);
  }
  if (duty != nullptr) {
    std::fprintf(out,
                 "  \"migrations\": %zu,\n"
                 "  \"migration_ns\": %llu,\n"
                 "  \"segment_shards\": [",
                 duty->migrations(),
                 static_cast<unsigned long long>(duty->migration_ns()));
    for (std::size_t i = 0; i < duty->segment_shards().size(); ++i) {
      std::fprintf(out, "%s%u", i ? ", " : "", duty->segment_shards()[i]);
    }
    std::fprintf(out, "],\n");
  }
  std::fprintf(out, "  \"windows\": [");
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const WindowStabilization& win = windows[w];
    std::fprintf(out,
                 "%s\n    {\"index\": %zu, \"chaos_start_ms\": %.6f, "
                 "\"chaos_end_ms\": %.6f, \"recovery_ms\": ",
                 w ? "," : "", w,
                 double((win.chaos_start - RealTime::zero()).ns()) * 1e-6,
                 double((win.chaos_end - RealTime::zero()).ns()) * 1e-6);
    if (win.recovery) {
      std::fprintf(out, "%.6f", double(win.recovery->ns()) * 1e-6);
    } else {
      std::fprintf(out, "null");
    }
    std::fprintf(out, ", \"events\": %u, \"digest\": \"%016llx\"}", win.events,
                 static_cast<unsigned long long>(win.digest));
  }
  std::fprintf(out, "%s]\n}\n", windows.empty() ? "" : "\n  ");
  std::fclose(out);
  return true;
}

/// --sweep mode: expand the grid, pool-execute, report aggregates, and
/// optionally dump per-run CSV rows and an aggregate JSON document.
int run_sweep(const Scenario& base, const std::vector<std::uint32_t>& ns,
              const std::vector<std::uint32_t>& fs,
              const std::vector<AdversaryKind>& adversaries,
              std::uint32_t seeds, std::uint64_t seed0, std::uint32_t threads,
              std::uint32_t proposals, Duration run_for_override,
              const std::string& csv_path, const std::string& json_path) {
  SweepGrid grid;
  grid.base = base;
  grid.ns = ns;
  grid.fs = fs;
  grid.adversaries = adversaries;

  SweepSpec spec;
  spec.scenarios = grid.expand();
  if (spec.scenarios.empty()) {
    std::fprintf(stderr, "error: empty grid (no combination with n > 3f)\n");
    return 2;
  }
  for (Scenario& scenario : spec.scenarios) {
    const Duration shaped = shape_workload(scenario, proposals);
    scenario.run_for =
        run_for_override > Duration::zero() ? run_for_override : shaped;
  }
  spec.seeds_per_scenario = seeds;
  spec.seed0 = seed0;
  spec.threads = threads;

  SweepReport report = SweepRunner(spec).run();

  // Per-scenario aggregate table (runs are contiguous in grid order).
  Table table({"stack", "n", "f", "adversary", "runs", "pass", "p50 lat (ms)",
               "events", "events/run"});
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    SampleSet latency;
    std::uint64_t events = 0;
    std::uint32_t passed = 0;
    const SweepRun* first = nullptr;
    for (std::size_t i = s * seeds; i < (s + 1) * seeds; ++i) {
      const SweepRun& run = report.runs[i];
      if (first == nullptr) first = &run;
      if (run.pass) ++passed;
      events += run.events;
      for (const double l : run.latency_ns) latency.add(l);
    }
    char pass_cell[32];
    std::snprintf(pass_cell, sizeof pass_cell, "%u/%u", passed, seeds);
    table.add_row(
        {to_string(first->stack), std::to_string(first->n),
         std::to_string(first->f), to_string(first->adversary),
         std::to_string(seeds), pass_cell,
         latency.empty() ? "-" : Table::fmt_ms(latency.quantile(0.5)),
         Table::fmt_int(events), Table::fmt_int(events / seeds)});
  }
  table.print();
  std::printf("\nsweep: %zu scenarios x %u seeds = %zu runs on %u threads\n",
              spec.scenarios.size(), seeds, report.runs.size(),
              threads == 0 ? std::thread::hardware_concurrency() : threads);
  std::printf("passed %u / failed %u   %.2f Mevents/s   %.1f scenarios/s   "
              "wall %.2fs\n",
              report.passed, report.failed, report.events_per_sec / 1e6,
              report.scenarios_per_sec, report.wall_seconds);
  if (!report.latency.empty()) {
    std::printf("agreement latency: p50 %.3f ms   p90 %.3f ms   max %.3f ms\n",
                report.latency.quantile(0.5) * 1e-6,
                report.latency.quantile(0.9) * 1e-6,
                report.latency.max() * 1e-6);
  }
  if (report.chaos_windows > 0) {
    std::printf("chaos windows: %u observed, %u recovered", report.chaos_windows,
                report.recovered_windows);
    if (!report.recovery_ns.empty()) {
      std::printf("   recovery p50 %.3f ms   max %.3f ms",
                  report.recovery_ns.quantile(0.5) * 1e-6,
                  report.recovery_ns.max() * 1e-6);
    }
    std::printf("\n");
  }

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path,
                  {"stack", "n", "f", "adversary", "seed", "pass", "events",
                   "messages", "wall_s", "latency_p50_ms", "digest"});
    for (const SweepRun& run : report.runs) {
      SampleSet latency;
      for (const double l : run.latency_ns) latency.add(l);
      char digest[32];
      std::snprintf(digest, sizeof digest, "%016llx",
                    static_cast<unsigned long long>(run.digest));
      csv.row({to_string(run.stack), std::to_string(run.n),
               std::to_string(run.f), to_string(run.adversary),
               std::to_string(run.seed), run.pass ? "1" : "0",
               std::to_string(run.events), std::to_string(run.messages),
               std::to_string(run.wall_seconds),
               std::to_string(latency.empty() ? 0.0
                                              : latency.quantile(0.5) * 1e-6),
               digest});
    }
  }
  if (!json_path.empty()) {
    if (std::FILE* out = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(out,
                   "{\n"
                   "  \"scenarios\": %zu,\n"
                   "  \"seeds_per_scenario\": %u,\n"
                   "  \"runs\": %zu,\n"
                   "  \"passed\": %u,\n"
                   "  \"failed\": %u,\n"
                   "  \"events\": %llu,\n"
                   "  \"messages\": %llu,\n"
                   "  \"wall_seconds\": %.6f,\n"
                   "  \"events_per_sec\": %.0f,\n"
                   "  \"scenarios_per_sec\": %.2f,\n"
                   "  \"latency_p50_ms\": %.6f,\n"
                   "  \"latency_p90_ms\": %.6f,\n"
                   "  \"chaos_windows\": %u,\n"
                   "  \"recovered_windows\": %u,\n"
                   "  \"recovery_p50_ms\": %.6f\n"
                   "}\n",
                   spec.scenarios.size(), seeds, report.runs.size(),
                   report.passed, report.failed,
                   static_cast<unsigned long long>(report.events),
                   static_cast<unsigned long long>(report.messages),
                   report.wall_seconds, report.events_per_sec,
                   report.scenarios_per_sec,
                   report.latency.empty()
                       ? 0.0
                       : report.latency.quantile(0.5) * 1e-6,
                   report.latency.empty()
                       ? 0.0
                       : report.latency.quantile(0.9) * 1e-6,
                   report.chaos_windows, report.recovered_windows,
                   report.recovery_ns.empty()
                       ? 0.0
                       : report.recovery_ns.quantile(0.5) * 1e-6);
      std::fclose(out);
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
    }
  }
  return report.all_passed() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Scenario sc;
  std::uint32_t byz = 0;
  std::uint32_t proposals = 1;
  bool wire_trace = false;
  std::string trace_path;
  std::string stats_json_path;
  bool f_set = false;
  std::int64_t run_ms = 0;
  Duration link_min = Duration::zero();
  bool sweep = false;
  std::vector<std::uint32_t> sweep_ns;
  std::vector<std::uint32_t> sweep_fs;
  std::vector<AdversaryKind> sweep_adversaries;
  std::uint32_t seeds = 4;
  std::uint32_t threads = 0;
  std::string csv_path;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--stack") {
      sc.stack = parse_stack(next(), argv[0]);
    } else if (arg == "--n") {
      sc.n = parse_u32(next(), argv[0], 1, 100'000);
    } else if (arg == "--f") {
      sc.f = parse_u32(next(), argv[0], 0, 100'000);
      f_set = true;
    } else if (arg == "--byz") {
      byz = parse_u32(next(), argv[0], 0, 100'000);
    } else if (arg == "--adversary") {
      sc.adversary = parse_adversary(next(), argv[0]);
    } else if (arg == "--seed") {
      sc.seed = parse_u64(next(), argv[0]);
    } else if (arg == "--delta-us") {
      sc.delta = microseconds(parse_u32(next(), argv[0], 1, 1'000'000'000));
    } else if (arg == "--scramble") {
      sc.transient_scramble = true;
    } else if (arg == "--chaos-ms") {
      sc.chaos_period = milliseconds(parse_u32(next(), argv[0], 0, 10'000'000));
    } else if (arg == "--chaos-count") {
      sc.chaos_count = parse_u32(next(), argv[0], 0, 1'000'000);
    } else if (arg == "--chaos-duty") {
      sc.chaos_duty = milliseconds(parse_u32(next(), argv[0], 0, 10'000'000));
    } else if (arg == "--proposals") {
      proposals = parse_u32(next(), argv[0], 0, 1'000'000);
    } else if (arg == "--run-ms") {
      run_ms = parse_u32(next(), argv[0], 1, 10'000'000);
    } else if (arg == "--depth") {
      sc.pipeline.depth = parse_u32(next(), argv[0], 1, 65'536);
    } else if (arg == "--auth") {
      sc.auth = parse_auth(next(), argv[0]);
    } else if (arg == "--payload-bytes") {
      sc.payload_bytes = parse_u32(next(), argv[0], 0, 1'048'576);
    } else if (arg == "--topology") {
      sc.topology = parse_topology(next(), argv[0]);
    } else if (arg == "--cluster-size") {
      sc.cluster_size = parse_u32(next(), argv[0], 1, 1'000'000);
    } else if (arg == "--gossip-fanout") {
      sc.gossip_fanout = parse_u32(next(), argv[0], 1, 1'000'000);
    } else if (arg == "--help") {
      print_usage(stdout, argv[0]);
      return 0;
    } else if (arg == "--shards") {
      sc.shards = parse_u32(next(), argv[0], 0, 4096);
    } else if (arg == "--shard-sched") {
      sc.shard_sched = parse_shard_sched(next(), argv[0]);
    } else if (arg == "--link-min-us") {
      link_min = microseconds(parse_u32(next(), argv[0], 1, 1'000'000'000));
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--stats-json") {
      stats_json_path = next();
    } else if (arg == "--wire-trace") {
      wire_trace = true;
    } else if (arg == "--verbose") {
      sc.log_level = LogLevel::kDebug;
    } else if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--sweep-n") {
      sweep_ns = parse_u32_list(next(), argv[0]);
    } else if (arg == "--sweep-f") {
      sweep_fs = parse_u32_list(next(), argv[0]);
    } else if (arg == "--sweep-adversary") {
      sweep_adversaries = parse_adversary_list(next(), argv[0]);
    } else if (arg == "--seeds") {
      seeds = parse_u32(next(), argv[0], 1, 1'000'000);
    } else if (arg == "--threads") {
      threads = parse_u32(next(), argv[0], 0, 4096);  // 0 ⇒ all cores
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else {
      usage(argv[0]);
    }
  }

  if (link_min > Duration::zero()) {
    // A delay floor: same exponential-tail shape as the default, shifted up
    // by the positive minimum that gives the sharded engine its lookahead
    // (mean = min + δ/5 keeps the tail; a mean AT the floor would collapse
    // the distribution to a constant).
    if (link_min > sc.delta) {
      std::fprintf(stderr, "error: --link-min-us exceeds delta\n");
      return 2;
    }
    sc.link_delay = DelayModel::exp_truncated(
        link_min, std::min(link_min + sc.delta / 5, sc.delta), sc.delta);
  }

  // Catch malformed duty cycles here with a readable message — the Cluster
  // would refuse them anyway, but with a precondition abort.
  if (const char* err = sc.validate_chaos()) {
    std::fprintf(stderr, "error: %s\n", err);
    return 2;
  }
  // Same courtesy for malformed overlay knobs.
  if (const char* err = sc.validate_topology()) {
    std::fprintf(stderr, "error: %s\n", err);
    return 2;
  }

  if (sweep) {
    // In sweep mode f is a grid axis (--sweep-f, else a single --f point,
    // else derived as ⌊(n−1)/3⌋ per n) and the Byzantine set is always f
    // tail faults per cell — a separate --byz has no grid meaning.
    if (byz != 0) {
      std::fprintf(stderr, "error: --byz is not a sweep axis; use --sweep-f "
                           "(cells run f tail faults)\n");
      return 2;
    }
    if (wire_trace || !trace_path.empty() || !stats_json_path.empty()) {
      std::fprintf(stderr,
                   "error: --trace/--stats-json/--wire-trace are single-run "
                   "only (a sweep has no single run history); drop --sweep\n");
      return 2;
    }
    if (sweep_fs.empty() && f_set) sweep_fs = {sc.f};
    if (sc.shards > 1) {
      // Legal (every cell stays digest-identical) but the shard workers
      // multiply the sweep pool; say so instead of silently oversubscribing.
      std::fprintf(stderr,
                   "note: --sweep with --shards %u runs EVERY cell sharded; "
                   "shard threads multiply the sweep pool — consider "
                   "--threads 1 or dropping --shards\n",
                   sc.shards);
    }
    return run_sweep(sc, sweep_ns, sweep_fs, sweep_adversaries, seeds,
                     sc.seed, threads, proposals,
                     run_ms > 0 ? milliseconds(run_ms) : Duration::zero(),
                     csv_path, json_path);
  }
  if (sc.f == 0) sc.f = (sc.n - 1) / 3;
  if (sc.n <= 3 * sc.f) {
    std::fprintf(stderr, "error: need n > 3f (n=%u, f=%u)\n", sc.n, sc.f);
    return 2;
  }
  sc.with_tail_faults(byz);

  const Params params = sc.make_params();
  // Workload and default horizon are stack-shaped; the deployment path is
  // not.
  const Duration run_for = shape_workload(sc, proposals);
  sc.run_for = run_ms > 0 ? milliseconds(run_ms) : run_for;

  sc.trace = !trace_path.empty();

  Cluster cluster(sc);
  if (wire_trace && cluster.sharded()) {
    std::fprintf(stderr, "error: --wire-trace taps the serial engine's wire; "
                         "drop --shards (or use --trace PATH, which records "
                         "on every engine)\n");
    return 2;
  }
  TraceRecorder recorder;
  if (wire_trace) cluster.world().network().set_tap(recorder.tap());
  cluster.run();

  std::printf("stack: %s   model: n=%u f=%u (actual byz %u, %s), d=%.3fms, "
              "Phi=%.3fms, Dagr=%.3fms, Dstb=%.3fms, seed=%llu\n",
              to_string(sc.stack), sc.n, sc.f, byz, to_string(sc.adversary),
              params.d().millis(), params.phi().millis(),
              params.delta_agr().millis(), params.delta_stb().millis(),
              static_cast<unsigned long long>(sc.seed));
  const std::vector<ChaosWindow> chaos = sc.chaos_windows();
  if (cluster.sharded() && !chaos.empty()) {
    std::printf("engine: alternating (%zu chaos window(s) of %.1f ms on the "
                "serial engine, stabilization on %u shards, sched %s, "
                "lookahead %.0f us)\n",
                chaos.size(), sc.chaos_period.millis(), cluster.shards(),
                to_string(sc.shard_sched),
                cluster.world().config().lookahead().micros());
  } else if (cluster.sharded()) {
    std::printf("engine: sharded (%u shards, sched %s, lookahead %.0f us)\n",
                cluster.shards(), to_string(sc.shard_sched),
                cluster.world().config().lookahead().micros());
  } else {
    std::printf("engine: serial%s\n",
                sc.shards > 1 ? " (no lookahead; --shards needs "
                                "--link-min-us)"
                              : "");
  }
  if (cluster.sharded() && sc.shard_sched != ShardSched::kStatic) {
    // Scheduler observability: how balanced the windows ran and what the
    // adaptive machinery did about it. Alternating runs also show the
    // engine-switch overhead and the per-segment shard counts the adaptive
    // sizing picked.
    ShardSchedStats ss;
    if (auto* duty = dynamic_cast<DutyWorld*>(&cluster.world())) {
      ss = duty->sched_stats();
      std::string segments;
      for (const std::uint32_t s : duty->segment_shards()) {
        if (!segments.empty()) segments += ',';
        segments += std::to_string(s);
      }
      std::printf("sched: migrations %zu (%.2f ms switch overhead), "
                  "segment shards [%s]\n",
                  duty->migrations(), double(duty->migration_ns()) * 1e-6,
                  segments.c_str());
    } else if (auto* sharded = dynamic_cast<ShardWorld*>(&cluster.world())) {
      ss = sharded->sched_stats();
    }
    std::printf("sched: %llu windows, imbalance mean %.2f max %.2f, "
                "repartitions %llu, steals %llu (%llu events stolen)\n",
                static_cast<unsigned long long>(ss.windows),
                ss.imbalance_mean(), ss.imbalance_max,
                static_cast<unsigned long long>(ss.repartitions),
                static_cast<unsigned long long>(ss.steals),
                static_cast<unsigned long long>(ss.stolen_events));
  }
  std::printf("\n");

  int exit_code = 0;
  switch (sc.stack) {
    case StackKind::kAgree:
    case StackKind::kBaselineTps:
      exit_code = report_decisions(cluster);
      break;
    case StackKind::kPulse:
      exit_code = report_pulses(cluster);
      break;
    case StackKind::kClockSync:
      exit_code = report_clocks(cluster);
      break;
    case StackKind::kReplicatedLog:
      exit_code = report_log(cluster);
      break;
    case StackKind::kPipelinedLog:
      exit_code = report_pipeline(cluster);
      break;
  }

  // Per-window stabilization report: the paper's claim is re-convergence
  // after EVERY burst, so each window gets its own recovery line.
  const auto windows = window_stabilization(cluster.scenario(), cluster.probe());
  if (!windows.empty()) {
    std::printf("\nstabilization per chaos window:\n");
    Table wt({"window", "chaos (ms)", "recovery (ms)", "events", "digest"});
    for (std::size_t w = 0; w < windows.size(); ++w) {
      const WindowStabilization& win = windows[w];
      char span[48];
      std::snprintf(span, sizeof span, "[%.1f, %.1f)",
                    double((win.chaos_start - RealTime::zero()).ns()) * 1e-6,
                    double((win.chaos_end - RealTime::zero()).ns()) * 1e-6);
      char digest[32];
      std::snprintf(digest, sizeof digest, "%016llx",
                    static_cast<unsigned long long>(win.digest));
      wt.add_row({std::to_string(w), span,
                  win.recovery ? Table::fmt_ms(double(win.recovery->ns()))
                               : "no recovery",
                  std::to_string(win.events), digest});
    }
    wt.print();
  }

  const auto stats = cluster.world().net_stats();
  std::printf("network: %llu sent, %llu delivered, %llu dropped, %llu forged\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.dropped),
              static_cast<unsigned long long>(stats.forged));
  if (sc.auth != AuthKind::kNull || sc.payload_bytes > 0) {
    std::printf("auth: %s, %llu rejected   payload: %u B/proposal, "
                "%llu B admitted, %llu pool slots live\n",
                to_string(sc.auth),
                static_cast<unsigned long long>(stats.auth_rejected),
                sc.payload_bytes,
                static_cast<unsigned long long>(stats.payload_bytes),
                static_cast<unsigned long long>(payload_pool().live()));
  }

  if (!trace_path.empty()) {
    if (TraceWriter::write_json(*cluster.tracer(), trace_path)) {
      std::printf("trace: %llu records (%llu dropped) -> %s\n",
                  static_cast<unsigned long long>(cluster.tracer()->recorded()),
                  static_cast<unsigned long long>(cluster.tracer()->dropped()),
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", trace_path.c_str());
    }
  }
  if (!stats_json_path.empty()) {
    if (!collect_run_stats(cluster).write_json(stats_json_path)) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   stats_json_path.c_str());
    }
  }
  if (!json_path.empty() &&
      !write_single_run_json(json_path, cluster, exit_code == 0, windows)) {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  if (wire_trace) {
    std::printf("\nwire trace (%zu events%s):\n", recorder.events().size(),
                recorder.dropped_records() ? ", truncated" : "");
    for (const auto& event : recorder.events()) {
      std::printf("%s\n", to_string(event).c_str());
    }
  }
  return exit_code;
}
