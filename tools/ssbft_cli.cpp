// ssbft_cli — run one simulated scenario from the command line and print
// the stack's metrics streams, all through the unified Scenario → Cluster
// path. Any protocol stack is deployable: --stack selects the layer.
//
//   ssbft_cli [--stack KIND] [--n N] [--f F] [--byz COUNT]
//             [--adversary KIND] [--seed S] [--delta-us US] [--scramble]
//             [--chaos-ms MS] [--proposals K] [--run-ms MS] [--depth D]
//             [--trace] [--verbose]
//
// --stack     ∈ agree | pulse | clock | log | pipeline | tps
// --adversary ∈ silent | noise | equivocate | stagger | spam | replay | faker
//
// Examples:
//   ssbft_cli --n 7 --byz 2 --adversary noise --proposals 3
//   ssbft_cli --n 10 --byz 3 --scramble --chaos-ms 10 --proposals 20
//   ssbft_cli --stack pulse --n 7 --byz 2 --scramble
//   ssbft_cli --stack pipeline --depth 8 --proposals 40
#include <cstdio>
#include <cstdlib>
#include <string>

#include "app/pipelined_log.hpp"
#include "app/replicated_log.hpp"
#include "clocksync/clock_sync.hpp"
#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "pulse/pulse_sync.hpp"
#include "sim/tap.hpp"

namespace {

using namespace ssbft;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--stack KIND] [--n N] [--f F] [--byz COUNT]\n"
               "          [--adversary KIND] [--seed S] [--delta-us US]\n"
               "          [--scramble] [--chaos-ms MS] [--proposals K]\n"
               "          [--run-ms MS] [--depth D] [--trace] [--verbose]\n"
               "STACK: agree|pulse|clock|log|pipeline|tps\n"
               "ADVERSARY: silent|noise|equivocate|stagger|spam|replay|faker\n",
               argv0);
  std::exit(2);
}

AdversaryKind parse_adversary(const std::string& name, const char* argv0) {
  if (name == "silent") return AdversaryKind::kSilent;
  if (name == "noise") return AdversaryKind::kNoise;
  if (name == "equivocate") return AdversaryKind::kEquivocatingGeneral;
  if (name == "stagger") return AdversaryKind::kStaggeredGeneral;
  if (name == "spam") return AdversaryKind::kSpamGeneral;
  if (name == "replay") return AdversaryKind::kReplay;
  if (name == "faker") return AdversaryKind::kQuorumFaker;
  usage(argv0);
}

StackKind parse_stack(const std::string& name, const char* argv0) {
  if (name == "agree") return StackKind::kAgree;
  if (name == "pulse") return StackKind::kPulse;
  if (name == "clock") return StackKind::kClockSync;
  if (name == "log") return StackKind::kReplicatedLog;
  if (name == "pipeline") return StackKind::kPipelinedLog;
  if (name == "tps") return StackKind::kBaselineTps;
  usage(argv0);
}

/// Decision-stream report (kAgree / kBaselineTps): execution table plus
/// Agreement/Validity accounting. Returns the process exit code.
int report_decisions(Cluster& cluster) {
  const Params& params = cluster.params();
  Table table({"exec", "general", "value", "deciders", "aborts",
               "dec skew (ms)", "tauG skew (ms)", "first (ms)"});
  const auto execs = cluster_executions(cluster.decisions(), params);
  std::uint32_t id = 0;
  for (const auto& e : execs) {
    const auto value = e.agreed_value();
    table.add_row({std::to_string(id++), std::to_string(e.general.node),
                   value ? std::to_string(*value)
                         : (e.decided_count() ? "MIXED!" : "⊥"),
                   std::to_string(e.decided_count()),
                   std::to_string(e.abort_count()),
                   Table::fmt_ms(double(e.decision_skew().ns())),
                   Table::fmt_ms(double(e.tau_g_skew().ns())),
                   Table::fmt_ms(double((e.first_return() - RealTime::zero()).ns()))});
  }
  table.print();

  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), params);
  std::printf("\nagreement violations: %u   validity violations: %u   "
              "unanimous: %u/%u\n",
              m.agreement_violations, m.validity_violations,
              m.unanimous_decides, m.executions);
  return m.agreement_violations + m.validity_violations == 0 ? 0 : 1;
}

/// First correct node running the stack as T, or nullptr when every node
/// is Byzantine (vacuous run: nothing to report against).
template <typename T>
T* head_node(Cluster& cluster) {
  for (NodeId i = 0; i < cluster.scenario().n; ++i) {
    if (T* node = cluster.node<T>(i)) return node;
  }
  return nullptr;
}

int report_pulses(Cluster& cluster) {
  auto* head = head_node<PulseSyncNode>(cluster);
  if (head == nullptr) {
    std::printf("no correct nodes — nothing to report\n");
    return 0;
  }
  const Duration cycle = head->cycle();
  auto stats = evaluate_pulses(cluster.probe().pulses(),
                               cluster.correct_count(), cycle);
  const Duration bound = 3 * cluster.params().d();
  std::printf("pulses: %u complete, %u partial (cycle %.1f ms)\n",
              stats.complete_pulses, stats.partial_pulses, cycle.millis());
  if (!stats.skew.empty()) {
    std::printf("pulse skew: p50 %.3f ms, max %.3f ms (bound 3d = %.3f ms)\n",
                stats.skew.quantile(0.5) * 1e-6, stats.skew.max() * 1e-6,
                bound.millis());
  }
  if (stats.converged) {
    std::printf("first complete pulse at %.1f ms\n",
                stats.convergence.millis());
  }
  const bool ok = stats.complete_pulses > 0 &&
                  (stats.skew.empty() || stats.skew.max() <= double(bound.ns()));
  return ok ? 0 : 1;
}

int report_clocks(Cluster& cluster) {
  auto* head = head_node<ClockSyncNode>(cluster);
  if (head == nullptr) {
    std::printf("no correct nodes — nothing to report\n");
    return 0;
  }
  const Duration bound = head->precision_bound();
  const bool settled = clocks_settled(cluster);
  const Duration skew = clock_skew(cluster);
  std::printf("clock snaps recorded: %zu   settled: %s\n",
              cluster.probe().adjustments().size(), settled ? "yes" : "no");
  std::printf("final skew: %.0f us (precision bound %.0f us)\n",
              skew.micros(), bound.micros());
  return settled && skew <= bound ? 0 : 1;
}

int report_log(Cluster& cluster) {
  const auto* head = head_node<ReplicatedLogNode>(cluster);
  if (head == nullptr) {
    std::printf("no correct nodes — nothing to report\n");
    return 0;
  }
  std::size_t committed_at_head = 0;
  for (const auto& c : cluster.probe().commits()) {
    if (cluster.node<ReplicatedLogNode>(c.node) == head) ++committed_at_head;
  }
  bool identical = true;
  for (NodeId i = 0; i < cluster.scenario().n; ++i) {
    const auto* node = cluster.node<ReplicatedLogNode>(i);
    if (node != nullptr && node->log() != head->log()) identical = false;
  }
  std::printf("committed per node: %zu   logs identical: %s\n",
              committed_at_head, identical ? "yes" : "NO");
  return identical && committed_at_head > 0 ? 0 : 1;
}

int report_pipeline(Cluster& cluster) {
  auto* head = head_node<PipelinedLogNode>(cluster);
  if (head == nullptr) {
    std::printf("no correct nodes — nothing to report\n");
    return 0;
  }
  std::size_t delivered_at_head = 0;
  for (const auto& d : cluster.probe().deliveries()) {
    if (cluster.node<PipelinedLogNode>(d.node) == head && !d.entry.skipped) {
      ++delivered_at_head;
    }
  }
  // Settled records must agree wherever two correct nodes both settled a
  // slot (cursors may trail each other).
  bool identical = true;
  for (NodeId i = 0; i < cluster.scenario().n; ++i) {
    auto* node = cluster.node<PipelinedLogNode>(i);
    if (node == nullptr || node == head) continue;
    for (const auto& [slot, entry] : node->settled()) {
      const auto it = head->settled().find(slot);
      if (it != head->settled().end() && !(it->second == entry)) {
        identical = false;
      }
    }
  }
  std::printf("delivered per node: %zu   settled slots agree: %s\n",
              delivered_at_head, identical ? "yes" : "NO");
  return identical && delivered_at_head > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Scenario sc;
  std::uint32_t byz = 0;
  std::uint32_t proposals = 1;
  bool trace = false;
  std::int64_t run_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--stack") {
      sc.stack = parse_stack(next(), argv[0]);
    } else if (arg == "--n") {
      sc.n = std::uint32_t(std::atoi(next()));
    } else if (arg == "--f") {
      sc.f = std::uint32_t(std::atoi(next()));
    } else if (arg == "--byz") {
      byz = std::uint32_t(std::atoi(next()));
    } else if (arg == "--adversary") {
      sc.adversary = parse_adversary(next(), argv[0]);
    } else if (arg == "--seed") {
      sc.seed = std::uint64_t(std::atoll(next()));
    } else if (arg == "--delta-us") {
      sc.delta = microseconds(std::atoll(next()));
    } else if (arg == "--scramble") {
      sc.transient_scramble = true;
    } else if (arg == "--chaos-ms") {
      sc.chaos_period = milliseconds(std::atoll(next()));
    } else if (arg == "--proposals") {
      proposals = std::uint32_t(std::atoi(next()));
    } else if (arg == "--run-ms") {
      run_ms = std::atoll(next());
    } else if (arg == "--depth") {
      sc.pipeline.depth = std::uint32_t(std::atoi(next()));
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--verbose") {
      sc.log_level = LogLevel::kDebug;
    } else {
      usage(argv[0]);
    }
  }
  if (sc.f == 0) sc.f = (sc.n - 1) / 3;
  if (sc.n <= 3 * sc.f) {
    std::fprintf(stderr, "error: need n > 3f (n=%u, f=%u)\n", sc.n, sc.f);
    return 2;
  }
  sc.with_tail_faults(byz);

  const Params params = sc.make_params();
  const Duration start = sc.chaos_period +
                         (sc.transient_scramble ? params.delta_stb()
                                                : Duration::zero());

  // Workload and default horizon are stack-shaped; the deployment path is
  // not.
  Duration run_for{};
  switch (sc.stack) {
    case StackKind::kAgree: {
      const Duration gap = params.delta_0() + 5 * params.d();
      for (std::uint32_t i = 0; i < proposals; ++i) {
        sc.with_proposal(start + milliseconds(1) + i * gap, 0,
                         100 + Value(i));
      }
      run_for = start + proposals * gap + milliseconds(120);
      break;
    }
    case StackKind::kBaselineTps:
      sc.tps.anchor = start + milliseconds(5);
      sc.with_proposal(start + milliseconds(1), sc.tps.general, 100);
      run_for = start + milliseconds(120);
      break;
    case StackKind::kReplicatedLog:
    case StackKind::kPipelinedLog: {
      // Round-robin over the CORRECT nodes only: a command routed to a
      // Byzantine replica would be silently dropped at injection.
      std::vector<NodeId> correct;
      for (NodeId id = 0; id < sc.n; ++id) {
        if (!sc.is_byzantine(id)) correct.push_back(id);
      }
      for (std::uint32_t i = 0; i < proposals && !correct.empty(); ++i) {
        sc.with_proposal(start, correct[i % correct.size()], 100 + Value(i));
      }
      run_for = start + (proposals + 4) * (params.delta_0() + params.delta_agr() +
                                           10 * params.d());
      break;
    }
    case StackKind::kPulse:
    case StackKind::kClockSync:
      // Self-clocking: no workload; run long enough to stabilize + pulse.
      run_for = start + params.delta_stb() +
                16 * 2 * (params.delta_0() + params.delta_agr());
      break;
  }
  sc.run_for = run_ms > 0 ? milliseconds(run_ms) : run_for;

  Cluster cluster(sc);
  TraceRecorder recorder;
  if (trace) cluster.world().network().set_tap(recorder.tap());
  cluster.run();

  std::printf("stack: %s   model: n=%u f=%u (actual byz %u, %s), d=%.3fms, "
              "Phi=%.3fms, Dagr=%.3fms, Dstb=%.3fms, seed=%llu\n\n",
              to_string(sc.stack), sc.n, sc.f, byz, to_string(sc.adversary),
              params.d().millis(), params.phi().millis(),
              params.delta_agr().millis(), params.delta_stb().millis(),
              static_cast<unsigned long long>(sc.seed));

  int exit_code = 0;
  switch (sc.stack) {
    case StackKind::kAgree:
    case StackKind::kBaselineTps:
      exit_code = report_decisions(cluster);
      break;
    case StackKind::kPulse:
      exit_code = report_pulses(cluster);
      break;
    case StackKind::kClockSync:
      exit_code = report_clocks(cluster);
      break;
    case StackKind::kReplicatedLog:
      exit_code = report_log(cluster);
      break;
    case StackKind::kPipelinedLog:
      exit_code = report_pipeline(cluster);
      break;
  }

  const auto& stats = cluster.world().network().stats();
  std::printf("network: %llu sent, %llu delivered, %llu dropped, %llu forged\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.dropped),
              static_cast<unsigned long long>(stats.forged));

  if (trace) {
    std::printf("\nwire trace (%zu events%s):\n", recorder.events().size(),
                recorder.dropped_records() ? ", truncated" : "");
    for (const auto& event : recorder.events()) {
      std::printf("%s\n", to_string(event).c_str());
    }
  }
  return exit_code;
}
