// ssbft_cli — run one simulated scenario from the command line and print
// the decision record, metrics, and (optionally) a wire trace.
//
//   ssbft_cli [--n N] [--f F] [--byz COUNT] [--adversary KIND]
//             [--seed S] [--delta-us US] [--scramble] [--chaos-ms MS]
//             [--proposals K] [--run-ms MS] [--trace] [--verbose]
//
// KIND ∈ silent | noise | equivocate | stagger | spam | replay | faker
//
// Examples:
//   ssbft_cli --n 7 --byz 2 --adversary noise --proposals 3
//   ssbft_cli --n 10 --byz 3 --scramble --chaos-ms 10 --proposals 20
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"
#include "harness/report.hpp"
#include "sim/tap.hpp"

namespace {

using namespace ssbft;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--n N] [--f F] [--byz COUNT] [--adversary KIND]\n"
               "          [--seed S] [--delta-us US] [--scramble]\n"
               "          [--chaos-ms MS] [--proposals K] [--run-ms MS]\n"
               "          [--trace] [--verbose]\n"
               "KIND: silent|noise|equivocate|stagger|spam|replay|faker\n",
               argv0);
  std::exit(2);
}

AdversaryKind parse_adversary(const std::string& name, const char* argv0) {
  if (name == "silent") return AdversaryKind::kSilent;
  if (name == "noise") return AdversaryKind::kNoise;
  if (name == "equivocate") return AdversaryKind::kEquivocatingGeneral;
  if (name == "stagger") return AdversaryKind::kStaggeredGeneral;
  if (name == "spam") return AdversaryKind::kSpamGeneral;
  if (name == "replay") return AdversaryKind::kReplay;
  if (name == "faker") return AdversaryKind::kQuorumFaker;
  usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Scenario sc;
  std::uint32_t byz = 0;
  std::uint32_t proposals = 1;
  bool trace = false;
  std::int64_t run_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--n") {
      sc.n = std::uint32_t(std::atoi(next()));
    } else if (arg == "--f") {
      sc.f = std::uint32_t(std::atoi(next()));
    } else if (arg == "--byz") {
      byz = std::uint32_t(std::atoi(next()));
    } else if (arg == "--adversary") {
      sc.adversary = parse_adversary(next(), argv[0]);
    } else if (arg == "--seed") {
      sc.seed = std::uint64_t(std::atoll(next()));
    } else if (arg == "--delta-us") {
      sc.delta = microseconds(std::atoll(next()));
    } else if (arg == "--scramble") {
      sc.transient_scramble = true;
    } else if (arg == "--chaos-ms") {
      sc.chaos_period = milliseconds(std::atoll(next()));
    } else if (arg == "--proposals") {
      proposals = std::uint32_t(std::atoi(next()));
    } else if (arg == "--run-ms") {
      run_ms = std::atoll(next());
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--verbose") {
      sc.log_level = LogLevel::kDebug;
    } else {
      usage(argv[0]);
    }
  }
  if (sc.f == 0) sc.f = (sc.n - 1) / 3;
  if (sc.n <= 3 * sc.f) {
    std::fprintf(stderr, "error: need n > 3f (n=%u, f=%u)\n", sc.n, sc.f);
    return 2;
  }
  sc.with_tail_faults(byz);

  const Params params = sc.make_params();
  const Duration start = sc.chaos_period +
                         (sc.transient_scramble ? params.delta_stb()
                                                : Duration::zero());
  const Duration gap = params.delta_0() + 5 * params.d();
  for (std::uint32_t i = 0; i < proposals; ++i) {
    sc.with_proposal(start + milliseconds(1) + i * gap, 0, 100 + Value(i));
  }
  sc.run_for = run_ms > 0 ? milliseconds(run_ms)
                          : start + proposals * gap + milliseconds(120);

  Cluster cluster(sc);
  TraceRecorder recorder;
  if (trace) cluster.world().network().set_tap(recorder.tap());
  cluster.run();

  std::printf("model: n=%u f=%u (actual byz %u, %s), d=%.3fms, Phi=%.3fms, "
              "Dagr=%.3fms, Dstb=%.3fms, seed=%llu\n\n",
              sc.n, sc.f, byz, to_string(sc.adversary), params.d().millis(),
              params.phi().millis(), params.delta_agr().millis(),
              params.delta_stb().millis(),
              static_cast<unsigned long long>(sc.seed));

  Table table({"exec", "general", "value", "deciders", "aborts",
               "dec skew (ms)", "tauG skew (ms)", "first (ms)"});
  const auto execs = cluster_executions(cluster.decisions(), params);
  std::uint32_t id = 0;
  for (const auto& e : execs) {
    const auto value = e.agreed_value();
    table.add_row({std::to_string(id++), std::to_string(e.general.node),
                   value ? std::to_string(*value)
                         : (e.decided_count() ? "MIXED!" : "⊥"),
                   std::to_string(e.decided_count()),
                   std::to_string(e.abort_count()),
                   Table::fmt_ms(double(e.decision_skew().ns())),
                   Table::fmt_ms(double(e.tau_g_skew().ns())),
                   Table::fmt_ms(double((e.first_return() - RealTime::zero()).ns()))});
  }
  table.print();

  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), params);
  const auto& stats = cluster.world().network().stats();
  std::printf("\nagreement violations: %u   validity violations: %u   "
              "unanimous: %u/%u\n",
              m.agreement_violations, m.validity_violations,
              m.unanimous_decides, m.executions);
  std::printf("network: %llu sent, %llu delivered, %llu dropped, %llu forged\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.dropped),
              static_cast<unsigned long long>(stats.forged));

  if (trace) {
    std::printf("\nwire trace (%zu events%s):\n", recorder.events().size(),
                recorder.dropped_records() ? ", truncated" : "");
    for (const auto& event : recorder.events()) {
      std::printf("%s\n", to_string(event).c_str());
    }
  }
  return m.agreement_violations + m.validity_violations == 0 ? 0 : 1;
}
