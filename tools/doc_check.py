#!/usr/bin/env python3
"""CI doc-lint gate: markdown link integrity + CLI flag/doc synchronization.

Two checks, both stdlib-only so CI runs this straight from the checkout:

  * every intra-repo markdown link in the scanned ``*.md`` files must
    resolve to an existing file or directory (external ``http(s)://``,
    ``mailto:`` and pure ``#anchor`` links are ignored; a ``#fragment``
    suffix on a file link is stripped before the existence check). Docs
    that point at deleted or renamed files are worse than no docs — the
    reader trusts them.
  * every flag the built ``ssbft_cli`` binary advertises in ``--help``
    must be documented somewhere in README.md or docs/ (pass the binary
    with ``--cli PATH``; the help run itself must exit 0). A flag that
    ships undocumented is invisible; a doc that drifts from the binary
    misleads. The same check runs for any extra binaries passed via
    repeated ``--cli``.

Usage:
  tools/doc_check.py --root . --cli build/tools/ssbft_cli
  tools/doc_check.py --self-test
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile

# [text](target) — inline markdown links and images.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# --flag tokens as a CLI help screen or a doc page spells them.
FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")
# Link schemes that are not intra-repo paths.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")
# Directory names never scanned for markdown (build trees, VCS internals).
SKIP_DIRS = {".git", ".github"}


def markdown_files(root):
    """All tracked-looking ``*.md`` files under root, skipping build/VCS
    trees and hidden directories."""
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(".")
            and not d.startswith("build")
        )
        for name in sorted(filenames):
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return found


def check_links(root):
    """Return a list of 'file: broken link' problem strings."""
    problems = []
    for md in markdown_files(root):
        with open(md, encoding="utf-8") as f:
            text = f.read()
        base = os.path.dirname(md)
        for target in LINK_RE.findall(text):
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                rel = os.path.relpath(md, root)
                problems.append(f"{rel}: broken link -> {target}")
    return problems


def help_flags(help_text):
    """The set of --flags a help screen advertises."""
    return set(FLAG_RE.findall(help_text))


def docs_corpus(root):
    """README.md + docs/**.md concatenated — where flags must be
    documented."""
    chunks = []
    candidates = [os.path.join(root, "README.md")]
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for dirpath, _, filenames in os.walk(docs_dir):
            for name in sorted(filenames):
                if name.endswith(".md"):
                    candidates.append(os.path.join(dirpath, name))
    for path in candidates:
        if os.path.exists(path):
            with open(path, encoding="utf-8") as f:
                chunks.append(f.read())
    return "\n".join(chunks)


def check_flag_sync(cli_name, help_text, corpus):
    """Every advertised flag must appear in the doc corpus."""
    documented = help_flags(corpus)
    problems = []
    for flag in sorted(help_flags(help_text)):
        if flag not in documented:
            problems.append(
                f"{cli_name}: flag {flag} advertised by --help but "
                f"documented nowhere in README.md or docs/")
    return problems


def run_help(cli_path):
    """Run ``<cli> --help``; return (exit_ok, combined output)."""
    try:
        proc = subprocess.run(
            [cli_path, "--help"], capture_output=True, text=True, timeout=60)
    except OSError as e:
        return False, f"cannot execute {cli_path}: {e}"
    if proc.returncode != 0:
        return False, (f"{cli_path} --help exited {proc.returncode} "
                       f"(must be 0)")
    return True, proc.stdout + proc.stderr


def run_gate(args):
    problems = check_links(args.root)
    corpus = docs_corpus(args.root)
    for cli_path in args.cli:
        ok, text = run_help(cli_path)
        if not ok:
            problems.append(text)
            continue
        problems.extend(
            check_flag_sync(os.path.basename(cli_path), text, corpus))
    for p in problems:
        print(f"FAIL {p}")
    if problems:
        print(f"doc_check: {len(problems)} problem(s)")
        return 1
    print("doc_check: all links resolve, all CLI flags documented")
    return 0


# --- self-test ---------------------------------------------------------------

def self_test():
    """The gate must actually catch what it claims to catch."""
    checks = []

    with tempfile.TemporaryDirectory() as root:
        os.makedirs(os.path.join(root, "docs"))
        with open(os.path.join(root, "docs", "guide.md"), "w") as f:
            f.write("See the [readme](../README.md#usage) and "
                    "[upstream](https://example.com/x) and `--depth`.\n")
        with open(os.path.join(root, "README.md"), "w") as f:
            f.write("# Demo\n[guide](docs/guide.md) documents --seed "
                    "and --verbose.\n")

        # 1. Resolving relative links (with fragments) and external links
        #    pass.
        checks.append(("clean tree passes", check_links(root) == []))

        # 2. A broken intra-repo link fails.
        with open(os.path.join(root, "README.md"), "a") as f:
            f.write("[gone](docs/missing.md)\n")
        problems = check_links(root)
        checks.append(("broken link caught",
                       len(problems) == 1 and "missing.md" in problems[0]))

        # 3. Flag sync: advertised + documented passes; undocumented fails.
        corpus = docs_corpus(root)
        help_text = "usage: demo [--seed S] [--verbose] [--depth D]\n"
        checks.append(("documented flags pass",
                       check_flag_sync("demo", help_text, corpus) == []))
        drifted = help_text.replace("[--depth D]", "[--quantum Q]")
        missing = check_flag_sync("demo", drifted, corpus)
        checks.append(("undocumented flag caught",
                       len(missing) == 1 and "--quantum" in missing[0]))

        # 4. A help run that exits non-zero is itself a failure (the gate
        #    needs a --help that behaves).
        stub = os.path.join(root, "angry_cli.py")
        with open(stub, "w") as f:
            f.write("#!/usr/bin/env python3\nimport sys\nsys.exit(2)\n")
        os.chmod(stub, 0o755)
        ok, _ = run_help(stub)
        checks.append(("non-zero --help caught", not ok))

        # 5. End-to-end through the real CLI path: exit 1 on the broken
        #    link planted in step 2, exit 0 once it is repaired.
        checks.append(("gate exits non-zero on problems",
                       main(["--root", root]) == 1))
        with open(os.path.join(root, "docs", "missing.md"), "w") as f:
            f.write("restored\n")
        checks.append(("gate exits zero when clean",
                       main(["--root", root]) == 0))

    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"{'ok' if ok else 'FAIL':>4} self-test: {name}")
    if failed:
        print(f"doc_check --self-test: {len(failed)} self-check(s) failed")
        return 1
    print("doc_check --self-test: all self-checks passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root to scan for markdown")
    parser.add_argument("--cli", action="append", default=[],
                        help="CLI binary whose --help flags must be "
                             "documented (repeatable)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in gate-behavior checks")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
