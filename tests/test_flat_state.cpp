// Differential tests for the flat protocol-state containers (core/node_set,
// core/flat_map, core/message_log's SenderTable) against the std:: ordered
// containers they replaced. The refactor's contract is behavioral identity:
// same membership answers, same cardinalities, and — where protocol code
// walks the structure — the SAME ascending iteration order std::set/std::map
// produced (visit order decides send order, which decides run digests).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/flat_map.hpp"
#include "core/node_set.hpp"
#include "core/message_log.hpp"
#include "util/rng.hpp"

namespace ssbft {
namespace {

std::vector<NodeId> members(const NodeSet& set) {
  std::vector<NodeId> out;
  set.for_each([&](NodeId id) { out.push_back(id); });
  return out;
}

// --- NodeSet vs std::set<NodeId> -------------------------------------------

TEST(NodeSet, MatchesStdSetThroughRandomInserts) {
  Rng rng(0x5eed);
  NodeSet flat;
  std::set<NodeId> ref;
  for (int op = 0; op < 4000; ++op) {
    const NodeId id = NodeId(std::uint64_t(rng.next_in(0, 511)));
    const bool inserted_flat = flat.insert(id);
    const bool inserted_ref = ref.insert(id).second;
    ASSERT_EQ(inserted_flat, inserted_ref) << "id " << id << " op " << op;
    ASSERT_EQ(flat.size(), ref.size());
    ASSERT_EQ(flat.popcount_words(), ref.size());
    const NodeId probe = NodeId(std::uint64_t(rng.next_in(0, 511)));
    ASSERT_EQ(flat.count(probe), ref.count(probe) != 0 ? 1u : 0u);
  }
  EXPECT_EQ(members(flat), std::vector<NodeId>(ref.begin(), ref.end()));
}

TEST(NodeSet, AscendingOrderAcrossThePromoteBoundary) {
  // Iteration order must be the std::set order on BOTH sides of the
  // inline-array → bitset promotion, and at the boundary itself.
  const std::vector<NodeId> ids = {90, 5, 63, 64, 7, 200, 1, 42, 150, 0};
  NodeSet flat;
  std::set<NodeId> ref;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    flat.insert(ids[i]);
    ref.insert(ids[i]);
    ASSERT_EQ(members(flat), std::vector<NodeId>(ref.begin(), ref.end()))
        << "after " << (i + 1) << " inserts";
  }
}

TEST(NodeSet, ExactlyInlineCapacityStaysUnpromoted) {
  NodeSet set;
  for (NodeId id = 0; id < NodeSet::kInlineCapacity; ++id) {
    EXPECT_TRUE(set.insert(id * 3));
    EXPECT_FALSE(set.insert(id * 3));  // duplicate rejected at every size
  }
  EXPECT_EQ(set.size(), NodeSet::kInlineCapacity);
  // One more distinct id forces the promotion; nothing may be lost.
  EXPECT_TRUE(set.insert(1000));
  EXPECT_EQ(set.size(), NodeSet::kInlineCapacity + 1);
  EXPECT_EQ(set.popcount_words(), NodeSet::kInlineCapacity + 1);
  for (NodeId id = 0; id < NodeSet::kInlineCapacity; ++id) {
    EXPECT_TRUE(set.contains(id * 3));
  }
  EXPECT_TRUE(set.contains(1000));
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(members(set), std::vector<NodeId>{});
}

// --- FlatMap vs std::map ----------------------------------------------------

TEST(FlatMap, MatchesStdMapThroughRandomOps) {
  Rng rng(0xf1a7);
  FlatMap<std::uint32_t, std::uint64_t> flat;
  std::map<std::uint32_t, std::uint64_t> ref;
  for (int op = 0; op < 6000; ++op) {
    const std::uint32_t key = std::uint32_t(std::uint64_t(rng.next_in(0, 127)));
    switch (std::uint64_t(rng.next_in(0, 3))) {
      case 0: {  // operator[] insert-or-update
        const std::uint64_t v = std::uint64_t(rng.next_in(0, 1 << 20));
        flat[key] += v;
        ref[key] += v;
        break;
      }
      case 1: {  // try_emplace: must NOT clobber an existing value
        const auto [fit, finserted] = flat.try_emplace(key, op);
        const auto [rit, rinserted] = ref.try_emplace(key, op);
        ASSERT_EQ(finserted, rinserted);
        ASSERT_EQ(fit->second, rit->second);
        break;
      }
      case 2: {  // erase by key
        ASSERT_EQ(flat.erase(key), ref.erase(key));
        break;
      }
      default: {  // find
        const auto fit = flat.find(key);
        const auto rit = ref.find(key);
        ASSERT_EQ(fit != flat.end(), rit != ref.end());
        if (rit != ref.end()) {
          ASSERT_EQ(fit->second, rit->second);
        }
        ASSERT_EQ(flat.contains(key), ref.count(key) != 0);
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Full-sweep parity: same pairs, same ascending order.
  ASSERT_TRUE(std::equal(flat.begin(), flat.end(), ref.begin(), ref.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first && a.second == b.second;
                         }));
}

TEST(FlatMap, EraseWhileIteratingMatchesStdMap) {
  // The decay/cleanup idiom: walk the table erasing stale entries via the
  // iterator-returning erase, keeping the rest.
  FlatMap<std::uint32_t, std::uint32_t> flat;
  std::map<std::uint32_t, std::uint32_t> ref;
  for (std::uint32_t k = 0; k < 40; ++k) {
    flat[k] = k * 7;
    ref[k] = k * 7;
  }
  for (auto it = flat.begin(); it != flat.end();) {
    if (it->first % 3 == 0) {
      it = flat.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = ref.begin(); it != ref.end();) {
    if (it->first % 3 == 0) {
      it = ref.erase(it);
    } else {
      ++it;
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
  EXPECT_TRUE(std::equal(flat.begin(), flat.end(), ref.begin(), ref.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first && a.second == b.second;
                         }));
}

// --- SenderTable vs map<NodeId, LocalTime> ---------------------------------

std::map<NodeId, LocalTime> snapshot(const SenderTable& table) {
  std::map<NodeId, LocalTime> out;
  table.for_each([&](NodeId sender, LocalTime at) {
    // Open addressing must never yield a sender twice.
    EXPECT_TRUE(out.emplace(sender, at).second) << "duplicate " << sender;
  });
  return out;
}

TEST(SenderTable, KeepsLatestArrivalPerSender) {
  Rng rng(0xab1e);
  SenderTable table;
  std::map<NodeId, LocalTime> ref;
  for (int op = 0; op < 3000; ++op) {
    const NodeId sender = NodeId(std::uint64_t(rng.next_in(0, 200)));
    const LocalTime at =
        LocalTime{} + microseconds(std::int64_t(std::uint64_t(rng.next_in(0, 100000))));
    table.note(sender, at);
    auto [it, inserted] = ref.emplace(sender, at);
    if (!inserted && it->second < at) it->second = at;
    ASSERT_EQ(table.size(), ref.size());
  }
  EXPECT_EQ(snapshot(table), ref);
}

TEST(SenderTable, DecayMatchesReferenceFilter) {
  Rng rng(0xdeca);
  SenderTable table;
  std::map<NodeId, LocalTime> ref;
  const LocalTime base{};
  for (NodeId sender = 0; sender < 64; ++sender) {
    const LocalTime at =
        base + microseconds(std::int64_t(std::uint64_t(rng.next_in(0, 1000))));
    table.note(sender, at);
    ref[sender] = at;
  }
  const LocalTime now = base + microseconds(600);
  const Duration keep = microseconds(250);
  table.decay(now, keep);
  std::erase_if(ref, [&](const auto& e) {
    return e.second > now || e.second < now - keep;
  });
  EXPECT_EQ(snapshot(table), ref);
  // Survivors must stay notable after the in-place rebuild.
  table.note(999, now);
  ref[999] = now;
  EXPECT_EQ(snapshot(table), ref);
}

TEST(SenderTable, DecayPurgesFutureStamps) {
  // Post-transient state: scramble() can plant future arrivals; decay must
  // treat them as stale even though they are "recent".
  SenderTable table;
  const LocalTime now = LocalTime{} + microseconds(100);
  table.note(1, now);
  table.note(2, now + microseconds(500));  // the future
  table.decay(now, microseconds(50));
  const std::map<NodeId, LocalTime> got = snapshot(table);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got.contains(1));
}

}  // namespace
}  // namespace ssbft
