// Footnote-7 quorum policy: the paper notes the Quorum coherence condition
// "can be replaced by (n+f)/2 correct nodes with some modifications to the
// structure of the protocol". QuorumPolicy::kMajority realizes that
// variant: thresholds ⌊(n+f)/2⌋+1 / f+1 instead of n−f / n−2f.
//
// These tests check (a) the threshold arithmetic preserves the three
// intersection facts every proof uses, (b) the full protocol keeps all of
// Agreement / Validity / Timeliness under either policy, and (c) the
// liveness separation: in an over-provisioned cluster (n ≫ 3f+1) majority
// quorums keep deciding with more than f crashed nodes where optimal
// quorums stall — the exact trade footnote 7 describes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"

namespace ssbft {
namespace {

Params make_params(std::uint32_t n, std::uint32_t f, QuorumPolicy policy) {
  return Params{n, f, microseconds(1050)}.set_quorum_policy(policy);
}

// --- threshold arithmetic ---------------------------------------------------

using QuorumMathCase = std::tuple<std::uint32_t, std::uint32_t, QuorumPolicy>;

class QuorumMathTest : public ::testing::TestWithParam<QuorumMathCase> {};

TEST_P(QuorumMathTest, HighQuorumsIntersectInACorrectNode) {
  const auto [n, f, policy] = GetParam();
  const auto params = make_params(n, f, policy);
  // Two q_high-sized sets overlap in ≥ 2·q_high − n nodes; strictly more
  // than f of them means at least one correct node is in both.
  EXPECT_GT(2 * params.q_high(), params.n() + params.f());
}

TEST_P(QuorumMathTest, LowQuorumContainsACorrectNode) {
  const auto [n, f, policy] = GetParam();
  const auto params = make_params(n, f, policy);
  EXPECT_GE(params.q_low(), params.f() + 1);
}

TEST_P(QuorumMathTest, HighQuorumAmplifiesToLowQuorumEverywhere) {
  const auto [n, f, policy] = GetParam();
  const auto params = make_params(n, f, policy);
  // A high quorum observed at one node contains ≥ q_high − f correct
  // senders, whose messages reach every node: a low quorum everywhere.
  EXPECT_GE(params.q_high() - params.f(), params.q_low());
}

TEST_P(QuorumMathTest, ThresholdsAreReachableByCorrectNodesAlone) {
  const auto [n, f, policy] = GetParam();
  const auto params = make_params(n, f, policy);
  EXPECT_LE(params.q_high(), params.n() - params.f());
  EXPECT_LE(params.q_low(), params.q_high());
}

std::vector<QuorumMathCase> quorum_math_cases() {
  std::vector<QuorumMathCase> cases;
  for (std::uint32_t f = 0; f <= 6; ++f) {
    for (std::uint32_t n = std::max(2u, 3 * f + 1); n <= 3 * f + 9; ++n) {
      cases.emplace_back(n, f, QuorumPolicy::kOptimal);
      cases.emplace_back(n, f, QuorumPolicy::kMajority);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuorumMathTest, ::testing::ValuesIn(quorum_math_cases()),
    [](const ::testing::TestParamInfo<QuorumMathCase>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "f" +
             std::to_string(std::get<1>(info.param)) + "_" +
             to_string(std::get<2>(info.param));
    });

TEST(QuorumMathTest, PoliciesCoincideAtMinimalN) {
  // n = 3f+1 is the tight case: (n+f)/2+1 = 2f+1 = n−f and f+1 = n−2f.
  for (std::uint32_t f : {1u, 2u, 3u, 5u}) {
    const std::uint32_t n = 3 * f + 1;
    const auto opt = make_params(n, f, QuorumPolicy::kOptimal);
    const auto maj = make_params(n, f, QuorumPolicy::kMajority);
    EXPECT_EQ(opt.q_high(), maj.q_high()) << "f=" << f;
    EXPECT_EQ(opt.q_low(), maj.q_low()) << "f=" << f;
  }
}

TEST(QuorumMathTest, MajorityIsStrictlySmallerWhenOverProvisioned) {
  // Strict shrink needs n ≥ 3f+3 (at n=3f+1 and 3f+2 the pairs coincide).
  for (std::uint32_t n : {9u, 13u, 25u}) {
    const std::uint32_t f = 2;
    const auto opt = make_params(n, f, QuorumPolicy::kOptimal);
    const auto maj = make_params(n, f, QuorumPolicy::kMajority);
    EXPECT_LT(maj.q_high(), opt.q_high()) << "n=" << n;
    EXPECT_LT(maj.q_low(), opt.q_low()) << "n=" << n;
  }
}

// --- full-protocol properties under either policy ---------------------------

struct QuorumScenarioCase {
  std::uint32_t n;
  std::uint32_t f;
  QuorumPolicy policy;
  AdversaryKind adversary;
};

class QuorumProtocolTest : public ::testing::TestWithParam<QuorumScenarioCase> {
};

TEST_P(QuorumProtocolTest, AgreementAndValidityHold) {
  const auto& param = GetParam();
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Scenario sc;
    sc.n = param.n;
    sc.f = param.f;
    sc.quorum_policy = param.policy;
    sc.with_tail_faults(param.f);
    sc.adversary = param.adversary;
    sc.with_proposal(milliseconds(5), 0, 42);
    sc.run_for = milliseconds(300);
    sc.seed = seed;
    Cluster cluster(sc);
    cluster.run();
    const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                                cluster.correct_count(), cluster.params());
    EXPECT_EQ(m.agreement_violations, 0u) << "seed " << seed;
    if (param.adversary == AdversaryKind::kSilent) {
      EXPECT_EQ(m.validity_violations, 0u) << "seed " << seed;
    }
  }
}

TEST_P(QuorumProtocolTest, TimelinessBoundsHold) {
  const auto& param = GetParam();
  if (param.adversary != AdversaryKind::kSilent) GTEST_SKIP();
  Scenario sc;
  sc.n = param.n;
  sc.f = param.f;
  sc.quorum_policy = param.policy;
  sc.with_tail_faults(param.f);
  sc.with_proposal(milliseconds(5), 0, 42);
  sc.run_for = milliseconds(300);
  Cluster cluster(sc);
  cluster.run();
  const auto execs = cluster_executions(cluster.decisions(), cluster.params());
  ASSERT_EQ(execs.size(), 1u);
  EXPECT_LE(execs[0].decision_skew(), 2 * cluster.params().d());
  EXPECT_LE(execs[0].tau_g_skew(), 6 * cluster.params().d());
}

std::vector<QuorumScenarioCase> quorum_protocol_cases() {
  std::vector<QuorumScenarioCase> cases;
  for (QuorumPolicy policy : {QuorumPolicy::kOptimal, QuorumPolicy::kMajority}) {
    for (auto [n, f] : {std::pair{4u, 1u}, {7u, 2u}, {13u, 2u}, {10u, 3u}}) {
      cases.push_back({n, f, policy, AdversaryKind::kSilent});
    }
    cases.push_back({7u, 2u, policy, AdversaryKind::kEquivocatingGeneral});
    cases.push_back({13u, 2u, policy, AdversaryKind::kQuorumFaker});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuorumProtocolTest, ::testing::ValuesIn(quorum_protocol_cases()),
    [](const ::testing::TestParamInfo<QuorumScenarioCase>& info) {
      std::string name = "n" + std::to_string(info.param.n) + "f" +
                         std::to_string(info.param.f) + "_" +
                         std::string(to_string(info.param.policy)) + "_" +
                         to_string(info.param.adversary);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- the liveness separation footnote 7 buys --------------------------------

RunMetrics run_with_crashes(QuorumPolicy policy, std::uint32_t crashes) {
  Scenario sc;
  sc.n = 13;
  sc.f = 2;  // design bound; the extra crashes exceed it deliberately
  sc.quorum_policy = policy;
  sc.with_tail_faults(crashes);  // silent = crash faults
  sc.with_proposal(milliseconds(5), 0, 42);
  sc.run_for = milliseconds(400);
  Cluster cluster(sc);
  cluster.run();
  return evaluate_run(cluster.decisions(), cluster.proposals(),
                      cluster.correct_count(), cluster.params());
}

TEST(QuorumLivenessTest, OptimalStallsBeyondFCrashesMajorityProceeds) {
  // n=13, f=2: optimal q_high = 11 needs all but 2 nodes alive; majority
  // q_high = 8 keeps working with up to 5 crashed. With 4 crashes:
  const auto optimal = run_with_crashes(QuorumPolicy::kOptimal, 4);
  const auto majority = run_with_crashes(QuorumPolicy::kMajority, 4);
  EXPECT_EQ(optimal.unanimous_decides, 0u)
      << "optimal quorums should stall with > f crashes";
  EXPECT_EQ(majority.unanimous_decides, 1u)
      << "majority quorums should still decide with 4 crashes";
  EXPECT_EQ(majority.agreement_violations, 0u);
  EXPECT_EQ(majority.validity_violations, 0u);
}

TEST(QuorumLivenessTest, BothPoliciesDecideAtExactlyFCrashes) {
  for (QuorumPolicy policy :
       {QuorumPolicy::kOptimal, QuorumPolicy::kMajority}) {
    const auto m = run_with_crashes(policy, 2);
    EXPECT_EQ(m.unanimous_decides, 1u) << to_string(policy);
    EXPECT_EQ(m.agreement_violations, 0u) << to_string(policy);
  }
}

TEST(QuorumLivenessTest, MajorityStallsPastItsOwnBound) {
  // Majority q_high = 8 over 13 nodes: with 6 crashed only 7 remain.
  const auto m = run_with_crashes(QuorumPolicy::kMajority, 6);
  EXPECT_EQ(m.unanimous_decides, 0u);
  EXPECT_EQ(m.agreement_violations, 0u);  // safety never degrades
}

// --- self-stabilization is policy-independent --------------------------------

TEST(QuorumStabilizationTest, MajorityConvergesFromScrambledState) {
  Scenario sc;
  sc.n = 13;
  sc.f = 2;
  sc.quorum_policy = QuorumPolicy::kMajority;
  sc.with_tail_faults(2);
  sc.transient_scramble = true;
  const Duration stb = sc.make_params().delta_stb();
  sc.with_proposal(stb + milliseconds(5), 0, 99);
  sc.run_for = stb + milliseconds(300);
  Cluster cluster(sc);
  cluster.run();
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.agreement_violations, 0u);
  EXPECT_EQ(m.validity_violations, 0u);
  EXPECT_EQ(m.unanimous_decides, 1u);
}

}  // namespace
}  // namespace ssbft
