// The zero-copy authenticated payload pipeline (sim/payload.hpp,
// sim/auth.hpp): pool ownership and refcounting, the authenticator's
// bind-everything tag, forged-traffic rejection, the no-leak invariant
// after chaos + duty-cycle runs on every engine, and the acceptance
// parity matrix — all six StackKinds × shard counts with payloads and
// authentication enabled, bit-identical to serial.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "harness/metrics.hpp"
#include "harness/sweep.hpp"
#include "sim/auth.hpp"
#include "sim/duty_world.hpp"
#include "sim/fault_injector.hpp"
#include "sim/payload.hpp"
#include "sim/shard_world.hpp"

namespace ssbft {
namespace {

// --- Payload / pool units ---------------------------------------------------

TEST(PayloadTest, InlineAtThresholdPooledAbove) {
  const Payload inline_body =
      make_patterned_payload(Payload::kInlineCapacity, 1);
  EXPECT_FALSE(inline_body.pooled());
  EXPECT_EQ(inline_body.size(), Payload::kInlineCapacity);

  const std::uint32_t live_before = payload_pool().live();
  {
    const Payload pooled_body =
        make_patterned_payload(Payload::kInlineCapacity + 1, 1);
    EXPECT_TRUE(pooled_body.pooled());
    EXPECT_EQ(payload_pool().live(), live_before + 1);
  }
  EXPECT_EQ(payload_pool().live(), live_before);

  EXPECT_TRUE(Payload{}.empty());
  EXPECT_EQ(Payload{}.checksum(), 0u);
}

TEST(PayloadTest, CopySharesPooledBytesWithoutCopying) {
  const std::uint32_t size = Payload::kInlineCapacity + 100;
  const std::uint32_t live_before = payload_pool().live();
  const std::uint64_t copied_before = payload_pool().bytes_copied();

  Payload original = make_patterned_payload(size, 7);
  EXPECT_EQ(payload_pool().bytes_copied(), copied_before + size);
  EXPECT_EQ(payload_pool().live(), live_before + 1);

  {
    // N handle copies: zero extra bytes, zero extra slots.
    Payload copies[8];
    for (Payload& c : copies) c = original;
    EXPECT_EQ(payload_pool().bytes_copied(), copied_before + size);
    EXPECT_EQ(payload_pool().live(), live_before + 1);
    for (const Payload& c : copies) {
      EXPECT_EQ(c, original);
      EXPECT_EQ(c.data(), original.data());  // literally the same bytes
    }
    // A move transfers the reference instead of bumping it.
    Payload moved = std::move(copies[0]);
    EXPECT_TRUE(copies[0].empty());
    EXPECT_EQ(moved, original);
    EXPECT_EQ(payload_pool().live(), live_before + 1);
  }
  // The copies died; the original still pins the slot.
  EXPECT_EQ(payload_pool().live(), live_before + 1);
  original = Payload{};
  EXPECT_EQ(payload_pool().live(), live_before);
}

TEST(PayloadTest, ComparedByContentNotStorage) {
  const Payload a = make_patterned_payload(200, 3);
  const Payload b = make_patterned_payload(200, 3);  // distinct slot
  const Payload c = make_patterned_payload(200, 4);
  const Payload d = make_patterned_payload(199, 3);
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(PayloadTest, PatternedPayloadIsDeterministic) {
  // Same (size, tag) anywhere — any engine, any thread — same bytes.
  const Payload a = make_patterned_payload(300, 0xdeadbeef);
  const Payload b = make_patterned_payload(300, 0xdeadbeef);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.checksum(), payload_fnv(b.data(), b.size()));
}

// --- Authenticator units ----------------------------------------------------

WireMessage signed_message() {
  WireMessage msg;
  msg.kind = MsgKind::kSupport;
  msg.sender = 3;
  msg.general = GeneralId{1};
  msg.value = 42;
  msg.broadcaster = 2;
  msg.round = 5;
  msg.payload = make_patterned_payload(80, 11);
  return msg;
}

TEST(AuthenticatorTest, TagIsDeterministicAndNeverZero) {
  const Authenticator auth(AuthKind::kHmac, 1234);
  const WireMessage msg = signed_message();
  const std::uint64_t tag = auth.tag(msg);
  EXPECT_NE(tag, 0u);
  EXPECT_EQ(tag, auth.tag(msg));
  EXPECT_EQ(tag, Authenticator(AuthKind::kHmac, 1234).tag(msg));

  WireMessage stamped = msg;
  auth.sign(stamped);
  EXPECT_EQ(stamped.auth, tag);
  EXPECT_TRUE(auth.verify(stamped));
  // An untagged copy (auth == 0) can never verify under kHmac.
  EXPECT_FALSE(auth.verify(msg));
}

TEST(AuthenticatorTest, TagBindsEveryFieldAndTheKey) {
  const Authenticator auth(AuthKind::kHmac, 1234);
  WireMessage msg = signed_message();
  auth.sign(msg);

  const auto rejects = [&](WireMessage tampered) {
    return !auth.verify(tampered);
  };
  WireMessage t;

  t = msg;
  t.kind = MsgKind::kReady;
  EXPECT_TRUE(rejects(t)) << "kind";
  t = msg;
  t.sender = 4;  // impersonation: a different sender needs a different key
  EXPECT_TRUE(rejects(t)) << "sender";
  t = msg;
  t.general = GeneralId{2};
  EXPECT_TRUE(rejects(t)) << "general";
  t = msg;
  t.value = 43;
  EXPECT_TRUE(rejects(t)) << "value";
  t = msg;
  t.broadcaster = 6;
  EXPECT_TRUE(rejects(t)) << "broadcaster";
  t = msg;
  t.round = 6;
  EXPECT_TRUE(rejects(t)) << "round";
  t = msg;
  t.payload = make_patterned_payload(80, 12);  // same size, other bytes
  EXPECT_TRUE(rejects(t)) << "payload bytes";
  t = msg;
  t.payload = Payload{};
  EXPECT_TRUE(rejects(t)) << "payload stripped";

  // A different key seed signs a different universe of tags.
  EXPECT_FALSE(Authenticator(AuthKind::kHmac, 1235).verify(msg));
}

TEST(AuthenticatorTest, NullSchemeAcceptsAnything) {
  const Authenticator auth(AuthKind::kNull, 1234);
  WireMessage msg = signed_message();
  msg.auth = 0xabcdef;  // garbage tag
  EXPECT_TRUE(auth.verify(msg));
  EXPECT_EQ(auth.tag(msg), 0u);
  auth.sign(msg);
  EXPECT_EQ(msg.auth, 0xabcdefu);  // sign is a no-op, it does not zero
}

// --- forged-traffic rejection on the wire -----------------------------------

/// Counts deliveries — the victim of forged plants.
class CountingBehavior final : public NodeBehavior {
 public:
  void on_start(NodeContext&) override {}
  void on_message(NodeContext&, const WireMessage&) override { ++received; }
  void on_timer(NodeContext&, std::uint64_t) override {}
  std::uint32_t received = 0;
};

TEST(AuthRejectTest, ForgedPlantIsDiscardedUnderHmacDeliveredUnderNull) {
  for (const AuthKind kind : {AuthKind::kNull, AuthKind::kHmac}) {
    WorldConfig wc;
    wc.n = 2;
    wc.seed = 77;
    wc.auth = kind;
    World world(wc);
    auto counter = std::make_unique<CountingBehavior>();
    CountingBehavior* victim = counter.get();
    world.set_behavior(0, std::make_unique<CountingBehavior>());
    world.set_behavior(1, std::move(counter));
    world.start();

    // A fault-injector plant: forged sender, garbage tag.
    WireMessage forged = signed_message();
    forged.auth = 0x1111;
    world.inject_raw(1, forged, milliseconds(1));
    world.run_until(RealTime::zero() + milliseconds(10));

    const NetworkStats stats = world.net_stats();
    EXPECT_EQ(stats.forged, 1u) << to_string(kind);
    if (kind == AuthKind::kHmac) {
      EXPECT_EQ(victim->received, 0u);
      EXPECT_EQ(stats.auth_rejected, 1u);
    } else {
      EXPECT_EQ(victim->received, 1u);
      EXPECT_EQ(stats.auth_rejected, 0u);
    }
  }
}

TEST(AuthRejectTest, LegitimateTrafficPassesUnderHmac) {
  /// Sends one signed message at start; the network signs at admission.
  class Sender final : public NodeBehavior {
   public:
    void on_start(NodeContext& ctx) override {
      WireMessage msg;
      msg.value = 9;
      msg.payload = make_patterned_payload(128, 9);
      ctx.send(1, msg);
    }
    void on_message(NodeContext&, const WireMessage&) override {}
    void on_timer(NodeContext&, std::uint64_t) override {}
  };

  WorldConfig wc;
  wc.n = 2;
  wc.seed = 78;
  wc.auth = AuthKind::kHmac;
  World world(wc);
  auto counter = std::make_unique<CountingBehavior>();
  CountingBehavior* receiver = counter.get();
  world.set_behavior(0, std::make_unique<Sender>());
  world.set_behavior(1, std::move(counter));
  world.start();
  world.run_until(RealTime::zero() + milliseconds(10));

  EXPECT_EQ(receiver->received, 1u);
  EXPECT_EQ(world.net_stats().auth_rejected, 0u);
  EXPECT_EQ(world.net_stats().delivered, 1u);
}

// --- scenario shaping for the engine-level pins -----------------------------

/// The test_shard scenario shape with the payload pipeline switched on:
/// pooled-size command bodies on every proposal and the keyed scheme
/// guarding every delivery.
Scenario payload_scenario(StackKind stack, std::uint32_t shards) {
  Scenario sc;
  sc.stack = stack;
  sc.n = 8;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.shards = shards;
  sc.auth = AuthKind::kHmac;
  sc.payload_bytes = Payload::kInlineCapacity + 32;  // forced through the pool
  sc.link_delay =
      DelayModel::exp_truncated(sc.delta / 10, sc.delta / 5, sc.delta);
  sc.adversary = stack == StackKind::kBaselineTps ? AdversaryKind::kSilent
                                                  : AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  const Params params = sc.make_params();
  switch (stack) {
    case StackKind::kAgree:
      sc.with_proposal(milliseconds(2), 0, 42);
      sc.with_proposal(milliseconds(40), 1, 43);
      sc.run_for = milliseconds(150);
      break;
    case StackKind::kBaselineTps:
      sc.with_proposal(milliseconds(1), 0, 7);
      sc.run_for = milliseconds(120);
      break;
    case StackKind::kReplicatedLog:
    case StackKind::kPipelinedLog:
      for (std::uint32_t c = 0; c < 3; ++c) {
        sc.with_proposal(Duration::zero(), NodeId(c), 100 + c);
      }
      sc.run_for =
          6 * (params.delta_0() + params.delta_agr() + 10 * params.d());
      break;
    case StackKind::kPulse:
    case StackKind::kClockSync:
      sc.run_for =
          params.delta_stb() + 10 * 2 * (params.delta_0() + params.delta_agr());
      break;
  }
  return sc;
}

/// payload_scenario plus the stabilization-measurement shape: a transient
/// scramble and a chaos window (with shards > 0 this selects the
/// alternating DutyWorld engine).
Scenario payload_chaos_scenario(StackKind stack, std::uint32_t shards) {
  Scenario sc = payload_scenario(stack, shards);
  sc.chaos_period = milliseconds(5);
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = 16;
  return sc;
}

// Chaos minting (fault-injector plants, corrupted copies, tag tampering)
// knows no keys: a scrambled chaotic run under kHmac must reject traffic,
// and must reject the exact same deliveries on every engine.
TEST(AuthRejectTest, ChaosForgeryRejectionsMatchOnEveryEngine) {
  const auto run = [](std::uint32_t shards) {
    Scenario sc = payload_chaos_scenario(StackKind::kAgree, shards);
    Cluster cluster(sc);
    cluster.run();
    struct Out {
      std::uint64_t digest, rejected, forged;
    };
    return Out{evaluate_stack(cluster).digest,
               cluster.world().net_stats().auth_rejected,
               cluster.world().net_stats().forged};
  };
  const auto serial = run(0);
  EXPECT_GT(serial.rejected, 0u);
  EXPECT_GT(serial.forged, 0u);
  for (const std::uint32_t shards : {2u, 4u}) {
    const auto sharded = run(shards);
    EXPECT_EQ(sharded.digest, serial.digest) << "shards " << shards;
    EXPECT_EQ(sharded.rejected, serial.rejected) << "shards " << shards;
    EXPECT_EQ(sharded.forged, serial.forged) << "shards " << shards;
  }
}

// --- the no-leak invariant --------------------------------------------------

// After a chaos + duty-cycle run on EVERY engine — serial, sharded, and
// alternating — destroying the cluster releases every pool slot: the
// engines' queue closures, the migration snapshots, and the app stacks'
// pending queues were the only owners.
TEST(PoolLeakTest, NoLivePayloadsAfterChaosDutyRunsOnEveryEngine) {
  struct Case {
    const char* label;
    std::uint32_t shards;
    std::uint32_t chaos_count;
  };
  const Case cases[] = {
      {"serial + chaos", 0, 2},
      {"sharded, no chaos", 4, 0},
      {"alternating duty cycle", 4, 2},
  };
  for (const Case& c : cases) {
    for (const StackKind stack :
         {StackKind::kAgree, StackKind::kReplicatedLog,
          StackKind::kPipelinedLog}) {
      {
        Scenario sc = c.chaos_count > 0
                          ? payload_chaos_scenario(stack, c.shards)
                          : payload_scenario(stack, c.shards);
        sc.chaos_count = c.chaos_count;
        Cluster cluster(sc);
        cluster.run();
        // Payload traffic actually flowed. Checked on the log stacks only:
        // they re-propose after a pacing refusal, so a scramble can never
        // starve the run of bodies (kAgree's one-shot proposals can be
        // refused while healing).
        if (stack != StackKind::kAgree) {
          EXPECT_GT(cluster.world().net_stats().payload_bytes, 0u)
              << c.label << " " << to_string(stack);
        }
      }
      EXPECT_EQ(payload_pool().live(), 0u)
          << c.label << " " << to_string(stack);
    }
  }
}

// --- the acceptance parity matrix -------------------------------------------

// All six StackKinds × shards ∈ {1, 2, 4} with pooled payloads AND the
// keyed scheme on: digests (which now fold in payload checksums and the
// auth/payload wire counters) bit-identical to the serial twin.
TEST(PayloadParity, EveryStackMatchesSerialWithPayloadsAndAuth) {
  for (std::uint32_t k = 0; k < kStackKindCount; ++k) {
    const Scenario serial_sc = payload_scenario(StackKind(k), 0);
    const SweepRun serial = SweepRunner::run_cell(serial_sc, 21);
    for (const std::uint32_t shards : {1u, 2u, 4u}) {
      const Scenario sc = payload_scenario(StackKind(k), shards);
      const SweepRun run = SweepRunner::run_cell(sc, 21);
      const auto label = [&] {
        return std::string(to_string(StackKind(k))) + " shards " +
               std::to_string(shards);
      };
      EXPECT_EQ(run.digest, serial.digest) << label();
      EXPECT_EQ(run.events, serial.events) << label();
      EXPECT_EQ(run.messages, serial.messages) << label();
      EXPECT_EQ(run.pass, serial.pass) << label();
    }
  }
  EXPECT_EQ(payload_pool().live(), 0u);
}

// The log stacks surface the agreed command bodies: every committed entry
// carries the checksum of the payload that rode its Initiator broadcast,
// and the digest moves when payloads are enabled (the bodies are part of
// the observable history, not dead freight).
TEST(PayloadParity, CommittedEntriesCarryPayloadChecksums) {
  Scenario sc = payload_scenario(StackKind::kReplicatedLog, 0);
  Cluster cluster(sc);
  cluster.run();
  const auto& commits = cluster.probe().commits();
  ASSERT_FALSE(commits.empty());
  const std::uint64_t expected =
      make_patterned_payload(sc.payload_bytes, 100).checksum();
  bool found = false;
  for (const auto& c : commits) {
    if (c.entry.command == 100) {
      EXPECT_EQ(c.entry.payload_crc, expected);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  Scenario bare = payload_scenario(StackKind::kReplicatedLog, 0);
  bare.payload_bytes = 0;
  const SweepRun with_bodies = SweepRunner::run_cell(sc, 21);
  const SweepRun without = SweepRunner::run_cell(bare, 21);
  EXPECT_NE(with_bodies.digest, without.digest);
}

}  // namespace
}  // namespace ssbft
