// Replicated-log (state machine replication) tests: identical logs at all
// correct nodes, liveness past faulty proposers, hole-filling via relay,
// and convergence of the committed suffix after a transient scramble.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "adversary/adversaries.hpp"
#include "app/replicated_log.hpp"
#include "sim/world.hpp"

namespace ssbft {
namespace {

class LogFixture {
 public:
  LogFixture(std::uint32_t n, std::uint32_t f, std::uint64_t seed,
             std::uint32_t byz_count = 0) {
    WorldConfig wc;
    wc.n = n;
    wc.seed = seed;
    world = std::make_unique<World>(wc);
    params = std::make_unique<Params>(n, f, wc.d_bound());
    nodes.assign(n, nullptr);
    for (NodeId i = 0; i < n; ++i) {
      if (i >= n - byz_count) {
        world->set_behavior(
            i, std::make_unique<RandomNoiseAdversary>(milliseconds(2)));
        continue;
      }
      auto node =
          std::make_unique<ReplicatedLogNode>(*params, LogConfig{}, nullptr);
      nodes[i] = node.get();
      world->set_behavior(i, std::move(node));
    }
    correct_count = n - byz_count;
  }

  /// Are all correct logs identical (ignoring local commit times)?
  [[nodiscard]] bool logs_identical() const {
    const ReplicatedLogNode* reference = nullptr;
    for (auto* node : nodes) {
      if (node == nullptr) continue;
      if (reference == nullptr) {
        reference = node;
        continue;
      }
      if (node->log().size() != reference->log().size()) return false;
      auto it_a = node->log().begin();
      auto it_b = reference->log().begin();
      for (; it_a != node->log().end(); ++it_a, ++it_b) {
        if (it_a->first != it_b->first || !(it_a->second == it_b->second)) {
          return false;
        }
      }
    }
    return true;
  }

  std::unique_ptr<World> world;
  std::unique_ptr<Params> params;
  std::vector<ReplicatedLogNode*> nodes;
  std::uint32_t correct_count = 0;
};

TEST(ReplicatedLogTest, EncodeDecodeRoundTrip) {
  for (std::uint64_t slot : {0ull, 1ull, 12345ull, 0x7FFFFFFFull}) {
    for (std::uint32_t cmd : {0u, 1u, 0xABCDEF01u, 0xFFFFFFFEu}) {
      const Value v = ReplicatedLogNode::encode(slot, cmd);
      EXPECT_NE(v, kBottom);
      std::uint64_t s;
      std::uint32_t c;
      ReplicatedLogNode::decode(v, s, c);
      EXPECT_EQ(s, slot);
      EXPECT_EQ(c, cmd);
    }
  }
}

TEST(ReplicatedLogTest, CommandsCommitInSlotOrderOnAllNodes) {
  LogFixture fx(4, 1, 1);
  fx.world->start();
  // Every node submits a few commands; rotation drains them.
  for (NodeId i = 0; i < 4; ++i) {
    for (std::uint32_t k = 0; k < 2; ++k) {
      fx.nodes[i]->submit(100 * (i + 1) + k);
    }
  }
  fx.world->run_for(16 * fx.nodes[0]->slot_period());
  EXPECT_TRUE(fx.logs_identical());
  ASSERT_GE(fx.nodes[0]->log().size(), 6u);
  // Slot → proposer respects the rotation.
  for (const auto& [slot, entry] : fx.nodes[0]->log()) {
    EXPECT_EQ(entry.proposer, NodeId(slot % 4));
  }
}

TEST(ReplicatedLogTest, PendingCommandsDrain) {
  LogFixture fx(4, 1, 3);
  fx.world->start();
  fx.nodes[2]->submit(777);
  fx.nodes[2]->submit(778);
  fx.world->run_for(20 * fx.nodes[0]->slot_period());
  EXPECT_EQ(fx.nodes[2]->pending(), 0u);
  // Both commands are in everyone's log.
  std::vector<std::uint32_t> committed;
  for (const auto& [slot, entry] : fx.nodes[0]->log()) {
    if (entry.proposer == 2) committed.push_back(entry.command);
  }
  ASSERT_GE(committed.size(), 2u);
  EXPECT_EQ(committed[0], 777u);
  EXPECT_EQ(committed[1], 778u);
}

TEST(ReplicatedLogTest, FaultyProposersAreSkippedWithoutStallingTheLog) {
  LogFixture fx(7, 2, 5, /*byz_count=*/2);  // proposers 5,6 are noise
  fx.world->start();
  for (NodeId i = 0; i < 5; ++i) fx.nodes[i]->submit(500 + i);
  fx.world->run_for(24 * fx.nodes[0]->slot_period());
  EXPECT_TRUE(fx.logs_identical());
  // All five submissions committed despite 2/7 proposers being Byzantine.
  std::uint32_t committed = 0;
  for (const auto& [slot, entry] : fx.nodes[0]->log()) {
    if (entry.command >= 500 && entry.command < 505) ++committed;
    // No slot owned by a Byzantine proposer carries a committed entry
    // (noise can't drive an agreement through).
    EXPECT_LT(entry.proposer, 5u);
  }
  EXPECT_EQ(committed, 5u);
}

TEST(ReplicatedLogTest, LogsIdenticalUnderContinuousSubmission) {
  for (std::uint64_t seed : {7u, 8u}) {
    LogFixture fx(7, 2, seed, 2);
    fx.world->start();
    // Keep refilling every correct node's queue over time.
    const Duration period = fx.nodes[0]->slot_period();
    for (int burst = 0; burst < 6; ++burst) {
      fx.world->queue().schedule(
          RealTime::zero() + burst * 4 * period, [&fx, burst] {
            for (NodeId i = 0; i < 5; ++i) {
              fx.nodes[i]->submit(std::uint32_t(1000 + 10 * burst + i));
            }
          });
    }
    fx.world->run_for(30 * period);
    EXPECT_TRUE(fx.logs_identical()) << "seed " << seed;
    EXPECT_GE(fx.nodes[0]->log().size(), 12u);
  }
}

TEST(ReplicatedLogTest, WorkSubmittedAfterScrambleCommitsConsistently) {
  // A transient fault scrambles agreement state, slot cursors, AND the
  // application log (junk entries). The guarantee after convergence: every
  // command submitted post-settle is committed at every correct node with
  // an identical (slot, command, proposer) record. (Pre-coherence junk
  // entries are application state the protocol does not retroactively heal
  // — that is outside the agreement problem and documented as such.)
  LogFixture fx(7, 2, 11, 2);
  fx.world->start();
  for (NodeId i = 0; i < 5; ++i) fx.world->scramble_node(i);

  fx.world->run_for(fx.params->delta_stb());
  for (NodeId i = 0; i < 5; ++i) fx.nodes[i]->submit(9000 + i);
  fx.world->run_for(30 * fx.nodes[0]->slot_period());

  for (std::uint32_t cmd = 9000; cmd < 9005; ++cmd) {
    std::optional<CommittedEntry> reference;
    for (NodeId i = 0; i < 5; ++i) {
      std::optional<CommittedEntry> found;
      for (const auto& [slot, entry] : fx.nodes[i]->log()) {
        if (entry.command == cmd) {
          found = entry;
          break;
        }
      }
      ASSERT_TRUE(found.has_value())
          << "node " << i << " never committed cmd " << cmd;
      if (!reference) {
        reference = found;
      } else {
        EXPECT_TRUE(*found == *reference) << "cmd " << cmd << " diverged";
      }
    }
  }
  for (NodeId i = 0; i < 5; ++i) EXPECT_EQ(fx.nodes[i]->pending(), 0u);
}

}  // namespace
}  // namespace ssbft
