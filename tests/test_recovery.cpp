// Fault-turnover and recovery tests.
//
// The paper's model lets nodes *recover*: a faulty node that resumes
// obeying the protocol is non-faulty again, and becomes correct after
// ∆node of continuous good behavior (Def. 1/4, Corollary 6). The World
// supports this via behavior replacement; these tests exercise
// Byzantine→correct turnover, correct→Byzantine turnover (within the f
// budget), and late joiners.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/adversaries.hpp"
#include "harness/metrics.hpp"
#include "harness/runner.hpp"

namespace ssbft {
namespace {

std::unique_ptr<SsByzNode> make_protocol_node(Cluster& cluster,
                                              std::vector<TimedDecision>* out) {
  auto sink = [&cluster, out](const Decision& decision) {
    TimedDecision td;
    td.decision = decision;
    td.real_at = cluster.world().now();
    td.tau_g_real = cluster.world().real_at(decision.node, decision.tau_g);
    out->push_back(td);
  };
  return std::make_unique<SsByzNode>(cluster.params(), sink);
}

TEST(RecoveryTest, ByzantineNodeRecoversAndRejoinsAgreement) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Scenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.byz_nodes = {5, 6};
    sc.adversary = AdversaryKind::kNoise;
    sc.seed = seed;
    sc.run_for = milliseconds(1);  // run() driven manually below
    Cluster cluster(sc);
    std::vector<TimedDecision> recovered_decisions;

    cluster.world().start();
    cluster.world().run_until(RealTime::zero() + milliseconds(30));

    // Node 6 stops being Byzantine and starts running the protocol with a
    // fresh (arbitrary-from-its-view) state. After ∆node of good behavior
    // it must participate fully.
    cluster.world().set_behavior(
        6, make_protocol_node(cluster, &recovered_decisions));
    const Params& params = cluster.params();
    const Duration wait = params.delta_node();
    const RealTime propose_at =
        RealTime::zero() + milliseconds(30) + wait + milliseconds(1);
    cluster.propose_at((propose_at - RealTime::zero()), 0, 42);
    cluster.world().run_until(propose_at + milliseconds(100));

    // The recovered node decided the same value as everyone else.
    ASSERT_EQ(recovered_decisions.size(), 1u) << "seed " << seed;
    EXPECT_EQ(recovered_decisions[0].decision.value, 42u);
    // And the original correct nodes all decided too.
    std::uint32_t decided = 0;
    for (const auto& d : cluster.decisions()) {
      if (d.decision.decided() && d.decision.general.node == 0) ++decided;
    }
    EXPECT_EQ(decided, cluster.correct_count());
  }
}

TEST(RecoveryTest, TurnoverWithinBudgetPreservesAgreement) {
  // One Byzantine node recovers while another correct node turns Byzantine:
  // the instantaneous count never exceeds f. Agreements before and after
  // the swap must both succeed.
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.byz_nodes = {6};
  sc.adversary = AdversaryKind::kNoise;
  sc.seed = 11;
  sc.run_for = milliseconds(1);
  Cluster cluster(sc);
  std::vector<TimedDecision> recovered_decisions;
  const Params& params = cluster.params();

  cluster.world().start();
  cluster.propose_at(milliseconds(5), 0, 1);
  cluster.world().run_until(RealTime::zero() + milliseconds(40));

  // Swap: node 6 recovers, node 4 goes Byzantine (budget still ≤ f = 2).
  cluster.world().set_behavior(
      6, make_protocol_node(cluster, &recovered_decisions));
  cluster.world().set_behavior(
      4, std::make_unique<RandomNoiseAdversary>(milliseconds(1)));

  const Duration settle = params.delta_node();
  cluster.propose_at(milliseconds(40) + settle, 0, 2);
  cluster.world().run_until(RealTime::zero() + milliseconds(40) + settle +
                            milliseconds(120));

  // Post-swap agreement: nodes 0,1,2,3,5 plus recovered node 6 — six
  // correct nodes — decide value 2.
  std::uint32_t post_deciders = 0;
  for (const auto& d : cluster.decisions()) {
    if (d.decision.decided() && d.decision.value == 2) ++post_deciders;
  }
  for (const auto& d : recovered_decisions) {
    if (d.decision.decided() && d.decision.value == 2) ++post_deciders;
  }
  EXPECT_EQ(post_deciders, 6u);

  // Nothing, before or after, may disagree.
  std::vector<TimedDecision> all = cluster.decisions();
  all.insert(all.end(), recovered_decisions.begin(), recovered_decisions.end());
  const auto m = evaluate_run(all, {}, 6, params);
  EXPECT_EQ(m.agreement_violations, 0u);
}

TEST(RecoveryTest, ScrambledRecoveredNodeCannotPoisonOthers) {
  // A recovering node comes back with maximally bad state (scrambled), yet
  // counts against nobody: the other n−f correct nodes still satisfy
  // validity immediately, and the recovered node converges by ∆node.
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.byz_nodes = {6};
  sc.adversary = AdversaryKind::kSilent;
  sc.seed = 21;
  sc.run_for = milliseconds(1);
  Cluster cluster(sc);
  std::vector<TimedDecision> recovered_decisions;

  cluster.world().start();
  cluster.world().set_behavior(
      6, make_protocol_node(cluster, &recovered_decisions));
  cluster.world().scramble_node(6);  // recovery with arbitrary memory

  // Immediately propose — the scrambled node may sit this one out, but the
  // others must decide (they form an n−f correct quorum without it).
  cluster.propose_at(milliseconds(2), 0, 9);
  cluster.world().run_until(RealTime::zero() + milliseconds(80));
  std::uint32_t early = 0;
  for (const auto& d : cluster.decisions()) {
    if (d.decision.decided() && d.decision.value == 9) ++early;
  }
  EXPECT_EQ(early, cluster.correct_count());

  // After ∆node, the recovered node participates and decides too.
  const Duration settle = cluster.params().delta_node();
  cluster.propose_at(milliseconds(80) + settle, 0, 10);
  cluster.world().run_until(RealTime::zero() + milliseconds(80) + settle +
                            milliseconds(100));
  bool recovered_decided = false;
  for (const auto& d : recovered_decisions) {
    if (d.decision.decided() && d.decision.value == 10) recovered_decided = true;
  }
  EXPECT_TRUE(recovered_decided);
}

TEST(RecoveryTest, RepeatedScramblesOfMinorityNeverBreakAgreement) {
  // Keep re-scrambling one rotating correct node between agreements; no
  // execution may ever split.
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.seed = 31;
  sc.run_for = milliseconds(1);
  Cluster cluster(sc);
  const Params& params = cluster.params();
  cluster.world().start();

  // Each round: scramble, wait out the decay horizon (∆reset bounds every
  // variable), propose, let the agreement finish.
  const Duration slot = params.delta_reset() + milliseconds(30);
  for (int round = 0; round < 4; ++round) {
    const Duration base = round * slot;
    cluster.world().run_until(RealTime::zero() + base + milliseconds(1));
    cluster.world().scramble_node(NodeId(1 + (round % 4)));
    // Propose only after the scrambled node's garbage pacing state decayed
    // (∆reset bounds every variable).
    cluster.propose_at(base + params.delta_reset() + milliseconds(1), 0,
                       100 + Value(round));
    cluster.world().run_until(RealTime::zero() + base + slot);
  }
  const auto m = evaluate_run(cluster.decisions(), {}, cluster.correct_count(),
                              params);
  EXPECT_EQ(m.agreement_violations, 0u);
  EXPECT_GE(m.unanimous_decides, 3u);
}

}  // namespace
}  // namespace ssbft
