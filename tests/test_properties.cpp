// Property-style parameterized sweeps: Agreement/Validity/Timeliness must
// hold across the whole grid of cluster sizes × adversaries × delay models ×
// seeds. Each point is one seeded simulation; the assertions are the
// paper's invariants, so any counterexample is a protocol (or model) bug.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"

namespace ssbft {
namespace {

// --------------------------------------------------------------------------
// Sweep 1: correct General across (n, adversary, seed).
// --------------------------------------------------------------------------

using CorrectGeneralParams =
    std::tuple<std::uint32_t /*n*/, AdversaryKind, std::uint64_t /*seed*/>;

class CorrectGeneralSweep
    : public ::testing::TestWithParam<CorrectGeneralParams> {};

TEST_P(CorrectGeneralSweep, ValidityAgreementTimeliness) {
  const auto [n, adversary, seed] = GetParam();
  const std::uint32_t f = (n - 1) / 3;

  Scenario sc;
  sc.n = n;
  sc.f = f;
  sc.with_tail_faults(f);
  sc.adversary = adversary;
  sc.adversary_period = milliseconds(1);
  sc.with_proposal(milliseconds(10), 0, 7);
  sc.run_for = milliseconds(400);
  sc.seed = seed;

  Cluster cluster(sc);
  cluster.run();
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.agreement_violations, 0u);
  EXPECT_EQ(m.validity_violations, 0u);
  // Timeliness: decision skew ≤ 3d (2d with validity, but adversaries other
  // than silent may force the general bound), τG skew ≤ 6d.
  EXPECT_LE(m.max_decision_skew, 3 * cluster.params().d());
  EXPECT_LE(m.max_tau_g_skew, 6 * cluster.params().d());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CorrectGeneralSweep,
    ::testing::Combine(::testing::Values(4u, 7u, 10u, 13u),
                       ::testing::Values(AdversaryKind::kSilent,
                                         AdversaryKind::kNoise,
                                         AdversaryKind::kQuorumFaker,
                                         AdversaryKind::kReplay),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<CorrectGeneralParams>& info) {
      std::string name = to_string(std::get<1>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return "n" + std::to_string(std::get<0>(info.param)) + "_" + name +
             "_s" + std::to_string(std::get<2>(info.param));
    });

// --------------------------------------------------------------------------
// Sweep 2: Byzantine General across (n, attack, seed) — safety only.
// --------------------------------------------------------------------------

using ByzGeneralParams =
    std::tuple<std::uint32_t, AdversaryKind, std::uint64_t>;

class ByzantineGeneralSweep
    : public ::testing::TestWithParam<ByzGeneralParams> {};

TEST_P(ByzantineGeneralSweep, AgreementAndRelayHold) {
  const auto [n, attack, seed] = GetParam();
  const std::uint32_t f = (n - 1) / 3;

  Scenario sc;
  sc.n = n;
  sc.f = f;
  // The General itself (node 0) is Byzantine; remaining budget at the tail.
  sc.byz_nodes = {0};
  for (std::uint32_t i = 1; i < f; ++i) sc.byz_nodes.push_back(n - i);
  sc.adversary = attack;
  sc.adversary_period = milliseconds(2);
  sc.stagger_span = milliseconds(5);
  sc.run_for = milliseconds(500);
  sc.seed = seed;

  Cluster cluster(sc);
  cluster.run();

  const auto execs = cluster_executions(cluster.decisions(), cluster.params());
  const RealTime horizon = RealTime::zero() + sc.run_for -
                           (cluster.params().delta_agr() + 7 * cluster.params().d());
  for (const auto& e : execs) {
    // Agreement: no two correct nodes decide differently.
    EXPECT_TRUE(e.agreement_holds());
    // Executions still in flight when the run ended can't be judged for
    // relay completeness.
    if (e.first_return() > horizon) continue;
    // Relay: a decision anywhere ⇒ decisions everywhere (all correct nodes).
    if (e.decided_count() > 0) {
      EXPECT_EQ(e.decided_count(), cluster.correct_count());
      EXPECT_LE(e.decision_skew(), 3 * cluster.params().d());
      EXPECT_LE(e.tau_g_skew(), 6 * cluster.params().d());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ByzantineGeneralSweep,
    ::testing::Combine(::testing::Values(4u, 7u, 10u),
                       ::testing::Values(AdversaryKind::kEquivocatingGeneral,
                                         AdversaryKind::kStaggeredGeneral,
                                         AdversaryKind::kSpamGeneral),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const ::testing::TestParamInfo<ByzGeneralParams>& info) {
      std::string name = to_string(std::get<1>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return "n" + std::to_string(std::get<0>(info.param)) + "_" + name +
             "_s" + std::to_string(std::get<2>(info.param));
    });

// --------------------------------------------------------------------------
// Sweep 3: delay-model robustness — validity under every delay shape.
// --------------------------------------------------------------------------

struct DelayCase {
  const char* name;
  DelayModel model;
};

class DelayModelSweep : public ::testing::TestWithParam<DelayCase> {};

TEST_P(DelayModelSweep, ValidityHolds) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Scenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.with_tail_faults(2);
    sc.link_delay = GetParam().model;
    sc.with_proposal(milliseconds(10), 0, 7);
    sc.run_for = milliseconds(400);
    sc.seed = seed;
    Cluster cluster(sc);
    cluster.run();
    const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                                cluster.correct_count(), cluster.params());
    EXPECT_EQ(m.agreement_violations, 0u) << GetParam().name << " s" << seed;
    EXPECT_EQ(m.validity_violations, 0u) << GetParam().name << " s" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DelayModelSweep,
    ::testing::Values(
        DelayCase{"constant_min", DelayModel::constant(microseconds(50))},
        DelayCase{"constant_at_bound", DelayModel::constant(milliseconds(1))},
        DelayCase{"uniform_full",
                  DelayModel::uniform(microseconds(200), milliseconds(1))},
        DelayCase{"exp_fast",
                  DelayModel::exp_truncated(microseconds(100), milliseconds(1))},
        DelayCase{"exp_heavy",
                  DelayModel::exp_truncated(microseconds(600), milliseconds(1))}),
    [](const ::testing::TestParamInfo<DelayCase>& info) {
      return info.param.name;
    });

// --------------------------------------------------------------------------
// Sweep 4: stabilization across seeds (property: convergence always happens).
// --------------------------------------------------------------------------

class StabilizationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StabilizationSweep, ConvergesAndAgrees) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = 48;
  sc.chaos_period = milliseconds(8);
  sc.seed = GetParam();
  const Params params = sc.make_params();
  const Duration stable_at = sc.chaos_period + params.delta_stb();
  sc.with_proposal(stable_at + milliseconds(1), 0, 42);
  sc.run_for = stable_at + milliseconds(150);

  Cluster cluster(sc);
  cluster.run();

  std::uint32_t decided = 0;
  for (const auto& d : cluster.decisions()) {
    if (d.real_at >= RealTime::zero() + stable_at &&
        d.decision.general.node == 0 && d.decision.decided()) {
      EXPECT_EQ(d.decision.value, 42u);
      ++decided;
    }
  }
  EXPECT_EQ(decided, cluster.correct_count());

  // And the post-stabilization record is violation-free.
  std::vector<TimedDecision> post;
  for (const auto& d : cluster.decisions()) {
    if (d.real_at >= RealTime::zero() + stable_at) post.push_back(d);
  }
  const auto m = evaluate_run(post, {}, cluster.correct_count(), params);
  EXPECT_EQ(m.agreement_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StabilizationSweep,
                         ::testing::Range(std::uint64_t{100},
                                          std::uint64_t{116}));

}  // namespace
}  // namespace ssbft
