// Unit tests: harness layer — execution clustering, metrics, scenarios,
// adversary construction, report tables.
#include <gtest/gtest.h>

#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "pulse/pulse_sync.hpp"

namespace ssbft {
namespace {

TimedDecision make_decision(NodeId node, NodeId general, Value value,
                            std::int64_t at_ns, std::int64_t tau_g_ns = 0) {
  TimedDecision td;
  td.decision.node = node;
  td.decision.general = GeneralId{general};
  td.decision.value = value;
  td.real_at = RealTime{at_ns};
  td.tau_g_real = RealTime{tau_g_ns ? tau_g_ns : at_ns - 1000};
  return td;
}

Params test_params() { return Params{7, 2, milliseconds(1)}; }

// ----------------------------------------------------------- clustering --

TEST(MetricsTest, SingleExecutionClustersTogether) {
  const Params p = test_params();
  std::vector<TimedDecision> ds;
  for (NodeId i = 0; i < 5; ++i) {
    ds.push_back(make_decision(i, 0, 7, 1'000'000 + i * 1000));
  }
  const auto execs = cluster_executions(ds, p);
  ASSERT_EQ(execs.size(), 1u);
  EXPECT_EQ(execs[0].returns.size(), 5u);
  EXPECT_EQ(execs[0].decided_count(), 5u);
}

TEST(MetricsTest, LargeGapSplitsExecutions) {
  const Params p = test_params();
  const std::int64_t horizon = (p.delta_agr() + 7 * p.d()).ns();
  std::vector<TimedDecision> ds;
  ds.push_back(make_decision(0, 0, 7, 1'000'000));
  ds.push_back(make_decision(1, 0, 7, 1'000'000 + horizon + 1));
  const auto execs = cluster_executions(ds, p);
  EXPECT_EQ(execs.size(), 2u);
}

TEST(MetricsTest, DifferentGeneralsAreSeparateExecutions) {
  const Params p = test_params();
  std::vector<TimedDecision> ds;
  ds.push_back(make_decision(0, 0, 7, 1'000'000));
  ds.push_back(make_decision(0, 1, 7, 1'000'000));
  const auto execs = cluster_executions(ds, p);
  EXPECT_EQ(execs.size(), 2u);
}

TEST(MetricsTest, ExecutionsSortedByFirstReturn) {
  const Params p = test_params();
  std::vector<TimedDecision> ds;
  ds.push_back(make_decision(0, 1, 7, 5'000'000));
  ds.push_back(make_decision(0, 0, 7, 1'000'000));
  const auto execs = cluster_executions(ds, p);
  ASSERT_EQ(execs.size(), 2u);
  EXPECT_EQ(execs[0].general.node, 0u);
  EXPECT_EQ(execs[1].general.node, 1u);
}

// --------------------------------------------------------------- checks --

TEST(MetricsTest, AgreementViolationDetected) {
  const Params p = test_params();
  std::vector<TimedDecision> ds;
  ds.push_back(make_decision(0, 0, 7, 1'000'000));
  ds.push_back(make_decision(1, 0, 8, 1'001'000));  // different value!
  const auto m = evaluate_run(ds, {}, 5, p);
  EXPECT_EQ(m.agreement_violations, 1u);
}

TEST(MetricsTest, AbortsDoNotCountAsDisagreement) {
  const Params p = test_params();
  std::vector<TimedDecision> ds;
  ds.push_back(make_decision(0, 0, 7, 1'000'000));
  ds.push_back(make_decision(1, 0, kBottom, 1'001'000));  // abort (⊥)
  const auto m = evaluate_run(ds, {}, 5, p);
  EXPECT_EQ(m.agreement_violations, 0u);
  const auto execs = cluster_executions(ds, p);
  ASSERT_EQ(execs.size(), 1u);
  EXPECT_EQ(execs[0].decided_count(), 1u);
  EXPECT_EQ(execs[0].abort_count(), 1u);
}

TEST(MetricsTest, ValidityViolationWhenNobodyDecides) {
  const Params p = test_params();
  std::vector<TimedProposal> proposals;
  proposals.push_back(
      TimedProposal{RealTime{1'000'000}, 0, 7, ProposeStatus::kSent});
  const auto m = evaluate_run({}, proposals, 5, p);
  EXPECT_EQ(m.validity_violations, 1u);
}

TEST(MetricsTest, ValiditySatisfiedByMatchingExecution) {
  const Params p = test_params();
  std::vector<TimedProposal> proposals;
  proposals.push_back(
      TimedProposal{RealTime{1'000'000}, 0, 7, ProposeStatus::kSent});
  std::vector<TimedDecision> ds;
  for (NodeId i = 0; i < 5; ++i) {
    ds.push_back(make_decision(i, 0, 7, 2'000'000 + i * 1000));
  }
  const auto m = evaluate_run(ds, proposals, 5, p);
  EXPECT_EQ(m.validity_violations, 0u);
  EXPECT_EQ(m.unanimous_decides, 1u);
}

TEST(MetricsTest, RefusedProposalsAreNotValidityObligations) {
  const Params p = test_params();
  std::vector<TimedProposal> proposals;
  proposals.push_back(
      TimedProposal{RealTime{1'000'000}, 0, 7, ProposeStatus::kTooSoon});
  const auto m = evaluate_run({}, proposals, 5, p);
  EXPECT_EQ(m.validity_violations, 0u);
}

TEST(MetricsTest, SkewsComputedOverDecidersOnly) {
  const Params p = test_params();
  std::vector<TimedDecision> ds;
  ds.push_back(make_decision(0, 0, 7, 1'000'000, 500'000));
  ds.push_back(make_decision(1, 0, 7, 1'500'000, 800'000));
  ds.push_back(make_decision(2, 0, kBottom, 9'000'000, 100'000));  // abort
  const auto execs = cluster_executions(ds, p);
  ASSERT_EQ(execs.size(), 1u);
  EXPECT_EQ(execs[0].decision_skew(), Duration{500'000});
  EXPECT_EQ(execs[0].tau_g_skew(), Duration{300'000});
}

// -------------------------------------------------------------- scenario --

TEST(ScenarioTest, TailFaultsMarkTheRightNodes) {
  Scenario sc;
  sc.n = 7;
  sc.with_tail_faults(2);
  EXPECT_TRUE(sc.is_byzantine(6));
  EXPECT_TRUE(sc.is_byzantine(5));
  EXPECT_FALSE(sc.is_byzantine(0));
  EXPECT_FALSE(sc.is_byzantine(4));
}

TEST(ScenarioTest, MakeParamsDerivesD) {
  Scenario sc;
  sc.delta = milliseconds(2);
  sc.pi = microseconds(100);
  sc.rho = 1e-3;
  const Params p = sc.make_params();
  // d = (δ+π)(1+ρ), rounded up.
  EXPECT_GE(p.d().ns(), 2'100'000);
  EXPECT_LE(p.d().ns(), 2'102'200);
}

TEST(ClusterTest, ByzantineNodesHaveNoProtocolNode) {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.with_tail_faults(1);
  Cluster cluster(sc);
  EXPECT_EQ(cluster.node(3), nullptr);
  EXPECT_NE(cluster.node(0), nullptr);
  EXPECT_EQ(cluster.correct_count(), 3u);
}

TEST(ClusterTest, ProposalByByzantineNodeIsIgnored) {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.with_tail_faults(1);
  sc.with_proposal(milliseconds(1), 3, 9);  // node 3 is Byzantine
  sc.run_for = milliseconds(50);
  Cluster cluster(sc);
  cluster.run();
  EXPECT_TRUE(cluster.proposals().empty());
  EXPECT_TRUE(cluster.decisions().empty());
}

TEST(ClusterTest, TypedAccessorChecksTheStackType) {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  Cluster cluster(sc);
  // Default stack is kAgree: the node IS an SsByzNode, not a pulse node.
  EXPECT_NE(cluster.node<SsByzNode>(0), nullptr);
  EXPECT_EQ(cluster.node<PulseSyncNode>(0), nullptr);
  EXPECT_EQ(cluster.behavior_at(0),
            static_cast<NodeBehavior*>(cluster.node<SsByzNode>(0)));
}

TEST(ClusterTest, AttachedProbeSeesTheDecisionStream) {
  struct CountingProbe final : Probe {
    std::uint32_t decisions = 0;
    std::uint32_t proposals = 0;
    void on_decision(const TimedDecision&) override { ++decisions; }
    void on_proposal(const TimedProposal&) override { ++proposals; }
  } counter;

  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.with_proposal(milliseconds(2), 0, 5);
  sc.run_for = milliseconds(120);
  Cluster cluster(sc);
  cluster.add_probe(&counter);
  cluster.run();

  EXPECT_EQ(counter.decisions, cluster.decisions().size());
  EXPECT_EQ(counter.proposals, cluster.proposals().size());
  EXPECT_GT(counter.decisions, 0u);
}

TEST(ClusterTest, StartIsIdempotentAndAllowsPiecewiseRuns) {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.with_proposal(milliseconds(2), 0, 5);
  Cluster cluster(sc);
  cluster.start();
  cluster.start();  // no double on_start
  cluster.world().run_for(milliseconds(60));
  cluster.world().run_for(milliseconds(60));
  EXPECT_FALSE(cluster.decisions().empty());
}

// ---------------------------------------------------------------- report --

TEST(ReportTest, TablePrintsAllCells) {
  Table t({"col_a", "b"});
  t.add_row({"1", "two"});
  t.add_row({"333", "4"});
  // Print to a memstream and check content.
  char* buf = nullptr;
  std::size_t size = 0;
  std::FILE* mem = open_memstream(&buf, &size);
  ASSERT_NE(mem, nullptr);
  t.print(mem);
  std::fclose(mem);
  const std::string out(buf, size);
  free(buf);
  EXPECT_NE(out.find("col_a"), std::string::npos);
  EXPECT_NE(out.find("two"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(Table::fmt_ms(1'500'000), "1.500");
  EXPECT_EQ(Table::fmt_ratio(2.5), "2.50x");
  EXPECT_EQ(Table::fmt_int(42), "42");
}

}  // namespace
}  // namespace ssbft
