// Cross-module parameterized sweeps: the layered stack (agreement → pulse →
// clock sync; agreement → indexed instances → pipelined log) re-verified
// property-style across cluster sizes, fault loads, pipeline depths and
// quorum policies. Each instantiation asserts the end-to-end invariant the
// stack promises, not implementation details.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adversary/adversaries.hpp"
#include "app/pipelined_log.hpp"
#include "clocksync/clock_sync.hpp"
#include "sim/world.hpp"

namespace ssbft {
namespace {

// --- clock-sync sweep --------------------------------------------------------

struct ClockCase {
  std::uint32_t n;
  std::uint32_t f;
  std::uint32_t byz;
  std::uint64_t seed;
};

class ClockSweep : public ::testing::TestWithParam<ClockCase> {};

TEST_P(ClockSweep, SettledPrecisionWithinBound) {
  const auto& param = GetParam();
  WorldConfig wc;
  wc.n = param.n;
  wc.seed = param.seed;
  World world(wc);
  Params params{param.n, param.f, wc.d_bound()};
  std::vector<ClockSyncNode*> nodes(param.n, nullptr);
  for (NodeId i = 0; i < param.n; ++i) {
    if (i >= param.n - param.byz) {
      world.set_behavior(
          i, std::make_unique<RandomNoiseAdversary>(milliseconds(2)));
      continue;
    }
    auto node = std::make_unique<ClockSyncNode>(params, ClockSyncConfig{});
    nodes[i] = node.get();
    world.set_behavior(i, std::move(node));
  }
  world.start();
  ClockSyncNode* first = nullptr;
  for (auto* node : nodes) {
    if (node != nullptr) {
      first = node;
      break;
    }
  }
  ASSERT_NE(first, nullptr);
  const Duration cycle = first->cycle();
  world.run_for(5 * cycle);

  const auto settled = [&] {
    std::optional<std::uint64_t> counter;
    for (const auto* node : nodes) {
      if (node == nullptr) continue;
      if (!node->synchronized() || !node->last_snap_counter()) return false;
      if (counter && *counter != *node->last_snap_counter()) return false;
      counter = node->last_snap_counter();
    }
    return counter.has_value();
  };
  const auto skew = [&] {
    Duration worst = Duration::zero();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == nullptr) continue;
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        if (nodes[j] == nullptr) continue;
        worst = std::max(worst, abs(nodes[i]->clock() - nodes[j]->clock()));
      }
    }
    return worst;
  };

  std::uint32_t settled_samples = 0;
  for (int sample = 0; sample < 30; ++sample) {
    world.run_for(cycle / 10);
    if (!settled()) continue;
    ++settled_samples;
    EXPECT_LE(skew(), first->precision_bound()) << "sample " << sample;
  }
  EXPECT_GE(settled_samples, 15u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClockSweep,
    ::testing::Values(ClockCase{4, 1, 0, 1}, ClockCase{4, 1, 1, 2},
                      ClockCase{7, 2, 0, 3}, ClockCase{7, 2, 2, 4},
                      ClockCase{10, 3, 3, 5}, ClockCase{13, 4, 4, 6}),
    [](const ::testing::TestParamInfo<ClockCase>& info) {
      return "n" + std::to_string(info.param.n) + "f" +
             std::to_string(info.param.f) + "byz" +
             std::to_string(info.param.byz);
    });

// --- pipelined-log sweep -------------------------------------------------------

struct PipeCase {
  std::uint32_t n;
  std::uint32_t f;
  std::uint32_t depth;
  std::uint32_t byz;
  std::uint64_t seed;
};

class PipelineSweep : public ::testing::TestWithParam<PipeCase> {};

TEST_P(PipelineSweep, CommittedSlotsIdenticalAcrossReplicas) {
  const auto& param = GetParam();
  WorldConfig wc;
  wc.n = param.n;
  wc.seed = param.seed;
  World world(wc);
  Params params{param.n, param.f, wc.d_bound()};
  std::vector<PipelinedLogNode*> nodes(param.n, nullptr);
  for (NodeId i = 0; i < param.n; ++i) {
    if (i >= param.n - param.byz) {
      world.set_behavior(
          i, std::make_unique<RandomNoiseAdversary>(milliseconds(2)));
      continue;
    }
    PipelineConfig cfg;
    cfg.depth = param.depth;
    auto node = std::make_unique<PipelinedLogNode>(params, cfg, nullptr);
    nodes[i] = node.get();
    world.set_behavior(i, std::move(node));
  }
  world.start();
  PipelinedLogNode* first = nullptr;
  for (auto* node : nodes) {
    if (node != nullptr) {
      first = node;
      break;
    }
  }
  ASSERT_NE(first, nullptr);
  for (NodeId i = 0; i < param.n; ++i) {
    if (nodes[i] == nullptr) continue;
    for (std::uint32_t c = 0; c < 4; ++c) nodes[i]->submit(100 * i + c);
  }
  world.run_for(12 * first->slot_period());

  // Every committed slot present at two replicas carries the same record,
  // and a healthy majority of submitted commands committed somewhere.
  std::map<std::uint64_t, PipelinedEntry> reference;
  std::size_t commits = 0;
  for (const auto* node : nodes) {
    if (node == nullptr) continue;
    for (const auto& [slot, entry] : node->settled()) {
      if (entry.skipped) continue;
      ++commits;
      const auto it = reference.find(slot);
      if (it == reference.end()) {
        reference.emplace(slot, entry);
      } else {
        EXPECT_TRUE(it->second == entry) << "slot " << slot << " diverged";
      }
    }
  }
  const std::size_t correct = param.n - param.byz;
  EXPECT_GE(commits, correct * 4u / 2)
      << "fewer than half the submitted commands committed";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineSweep,
    ::testing::Values(PipeCase{4, 1, 1, 0, 1}, PipeCase{4, 1, 4, 0, 2},
                      PipeCase{4, 1, 8, 1, 3}, PipeCase{7, 2, 4, 0, 4},
                      PipeCase{7, 2, 4, 2, 5}, PipeCase{7, 2, 14, 2, 6},
                      PipeCase{10, 3, 4, 3, 7}, PipeCase{13, 4, 8, 4, 8}),
    [](const ::testing::TestParamInfo<PipeCase>& info) {
      return "n" + std::to_string(info.param.n) + "f" +
             std::to_string(info.param.f) + "d" +
             std::to_string(info.param.depth) + "byz" +
             std::to_string(info.param.byz);
    });

}  // namespace
}  // namespace ssbft
