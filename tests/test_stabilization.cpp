// Self-stabilization tests: convergence from arbitrary states (the paper's
// headline claim). A transient fault scrambles every node's protocol state,
// re-randomizes clocks, and floods the wires with forged messages; the
// network itself may behave arbitrarily until ι0. After stabilization
// (ι0 + ∆stb) the protocol must satisfy all its properties again, with no
// outside intervention.
#include <gtest/gtest.h>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"

namespace ssbft {
namespace {

Scenario stabilization_scenario(std::uint64_t seed) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = 64;
  sc.transient.spurious_span = milliseconds(5);
  sc.chaos_period = milliseconds(10);  // ι0 = 10ms
  sc.seed = seed;
  return sc;
}

TEST(StabilizationTest, ConvergesFromScrambledStateAndDecides) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    Scenario sc = stabilization_scenario(seed);
    const Params params = sc.make_params();
    // Propose after ι0 + ∆stb — the paper's convergence guarantee point.
    const Duration stable_at = sc.chaos_period + params.delta_stb();
    sc.with_proposal(stable_at + milliseconds(1), 0, 42);
    sc.run_for = stable_at + milliseconds(150);
    Cluster cluster(sc);
    cluster.run();

    // Every correct node decides 42 for General 0 after the stable point.
    std::uint32_t decided = 0;
    for (const auto& d : cluster.decisions()) {
      if (d.real_at < RealTime::zero() + stable_at) continue;
      if (d.decision.general.node == 0 && d.decision.decided()) {
        EXPECT_EQ(d.decision.value, 42u) << "seed " << seed;
        ++decided;
      }
    }
    EXPECT_EQ(decided, cluster.correct_count()) << "seed " << seed;
  }
}

TEST(StabilizationTest, NoAgreementViolationsAfterStabilization) {
  // Even while garbage is still decaying, decisions issued after ι0 + ∆stb
  // must never disagree.
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    Scenario sc = stabilization_scenario(seed);
    const Params params = sc.make_params();
    const Duration stable_at = sc.chaos_period + params.delta_stb();
    const Duration gap = params.delta_0() + 5 * params.d();
    for (int i = 0; i < 3; ++i) {
      sc.with_proposal(stable_at + milliseconds(1) + i * gap, 0, 10 + Value(i));
    }
    sc.run_for = stable_at + 3 * gap + milliseconds(100);
    Cluster cluster(sc);
    cluster.run();

    std::vector<TimedDecision> post;
    for (const auto& d : cluster.decisions()) {
      if (d.real_at >= RealTime::zero() + stable_at) post.push_back(d);
    }
    const auto m = evaluate_run(post, {}, cluster.correct_count(), params);
    EXPECT_EQ(m.agreement_violations, 0u) << "seed " << seed;
  }
}

TEST(StabilizationTest, ScrambledMinorityHealsWithoutQuietPeriod) {
  // Only f nodes get scrambled (the rest are clean): the system as a whole
  // must keep satisfying validity immediately — the scrambled nodes are
  // "non-faulty but not yet correct" and must not poison anyone else.
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    Scenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.with_tail_faults(2);
    sc.seed = seed;
    sc.run_for = milliseconds(500);
    Cluster cluster(sc);
    // Scramble two *correct* nodes' state before starting.
    cluster.world().start();
    cluster.world().scramble_node(1);
    cluster.world().scramble_node(2);
    const Params params = cluster.params();
    // Wait out the decay horizon, then propose.
    const Duration settle = params.delta_reset();
    cluster.propose_at(settle + milliseconds(1), 0, 9);
    cluster.world().run_until(RealTime::zero() + settle + milliseconds(120));

    std::uint32_t decided = 0;
    for (const auto& d : cluster.decisions()) {
      if (d.decision.decided() && d.decision.general.node == 0 &&
          d.real_at >= RealTime::zero() + settle) {
        EXPECT_EQ(d.decision.value, 9u);
        ++decided;
      }
    }
    EXPECT_EQ(decided, cluster.correct_count()) << "seed " << seed;
  }
}

TEST(StabilizationTest, NetworkChaosAloneRecovers) {
  // No state scramble — only a faulty network (drops/corruption/delays)
  // until ι0. Afterwards agreement works.
  for (std::uint64_t seed : {31u, 32u}) {
    Scenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.with_tail_faults(2);
    sc.chaos_period = milliseconds(30);
    sc.seed = seed;
    const Params params = sc.make_params();
    const Duration stable_at = sc.chaos_period + params.delta_stb();
    sc.with_proposal(stable_at + milliseconds(1), 0, 5);
    sc.run_for = stable_at + milliseconds(120);
    Cluster cluster(sc);
    cluster.run();
    const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                                cluster.correct_count(), params);
    EXPECT_EQ(m.validity_violations, 0u) << "seed " << seed;
    EXPECT_EQ(m.agreement_violations, 0u) << "seed " << seed;
  }
}

TEST(StabilizationTest, ConvergenceWellBeforeDeltaStbInPractice) {
  // ∆stb is a worst-case bound; measure actual convergence: the earliest
  // proposal (spaced ∆0 apart, rotating values) after ι0 that yields a
  // unanimous decision. Record it is ≤ ∆stb (and typically far less).
  std::uint32_t converged_runs = 0;
  for (std::uint64_t seed : {41u, 42u, 43u, 44u}) {
    Scenario sc = stabilization_scenario(seed);
    const Params params = sc.make_params();
    const Duration gap = params.delta_0() + 5 * params.d();
    const std::uint32_t rounds = 40;
    for (std::uint32_t i = 0; i < rounds; ++i) {
      sc.with_proposal(sc.chaos_period + milliseconds(1) + i * gap, 0,
                       1000 + Value(i));
    }
    sc.run_for = sc.chaos_period + rounds * gap + milliseconds(100);
    Cluster cluster(sc);
    cluster.run();

    const auto execs = cluster_executions(cluster.decisions(), cluster.params());
    for (const auto& e : execs) {
      if (e.general.node != 0) continue;
      if (e.decided_count() == cluster.correct_count() && e.agreement_holds() &&
          e.agreed_value().value_or(kBottom) >= 1000) {
        const Duration convergence =
            e.first_return() - (RealTime::zero() + sc.chaos_period);
        EXPECT_LE(convergence, params.delta_stb() + params.delta_agr());
        ++converged_runs;
        break;
      }
    }
  }
  EXPECT_EQ(converged_runs, 4u);
}

TEST(StabilizationTest, DeterministicReplay) {
  // The whole stabilization pipeline is a pure function of the seed.
  auto run = [](std::uint64_t seed) {
    Scenario sc = stabilization_scenario(seed);
    const Params params = sc.make_params();
    const Duration stable_at = sc.chaos_period + params.delta_stb();
    sc.with_proposal(stable_at + milliseconds(1), 0, 42);
    sc.run_for = stable_at + milliseconds(120);
    Cluster cluster(sc);
    cluster.run();
    std::vector<std::pair<NodeId, std::int64_t>> trace;
    for (const auto& d : cluster.decisions()) {
      trace.emplace_back(d.decision.node, d.real_at.ns());
    }
    return trace;
  };
  EXPECT_EQ(run(7), run(7));
}

}  // namespace
}  // namespace ssbft
