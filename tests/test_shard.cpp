// ShardWorld: the conservative-parallel engine must be indistinguishable
// from the serial World — bit-identical observable histories (run_digest),
// event/message counts, metrics, and latencies — for every StackKind and
// every shard count, on any scenario with a positive delay floor. The
// determinism rests on three shared mechanisms (per-entity RNG streams,
// content-based event keys, canonical per-node digests); this file pins all
// three plus the engine-selection degradations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/metrics.hpp"
#include "harness/sweep.hpp"
#include "sim/fault_injector.hpp"
#include "sim/duty_world.hpp"
#include "sim/shard_world.hpp"

namespace ssbft {
namespace {

/// Stack-shaped small scenario with a positive-minimum link delay: the
/// exponential tail of the World default, floored at δ/10 — a 100 µs
/// lookahead for the shard engine. Workload shaping mirrors test_sweep.
Scenario shard_scenario(StackKind stack, std::uint32_t shards) {
  Scenario sc;
  sc.stack = stack;
  sc.n = 8;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.shards = shards;
  sc.link_delay =
      DelayModel::exp_truncated(sc.delta / 10, sc.delta / 5, sc.delta);
  sc.adversary = stack == StackKind::kBaselineTps ? AdversaryKind::kSilent
                                                  : AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  const Params params = sc.make_params();
  switch (stack) {
    case StackKind::kAgree:
      sc.with_proposal(milliseconds(2), 0, 42);
      sc.with_proposal(milliseconds(40), 1, 43);
      sc.run_for = milliseconds(150);
      break;
    case StackKind::kBaselineTps:
      sc.with_proposal(milliseconds(1), 0, 7);
      sc.run_for = milliseconds(120);
      break;
    case StackKind::kReplicatedLog:
    case StackKind::kPipelinedLog:
      for (std::uint32_t c = 0; c < 3; ++c) {
        sc.with_proposal(Duration::zero(), NodeId(c), 100 + c);
      }
      sc.run_for = 6 * (params.delta_0() + params.delta_agr() + 10 * params.d());
      break;
    case StackKind::kPulse:
    case StackKind::kClockSync:
      // Self-clocking: long enough to stabilize and fire several pulses.
      sc.run_for =
          params.delta_stb() + 10 * 2 * (params.delta_0() + params.delta_agr());
      break;
  }
  return sc;
}

bool metrics_equal(const RunMetrics& a, const RunMetrics& b) {
  return a.executions == b.executions &&
         a.agreement_violations == b.agreement_violations &&
         a.validity_violations == b.validity_violations &&
         a.unanimous_decides == b.unanimous_decides &&
         a.max_decision_skew == b.max_decision_skew &&
         a.max_tau_g_skew == b.max_tau_g_skew;
}

/// Every scheduling policy the windowed engine offers. The whole parity
/// matrix runs under each one: the scheduler may only move work between
/// workers, never change what the work computes.
constexpr ShardSched kAllScheds[] = {ShardSched::kStatic, ShardSched::kBalance,
                                     ShardSched::kSteal, ShardSched::kLax};

// The acceptance matrix: all six StackKinds × shards ∈ {1, 2, 4} × every
// shard_sched policy, each sharded run bit-identical to its serial twin on
// the same Scenario + seed.
TEST(ShardDeterminism, EveryStackMatchesSerialAtEveryShardCountAndSched) {
  for (std::uint32_t k = 0; k < kStackKindCount; ++k) {
    const Scenario serial_sc = shard_scenario(StackKind(k), 0);
    const SweepRun serial = SweepRunner::run_cell(serial_sc, 21);
    for (std::uint32_t shards : {1u, 2u, 4u}) {
      for (const ShardSched sched : kAllScheds) {
        Scenario sc = shard_scenario(StackKind(k), shards);
        sc.shard_sched = sched;
        const SweepRun run = SweepRunner::run_cell(sc, 21);
        const auto label = [&] {
          return std::string(to_string(StackKind(k))) + " shards " +
                 std::to_string(shards) + " sched " + to_string(sched);
        };
        EXPECT_EQ(run.digest, serial.digest) << label();
        EXPECT_EQ(run.events, serial.events) << label();
        EXPECT_EQ(run.messages, serial.messages) << label();
        EXPECT_EQ(run.pass, serial.pass) << label();
        EXPECT_TRUE(metrics_equal(run.agreement, serial.agreement)) << label();
        EXPECT_EQ(run.latency_ns, serial.latency_ns) << label();
      }
    }
  }
}

// A transient scramble (state + clocks + forged in-flight messages) is a
// serial phase on both engines and must not break parity — under any
// scheduling policy.
TEST(ShardDeterminism, TransientScrambleMatchesSerial) {
  Scenario sc = shard_scenario(StackKind::kAgree, 0);
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = 16;
  const SweepRun serial = SweepRunner::run_cell(sc, 5);
  sc.shards = 4;
  for (const ShardSched sched : kAllScheds) {
    sc.shard_sched = sched;
    const SweepRun run = SweepRunner::run_cell(sc, 5);
    EXPECT_EQ(run.digest, serial.digest) << to_string(sched);
    EXPECT_EQ(run.events, serial.events) << to_string(sched);
    EXPECT_EQ(run.messages, serial.messages) << to_string(sched);
  }
}

// Piecewise runs (start + repeated run_for) cross serial phases and window
// phases repeatedly; the cut points must not be observable — under any
// scheduling policy.
TEST(ShardDeterminism, PiecewiseRunsMatchOneShot) {
  for (const ShardSched sched : kAllScheds) {
    Scenario sc = shard_scenario(StackKind::kAgree, 4);
    sc.seed = 9;
    sc.shard_sched = sched;
    const SweepRun one_shot = SweepRunner::run_cell(sc, 9);

    Cluster cluster(sc);
    ASSERT_TRUE(cluster.sharded());
    cluster.start();
    for (int step = 0; step < 10; ++step) {
      cluster.world().run_for(sc.run_for / 10);
    }
    const StackOutcome outcome = evaluate_stack(cluster);
    EXPECT_EQ(outcome.digest, one_shot.digest) << to_string(sched);
    EXPECT_EQ(cluster.world().dispatched(), one_shot.events)
        << to_string(sched);
  }
}

// SweepRunner cells may themselves be sharded: a sweep over sharded cells
// reduces to the same digests as the serial cells.
TEST(ShardDeterminism, ShardedSweepCellsMatchSerialCells) {
  SweepSpec spec;
  spec.scenarios = {shard_scenario(StackKind::kAgree, 2),
                    shard_scenario(StackKind::kReplicatedLog, 2)};
  spec.seeds_per_scenario = 2;
  spec.seed0 = 31;
  spec.threads = 2;
  const SweepReport report = SweepRunner(spec).run();
  ASSERT_EQ(report.runs.size(), 4u);
  for (const SweepRun& run : report.runs) {
    Scenario serial_sc = spec.scenarios[run.scenario_index];
    serial_sc.shards = 0;
    const SweepRun serial =
        SweepRunner::run_cell(serial_sc, run.seed, run.scenario_index);
    EXPECT_EQ(run.digest, serial.digest)
        << to_string(run.stack) << " seed " << run.seed;
  }
}

// --- chaos handoff: serial prefix → windowed suffix ------------------------
// A chaos window pins its OWN segment to the serial engine (unbounded chaos
// delays undercut any lookahead), but not the whole run: the DutyWorld
// migrates the complete in-flight state — chaos-delayed/duplicated
// deliveries, forged plants, armed timers at their original handle tickets,
// every RNG stream and key-channel counter — into the ShardWorld at the
// cut. These tests pin the one-shot [0, ι0) shape; test_duty extends them
// to recurring duty cycles. Acceptance criterion: chaos scenarios are
// bit-identical to all-serial for every StackKind × shard count.

/// shard_scenario plus a transient scramble and a 5 ms network-chaos
/// window — the paper's stabilization-measurement shape: arbitrary state,
/// arbitrary in-flight messages, chaotic network until ι0, then converge.
Scenario chaos_scenario(StackKind stack, std::uint32_t shards) {
  Scenario sc = shard_scenario(stack, shards);
  sc.chaos_period = milliseconds(5);
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = 16;
  return sc;
}

// The acceptance matrix extended to chaos: all six StackKinds × shards
// ∈ {1, 2, 4} × every shard_sched policy with chaos_period > 0, each
// two-phase run bit-identical to its all-serial twin.
TEST(ShardChaosHandoff, EveryStackMatchesSerialAtEveryShardCountAndSched) {
  for (std::uint32_t k = 0; k < kStackKindCount; ++k) {
    const Scenario serial_sc = chaos_scenario(StackKind(k), 0);
    const SweepRun serial = SweepRunner::run_cell(serial_sc, 21);
    for (std::uint32_t shards : {1u, 2u, 4u}) {
      for (const ShardSched sched : kAllScheds) {
        Scenario sc = chaos_scenario(StackKind(k), shards);
        sc.shard_sched = sched;
        const SweepRun run = SweepRunner::run_cell(sc, 21);
        const auto label = [&] {
          return std::string(to_string(StackKind(k))) + " shards " +
                 std::to_string(shards) + " sched " + to_string(sched);
        };
        EXPECT_EQ(run.digest, serial.digest) << label();
        EXPECT_EQ(run.events, serial.events) << label();
        EXPECT_EQ(run.messages, serial.messages) << label();
        EXPECT_EQ(run.pass, serial.pass) << label();
        EXPECT_TRUE(metrics_equal(run.agreement, serial.agreement)) << label();
        EXPECT_EQ(run.latency_ns, serial.latency_ns) << label();
      }
    }
  }
}

// Piecewise runs that cross the cut — including a step landing EXACTLY on
// the chaos end — must be indistinguishable from one shot: the migration
// instant is an engine-internal detail, not an observable.
TEST(ShardChaosHandoff, PiecewiseRunsCrossTheCutUnobserved) {
  Scenario sc = chaos_scenario(StackKind::kAgree, 4);
  sc.seed = 9;
  const SweepRun one_shot = SweepRunner::run_cell(sc, 9);

  Cluster cluster(sc);
  ASSERT_TRUE(cluster.sharded());
  cluster.start();
  // Step to just before, exactly onto, and past the cut, then drain.
  cluster.world().run_until(RealTime::zero() + sc.chaos_period -
                            microseconds(100));
  cluster.world().run_until(RealTime::zero() + sc.chaos_period);
  for (int step = 1; step <= 8; ++step) {
    cluster.world().run_until(RealTime::zero() + sc.chaos_period +
                              (sc.run_for - sc.chaos_period) * step / 8);
  }
  const StackOutcome outcome = evaluate_stack(cluster);
  EXPECT_EQ(outcome.digest, one_shot.digest);
  EXPECT_EQ(cluster.world().dispatched(), one_shot.events);
}

// Sharded FaultInjector parity: a SECOND transient fault injected after the
// handoff exercises inject_raw's forged-channel keys and the migrated
// world-RNG stream position on the suffix engine — serial and sharded must
// still agree bit-for-bit, whatever the scheduling policy.
TEST(ShardChaosHandoff, PostHandoffFaultInjectionMatchesSerial) {
  const auto run_with_midrun_fault = [](std::uint32_t shards,
                                        ShardSched sched) {
    Scenario sc = chaos_scenario(StackKind::kAgree, shards);
    sc.seed = 33;
    sc.shard_sched = sched;
    Cluster cluster(sc);
    cluster.start();
    cluster.world().run_until(RealTime::zero() + sc.chaos_period +
                              milliseconds(20));
    TransientFaultConfig second;
    second.spurious_per_node = 8;
    second.scramble_clocks = false;  // keep it an in-flight-state fault
    FaultInjector injector(cluster.world());
    injector.transient_fault(second);
    cluster.world().run_until(RealTime::zero() + sc.run_for);
    struct Out {
      std::uint64_t digest, events, forged;
    };
    return Out{evaluate_stack(cluster).digest, cluster.world().dispatched(),
               cluster.world().net_stats().forged};
  };
  const auto serial = run_with_midrun_fault(0, ShardSched::kStatic);
  for (std::uint32_t shards : {2u, 4u}) {
    for (const ShardSched sched : kAllScheds) {
      const auto sharded = run_with_midrun_fault(shards, sched);
      const auto label = [&] {
        return "shards " + std::to_string(shards) + " sched " +
               to_string(sched);
      };
      EXPECT_EQ(sharded.digest, serial.digest) << label();
      EXPECT_EQ(sharded.events, serial.events) << label();
      EXPECT_EQ(sharded.forged, serial.forged) << label();
    }
  }
}

// A chaos run whose horizon ends INSIDE the window never migrates — and a
// later run_until past the cut migrates then. Both legs must match serial.
TEST(ShardChaosHandoff, HorizonInsideChaosStaysSerialUntilTheCut) {
  Scenario sc = chaos_scenario(StackKind::kAgree, 4);
  sc.seed = 5;
  Cluster cluster(sc);
  cluster.start();
  auto* duty = dynamic_cast<DutyWorld*>(&cluster.world());
  ASSERT_NE(duty, nullptr);
  cluster.world().run_until(RealTime::zero() + milliseconds(2));
  EXPECT_FALSE(duty->sharded_active());
  EXPECT_EQ(duty->migrations(), 0u);
  cluster.world().run_until(RealTime::zero() + sc.run_for);
  EXPECT_TRUE(duty->sharded_active());
  EXPECT_EQ(duty->migrations(), 1u);

  Scenario serial_sc = chaos_scenario(StackKind::kAgree, 0);
  serial_sc.seed = 5;
  const SweepRun serial = SweepRunner::run_cell(serial_sc, 5);
  EXPECT_EQ(evaluate_stack(cluster).digest, serial.digest);
  EXPECT_EQ(cluster.world().dispatched(), serial.events);
}

// --- engine selection / degradation ---------------------------------------

TEST(ShardEngineTest, NoLookaheadDegradesToSerial) {
  WorldConfig wc;
  wc.n = 8;
  wc.shards = 4;
  // Default delay models: exponential tail with min = 0 ⇒ λ = 0.
  EXPECT_EQ(ShardWorld::effective_shards(wc), 1u);

  Scenario sc = shard_scenario(StackKind::kAgree, 4);
  sc.link_delay.reset();  // back to the floor-less default
  Cluster cluster(sc);
  EXPECT_FALSE(cluster.sharded());
  EXPECT_EQ(cluster.shards(), 1u);
}

// Schedule-aware selection: chaos + lookahead ⇒ the alternating engine (it
// IS sharded — the stabilization segments run windowed); chaos WITHOUT a
// lookahead still degrades all the way to serial (no shardable segment).
TEST(ShardEngineTest, ChaosSelectsTwoPhaseEngineWhenLookaheadExists) {
  Scenario sc = shard_scenario(StackKind::kAgree, 4);
  sc.chaos_period = milliseconds(5);
  Cluster cluster(sc);
  EXPECT_TRUE(cluster.sharded());
  auto* duty = dynamic_cast<DutyWorld*>(&cluster.world());
  ASSERT_NE(duty, nullptr);
  EXPECT_EQ(duty->next_cut(), RealTime::zero() + sc.chaos_period);
  EXPECT_FALSE(duty->sharded_active());

  Scenario no_lookahead = sc;
  no_lookahead.link_delay.reset();  // floor-less default ⇒ λ = 0
  Cluster serial_cluster(no_lookahead);
  EXPECT_FALSE(serial_cluster.sharded());
  EXPECT_EQ(dynamic_cast<DutyWorld*>(&serial_cluster.world()), nullptr);
}

// n not divisible by the shard count: the block boundaries floor(s·n/S)
// are uneven, and every node must still route to the shard that owns it
// (regression: an inexact shard_of() inverse mismapped node 2 of n=10,S=4).
TEST(ShardDeterminism, UnevenPartitionMatchesSerial) {
  for (const std::uint32_t n : {7u, 10u}) {
    Scenario sc = shard_scenario(StackKind::kAgree, 0);
    sc.n = n;
    sc.f = (n - 1) / 3;
    sc.byz_nodes.clear();
    sc.with_tail_faults(sc.f);
    const SweepRun serial = SweepRunner::run_cell(sc, 13);
    for (std::uint32_t shards : {3u, 4u}) {
      sc.shards = shards;
      const SweepRun run = SweepRunner::run_cell(sc, 13);
      EXPECT_EQ(run.digest, serial.digest) << "n " << n << " shards " << shards;
      EXPECT_EQ(run.events, serial.events) << "n " << n << " shards " << shards;
    }
  }
}

TEST(ShardEngineTest, ShardCountClampsToN) {
  WorldConfig wc;
  wc.n = 3;
  wc.shards = 64;
  wc.link_delay = DelayModel::uniform(microseconds(100), milliseconds(1));
  wc.proc_delay = DelayModel::uniform(Duration::zero(), microseconds(50));
  wc.has_delay_models = true;
  EXPECT_EQ(ShardWorld::effective_shards(wc), 3u);

  Scenario sc = shard_scenario(StackKind::kAgree, 4096);
  Cluster cluster(sc);
  EXPECT_EQ(cluster.shards(), sc.n);
}

// A directly-constructed one-shard ShardWorld (the documented λ-degrade
// form) must behave exactly like the serial World — in particular now()
// must track the dispatching queue's clock, or self-rescheduling timers
// compute stale fire/send times (regression: the single-shard fast path
// skipped the current-shard marker).
TEST(ShardEngineTest, SingleShardDirectConstructionMatchesSerial) {
  class Ticker final : public NodeBehavior {
   public:
    void on_start(NodeContext& ctx) override {
      ctx.set_timer_after(milliseconds(1), 1);
    }
    void on_message(NodeContext&, const WireMessage&) override {}
    void on_timer(NodeContext& ctx, std::uint64_t) override {
      ctx.send_all(WireMessage{});
      ctx.set_timer_after(milliseconds(1), 1);
    }
  };

  WorldConfig wc;
  wc.n = 4;
  wc.shards = 1;
  wc.link_delay = DelayModel::uniform(microseconds(100), milliseconds(1));
  wc.proc_delay = DelayModel::uniform(Duration::zero(), microseconds(50));
  wc.has_delay_models = true;

  World serial(wc);
  ShardWorld sharded(wc);
  ASSERT_EQ(sharded.shard_count(), 1u);
  for (NodeId id = 0; id < wc.n; ++id) {
    serial.set_behavior(id, std::make_unique<Ticker>());
    sharded.set_behavior(id, std::make_unique<Ticker>());
  }
  serial.start();
  sharded.start();
  const RealTime horizon = RealTime::zero() + milliseconds(20);
  serial.run_until(horizon);
  sharded.run_until(horizon);

  EXPECT_EQ(sharded.now(), serial.now());
  EXPECT_EQ(sharded.dispatched(), serial.dispatched());
  EXPECT_EQ(sharded.net_stats().sent, serial.net_stats().sent);
  EXPECT_EQ(sharded.net_stats().delivered, serial.net_stats().delivered);
  for (NodeId id = 0; id < wc.n; ++id) {
    EXPECT_EQ(sharded.local_now(id), serial.local_now(id)) << "node " << id;
  }
}

// --- adaptive scheduling pins ----------------------------------------------

/// Self-clocking behavior whose work rate is its timer period — the knob
/// that makes one node arbitrarily heavier than the rest.
class SkewedTicker final : public NodeBehavior {
 public:
  explicit SkewedTicker(Duration period) : period_(period) {}
  void on_start(NodeContext& ctx) override {
    ctx.set_timer_after(period_, 1);
  }
  void on_message(NodeContext&, const WireMessage&) override {}
  void on_timer(NodeContext& ctx, std::uint64_t) override {
    ctx.send(NodeId((ctx.id() + 1) % ctx.n()), WireMessage{});
    ctx.set_timer_after(period_, 1);
  }

 private:
  Duration period_;
};

// A grossly skewed load (node 0 ticks 25× faster than the rest) on the
// equal-width initial partition: the cost-aware policies must actually
// repartition, and — the whole point of the design — the answer must not
// move by a single event or nanosecond relative to the serial engine.
TEST(ShardSchedTest, SkewedLoadForcesRepartitionAndKeepsParity) {
  WorldConfig wc;
  wc.n = 8;
  wc.shards = 4;
  wc.link_delay = DelayModel::uniform(microseconds(100), milliseconds(1));
  wc.proc_delay = DelayModel::uniform(Duration::zero(), microseconds(50));
  wc.has_delay_models = true;
  const auto build = [&wc](WorldBase& w) {
    for (NodeId id = 0; id < wc.n; ++id) {
      w.set_behavior(id, std::make_unique<SkewedTicker>(
                             id == 0 ? microseconds(200) : milliseconds(5)));
    }
  };
  const RealTime horizon = RealTime::zero() + milliseconds(50);

  World serial(wc);
  build(serial);
  serial.start();
  serial.run_until(horizon);

  for (const ShardSched sched :
       {ShardSched::kBalance, ShardSched::kSteal, ShardSched::kLax}) {
    WorldConfig swc = wc;
    swc.shard_sched = sched;
    ShardWorld sharded(swc);
    ASSERT_EQ(sharded.shard_count(), 4u);
    ASSERT_EQ(sharded.sched(), sched);
    build(sharded);
    sharded.start();
    sharded.run_until(horizon);

    const auto label = [&] { return std::string("sched ") + to_string(sched); };
    EXPECT_EQ(sharded.now(), serial.now()) << label();
    EXPECT_EQ(sharded.dispatched(), serial.dispatched()) << label();
    EXPECT_EQ(sharded.net_stats().sent, serial.net_stats().sent) << label();
    EXPECT_EQ(sharded.net_stats().delivered, serial.net_stats().delivered)
        << label();
    for (NodeId id = 0; id < wc.n; ++id) {
      EXPECT_EQ(sharded.local_now(id), serial.local_now(id))
          << label() << " node " << id;
    }

    const ShardSchedStats& st = sharded.sched_stats();
    EXPECT_GT(st.windows, 0u) << label();
    EXPECT_LE(st.measured_windows, st.windows) << label();
    EXPECT_GE(st.imbalance_max, 1.0) << label();
    // The skew dwarfs the 1.25× hysteresis threshold — every cost-aware
    // policy must have rebalanced at least once over ~500 windows.
    EXPECT_GE(st.repartitions, 1u) << label();
    if (sched == ShardSched::kSteal) {
      // An idle worker next to a 25×-hot shard must have stolen something.
      EXPECT_GT(st.steals, 0u) << label();
      EXPECT_GT(st.stolen_events, 0u) << label();
      EXPECT_LE(st.stolen_events, sharded.dispatched()) << label();
    }
  }
}

// Steal-aware cost attribution: work stealing EQUALIZES the executor view
// of a skewed load — thieves run the hot nodes, so per-worker dispatch
// counts look balanced even when one shard owns all the work. Costs are
// therefore attributed to the OWNING shard (whose nodes generated the
// events) when feeding the repartition hysteresis; a steal-heavy run must
// still see the ownership imbalance and move the boundaries. Both hot
// nodes sit on shard 0's initial block, so steals can spread the execution
// almost perfectly — exactly the case where executor-view accounting used
// to starve the repartitioner.
TEST(ShardSchedTest, StealingDoesNotMaskOwnerImbalanceFromRepartitioner) {
  WorldConfig wc;
  wc.n = 8;
  wc.shards = 4;
  wc.link_delay = DelayModel::uniform(microseconds(100), milliseconds(1));
  wc.proc_delay = DelayModel::uniform(Duration::zero(), microseconds(50));
  wc.has_delay_models = true;
  const auto build = [&wc](WorldBase& w) {
    for (NodeId id = 0; id < wc.n; ++id) {
      // Nodes 0 and 1 — shard 0's whole initial block — carry ~25× the
      // load of everyone else.
      w.set_behavior(id, std::make_unique<SkewedTicker>(
                             id < 2 ? microseconds(200) : milliseconds(5)));
    }
  };
  const RealTime horizon = RealTime::zero() + milliseconds(50);

  World serial(wc);
  build(serial);
  serial.start();
  serial.run_until(horizon);

  WorldConfig swc = wc;
  swc.shard_sched = ShardSched::kSteal;
  ShardWorld sharded(swc);
  build(sharded);
  sharded.start();
  sharded.run_until(horizon);

  // Attribution changes accounting only — the physics stay bit-identical.
  EXPECT_EQ(sharded.now(), serial.now());
  EXPECT_EQ(sharded.dispatched(), serial.dispatched());
  EXPECT_EQ(sharded.net_stats().sent, serial.net_stats().sent);
  EXPECT_EQ(sharded.net_stats().delivered, serial.net_stats().delivered);
  for (NodeId id = 0; id < wc.n; ++id) {
    EXPECT_EQ(sharded.local_now(id), serial.local_now(id)) << "node " << id;
  }

  const ShardSchedStats& st = sharded.sched_stats();
  // Stealing happened at scale...
  EXPECT_GT(st.steals, 0u);
  EXPECT_GT(st.stolen_events, 0u);
  // ...yet the owner-attributed view still registered the skew (shard 0
  // owns ~25× the per-window events of an idle shard)...
  EXPECT_GE(st.owner_imbalance_max, 2.0);
  EXPECT_GT(st.owner_imbalance_mean(), 1.0);
  // ...and drove the repartitioner despite the balanced executor counts.
  EXPECT_GE(st.repartitions, 1u);
}

// The zero-overhead contract of the default policy: a static ShardWorld
// tracks no costs, never repartitions, never steals — the stats stay zero
// apart from the window counter.
TEST(ShardSchedTest, StaticPolicyKeepsSchedulerOff) {
  WorldConfig wc;
  wc.n = 8;
  wc.shards = 4;
  wc.link_delay = DelayModel::uniform(microseconds(100), milliseconds(1));
  wc.proc_delay = DelayModel::uniform(Duration::zero(), microseconds(50));
  wc.has_delay_models = true;
  ShardWorld sharded(wc);
  ASSERT_EQ(sharded.sched(), ShardSched::kStatic);
  for (NodeId id = 0; id < wc.n; ++id) {
    sharded.set_behavior(id, std::make_unique<SkewedTicker>(milliseconds(1)));
  }
  sharded.start();
  sharded.run_until(RealTime::zero() + milliseconds(10));
  const ShardSchedStats& st = sharded.sched_stats();
  EXPECT_GT(st.windows, 0u);
  EXPECT_EQ(st.repartitions, 0u);
  EXPECT_EQ(st.steals, 0u);
  EXPECT_EQ(st.stolen_events, 0u);
}

// --- per-entity stream regression pins -------------------------------------
// First draw of each canonical (seed, domain, node) stream. If any of these
// move, every seeded experiment in the repository silently re-randomizes —
// that must be a deliberate, reviewed change.

TEST(RngStreamTest, DerivationPins) {
  const struct {
    RngDomain domain;
    std::uint64_t seed;
    std::uint64_t node;
    std::uint64_t first_draw;
  } pins[] = {
      {RngDomain::kNodeBehavior, 1, 0, 0x95e8c95cb1098984ULL},
      {RngDomain::kNodeBehavior, 1, 1, 0x561e38dedc5c8e14ULL},
      {RngDomain::kNodeBehavior, 1, 7, 0x5c0431e998612942ULL},
      {RngDomain::kNodeClock, 1, 0, 0xe94e8f870b27c98dULL},
      {RngDomain::kNodeClock, 1, 1, 0x993eb90a452746b8ULL},
      {RngDomain::kNodeClock, 1, 7, 0x93b5ea194aab1499ULL},
      {RngDomain::kLinkDelay, 1, 0, 0xb7f7fd4ce72aea1cULL},
      {RngDomain::kLinkDelay, 1, 1, 0x08772cc891ab2380ULL},
      {RngDomain::kLinkDelay, 1, 7, 0x474476d2e2418dd4ULL},
      {RngDomain::kLinkDelay, 42, 3, 0x843c7275daa39536ULL},
  };
  for (const auto& pin : pins) {
    Rng rng = rng_stream(pin.seed, pin.domain, pin.node);
    EXPECT_EQ(rng.next_u64(), pin.first_draw)
        << "domain " << std::uint64_t(pin.domain) << " seed " << pin.seed
        << " node " << pin.node;
  }
}

TEST(RngStreamTest, StreamsAreIndependentOfDrawOrder) {
  // Pure function of (seed, domain, index): re-deriving after arbitrary
  // draws elsewhere yields the same stream.
  Rng a = derive_node_rng(123, 4);
  Rng other = derive_node_rng(123, 5);
  for (int i = 0; i < 17; ++i) (void)other.next_u64();
  Rng b = derive_node_rng(123, 4);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace ssbft
