// The tracer's contract: observe everything, perturb nothing.
//
// The hard invariant is digest parity — a traced run must produce the
// bit-identical observable history (run_digest over every probe stream plus
// the wire counters) of its untraced twin, on every engine (serial,
// windowed, alternating), every scheduling policy, every stack. A tracer
// that draws from an RNG, schedules an event, or changes an allocation
// pattern in a way the physics can see would break this matrix instantly.
// On top of parity this file pins the mechanics: ring-buffer overwrite
// semantics, deterministic merge order, writer normalization (orphan ends
// dropped, open spans auto-closed, output sorted), golden-trace structure
// on a pinned seed, and the stats registry's self-describing document.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"
#include "harness/stats_registry.hpp"
#include "harness/sweep.hpp"
#include "harness/trace.hpp"
#include "sim/shard_world.hpp"

namespace ssbft {
namespace {

// --- mechanics -------------------------------------------------------------

TraceRecord record_at(std::int64_t when_ns, TraceName name, TraceKind kind,
                      std::uint32_t lane = 0, std::uint64_t id = 0,
                      std::int64_t arg = 0) {
  return TraceRecord{when_ns, id, arg, lane, name, kind,
                     TraceLayer::kEngine};
}

TEST(TraceBufferTest, OverwritesOldestAndCountsDrops) {
  TraceBuffer buffer(4);
  for (std::int64_t i = 0; i < 6; ++i) {
    buffer.push(record_at(i, TraceName::kSteal, TraceKind::kInstant));
  }
  EXPECT_EQ(buffer.pushed(), 6u);
  EXPECT_EQ(buffer.dropped(), 2u);
  std::vector<TraceRecord> out;
  buffer.append_to(out);
  ASSERT_EQ(out.size(), 4u);
  // Oldest two (0, 1) were overwritten; survivors come out oldest-first.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].when_ns, std::int64_t(i) + 2);
  }
}

TEST(TracerTest, MergesKeyedBuffersBeforeThreadBuffersStably) {
  Tracer tracer(64);
  // Two records at the SAME timestamp from different buffers: the keyed
  // buffer (key order) must precede the thread buffer after the stable
  // sort, making the merged order engine-deterministic.
  tracer.keyed_buffer(1)->push(
      record_at(10, TraceName::kWindow, TraceKind::kSpanBegin, 1));
  tracer.keyed_buffer(0)->push(
      record_at(10, TraceName::kRepartition, TraceKind::kInstant, 0));
  tracer.emit(record_at(10, TraceName::kSteal, TraceKind::kInstant, 2));
  tracer.emit(record_at(5, TraceName::kLaxPublish, TraceKind::kInstant, 2));

  const std::vector<TraceRecord> merged = tracer.merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].name, TraceName::kLaxPublish);  // earliest timestamp
  EXPECT_EQ(merged[1].name, TraceName::kRepartition);  // keyed, key 0
  EXPECT_EQ(merged[2].name, TraceName::kWindow);       // keyed, key 1
  EXPECT_EQ(merged[3].name, TraceName::kSteal);        // thread buffer last
  EXPECT_EQ(tracer.recorded(), 4u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, ThreadBuffersAreIndependentPerThread) {
  Tracer tracer(64);
  tracer.emit(record_at(1, TraceName::kSteal, TraceKind::kInstant));
  std::thread other([&] {
    tracer.emit(record_at(2, TraceName::kSteal, TraceKind::kInstant));
    tracer.emit(record_at(3, TraceName::kSteal, TraceKind::kInstant));
  });
  other.join();
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(tracer.merged().size(), 3u);
}

TEST(TraceScopeTest, UnarmedEmissionIsANoOpAndScopesRestore) {
#if !SSBFT_TRACING
  GTEST_SKIP() << "emission sites compiled out (SSBFT_TRACING=0)";
#endif
  // Emission with no armed scope must be safe (the untraced default).
  trace::instant(TraceLayer::kEngine, TraceName::kSteal, 0);

  Tracer tracer(64);
  const RealTime now = RealTime::zero() + milliseconds(1);
  {
    const trace::Scope outer(&tracer, &now);
    trace::instant(TraceLayer::kEngine, TraceName::kSteal, 0);
    {
      const trace::Scope inner(nullptr, nullptr);  // null tracer: no-op arm
      trace::instant(TraceLayer::kEngine, TraceName::kSteal, 0);
    }
    trace::instant(TraceLayer::kEngine, TraceName::kSteal, 0);
  }
  trace::instant(TraceLayer::kEngine, TraceName::kSteal, 0);  // disarmed
  EXPECT_EQ(tracer.recorded(), 3u);
  for (const TraceRecord& r : tracer.merged()) {
    EXPECT_EQ(r.when_ns, milliseconds(1).ns());
  }
}

TEST(TraceWriterTest, DropsOrphanEndsAndClosesOpenSpans) {
  std::vector<TraceRecord> records;
  // Orphan sync end (no begin), an open sync span, an open async span, and
  // records deliberately out of timestamp order.
  records.push_back(record_at(5, TraceName::kWindow, TraceKind::kSpanEnd, 0));
  records.push_back(
      record_at(20, TraceName::kWindow, TraceKind::kSpanBegin, 0));
  records.push_back(
      record_at(10, TraceName::kAgreeRound, TraceKind::kAsyncBegin, 1, 7));
  const std::string json = TraceWriter::to_json(std::move(records));

  // Perfetto shape with balanced spans: one B + one E (auto-closed), one
  // b + one e (auto-closed), and no unmatched end from the orphan.
  const auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(count("\"ph\":\"B\""), 1u);
  EXPECT_EQ(count("\"ph\":\"E\""), 1u);
  EXPECT_EQ(count("\"ph\":\"b\""), 1u);
  EXPECT_EQ(count("\"ph\":\"e\""), 1u);
}

// --- digest parity: tracing on vs off --------------------------------------

/// A compact scenario exercising the full emission surface: Byzantine
/// noise, transient scramble, optionally a recurring chaos duty cycle
/// (⇒ the alternating engine when shards > 1). Horizons are deliberately
/// short — parity is about the history being identical, not complete.
Scenario trace_scenario(StackKind stack, std::uint32_t shards, bool chaos,
                        ShardSched sched) {
  Scenario sc;
  sc.stack = stack;
  sc.n = 5;
  sc.f = 1;
  sc.with_tail_faults(1);
  sc.shards = shards;
  sc.shard_sched = sched;
  sc.link_delay =
      DelayModel::exp_truncated(sc.delta / 10, sc.delta / 5, sc.delta);
  sc.adversary = stack == StackKind::kBaselineTps ? AdversaryKind::kSilent
                                                  : AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = 8;
  if (chaos) {
    sc.chaos_period = milliseconds(2);
    sc.chaos_duty = milliseconds(20);
    sc.chaos_count = 2;
  }
  const Params params = sc.make_params();
  switch (stack) {
    case StackKind::kAgree:
      sc.with_proposal(milliseconds(3), 0, 42);
      sc.with_proposal(milliseconds(25), 1, 43);
      sc.run_for = milliseconds(60);
      break;
    case StackKind::kBaselineTps:
      sc.with_proposal(milliseconds(4), 0, 7);
      sc.run_for = milliseconds(50);
      break;
    case StackKind::kReplicatedLog:
    case StackKind::kPipelinedLog:
      sc.with_proposal(milliseconds(3), 0, 100);
      sc.with_proposal(milliseconds(3), 1, 101);
      sc.run_for =
          2 * (params.delta_0() + params.delta_agr() + 10 * params.d());
      break;
    case StackKind::kPulse:
    case StackKind::kClockSync:
      // A fraction of the stabilization bound: plenty of protocol traffic
      // to digest, no need to reach a complete pulse for parity.
      sc.run_for = params.delta_stb() / 3;
      break;
  }
  return sc;
}

std::uint64_t digest_of(const Scenario& sc, bool traced) {
  Scenario run = sc;
  run.trace = traced;
  Cluster cluster(run);
  cluster.run();
  if (traced) {
    // The traced run must actually have traced something (anti-vacuity:
    // a disarmed tracer would pass parity trivially). With the emission
    // sites compiled out the tracer still exists but records nothing.
    EXPECT_NE(cluster.tracer(), nullptr);
#if SSBFT_TRACING
    EXPECT_GT(cluster.tracer()->recorded(), 0u)
        << to_string(sc.stack) << " shards " << sc.shards;
#endif
  } else {
    EXPECT_EQ(cluster.tracer(), nullptr);
  }
  return run_digest(cluster.probe(), cluster.world().net_stats());
}

// Engine sweep: every stack on the serial, windowed, and alternating
// engines — tracing on is bit-identical to tracing off.
TEST(TraceParityTest, EveryStackOnEveryEngine) {
  struct EngineCfg {
    std::uint32_t shards;
    bool chaos;
    ShardSched sched;
    const char* label;
  };
  const EngineCfg engines[] = {
      {0, false, ShardSched::kStatic, "serial"},
      {2, false, ShardSched::kBalance, "sharded2/balance"},
      {4, false, ShardSched::kSteal, "sharded4/steal"},
      {2, true, ShardSched::kLax, "duty2/lax"},
      {4, true, ShardSched::kStatic, "duty4/static"},
  };
  for (std::uint32_t k = 0; k < kStackKindCount; ++k) {
    for (const EngineCfg& e : engines) {
      const Scenario sc =
          trace_scenario(StackKind(k), e.shards, e.chaos, e.sched);
      const std::uint64_t off = digest_of(sc, false);
      const std::uint64_t on = digest_of(sc, true);
      EXPECT_EQ(on, off) << to_string(StackKind(k)) << " on " << e.label;
    }
  }
}

// Policy sweep: the agreement stack across every scheduling policy and
// shard count, windowed and alternating — the policies move records
// between trace buffers (stealing changes which thread emits), never the
// physics.
TEST(TraceParityTest, EverySchedPolicyAndShardCount) {
  constexpr ShardSched kScheds[] = {ShardSched::kStatic, ShardSched::kBalance,
                                    ShardSched::kSteal, ShardSched::kLax};
  for (const bool chaos : {false, true}) {
    for (const std::uint32_t shards : {1u, 2u, 4u}) {
      for (const ShardSched sched : kScheds) {
        const Scenario sc =
            trace_scenario(StackKind::kAgree, shards, chaos, sched);
        EXPECT_EQ(digest_of(sc, true), digest_of(sc, false))
            << (chaos ? "duty" : "sharded") << " shards " << shards
            << " sched " << to_string(sched);
      }
    }
  }
}

// --- golden trace ----------------------------------------------------------

// Pinned-seed serial agreement run: the merged timeline must be sorted,
// span-balanced after normalization, and must contain the protocol records
// the run demonstrably produced — and an identical rerun must produce the
// bit-identical record sequence.
TEST(TraceGoldenTest, SerialAgreeTimelineIsStructuredAndReproducible) {
#if !SSBFT_TRACING
  GTEST_SKIP() << "emission sites compiled out (SSBFT_TRACING=0)";
#endif
  Scenario sc = trace_scenario(StackKind::kAgree, 0, false, ShardSched::kStatic);
  sc.seed = 7;
  sc.trace = true;

  const auto run_traced = [&sc] {
    Cluster cluster(sc);
    cluster.run();
    struct Out {
      std::vector<TraceRecord> records;
      std::size_t decisions;
    };
    return Out{cluster.tracer()->merged(), cluster.probe().decisions().size()};
  };
  const auto first = run_traced();
  ASSERT_FALSE(first.records.empty());

  // Monotone timestamps after the merge.
  for (std::size_t i = 1; i < first.records.size(); ++i) {
    EXPECT_GE(first.records[i].when_ns, first.records[i - 1].when_ns)
        << "record " << i;
  }

  // The protocol layer mirrors the probe streams exactly: one kDecision
  // instant per recorded decision, one kInject per scheduled proposal.
  // Round spans need not balance in the RAW record stream — scramble-era
  // rounds can open without returning on this horizon; normalizing that is
  // the writer's job (pinned above) — but at least one complete round must
  // exist, and ends can never outnumber a round's begins by more than the
  // recovery returns a scrambled node emits before its first accept.
  std::map<TraceName, std::size_t> counts;
  for (const TraceRecord& r : first.records) ++counts[r.name];
  EXPECT_EQ(counts[TraceName::kDecision], first.decisions);
  EXPECT_EQ(counts[TraceName::kInject], 2u);
  EXPECT_GT(counts[TraceName::kAgreeRound], 0u);
  EXPECT_GT(counts[TraceName::kQuorumProgress], 0u);

  // Bit-identical rerun: same seed ⇒ same record sequence, field for field.
  const auto second = run_traced();
  ASSERT_EQ(second.records.size(), first.records.size());
  for (std::size_t i = 0; i < first.records.size(); ++i) {
    const TraceRecord& a = first.records[i];
    const TraceRecord& b = second.records[i];
    EXPECT_EQ(a.when_ns, b.when_ns) << "record " << i;
    EXPECT_EQ(a.name, b.name) << "record " << i;
    EXPECT_EQ(a.kind, b.kind) << "record " << i;
    EXPECT_EQ(a.lane, b.lane) << "record " << i;
    EXPECT_EQ(a.id, b.id) << "record " << i;
    EXPECT_EQ(a.arg, b.arg) << "record " << i;
  }
}

// A sharded traced run must emit the engine layer: window spans on the
// windows lane and per-window counters, and the writer's artifact must be
// well-formed Perfetto JSON (the ctest-side trace_check.py pins the same
// invariants against the CLI artifact).
TEST(TraceGoldenTest, ShardedRunEmitsEngineLayer) {
#if !SSBFT_TRACING
  GTEST_SKIP() << "emission sites compiled out (SSBFT_TRACING=0)";
#endif
  Scenario sc = trace_scenario(StackKind::kAgree, 4, false, ShardSched::kBalance);
  sc.trace = true;
  Cluster cluster(sc);
  cluster.run();
  ASSERT_NE(cluster.tracer(), nullptr);

  std::size_t window_begins = 0, window_ends = 0, counters = 0;
  for (const TraceRecord& r : cluster.tracer()->merged()) {
    if (r.name == TraceName::kWindow) {
      EXPECT_EQ(r.lane, kLaneWindows);
      EXPECT_EQ(r.layer, TraceLayer::kEngine);
      window_begins += r.kind == TraceKind::kSpanBegin;
      window_ends += r.kind == TraceKind::kSpanEnd;
    }
    if (r.name == TraceName::kWindowEvents ||
        r.name == TraceName::kOwnerImbalance) {
      EXPECT_EQ(r.kind, TraceKind::kCounter);
      ++counters;
    }
  }
  EXPECT_GT(window_begins, 0u);
  EXPECT_EQ(window_begins, window_ends);
  EXPECT_GT(counters, 0u);

  const std::string json =
      TraceWriter::to_json(cluster.tracer()->merged(),
                           cluster.tracer()->dropped());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"window\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
}

// --- stats registry ---------------------------------------------------------

TEST(StatsRegistryTest, CollectsEngineNetworkSchedAndTracerStats) {
  Scenario sc = trace_scenario(StackKind::kAgree, 4, false, ShardSched::kSteal);
  sc.trace = true;
  Cluster cluster(sc);
  cluster.run();

  const StatsRegistry stats = collect_run_stats(cluster);
  const auto value = [&](const char* path) {
    const StatsEntry* entry = stats.find(path);
    EXPECT_NE(entry, nullptr) << path;
    return entry == nullptr ? -1.0 : entry->value;
  };
  EXPECT_GT(value("run.dispatched"), 0.0);
  EXPECT_GT(value("net.sent"), 0.0);
  EXPECT_GT(value("sched.windows"), 0.0);
  EXPECT_GE(value("sched.owner_imbalance_max"), 0.0);
#if SSBFT_TRACING
  EXPECT_GT(value("trace.recorded"), 0.0);
#else
  EXPECT_GE(value("trace.recorded"), 0.0);  // sites compiled out ⇒ zero
#endif
  EXPECT_EQ(value("run.dispatched"), double(cluster.world().dispatched()));

  const std::string json = stats.to_json();
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"sched.windows\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"help\""), std::string::npos);
}

TEST(StatsRegistryTest, ExportsPeakGaugesAndTopologyCounters) {
  // Serial engine: the queue/wheel capacity gauges only exist there.
  Scenario sc =
      trace_scenario(StackKind::kAgree, 1, false, ShardSched::kStatic);
  sc.payload_bytes = 256;  // above Payload::kInlineCapacity ⇒ pooled
  Cluster cluster(sc);
  cluster.run();
  const StatsRegistry stats = collect_run_stats(cluster);
  const auto value = [&](const char* path) {
    const StatsEntry* entry = stats.find(path);
    EXPECT_NE(entry, nullptr) << path;
    return entry == nullptr ? -1.0 : entry->value;
  };
  EXPECT_GT(value("queue.peak_bytes"), 0.0);
  EXPECT_GT(value("wheel.peak_records"), 0.0);
  EXPECT_GE(value("wheel.peak_records"), value("wheel.live"));
  // The pool is process-wide, so the peak is ≥ this run's pooled bodies.
  EXPECT_GT(value("net.pool_peak_bytes"), 0.0);
  // Flat topology: overlay counters exist and stay zero.
  EXPECT_EQ(value("net.topology_hops"), 0.0);
  EXPECT_EQ(value("net.fanout_msgs"), 0.0);
}

TEST(StatsRegistryTest, FindMissesReturnNull) {
  StatsRegistry stats;
  stats.add("a.b", 1.0, "count", "help");
  EXPECT_NE(stats.find("a.b"), nullptr);
  EXPECT_EQ(stats.find("a.c"), nullptr);
}

}  // namespace
}  // namespace ssbft
