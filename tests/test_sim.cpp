// Unit tests: simulation substrate (event queue, clocks, network, world).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "sim/delay_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_injector.hpp"
#include "sim/network.hpp"
#include "sim/tap.hpp"
#include "sim/world.hpp"

namespace ssbft {
namespace {

// Heap-allocation counter for the zero-allocation regression test below.
// Replacing the global operator new in a test binary is the standard way to
// observe the allocator without tooling; only the delta across a bracketed
// region is asserted.
std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace
}  // namespace ssbft

// GCC flags free() inside a replaced operator delete as a mismatched pair;
// malloc/free is exactly what a replacement is allowed (and expected) to do.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ssbft::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow forms must be replaced too: std::stable_sort's temporary
// buffer allocates through operator new(size, nothrow) — leaving it to the
// runtime while replacing operator delete splits an allocation across two
// allocators (AddressSanitizer flags the pair as alloc-dealloc-mismatch).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ssbft::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace ssbft {
namespace {

// ---------------------------------------------------------- event queue --

TEST(EventQueueTest, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(RealTime{30}, [&] { order.push_back(3); });
  q.schedule(RealTime{10}, [&] { order.push_back(1); });
  q.schedule(RealTime{20}, [&] { order.push_back(2); });
  q.run_until(RealTime{100});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.dispatched(), 3u);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(RealTime{5}, [&order, i] { order.push_back(i); });
  }
  q.run_until(RealTime{5});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(RealTime{1}, [&] {
    ++fired;
    q.schedule(RealTime{2}, [&] { ++fired; });
  });
  q.run_until(RealTime{10});
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), RealTime{10});
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule(RealTime{5}, [&] { ++fired; });
  q.schedule(RealTime{15}, [&] { ++fired; });
  q.run_until(RealTime{10});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), RealTime{10});
  q.run_until(RealTime{20});
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueDeathTest, SchedulingInThePastAborts) {
  EventQueue q;
  q.schedule(RealTime{10}, [] {});
  q.run_until(RealTime{10});
  EXPECT_DEATH(q.schedule(RealTime{5}, [] {}), "precondition");
}

// Regression (slab refactor): dispatch order and dispatched() count must be
// exactly what the (when, seq) contract promises under a randomized load,
// including interleaved pops and re-schedules that recycle slab slots.
TEST(EventQueueTest, RandomizedLoadMatchesReferenceOrder) {
  Rng rng(99);
  EventQueue q;
  struct Expected {
    std::int64_t when;
    std::uint64_t seq;
  };
  std::vector<Expected> expected;
  std::vector<std::uint64_t> dispatched_seq;
  std::uint64_t seq = 0;
  std::int64_t floor_ns = 0;

  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 100; ++i) {
      const std::int64_t when = floor_ns + rng.next_in(0, 500);
      const std::uint64_t id = seq++;
      expected.push_back({when, id});
      q.schedule(RealTime{when}, [&dispatched_seq, id] {
        dispatched_seq.push_back(id);
      });
    }
    // Drain roughly half each round so slots recycle while events remain.
    const std::int64_t deadline = floor_ns + 250;
    q.run_until(RealTime{deadline});
    floor_ns = deadline;
  }
  q.run_until(RealTime{floor_ns + 1000});

  ASSERT_TRUE(q.empty());
  EXPECT_EQ(q.dispatched(), expected.size());
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expected& a, const Expected& b) {
                     if (a.when != b.when) return a.when < b.when;
                     return a.seq < b.seq;
                   });
  ASSERT_EQ(dispatched_seq.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(dispatched_seq[i], expected[i].seq) << "position " << i;
  }
}

// The pop path must move the stored callable, never copy it (the seed
// implementation copied the Entry out of priority_queue::top()).
TEST(EventQueueTest, PopPathMovesTheCallable) {
  struct Counting {
    int* copies;
    int* runs;
    Counting(int* c, int* r) : copies(c), runs(r) {}
    Counting(const Counting& o) : copies(o.copies), runs(o.runs) {
      ++*copies;
    }
    Counting(Counting&& o) noexcept : copies(o.copies), runs(o.runs) {}
    void operator()() const { ++*runs; }
  };
  int copies = 0, runs = 0;
  EventQueue q;
  q.schedule(RealTime{1}, Counting{&copies, &runs});
  q.run_one();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(copies, 0);
}

// Move-only closures are now first-class (std::function required copyable).
TEST(EventQueueTest, MoveOnlyCallablesAreSupported) {
  EventQueue q;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  q.schedule(RealTime{1}, [p = std::move(payload), &seen] { seen = *p + 1; });
  q.run_until(RealTime{2});
  EXPECT_EQ(seen, 42);
}

// Closures above kInlineCapacity are boxed transparently.
TEST(EventQueueTest, OversizedClosuresStillDispatchInOrder) {
  EventQueue q;
  std::vector<int> order;
  struct Big {
    std::byte padding[200];
  };
  Big big{};
  q.schedule(RealTime{20}, [&order, big] { (void)big; order.push_back(2); });
  q.schedule(RealTime{10}, [&order] { order.push_back(1); });
  q.run_until(RealTime{30});
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Slab growth must never byte-relocate a live closure (slots live in
// address-stable chunks): an SSO std::string capture is self-referential
// and would dangle if the slab were a flat reallocating vector.
TEST(EventQueueTest, SlabGrowthPreservesNonTriviallyRelocatableClosures) {
  EventQueue q;
  std::string got;
  const std::string payload = "sso";  // internal pointer into the object
  q.schedule(RealTime{1'000'000}, [payload, &got] { got = payload; });
  int late = 0;
  for (int i = 0; i < 5000; ++i) {
    // Grow the slab by dozens of chunks while the string closure is live.
    q.schedule(RealTime{i}, [&late] { ++late; });
  }
  q.run_until(RealTime{2'000'000});
  EXPECT_EQ(got, "sso");
  EXPECT_EQ(late, 5000);
}

// Pending events are destroyed (not leaked, not run) with the queue.
TEST(EventQueueTest, PendingEventsAreDestroyedNotRun) {
  auto tracker = std::make_shared<int>(7);
  std::weak_ptr<int> weak = tracker;
  bool ran = false;
  {
    EventQueue q;
    q.schedule(RealTime{5}, [t = std::move(tracker), &ran] {
      ran = true;
      (void)t;
    });
  }
  EXPECT_FALSE(ran);
  EXPECT_TRUE(weak.expired());
}

// The tentpole claim: once the slab and heap cover the in-flight
// population, scheduling + dispatching inline closures allocates nothing.
TEST(EventQueueTest, SteadyStateDispatchAllocatesNothing) {
  EventQueue q;
  std::uint64_t fired = 0;
  struct Chain {
    EventQueue* q;
    std::uint64_t* fired;
    void operator()() const {
      ++*fired;
      if (*fired < 20'000) q->schedule(q->now() + Duration{10}, *this);
    }
  };
  for (int i = 0; i < 64; ++i) q.schedule(RealTime{i}, Chain{&q, &fired});
  // Warm up: grow slab/heap capacity to the steady in-flight population.
  while (!q.empty() && fired < 1'000) q.run_one();

  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  while (!q.empty() && fired < 19'000) q.run_one();
  const std::uint64_t allocs_after =
      g_alloc_count.load(std::memory_order_relaxed);

  EXPECT_EQ(allocs_after, allocs_before);
  // Drain: the last in-flight generation fires without rescheduling.
  while (!q.empty()) q.run_one();
  EXPECT_GE(fired, 20'000u);
  EXPECT_LT(fired, 20'064u);
}

// ---------------------------------------------------------------- clock --

TEST(ClockTest, IdentityClock) {
  DriftingClock c{1.0, Duration::zero()};
  EXPECT_EQ(c.local_at(RealTime{12345}).ns(), 12345);
  EXPECT_EQ(c.real_at(LocalTime{12345}).ns(), 12345);
}

TEST(ClockTest, OffsetApplies) {
  DriftingClock c{1.0, milliseconds(5)};
  EXPECT_EQ(c.local_at(RealTime::zero()), LocalTime{milliseconds(5).ns()});
}

TEST(ClockTest, RateScales) {
  DriftingClock c{2.0, Duration::zero()};
  EXPECT_EQ(c.local_at(RealTime{1000}).ns(), 2000);
}

TEST(ClockTest, RoundTripWithinOneTick) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double rate = 1.0 + (rng.next_double() - 0.5) * 2e-4;
    DriftingClock c{rate, Duration{rng.next_in(-1'000'000, 1'000'000)}};
    const LocalTime tau{rng.next_in(0, 1'000'000'000)};
    const RealTime t = c.real_at(tau);
    // real_at returns the earliest real time with reading >= tau.
    EXPECT_GE(c.local_at(t), tau);
    EXPECT_LT(c.local_at(t) - tau, Duration{3});
  }
}

TEST(ClockTest, DriftBoundHolds) {
  const double rho = 1e-4;
  DriftingClock c{1.0 + rho, milliseconds(3)};
  const Duration real_iv = seconds(1);
  const Duration local_iv =
      c.local_at(RealTime::zero() + real_iv) - c.local_at(RealTime::zero());
  EXPECT_LE(double(local_iv.ns()), (1 + rho) * double(real_iv.ns()) + 1);
  EXPECT_GE(double(local_iv.ns()), (1 - rho) * double(real_iv.ns()) - 1);
}

// ---------------------------------------------------------- delay model --

TEST(DelayModelTest, ConstantAlwaysTypical) {
  Rng rng(1);
  const auto m = DelayModel::constant(microseconds(70));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(m.sample(rng), microseconds(70));
}

TEST(DelayModelTest, UniformWithinBounds) {
  Rng rng(2);
  const auto m = DelayModel::uniform(microseconds(10), microseconds(90));
  for (int i = 0; i < 1000; ++i) {
    const auto v = m.sample(rng);
    EXPECT_GE(v, microseconds(10));
    EXPECT_LE(v, microseconds(90));
  }
}

TEST(DelayModelTest, ExpTruncatedWithinBounds) {
  Rng rng(3);
  const auto m = DelayModel::exp_truncated(microseconds(20), microseconds(100));
  for (int i = 0; i < 1000; ++i) {
    const auto v = m.sample(rng);
    EXPECT_GE(v, Duration::zero());
    EXPECT_LE(v, microseconds(100));
  }
}

TEST(DelayModelTest, ExpTruncatedLowerBoundRespected) {
  Rng rng(4);
  const auto m = DelayModel::exp_truncated(microseconds(30), microseconds(50),
                                           microseconds(200));
  EXPECT_EQ(m.min, microseconds(30));
  for (int i = 0; i < 2000; ++i) {
    const auto v = m.sample(rng);
    EXPECT_GE(v, microseconds(30));
    EXPECT_LE(v, microseconds(200));
  }
}

TEST(DelayModelTest, ExpTruncatedLowerBoundKeepsOverallMean) {
  Rng rng(5);
  const auto m = DelayModel::exp_truncated(microseconds(100), microseconds(150),
                                           milliseconds(5));
  double sum = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) sum += double(m.sample(rng).ns());
  // Overall mean ≈ min + residual mean (truncation shaves a little off the
  // tail; cap = 100× the residual mean makes that negligible here).
  const double mean_us = sum / samples * 1e-3;
  EXPECT_GT(mean_us, 140.0);
  EXPECT_LT(mean_us, 160.0);
}

TEST(DelayModelTest, ExpTruncatedDegenerateFloorIsConstant) {
  Rng rng(6);
  const auto m = DelayModel::exp_truncated(microseconds(40), microseconds(40),
                                           microseconds(40));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(m.sample(rng), microseconds(40));
}

TEST(DelayModelDeathTest, ExpTruncatedValidatesMinMeanCap) {
  // min ≤ mean ≤ cap, violated on either side.
  EXPECT_DEATH((void)DelayModel::exp_truncated(
                   microseconds(50), microseconds(40), microseconds(100)),
               "precondition");
  EXPECT_DEATH((void)DelayModel::exp_truncated(
                   microseconds(10), microseconds(200), microseconds(100)),
               "precondition");
}

// -------------------------------------------------------------- network --

class RecordingBehavior : public NodeBehavior {
 public:
  void on_message(NodeContext&, const WireMessage& msg) override {
    received.push_back(msg);
  }
  std::vector<WireMessage> received;
};

WorldConfig small_world_config(std::uint32_t n, std::uint64_t seed = 1) {
  WorldConfig wc;
  wc.n = n;
  wc.delta = milliseconds(1);
  wc.pi = microseconds(50);
  wc.seed = seed;
  return wc;
}

TEST(NetworkTest, DeliversWithinBound) {
  World world(small_world_config(3));
  auto* receiver = new RecordingBehavior();
  world.set_behavior(1, std::unique_ptr<NodeBehavior>(receiver));
  world.start();

  WireMessage msg;
  msg.kind = MsgKind::kSupport;
  msg.value = 7;
  world.network().send(0, 1, msg);
  world.run_for(world.config().delta + world.config().pi);

  ASSERT_EQ(receiver->received.size(), 1u);
  EXPECT_EQ(receiver->received[0].value, 7u);
  EXPECT_EQ(receiver->received[0].sender, 0u);  // authenticated
}

TEST(NetworkTest, SenderIdentityIsAuthenticated) {
  World world(small_world_config(3));
  auto* receiver = new RecordingBehavior();
  world.set_behavior(2, std::unique_ptr<NodeBehavior>(receiver));
  world.start();

  WireMessage msg;
  msg.sender = 1;  // lie about the origin
  world.network().send(0, 2, msg);
  world.run_for(milliseconds(2));
  ASSERT_EQ(receiver->received.size(), 1u);
  EXPECT_EQ(receiver->received[0].sender, 0u);  // overwritten with truth
}

TEST(NetworkTest, SendAllReachesEveryNodeIncludingSelf) {
  World world(small_world_config(4));
  std::vector<RecordingBehavior*> receivers;
  for (NodeId i = 0; i < 4; ++i) {
    auto* r = new RecordingBehavior();
    receivers.push_back(r);
    world.set_behavior(i, std::unique_ptr<NodeBehavior>(r));
  }
  world.start();
  world.network().send_all(2, WireMessage{});
  world.run_for(milliseconds(2));
  for (auto* r : receivers) EXPECT_EQ(r->received.size(), 1u);
}

// Pins the contract the shared-payload fast path documents: a non-faulty
// send_all is BIT-IDENTICAL to n unicast sends — same wire history (kinds,
// times, endpoints, payloads), same stats, same rng consumption. Any edit
// that de-synchronizes the two code paths' bookkeeping fails here.
TEST(NetworkTest, SendAllIsBitIdenticalToUnicastFanOut) {
  struct Broadcaster : NodeBehavior {
    bool use_send_all;
    explicit Broadcaster(bool s) : use_send_all(s) {}
    void on_start(NodeContext& ctx) override {
      WireMessage msg;
      msg.kind = MsgKind::kSupport;
      msg.value = 5;
      if (use_send_all) {
        ctx.send_all(msg);
      } else {
        for (NodeId dest = 0; dest < ctx.n(); ++dest) ctx.send(dest, msg);
      }
    }
    void on_message(NodeContext&, const WireMessage&) override {}
  };

  const auto trace = [](bool use_send_all) {
    World world(small_world_config(5, 1234));
    TraceRecorder recorder;
    world.network().set_tap(recorder.tap());
    world.set_behavior(0, std::make_unique<Broadcaster>(use_send_all));
    world.start();
    world.run_for(milliseconds(3));
    std::vector<std::string> lines;
    for (const auto& event : recorder.events()) {
      lines.push_back(to_string(event));
    }
    return lines;
  };

  EXPECT_EQ(trace(true), trace(false));
}

TEST(NetworkTest, SendAllSharesOnePayloadAndRecyclesIt) {
  World world(small_world_config(5));
  std::vector<RecordingBehavior*> receivers;
  for (NodeId i = 0; i < 5; ++i) {
    auto* r = new RecordingBehavior();
    receivers.push_back(r);
    world.set_behavior(i, std::unique_ptr<NodeBehavior>(r));
  }
  world.start();

  // A body past Payload::kInlineCapacity, so it lives in the shared pool;
  // broadcast fan-out must share the ONE slot by refcount, not copy bytes.
  WireMessage msg;
  msg.kind = MsgKind::kApprove;
  msg.value = 9;
  msg.payload = make_patterned_payload(Payload::kInlineCapacity + 33, 9);
  const std::uint64_t copied_before = payload_pool().bytes_copied();
  world.network().send_all(1, msg);
  EXPECT_EQ(world.network().live_payloads(), 1u);  // one slot for all 5
  EXPECT_EQ(world.network().stats().sent, 5u);
  // Fan-out + per-delivery closures bumped refcounts only: zero new byte
  // copies after the original acquire.
  EXPECT_EQ(payload_pool().bytes_copied(), copied_before);

  world.run_for(milliseconds(2));
  // Receivers recorded their copies, which still pin the ONE shared slot.
  EXPECT_EQ(world.network().live_payloads(), 1u);
  for (auto* r : receivers) {
    ASSERT_EQ(r->received.size(), 1u);
    EXPECT_EQ(r->received[0].value, 9u);
    EXPECT_EQ(r->received[0].sender, 1u);  // authenticated on the shared copy
    EXPECT_EQ(r->received[0].payload,
              make_patterned_payload(Payload::kInlineCapacity + 33, 9));
  }
  EXPECT_EQ(world.network().stats().delivered, 5u);
  EXPECT_EQ(world.network().stats().payload_bytes,
            5u * (Payload::kInlineCapacity + 33));
  // Dropping every reference recycles the slot.
  msg.payload = Payload{};
  for (auto* r : receivers) r->received.clear();
  EXPECT_EQ(world.network().live_payloads(), 0u);

  // A second broadcast reuses the recycled pool slot rather than growing
  // the pool.
  msg.payload = make_patterned_payload(Payload::kInlineCapacity + 33, 10);
  world.network().send_all(0, msg);
  EXPECT_EQ(world.network().live_payloads(), 1u);
  msg.payload = Payload{};
  world.run_for(milliseconds(2));
  for (auto* r : receivers) r->received.clear();
  EXPECT_EQ(world.network().live_payloads(), 0u);
}

TEST(NetworkTest, InjectRawCanForgeSenders) {
  World world(small_world_config(3));
  auto* receiver = new RecordingBehavior();
  world.set_behavior(0, std::unique_ptr<NodeBehavior>(receiver));
  world.start();

  WireMessage msg;
  msg.sender = 2;  // forged — allowed only through the fault injector path
  world.network().inject_raw(0, msg, microseconds(10));
  world.run_for(milliseconds(1));
  ASSERT_EQ(receiver->received.size(), 1u);
  EXPECT_EQ(receiver->received[0].sender, 2u);
  EXPECT_EQ(world.network().stats().forged, 1u);
}

TEST(NetworkTest, ChaosPeriodCanDropMessages) {
  auto wc = small_world_config(2, 99);
  wc.chaos.drop_prob = 1.0;
  wc.chaos.duplicate_prob = 0.0;
  wc.chaos.corrupt_prob = 0.0;
  World world(wc);
  auto* receiver = new RecordingBehavior();
  world.set_behavior(1, std::unique_ptr<NodeBehavior>(receiver));
  world.start();
  world.network().set_faulty_until(RealTime::zero() + milliseconds(10));

  world.network().send(0, 1, WireMessage{});
  world.run_for(milliseconds(5));
  EXPECT_TRUE(receiver->received.empty());
  EXPECT_EQ(world.network().stats().dropped, 1u);

  // After the chaos period, delivery resumes.
  world.run_for(milliseconds(6));  // now past faulty_until
  world.network().send(0, 1, WireMessage{});
  world.run_for(milliseconds(10));
  EXPECT_EQ(receiver->received.size(), 1u);
}

// A zero-width link-delay model used to degenerate the chaos delay cap to
// zero (link max × 20 = 0 ⇒ rng.next_in(0, 0) in the chaos path —
// instantaneous "chaos"). The constructor now clamps the cap to a positive
// floor; chaotic traffic still flows under the degenerate model.
TEST(NetworkTest, DegenerateChaosDelayCapClampsToPositiveFloor) {
  auto wc = small_world_config(2, 7);
  wc.link_delay = DelayModel::constant(Duration::zero());
  wc.proc_delay = DelayModel::constant(Duration::zero());
  wc.has_delay_models = true;
  wc.chaos.drop_prob = 0.0;
  wc.chaos.corrupt_prob = 0.0;
  wc.chaos.duplicate_prob = 0.0;
  World world(wc);
  EXPECT_GE(world.network().chaos_max_delay(), chaos_delay_floor());

  auto* receiver = new RecordingBehavior();
  world.set_behavior(1, std::unique_ptr<NodeBehavior>(receiver));
  world.start();
  world.network().set_faulty_until(RealTime::zero() + milliseconds(1));
  world.network().send(0, 1, WireMessage{});
  world.run_for(milliseconds(2));
  EXPECT_EQ(receiver->received.size(), 1u);  // chaos path sampled validly
}

// An explicitly configured sub-floor cap is clamped too; a configured cap
// at or above the floor is taken as-is.
TEST(NetworkTest, ConfiguredChaosDelayCapRespectsFloor) {
  auto wc = small_world_config(2, 7);
  wc.chaos.max_delay = Duration{1};  // 1 ns: positive but below the floor
  World clamped(wc);
  EXPECT_EQ(clamped.network().chaos_max_delay(), chaos_delay_floor());

  wc.chaos.max_delay = milliseconds(3);
  World configured(wc);
  EXPECT_EQ(configured.network().chaos_max_delay(), milliseconds(3));
}

// Forged deliveries ride the reserved kForgedCreator channel: at equal
// real-times they dispatch after node-creator events but before key-less
// world-channel events, by CONTENT — not by insertion order. Scheduling the
// world action first must not let it dispatch first.
TEST(NetworkTest, InjectRawUsesForgedChannelKeys) {
  World world(small_world_config(3, 11));
  auto* receiver = new RecordingBehavior();
  world.set_behavior(0, std::unique_ptr<NodeBehavior>(receiver));
  world.start();

  std::size_t delivered_before_action = 0;
  const Duration at = microseconds(50);
  // Key-less world event scheduled BEFORE the forged plant, same instant:
  // insertion order says the action goes first, the content-based channels
  // say the forged delivery does (kForgedCreator < kGlobalCreator).
  world.schedule(RealTime::zero() + at, 0, [&] {
    delivered_before_action = receiver->received.size();
  });
  WireMessage msg;
  msg.sender = 2;
  world.inject_raw(0, msg, at);
  world.run_for(milliseconds(1));

  ASSERT_EQ(receiver->received.size(), 1u);
  EXPECT_EQ(delivered_before_action, 1u);  // forged delivery dispatched first
}

// The handoff-export registry must be an invisible observer: identical
// traffic, stats, and delivery order with it on or off — and it must hold
// exactly the in-flight set at any instant.
TEST(NetworkTest, HandoffExportTracksInFlightDeliveries) {
  auto wc = small_world_config(3, 13);
  World world(wc);
  world.enable_handoff_export();
  auto* receiver = new RecordingBehavior();
  world.set_behavior(1, std::unique_ptr<NodeBehavior>(receiver));
  world.start();
  world.network().set_faulty_until(RealTime::zero() + milliseconds(5));

  WireMessage msg;
  msg.value = 41;
  world.network().send(0, 1, msg);
  world.inject_raw(1, msg, milliseconds(2));
  const auto pending = world.network().pending_deliveries();
  // Everything scheduled (chaos delivery unless dropped, plus the plant)
  // is in flight right now.
  const auto& stats = world.network().stats();
  const std::uint64_t expected =
      (stats.sent - stats.dropped) + stats.duplicated + stats.forged;
  EXPECT_EQ(pending.size(), expected);
  EXPECT_TRUE(std::any_of(pending.begin(), pending.end(),
                          [](const Network::PendingDelivery& p) {
                            return p.forged;
                          }));

  world.run_for(milliseconds(30));  // beyond any chaos delay
  EXPECT_TRUE(world.network().pending_deliveries().empty());
}

// A migration export is terminal and one-shot: the exporting engine's
// queue, wheel, and delivery side-slab have been MOVED into the snapshot.
// A second export, or any further dispatch/scheduling/traffic, would fork
// the run against stale state — the guards turn that into an immediate
// precondition abort instead of a silent divergence.
class NetworkExportGuardTest : public ::testing::Test {
 protected:
  static std::unique_ptr<World> exported_world() {
    auto world = std::make_unique<World>(small_world_config(3, 7));
    world->enable_handoff_export();
    world->set_behavior(0, std::make_unique<RecordingBehavior>());
    world->set_behavior(1, std::make_unique<RecordingBehavior>());
    world->start();
    world->run_before(RealTime::zero() + milliseconds(2));
    (void)world->export_migration();
    return world;
  }
};

TEST_F(NetworkExportGuardTest, SecondExportAborts) {
  auto world = exported_world();
  EXPECT_DEATH((void)world->export_migration(), "precondition");
}

TEST_F(NetworkExportGuardTest, DispatchAfterExportAborts) {
  auto world = exported_world();
  EXPECT_DEATH(world->run_until(RealTime::zero() + milliseconds(3)),
               "precondition");
}

TEST_F(NetworkExportGuardTest, ScheduleAfterExportAborts) {
  auto world = exported_world();
  EXPECT_DEATH(world->schedule(RealTime::zero() + milliseconds(3), 0, [] {}),
               "precondition");
}

TEST_F(NetworkExportGuardTest, SideSlabRefusesTrafficAfterExport) {
  auto world = exported_world();
  // The handoff side-slab itself guards: tracking a new delivery against
  // an already-exported registry is the stale-export bug.
  WireMessage msg;
  EXPECT_DEATH(world->network().send(0, 1, msg), "precondition");
}

TEST(NetworkTest, StatsCountPerKind) {
  World world(small_world_config(2));
  world.set_behavior(0, std::make_unique<RecordingBehavior>());
  world.set_behavior(1, std::make_unique<RecordingBehavior>());
  world.start();
  WireMessage msg;
  msg.kind = MsgKind::kApprove;
  world.network().send(0, 1, msg);
  world.network().send(0, 1, msg);
  EXPECT_EQ(world.network().stats().per_kind[std::size_t(MsgKind::kApprove)],
            2u);
  EXPECT_EQ(world.network().stats().sent, 2u);
}

// ---------------------------------------------------------------- world --

class TimerBehavior : public NodeBehavior {
 public:
  void on_start(NodeContext& ctx) override {
    ctx.set_timer_after(milliseconds(3), 42);
  }
  void on_message(NodeContext&, const WireMessage&) override {}
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override {
    fired_cookie = cookie;
    fired_at = ctx.local_now();
  }
  std::uint64_t fired_cookie = 0;
  LocalTime fired_at{};
};

TEST(WorldTest, LocalTimersFireAtLocalTime) {
  World world(small_world_config(2, 31));
  auto* behavior = new TimerBehavior();
  world.set_behavior(0, std::unique_ptr<NodeBehavior>(behavior));
  const LocalTime start = world.local_now(0);
  world.start();
  world.run_for(milliseconds(5));
  EXPECT_EQ(behavior->fired_cookie, 42u);
  const Duration elapsed = behavior->fired_at - start;
  EXPECT_GE(elapsed, milliseconds(3));
  EXPECT_LT(elapsed, milliseconds(3) + microseconds(10));
}

TEST(WorldTest, ClockOffsetsAreArbitraryButQueryable) {
  World world(small_world_config(5, 77));
  // local_now differs across nodes (offsets up to max_clock_offset).
  bool any_diff = false;
  for (NodeId i = 1; i < 5; ++i) {
    if (world.local_now(i) != world.local_now(0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
  // real_at inverts local_at.
  for (NodeId i = 0; i < 5; ++i) {
    const LocalTime tau = world.local_now(i) + milliseconds(7);
    const RealTime t = world.real_at(i, tau);
    EXPECT_GE(world.clock(i).local_at(t), tau);
  }
}

TEST(WorldTest, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    World world(small_world_config(4, seed));
    auto* r = new RecordingBehavior();
    world.set_behavior(3, std::unique_ptr<NodeBehavior>(r));
    world.start();
    for (int i = 0; i < 20; ++i) {
      WireMessage msg;
      msg.value = Value(i);
      world.network().send(0, 3, msg);
    }
    world.run_for(milliseconds(10));
    std::vector<Value> values;
    for (const auto& m : r->received) values.push_back(m.value);
    return values;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(WorldTest, BehaviorReplacementTakesEffect) {
  World world(small_world_config(2));
  auto* first = new RecordingBehavior();
  world.set_behavior(1, std::unique_ptr<NodeBehavior>(first));
  world.start();
  world.network().send(0, 1, WireMessage{});
  world.run_for(milliseconds(2));
  EXPECT_EQ(first->received.size(), 1u);

  auto* second = new RecordingBehavior();
  world.set_behavior(1, std::unique_ptr<NodeBehavior>(second));
  world.network().send(0, 1, WireMessage{});
  world.run_for(milliseconds(2));
  EXPECT_EQ(second->received.size(), 1u);
}

// ------------------------------------------------------- fault injector --

TEST(FaultInjectorTest, PlantsSpuriousMessages) {
  World world(small_world_config(3, 13));
  std::vector<RecordingBehavior*> receivers;
  for (NodeId i = 0; i < 3; ++i) {
    auto* r = new RecordingBehavior();
    receivers.push_back(r);
    world.set_behavior(i, std::unique_ptr<NodeBehavior>(r));
  }
  world.start();

  FaultInjector injector(world);
  TransientFaultConfig config;
  config.spurious_per_node = 10;
  config.scramble_state = false;
  config.scramble_clocks = false;
  injector.transient_fault(config);
  world.run_for(config.spurious_span + milliseconds(1));

  for (auto* r : receivers) EXPECT_EQ(r->received.size(), 10u);
  EXPECT_EQ(world.network().stats().forged, 30u);
}

TEST(FaultInjectorTest, ScramblesClocks) {
  World world(small_world_config(4, 17));
  std::vector<LocalTime> before;
  for (NodeId i = 0; i < 4; ++i) before.push_back(world.local_now(i));

  FaultInjector injector(world);
  TransientFaultConfig config;
  config.spurious_per_node = 0;
  config.scramble_state = false;
  config.scramble_clocks = true;
  injector.transient_fault(config);

  bool changed = false;
  for (NodeId i = 0; i < 4; ++i) {
    if (world.local_now(i) != before[i]) changed = true;
  }
  EXPECT_TRUE(changed);
}

}  // namespace
}  // namespace ssbft
