// A manually-driven NodeContext for white-box unit tests: the test controls
// local time exactly and captures every send, so window boundaries (the 2d
// / 3d / 4d / 5d tests of Fig. 2) can be probed to the nanosecond without a
// network in the way.
#pragma once

#include <vector>

#include "sim/node.hpp"

namespace ssbft {

class MockContext final : public NodeContext {
 public:
  explicit MockContext(NodeId id, std::uint32_t n, std::uint64_t seed = 1)
      : id_(id), n_(n), rng_(seed) {}

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] std::uint32_t n() const override { return n_; }
  [[nodiscard]] LocalTime local_now() const override { return now_; }

  void send(NodeId dest, WireMessage msg) override {
    msg.sender = id_;
    sent.push_back({dest, msg});
  }
  void send_all(WireMessage msg) override {
    msg.sender = id_;
    for (NodeId dest = 0; dest < n_; ++dest) sent.push_back({dest, msg});
  }
  TimerHandle set_timer(LocalTime when, std::uint64_t cookie) override {
    timers.push_back({when, cookie});
    return TimerHandle{std::uint32_t(timers.size() - 1), 1};
  }
  TimerHandle set_timer_after(Duration delay, std::uint64_t cookie) override {
    timers.push_back({now_ + delay, cookie});
    return TimerHandle{std::uint32_t(timers.size() - 1), 1};
  }
  bool cancel_timer(TimerHandle handle) override {
    if (!handle.valid() || handle.index >= timers.size()) return false;
    cancelled.push_back(handle);
    return true;
  }
  Rng& rng() override { return rng_; }
  Logger& log() override { return logger_; }

  // --- test controls -------------------------------------------------------
  void advance(Duration d) { now_ += d; }
  void set_now(LocalTime t) { now_ = t; }

  /// Count of sends of `kind` (to any destination) since the last clear.
  [[nodiscard]] std::size_t sends_of(MsgKind kind) const {
    std::size_t count = 0;
    for (const auto& [dest, msg] : sent) {
      if (msg.kind == kind) ++count;
    }
    return count;
  }
  /// Distinct-broadcast count: sends_of / n (send_all fans out n copies).
  [[nodiscard]] std::size_t broadcasts_of(MsgKind kind) const {
    return sends_of(kind) / n_;
  }
  void clear_sent() { sent.clear(); }

  struct SentRecord {
    NodeId dest;
    WireMessage msg;
  };
  struct TimerRecord {
    LocalTime when;
    std::uint64_t cookie;
  };
  std::vector<SentRecord> sent;
  std::vector<TimerRecord> timers;
  std::vector<TimerHandle> cancelled;

 private:
  NodeId id_;
  std::uint32_t n_;
  LocalTime now_{1'000'000'000};  // arbitrary non-zero start
  Rng rng_;
  Logger logger_{LogLevel::kOff};
};

}  // namespace ssbft
