// SweepRunner: parallel grid execution must be indistinguishable from
// serial execution — every (Scenario, seed) cell is a pure function of the
// cell, whatever thread runs it. The determinism matrix drives all six
// StackKinds through serial-twice + 4-thread-sweep and asserts bit-identical
// observable histories (decisions, pulse times, adjustments, commits,
// deliveries, network stats) via the run digest plus field-level metrics.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <vector>

#include "harness/sweep.hpp"

namespace ssbft {
namespace {

/// Stack-shaped small scenario (n=4, tail fault, active noise except for
/// the synchrony-assuming baseline) — the same shaping test_stacks uses.
Scenario sweep_scenario(StackKind stack) {
  Scenario sc;
  sc.stack = stack;
  sc.n = 4;
  sc.f = 1;
  sc.with_tail_faults(1);
  sc.adversary = stack == StackKind::kBaselineTps ? AdversaryKind::kSilent
                                                  : AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  const Params params = sc.make_params();
  switch (stack) {
    case StackKind::kAgree:
      sc.with_proposal(milliseconds(2), 0, 42);
      sc.run_for = milliseconds(150);
      break;
    case StackKind::kBaselineTps:
      sc.with_proposal(milliseconds(1), 0, 7);
      sc.run_for = milliseconds(120);
      break;
    case StackKind::kReplicatedLog:
    case StackKind::kPipelinedLog:
      for (std::uint32_t c = 0; c < 3; ++c) {
        sc.with_proposal(Duration::zero(), NodeId(c), 100 + c);
      }
      sc.run_for = 6 * (params.delta_0() + params.delta_agr() + 10 * params.d());
      break;
    case StackKind::kPulse:
    case StackKind::kClockSync:
      // Self-clocking: long enough to stabilize and fire several pulses.
      sc.run_for =
          params.delta_stb() + 10 * 2 * (params.delta_0() + params.delta_agr());
      break;
  }
  return sc;
}

bool metrics_equal(const RunMetrics& a, const RunMetrics& b) {
  return a.executions == b.executions &&
         a.agreement_violations == b.agreement_violations &&
         a.validity_violations == b.validity_violations &&
         a.unanimous_decides == b.unanimous_decides &&
         a.max_decision_skew == b.max_decision_skew &&
         a.max_tau_g_skew == b.max_tau_g_skew;
}

TEST(SweepDeterminism, SerialRunsAreReproducible) {
  for (std::uint32_t k = 0; k < kStackKindCount; ++k) {
    const Scenario sc = sweep_scenario(StackKind(k));
    const SweepRun first = SweepRunner::run_cell(sc, 21);
    const SweepRun second = SweepRunner::run_cell(sc, 21);
    EXPECT_EQ(first.digest, second.digest) << to_string(StackKind(k));
    EXPECT_EQ(first.events, second.events) << to_string(StackKind(k));
    EXPECT_EQ(first.messages, second.messages) << to_string(StackKind(k));
    EXPECT_TRUE(metrics_equal(first.agreement, second.agreement))
        << to_string(StackKind(k));
    EXPECT_EQ(first.latency_ns, second.latency_ns) << to_string(StackKind(k));
  }
}

TEST(SweepDeterminism, FourThreadSweepMatchesSerialForEveryStack) {
  SweepSpec spec;
  for (std::uint32_t k = 0; k < kStackKindCount; ++k) {
    spec.scenarios.push_back(sweep_scenario(StackKind(k)));
  }
  spec.seeds_per_scenario = 2;
  spec.seed0 = 7;
  spec.threads = 4;
  const SweepReport report = SweepRunner(spec).run();
  ASSERT_EQ(report.runs.size(), std::size_t(2 * kStackKindCount));

  for (const SweepRun& run : report.runs) {
    const SweepRun serial =
        SweepRunner::run_cell(spec.scenarios[run.scenario_index], run.seed,
                              run.scenario_index);
    const char* stack = to_string(run.stack);
    EXPECT_EQ(run.digest, serial.digest) << stack << " seed " << run.seed;
    EXPECT_EQ(run.events, serial.events) << stack;
    EXPECT_EQ(run.messages, serial.messages) << stack;
    EXPECT_EQ(run.pass, serial.pass) << stack;
    EXPECT_TRUE(metrics_equal(run.agreement, serial.agreement)) << stack;
    EXPECT_EQ(run.latency_ns, serial.latency_ns) << stack;
  }
  // The small healthy matrix must pass outright — a red cell here means a
  // stack regressed, not that the sweep machinery failed.
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.passed, 2 * kStackKindCount);
}

TEST(SweepReportTest, GridOrderAndAggregates) {
  SweepSpec spec;
  spec.scenarios = {sweep_scenario(StackKind::kAgree),
                    sweep_scenario(StackKind::kBaselineTps)};
  spec.seeds_per_scenario = 3;
  spec.seed0 = 100;
  spec.threads = 2;
  const SweepReport report = SweepRunner(spec).run();

  ASSERT_EQ(report.runs.size(), 6u);
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    EXPECT_EQ(report.runs[i].scenario_index, i / 3);
    EXPECT_EQ(report.runs[i].seed, 100 + i % 3);
  }
  EXPECT_EQ(report.passed + report.failed, 6u);
  EXPECT_GT(report.events, 0u);
  EXPECT_GT(report.messages, 0u);
  EXPECT_GT(report.events_per_sec, 0.0);
  EXPECT_GT(report.scenarios_per_sec, 0.0);

  std::size_t latencies = 0;
  for (const auto& run : report.runs) latencies += run.latency_ns.size();
  EXPECT_EQ(report.latency.size(), latencies);
  EXPECT_GT(latencies, 0u);
}

TEST(SweepReportTest, PerRunHookSeesLiveCluster) {
  SweepSpec spec;
  spec.scenarios = {sweep_scenario(StackKind::kAgree)};
  spec.seeds_per_scenario = 4;
  spec.threads = 4;
  std::mutex mu;
  std::set<std::uint64_t> seeds;
  std::size_t decisions = 0;
  spec.per_run = [&](const SweepRun& run, Cluster& cluster) {
    const std::lock_guard<std::mutex> lock(mu);
    seeds.insert(run.seed);
    decisions += cluster.decisions().size();
  };
  const SweepReport report = SweepRunner(spec).run();
  EXPECT_EQ(seeds.size(), 4u);
  EXPECT_GT(decisions, 0u);
  EXPECT_EQ(report.runs.size(), 4u);
}

TEST(SweepSchedulingTest, LongestJobFirstPickupGridOrderResults) {
  // Heterogeneous grid: a big slow scenario listed LAST must be picked up
  // first, while results stay in grid order with digests unchanged.
  Scenario small = sweep_scenario(StackKind::kAgree);
  Scenario big = small;
  big.n = 10;
  big.f = 3;
  big.byz_nodes.clear();
  big.with_tail_faults(3);
  big.run_for = 4 * small.run_for;

  SweepSpec spec;
  spec.scenarios = {small, big};
  spec.seeds_per_scenario = 2;
  spec.seed0 = 11;

  const auto order = SweepRunner::schedule_order(spec);
  ASSERT_EQ(order.size(), 4u);
  // big's cells (2, 3) first, in stable grid order; then small's (0, 1).
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 1u);

  spec.threads = 2;
  const SweepReport report = SweepRunner(spec).run();
  ASSERT_EQ(report.runs.size(), 4u);
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    EXPECT_EQ(report.runs[i].scenario_index, i / 2);  // grid order kept
    EXPECT_EQ(report.runs[i].seed, 11 + i % 2);
    const SweepRun serial = SweepRunner::run_cell(
        spec.scenarios[i / 2], report.runs[i].seed, i / 2);
    EXPECT_EQ(report.runs[i].digest, serial.digest);
  }
}

TEST(SweepGridTest, ExpandRespectsResilienceBound) {
  SweepGrid grid;
  grid.base = sweep_scenario(StackKind::kAgree);
  grid.ns = {4, 7, 10};
  grid.fs = {1, 2, 3};
  grid.adversaries = {AdversaryKind::kSilent, AdversaryKind::kNoise};
  const auto scenarios = grid.expand();

  for (const Scenario& sc : scenarios) {
    EXPECT_GT(sc.n, 3 * sc.f);
    EXPECT_EQ(sc.byz_nodes.size(), sc.f);  // tail faults re-derived per cell
  }
  // n=4 admits only f=1; n=7 admits f∈{1,2}; n=10 admits f∈{1,2,3};
  // each × 2 adversaries.
  EXPECT_EQ(scenarios.size(), std::size_t((1 + 2 + 3) * 2));
}

TEST(SweepGridTest, EmptyAxesFallBackToBase) {
  SweepGrid grid;
  grid.base = sweep_scenario(StackKind::kAgree);
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].n, grid.base.n);
  EXPECT_EQ(scenarios[0].adversary, grid.base.adversary);
}

}  // namespace
}  // namespace ssbft
