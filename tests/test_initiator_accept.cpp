// Behavioral tests: the Initiator-Accept primitive against its paper
// properties IA-1 (Correctness), IA-2 (Unforgeability), IA-4 (Uniqueness),
// plus the Block-K pacing rules. The primitive runs in isolation: each node
// hosts only an InitiatorAccept instance.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "adversary/adversaries.hpp"
#include "core/initiator_accept.hpp"
#include "core/params.hpp"
#include "sim/world.hpp"

namespace ssbft {
namespace {

struct IaEvent {
  NodeId node;
  Value value;
  LocalTime tau_g;
  RealTime real_at;
  RealTime tau_g_real;
};

/// Minimal host: routes primitive traffic into an InitiatorAccept and lets
/// the test initiate as General.
class IaHost : public NodeBehavior {
 public:
  IaHost(const Params& params, GeneralId general, World* world,
         std::vector<IaEvent>* events)
      : world_(world), events_(events) {
    ia_ = std::make_unique<InitiatorAccept>(
        params, general, [this](Value m, LocalTime tau_g) {
          events_->push_back(IaEvent{ctx_->id(), m, tau_g, world_->now(),
                                     world_->real_at(ctx_->id(), tau_g)});
        });
  }

  void on_start(NodeContext& ctx) override { ctx_ = &ctx; }

  void on_message(NodeContext& ctx, const WireMessage& msg) override {
    switch (msg.kind) {
      case MsgKind::kInitiator:
        // Only the authenticated General may trigger Block K.
        if (msg.sender == msg.general.node) ia_->invoke(ctx, msg.value);
        break;
      case MsgKind::kSupport:
      case MsgKind::kApprove:
      case MsgKind::kReady:
        ia_->on_message(ctx, msg);
        break;
      default:
        break;
    }
  }

  /// General role (Q0): disseminate (Initiator, self, m).
  void initiate(Value m) {
    WireMessage msg;
    msg.kind = MsgKind::kInitiator;
    msg.general = GeneralId{ctx_->id()};
    msg.value = m;
    ctx_->send_all(msg);
  }

  InitiatorAccept& ia() { return *ia_; }

  /// Deliver a message directly, bypassing the network (cleanup probes).
  void on_message_for_test(const WireMessage& msg) { on_message(*ctx_, msg); }

 private:
  World* world_;
  std::vector<IaEvent>* events_;
  std::unique_ptr<InitiatorAccept> ia_;
  NodeContext* ctx_ = nullptr;
};

class InitiatorAcceptTest : public ::testing::Test {
 protected:
  void build(std::uint32_t n, std::uint32_t f, std::uint64_t seed,
             std::uint32_t byz_count = 0,
             std::unique_ptr<NodeBehavior> (*byz_factory)(std::uint32_t) = nullptr) {
    WorldConfig wc;
    wc.n = n;
    wc.seed = seed;
    world_ = std::make_unique<World>(wc);
    params_ = std::make_unique<Params>(n, f, wc.d_bound());
    hosts_.assign(n, nullptr);
    for (NodeId i = 0; i < n; ++i) {
      if (i >= n - byz_count && byz_factory) {
        world_->set_behavior(i, byz_factory(i));
        continue;
      }
      auto host = std::make_unique<IaHost>(*params_, GeneralId{0},
                                           world_.get(), &events_);
      hosts_[i] = host.get();
      world_->set_behavior(i, std::move(host));
    }
    world_->start();
  }

  Duration d() const { return params_->d(); }

  /// Initiate from node `g` at real offset `at`.
  void initiate_at(Duration at, NodeId g, Value m) {
    world_->queue().schedule(RealTime::zero() + at, [this, g, m] {
      if (hosts_[g]) hosts_[g]->initiate(m);
    });
  }

  std::unique_ptr<World> world_;
  std::unique_ptr<Params> params_;
  std::vector<IaHost*> hosts_;
  std::vector<IaEvent> events_;
};

// --- IA-1: Correctness --------------------------------------------------

TEST_F(InitiatorAcceptTest, CorrectGeneralAllAcceptSameValue) {
  build(7, 2, 11);
  initiate_at(milliseconds(2), 0, 5);
  world_->run_for(milliseconds(40));
  ASSERT_EQ(events_.size(), 7u);  // IA-1A: everyone I-accepts
  for (const auto& e : events_) EXPECT_EQ(e.value, 5u);
}

TEST_F(InitiatorAcceptTest, Ia1A_AcceptWithin4dOfInvocation) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    events_.clear();
    build(7, 2, seed);
    const RealTime t0 = RealTime::zero() + milliseconds(2);
    initiate_at(milliseconds(2), 0, 5);
    world_->run_for(milliseconds(40));
    ASSERT_EQ(events_.size(), 7u) << "seed " << seed;
    for (const auto& e : events_) {
      // Invocations happen within [t0, t0+d] (message delivery); accepts
      // within 4d of the respective invocation ⇒ within t0 + 5d overall,
      // and IA-1D pins rt(τq) ≤ t0 + 4d against the *General's* t0 when
      // it invokes its own copy. Our t0 is the send time, so allow +d.
      EXPECT_LE(e.real_at - t0, 5 * d()) << "seed " << seed;
      EXPECT_GE(e.real_at - t0, Duration::zero());
    }
  }
}

TEST_F(InitiatorAcceptTest, Ia1B_AcceptsWithin2dOfEachOther) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    events_.clear();
    build(7, 2, seed);
    initiate_at(milliseconds(2), 0, 5);
    world_->run_for(milliseconds(40));
    ASSERT_EQ(events_.size(), 7u);
    RealTime lo = RealTime::max(), hi = RealTime::min();
    for (const auto& e : events_) {
      lo = std::min(lo, e.real_at);
      hi = std::max(hi, e.real_at);
    }
    EXPECT_LE(hi - lo, 2 * d()) << "seed " << seed;
  }
}

TEST_F(InitiatorAcceptTest, Ia1C_AnchorEstimatesWithinD) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    events_.clear();
    build(7, 2, seed);
    initiate_at(milliseconds(2), 0, 5);
    world_->run_for(milliseconds(40));
    ASSERT_EQ(events_.size(), 7u);
    RealTime lo = RealTime::max(), hi = RealTime::min();
    for (const auto& e : events_) {
      lo = std::min(lo, e.tau_g_real);
      hi = std::max(hi, e.tau_g_real);
    }
    EXPECT_LE(hi - lo, d()) << "seed " << seed;
  }
}

TEST_F(InitiatorAcceptTest, Ia1D_AnchorBetweenT0MinusDAndAccept) {
  build(7, 2, 21);
  const RealTime t0 = RealTime::zero() + milliseconds(2);
  initiate_at(milliseconds(2), 0, 5);
  world_->run_for(milliseconds(40));
  ASSERT_EQ(events_.size(), 7u);
  for (const auto& e : events_) {
    EXPECT_GE(e.tau_g_real, t0 - d());   // rt(τG) ≥ t0 − d
    EXPECT_LE(e.tau_g_real, e.real_at);  // rt(τG) ≤ rt(τq)
  }
}

TEST_F(InitiatorAcceptTest, WorksWithSilentFaults) {
  build(7, 2, 31, /*byz_count=*/2, [](std::uint32_t) {
    return std::unique_ptr<NodeBehavior>(new SilentAdversary());
  });
  initiate_at(milliseconds(2), 0, 5);
  world_->run_for(milliseconds(40));
  EXPECT_EQ(events_.size(), 5u);  // all correct nodes accept
  for (const auto& e : events_) EXPECT_EQ(e.value, 5u);
}

TEST_F(InitiatorAcceptTest, WorksAtMinimumClusterSize) {
  build(4, 1, 41, 1, [](std::uint32_t) {
    return std::unique_ptr<NodeBehavior>(new SilentAdversary());
  });
  initiate_at(milliseconds(2), 0, 9);
  world_->run_for(milliseconds(40));
  EXPECT_EQ(events_.size(), 3u);
}

// --- IA-2: Unforgeability -------------------------------------------------

TEST_F(InitiatorAcceptTest, FaultyNodesAloneCannotForgeAccept) {
  // f Byzantine nodes spam full support/approve/ready waves for a phantom
  // value; no correct node ever invoked ⇒ no I-accept (IA-2).
  build(7, 2, 51, /*byz_count=*/2, [](std::uint32_t) {
    return std::unique_ptr<NodeBehavior>(new QuorumFaker(
        GeneralId{0}, /*phantom=*/77, milliseconds(1), {0, 1, 2, 3, 4}));
  });
  world_->run_for(milliseconds(300));
  EXPECT_TRUE(events_.empty());
}

TEST_F(InitiatorAcceptTest, NoSpontaneousAcceptWithoutAnyTraffic) {
  build(7, 2, 61);
  world_->run_for(milliseconds(200));
  EXPECT_TRUE(events_.empty());
}

// --- IA-4: Uniqueness / separation ---------------------------------------

TEST_F(InitiatorAcceptTest, EquivocatingValuesNeverBothAcceptedCloseTogether) {
  // General (node 0 position) is Byzantine and equivocates v0/v1. If any
  // accepts happen, IA-4A: accepted anchors for m ≠ m′ are > 4d apart.
  WorldConfig wc;
  wc.n = 7;
  wc.seed = 71;
  world_ = std::make_unique<World>(wc);
  params_ = std::make_unique<Params>(7, 2, wc.d_bound());
  hosts_.assign(7, nullptr);
  world_->set_behavior(
      0, std::make_unique<EquivocatingGeneral>(1, 2, milliseconds(2)));
  for (NodeId i = 1; i < 7; ++i) {
    auto host = std::make_unique<IaHost>(*params_, GeneralId{0}, world_.get(),
                                         &events_);
    hosts_[i] = host.get();
    world_->set_behavior(i, std::move(host));
  }
  world_->start();
  world_->run_for(milliseconds(400));

  for (const auto& a : events_) {
    for (const auto& b : events_) {
      if (a.value == b.value) continue;
      EXPECT_GT(abs(a.tau_g_real - b.tau_g_real), 4 * d())
          << "IA-4A violated: values " << a.value << "/" << b.value;
    }
  }
  // Agreement-relevant core of IA-4: among accepts within 6d of each other,
  // a single value.
  for (const auto& a : events_) {
    for (const auto& b : events_) {
      if (abs(a.tau_g_real - b.tau_g_real) <= 6 * d()) {
        EXPECT_EQ(a.value, b.value);
      }
    }
  }
}

// --- Block K pacing -------------------------------------------------------

TEST_F(InitiatorAcceptTest, SecondInitiationWithinDelta0IsIgnored) {
  build(7, 2, 81);
  initiate_at(milliseconds(2), 0, 5);
  // ∆0 = 13d ≈ 13.65ms; a second (different) value after ~6ms must die.
  initiate_at(milliseconds(8), 0, 6);
  world_->run_for(milliseconds(60));
  ASSERT_EQ(events_.size(), 7u);
  for (const auto& e : events_) EXPECT_EQ(e.value, 5u);
}

TEST_F(InitiatorAcceptTest, SecondInitiationAfterDelta0Succeeds) {
  build(7, 2, 91);
  initiate_at(milliseconds(2), 0, 5);
  // Past ∆0 (13d ≈ 13.7ms) + accept time, a *different* value is accepted.
  initiate_at(milliseconds(2) + 16 * d(), 0, 6);
  world_->run_for(milliseconds(80));
  ASSERT_EQ(events_.size(), 14u);
  std::map<Value, int> counts;
  for (const auto& e : events_) ++counts[e.value];
  EXPECT_EQ(counts[5], 7);
  EXPECT_EQ(counts[6], 7);
}

TEST_F(InitiatorAcceptTest, SameValueRequiresDeltaV) {
  build(4, 1, 101);
  initiate_at(milliseconds(2), 0, 5);
  // Same value again after ∆0 but way before ∆v: blocked by last(G,m).
  initiate_at(milliseconds(2) + 16 * d(), 0, 5);
  world_->run_for(milliseconds(80));
  EXPECT_EQ(events_.size(), 4u);  // only the first wave accepted

  // ... but after ∆v it works again.
  events_.clear();
  const Duration dv = params_->delta_v();
  world_->queue().schedule(world_->now() + dv, [this] { hosts_[0]->initiate(5); });
  world_->run_for(dv + milliseconds(60));
  EXPECT_EQ(events_.size(), 4u);
}

TEST_F(InitiatorAcceptTest, AcceptClearsLogState) {
  build(4, 1, 111);
  initiate_at(milliseconds(2), 0, 5);
  world_->run_for(milliseconds(40));
  ASSERT_EQ(events_.size(), 4u);
  // N4 removed all (G,m) messages and cleared i_values at every correct
  // node. (The ready flag is NOT cleared by N4 in Fig. 2 — it decays after
  // ∆rmv via the cleanup block; checked below.)
  for (auto* host : hosts_) {
    ASSERT_NE(host, nullptr);
    EXPECT_EQ(host->ia().log_size(), 0u);
    EXPECT_FALSE(host->ia().i_value_of(5).has_value());
  }
  // Push one node past ∆rmv and verify the ready flag decayed.
  world_->run_for(params_->delta_rmv() + milliseconds(5));
  world_->queue().schedule(world_->now(), [this] {
    WireMessage msg;
    msg.kind = MsgKind::kSupport;
    msg.general = GeneralId{0};
    msg.value = 99;  // unrelated value; just forces a cleanup pass
    msg.sender = 1;
    hosts_[1]->on_message_for_test(msg);
  });
  world_->run_for(milliseconds(1));
  EXPECT_FALSE(hosts_[1]->ia().ready_set(5));
}

// --- self-stabilization of the primitive ---------------------------------

TEST_F(InitiatorAcceptTest, ScrambledStateHealsAndAccepts) {
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    events_.clear();
    build(7, 2, seed);
    for (NodeId i = 0; i < 7; ++i) world_->scramble_node(i);
    // Let the scrambled garbage decay (≤ ∆reset covers every variable),
    // then initiate: the full wave must go through.
    const Duration settle = params_->delta_reset();
    initiate_at(settle + milliseconds(2), 0, 5);
    world_->run_for(settle + milliseconds(60));
    // Garbage may or may not have produced bogus early accepts; after the
    // settle period the real initiation must be accepted by everyone.
    std::uint32_t accepted = 0;
    for (const auto& e : events_) {
      if (e.value == 5 && e.real_at >= RealTime::zero() + settle) ++accepted;
    }
    EXPECT_EQ(accepted, 7u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ssbft
