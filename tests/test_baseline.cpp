// Baseline tests: the TPS'87-style time-driven agreement — both that it
// works under its (strong) assumptions, and that it exhibits exactly the
// weaknesses the paper's protocol removes: latency pinned to worst-case
// phase length, and collapse when the synchronized-start assumption breaks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/adversaries.hpp"
#include "baseline/tps_node.hpp"
#include "core/params.hpp"
#include "sim/world.hpp"

namespace ssbft {
namespace {

struct TimedRec {
  Decision decision;
  RealTime real_at;
};

class BaselineTest : public ::testing::Test {
 protected:
  void build(std::uint32_t n, std::uint32_t f, std::uint64_t seed,
             Duration phase_len, std::uint32_t byz = 0,
             bool synchronized = true) {
    WorldConfig wc;
    wc.n = n;
    wc.seed = seed;
    // The baseline ASSUMES synchronized clocks; grant or deny them. Drift is
    // also zeroed so phase boundaries land on exact real instants.
    wc.rho = 0.0;
    wc.max_clock_offset = synchronized ? Duration::zero() : milliseconds(30);
    world_ = std::make_unique<World>(wc);
    params_ = std::make_unique<Params>(n, f, wc.d_bound());
    phase_len_ = phase_len;
    nodes_.assign(n, nullptr);
    for (NodeId i = 0; i < n; ++i) {
      if (i >= n - byz) {
        world_->set_behavior(i, std::make_unique<SilentAdversary>());
        continue;
      }
      auto sink = [this](const Decision& d) {
        decisions_.push_back(TimedRec{d, world_->now()});
      };
      // Anchor at local time = phase_len (all clocks equal when
      // synchronized ⇒ common real anchor).
      auto node = std::make_unique<TpsNode>(
          *params_, GeneralId{0}, LocalTime::zero() + phase_len, phase_len,
          sink);
      nodes_[i] = node.get();
      world_->set_behavior(i, std::move(node));
    }
  }

  void run(Duration for_time) {
    world_->start();
    world_->run_until(RealTime::zero() + for_time);
  }

  std::unique_ptr<World> world_;
  std::unique_ptr<Params> params_;
  Duration phase_len_{};
  std::vector<TpsNode*> nodes_;
  std::vector<TimedRec> decisions_;
};

TEST_F(BaselineTest, CorrectGeneralAllDecide) {
  build(7, 2, 1, /*phase_len=*/milliseconds(3));
  nodes_[0]->propose(42);
  run(milliseconds(100));
  ASSERT_EQ(decisions_.size(), 7u);
  for (const auto& d : decisions_) {
    EXPECT_TRUE(d.decision.decided());
    EXPECT_EQ(d.decision.value, 42u);
  }
}

TEST_F(BaselineTest, ToleratesSilentFaults) {
  build(7, 2, 2, milliseconds(3), /*byz=*/2);
  nodes_[0]->propose(9);
  run(milliseconds(100));
  ASSERT_EQ(decisions_.size(), 5u);
  for (const auto& d : decisions_) EXPECT_EQ(d.decision.value, 9u);
}

TEST_F(BaselineTest, DecisionsQuantizedToPhaseBoundaries) {
  build(7, 2, 3, milliseconds(3));
  nodes_[0]->propose(1);
  run(milliseconds(100));
  ASSERT_FALSE(decisions_.empty());
  // Every decision happens exactly at a phase boundary: anchor + j·Φb.
  for (const auto& d : decisions_) {
    const std::int64_t since_anchor = d.real_at.ns() - phase_len_.ns();
    EXPECT_EQ(since_anchor % phase_len_.ns(), 0)
        << "decision at " << d.real_at.ns();
  }
}

TEST_F(BaselineTest, LatencyIndependentOfActualNetworkSpeed) {
  // THE contrast with msgd rounds: speed up the actual network 50× and the
  // baseline's decision time does not move (same phase boundary).
  auto decision_time = [&](Duration typical_delay) {
    WorldConfig wc;
    wc.n = 7;
    wc.seed = 4;
    wc.max_clock_offset = Duration::zero();
    wc.link_delay = DelayModel::exp_truncated(typical_delay, wc.delta);
    wc.proc_delay = DelayModel::uniform(Duration::zero(), wc.pi);
    wc.has_delay_models = true;
    World world(wc);
    Params params{7, 2, wc.d_bound()};
    std::vector<RealTime> times;
    std::vector<TpsNode*> nodes(7, nullptr);
    for (NodeId i = 0; i < 7; ++i) {
      auto node = std::make_unique<TpsNode>(
          params, GeneralId{0}, LocalTime::zero() + milliseconds(3),
          milliseconds(3),
          [&times, &world](const Decision&) { times.push_back(world.now()); });
      nodes[i] = node.get();
      world.set_behavior(i, std::move(node));
    }
    world.start();
    nodes[0]->propose(5);
    world.run_until(RealTime::zero() + milliseconds(100));
    RealTime last = RealTime::min();
    for (RealTime t : times) last = std::max(last, t);
    return last;
  };
  const RealTime slow = decision_time(microseconds(900));
  const RealTime fast = decision_time(microseconds(20));
  EXPECT_EQ(slow, fast);  // identical phase boundary, to the nanosecond
}

TEST_F(BaselineTest, BreaksWithoutSynchronizedStart) {
  // Deny the synchronization assumption (clock offsets up to 30ms): the
  // lock-step baseline cannot reach unanimous agreement — this is the gap
  // ss-Byz-Agree closes.
  build(7, 2, 5, milliseconds(3), /*byz=*/0, /*synchronized=*/false);
  nodes_[0]->propose(42);
  run(milliseconds(200));
  std::uint32_t decided = 0;
  for (const auto& d : decisions_) {
    if (d.decision.decided()) ++decided;
  }
  EXPECT_LT(decided, 7u);
}

TEST_F(BaselineTest, EquivocationDetectedLeadsToAbortOrAgreement) {
  // Byzantine General sends different values to different halves at
  // phase 0. Whatever happens, correct nodes never split.
  WorldConfig wc;
  wc.n = 7;
  wc.seed = 6;
  wc.max_clock_offset = Duration::zero();
  World world(wc);
  Params params{7, 2, wc.d_bound()};
  std::vector<TimedRec> decisions;
  world.set_behavior(0, std::make_unique<EquivocatingGeneral>(
                            1, 2, milliseconds(3)));
  for (NodeId i = 1; i < 7; ++i) {
    world.set_behavior(i, std::make_unique<TpsNode>(
                              params, GeneralId{0},
                              LocalTime::zero() + milliseconds(3),
                              milliseconds(3), [&](const Decision& d) {
                                decisions.push_back(TimedRec{d, world.now()});
                              }));
  }
  world.start();
  world.run_until(RealTime::zero() + milliseconds(200));
  // Agreement among deciders.
  Value agreed = kBottom;
  for (const auto& d : decisions) {
    if (!d.decision.decided()) continue;
    if (agreed == kBottom) agreed = d.decision.value;
    EXPECT_EQ(d.decision.value, agreed);
  }
}

}  // namespace
}  // namespace ssbft
