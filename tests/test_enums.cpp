// Unit tests: exhaustive to_string coverage for the public enums.
//
// The switches in the to_string implementations are default-less, so
// -Wswitch flags a newly added enumerator at compile time; these tests
// additionally catch drift at runtime (an enumerator silently falling
// through to the "?" sentinel) and enforce distinct, human-readable names.
// The k*Count constants live next to the enum definitions — adding an
// enumerator without bumping the count fails the distinctness check the
// moment the new value aliases the sentinel.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/node.hpp"
#include "harness/scenario.hpp"
#include "sim/auth.hpp"

namespace ssbft {
namespace {

template <typename Enum>
void expect_exhaustive(std::uint32_t count) {
  std::set<std::string> names;
  for (std::uint32_t i = 0; i < count; ++i) {
    const char* name = to_string(static_cast<Enum>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "enumerator " << i << " missing from switch";
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate name '" << name << "' for enumerator " << i;
  }
  // One past the end hits the sentinel — proves `count` is not stale-low.
  EXPECT_STREQ(to_string(static_cast<Enum>(count)), "?");
}

TEST(EnumToStringTest, AdversaryKindExhaustive) {
  expect_exhaustive<AdversaryKind>(kAdversaryKindCount);
}

TEST(EnumToStringTest, StackKindExhaustive) {
  expect_exhaustive<StackKind>(kStackKindCount);
}

TEST(EnumToStringTest, ShardSchedExhaustive) {
  expect_exhaustive<ShardSched>(kShardSchedCount);
}

TEST(EnumToStringTest, ProposeStatusExhaustive) {
  expect_exhaustive<ProposeStatus>(kProposeStatusCount);
}

TEST(EnumToStringTest, AuthKindExhaustive) {
  expect_exhaustive<AuthKind>(kAuthKindCount);
}

TEST(EnumToStringTest, SpecificNamesStable) {
  // Names appear in CLI output and CSVs; keep the common ones stable.
  EXPECT_STREQ(to_string(AdversaryKind::kSilent), "silent");
  EXPECT_STREQ(to_string(StackKind::kAgree), "agree");
  EXPECT_STREQ(to_string(StackKind::kClockSync), "clock-sync");
  EXPECT_STREQ(to_string(ProposeStatus::kSent), "sent");
  EXPECT_STREQ(to_string(ShardSched::kStatic), "static");
  EXPECT_STREQ(to_string(ShardSched::kSteal), "steal");
}

}  // namespace
}  // namespace ssbft
