// White-box, line-level tests of msgd-broadcast (Fig. 3): the W/X/Y/Z
// deadline ladder, quorum thresholds, rush-through, and anchor buffering —
// all driven through a MockContext with exact time control.
//
// Cluster shape: n = 7, f = 2 ⇒ n−f = 5, n−2f = 3; Φ = 8d.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/msgd_broadcast.hpp"
#include "core/params.hpp"
#include "mock_context.hpp"

namespace ssbft {
namespace {

constexpr Value kM = 9;
constexpr NodeId kP = 3;  // broadcaster under test
constexpr std::uint32_t kK = 1;

struct AcceptRec {
  NodeId p;
  Value m;
  std::uint32_t k;
};

class BcastLineTest : public ::testing::Test {
 protected:
  BcastLineTest() : params_(7, 2, milliseconds(1)), ctx_(/*id=*/1, /*n=*/7) {
    bc_ = std::make_unique<MsgdBroadcast>(
        params_, GeneralId{0}, [this](NodeId p, Value m, std::uint32_t k) {
          accepts_.push_back({p, m, k});
        });
  }

  Duration d() const { return params_.d(); }
  Duration phi() const { return params_.phi(); }

  void anchor_now() { bc_->set_anchor(ctx_, ctx_.local_now()); }

  void deliver(MsgKind kind, NodeId sender, NodeId p = kP,
               std::uint32_t k = kK) {
    WireMessage msg;
    msg.kind = kind;
    msg.sender = sender;
    msg.general = GeneralId{0};
    msg.value = kM;
    msg.broadcaster = p;
    msg.round = k;
    bc_->on_message(ctx_, msg);
  }

  void deliver_quorum(MsgKind kind, std::uint32_t count) {
    for (NodeId s = 0; s < count; ++s) deliver(kind, s);
  }

  Params params_;
  MockContext ctx_;
  std::unique_ptr<MsgdBroadcast> bc_;
  std::vector<AcceptRec> accepts_;
};

// --- Block W ----------------------------------------------------------------

TEST_F(BcastLineTest, W_EchoOnlyForAuthenticInit) {
  anchor_now();
  deliver(MsgKind::kBcastInit, /*sender=*/5, /*p=*/kP);  // forged: sender ≠ p
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kBcastEcho), 0u);
  deliver(MsgKind::kBcastInit, /*sender=*/kP, /*p=*/kP);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kBcastEcho), 1u);
}

TEST_F(BcastLineTest, W_EchoDeadlineIs2kPhi) {
  anchor_now();
  ctx_.advance(2 * kK * phi() + Duration{1});  // past τG + 2kΦ
  deliver(MsgKind::kBcastInit, kP, kP);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kBcastEcho), 0u);
}

TEST_F(BcastLineTest, W_EchoSentOnlyOnce) {
  anchor_now();
  deliver(MsgKind::kBcastInit, kP, kP);
  deliver(MsgKind::kBcastInit, kP, kP);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kBcastEcho), 1u);
}

// --- Block X ----------------------------------------------------------------

TEST_F(BcastLineTest, X3_InitPrimeAtNMinus2fEchoes) {
  anchor_now();
  deliver_quorum(MsgKind::kBcastEcho, 2);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kBcastInitPrime), 0u);
  deliver(MsgKind::kBcastEcho, 2);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kBcastInitPrime), 1u);
}

TEST_F(BcastLineTest, X5_AcceptAtNMinusFEchoesWithinDeadline) {
  anchor_now();
  deliver_quorum(MsgKind::kBcastEcho, 5);
  ASSERT_EQ(accepts_.size(), 1u);
  EXPECT_EQ(accepts_[0].p, kP);
  EXPECT_EQ(accepts_[0].k, kK);
}

TEST_F(BcastLineTest, X_DeadlineIs2kPlus1Phi) {
  anchor_now();
  ctx_.advance((2 * kK + 1) * phi() + Duration{1});
  deliver_quorum(MsgKind::kBcastEcho, 5);
  EXPECT_TRUE(accepts_.empty());  // too late for the X-path
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kBcastInitPrime), 0u);
}

TEST_F(BcastLineTest, RushThrough_NoWaitingForPhaseBoundaries) {
  // Everything can land at the anchor instant itself — acceptance is
  // immediate, demonstrating message-driven progress.
  anchor_now();
  deliver(MsgKind::kBcastInit, kP, kP);
  deliver_quorum(MsgKind::kBcastEcho, 5);
  EXPECT_EQ(accepts_.size(), 1u);  // zero time elapsed since anchor
}

// --- Block Y ----------------------------------------------------------------

TEST_F(BcastLineTest, Y3_BroadcastersAtNMinus2fInitPrimes) {
  anchor_now();
  deliver_quorum(MsgKind::kBcastInitPrime, 3);
  EXPECT_EQ(bc_->broadcasters().count(kP), 1u);
}

TEST_F(BcastLineTest, Y5_EchoPrimeAtNMinusFInitPrimes) {
  anchor_now();
  deliver_quorum(MsgKind::kBcastInitPrime, 5);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kBcastEchoPrime), 1u);
}

TEST_F(BcastLineTest, Y_DeadlineIs2kPlus2Phi) {
  anchor_now();
  ctx_.advance((2 * kK + 2) * phi() + Duration{1});
  deliver_quorum(MsgKind::kBcastInitPrime, 5);
  EXPECT_EQ(bc_->broadcasters().count(kP), 0u);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kBcastEchoPrime), 0u);
}

// --- Block Z (untimed) --------------------------------------------------------

TEST_F(BcastLineTest, Z3_EchoPrimeAmplifiesAtAnyTime) {
  anchor_now();
  ctx_.advance(10 * phi());  // far past every other deadline
  deliver_quorum(MsgKind::kBcastEchoPrime, 3);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kBcastEchoPrime), 1u);
}

TEST_F(BcastLineTest, Z5_AcceptViaEchoPrimeAtAnyTime) {
  anchor_now();
  ctx_.advance(10 * phi());
  deliver_quorum(MsgKind::kBcastEchoPrime, 5);
  ASSERT_EQ(accepts_.size(), 1u);
}

TEST_F(BcastLineTest, AcceptHappensAtMostOnce) {
  anchor_now();
  deliver_quorum(MsgKind::kBcastEcho, 5);     // X5 accept
  deliver_quorum(MsgKind::kBcastEchoPrime, 5);  // Z5 would accept again
  EXPECT_EQ(accepts_.size(), 1u);
}

// --- anchor buffering ----------------------------------------------------------

TEST_F(BcastLineTest, MessagesBufferUntilAnchorSet) {
  deliver(MsgKind::kBcastInit, kP, kP);
  deliver_quorum(MsgKind::kBcastEcho, 5);
  EXPECT_TRUE(accepts_.empty());
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kBcastEcho), 0u);
  anchor_now();  // replay: echo + accept fire now
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kBcastEcho), 1u);
  EXPECT_EQ(accepts_.size(), 1u);
}

TEST_F(BcastLineTest, SeparateRoundsAreIndependent) {
  anchor_now();
  for (NodeId s = 0; s < 5; ++s) deliver(MsgKind::kBcastEcho, s, kP, 1);
  for (NodeId s = 0; s < 5; ++s) deliver(MsgKind::kBcastEcho, s, kP, 2);
  ASSERT_EQ(accepts_.size(), 2u);
  EXPECT_EQ(accepts_[0].k, 1u);
  EXPECT_EQ(accepts_[1].k, 2u);
}

TEST_F(BcastLineTest, SeparateBroadcastersAreIndependent) {
  anchor_now();
  for (NodeId s = 0; s < 5; ++s) deliver(MsgKind::kBcastEcho, s, 3, kK);
  for (NodeId s = 0; s < 5; ++s) deliver(MsgKind::kBcastEcho, s, 4, kK);
  ASSERT_EQ(accepts_.size(), 2u);
  EXPECT_EQ(accepts_[0].p, 3u);
  EXPECT_EQ(accepts_[1].p, 4u);
}

TEST_F(BcastLineTest, LaterRoundsGetProportionallyLaterDeadlines) {
  // Round k = 3's X-deadline is (2·3+1)Φ — echoes at 6Φ still count...
  anchor_now();
  ctx_.advance(6 * phi());
  for (NodeId s = 0; s < 5; ++s) deliver(MsgKind::kBcastEcho, s, kP, 3);
  EXPECT_EQ(accepts_.size(), 1u);
  // ...while round 1's expired long ago (checked in X_DeadlineIs2kPlus1Phi).
}

TEST_F(BcastLineTest, CleanupDropsStaleInstances) {
  anchor_now();
  deliver(MsgKind::kBcastEcho, 0);
  EXPECT_EQ(bc_->instance_count(), 1u);
  ctx_.advance(params_.bcast_cleanup() + Duration{1});
  deliver(MsgKind::kBcastEcho, 1, /*p=*/5, /*k=*/2);  // triggers cleanup
  EXPECT_EQ(bc_->instance_count(), 1u);  // only the fresh instance
}

TEST_F(BcastLineTest, BroadcastSendsInitForSelf) {
  anchor_now();
  bc_->broadcast(ctx_, kM, 2);
  ASSERT_GE(ctx_.sent.size(), 7u);
  const auto& msg = ctx_.sent[0].msg;
  EXPECT_EQ(msg.kind, MsgKind::kBcastInit);
  EXPECT_EQ(msg.broadcaster, ctx_.id());
  EXPECT_EQ(msg.round, 2u);
}

}  // namespace
}  // namespace ssbft
