// Topology-aware dissemination (sim/topology.hpp): the overlay must change
// WHO fans a broadcast out, never who receives it or what the run computes.
// This file pins the knob validation (malformed overlays refuse to build),
// the degrade rules (degenerate knobs and chaos schedules fall back to the
// flat fan-out — never to wrongness), exact delivery coverage (every node
// receives each broadcast exactly once, with the origin's authenticated
// sender), the overlay counters, and seeded determinism: same seed ⇒ same
// digest on the serial AND sharded engines, for federated and gossip alike.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "sim/tap.hpp"
#include "sim/topology.hpp"
#include "sim/world.hpp"

namespace ssbft {
namespace {

// --- knob validation -------------------------------------------------------

TEST(TopologyValidate, FlatIgnoresKnobs) {
  Scenario sc;
  sc.topology = Topology::kFlat;
  sc.cluster_size = 7;     // ignored under flat
  sc.gossip_fanout = 999;  // ignored under flat
  EXPECT_EQ(sc.validate_topology(), nullptr);
  EXPECT_EQ(sc.effective_topology().kind, Topology::kFlat);
}

TEST(TopologyValidate, FederatedRequiresClusterSize) {
  Scenario sc;
  sc.topology = Topology::kFederated;
  sc.cluster_size = 0;
  EXPECT_NE(sc.validate_topology(), nullptr);
}

TEST(TopologyValidate, ClusterSizeMustDivideN) {
  Scenario sc;
  sc.n = 10;
  sc.topology = Topology::kFederated;
  sc.cluster_size = 3;  // 10 % 3 != 0
  EXPECT_NE(sc.validate_topology(), nullptr);
  sc.cluster_size = 5;
  EXPECT_EQ(sc.validate_topology(), nullptr);
}

TEST(TopologyValidate, GossipRequiresFanout) {
  Scenario sc;
  sc.topology = Topology::kGossip;
  sc.gossip_fanout = 0;
  EXPECT_NE(sc.validate_topology(), nullptr);
  sc.gossip_fanout = 1;
  EXPECT_EQ(sc.validate_topology(), nullptr);
}

TEST(TopologyValidate, MalformedOverlayRefusesToBuild) {
  Scenario sc;
  sc.n = 10;
  sc.topology = Topology::kFederated;
  sc.cluster_size = 3;  // does not divide n: must die at build, not run
  EXPECT_DEATH(Cluster cluster(sc), "precondition");
}

// --- degrade rules ---------------------------------------------------------

TEST(TopologyDegrade, DegenerateKnobsResolveToFlat) {
  // One cluster spanning the world, single-node clusters, and a fanout
  // reaching everyone in one hop are all flat fan-out with extra steps.
  TopologyConfig whole{Topology::kFederated, 16, 0};
  EXPECT_EQ(whole.resolved(16).kind, Topology::kFlat);
  TopologyConfig singleton{Topology::kFederated, 1, 0};
  EXPECT_EQ(singleton.resolved(16).kind, Topology::kFlat);
  TopologyConfig wide{Topology::kGossip, 0, 15};
  EXPECT_EQ(wide.resolved(16).kind, Topology::kFlat);
  // Sound non-degenerate knobs survive resolution unchanged.
  TopologyConfig fed{Topology::kFederated, 4, 0};
  EXPECT_EQ(fed.resolved(16).kind, Topology::kFederated);
  EXPECT_EQ(fed.resolved(16).cluster_size, 4u);
  TopologyConfig gos{Topology::kGossip, 0, 3};
  EXPECT_EQ(gos.resolved(16).kind, Topology::kGossip);
  EXPECT_EQ(gos.resolved(16).fanout, 3u);
}

/// Agreement scenario with a chaos schedule — the case where relay
/// subtrees would silently vanish to per-hop drops.
Scenario chaotic_scenario() {
  Scenario sc;
  sc.n = 12;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.link_delay =
      DelayModel::exp_truncated(sc.delta / 10, sc.delta / 5, sc.delta);
  sc.chaos_period = milliseconds(3);
  sc.with_proposal(milliseconds(8), 0, 42);
  sc.run_for = milliseconds(60);
  return sc;
}

TEST(TopologyDegrade, ChaosDegradesGossipToFlat) {
  Scenario sc = chaotic_scenario();
  sc.topology = Topology::kGossip;
  sc.gossip_fanout = 3;
  EXPECT_EQ(sc.effective_topology().kind, Topology::kFlat);

  // The degraded run IS the flat run, bit for bit — never a third behavior.
  Scenario flat = chaotic_scenario();
  const SweepRun gossip_run = SweepRunner::run_cell(sc, 21);
  const SweepRun flat_run = SweepRunner::run_cell(flat, 21);
  EXPECT_EQ(gossip_run.digest, flat_run.digest);
  EXPECT_EQ(gossip_run.events, flat_run.events);
  EXPECT_EQ(gossip_run.messages, flat_run.messages);
}

TEST(TopologyDegrade, ChaosDegradesFederatedToFlat) {
  Scenario sc = chaotic_scenario();
  sc.topology = Topology::kFederated;
  sc.cluster_size = 4;
  EXPECT_EQ(sc.effective_topology().kind, Topology::kFlat);
  const SweepRun fed_run = SweepRunner::run_cell(sc, 21);
  const SweepRun flat_run = SweepRunner::run_cell(chaotic_scenario(), 21);
  EXPECT_EQ(fed_run.digest, flat_run.digest);
}

// --- delivery coverage -----------------------------------------------------

struct Coverage {
  std::vector<std::uint32_t> delivered_to;  // per-destination copy count
  std::uint32_t relayed_copies = 0;         // delivered with route != 0
  NetworkStats stats{};
};

/// Drive ONE send_all through a bare serial World under `topo` and tap
/// every delivery.
Coverage broadcast_coverage(const TopologyConfig& topo, std::uint32_t n,
                            NodeId origin) {
  WorldConfig wc;
  wc.n = n;
  wc.seed = 7;
  wc.topology = topo;
  World world(wc);
  Coverage cov;
  cov.delivered_to.assign(n, 0);
  world.network().set_tap([&](const TapEvent& e) {
    if (e.kind != TapEvent::Kind::kDelivered) return;
    ++cov.delivered_to[e.to];
    if (e.msg.route != kRouteDirect) ++cov.relayed_copies;
    // Relays forward the ORIGIN's authenticated identity, never their own.
    EXPECT_EQ(e.msg.sender, origin);
  });
  WireMessage msg;
  msg.kind = MsgKind::kSupport;
  msg.value = 42;
  world.network().send_all(origin, msg);
  world.run_to_quiescence(RealTime::zero() + seconds(1));
  cov.stats = world.net_stats();
  return cov;
}

TEST(TopologyCoverage, FederatedDeliversExactlyOnceEverywhere) {
  const std::uint32_t n = 12, c = 4;
  const Coverage cov =
      broadcast_coverage(TopologyConfig{Topology::kFederated, c, 0}, n, 5);
  for (NodeId id = 0; id < n; ++id) {
    EXPECT_EQ(cov.delivered_to[id], 1u) << "dest " << id;
  }
  // Origin out-degree: own cluster (4) + other reps (2); reps forward 3
  // copies each. Representative copies are the only route-marked arrivals.
  EXPECT_EQ(cov.stats.sent, c + (n / c - 1));
  EXPECT_EQ(cov.stats.fanout_msgs, (n / c - 1) * (c - 1));
  EXPECT_EQ(cov.stats.topology_hops, n / c - 1);
  EXPECT_EQ(cov.stats.delivered, n);
  EXPECT_EQ(cov.relayed_copies, n / c - 1);
}

TEST(TopologyCoverage, GossipDeliversExactlyOnceEverywhere) {
  const std::uint32_t n = 13;
  const Coverage cov =
      broadcast_coverage(TopologyConfig{Topology::kGossip, 0, 3}, n, 9);
  for (NodeId id = 0; id < n; ++id) {
    EXPECT_EQ(cov.delivered_to[id], 1u) << "dest " << id;
  }
  // The origin sends exactly one self-rooted copy; relays fan out the
  // remaining n − 1, and EVERY copy carries the gossip route marker.
  EXPECT_EQ(cov.stats.sent, 1u);
  EXPECT_EQ(cov.stats.fanout_msgs, n - 1);
  EXPECT_EQ(cov.stats.delivered, n);
  EXPECT_EQ(cov.relayed_copies, n);
}

TEST(TopologyCoverage, FlatKeepsCountersZero) {
  const Coverage cov = broadcast_coverage(TopologyConfig{}, 8, 3);
  for (NodeId id = 0; id < 8; ++id) EXPECT_EQ(cov.delivered_to[id], 1u);
  EXPECT_EQ(cov.stats.sent, 8u);
  EXPECT_EQ(cov.stats.topology_hops, 0u);
  EXPECT_EQ(cov.stats.fanout_msgs, 0u);
  EXPECT_EQ(cov.relayed_copies, 0u);
}

TEST(TopologyCoverage, UnicastNeverCarriesRelayDuty) {
  // A behavior echoing a received copy back out must not re-disseminate:
  // the unicast path stamps kRouteDirect whatever the overlay.
  WorldConfig wc;
  wc.n = 9;
  wc.seed = 7;
  wc.topology = TopologyConfig{Topology::kGossip, 0, 2};
  World world(wc);
  std::uint32_t delivered = 0;
  world.network().set_tap([&](const TapEvent& e) {
    if (e.kind != TapEvent::Kind::kDelivered) return;
    ++delivered;
    EXPECT_EQ(e.msg.route, kRouteDirect);
  });
  WireMessage msg;
  msg.kind = MsgKind::kReady;
  world.network().send(2, 6, msg);
  world.run_to_quiescence(RealTime::zero() + seconds(1));
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(world.net_stats().fanout_msgs, 0u);
}

// --- seeded determinism across engines ------------------------------------

/// Agreement workload on a non-flat overlay. No chaos (chaos degrades to
/// flat by design), positive delay floor so the sharded engine engages.
Scenario overlay_scenario(Topology topology) {
  Scenario sc;
  sc.n = 48;
  sc.f = 4;
  sc.with_tail_faults(4);
  sc.link_delay =
      DelayModel::exp_truncated(sc.delta / 10, sc.delta / 5, sc.delta);
  sc.adversary = AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  sc.auth = AuthKind::kHmac;
  sc.payload_bytes = 48;
  sc.topology = topology;
  sc.cluster_size = 8;
  sc.gossip_fanout = 4;
  sc.with_proposal(milliseconds(5), 0, 42);
  sc.with_proposal(milliseconds(25), 1, 43);
  sc.run_for = milliseconds(60);
  return sc;
}

TEST(TopologyDeterminism, SameSeedSameDigestAndEngineParity) {
  for (const Topology topology : {Topology::kFederated, Topology::kGossip}) {
    const Scenario serial_sc = overlay_scenario(topology);
    const SweepRun serial = SweepRunner::run_cell(serial_sc, 21);
    const SweepRun again = SweepRunner::run_cell(serial_sc, 21);
    EXPECT_EQ(serial.digest, again.digest) << to_string(topology);
    EXPECT_NE(serial.digest, 0u) << to_string(topology);

    for (const std::uint32_t shards : {2u, 4u}) {
      for (const ShardSched sched :
           {ShardSched::kStatic, ShardSched::kSteal, ShardSched::kLax}) {
        Scenario sc = overlay_scenario(topology);
        sc.shards = shards;
        sc.shard_sched = sched;
        const SweepRun run = SweepRunner::run_cell(sc, 21);
        EXPECT_EQ(run.digest, serial.digest)
            << to_string(topology) << " shards " << shards << " sched "
            << to_string(sched);
        EXPECT_EQ(run.events, serial.events)
            << to_string(topology) << " shards " << shards;
        EXPECT_EQ(run.messages, serial.messages)
            << to_string(topology) << " shards " << shards;
      }
    }
  }
}

TEST(TopologyDeterminism, OverlaysProduceDistinctSchedulesFromFlat) {
  // Sanity that the overlay actually engaged: the relayed schedule is a
  // different (still deterministic) history, not flat-with-extra-counters.
  Scenario flat_sc = overlay_scenario(Topology::kFederated);
  flat_sc.topology = Topology::kFlat;
  const SweepRun flat = SweepRunner::run_cell(flat_sc, 21);
  const SweepRun fed =
      SweepRunner::run_cell(overlay_scenario(Topology::kFederated), 21);
  EXPECT_NE(fed.digest, flat.digest);
}

TEST(TopologyEnums, ToStringCoversEveryTopology) {
  for (std::uint32_t t = 0; t < kTopologyCount; ++t) {
    EXPECT_STRNE(to_string(Topology(t)), "?");
  }
}

}  // namespace
}  // namespace ssbft
