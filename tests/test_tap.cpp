// Network tap / trace recorder tests.
#include <gtest/gtest.h>

#include <memory>

#include "harness/runner.hpp"
#include "sim/tap.hpp"

namespace ssbft {
namespace {

TEST(TapTest, RecordsSentAndDelivered) {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.with_proposal(milliseconds(2), 0, 7);
  sc.run_for = milliseconds(60);
  Cluster cluster(sc);
  TraceRecorder recorder;
  cluster.world().network().set_tap(recorder.tap());
  cluster.run();

  // One Initiator broadcast: 4 sends, 4 deliveries.
  EXPECT_EQ(recorder.count(TapEvent::Kind::kSent, MsgKind::kInitiator), 4u);
  EXPECT_EQ(recorder.count(TapEvent::Kind::kDelivered, MsgKind::kInitiator),
            4u);
  // The full wave ran: supports, approves, readys all on the wire.
  EXPECT_GE(recorder.count(TapEvent::Kind::kSent, MsgKind::kSupport), 16u);
  EXPECT_GE(recorder.count(TapEvent::Kind::kSent, MsgKind::kApprove), 16u);
  EXPECT_GE(recorder.count(TapEvent::Kind::kSent, MsgKind::kReady), 16u);
  EXPECT_EQ(recorder.dropped_records(), 0u);
}

TEST(TapTest, DeliveryFollowsSendWithinDelta) {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.with_proposal(milliseconds(2), 0, 7);
  sc.run_for = milliseconds(60);
  Cluster cluster(sc);
  TraceRecorder recorder;
  cluster.world().network().set_tap(recorder.tap());
  cluster.run();

  // Pair up each delivery with the latest prior matching send and check
  // the δ+π bound (the tap sees real time, so this checks the simulator
  // honours its own contract).
  const Duration bound = sc.delta + sc.pi;
  for (const auto& event : recorder.events()) {
    if (event.kind != TapEvent::Kind::kDelivered) continue;
    RealTime best = RealTime::min();
    for (const auto& other : recorder.events()) {
      if (other.kind != TapEvent::Kind::kSent) continue;
      if (!(other.msg == event.msg) || other.to != event.to) continue;
      if (other.at <= event.at) best = std::max(best, other.at);
    }
    ASSERT_NE(best, RealTime::min());
    EXPECT_LE(event.at - best, bound);
  }
}

TEST(TapTest, ForgedInjectionsAreMarked) {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = 5;
  sc.run_for = milliseconds(30);
  Cluster cluster(sc);
  TraceRecorder recorder;
  cluster.world().network().set_tap(recorder.tap());
  cluster.run();

  std::size_t forged = 0;
  for (const auto& event : recorder.events()) {
    if (event.kind == TapEvent::Kind::kForged) {
      EXPECT_EQ(event.from, kNoNode);
      ++forged;
    }
  }
  EXPECT_EQ(forged, 20u);  // 5 per node × 4 nodes
}

TEST(TapTest, CapacityBoundsMemory) {
  TraceRecorder recorder(/*capacity=*/3);
  TapEvent event;
  for (int i = 0; i < 10; ++i) recorder.record(event);
  EXPECT_EQ(recorder.events().size(), 3u);
  EXPECT_EQ(recorder.dropped_records(), 7u);
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_EQ(recorder.dropped_records(), 0u);
}

TEST(TapTest, FilterSelectsConversations) {
  TraceRecorder recorder;
  for (NodeId to = 0; to < 4; ++to) {
    TapEvent event;
    event.kind = TapEvent::Kind::kSent;
    event.to = to;
    recorder.record(event);
  }
  const auto to2 = recorder.filter(
      [](const TapEvent& e) { return e.to == 2; });
  EXPECT_EQ(to2.size(), 1u);
}

TEST(TapTest, ToStringIsHumanReadable) {
  TapEvent event;
  event.kind = TapEvent::Kind::kDelivered;
  event.at = RealTime{1'500'000};
  event.from = 1;
  event.to = 2;
  event.msg.kind = MsgKind::kSupport;
  const std::string s = to_string(event);
  EXPECT_NE(s.find("delivered"), std::string::npos);
  EXPECT_NE(s.find("support"), std::string::npos);
}

}  // namespace
}  // namespace ssbft
