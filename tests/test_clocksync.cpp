// Clock-synchronization layer tests: precision (skew between correct
// nodes' logical clocks), self-stabilization from scrambled clock state,
// bounded-clock wrap-around, rate accuracy, and resilience to Byzantine
// rotation slots.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "adversary/adversaries.hpp"
#include "clocksync/clock_sync.hpp"
#include "sim/world.hpp"

namespace ssbft {
namespace {

struct ClockFixtureOptions {
  std::uint32_t n = 7;
  std::uint32_t f = 2;
  std::uint64_t seed = 1;
  std::uint32_t byz_count = 0;
  Duration modulus = Duration::zero();
  AdjustMode adjust = AdjustMode::kStep;
};

class ClockFixture {
 public:
  explicit ClockFixture(const ClockFixtureOptions& opt) {
    WorldConfig wc;
    wc.n = opt.n;
    wc.seed = opt.seed;
    world = std::make_unique<World>(wc);
    params = std::make_unique<Params>(opt.n, opt.f, wc.d_bound());
    nodes.assign(opt.n, nullptr);
    for (NodeId i = 0; i < opt.n; ++i) {
      if (i >= opt.n - opt.byz_count) {
        world->set_behavior(
            i, std::make_unique<RandomNoiseAdversary>(milliseconds(2)));
        continue;
      }
      ClockSyncConfig cfg;
      cfg.modulus = opt.modulus;
      cfg.adjust = opt.adjust;
      auto sink = [this, i](const ClockAdjustment& adj) {
        adjustments.push_back({i, adj});
      };
      auto node = std::make_unique<ClockSyncNode>(*params, cfg, sink);
      nodes[i] = node.get();
      world->set_behavior(i, std::move(node));
    }
    correct_count = opt.n - opt.byz_count;
  }

  /// Max pairwise circular distance between synchronized correct clocks,
  /// sampled at the current real instant.
  [[nodiscard]] Duration sample_skew() const {
    Duration worst = Duration::zero();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == nullptr || !nodes[i]->synchronized()) continue;
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        if (nodes[j] == nullptr || !nodes[j]->synchronized()) continue;
        Duration diff = nodes[i]->clock() - nodes[j]->clock();
        const Duration m = nodes[i]->modulus();
        if (m != Duration::zero()) {
          // circular distance
          Duration w = Duration{((diff.ns() % m.ns()) + m.ns()) % m.ns()};
          if (w > m / 2) w = m - w;
          diff = w;
        }
        worst = std::max(worst, abs(diff));
      }
    }
    return worst;
  }

  [[nodiscard]] std::uint32_t synchronized_count() const {
    std::uint32_t count = 0;
    for (const auto* node : nodes) {
      if (node != nullptr && node->synchronized()) ++count;
    }
    return count;
  }

  /// True when every correct node has snapped to the same pulse counter —
  /// the instants at which the precision bound applies (see
  /// ClockSyncNode::last_snap_counter).
  [[nodiscard]] bool settled() const {
    std::optional<std::uint64_t> counter;
    for (const auto* node : nodes) {
      if (node == nullptr) continue;
      if (!node->synchronized() || !node->last_snap_counter()) return false;
      if (counter && *counter != *node->last_snap_counter()) return false;
      counter = node->last_snap_counter();
    }
    return counter.has_value();
  }

  std::unique_ptr<World> world;
  std::unique_ptr<Params> params;
  std::vector<ClockSyncNode*> nodes;
  std::vector<std::pair<NodeId, ClockAdjustment>> adjustments;
  std::uint32_t correct_count = 0;
};

TEST(ClockSyncTest, AllCorrectNodesSynchronize) {
  ClockFixture fx({.n = 4, .f = 1});
  fx.world->start();
  const Duration cycle = fx.nodes[0]->cycle();
  fx.world->run_for(4 * cycle);
  EXPECT_EQ(fx.synchronized_count(), fx.correct_count);
}

TEST(ClockSyncTest, PrecisionBoundHoldsAtSampledInstants) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    ClockFixture fx({.n = 7, .f = 2, .seed = seed});
    fx.world->start();
    const Duration cycle = fx.nodes[0]->cycle();
    fx.world->run_for(3 * cycle);  // warm
    const Duration bound = fx.nodes[0]->precision_bound();
    for (int sample = 0; sample < 40; ++sample) {
      fx.world->run_for(cycle / 10);
      if (!fx.settled()) continue;  // snap in flight: bound does not apply
      EXPECT_LE(fx.sample_skew(), bound)
          << "seed " << seed << " sample " << sample;
    }
  }
}

TEST(ClockSyncTest, ClockAdvancesMonotonicallyBetweenSnaps) {
  ClockFixture fx({.n = 4, .f = 1});
  fx.world->start();
  const Duration cycle = fx.nodes[0]->cycle();
  fx.world->run_for(3 * cycle);
  ASSERT_TRUE(fx.nodes[0]->synchronized());
  Duration prev = fx.nodes[0]->clock();
  // Unbounded clock: strictly non-decreasing between samples. (Snaps pull
  // *backwards* only by the agreement-latency excess, which stays below the
  // inter-sample gap here.)
  for (int i = 0; i < 30; ++i) {
    fx.world->run_for(cycle / 7);
    const Duration now = fx.nodes[0]->clock();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(ClockSyncTest, StableAdjustmentsAreLatencySized) {
  ClockFixture fx({.n = 7, .f = 2});
  fx.world->start();
  const Duration cycle = fx.nodes[0]->cycle();
  fx.world->run_for(8 * cycle);
  ASSERT_GT(fx.adjustments.size(), fx.correct_count * 3);
  // Skip each node's first snap (cold start is unsynchronized free-run);
  // subsequent corrections are bounded by the agreement latency, which is
  // < ∆agr by Termination — far below a full cycle.
  std::vector<std::uint32_t> seen(fx.nodes.size(), 0);
  for (const auto& [node, adj] : fx.adjustments) {
    if (++seen[node] == 1) continue;
    EXPECT_LE(abs(adj.amount), fx.params->delta_agr())
        << "node " << node << " pulse " << adj.pulse_counter;
  }
}

TEST(ClockSyncTest, LogicalRateIsConstantBounded) {
  ClockFixture fx({.n = 4, .f = 1});
  fx.world->start();
  const Duration cycle = fx.nodes[0]->cycle();
  fx.world->run_for(3 * cycle);
  ASSERT_TRUE(fx.nodes[0]->synchronized());
  const Duration c0 = fx.nodes[0]->clock();
  const RealTime t0 = fx.world->now();
  fx.world->run_for(12 * cycle);
  const Duration advance = fx.nodes[0]->clock() - c0;
  const Duration real = fx.world->now() - t0;
  const double rate = advance / real;
  // Logical clocks snap to c·cycle while real pulse gaps are cycle+latency:
  // a constant-bounded rate strictly below 1, well above 1/2 for any sane
  // latency (here ∆agr ≪ cycle).
  EXPECT_GT(rate, 0.5);
  EXPECT_LE(rate, 1.0 + 1e-3);
}

// --- self-stabilization ------------------------------------------------------

TEST(ClockSyncTest, ConvergesFromScrambledClockState) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    ClockFixture fx({.n = 7, .f = 2, .seed = seed});
    fx.world->start();
    const Duration cycle = fx.nodes[0]->cycle();
    fx.world->run_for(3 * cycle);
    // Transient fault: scramble every node's clock AND protocol state.
    for (NodeId i = 0; i < 7; ++i) fx.world->scramble_node(i);
    // Convergence bound: the highest scrambled pulse counter must reach
    // its rotation slot before its decision can pull everyone up — worst
    // case n watchdog periods (≈ 10 cycles here at n = 7) plus the
    // IG-pacing heal (∆reset). 14 cycles covers it with margin.
    fx.world->run_for(14 * cycle);
    EXPECT_EQ(fx.synchronized_count(), fx.correct_count) << "seed " << seed;
    const Duration bound = fx.nodes[0]->precision_bound();
    Duration worst = Duration::zero();
    std::uint32_t settled_samples = 0;
    for (int sample = 0; sample < 40; ++sample) {
      fx.world->run_for(cycle / 10);
      if (!fx.settled()) continue;
      ++settled_samples;
      worst = std::max(worst, fx.sample_skew());
    }
    EXPECT_GE(settled_samples, 10u) << "seed " << seed;
    EXPECT_LE(worst, bound) << "seed " << seed;
  }
}

TEST(ClockSyncTest, ScrambledBelievedSyncIsOverwrittenNotTrusted) {
  ClockFixture fx({.n = 4, .f = 1, .seed = 9});
  fx.world->start();
  const Duration cycle = fx.nodes[0]->cycle();
  fx.world->run_for(3 * cycle);
  fx.world->scramble_node(0);  // node 0 now holds garbage base/anchor
  // After pulses resume, node 0's reading is pulled back into the envelope.
  // Sample across a few cycles rather than at one instant: "settled" (all
  // nodes snapped to the SAME pulse counter) is false mid-snap, and which
  // instants land mid-snap is seed-dependent.
  bool settled = false;
  for (int sample = 0; sample < 24 && !settled; ++sample) {
    fx.world->run_for(cycle / 4);
    settled = fx.settled();
  }
  ASSERT_TRUE(settled);
  EXPECT_LE(fx.sample_skew(), fx.nodes[0]->precision_bound());
}

// --- Byzantine resilience ----------------------------------------------------

TEST(ClockSyncTest, PrecisionSurvivesByzantineRotationSlots) {
  ClockFixture fx({.n = 7, .f = 2, .seed = 11, .byz_count = 2});
  fx.world->start();
  const Duration cycle = fx.nodes[0]->cycle();
  // Byzantine nodes own 2 of every 7 rotation slots; watchdogs skip them.
  fx.world->run_for(10 * cycle);
  EXPECT_EQ(fx.synchronized_count(), fx.correct_count);
  const Duration bound = fx.nodes[0]->precision_bound();
  for (int sample = 0; sample < 20; ++sample) {
    fx.world->run_for(cycle / 10);
    if (!fx.settled()) continue;
    EXPECT_LE(fx.sample_skew(), bound) << "sample " << sample;
  }
}

// --- bounded clocks ----------------------------------------------------------

TEST(ClockSyncTest, BoundedClockWrapsAndStaysPrecise) {
  ClockFixtureOptions opt{.n = 4, .f = 1, .seed = 3};
  // Small modulus: wraps every ~5 pulses.
  ClockFixture probe({.n = 4, .f = 1});
  probe.world->start();
  opt.modulus = 5 * probe.nodes[0]->cycle();
  ClockFixture fx(opt);
  fx.world->start();
  const Duration cycle = fx.nodes[0]->cycle();
  fx.world->run_for(14 * cycle);  // ≥ 2 full wraps
  EXPECT_EQ(fx.synchronized_count(), fx.correct_count);
  for (const auto* node : fx.nodes) {
    if (node == nullptr) continue;
    EXPECT_GE(node->clock(), Duration::zero());
    EXPECT_LT(node->clock(), opt.modulus);
  }
  if (fx.settled()) {
    EXPECT_LE(fx.sample_skew(), fx.nodes[0]->precision_bound());
  }
}

// --- slewed (monotonic) corrections ------------------------------------------

TEST(ClockSyncTest, StepModeCanRunBackwardsAfterSkippedSlots) {
  // Baseline for the slew tests: with a Byzantine node in rotation, the
  // pulse gap across its skipped slot exceeds a cycle, so the next snap
  // steps the clock BACKWARDS in kStep mode. Finding such a decrease
  // proves the monotonicity test below actually bites.
  ClockFixture fx({.n = 4, .f = 1, .seed = 21, .byz_count = 1});
  fx.world->start();
  const Duration cycle = fx.nodes[0]->cycle();
  fx.world->run_for(3 * cycle);
  bool saw_decrease = false;
  Duration prev = fx.nodes[0]->clock();
  for (int i = 0; i < 600 && !saw_decrease; ++i) {
    fx.world->run_for(cycle / 50);
    const Duration now = fx.nodes[0]->clock();
    if (now < prev) saw_decrease = true;
    prev = now;
  }
  EXPECT_TRUE(saw_decrease);
}

TEST(ClockSyncTest, SlewedClockIsStrictlyMonotonic) {
  // Same regime, kSlew: backward corrections are absorbed by under-running
  // (rate 1 − slew_rate > 0), so readings never decrease.
  ClockFixture fx({.n = 4, .f = 1, .seed = 21, .byz_count = 1,
                   .adjust = AdjustMode::kSlew});
  fx.world->start();
  const Duration cycle = fx.nodes[0]->cycle();
  fx.world->run_for(3 * cycle);
  Duration prev = fx.nodes[0]->clock();
  for (int i = 0; i < 600; ++i) {
    fx.world->run_for(cycle / 50);
    const Duration now = fx.nodes[0]->clock();
    EXPECT_GE(now, prev) << "sample " << i;
    prev = now;
  }
}

TEST(ClockSyncTest, SlewedClockRejoinsTheEnvelopeAfterAbsorption) {
  // After a backward correction of size R, a slewing node is back inside
  // the settled envelope within R / slew_rate local time. With R ≤ one
  // watchdog overshoot and the default slew_rate = 0.1, a couple of cycles
  // suffice here.
  ClockFixture fx({.n = 7, .f = 2, .seed = 23, .byz_count = 2,
                   .adjust = AdjustMode::kSlew});
  fx.world->start();
  const Duration cycle = fx.nodes[0]->cycle();
  fx.world->run_for(10 * cycle);
  // Quiet tail: measure only instants where everyone is settled; allow the
  // residual-absorption transient by taking the minimum skew seen.
  Duration best = Duration::max();
  for (int sample = 0; sample < 60; ++sample) {
    fx.world->run_for(cycle / 10);
    if (!fx.settled()) continue;
    best = std::min(best, fx.sample_skew());
  }
  EXPECT_LE(best, fx.nodes[0]->precision_bound());
}

TEST(ClockSyncTest, SlewRequiresUnboundedClock) {
  ClockFixture probe({.n = 4, .f = 1});
  probe.world->start();
  Params params{4, 1, microseconds(1050)};
  ClockSyncConfig cfg;
  cfg.modulus = 5 * probe.nodes[0]->cycle();
  cfg.adjust = AdjustMode::kSlew;
  EXPECT_DEATH(ClockSyncNode(params, cfg), "precondition");
}

TEST(ClockSyncTest, SlewRateValidated) {
  Params params{4, 1, microseconds(1050)};
  ClockSyncConfig cfg;
  cfg.adjust = AdjustMode::kSlew;
  cfg.slew_rate = 1.5;  // must be in (0, 1)
  EXPECT_DEATH(ClockSyncNode(params, cfg), "precondition");
}

TEST(ClockSyncTest, BoundedClockRejectsTinyModulus) {
  ClockFixture probe({.n = 4, .f = 1});
  probe.world->start();
  const Duration cycle = probe.nodes[0]->cycle();
  Params params{4, 1, microseconds(1050)};
  ClockSyncConfig cfg;
  cfg.modulus = cycle;  // < 4·cycle ⇒ ambiguous snap targets
  EXPECT_DEATH(ClockSyncNode(params, cfg), "precondition");
}

}  // namespace
}  // namespace ssbft
