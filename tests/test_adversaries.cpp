// Unit/behavioral tests for the adversary strategies themselves: each must
// actually emit the traffic pattern it advertises (otherwise the resilience
// tests that rely on them prove nothing).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "adversary/adversaries.hpp"
#include "harness/runner.hpp"
#include "sim/tap.hpp"
#include "sim/world.hpp"

namespace ssbft {
namespace {

class Recorder : public NodeBehavior {
 public:
  void on_message(NodeContext&, const WireMessage& msg) override {
    received.push_back(msg);
  }
  std::vector<WireMessage> received;
};

struct AdversaryFixture {
  explicit AdversaryFixture(std::uint32_t n, std::uint64_t seed = 3) {
    WorldConfig wc;
    wc.n = n;
    wc.seed = seed;
    world = std::make_unique<World>(wc);
    recorders.resize(n);
    for (NodeId i = 1; i < n; ++i) {
      auto r = std::make_unique<Recorder>();
      recorders[i] = r.get();
      world->set_behavior(i, std::move(r));
    }
  }
  std::unique_ptr<World> world;
  std::vector<Recorder*> recorders;
};

TEST(AdversaryTest, SilentSendsNothing) {
  AdversaryFixture fx(4);
  fx.world->set_behavior(0, std::make_unique<SilentAdversary>());
  fx.world->start();
  fx.world->run_for(milliseconds(50));
  for (NodeId i = 1; i < 4; ++i) EXPECT_TRUE(fx.recorders[i]->received.empty());
}

TEST(AdversaryTest, NoiseFloodsPeriodically) {
  AdversaryFixture fx(4);
  fx.world->set_behavior(
      0, std::make_unique<RandomNoiseAdversary>(milliseconds(1), 4));
  fx.world->start();
  fx.world->run_for(milliseconds(20));
  std::size_t total = 0;
  for (NodeId i = 1; i < 4; ++i) total += fx.recorders[i]->received.size();
  // ~20 bursts of 4 messages; sender identity always authenticated as 0.
  EXPECT_GE(total, 40u);
  for (NodeId i = 1; i < 4; ++i) {
    for (const auto& msg : fx.recorders[i]->received) {
      EXPECT_EQ(msg.sender, 0u);
    }
  }
}

TEST(AdversaryTest, EquivocatorSplitsValuesAtTheConfiguredIndex) {
  AdversaryFixture fx(6);
  fx.world->set_behavior(0, std::make_unique<EquivocatingGeneral>(
                                11, 22, milliseconds(1), /*split=*/4));
  fx.world->start();
  fx.world->run_for(milliseconds(10));
  for (NodeId i = 1; i < 6; ++i) {
    ASSERT_EQ(fx.recorders[i]->received.size(), 1u) << "node " << i;
    const auto& msg = fx.recorders[i]->received[0];
    EXPECT_EQ(msg.kind, MsgKind::kInitiator);
    EXPECT_EQ(msg.value, i < 4 ? 11u : 22u);
  }
}

TEST(AdversaryTest, StaggeredSendsOneInitiatorPerNodeWithinSpan) {
  AdversaryFixture fx(6, 5);
  fx.world->set_behavior(0, std::make_unique<StaggeredGeneral>(
                                9, milliseconds(1), milliseconds(10)));
  fx.world->start();
  fx.world->run_for(milliseconds(30));
  for (NodeId i = 1; i < 6; ++i) {
    ASSERT_EQ(fx.recorders[i]->received.size(), 1u);
    EXPECT_EQ(fx.recorders[i]->received[0].kind, MsgKind::kInitiator);
    EXPECT_EQ(fx.recorders[i]->received[0].value, 9u);
  }
}

TEST(AdversaryTest, SpamGeneralViolatesDelta0WithFreshValues) {
  AdversaryFixture fx(3);
  fx.world->set_behavior(0, std::make_unique<SpamGeneral>(milliseconds(2)));
  fx.world->start();
  fx.world->run_for(milliseconds(21));
  ASSERT_GE(fx.recorders[1]->received.size(), 9u);
  std::set<Value> values;
  for (const auto& msg : fx.recorders[1]->received) {
    EXPECT_EQ(msg.kind, MsgKind::kInitiator);
    values.insert(msg.value);
  }
  // Every initiation used a fresh value.
  EXPECT_EQ(values.size(), fx.recorders[1]->received.size());
}

TEST(AdversaryTest, ReplayerEchoesObservedTrafficAfterDelay) {
  AdversaryFixture fx(3);
  fx.world->set_behavior(0, std::make_unique<ReplayAdversary>(milliseconds(5)));
  fx.world->start();
  // Feed the replayer one message.
  WireMessage original;
  original.kind = MsgKind::kApprove;
  original.general = GeneralId{1};
  original.value = 42;
  fx.world->network().send(1, 0, original);
  fx.world->run_for(milliseconds(3));
  EXPECT_TRUE(fx.recorders[2]->received.empty());  // not replayed yet
  fx.world->run_for(milliseconds(10));
  ASSERT_EQ(fx.recorders[2]->received.size(), 1u);
  const auto& replayed = fx.recorders[2]->received[0];
  EXPECT_EQ(replayed.kind, MsgKind::kApprove);
  EXPECT_EQ(replayed.value, 42u);
  EXPECT_EQ(replayed.sender, 0u);  // identity still authenticated
}

// The Cluster's victim-list construction must skip Byzantine ids and the
// faker itself: with the Byzantine nodes at the FRONT of the id space, a
// blind 0..n/2 victim list would aim the fake quorum waves at the faker's
// own accomplices (and itself) instead of at correct nodes.
TEST(AdversaryTest, ClusterQuorumFakerVictimsSkipByzantineAndSelf) {
  Scenario sc;
  sc.n = 6;
  sc.f = 1;
  sc.byz_nodes = {0, 1};
  sc.adversary = AdversaryKind::kQuorumFaker;
  sc.equivocate_v0 = 777;  // phantom value, recognizable on the wire
  sc.adversary_period = milliseconds(2);
  sc.run_for = milliseconds(10);
  Cluster cluster(sc);

  std::vector<TapEvent> sent;
  cluster.world().network().set_tap([&sent](const TapEvent& event) {
    if (event.kind == TapEvent::Kind::kSent) sent.push_back(event);
  });
  cluster.run();

  std::set<NodeId> victims;
  bool faker_traffic = false;
  for (const TapEvent& event : sent) {
    // Only the fakers' own sends: correct nodes RELAY the phantom value
    // broadcast-wide once a wave reaches them, and that is protocol
    // traffic, not victim targeting.
    if (event.msg.value != 777 || !sc.is_byzantine(event.from)) continue;
    faker_traffic = true;
    EXPECT_FALSE(sc.is_byzantine(event.to))
        << "fake wave aimed at Byzantine node " << event.to;
    victims.insert(event.to);
  }
  EXPECT_TRUE(faker_traffic);
  // First ⌊n/2⌋ = 3 correct nodes: 2, 3, 4.
  EXPECT_EQ(victims, (std::set<NodeId>{2, 3, 4}));
}

TEST(AdversaryTest, QuorumFakerTargetsOnlyVictims) {
  AdversaryFixture fx(5);
  fx.world->set_behavior(0, std::make_unique<QuorumFaker>(
                                GeneralId{0}, 77, milliseconds(2),
                                std::vector<NodeId>{1, 2}));
  fx.world->start();
  fx.world->run_for(milliseconds(10));
  EXPECT_FALSE(fx.recorders[1]->received.empty());
  EXPECT_FALSE(fx.recorders[2]->received.empty());
  EXPECT_TRUE(fx.recorders[3]->received.empty());
  EXPECT_TRUE(fx.recorders[4]->received.empty());
  // The fake wave covers all four Initiator-Accept message kinds.
  std::set<MsgKind> kinds;
  for (const auto& msg : fx.recorders[1]->received) kinds.insert(msg.kind);
  EXPECT_EQ(kinds.size(), 4u);
}

}  // namespace
}  // namespace ssbft
