// Behavioral tests: msgd-broadcast against TPS-1..TPS-4, including the
// message-driven "rush through" property that distinguishes it from the
// synchronous original.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "adversary/adversaries.hpp"
#include "core/msgd_broadcast.hpp"
#include "core/params.hpp"
#include "sim/world.hpp"

namespace ssbft {
namespace {

struct AcceptEvent {
  NodeId node;
  NodeId p;
  Value m;
  std::uint32_t k;
  RealTime real_at;
  LocalTime local_at;
};

/// Host for a bare MsgdBroadcast with an externally supplied anchor.
class BcHost : public NodeBehavior {
 public:
  BcHost(const Params& params, World* world, std::vector<AcceptEvent>* events)
      : world_(world), events_(events),
        bc_(std::make_unique<MsgdBroadcast>(
            params, GeneralId{0}, [this](NodeId p, Value m, std::uint32_t k) {
              events_->push_back(AcceptEvent{ctx_->id(), p, m, k,
                                             world_->now(), ctx_->local_now()});
            })) {}

  void on_start(NodeContext& ctx) override { ctx_ = &ctx; }

  void on_message(NodeContext& ctx, const WireMessage& msg) override {
    switch (msg.kind) {
      case MsgKind::kBcastInit:
      case MsgKind::kBcastEcho:
      case MsgKind::kBcastInitPrime:
      case MsgKind::kBcastEchoPrime:
        bc_->on_message(ctx, msg);
        break;
      default:
        break;
    }
  }

  void anchor_now() { bc_->set_anchor(*ctx_, ctx_->local_now()); }
  void broadcast(Value m, std::uint32_t k) { bc_->broadcast(*ctx_, m, k); }
  MsgdBroadcast& bc() { return *bc_; }
  NodeContext& ctx() { return *ctx_; }

 private:
  World* world_;
  std::vector<AcceptEvent>* events_;
  std::unique_ptr<MsgdBroadcast> bc_;
  NodeContext* ctx_ = nullptr;
};

class MsgdBroadcastTest : public ::testing::Test {
 protected:
  void build(std::uint32_t n, std::uint32_t f, std::uint64_t seed,
             std::uint32_t byz_count = 0) {
    WorldConfig wc;
    wc.n = n;
    wc.seed = seed;
    world_ = std::make_unique<World>(wc);
    params_ = std::make_unique<Params>(n, f, wc.d_bound());
    hosts_.assign(n, nullptr);
    for (NodeId i = 0; i < n; ++i) {
      if (i >= n - byz_count) {
        world_->set_behavior(i, std::make_unique<SilentAdversary>());
        continue;
      }
      auto host = std::make_unique<BcHost>(*params_, world_.get(), &events_);
      hosts_[i] = host.get();
      world_->set_behavior(i, std::move(host));
    }
    world_->start();
    // Anchor everyone at the same real instant — exactly what IA-3A's 6d
    // guarantee delivers in the full protocol (here: skew 0 for precision).
    world_->queue().schedule(world_->now(), [this] {
      for (auto* h : hosts_) {
        if (h) h->anchor_now();
      }
    });
  }

  Duration d() const { return params_->d(); }
  Duration phi() const { return params_->phi(); }

  std::unique_ptr<World> world_;
  std::unique_ptr<Params> params_;
  std::vector<BcHost*> hosts_;
  std::vector<AcceptEvent> events_;
};

// --- TPS-1: Correctness ----------------------------------------------------

TEST_F(MsgdBroadcastTest, CorrectBroadcasterEveryoneAccepts) {
  build(7, 2, 1);
  world_->queue().schedule(RealTime::zero() + milliseconds(1),
                           [this] { hosts_[0]->broadcast(9, 1); });
  world_->run_for(milliseconds(60));
  ASSERT_EQ(events_.size(), 7u);
  for (const auto& e : events_) {
    EXPECT_EQ(e.p, 0u);
    EXPECT_EQ(e.m, 9u);
    EXPECT_EQ(e.k, 1u);
  }
}

TEST_F(MsgdBroadcastTest, Tps1_AcceptWithin3dOfBroadcast) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    events_.clear();
    build(7, 2, seed);
    const RealTime tb = RealTime::zero() + milliseconds(1);
    world_->queue().schedule(tb, [this] { hosts_[0]->broadcast(9, 1); });
    world_->run_for(milliseconds(60));
    ASSERT_EQ(events_.size(), 7u);
    for (const auto& e : events_) {
      EXPECT_LE(e.real_at - tb, 3 * d()) << "seed " << seed;
    }
  }
}

TEST_F(MsgdBroadcastTest, Tps1_WithinRoundDeadline) {
  build(7, 2, 5);
  world_->queue().schedule(RealTime::zero() + milliseconds(1),
                           [this] { hosts_[0]->broadcast(9, 2); });
  world_->run_for(milliseconds(120));
  ASSERT_EQ(events_.size(), 7u);
  for (const auto& e : events_) {
    // Accept by τG + (2k+1)·Φ on the accepting node's timer.
    const auto anchor = hosts_[e.node]->bc().anchor();
    ASSERT_TRUE(anchor.has_value());
    EXPECT_LE(e.local_at - *anchor, std::int64_t(2 * 2 + 1) * phi());
  }
}

TEST_F(MsgdBroadcastTest, RushThrough_FastNetworkAcceptsFarBeforeDeadline) {
  // The message-driven property: with actual delays ≈ δ/5, acceptance
  // completes in a small fraction of the worst-case round budget.
  build(7, 2, 6);
  const RealTime tb = RealTime::zero() + milliseconds(1);
  world_->queue().schedule(tb, [this] { hosts_[0]->broadcast(9, 1); });
  world_->run_for(milliseconds(60));
  ASSERT_EQ(events_.size(), 7u);
  for (const auto& e : events_) {
    // Budget to the X-deadline is (2k+1)Φ = 3Φ = 24d; actual ≈ 2 hops.
    EXPECT_LT((e.real_at - tb).ns(), (3 * phi()).ns() / 4);
  }
}

TEST_F(MsgdBroadcastTest, ToleratesSilentFaults) {
  build(7, 2, 7, /*byz_count=*/2);
  world_->queue().schedule(RealTime::zero() + milliseconds(1),
                           [this] { hosts_[0]->broadcast(9, 1); });
  world_->run_for(milliseconds(60));
  EXPECT_EQ(events_.size(), 5u);
}

// --- TPS-2: Unforgeability ---------------------------------------------------

TEST_F(MsgdBroadcastTest, NoBroadcastNoAccept) {
  build(7, 2, 8);
  world_->run_for(milliseconds(100));
  EXPECT_TRUE(events_.empty());
}

class EchoForger : public NodeBehavior {
 public:
  explicit EchoForger(NodeId victim_p) : victim_p_(victim_p) {}
  void on_start(NodeContext& ctx) override { ctx.set_timer_after(milliseconds(1), 0); }
  void on_message(NodeContext&, const WireMessage&) override {}
  void on_timer(NodeContext& ctx, std::uint64_t) override {
    // Forge the full message set for a broadcast that never happened.
    for (const MsgKind kind : {MsgKind::kBcastInit, MsgKind::kBcastEcho,
                               MsgKind::kBcastInitPrime,
                               MsgKind::kBcastEchoPrime}) {
      WireMessage msg;
      msg.kind = kind;
      msg.general = GeneralId{0};
      msg.value = 66;
      msg.broadcaster = victim_p_;  // frame a correct node
      msg.round = 1;
      ctx.send_all(msg);
    }
    ctx.set_timer_after(milliseconds(1), 0);
  }

 private:
  NodeId victim_p_;
};

TEST_F(MsgdBroadcastTest, Tps2_FaultyNodesCannotFrameACorrectNode) {
  build(7, 2, 9);
  // Replace the last two hosts with forgers framing correct node 0.
  hosts_[5] = nullptr;
  hosts_[6] = nullptr;
  world_->set_behavior(5, std::make_unique<EchoForger>(0));
  world_->set_behavior(6, std::make_unique<EchoForger>(0));
  world_->run_for(milliseconds(200));
  // Node 0 never called broadcast ⇒ nobody accepts (p=0,·,·) and node 0
  // never appears in any broadcasters set (TPS-4 second half).
  EXPECT_TRUE(events_.empty());
  for (auto* h : hosts_) {
    if (h) {
      EXPECT_EQ(h->bc().broadcasters().count(0), 0u);
    }
  }
}

// --- TPS-3: Relay ------------------------------------------------------------

TEST_F(MsgdBroadcastTest, Tps3_OnceOneAcceptsAllAcceptWithin2Phi) {
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    events_.clear();
    build(7, 2, seed, /*byz_count=*/2);
    world_->queue().schedule(RealTime::zero() + milliseconds(1),
                             [this] { hosts_[0]->broadcast(3, 1); });
    world_->run_for(milliseconds(150));
    ASSERT_EQ(events_.size(), 5u);
    RealTime first = RealTime::max(), last = RealTime::min();
    for (const auto& e : events_) {
      first = std::min(first, e.real_at);
      last = std::max(last, e.real_at);
    }
    EXPECT_LE(last - first, 2 * phi()) << "seed " << seed;
  }
}

// --- TPS-4: Detection of broadcasters ----------------------------------------

TEST_F(MsgdBroadcastTest, Tps4_AcceptImpliesBroadcasterDetectedEverywhere) {
  build(7, 2, 13);
  world_->queue().schedule(RealTime::zero() + milliseconds(1),
                           [this] { hosts_[2]->broadcast(4, 1); });
  world_->run_for(milliseconds(150));
  ASSERT_EQ(events_.size(), 7u);
  for (auto* h : hosts_) {
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->bc().broadcasters().count(2), 1u);
  }
}

TEST_F(MsgdBroadcastTest, Tps4_NonBroadcasterNeverJoins) {
  build(7, 2, 14);
  world_->queue().schedule(RealTime::zero() + milliseconds(1),
                           [this] { hosts_[2]->broadcast(4, 1); });
  world_->run_for(milliseconds(150));
  for (auto* h : hosts_) {
    for (NodeId p = 0; p < 7; ++p) {
      if (p == 2) continue;
      EXPECT_EQ(h->bc().broadcasters().count(p), 0u);
    }
  }
}

// --- buffering before the anchor ---------------------------------------------

TEST_F(MsgdBroadcastTest, MessagesBeforeAnchorAreReplayedWhenAnchorSet) {
  // Build WITHOUT anchoring; broadcast; then anchor late and expect accepts.
  WorldConfig wc;
  wc.n = 7;
  wc.seed = 15;
  world_ = std::make_unique<World>(wc);
  params_ = std::make_unique<Params>(7, 2, wc.d_bound());
  hosts_.assign(7, nullptr);
  for (NodeId i = 0; i < 7; ++i) {
    auto host = std::make_unique<BcHost>(*params_, world_.get(), &events_);
    hosts_[i] = host.get();
    world_->set_behavior(i, std::move(host));
  }
  world_->start();

  // Node 0 anchors immediately (it can send echoes); others stay unanchored
  // and only log.
  world_->queue().schedule(world_->now(), [this] { hosts_[0]->anchor_now(); });
  world_->queue().schedule(RealTime::zero() + milliseconds(1),
                           [this] { hosts_[0]->broadcast(9, 1); });
  world_->run_for(milliseconds(10));
  // Without n−f echoes (only node 0 echoed), nobody accepts yet.
  EXPECT_TRUE(events_.empty());

  // Anchor the rest: logged init/echo messages replay, the wave completes.
  world_->queue().schedule(world_->now(), [this] {
    for (NodeId i = 1; i < 7; ++i) hosts_[i]->anchor_now();
  });
  world_->run_for(milliseconds(60));
  EXPECT_EQ(events_.size(), 7u);
}

// --- cleanup ------------------------------------------------------------------

TEST_F(MsgdBroadcastTest, StaleInstancesDecay) {
  build(7, 2, 16);
  world_->queue().schedule(RealTime::zero() + milliseconds(1),
                           [this] { hosts_[0]->broadcast(9, 1); });
  world_->run_for(milliseconds(30));
  EXPECT_GT(hosts_[1]->bc().instance_count(), 0u);
  // Push time past (2f+3)Φ with a dummy message to trigger cleanup.
  world_->run_for(params_->bcast_cleanup() + milliseconds(10));
  world_->queue().schedule(world_->now(), [this] {
    WireMessage msg;
    msg.kind = MsgKind::kBcastEcho;
    msg.general = GeneralId{0};
    msg.value = 1;
    msg.broadcaster = 3;
    msg.round = 1;
    hosts_[1]->bc().on_message(hosts_[1]->ctx(), msg);
  });
  world_->run_for(milliseconds(5));
  EXPECT_EQ(hosts_[1]->bc().instance_count(), 1u);  // only the fresh one
}

}  // namespace
}  // namespace ssbft
