// Footnote-9 machinery tests: concurrent indexed invocations at the
// protocol layer, and the pipelined replicated log built on them —
// identical delivery sequences at all correct nodes, in-order delivery
// across concurrent slots, throughput scaling with depth, fault skips, and
// convergence after transient scrambles.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "adversary/adversaries.hpp"
#include "app/pipelined_log.hpp"
#include "harness/metrics.hpp"
#include "harness/runner.hpp"
#include "sim/world.hpp"

namespace ssbft {
namespace {

// --- indexed concurrent invocations at the SsByzNode layer ------------------

TEST(IndexedInvocationTest, ConcurrentIndicesDecideIndependently) {
  // One General runs three agreements at once on indices 0, 1, 2; all three
  // must decide, each on its own value, at every correct node.
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.run_for = milliseconds(400);
  Cluster cluster(sc);
  cluster.world().start();
  cluster.world().queue().schedule(
      cluster.world().now() + milliseconds(5), [&] {
        for (std::uint32_t index = 0; index < 3; ++index) {
          EXPECT_EQ(cluster.node(0)->propose(100 + index, index),
                    ProposeStatus::kSent);
        }
      });
  cluster.world().run_for(milliseconds(400));

  std::map<std::uint32_t, std::map<NodeId, Value>> by_index;
  for (const auto& d : cluster.decisions()) {
    if (!d.decision.decided()) continue;
    EXPECT_EQ(d.decision.general.node, 0u);
    by_index[d.decision.general.index][d.decision.node] = d.decision.value;
  }
  ASSERT_EQ(by_index.size(), 3u);
  for (std::uint32_t index = 0; index < 3; ++index) {
    ASSERT_EQ(by_index[index].size(), 5u) << "index " << index;
    for (const auto& [node, value] : by_index[index]) {
      EXPECT_EQ(value, 100 + index) << "node " << node;
    }
  }
}

TEST(IndexedInvocationTest, PacingIsPerIndex) {
  // IG1 refuses a second initiation on the SAME index within ∆0, but a
  // fresh index is immediately available — that is footnote 9's point.
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.with_tail_faults(1);
  sc.run_for = milliseconds(100);
  Cluster cluster(sc);
  cluster.world().start();
  cluster.world().queue().schedule(
      cluster.world().now() + milliseconds(5), [&] {
        EXPECT_EQ(cluster.node(0)->propose(1, 0), ProposeStatus::kSent);
        EXPECT_EQ(cluster.node(0)->propose(2, 0), ProposeStatus::kTooSoon);
        EXPECT_EQ(cluster.node(0)->propose(2, 1), ProposeStatus::kSent);
        EXPECT_EQ(cluster.node(0)->propose(3, 1), ProposeStatus::kTooSoon);
      });
  cluster.world().run_for(milliseconds(100));
}

TEST(IndexedInvocationTest, IndexBeyondBoundIsRejectedAtReceivers) {
  // Messages carrying index ≥ max_indices are dropped: a Byzantine sender
  // cannot blow up the per-General instance table.
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.run_for = milliseconds(50);
  Cluster cluster(sc);
  cluster.world().start();
  const std::uint32_t beyond = cluster.params().max_indices();
  cluster.world().queue().schedule(
      cluster.world().now() + milliseconds(2), [&] {
        WireMessage msg;
        msg.kind = MsgKind::kInitiator;
        msg.general = GeneralId{3, beyond};
        msg.value = 7;
        msg.sender = 3;
        cluster.world().network().inject_raw(0, msg, microseconds(100));
      });
  cluster.world().run_for(milliseconds(50));
  EXPECT_FALSE(cluster.node(0)->has_instance(GeneralId{3, beyond}));
}

// --- pipelined log -----------------------------------------------------------

struct Delivered {
  NodeId node;
  PipelinedEntry entry;
};

class PipelineFixture {
 public:
  PipelineFixture(std::uint32_t n, std::uint32_t f, std::uint32_t depth,
                  std::uint64_t seed, std::uint32_t byz_count = 0) {
    WorldConfig wc;
    wc.n = n;
    wc.seed = seed;
    world = std::make_unique<World>(wc);
    params = std::make_unique<Params>(n, f, wc.d_bound());
    nodes.assign(n, nullptr);
    for (NodeId i = 0; i < n; ++i) {
      if (i >= n - byz_count) {
        world->set_behavior(
            i, std::make_unique<RandomNoiseAdversary>(milliseconds(2)));
        continue;
      }
      PipelineConfig cfg;
      cfg.depth = depth;
      auto sink = [this, i](const PipelinedEntry& entry) {
        deliveries.push_back({i, entry});
      };
      auto node = std::make_unique<PipelinedLogNode>(*params, cfg, sink);
      nodes[i] = node.get();
      world->set_behavior(i, std::move(node));
    }
    correct_count = n - byz_count;
  }

  /// Per-node delivery sequences (slot order is guaranteed per node).
  [[nodiscard]] std::map<NodeId, std::vector<PipelinedEntry>> sequences()
      const {
    std::map<NodeId, std::vector<PipelinedEntry>> out;
    for (const auto& d : deliveries) out[d.node].push_back(d.entry);
    return out;
  }

  /// All correct nodes delivered the same committed sequence up to the
  /// shortest prefix (skipped holes excluded from the comparison payload).
  [[nodiscard]] bool committed_prefixes_agree() const {
    std::vector<std::vector<PipelinedEntry>> committed;
    for (const auto& [node, seq] : sequences()) {
      committed.emplace_back();
      for (const auto& e : seq) {
        if (!e.skipped) committed.back().push_back(e);
      }
    }
    if (committed.empty()) return true;
    std::size_t shortest = committed[0].size();
    for (const auto& seq : committed) shortest = std::min(shortest, seq.size());
    for (std::size_t i = 0; i < shortest; ++i) {
      for (const auto& seq : committed) {
        if (!(seq[i] == committed[0][i])) return false;
      }
    }
    return true;
  }

  std::unique_ptr<World> world;
  std::unique_ptr<Params> params;
  std::vector<PipelinedLogNode*> nodes;
  std::vector<Delivered> deliveries;
  std::uint32_t correct_count = 0;
};

TEST(PipelinedLogTest, DeliversSubmittedCommandsInSlotOrder) {
  PipelineFixture fx(4, 1, 4, 1);
  fx.world->start();
  for (NodeId i = 0; i < 4; ++i) {
    for (std::uint32_t c = 0; c < 3; ++c) fx.nodes[i]->submit(100 * i + c);
  }
  fx.world->run_for(10 * fx.nodes[0]->slot_period());
  const auto seqs = fx.sequences();
  ASSERT_EQ(seqs.size(), 4u);
  for (const auto& [node, seq] : seqs) {
    ASSERT_FALSE(seq.empty()) << "node " << node;
    for (std::size_t i = 1; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].slot, seq[i - 1].slot + 1) << "node " << node;
    }
  }
  EXPECT_TRUE(fx.committed_prefixes_agree());
}

TEST(PipelinedLogTest, AllSubmittedCommandsCommitExactlyOnce) {
  PipelineFixture fx(4, 1, 4, 2);
  fx.world->start();
  std::vector<std::uint32_t> submitted;
  for (NodeId i = 0; i < 4; ++i) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      fx.nodes[i]->submit(1000 * (i + 1) + c);
      submitted.push_back(1000 * (i + 1) + c);
    }
  }
  fx.world->run_for(14 * fx.nodes[0]->slot_period());
  // Node 0's committed view contains every submitted command exactly once.
  const auto seqs = fx.sequences();
  std::map<std::uint32_t, int> count;
  for (const auto& e : seqs.at(0)) {
    if (!e.skipped) ++count[e.command];
  }
  for (std::uint32_t c : submitted) {
    EXPECT_EQ(count[c], 1) << "command " << c;
  }
}

TEST(PipelinedLogTest, ThroughputScalesWithDepth) {
  // Same over-subscribed workload, same (short) wall-clock budget; with 4
  // slots in flight the committed count must at least double.
  auto committed_with_depth = [](std::uint32_t depth) {
    PipelineFixture fx(4, 1, depth, 7);
    fx.world->start();
    for (NodeId i = 0; i < 4; ++i) {
      for (std::uint32_t c = 0; c < 40; ++c) fx.nodes[i]->submit(100 * i + c);
    }
    fx.world->run_for(fx.nodes[0]->slot_period());
    const auto seqs = fx.sequences();
    std::size_t committed = 0;
    if (seqs.count(0) != 0) {
      for (const auto& e : seqs.at(0)) {
        if (!e.skipped) ++committed;
      }
    }
    return committed;
  };
  const std::size_t d1 = committed_with_depth(1);
  const std::size_t d4 = committed_with_depth(4);
  EXPECT_GE(d4, 2 * d1) << "depth-1: " << d1 << " depth-4: " << d4;
}

TEST(PipelinedLogTest, FaultyProposersSlotsAreSkippedNotBlocking) {
  PipelineFixture fx(7, 2, 4, 3, 2);  // nodes 5, 6 Byzantine
  fx.world->start();
  for (NodeId i = 0; i < 5; ++i) fx.nodes[i]->submit(42 + i);
  fx.world->run_for(14 * fx.nodes[0]->slot_period());
  const auto seqs = fx.sequences();
  // Delivery proceeded past the Byzantine proposers' slots...
  std::size_t committed = 0;
  for (const auto& e : seqs.at(0)) {
    if (!e.skipped) ++committed;
  }
  EXPECT_GE(committed, 5u);
  // ...and no slot owned by a Byzantine node ever committed a command.
  for (const auto& [node, seq] : seqs) {
    for (const auto& e : seq) {
      if (e.proposer >= 5) {
        EXPECT_TRUE(e.skipped) << "slot " << e.slot;
      }
    }
  }
  EXPECT_TRUE(fx.committed_prefixes_agree());
}

TEST(PipelinedLogTest, WorkSubmittedAfterScrambleCommitsConsistently) {
  // A transient fault scrambles agreement state, window cursors, delivery
  // cursors AND plants junk entries. The convergence guarantee mirrors the
  // sequential log's: every command submitted after the system settles is
  // committed at every correct node with an identical (slot, command,
  // proposer) record. (Junk entries delivered from pre-coherence state are
  // application damage the agreement layer does not retroactively heal —
  // documented in DESIGN.md.)
  for (std::uint64_t seed : {11u, 12u}) {
    PipelineFixture fx(4, 1, 4, seed);
    fx.world->start();
    for (NodeId i = 0; i < 4; ++i) fx.nodes[i]->submit(7 + i);
    fx.world->run_for(4 * fx.nodes[0]->slot_period());
    for (NodeId i = 0; i < 4; ++i) fx.world->scramble_node(i);
    fx.world->run_for(fx.params->delta_stb());
    fx.deliveries.clear();  // judge only post-settle behaviour
    for (NodeId i = 0; i < 4; ++i) fx.nodes[i]->submit(1000 + i);
    fx.world->run_for(30 * fx.nodes[0]->slot_period());

    // Per-slot agreement: every post-settle command lands in every correct
    // node's settled map with an identical (slot, command, proposer)
    // record. (Delivery *streams* re-converge only above the post-fault
    // horizon — a scrambled cursor may have already passed the slot; that
    // is pre-coherence damage, healed by state transfer in production, not
    // by the agreement layer. See DESIGN.md.)
    for (std::uint32_t cmd = 1000; cmd < 1004; ++cmd) {
      std::optional<PipelinedEntry> reference;
      for (NodeId i = 0; i < 4; ++i) {
        std::optional<PipelinedEntry> found;
        for (const auto& [slot, e] : fx.nodes[i]->settled()) {
          if (!e.skipped && e.command == cmd) {
            found = e;
            break;
          }
        }
        ASSERT_TRUE(found.has_value())
            << "seed " << seed << " node " << i << " never committed " << cmd;
        if (!reference) {
          reference = found;
        } else {
          EXPECT_TRUE(*found == *reference)
              << "seed " << seed << " cmd " << cmd << " diverged";
        }
      }
    }
  }
}

TEST(PipelinedLogTest, DepthIsClampedToIndexSpace) {
  WorldConfig wc;
  wc.n = 4;
  World world(wc);
  Params params{4, 1, wc.d_bound()};
  params.set_max_indices(2);
  PipelineConfig cfg;
  cfg.depth = 1000;  // absurd: must clamp to n · max_indices = 8
  auto node = std::make_unique<PipelinedLogNode>(params, cfg, nullptr);
  auto* raw = node.get();
  world.set_behavior(0, std::move(node));
  world.start();
  EXPECT_EQ(raw->depth(), 8u);
}

}  // namespace
}  // namespace ssbft
