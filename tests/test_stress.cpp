// Stress and edge-configuration tests: adversary cocktails (every Byzantine
// node runs a different strategy), extreme model parameters, large
// clusters, and repeated transient faults.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/adversaries.hpp"
#include "harness/metrics.hpp"
#include "harness/runner.hpp"

namespace ssbft {
namespace {

TEST(StressTest, MixedAdversaryCocktail) {
  // n = 13, f = 4: four Byzantine nodes each running a different attack —
  // noise flood, replay, quorum forging, and an equivocating would-be
  // General — simultaneously, while a correct General works.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Scenario sc;
    sc.n = 13;
    sc.f = 4;
    sc.byz_nodes = {9, 10, 11, 12};
    sc.seed = seed;
    sc.run_for = milliseconds(500);
    const Params params = sc.make_params();
    const Duration gap = params.delta_0() + 5 * params.d();
    for (int i = 0; i < 4; ++i) {
      sc.with_proposal(milliseconds(10) + i * gap, 0, 50 + Value(i));
    }
    Cluster cluster(sc);
    cluster.world().set_behavior(
        9, std::make_unique<RandomNoiseAdversary>(microseconds(400)));
    cluster.world().set_behavior(
        10, std::make_unique<ReplayAdversary>(milliseconds(6)));
    cluster.world().set_behavior(
        11, std::make_unique<QuorumFaker>(GeneralId{0}, 666, milliseconds(1),
                                          std::vector<NodeId>{0, 1, 2, 3}));
    cluster.world().set_behavior(
        12, std::make_unique<EquivocatingGeneral>(70, 71, milliseconds(4)));
    cluster.run();

    const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                                cluster.correct_count(), params);
    EXPECT_EQ(m.agreement_violations, 0u) << "seed " << seed;
    EXPECT_EQ(m.validity_violations, 0u) << "seed " << seed;
    // The phantom value 666 is never decided (IA-2 unforgeability).
    for (const auto& d : cluster.decisions()) {
      EXPECT_NE(d.decision.value, 666u);
    }
  }
}

TEST(StressTest, LargeClusterWithFullFaultBudget) {
  Scenario sc;
  sc.n = 31;
  sc.f = 10;
  sc.with_tail_faults(10);
  sc.adversary = AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  sc.with_proposal(milliseconds(5), 0, 7);
  sc.run_for = milliseconds(200);
  sc.seed = 17;
  Cluster cluster(sc);
  cluster.run();
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.agreement_violations, 0u);
  EXPECT_EQ(m.validity_violations, 0u);
  EXPECT_LE(m.max_decision_skew, 2 * cluster.params().d());
}

TEST(StressTest, TinyDeltaAndLargeDrift) {
  // δ = 50µs with ρ = 1% (10⁴× the paper's typical drift): the derived d
  // absorbs it and the protocol still meets its bounds.
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.delta = microseconds(50);
  sc.pi = microseconds(5);
  sc.rho = 0.01;
  sc.with_proposal(milliseconds(1), 0, 7);
  sc.run_for = milliseconds(50);
  sc.seed = 23;
  Cluster cluster(sc);
  cluster.run();
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.validity_violations, 0u);
  EXPECT_EQ(m.agreement_violations, 0u);
}

TEST(StressTest, ZeroProcessingDelay) {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.pi = Duration{1};  // effectively instant processing
  sc.with_proposal(milliseconds(2), 0, 7);
  sc.run_for = milliseconds(60);
  Cluster cluster(sc);
  cluster.run();
  EXPECT_EQ(cluster.decisions().size(), 4u);
}

TEST(StressTest, RepeatedTransientFaults) {
  // Hit the system with a fresh transient fault every ∆stb, and verify it
  // re-converges after each one.
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.adversary = AdversaryKind::kNoise;
  sc.seed = 31;
  sc.run_for = milliseconds(1);
  Cluster cluster(sc);
  const Params& params = cluster.params();
  cluster.world().start();

  const Duration epoch = params.delta_stb() + milliseconds(120);
  std::uint32_t recovered = 0;
  for (int round = 0; round < 3; ++round) {
    const Duration base = round * epoch;
    cluster.world().run_until(RealTime::zero() + base + milliseconds(1));
    FaultInjector injector(cluster.world());
    TransientFaultConfig fault;
    fault.spurious_per_node = 48;
    injector.transient_fault(fault);
    cluster.propose_at(base + params.delta_stb() + milliseconds(1), 0,
                       300 + Value(round));
    cluster.world().run_until(RealTime::zero() + base + epoch);

    std::uint32_t decided = 0;
    for (const auto& d : cluster.decisions()) {
      if (d.decision.decided() && d.decision.value == 300 + Value(round)) {
        ++decided;
      }
    }
    if (decided == cluster.correct_count()) ++recovered;
  }
  EXPECT_EQ(recovered, 3u);

  const auto m =
      evaluate_run(cluster.decisions(), {}, cluster.correct_count(), params);
  EXPECT_EQ(m.agreement_violations, 0u);
}

TEST(StressTest, ManyConcurrentGenerals) {
  // Every correct node proposes at once: n−f concurrent instances.
  Scenario sc;
  sc.n = 10;
  sc.f = 3;
  sc.with_tail_faults(3);
  sc.run_for = milliseconds(300);
  sc.seed = 41;
  for (NodeId g = 0; g < 7; ++g) {
    sc.with_proposal(milliseconds(5), g, 900 + Value(g));
  }
  Cluster cluster(sc);
  cluster.run();
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.agreement_violations, 0u);
  EXPECT_EQ(m.validity_violations, 0u);
  EXPECT_EQ(m.executions, 7u);
}

}  // namespace
}  // namespace ssbft
