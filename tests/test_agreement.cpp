// Protocol-level tests: ss-Byz-Agree against §3's Agreement / Validity /
// Termination / Timeliness properties, under correct and Byzantine
// Generals, including custom in-test adversaries.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "adversary/adversaries.hpp"
#include "harness/metrics.hpp"
#include "harness/runner.hpp"

namespace ssbft {
namespace {

// --- Validity -------------------------------------------------------------

TEST(AgreementTest, ValidityAcrossClusterSizes) {
  for (std::uint32_t n : {4u, 7u, 10u, 13u}) {
    const std::uint32_t f = (n - 1) / 3;
    Scenario sc;
    sc.n = n;
    sc.f = f;
    sc.with_tail_faults(f);
    sc.with_proposal(milliseconds(5), 0, 77);
    sc.run_for = milliseconds(300);
    sc.seed = 100 + n;
    Cluster cluster(sc);
    cluster.run();
    const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                                cluster.correct_count(), cluster.params());
    EXPECT_EQ(m.validity_violations, 0u) << "n=" << n;
    EXPECT_EQ(m.agreement_violations, 0u) << "n=" << n;
  }
}

TEST(AgreementTest, DecisionValueIsTheGeneralsValue) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.with_proposal(milliseconds(5), 3, 0xDEADBEEF);  // General = node 3
  sc.run_for = milliseconds(300);
  Cluster cluster(sc);
  cluster.run();
  ASSERT_EQ(cluster.decisions().size(), 5u);
  for (const auto& d : cluster.decisions()) {
    EXPECT_EQ(d.decision.value, 0xDEADBEEFu);
    EXPECT_EQ(d.decision.general.node, 3u);
  }
}

// --- Timeliness -------------------------------------------------------------

TEST(AgreementTest, Timeliness1a_DecisionSkewWithin2dUnderValidity) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    Scenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.with_tail_faults(2);
    sc.with_proposal(milliseconds(5), 0, 7);
    sc.run_for = milliseconds(300);
    sc.seed = seed;
    Cluster cluster(sc);
    cluster.run();
    const auto execs = cluster_executions(cluster.decisions(), cluster.params());
    ASSERT_EQ(execs.size(), 1u);
    EXPECT_LE(execs[0].decision_skew(), 2 * cluster.params().d())
        << "seed " << seed;
  }
}

TEST(AgreementTest, Timeliness1b_AnchorSkewWithin6d) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    Scenario sc;
    sc.n = 10;
    sc.f = 3;
    sc.with_tail_faults(3);
    sc.with_proposal(milliseconds(5), 0, 7);
    sc.run_for = milliseconds(400);
    sc.seed = seed;
    Cluster cluster(sc);
    cluster.run();
    const auto execs = cluster_executions(cluster.decisions(), cluster.params());
    ASSERT_EQ(execs.size(), 1u);
    EXPECT_LE(execs[0].tau_g_skew(), 6 * cluster.params().d());
  }
}

TEST(AgreementTest, Timeliness1d_AnchorPrecedesDecisionWithinDeltaAgr) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.with_proposal(milliseconds(5), 0, 7);
  sc.run_for = milliseconds(300);
  Cluster cluster(sc);
  cluster.run();
  ASSERT_FALSE(cluster.decisions().empty());
  for (const auto& d : cluster.decisions()) {
    EXPECT_LE(d.tau_g_real, d.real_at);                       // rt(τG) ≤ rt(τq)
    EXPECT_LE(d.real_at - d.tau_g_real, cluster.params().delta_agr());
  }
}

TEST(AgreementTest, Timeliness3_TerminationWithinDeltaAgr) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.with_proposal(milliseconds(5), 0, 7);
  sc.run_for = milliseconds(400);
  Cluster cluster(sc);
  cluster.run();
  const RealTime t0 = cluster.proposals().at(0).real_at;
  ASSERT_EQ(cluster.decisions().size(), 5u);
  for (const auto& d : cluster.decisions()) {
    EXPECT_LE(d.real_at - t0, cluster.params().delta_agr() + 7 * cluster.params().d());
  }
}

// --- Byzantine Generals: Agreement must still hold --------------------------

TEST(AgreementTest, EquivocatingGeneralNeverSplitsDecisions) {
  for (std::uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    Scenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.byz_nodes = {0, 6};  // node 0 equivocates as General; node 6 silent
    sc.adversary = AdversaryKind::kEquivocatingGeneral;
    sc.run_for = milliseconds(500);
    sc.seed = seed;
    Cluster cluster(sc);
    cluster.run();
    const auto m = evaluate_run(cluster.decisions(), {}, cluster.correct_count(),
                                cluster.params());
    EXPECT_EQ(m.agreement_violations, 0u) << "seed " << seed;
  }
}

TEST(AgreementTest, StaggeredGeneralNeverSplitsDecisions) {
  for (std::uint64_t seed : {31u, 32u, 33u, 34u}) {
    Scenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.byz_nodes = {0};
    sc.adversary = AdversaryKind::kStaggeredGeneral;
    sc.stagger_span = milliseconds(6);
    sc.run_for = milliseconds(500);
    sc.seed = seed;
    Cluster cluster(sc);
    cluster.run();
    const auto m = evaluate_run(cluster.decisions(), {}, cluster.correct_count(),
                                cluster.params());
    EXPECT_EQ(m.agreement_violations, 0u) << "seed " << seed;
  }
}

TEST(AgreementTest, SpamGeneralCannotCauseDisagreementNorStarvation) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.byz_nodes = {5, 6};
  sc.adversary = AdversaryKind::kSpamGeneral;
  sc.adversary_period = milliseconds(2);  // violates ∆0 = 13d wildly
  sc.with_proposal(milliseconds(40), 0, 7);  // correct General in parallel
  sc.run_for = milliseconds(400);
  sc.seed = 41;
  Cluster cluster(sc);
  cluster.run();
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.agreement_violations, 0u);
  // The correct General's agreement still goes through (no starvation).
  EXPECT_EQ(m.validity_violations, 0u);
}

// A Byzantine General that initiates properly, then crashes mid-protocol
// (sends Initiator but never participates further).
class CrashAfterInitiate : public NodeBehavior {
 public:
  explicit CrashAfterInitiate(Value v, Duration at) : v_(v), at_(at) {}
  void on_start(NodeContext& ctx) override { ctx.set_timer_after(at_, 0); }
  void on_message(NodeContext&, const WireMessage&) override {}
  void on_timer(NodeContext& ctx, std::uint64_t) override {
    if (sent_) return;
    sent_ = true;
    WireMessage msg;
    msg.kind = MsgKind::kInitiator;
    msg.general = GeneralId{ctx.id()};
    msg.value = v_;
    ctx.send_all(msg);
  }

 private:
  Value v_;
  Duration at_;
  bool sent_ = false;
};

TEST(AgreementTest, GeneralCrashingAfterInitiateStillAgreesOrAllAbort) {
  // n−1 correct nodes receive the initiation; the General contributes no
  // support/echo afterwards. With n−f correct nodes the wave completes
  // without it — and whatever happens, Agreement holds.
  for (std::uint64_t seed : {51u, 52u, 53u}) {
    Scenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.byz_nodes = {0};
    sc.run_for = milliseconds(500);
    sc.seed = seed;
    Cluster cluster(sc);
    cluster.world().set_behavior(
        0, std::make_unique<CrashAfterInitiate>(9, milliseconds(5)));
    cluster.run();
    const auto execs = cluster_executions(cluster.decisions(), cluster.params());
    for (const auto& e : execs) {
      EXPECT_TRUE(e.agreement_holds()) << "seed " << seed;
      // Relay: if anyone decided, everyone decided (6 correct nodes).
      if (e.decided_count() > 0) {
        EXPECT_EQ(e.decided_count(), 6u);
      }
    }
  }
}

// A General that initiates to only a subset of the nodes.
class PartialInitiator : public NodeBehavior {
 public:
  PartialInitiator(Value v, Duration at, std::uint32_t count)
      : v_(v), at_(at), count_(count) {}
  void on_start(NodeContext& ctx) override { ctx.set_timer_after(at_, 0); }
  void on_message(NodeContext&, const WireMessage&) override {}
  void on_timer(NodeContext& ctx, std::uint64_t) override {
    WireMessage msg;
    msg.kind = MsgKind::kInitiator;
    msg.general = GeneralId{ctx.id()};
    msg.value = v_;
    for (NodeId dest = 0; dest < count_ && dest < ctx.n(); ++dest) {
      ctx.send(dest, msg);
    }
  }

 private:
  Value v_;
  Duration at_;
  std::uint32_t count_;
};

TEST(AgreementTest, PartialInitiationAllOrNothing) {
  // Sweep the subset size; in every case either all 6 correct nodes decide
  // the same value or none decides (⊥/no-return) — never a mix.
  for (std::uint32_t subset = 1; subset <= 6; ++subset) {
    for (std::uint64_t seed : {61u, 62u}) {
      Scenario sc;
      sc.n = 7;
      sc.f = 2;
      sc.byz_nodes = {6};
      sc.run_for = milliseconds(500);
      sc.seed = seed + subset;
      Cluster cluster(sc);
      cluster.world().set_behavior(
          6, std::make_unique<PartialInitiator>(9, milliseconds(5), subset));
      cluster.run();
      const auto execs =
          cluster_executions(cluster.decisions(), cluster.params());
      for (const auto& e : execs) {
        EXPECT_TRUE(e.agreement_holds())
            << "subset=" << subset << " seed=" << seed;
        if (e.decided_count() > 0) {
          EXPECT_EQ(e.decided_count(), 6u)
              << "subset=" << subset << " seed=" << seed;
        }
      }
    }
  }
}

// --- Recurrent agreement -----------------------------------------------------

TEST(AgreementTest, RecurrentProposalsAllDecide) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.run_for = milliseconds(600);
  sc.seed = 71;
  const Duration gap = sc.make_params().delta_0() + 5 * sc.make_params().d();
  for (int i = 0; i < 5; ++i) {
    sc.with_proposal(milliseconds(5) + i * gap, 0, 100 + Value(i));
  }
  Cluster cluster(sc);
  cluster.run();
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.validity_violations, 0u);
  EXPECT_EQ(m.agreement_violations, 0u);
  EXPECT_EQ(m.executions, 5u);
}

TEST(AgreementTest, MultipleGeneralsRunConcurrently) {
  // Different Generals have independent instances; concurrent agreements
  // must not interfere.
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.with_proposal(milliseconds(5), 0, 10);
  sc.with_proposal(milliseconds(5), 1, 20);
  sc.with_proposal(milliseconds(6), 2, 30);
  sc.run_for = milliseconds(400);
  sc.seed = 81;
  Cluster cluster(sc);
  cluster.run();
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.validity_violations, 0u);
  EXPECT_EQ(m.agreement_violations, 0u);
  EXPECT_EQ(m.executions, 3u);
}

TEST(AgreementTest, LaggardGeneralDoesNotFalselyTriggerIg3Backoff) {
  // Regression: with seed 7 and rotating Generals, General 2's own inbound
  // messages once arrived so bunched that it reached N4 via Block N's
  // amplification without ever executing M4; the IG3 monitor then wrongly
  // declared the invocation failed and silenced the General for ∆reset.
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.adversary = AdversaryKind::kNoise;
  sc.seed = 7;
  const Params params = sc.make_params();
  const Duration slot = params.delta_0() + 5 * params.d();
  for (int i = 0; i < 12; ++i) {
    sc.with_proposal(milliseconds(5) + i * slot, NodeId(i % 3),
                     0xC0DE0000 + Value(i));
  }
  sc.run_for = milliseconds(5) + 12 * slot + milliseconds(100);
  Cluster cluster(sc);
  cluster.run();
  for (const auto& p : cluster.proposals()) {
    EXPECT_EQ(p.status, ProposeStatus::kSent)
        << "general " << p.general << " refused: " << to_string(p.status);
  }
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.validity_violations, 0u);
  EXPECT_EQ(m.executions, 12u);
}

TEST(AgreementTest, ProposePacingIsEnforced) {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.with_proposal(milliseconds(5), 0, 1);
  sc.with_proposal(milliseconds(6), 0, 2);  // < ∆0 after the first: refused
  sc.run_for = milliseconds(200);
  Cluster cluster(sc);
  cluster.run();
  ASSERT_EQ(cluster.proposals().size(), 2u);
  EXPECT_EQ(cluster.proposals()[0].status, ProposeStatus::kSent);
  EXPECT_EQ(cluster.proposals()[1].status, ProposeStatus::kTooSoon);
}

TEST(AgreementTest, SameValuePacingUsesDeltaV) {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  const Params params = sc.make_params();
  sc.with_proposal(milliseconds(5), 0, 1);
  // After ∆0 but before ∆v, same value: refused with the specific status.
  sc.with_proposal(milliseconds(5) + params.delta_0() + milliseconds(2), 0, 1);
  // Different value at the same spacing: accepted.
  sc.with_proposal(milliseconds(5) + 2 * (params.delta_0() + milliseconds(2)),
                   0, 2);
  sc.run_for = milliseconds(400);
  Cluster cluster(sc);
  cluster.run();
  ASSERT_EQ(cluster.proposals().size(), 3u);
  EXPECT_EQ(cluster.proposals()[0].status, ProposeStatus::kSent);
  EXPECT_EQ(cluster.proposals()[1].status, ProposeStatus::kTooSoonSameValue);
  EXPECT_EQ(cluster.proposals()[2].status, ProposeStatus::kSent);
}

// --- Separation (Timeliness-4) ----------------------------------------------

TEST(AgreementTest, Separation_DistinctValuesAnchor4dApart) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  const Duration gap = sc.make_params().delta_0() + 5 * sc.make_params().d();
  sc.with_proposal(milliseconds(5), 0, 1);
  sc.with_proposal(milliseconds(5) + gap, 0, 2);
  sc.run_for = milliseconds(500);
  sc.seed = 91;
  Cluster cluster(sc);
  cluster.run();
  // Pairwise: decisions on different values by the same General must have
  // anchors > 4d apart in real time.
  for (const auto& a : cluster.decisions()) {
    for (const auto& b : cluster.decisions()) {
      if (!a.decision.decided() || !b.decision.decided()) continue;
      if (a.decision.value == b.decision.value) continue;
      EXPECT_GT(abs(a.tau_g_real - b.tau_g_real), 4 * cluster.params().d());
    }
  }
}

// --- Noise / replay resilience ------------------------------------------------

TEST(AgreementTest, LateAnchorReplayDecidesViaSPathExactlyOnce) {
  // Regression: a node whose I-accept arrives *after* it already buffered a
  // complete round-1 broadcast decides synchronously inside set_anchor's
  // replay (S-path); Block R must not fire a second return. n=13 with noise
  // faults and seed 3003 reproduced the original double-return.
  Scenario sc;
  sc.n = 13;
  sc.f = 4;
  sc.with_tail_faults(0);
  sc.adversary = AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(1);
  sc.with_proposal(milliseconds(5), 0, 7);
  sc.run_for = milliseconds(400);
  sc.seed = 3003;
  Cluster cluster(sc);
  cluster.run();  // must not abort on the !returned_ invariant
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.agreement_violations, 0u);
  EXPECT_EQ(m.validity_violations, 0u);
  // Each correct node returns exactly once for this execution.
  EXPECT_EQ(cluster.decisions().size(), cluster.correct_count());
}

TEST(AgreementTest, NoiseFloodDoesNotBreakAgreement) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.adversary = AdversaryKind::kNoise;
  sc.adversary_period = microseconds(300);
  sc.with_proposal(milliseconds(10), 0, 7);
  sc.run_for = milliseconds(400);
  sc.seed = 101;
  Cluster cluster(sc);
  cluster.run();
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.agreement_violations, 0u);
  EXPECT_EQ(m.validity_violations, 0u);
}

TEST(AgreementTest, ReplayedTrafficDoesNotForgeASecondDecision) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.adversary = AdversaryKind::kReplay;
  sc.adversary_period = milliseconds(1);  // replay delay = 8ms
  sc.with_proposal(milliseconds(10), 0, 7);
  sc.run_for = milliseconds(500);
  sc.seed = 111;
  Cluster cluster(sc);
  cluster.run();
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.agreement_violations, 0u);
  EXPECT_EQ(m.validity_violations, 0u);
  // Exactly one execution for the General — replays must not spawn another.
  const auto execs = cluster_executions(cluster.decisions(), cluster.params());
  std::uint32_t for_general0 = 0;
  for (const auto& e : execs) {
    if (e.general.node == 0) ++for_general0;
  }
  EXPECT_EQ(for_general0, 1u);
}

}  // namespace
}  // namespace ssbft
