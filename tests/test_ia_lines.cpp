// White-box, line-level tests of the Initiator-Accept blocks (Fig. 2),
// driven through a MockContext with exact local-time control. Each test
// probes one line's window/threshold at its boundary.
//
// Cluster shape throughout: n = 7, f = 2 ⇒ quorums n−f = 5, n−2f = 3.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/initiator_accept.hpp"
#include "core/params.hpp"
#include "mock_context.hpp"

namespace ssbft {
namespace {

constexpr NodeId kGeneral = 0;
constexpr Value kM = 7;

class IaLineTest : public ::testing::Test {
 protected:
  IaLineTest()
      : params_(7, 2, milliseconds(1)), ctx_(/*id=*/1, /*n=*/7) {
    ia_ = std::make_unique<InitiatorAccept>(
        params_, GeneralId{kGeneral},
        [this](Value m, LocalTime tau_g) { accepts_.push_back({m, tau_g}); });
  }

  Duration d() const { return params_.d(); }

  void deliver(MsgKind kind, NodeId sender, Value m = kM) {
    WireMessage msg;
    msg.kind = kind;
    msg.sender = sender;
    msg.general = GeneralId{kGeneral};
    msg.value = m;
    ia_->on_message(ctx_, msg);
  }

  /// Deliver `count` messages from distinct senders, `gap` apart in time.
  void deliver_wave(MsgKind kind, std::uint32_t count, Duration gap,
                    Value m = kM, NodeId first_sender = 0) {
    for (std::uint32_t i = 0; i < count; ++i) {
      if (i > 0) ctx_.advance(gap);
      deliver(kind, first_sender + NodeId(i), m);
    }
  }

  Params params_;
  MockContext ctx_;
  std::unique_ptr<InitiatorAccept> ia_;
  std::vector<std::pair<Value, LocalTime>> accepts_;
};

// --- Block K ---------------------------------------------------------------

TEST_F(IaLineTest, K_InvokeSendsSupportAndRecordsIValue) {
  const LocalTime before = ctx_.local_now();
  ia_->invoke(ctx_, kM);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kSupport), 1u);
  // K2: recording time = τq − d.
  ASSERT_TRUE(ia_->i_value_of(kM).has_value());
  EXPECT_EQ(*ia_->i_value_of(kM), before - d());
}

TEST_F(IaLineTest, K1_BlocksSecondInvokeWithinD) {
  ia_->invoke(ctx_, kM);
  ctx_.clear_sent();
  ctx_.advance(d() / 2);
  ia_->invoke(ctx_, kM);  // support sent within [τ−d, τ] ⇒ refused
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kSupport), 0u);
}

TEST_F(IaLineTest, K1_BlocksDifferentValueWhileIValuesHeld) {
  ia_->invoke(ctx_, kM);
  ctx_.clear_sent();
  ctx_.advance(3 * d());
  ia_->invoke(ctx_, kM + 1);  // i_values[G, kM] ≠ ⊥ ⇒ refused
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kSupport), 0u);
}

TEST_F(IaLineTest, K1_BlocksWhileLastGmRemembered) {
  ia_->invoke(ctx_, kM);
  // i_values expire after ∆rmv, but lastq(G,m) persists 2∆rmv + 9d.
  ctx_.advance(params_.delta_rmv() + 2 * d());
  ctx_.clear_sent();
  ia_->invoke(ctx_, kM);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kSupport), 0u);

  // Past 2∆rmv + 9d (+d for the "at τq − d" history probe), it passes.
  ctx_.advance(params_.delta_rmv() + 9 * d());
  ctx_.clear_sent();
  ia_->invoke(ctx_, kM);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kSupport), 1u);
}

// --- Block L ---------------------------------------------------------------

TEST_F(IaLineTest, L1_RequiresNMinus2fDistinctSupports) {
  deliver_wave(MsgKind::kSupport, 2, microseconds(50));  // one short of 3
  EXPECT_FALSE(ia_->i_value_of(kM).has_value());
  ctx_.advance(microseconds(50));
  deliver(MsgKind::kSupport, 6);
  EXPECT_TRUE(ia_->i_value_of(kM).has_value());
}

TEST_F(IaLineTest, L1_DuplicateSendersDoNotCount) {
  for (int i = 0; i < 5; ++i) {
    deliver(MsgKind::kSupport, /*sender=*/3);
    ctx_.advance(microseconds(10));
  }
  EXPECT_FALSE(ia_->i_value_of(kM).has_value());
}

TEST_F(IaLineTest, L1_WindowIsAtMost4d) {
  // Three supports spread across > 4d never sit in one window together.
  deliver(MsgKind::kSupport, 0);
  ctx_.advance(2 * d() + Duration{1});
  deliver(MsgKind::kSupport, 1);
  ctx_.advance(2 * d() + Duration{1});
  deliver(MsgKind::kSupport, 2);
  EXPECT_FALSE(ia_->i_value_of(kM).has_value());
}

TEST_F(IaLineTest, L2_RecordingIsNowMinusAlphaMinus2d) {
  // Three supports at the same instant: α = 0, recording = τq − 2d.
  const LocalTime t = ctx_.local_now();
  deliver(MsgKind::kSupport, 0);
  deliver(MsgKind::kSupport, 1);
  deliver(MsgKind::kSupport, 2);
  ASSERT_TRUE(ia_->i_value_of(kM).has_value());
  EXPECT_EQ(*ia_->i_value_of(kM), t - 2 * d());
}

TEST_F(IaLineTest, L2_TakesMaxOverReEvaluations) {
  // An early tight window sets a recording; later fresher supports raise it.
  deliver_wave(MsgKind::kSupport, 3, Duration{0});
  const LocalTime first = *ia_->i_value_of(kM);
  // A full fresh n−2f window (three newer senders) shifts the shortest
  // window forward and raises the recording.
  ctx_.advance(d());
  deliver(MsgKind::kSupport, 3);
  deliver(MsgKind::kSupport, 4);
  deliver(MsgKind::kSupport, 5);
  ASSERT_TRUE(ia_->i_value_of(kM).has_value());
  EXPECT_GT(*ia_->i_value_of(kM), first);
}

TEST_F(IaLineTest, L3_ApproveNeedsNMinusFWithin2d) {
  // 5 supports spread exactly over 2d: window [τ−2d, τ] still contains all.
  deliver_wave(MsgKind::kSupport, 5, d() / 2);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kApprove), 1u);
}

TEST_F(IaLineTest, L3_SupportsSpreadBeyond2dDoNotApprove) {
  // Gaps of 0.7d between 5 supports ⇒ span 2.8d > 2d at every evaluation.
  deliver_wave(MsgKind::kSupport, 5, (7 * d()) / 10);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kApprove), 0u);
}

// --- Block M ---------------------------------------------------------------

TEST_F(IaLineTest, M2_ReadyFlagAtNMinus2fApprovesWithin5d) {
  deliver_wave(MsgKind::kApprove, 3, d());
  EXPECT_TRUE(ia_->ready_set(kM));
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kReady), 0u);  // M3 not yet (3 < 5)
}

TEST_F(IaLineTest, M3_ReadySentAtNMinusFApprovesWithin3d) {
  deliver_wave(MsgKind::kApprove, 5, d() / 2);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kReady), 1u);
}

TEST_F(IaLineTest, M3_ApprovesSpreadBeyond3dDoNotSendReady) {
  deliver_wave(MsgKind::kApprove, 5, d());  // span 4d > 3d
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kReady), 0u);
  EXPECT_TRUE(ia_->ready_set(kM));  // but M1's 5d window did fire
}

// --- Block N ---------------------------------------------------------------

TEST_F(IaLineTest, N_IsUntimedButNeedsReadyFlag) {
  // 5 readys spread over 8d: no time window applies to Block N...
  deliver_wave(MsgKind::kReady, 5, 2 * d());
  EXPECT_TRUE(accepts_.empty());  // ...but readyG,m was never set
  // Now the approve quorum arrives; ready flag set; N4 fires on the next
  // event even though the ready messages are old.
  deliver_wave(MsgKind::kApprove, 3, Duration{0}, kM, 0);
  ASSERT_EQ(accepts_.size(), 1u);
  EXPECT_EQ(accepts_[0].first, kM);
}

TEST_F(IaLineTest, N2_AmplifiesAtNMinus2fReadys) {
  deliver_wave(MsgKind::kApprove, 3, Duration{0});  // sets ready flag
  ctx_.clear_sent();
  deliver_wave(MsgKind::kReady, 3, microseconds(10));
  EXPECT_GE(ctx_.broadcasts_of(MsgKind::kReady), 1u);  // N2 amplification
  EXPECT_TRUE(accepts_.empty());                       // N3 needs 5
}

TEST_F(IaLineTest, N4_SetsAnchorFromIValuesAndClearsState) {
  const LocalTime t0 = ctx_.local_now();
  deliver_wave(MsgKind::kSupport, 5, d() / 4);  // sets i_values + approve
  deliver_wave(MsgKind::kApprove, 5, Duration{0});
  deliver_wave(MsgKind::kReady, 5, Duration{0});
  ASSERT_EQ(accepts_.size(), 1u);
  // Anchor = recording time from L2, in the past relative to the accept.
  EXPECT_LT(accepts_[0].second, ctx_.local_now());
  EXPECT_GE(accepts_[0].second, t0 - 2 * d() - Duration{1});
  // i_values cleared; (G,m) messages erased.
  EXPECT_FALSE(ia_->i_value_of(kM).has_value());
  EXPECT_EQ(ia_->log_size(), 0u);
}

TEST_F(IaLineTest, N4_IgnoreWindowBlocksReplaysFor3d) {
  deliver_wave(MsgKind::kSupport, 5, Duration{0});
  deliver_wave(MsgKind::kApprove, 5, Duration{0});
  deliver_wave(MsgKind::kReady, 5, Duration{0});
  ASSERT_EQ(accepts_.size(), 1u);
  // Replay the whole wave within 3d: dropped wholesale.
  ctx_.advance(d());
  deliver_wave(MsgKind::kSupport, 5, Duration{0});
  deliver_wave(MsgKind::kApprove, 5, Duration{0});
  deliver_wave(MsgKind::kReady, 5, Duration{0});
  EXPECT_EQ(accepts_.size(), 1u);
  EXPECT_EQ(ia_->log_size(), 0u);
}

TEST_F(IaLineTest, N4_AtMostOncePerExecution) {
  deliver_wave(MsgKind::kSupport, 5, Duration{0});
  deliver_wave(MsgKind::kApprove, 5, Duration{0});
  deliver_wave(MsgKind::kReady, 7, Duration{0});  // even extra readys
  EXPECT_EQ(accepts_.size(), 1u);
}

// --- resend suppression ------------------------------------------------------

TEST_F(IaLineTest, ResendCappedAtOncePerD) {
  deliver_wave(MsgKind::kSupport, 5, Duration{0});  // L4 fires
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kApprove), 1u);
  // Condition still true on further arrivals within d: no duplicate send.
  ctx_.advance(d() / 2);
  deliver(MsgKind::kSupport, 5);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kApprove), 1u);
  // Past d, the line re-fires and re-sends.
  ctx_.advance(d());
  deliver(MsgKind::kSupport, 6);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kApprove), 2u);
}

// --- cleanup ----------------------------------------------------------------

TEST_F(IaLineTest, MessagesDecayAfterDeltaRmv) {
  deliver_wave(MsgKind::kSupport, 2, Duration{0});
  EXPECT_EQ(ia_->log_size(), 2u);
  ctx_.advance(params_.delta_rmv() + Duration{1});
  deliver(MsgKind::kApprove, 0, kM + 1);  // any event triggers cleanup
  EXPECT_EQ(ia_->log_size(), 1u);         // only the fresh approve remains
}

TEST_F(IaLineTest, FutureStampedStateIsPurged) {
  // Plant garbage via scramble, then verify one cleanup pass sanitizes:
  // no future i_values survive.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    ia_->scramble(ctx_, rng);
    deliver(MsgKind::kSupport, 0, kM);  // triggers cleanup
    for (Value m : ia_->i_value_keys()) {
      const auto v = ia_->i_value_of(m);
      if (v) EXPECT_LE(*v, ctx_.local_now());
    }
    ia_->reset();
  }
}

TEST_F(IaLineTest, ReadyFlagDecaysAfterDeltaRmv) {
  deliver_wave(MsgKind::kApprove, 3, Duration{0});
  EXPECT_TRUE(ia_->ready_set(kM));
  ctx_.advance(params_.delta_rmv() + Duration{1});
  deliver(MsgKind::kSupport, 0, kM + 2);  // trigger cleanup
  EXPECT_FALSE(ia_->ready_set(kM));
}

// --- uniqueness mechanics -----------------------------------------------------

TEST_F(IaLineTest, SupportForSecondValueBlockedAfterAccept) {
  deliver_wave(MsgKind::kSupport, 5, Duration{0});
  deliver_wave(MsgKind::kApprove, 5, Duration{0});
  deliver_wave(MsgKind::kReady, 5, Duration{0});
  ASSERT_EQ(accepts_.size(), 1u);
  // lastq(G) is set: an invocation for a different value within ∆0 − 6d is
  // refused at Block K.
  ctx_.advance(4 * d());
  ctx_.clear_sent();
  ia_->invoke(ctx_, kM + 1);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kSupport), 0u);
  // After ∆0 − 6d (= 7d), lastq(G) expired; a new value is acceptable.
  ctx_.advance(4 * d());
  ia_->invoke(ctx_, kM + 1);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kSupport), 1u);
}

}  // namespace
}  // namespace ssbft
