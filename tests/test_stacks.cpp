// Integration: the unified deployment matrix.
//
// Every StackKind must build, start, and run through the same
// (Scenario, seed) → Cluster path with tail faults at n ∈ {4, 7, 10}, and
// report through its probe without violating the stack's core guarantee:
//   kAgree / kBaselineTps — Agreement and Validity hold;
//   kPulse               — complete pulses, skew ≤ 3d (Timeliness-1a);
//   kClockSync           — clocks settle inside the precision bound;
//   kReplicatedLog       — committed logs identical at correct nodes;
//   kPipelinedLog        — settled slots identical wherever both settled.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "app/pipelined_log.hpp"
#include "app/replicated_log.hpp"
#include "clocksync/clock_sync.hpp"
#include "harness/metrics.hpp"
#include "harness/runner.hpp"
#include "harness/stack_registry.hpp"
#include "pulse/pulse_sync.hpp"

namespace ssbft {
namespace {

Scenario matrix_scenario(StackKind stack, std::uint32_t n,
                         std::uint64_t seed) {
  Scenario sc;
  sc.stack = stack;
  sc.n = n;
  sc.f = (n - 1) / 3;
  sc.with_tail_faults(sc.f);
  // The TPS baseline assumes silence is the only benign failure its phase
  // grid must absorb; every self-stabilizing stack gets active noise.
  sc.adversary = stack == StackKind::kBaselineTps ? AdversaryKind::kSilent
                                                  : AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  sc.seed = seed;
  return sc;
}

class StackMatrixTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StackMatrixTest, RegistryCoversEveryKind) {
  for (std::uint32_t k = 0; k < kStackKindCount; ++k) {
    EXPECT_TRUE(StackRegistry::instance().has(StackKind(k)))
        << "no factory for " << to_string(StackKind(k));
  }
}

TEST_P(StackMatrixTest, Agree) {
  const std::uint32_t n = GetParam();
  Scenario sc = matrix_scenario(StackKind::kAgree, n, 11);
  sc.with_proposal(milliseconds(2), 0, 42);
  sc.run_for = milliseconds(150);
  Cluster cluster(sc);
  cluster.run();

  ASSERT_FALSE(cluster.decisions().empty());
  const auto m = evaluate_run(cluster.decisions(), cluster.proposals(),
                              cluster.correct_count(), cluster.params());
  EXPECT_EQ(m.agreement_violations, 0u);
  EXPECT_EQ(m.validity_violations, 0u);
}

TEST_P(StackMatrixTest, Pulse) {
  const std::uint32_t n = GetParam();
  Scenario sc = matrix_scenario(StackKind::kPulse, n, 12);
  Cluster cluster(sc);
  cluster.start();
  const Duration cycle = cluster.node<PulseSyncNode>(0)->cycle();
  cluster.world().run_until(RealTime::zero() + cluster.params().delta_stb() +
                            10 * cycle);

  auto stats = evaluate_pulses(cluster.probe().pulses(),
                               cluster.correct_count(), cycle);
  EXPECT_GT(stats.complete_pulses, 0u);
  if (!stats.skew.empty()) {
    EXPECT_LE(stats.skew.max(), double((3 * cluster.params().d()).ns()));
  }
}

TEST_P(StackMatrixTest, ClockSync) {
  const std::uint32_t n = GetParam();
  Scenario sc = matrix_scenario(StackKind::kClockSync, n, 13);
  Cluster cluster(sc);
  cluster.start();
  const Duration cycle = cluster.node<ClockSyncNode>(0)->cycle();
  const Duration bound = cluster.node<ClockSyncNode>(0)->precision_bound();
  bool in_envelope = false;
  for (int i = 0; i < 40 && !in_envelope; ++i) {
    cluster.world().run_for(cycle / 2);
    in_envelope = clocks_settled(cluster) && clock_skew(cluster) <= bound;
  }
  EXPECT_TRUE(in_envelope) << "clocks never settled inside the bound";
  EXPECT_FALSE(cluster.probe().adjustments().empty());
  EXPECT_FALSE(cluster.probe().pulses().empty());
}

TEST_P(StackMatrixTest, ReplicatedLog) {
  const std::uint32_t n = GetParam();
  Scenario sc = matrix_scenario(StackKind::kReplicatedLog, n, 14);
  for (std::uint32_t c = 0; c < 3; ++c) {
    sc.with_proposal(Duration::zero(), NodeId(c), 100 + c);
  }
  Cluster cluster(sc);
  cluster.start();
  cluster.world().run_for(
      6 * cluster.node<ReplicatedLogNode>(0)->slot_period());

  EXPECT_FALSE(cluster.probe().commits().empty());
  const auto* head = cluster.node<ReplicatedLogNode>(0);
  ASSERT_FALSE(head->log().empty());
  for (NodeId i = 1; i < n; ++i) {
    const auto* node = cluster.node<ReplicatedLogNode>(i);
    if (node == nullptr) continue;
    EXPECT_EQ(node->log(), head->log()) << "log diverged at node " << i;
  }
}

TEST_P(StackMatrixTest, PipelinedLog) {
  const std::uint32_t n = GetParam();
  Scenario sc = matrix_scenario(StackKind::kPipelinedLog, n, 15);
  sc.pipeline.depth = 4;
  for (std::uint32_t c = 0; c < 8; ++c) {
    sc.with_proposal(Duration::zero(), NodeId(c % n), 200 + c);
  }
  Cluster cluster(sc);
  cluster.start();
  cluster.world().run_for(
      6 * cluster.node<PipelinedLogNode>(0)->slot_period());

  EXPECT_FALSE(cluster.probe().deliveries().empty());
  auto* head = cluster.node<PipelinedLogNode>(0);
  EXPECT_GT(head->delivered_upto(), 0u);
  // Wherever two correct nodes both settled a slot, the records agree.
  for (NodeId i = 1; i < n; ++i) {
    auto* node = cluster.node<PipelinedLogNode>(i);
    if (node == nullptr) continue;
    for (const auto& [slot, entry] : node->settled()) {
      const auto it = head->settled().find(slot);
      if (it == head->settled().end()) continue;
      EXPECT_EQ(it->second, entry) << "slot " << slot << " diverged";
    }
  }
}

TEST_P(StackMatrixTest, BaselineTps) {
  const std::uint32_t n = GetParam();
  Scenario sc = matrix_scenario(StackKind::kBaselineTps, n, 16);
  sc.with_proposal(milliseconds(1), 0, 7);  // queued before the 5ms anchor
  sc.run_for = milliseconds(120);
  Cluster cluster(sc);
  cluster.run();

  ASSERT_FALSE(cluster.decisions().empty());
  std::set<Value> values;
  std::set<NodeId> deciders;
  for (const auto& d : cluster.decisions()) {
    if (!d.decision.decided()) continue;
    values.insert(d.decision.value);
    deciders.insert(d.decision.node);
  }
  EXPECT_EQ(values, std::set<Value>{7});
  EXPECT_EQ(deciders.size(), cluster.correct_count());
}

INSTANTIATE_TEST_SUITE_P(Sizes, StackMatrixTest,
                         ::testing::Values(4u, 7u, 10u),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ssbft
