// TimerWheel: the hierarchical wheel must (1) never fire early beyond one
// tick of hand-over slack, never late, and never lose a timer — across slot
// edges, level cascades, the overflow horizon, and zero-delay arming;
// (2) give O(1) cancel/reschedule with ABA-safe handles; and (3) be
// *unobservable*: a wheel-backed World/ShardWorld produces bit-identical
// digests to the legacy all-in-the-heap timer path for every StackKind and
// shard count (dispatched-event counts may differ — a timer cancelled while
// still in the wheel never becomes an event, while the heap path dispatches
// a suppressed no-op; nothing downstream of dispatch can tell).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "harness/metrics.hpp"
#include "harness/sweep.hpp"
#include "sim/event_queue.hpp"
#include "sim/timer_wheel.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace ssbft {
namespace {

constexpr std::int64_t kTick = 1 << TimerWheel::kTickShift;
constexpr std::int64_t kHorizonNs =
    std::int64_t(TimerWheel::kHorizonTicks) << TimerWheel::kTickShift;

/// Advance to `t` and return the batch's handles' cookies, sorted.
std::vector<std::uint64_t> drain_cookies(TimerWheel& wheel, RealTime t) {
  std::vector<TimerWheel::Due> batch;
  wheel.advance(t, batch);
  std::vector<std::uint64_t> cookies;
  for (const auto& due : batch) {
    NodeId node;
    std::uint64_t cookie;
    EXPECT_TRUE(wheel.claim(due.handle, node, cookie));
    cookies.push_back(cookie);
  }
  std::sort(cookies.begin(), cookies.end());
  return cookies;
}

TEST(TimerWheel, ScheduleCancelClaimLifecycle) {
  TimerWheel wheel;
  const TimerHandle h =
      wheel.schedule(RealTime{5 * kTick}, EventKey{1, 1}, 1, 42);
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(wheel.armed(), 1u);

  EXPECT_TRUE(wheel.cancel(h));        // live → cancelled
  EXPECT_FALSE(wheel.cancel(h));       // second cancel is a no-op
  EXPECT_EQ(wheel.armed(), 0u);
  NodeId node;
  std::uint64_t cookie;
  EXPECT_FALSE(wheel.claim(h, node, cookie));  // cancelled → unclaimable

  // The slot is recycled: a stale handle to the old arming must stay dead.
  const TimerHandle h2 =
      wheel.schedule(RealTime{5 * kTick}, EventKey{1, 3}, 2, 43);
  EXPECT_EQ(h2.index, h.index);        // recycled slab slot
  EXPECT_NE(h2.generation, h.generation);
  EXPECT_FALSE(wheel.cancel(h));       // ABA-safe: old generation
  std::vector<TimerWheel::Due> batch;
  wheel.advance(RealTime{5 * kTick}, batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(wheel.claim(batch[0].handle, node, cookie));
  EXPECT_EQ(node, 2u);
  EXPECT_EQ(cookie, 43u);
  EXPECT_FALSE(wheel.claim(batch[0].handle, node, cookie));  // fired once
  EXPECT_EQ(wheel.live(), 0u);
}

TEST(TimerWheel, CancelAfterHandOverStillSuppresses) {
  TimerWheel wheel;
  const TimerHandle h = wheel.schedule(RealTime{kTick}, EventKey{0, 1}, 0, 7);
  std::vector<TimerWheel::Due> batch;
  wheel.advance(RealTime{kTick}, batch);
  ASSERT_EQ(batch.size(), 1u);
  // Handed to the engine but not yet fired: cancel must still win.
  EXPECT_TRUE(wheel.cancel(h));
  NodeId node;
  std::uint64_t cookie;
  EXPECT_FALSE(wheel.claim(batch[0].handle, node, cookie));
}

TEST(TimerWheel, ZeroDelayTimersFireOnNextAdvance) {
  TimerWheel wheel;
  std::vector<TimerWheel::Due> batch;
  wheel.advance(RealTime{10 * kTick}, batch);  // move wheel time forward
  EXPECT_TRUE(batch.empty());
  // At, and even before, the wheel's current time: must fire, not vanish.
  (void)wheel.schedule(RealTime{10 * kTick}, EventKey{0, 1}, 0, 1);
  (void)wheel.schedule(RealTime{3 * kTick}, EventKey{0, 3}, 0, 2);
  EXPECT_LE(wheel.next_due().ns(), 10 * kTick);
  EXPECT_EQ(drain_cookies(wheel, RealTime{10 * kTick}),
            (std::vector<std::uint64_t>{1, 2}));
}

// Slot-edge and cascade boundaries: a timer never fires more than one tick
// early and never after an advance that covers its time. Exercises level-0
// edges, the level-1 and level-2 promotion boundaries, and mid-level times.
TEST(TimerWheel, CascadeBoundariesFireExactlyOnce) {
  const std::int64_t kSlots = TimerWheel::kSlots;
  const std::vector<std::int64_t> edges_ticks = {
      1,          2,          kSlots - 1, kSlots,     kSlots + 1,
      2 * kSlots, kSlots * kSlots - 1,    kSlots * kSlots,
      kSlots * kSlots + kSlots + 1,       kSlots * kSlots * kSlots + 17,
  };
  TimerWheel wheel;
  std::uint64_t cookie = 0;
  for (const std::int64_t t : edges_ticks) {
    (void)wheel.schedule(RealTime{t * kTick}, EventKey{0, 2 * cookie + 1}, 0,
                         cookie);
    ++cookie;
    // A second timer just before the edge (same slot's last nanosecond).
    (void)wheel.schedule(RealTime{t * kTick - 1}, EventKey{0, 2 * cookie}, 0,
                         cookie);
    ++cookie;
  }
  EXPECT_EQ(wheel.armed(), edges_ticks.size() * 2);

  std::vector<bool> fired(cookie, false);
  std::vector<TimerWheel::Due> batch;
  RealTime now{};
  for (std::size_t i = 0; i < edges_ticks.size(); ++i) {
    // Advance to one tick BEFORE the edge: the edge timer must stay armed.
    const RealTime before{(edges_ticks[i] - 1) * kTick};
    if (before > now) {
      wheel.advance(before, batch);
      now = before;
      for (const auto& due : batch) {
        NodeId node;
        std::uint64_t c;
        ASSERT_TRUE(wheel.claim(due.handle, node, c));
        // Hand-over is never more than one tick ahead of the advance
        // target (the queue re-orders within the batch anyway).
        EXPECT_LT(due.when.ns(), now.ns() + kTick) << "cookie " << c;
        ASSERT_LT(c, fired.size());
        EXPECT_FALSE(fired[c]);
        fired[c] = true;
      }
    }
    EXPECT_FALSE(fired[2 * i]) << "edge timer fired a full tick early";
  }
  wheel.advance(RealTime{edges_ticks.back() * kTick}, batch);
  for (const auto& due : batch) {
    NodeId node;
    std::uint64_t c;
    ASSERT_TRUE(wheel.claim(due.handle, node, c));
    EXPECT_FALSE(fired[c]);
    fired[c] = true;
  }
  EXPECT_TRUE(std::all_of(fired.begin(), fired.end(), [](bool b) { return b; }))
      << "a timer was lost crossing a cascade boundary";
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, FarFutureTimersParkOnOverflowList) {
  TimerWheel wheel;
  // Beyond the wheel horizon: parked, not misfiled.
  (void)wheel.schedule(RealTime{kHorizonNs + 5 * kTick}, EventKey{0, 1}, 0, 1);
  EXPECT_EQ(wheel.overflow_size(), 1u);
  // The horizon's last slot is still in range from tick 0.
  (void)wheel.schedule(RealTime{kHorizonNs - kTick}, EventKey{0, 3}, 0, 2);
  EXPECT_EQ(wheel.overflow_size(), 1u);

  std::vector<TimerWheel::Due> batch;
  wheel.advance(RealTime{kHorizonNs - 2 * kTick}, batch);
  EXPECT_TRUE(batch.empty());
  // Near-future but across the top-level span boundary: also parked (the
  // XOR placement has no level for it) until the wheel crosses the span.
  (void)wheel.schedule(RealTime{kHorizonNs + kTick}, EventKey{0, 5}, 0, 3);
  EXPECT_EQ(wheel.overflow_size(), 2u);
  EXPECT_EQ(drain_cookies(wheel, RealTime{kHorizonNs - kTick}),
            (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(drain_cookies(wheel, RealTime{kHorizonNs + kTick}),
            (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(drain_cookies(wheel, RealTime{kHorizonNs + 5 * kTick}),
            (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(wheel.overflow_size(), 0u);

  // Cancelling a parked far-future timer is O(1) like any other.
  const TimerHandle far =
      wheel.schedule(RealTime{2 * kHorizonNs}, EventKey{0, 5}, 0, 3);
  EXPECT_EQ(wheel.overflow_size(), 1u);
  EXPECT_TRUE(wheel.cancel(far));
  EXPECT_EQ(wheel.overflow_size(), 0u);
}

// The randomized equivalence gate: 10k timers with arbitrary times funnel
// through wheel → EventQueue exactly like timers parked in the heap from
// the start — the dispatch order is the total (when, creator, seq) order.
TEST(TimerWheel, TenThousandRandomTimersDispatchInKeyOrder) {
  struct Ref {
    RealTime when;
    EventKey key;
    std::uint64_t cookie;
  };
  Rng rng(20260729);
  std::vector<Ref> refs;
  TimerWheel wheel;
  EventQueue queue;
  std::vector<std::uint64_t> dispatched;

  constexpr std::uint32_t kCount = 10'000;
  std::uint64_t seq_per_creator[8] = {};
  for (std::uint32_t i = 0; i < kCount; ++i) {
    // Mostly dense short-horizon, some mid-range, a sliver far-future —
    // the protocol-timer shape, plus the overflow path.
    std::int64_t when_ns;
    const double bucket = rng.next_double();
    if (bucket < 0.90) {
      when_ns = rng.next_in(0, 1'000'000'000);  // ≤ 1 s
    } else if (bucket < 0.99) {
      when_ns = rng.next_in(0, kHorizonNs - 1);
    } else {
      when_ns = rng.next_in(kHorizonNs, 2 * kHorizonNs);
    }
    const auto creator = std::uint32_t(rng.next_below(8));
    const EventKey key{creator, seq_per_creator[creator]++ * 2 + 1};
    refs.push_back(Ref{RealTime{when_ns}, key, i});
    (void)wheel.schedule(RealTime{when_ns}, key, creator, i);
  }

  // Engine pump loop: hand due batches to the queue, dispatch in key order.
  std::vector<TimerWheel::Due> batch;
  while (dispatched.size() < kCount) {
    const RealTime next_event =
        queue.empty() ? RealTime::max() : queue.next_time();
    const RealTime next_timer = wheel.next_due();
    if (next_timer <= next_event) {
      wheel.advance(std::min(next_event, RealTime{4 * kHorizonNs}), batch);
      for (const auto& due : batch) {
        TimerWheel* w = &wheel;
        queue.schedule(due.when, due.key,
                       [w, h = due.handle, &dispatched] {
                         NodeId node;
                         std::uint64_t cookie;
                         ASSERT_TRUE(w->claim(h, node, cookie));
                         dispatched.push_back(cookie);
                       });
      }
      continue;
    }
    ASSERT_FALSE(queue.empty()) << "timers lost: wheel and queue both idle";
    queue.run_one();
  }

  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.key.creator != b.key.creator) return a.key.creator < b.key.creator;
    return a.key.seq < b.key.seq;
  });
  ASSERT_EQ(dispatched.size(), refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    ASSERT_EQ(dispatched[i], refs[i].cookie) << "divergence at " << i;
  }
}

// --- engine-level equivalence ----------------------------------------------

/// test_shard's stack-shaped scenario, shortened: positive delay floor so
/// every shard count is eligible, workload per stack kind.
Scenario wheel_scenario(StackKind stack, std::uint32_t shards,
                        bool timer_wheel) {
  Scenario sc;
  sc.stack = stack;
  sc.n = 8;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.shards = shards;
  sc.timer_wheel = timer_wheel;
  sc.link_delay =
      DelayModel::exp_truncated(sc.delta / 10, sc.delta / 5, sc.delta);
  sc.adversary = stack == StackKind::kBaselineTps ? AdversaryKind::kSilent
                                                  : AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  const Params params = sc.make_params();
  switch (stack) {
    case StackKind::kAgree:
      sc.with_proposal(milliseconds(2), 0, 42);
      sc.with_proposal(milliseconds(40), 1, 43);
      sc.run_for = milliseconds(120);
      break;
    case StackKind::kBaselineTps:
      sc.with_proposal(milliseconds(1), 0, 7);
      sc.run_for = milliseconds(100);
      break;
    case StackKind::kReplicatedLog:
    case StackKind::kPipelinedLog:
      for (std::uint32_t c = 0; c < 3; ++c) {
        sc.with_proposal(Duration::zero(), NodeId(c), 100 + c);
      }
      sc.run_for = 5 * (params.delta_0() + params.delta_agr() + 10 * params.d());
      break;
    case StackKind::kPulse:
    case StackKind::kClockSync:
      sc.run_for =
          params.delta_stb() + 8 * 2 * (params.delta_0() + params.delta_agr());
      break;
  }
  return sc;
}

// The acceptance matrix: for all six StackKinds × shards ∈ {1, 2, 4}, a
// wheel-backed run is bit-identical to the serial legacy-heap run. (Event
// counts are compared wheel-vs-wheel across engines only — see header.)
TEST(TimerWheelEquivalence, EveryStackEveryShardCountMatchesHeapPath) {
  for (std::uint32_t k = 0; k < kStackKindCount; ++k) {
    const SweepRun heap = SweepRunner::run_cell(
        wheel_scenario(StackKind(k), 0, /*timer_wheel=*/false), 21);
    const SweepRun wheel_serial = SweepRunner::run_cell(
        wheel_scenario(StackKind(k), 0, /*timer_wheel=*/true), 21);
    const char* stack = to_string(StackKind(k));
    EXPECT_EQ(wheel_serial.digest, heap.digest) << stack << " serial";
    EXPECT_EQ(wheel_serial.messages, heap.messages) << stack << " serial";
    EXPECT_EQ(wheel_serial.latency_ns, heap.latency_ns) << stack << " serial";
    EXPECT_EQ(wheel_serial.pass, heap.pass) << stack << " serial";
    // dispatched() is net of suppressed no-op pops, so even the event
    // count is backend-invariant.
    EXPECT_EQ(wheel_serial.events, heap.events) << stack << " serial";
    for (std::uint32_t shards : {1u, 2u, 4u}) {
      const SweepRun sharded = SweepRunner::run_cell(
          wheel_scenario(StackKind(k), shards, /*timer_wheel=*/true), 21);
      EXPECT_EQ(sharded.digest, heap.digest) << stack << " shards " << shards;
      EXPECT_EQ(sharded.messages, heap.messages)
          << stack << " shards " << shards;
      EXPECT_EQ(sharded.events, heap.events) << stack << " shards " << shards;
    }
  }
}

// Transient scrambles drop timer handles mid-flight on both paths; parity
// must survive the fault model's worst habit.
TEST(TimerWheelEquivalence, ScrambleMatchesHeapPath) {
  Scenario heap_sc = wheel_scenario(StackKind::kAgree, 0, false);
  heap_sc.transient_scramble = true;
  heap_sc.transient.spurious_per_node = 16;
  Scenario wheel_sc = heap_sc;
  wheel_sc.timer_wheel = true;
  wheel_sc.shards = 4;
  const SweepRun heap = SweepRunner::run_cell(heap_sc, 5);
  const SweepRun wheel = SweepRunner::run_cell(wheel_sc, 5);
  EXPECT_EQ(wheel.digest, heap.digest);
  EXPECT_EQ(wheel.messages, heap.messages);
}

// World-level zero-delay + quiescence semantics with the wheel backend.
TEST(TimerWheelEquivalence, QuiescenceDrainsDueTimersOnly) {
  struct OneShot final : NodeBehavior {
    int fired = 0;
    void on_start(NodeContext& ctx) override {
      (void)ctx.set_timer_after(milliseconds(1), 1);
      (void)ctx.set_timer_after(seconds(10), 2);
      (void)ctx.set_timer(ctx.local_now() - milliseconds(5), 3);  // past due
    }
    void on_message(NodeContext&, const WireMessage&) override {}
    void on_timer(NodeContext&, std::uint64_t) override { ++fired; }
  };
  WorldConfig config;
  config.n = 1;
  World world(config);
  auto behavior = std::make_unique<OneShot>();
  OneShot* raw = behavior.get();
  world.set_behavior(0, std::move(behavior));
  world.start();
  world.run_to_quiescence(RealTime::zero() + seconds(1));
  EXPECT_EQ(raw->fired, 2);  // the past-due and the 1 ms timer, not the 10 s
  world.run_until(RealTime::zero() + seconds(11));
  EXPECT_EQ(raw->fired, 3);
}

}  // namespace
}  // namespace ssbft
