// Adversarial pressure on the footnote-9 index machinery: a Byzantine node
// spraying initiations across every instance index (and beyond the bound),
// combined chaos + scramble + indexed pipelines, and resource-bound checks
// on the per-General instance tables.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "app/pipelined_log.hpp"
#include "core/node.hpp"
#include "harness/metrics.hpp"
#include "harness/runner.hpp"
#include "sim/world.hpp"

namespace ssbft {
namespace {

/// Byzantine node that floods (Initiator, self, m) across all indices —
/// including out-of-range ones — with fresh values each round, then plays
/// along with whatever support/approve traffic comes back. It attacks the
/// per-index pacing (a correct General could never initiate this fast) and
/// the instance-table bound.
class IndexSprayAdversary : public NodeBehavior {
 public:
  explicit IndexSprayAdversary(Duration period) : period_(period) {}

  void on_start(NodeContext& ctx) override {
    ctx.set_timer_after(period_, 1);
  }

  void on_message(NodeContext&, const WireMessage&) override {}

  void on_timer(NodeContext& ctx, std::uint64_t) override {
    for (std::uint32_t index = 0; index < 12; ++index) {  // 8 legal + 4 junk
      WireMessage msg;
      msg.kind = MsgKind::kInitiator;
      msg.general = GeneralId{ctx.id(), index};
      msg.value = next_value_++;
      ctx.send_all(msg);
    }
    ctx.set_timer_after(period_, 1);
  }

 private:
  Duration period_;
  Value next_value_ = 0xA000;
};

TEST(IndexAdversaryTest, SprayedIndicesNeverBreakAgreementOrValidity) {
  WorldConfig wc;
  wc.n = 7;
  wc.seed = 31;
  World world(wc);
  Params params{7, 2, wc.d_bound()};
  std::vector<TimedDecision> decisions;
  std::vector<SsByzNode*> nodes(7, nullptr);
  for (NodeId i = 0; i < 7; ++i) {
    if (i >= 5) {
      world.set_behavior(
          i, std::make_unique<IndexSprayAdversary>(milliseconds(1)));
      continue;
    }
    auto sink = [&decisions, &world, i](const Decision& d) {
      decisions.push_back(
          {d, world.now(), world.real_at(i, d.tau_g)});
    };
    auto node = std::make_unique<SsByzNode>(params, sink);
    nodes[i] = node.get();
    world.set_behavior(i, std::move(node));
  }
  world.start();
  // A correct General initiates amidst the spray; its value must win at
  // every correct node on its instance.
  world.queue().schedule(world.now() + milliseconds(20),
                         [&] { nodes[0]->propose(777, 0); });
  world.run_for(milliseconds(300));

  std::uint32_t correct_decides = 0;
  for (const auto& d : decisions) {
    if (!d.decision.decided()) continue;
    if (d.decision.general == GeneralId{0, 0}) {
      EXPECT_EQ(d.decision.value, 777u);
      ++correct_decides;
    } else {
      // Anything decided on a sprayed instance must at least agree.
      EXPECT_GE(d.decision.general.node, 5u);
    }
  }
  EXPECT_EQ(correct_decides, 5u);

  // Across ALL instances (sprayed ones included), the paper's Uniqueness
  // property IA-4a: decisions whose anchors are within 4d of each other
  // belong to the same execution and must carry the same value. (The
  // gap-based execution clustering of the metrics layer would merge a
  // continuous spray's back-to-back executions, so it is the wrong lens
  // here — distinct-value executions are separated by their anchors.)
  std::map<GeneralId, std::vector<const TimedDecision*>> by_instance;
  for (const auto& d : decisions) {
    if (d.decision.decided()) by_instance[d.decision.general].push_back(&d);
  }
  for (const auto& [general, list] : by_instance) {
    for (std::size_t a = 0; a < list.size(); ++a) {
      for (std::size_t b = a + 1; b < list.size(); ++b) {
        const Duration gap = abs(list[a]->tau_g_real - list[b]->tau_g_real);
        if (gap <= 4 * params.d()) {
          EXPECT_EQ(list[a]->decision.value, list[b]->decision.value)
              << "instance (" << general.node << "," << general.index
              << ") anchors " << gap.ns() << "ns apart";
        }
      }
    }
  }
}

TEST(IndexAdversaryTest, InstanceTableStaysBounded) {
  WorldConfig wc;
  wc.n = 4;
  wc.seed = 33;
  World world(wc);
  Params params{4, 1, wc.d_bound()};
  SsByzNode* victim = nullptr;
  for (NodeId i = 0; i < 4; ++i) {
    if (i == 3) {
      world.set_behavior(
          i, std::make_unique<IndexSprayAdversary>(milliseconds(1)));
      continue;
    }
    auto node = std::make_unique<SsByzNode>(params, nullptr);
    if (i == 0) victim = node.get();
    world.set_behavior(i, std::move(node));
  }
  world.start();
  world.run_for(milliseconds(200));
  // The spray used 12 indices; only max_indices (8) may materialize per
  // General, and only n Generals exist: hard cap n × max_indices.
  std::uint32_t instances = 0;
  for (NodeId g = 0; g < 4; ++g) {
    for (std::uint32_t index = 0; index < 16; ++index) {
      if (victim->has_instance(GeneralId{g, index})) {
        ++instances;
        EXPECT_LT(index, params.max_indices());
      }
    }
  }
  EXPECT_LE(instances, 4 * params.max_indices());
}

TEST(IndexAdversaryTest, PipelineSurvivesSprayPlusScramble) {
  WorldConfig wc;
  wc.n = 7;
  wc.seed = 35;
  World world(wc);
  Params params{7, 2, wc.d_bound()};
  std::vector<PipelinedLogNode*> nodes(7, nullptr);
  for (NodeId i = 0; i < 7; ++i) {
    if (i >= 5) {
      world.set_behavior(
          i, std::make_unique<IndexSprayAdversary>(milliseconds(2)));
      continue;
    }
    PipelineConfig cfg;
    cfg.depth = 4;
    auto node = std::make_unique<PipelinedLogNode>(params, cfg, nullptr);
    nodes[i] = node.get();
    world.set_behavior(i, std::move(node));
  }
  world.start();
  world.run_for(2 * nodes[0]->slot_period());
  for (NodeId i = 0; i < 5; ++i) world.scramble_node(i);
  world.run_for(params.delta_stb());
  // Pre-submission snapshot: everything settled up to here may be garbage —
  // the scramble itself plants arbitrary records (including entries
  // "committed" by Byzantine proposers), and phantom executions may settle
  // more during the healing window. The paper's guarantees cover what
  // settles AFTER stabilization.
  std::vector<std::set<std::uint64_t>> settled_before(5);
  for (NodeId i = 0; i < 5; ++i) {
    for (const auto& [slot, e] : nodes[i]->settled()) {
      settled_before[i].insert(slot);
    }
  }
  for (NodeId i = 0; i < 5; ++i) nodes[i]->submit(4000 + i);
  world.run_for(30 * nodes[0]->slot_period());

  // Every post-settle command committed, with identical records, despite
  // two index-spraying Byzantine nodes and a full correct-side scramble.
  for (std::uint32_t cmd = 4000; cmd < 4005; ++cmd) {
    std::optional<PipelinedEntry> reference;
    for (NodeId i = 0; i < 5; ++i) {
      std::optional<PipelinedEntry> found;
      for (const auto& [slot, e] : nodes[i]->settled()) {
        if (!e.skipped && e.command == cmd) {
          found = e;
          break;
        }
      }
      ASSERT_TRUE(found.has_value())
          << "node " << i << " missing cmd " << cmd;
      if (!reference) {
        reference = found;
      } else {
        EXPECT_TRUE(*found == *reference) << "cmd " << cmd;
      }
    }
  }
  // No Byzantine proposer owns a slot settled after stabilization (earlier
  // slots may hold scramble-planted or phantom records — see above).
  for (NodeId i = 0; i < 5; ++i) {
    for (const auto& [slot, e] : nodes[i]->settled()) {
      if (settled_before[i].count(slot) != 0) continue;
      if (!e.skipped) {
        EXPECT_LT(e.proposer, 5u) << "slot " << slot;
      }
    }
  }
}

}  // namespace
}  // namespace ssbft
