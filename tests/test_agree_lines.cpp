// White-box tests of ss-Byz-Agree's blocks R/S/T/U (Fig. 1), driving one
// SsByzAgree instance through a MockContext. The Initiator-Accept wave is
// fed message-by-message at controlled times, so τG (and hence every
// deadline) is under test control.
//
// Cluster shape: n = 7, f = 2 ⇒ n−f = 5, n−2f = 3; Φ = 8d; self = node 1,
// General = node 0.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "core/ss_byz_agree.hpp"
#include "mock_context.hpp"

namespace ssbft {
namespace {

constexpr NodeId kG = 0;
constexpr Value kM = 7;

struct TimerRec {
  LocalTime when;
  SsByzAgree::TimerKind kind;
  std::uint32_t payload;
};

class AgreeLineTest : public ::testing::Test {
 protected:
  AgreeLineTest() : params_(7, 2, milliseconds(1)), ctx_(/*id=*/1, /*n=*/7) {
    agree_ = std::make_unique<SsByzAgree>(
        params_, GeneralId{kG},
        [this](const AgreeResult& r) { results_.push_back(r); });
    agree_->set_timer_service(
        [this](LocalTime when, SsByzAgree::TimerKind kind,
               std::uint32_t payload) {
          timers_.push_back({when, kind, payload});
          return TimerHandle{std::uint32_t(timers_.size() - 1), 1};
        });
  }

  Duration d() const { return params_.d(); }
  Duration phi() const { return params_.phi(); }

  void deliver(MsgKind kind, NodeId sender, Value m = kM, NodeId p = kNoNode,
               std::uint32_t k = 0) {
    WireMessage msg;
    msg.kind = kind;
    msg.sender = sender;
    msg.general = GeneralId{kG};
    msg.value = m;
    msg.broadcaster = p;
    msg.round = k;
    agree_->on_message(ctx_, msg);
  }

  /// Drive a full Initiator-Accept wave so the instance I-accepts (G, kM).
  /// Supports land at the *current* instant; the recording becomes now−2d,
  /// and the I-accept fires immediately ⇒ τq − τG = 2d ≤ 5d (Block R path
  /// unless `stall` postpones the ready quorum past the R window).
  void run_ia_wave(Duration stall = Duration::zero()) {
    for (NodeId s = 0; s < 5; ++s) deliver(MsgKind::kSupport, s);
    if (stall > Duration::zero()) ctx_.advance(stall);
    for (NodeId s = 0; s < 5; ++s) deliver(MsgKind::kApprove, s);
    for (NodeId s = 0; s < 5; ++s) deliver(MsgKind::kReady, s);
  }

  /// Deliver an n−f echo quorum so msgd-broadcast accepts (p, m, k) via the
  /// X-path (valid while τq ≤ τG + (2k+1)Φ).
  void accept_broadcast(NodeId p, std::uint32_t k, Value m = kM) {
    for (NodeId s = 0; s < 5; ++s) deliver(MsgKind::kBcastEcho, s, m, p, k);
  }

  /// Deliver an n−f echo′ quorum: the *untimed* Z-path, which is how late
  /// relays actually reach a node after the round's X deadline (TPS-3).
  void accept_broadcast_late(NodeId p, std::uint32_t k, Value m = kM) {
    for (NodeId s = 0; s < 5; ++s) {
      deliver(MsgKind::kBcastEchoPrime, s, m, p, k);
    }
  }

  /// Deliver an n−2f init' quorum so p joins the broadcasters set.
  void detect_broadcaster(NodeId p, std::uint32_t k, Value m = kM) {
    for (NodeId s = 0; s < 3; ++s) {
      deliver(MsgKind::kBcastInitPrime, s, m, p, k);
    }
  }

  /// Fire every armed timer whose time has come (repeats are harmless).
  void fire_due_timers() {
    const auto due = timers_;  // handlers may arm more
    for (const auto& t : due) {
      if (t.when <= ctx_.local_now()) {
        agree_->on_timer(ctx_, t.kind, t.payload);
      }
    }
  }

  Params params_;
  MockContext ctx_;
  std::unique_ptr<SsByzAgree> agree_;
  std::vector<AgreeResult> results_;
  std::vector<TimerRec> timers_;
};

// --- Block R -----------------------------------------------------------------

TEST_F(AgreeLineTest, R_FreshIAcceptDecidesAndRelaysRound1) {
  run_ia_wave();
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_TRUE(results_[0].decided());
  EXPECT_EQ(results_[0].value, kM);
  // R3: msgd-broadcast(q, ⟨G,m⟩, 1) — our init for round 1 went out.
  bool sent_round1_init = false;
  for (const auto& [dest, msg] : ctx_.sent) {
    if (msg.kind == MsgKind::kBcastInit && msg.broadcaster == ctx_.id() &&
        msg.round == 1) {
      sent_round1_init = true;
    }
  }
  EXPECT_TRUE(sent_round1_init);
}

TEST_F(AgreeLineTest, R1_StaleIAcceptDoesNotDecideImmediately) {
  // Stall the wave: supports at t ⇒ recording ≈ t − 2d; ready quorum lands
  // at t + 4d ⇒ τq − τG ≈ 6d > 5d ⇒ Block R refused; S/T/U take over.
  run_ia_wave(/*stall=*/4 * d());
  EXPECT_TRUE(results_.empty());
  EXPECT_TRUE(agree_->running());
}

// --- Block S -----------------------------------------------------------------

TEST_F(AgreeLineTest, S_ChainOfOneRelayDecidesAfterStaleAccept) {
  run_ia_wave(4 * d());
  ASSERT_TRUE(results_.empty());
  accept_broadcast(/*p=*/3, /*k=*/1);
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_EQ(results_[0].value, kM);
  // S3: relay at round r+1 = 2.
  bool sent_round2 = false;
  for (const auto& [dest, msg] : ctx_.sent) {
    if (msg.kind == MsgKind::kBcastInit && msg.broadcaster == ctx_.id() &&
        msg.round == 2) {
      sent_round2 = true;
    }
  }
  EXPECT_TRUE(sent_round2);
}

TEST_F(AgreeLineTest, S_RelayFromTheGeneralItselfDoesNotCount) {
  run_ia_wave(4 * d());
  accept_broadcast(/*p=*/kG, /*k=*/1);  // the General vouching for itself
  EXPECT_TRUE(results_.empty());
  accept_broadcast(/*p=*/4, /*k=*/1);  // a real relay
  EXPECT_EQ(results_.size(), 1u);
}

TEST_F(AgreeLineTest, S_RoundOneDeadlineIs3Phi) {
  run_ia_wave(4 * d());
  const LocalTime tau_g = results_.empty() ? ctx_.local_now() : LocalTime{};
  (void)tau_g;
  // Past τG + 3Φ a single-relay chain is no longer decidable — even though
  // the accept itself still lands (late, via the Z-path).
  ctx_.advance(3 * phi());
  accept_broadcast_late(3, 1);
  EXPECT_TRUE(results_.empty());
  // …but a two-round chain (deadline 5Φ) still is, with distinct relays.
  accept_broadcast_late(4, 2);
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_EQ(results_[0].value, kM);
}

TEST_F(AgreeLineTest, S_ChainNeedsDistinctRepresentatives) {
  run_ia_wave(4 * d());
  ctx_.advance(3 * phi());  // round-1 chains expired; need r = 2
  // Rounds 1 and 2 both vouched only by node 3: max matching = 1 ⇒ no
  // decision (S1 requires p_i pairwise distinct).
  accept_broadcast_late(3, 1);
  accept_broadcast_late(3, 2);
  EXPECT_TRUE(results_.empty());
  // A second distinct broadcaster completes the system of representatives.
  accept_broadcast_late(4, 2);
  EXPECT_EQ(results_.size(), 1u);
}

TEST_F(AgreeLineTest, S_MatchingHandlesAdversarialOverlap) {
  run_ia_wave(4 * d());
  ctx_.advance(3 * phi());
  // round1 = {3, 4}, round2 = {3}: greedy picking 3 for round 1 would fail;
  // augmenting must settle round1→4, round2→3.
  accept_broadcast_late(3, 1);
  accept_broadcast_late(4, 1);
  accept_broadcast_late(3, 2);
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_EQ(results_[0].value, kM);
}

// --- Blocks T and U ------------------------------------------------------------

TEST_F(AgreeLineTest, U1_HardDeadlineAborts) {
  run_ia_wave(4 * d());
  ASSERT_TRUE(agree_->running());
  // ∆agr = 5Φ past τG (≈ now − 6d): advance and fire the armed timers.
  ctx_.advance(std::int64_t(2 * params_.f() + 1) * phi() + d());
  fire_due_timers();
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_FALSE(results_[0].decided());  // ⊥
  EXPECT_FALSE(agree_->running());
}

TEST_F(AgreeLineTest, T1_AbortsWhenBroadcastersLag) {
  run_ia_wave(4 * d());
  // At τG + 5Φ (r = 2 check), |broadcasters| must be ≥ 1.
  ctx_.advance(5 * phi() + d());
  fire_due_timers();
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_FALSE(results_[0].decided());
}

TEST_F(AgreeLineTest, T1_SatisfiedByDetectedBroadcaster) {
  run_ia_wave(4 * d());
  detect_broadcaster(/*p=*/3, /*k=*/1);  // TPS-4 path: p joins broadcasters
  ctx_.advance(5 * phi() + d());
  // The r=2 T-check passes (1 ≥ 2−1); only U1 at 5Φ aborts… which is the
  // same instant here (f=2 ⇒ U at 5Φ). Use the r=2 timer alone:
  for (const auto& t : timers_) {
    if (t.kind == SsByzAgree::TimerKind::kRoundDeadline &&
        t.payload == 2) {
      agree_->on_timer(ctx_, t.kind, t.payload);
    }
  }
  EXPECT_TRUE(results_.empty());  // no abort from T1
}

TEST_F(AgreeLineTest, StaleDeadlineTimersFromOldAnchorAreIgnored) {
  run_ia_wave(4 * d());
  // Fire all armed timers immediately — none of their deadlines has passed,
  // so nothing may abort.
  fire_due_timers();
  EXPECT_TRUE(results_.empty());
  EXPECT_TRUE(agree_->running());
}

// --- post-return behaviour ------------------------------------------------------

TEST_F(AgreeLineTest, KeepsServingPrimitivesAfterReturn) {
  run_ia_wave();  // decides via R
  ASSERT_EQ(results_.size(), 1u);
  ctx_.clear_sent();
  // A peer's round-1 init arrives: we must still echo (others rely on it
  // for the 3d post-return window).
  deliver(MsgKind::kBcastInit, /*sender=*/3, kM, /*p=*/3, /*k=*/1);
  EXPECT_GE(ctx_.broadcasts_of(MsgKind::kBcastEcho), 1u);
  // But no second return happens.
  accept_broadcast(3, 1);
  EXPECT_EQ(results_.size(), 1u);
}

TEST_F(AgreeLineTest, PostReturnResetMakesInstanceReusable) {
  run_ia_wave();
  ASSERT_EQ(results_.size(), 1u);
  ctx_.advance(3 * d() + Duration{1});
  fire_due_timers();  // kPostReturn fires
  EXPECT_FALSE(agree_->returned());
  EXPECT_FALSE(agree_->running());

  // A later execution (fresh wave, different value after pacing horizons)
  // goes through from scratch.
  ctx_.advance(params_.delta_v());
  timers_.clear();
  run_ia_wave();
  ASSERT_EQ(results_.size(), 2u);
  EXPECT_TRUE(results_[1].decided());
}

TEST_F(AgreeLineTest, InitiatorFromNonGeneralIsIgnored) {
  // Q1 requires the authenticated General; an imposter invoking Block K
  // must produce no support.
  deliver(MsgKind::kInitiator, /*sender=*/5, kM);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kSupport), 0u);
  deliver(MsgKind::kInitiator, /*sender=*/kG, kM);
  EXPECT_EQ(ctx_.broadcasts_of(MsgKind::kSupport), 1u);
}

}  // namespace
}  // namespace ssbft
