// Unit tests: util layer (time types, RNG, stats, CSV).
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace ssbft {
namespace {

// ----------------------------------------------------------------- time --

TEST(TimeTest, DurationArithmetic) {
  const Duration a = milliseconds(3);
  const Duration b = microseconds(500);
  EXPECT_EQ((a + b).ns(), 3'500'000);
  EXPECT_EQ((a - b).ns(), 2'500'000);
  EXPECT_EQ((a * 2).ns(), 6'000'000);
  EXPECT_EQ((2 * a).ns(), 6'000'000);
  EXPECT_EQ((a / 3).ns(), 1'000'000);
  EXPECT_DOUBLE_EQ(a / b, 6.0);
  EXPECT_EQ(-a, Duration{-3'000'000});
}

TEST(TimeTest, DurationComparisons) {
  EXPECT_LT(microseconds(1), milliseconds(1));
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_GE(Duration::max(), seconds(1'000'000));
}

TEST(TimeTest, TimePointsAreDistinctTypes) {
  const RealTime rt{100};
  const LocalTime lt{100};
  // Same numeric value but incompatible types; only construction and
  // Duration arithmetic compile. (Compile-time property; runtime sanity:)
  EXPECT_EQ(rt.ns(), lt.ns());
  static_assert(!std::is_convertible_v<RealTime, LocalTime>);
  static_assert(!std::is_convertible_v<LocalTime, RealTime>);
}

TEST(TimeTest, TimePointDurationAlgebra) {
  const LocalTime t{1000};
  EXPECT_EQ((t + microseconds(1)).ns(), 1000 + 1000);
  EXPECT_EQ((t - Duration{500}).ns(), 500);
  EXPECT_EQ((t + Duration{500}) - t, Duration{500});
}

TEST(TimeTest, AbsDuration) {
  EXPECT_EQ(abs(Duration{-5}), Duration{5});
  EXPECT_EQ(abs(Duration{5}), Duration{5});
  EXPECT_EQ(abs(Duration::zero()), Duration::zero());
}

TEST(TimeTest, ConversionHelpers) {
  EXPECT_DOUBLE_EQ(milliseconds(1).seconds(), 1e-3);
  EXPECT_DOUBLE_EQ(milliseconds(1).millis(), 1.0);
  EXPECT_DOUBLE_EQ(milliseconds(1).micros(), 1000.0);
}

// ------------------------------------------------------------------ rng --

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(13);
  int heads = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) heads += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(double(heads) / trials, 0.3, 0.03);
}

TEST(RngTest, ExpTruncatedRespectsCap) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_exp_truncated(5.0, 20.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 20.0);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // Child diverges from parent's continued output.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------- stats --

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(StatsTest, RunningStatsMergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatsTest, SampleSetQuantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(double(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(StatsTest, SummarizeDoesNotCrashOnEmpty) {
  SampleSet s;
  EXPECT_EQ(summarize_ns(s), "n=0");
}

// ------------------------------------------------------------------ csv --

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/ssbft_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.row({1.0, 2.5});
    csv.row(std::vector<std::string>{"x", "y"});
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "a,b\n");
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "1,2.5\n");
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "x,y\n");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(CsvTest, BadPathDegradesToNoop) {
  CsvWriter csv("/nonexistent-dir-xyz/file.csv", {"a"});
  EXPECT_FALSE(csv.ok());
  csv.row({1.0});  // must not crash
}

}  // namespace
}  // namespace ssbft
