// Unit tests: core bookkeeping — Params, TimedVar, ArrivalLog, wire format.
#include <gtest/gtest.h>

#include "core/message_log.hpp"
#include "core/params.hpp"
#include "core/timed_var.hpp"
#include "sim/wire.hpp"

namespace ssbft {
namespace {

// --------------------------------------------------------------- params --

TEST(ParamsTest, DerivedConstantsMatchPaper) {
  const Duration d = milliseconds(1);
  const Params p{7, 2, d};
  EXPECT_EQ(p.tau_g_skew(), 6 * d);
  EXPECT_EQ(p.phi(), 8 * d);                       // Φ = 6d + 2d
  EXPECT_EQ(p.delta_agr(), 5 * p.phi());           // (2f+1)Φ, f=2
  EXPECT_EQ(p.delta_0(), 13 * d);
  EXPECT_EQ(p.delta_rmv(), p.delta_agr() + p.delta_0());
  EXPECT_EQ(p.delta_v(), 15 * d + 2 * p.delta_rmv());
  EXPECT_EQ(p.delta_node(), p.delta_v() + p.delta_agr());
  EXPECT_EQ(p.delta_reset(), 20 * d + 4 * p.delta_rmv());
  EXPECT_EQ(p.delta_stb(), 2 * p.delta_reset());
  EXPECT_EQ(p.agree_cleanup(), p.delta_agr() + 3 * d);
  EXPECT_EQ(p.bcast_cleanup(), 7 * p.phi());       // (2f+3)Φ
}

TEST(ParamsTest, QuorumSizes) {
  const Params p{10, 3, milliseconds(1)};
  EXPECT_EQ(p.n_minus_f(), 7u);
  EXPECT_EQ(p.n_minus_2f(), 4u);
  // n−2f ≥ f+1: any n−2f set contains a correct node.
  EXPECT_GE(p.n_minus_2f(), p.f() + 1);
}

TEST(ParamsTest, FZeroIsAllowed) {
  const Params p{4, 0, milliseconds(1)};
  EXPECT_EQ(p.delta_agr(), p.phi());  // (2·0+1)Φ
}

TEST(ParamsDeathTest, RejectsInsufficientResilience) {
  EXPECT_DEATH((Params{6, 2, milliseconds(1)}), "precondition");  // n = 3f
  EXPECT_DEATH((Params{3, 1, milliseconds(1)}), "precondition");
  EXPECT_DEATH((Params{4, 1, Duration::zero()}), "precondition");
}

// ------------------------------------------------------------- TimedVar --

TEST(TimedVarTest, StartsBottom) {
  TimedVar v;
  EXPECT_TRUE(v.is_bottom());
  EXPECT_FALSE(v.get().has_value());
}

TEST(TimedVarTest, SetAndGet) {
  TimedVar v;
  v.set(LocalTime{100}, LocalTime{90});
  ASSERT_TRUE(v.get().has_value());
  EXPECT_EQ(*v.get(), LocalTime{90});
}

TEST(TimedVarTest, ResetToBottom) {
  TimedVar v;
  v.set(LocalTime{100}, LocalTime{90});
  v.reset(LocalTime{110});
  EXPECT_TRUE(v.is_bottom());
}

TEST(TimedVarTest, HistoricalQueryExact) {
  // Block K needs "last(G,m) = ⊥ at τq − d": exact history.
  TimedVar v;
  v.set(LocalTime{100}, LocalTime{100});
  v.reset(LocalTime{200});
  v.set(LocalTime{300}, LocalTime{300});

  EXPECT_FALSE(v.value_at(LocalTime{50}).has_value());   // before any set
  EXPECT_TRUE(v.value_at(LocalTime{100}).has_value());   // at the set
  EXPECT_TRUE(v.value_at(LocalTime{150}).has_value());
  EXPECT_FALSE(v.value_at(LocalTime{250}).has_value());  // after reset
  EXPECT_TRUE(v.value_at(LocalTime{350}).has_value());
}

TEST(TimedVarTest, CleanupExpiresOldValue) {
  TimedVar v;
  v.set(LocalTime{100}, LocalTime{100});
  v.cleanup(LocalTime{100} + milliseconds(10), /*expiry=*/milliseconds(5),
            /*history_keep=*/milliseconds(50));
  EXPECT_TRUE(v.is_bottom());
}

TEST(TimedVarTest, CleanupKeepsFreshValue) {
  TimedVar v;
  v.set(LocalTime{100}, LocalTime{100});
  v.cleanup(LocalTime{100} + milliseconds(3), milliseconds(5),
            milliseconds(50));
  EXPECT_FALSE(v.is_bottom());
}

TEST(TimedVarTest, CleanupDropsFutureValue) {
  // "Each time-stamped entry that is clearly wrong ... is removed" — a
  // future value can only come from a transient fault.
  TimedVar v;
  v.set(LocalTime{100}, LocalTime{100} + seconds(10));
  v.cleanup(LocalTime{200}, milliseconds(5), milliseconds(50));
  EXPECT_TRUE(v.is_bottom());
}

TEST(TimedVarTest, HistoryTrimPreservesWindowQueries) {
  TimedVar v;
  for (int i = 1; i <= 100; ++i) {
    v.set(LocalTime{i * 1000}, LocalTime{i * 1000});
  }
  v.cleanup(LocalTime{100'000}, Duration{1'000'000}, /*keep=*/Duration{5'000});
  // Queries within the keep window still resolve.
  EXPECT_TRUE(v.value_at(LocalTime{97'000}).has_value());
  EXPECT_TRUE(v.value_at(LocalTime{100'000}).has_value());
}

TEST(TimedVarTest, ScrambleThenCleanupHeals) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    TimedVar v;
    const LocalTime now{1'000'000};
    v.scramble(rng, now, milliseconds(1));
    // One cleanup pass must leave the variable in a sane state: either ⊥ or
    // a value within [now − expiry, now].
    v.cleanup(now, milliseconds(2), milliseconds(10));
    if (!v.is_bottom()) {
      EXPECT_LE(*v.get(), now);
      EXPECT_GE(*v.get(), now - milliseconds(2));
    }
  }
}

// ------------------------------------------------------------ ArrivalLog --

ArrivalKey support_key(Value m) {
  return ArrivalKey{MsgKind::kSupport, m, kNoNode, 0};
}

TEST(ArrivalLogTest, CountsDistinctSendersOnly) {
  ArrivalLog log;
  log.note(support_key(1), 0, LocalTime{100});
  log.note(support_key(1), 0, LocalTime{110});  // duplicate sender
  log.note(support_key(1), 1, LocalTime{120});
  EXPECT_EQ(log.distinct_in_window(support_key(1), LocalTime{0}, LocalTime{200}),
            2u);
  EXPECT_EQ(log.distinct_total(support_key(1)), 2u);
}

TEST(ArrivalLogTest, WindowBoundsAreInclusive) {
  ArrivalLog log;
  log.note(support_key(1), 0, LocalTime{100});
  EXPECT_EQ(log.distinct_in_window(support_key(1), LocalTime{100}, LocalTime{100}),
            1u);
  EXPECT_EQ(log.distinct_in_window(support_key(1), LocalTime{101}, LocalTime{200}),
            0u);
  EXPECT_EQ(log.distinct_in_window(support_key(1), LocalTime{0}, LocalTime{99}),
            0u);
}

TEST(ArrivalLogTest, KeysAreIndependent) {
  ArrivalLog log;
  log.note(support_key(1), 0, LocalTime{100});
  log.note(support_key(2), 1, LocalTime{100});
  log.note(ArrivalKey{MsgKind::kApprove, 1, kNoNode, 0}, 2, LocalTime{100});
  EXPECT_EQ(log.distinct_total(support_key(1)), 1u);
  EXPECT_EQ(log.distinct_total(support_key(2)), 1u);
  EXPECT_EQ(log.distinct_total(ArrivalKey{MsgKind::kApprove, 1, kNoNode, 0}),
            1u);
}

TEST(ArrivalLogTest, LatestArrivalPerSenderWins) {
  // Windows end at "now", so only the latest arrival per sender matters.
  ArrivalLog log;
  log.note(support_key(1), 0, LocalTime{100});
  log.note(support_key(1), 0, LocalTime{500});
  EXPECT_EQ(log.distinct_in_window(support_key(1), LocalTime{400}, LocalTime{600}),
            1u);
}

TEST(ArrivalLogTest, ShortestWindowFindsMinimalAlpha) {
  ArrivalLog log;
  log.note(support_key(1), 0, LocalTime{100});
  log.note(support_key(1), 1, LocalTime{150});
  log.note(support_key(1), 2, LocalTime{190});
  const LocalTime now{200};
  // quorum 2: two newest are at 150 and 190 ⇒ α = 200−150 = 50.
  auto alpha = log.shortest_window(support_key(1), 2, now, Duration{1000});
  ASSERT_TRUE(alpha.has_value());
  EXPECT_EQ(alpha->ns(), 50);
  // quorum 3: α = 100.
  alpha = log.shortest_window(support_key(1), 3, now, Duration{1000});
  ASSERT_TRUE(alpha.has_value());
  EXPECT_EQ(alpha->ns(), 100);
}

TEST(ArrivalLogTest, ShortestWindowRespectsMaxWindow) {
  ArrivalLog log;
  log.note(support_key(1), 0, LocalTime{100});
  log.note(support_key(1), 1, LocalTime{900});
  EXPECT_FALSE(
      log.shortest_window(support_key(1), 2, LocalTime{1000}, Duration{500})
          .has_value());
  EXPECT_TRUE(
      log.shortest_window(support_key(1), 2, LocalTime{1000}, Duration{900})
          .has_value());
}

TEST(ArrivalLogTest, ShortestWindowZeroQuorum) {
  ArrivalLog log;
  EXPECT_EQ(log.shortest_window(support_key(1), 0, LocalTime{10}, Duration{5}),
            Duration::zero());
}

TEST(ArrivalLogTest, DecayRemovesOldAndFuture) {
  ArrivalLog log;
  log.note(support_key(1), 0, LocalTime{100});        // old
  log.note(support_key(1), 1, LocalTime{900});        // fresh
  log.note(support_key(1), 2, LocalTime{5000});       // future (transient junk)
  log.decay(LocalTime{1000}, /*keep=*/Duration{500});
  EXPECT_EQ(log.distinct_total(support_key(1)), 1u);
  EXPECT_EQ(log.distinct_in_window(support_key(1), LocalTime{900}, LocalTime{900}),
            1u);
}

TEST(ArrivalLogTest, EraseIfRemovesMatchingValues) {
  ArrivalLog log;
  log.note(support_key(1), 0, LocalTime{100});
  log.note(support_key(2), 0, LocalTime{100});
  log.erase_if([](const ArrivalKey& k) { return k.value == 1; });
  EXPECT_EQ(log.distinct_total(support_key(1)), 0u);
  EXPECT_EQ(log.distinct_total(support_key(2)), 1u);
}

TEST(ArrivalLogTest, ValuesWithKind) {
  ArrivalLog log;
  log.note(support_key(1), 0, LocalTime{100});
  log.note(support_key(7), 0, LocalTime{100});
  log.note(ArrivalKey{MsgKind::kReady, 9, kNoNode, 0}, 0, LocalTime{100});
  const auto values = log.values_with(MsgKind::kSupport);
  EXPECT_EQ(values.size(), 2u);
  EXPECT_EQ(log.values_with(MsgKind::kReady).size(), 1u);
  EXPECT_TRUE(log.values_with(MsgKind::kApprove).empty());
}

TEST(ArrivalLogTest, BroadcastKeysDistinguishRoundAndBroadcaster) {
  ArrivalLog log;
  const ArrivalKey k1{MsgKind::kBcastEcho, 1, 3, 1};
  const ArrivalKey k2{MsgKind::kBcastEcho, 1, 3, 2};
  const ArrivalKey k3{MsgKind::kBcastEcho, 1, 4, 1};
  log.note(k1, 0, LocalTime{10});
  log.note(k2, 0, LocalTime{10});
  log.note(k3, 0, LocalTime{10});
  EXPECT_EQ(log.distinct_total(k1), 1u);
  EXPECT_EQ(log.distinct_total(k2), 1u);
  EXPECT_EQ(log.distinct_total(k3), 1u);
}

TEST(ArrivalLogTest, ScrambleThenDecayBoundsState) {
  Rng rng(3);
  ArrivalLog log;
  log.scramble(rng, LocalTime{1'000'000}, milliseconds(5), 10, 100);
  EXPECT_GT(log.total_arrivals(), 0u);
  // Decay with a tiny keep horizon wipes everything not in (now−keep, now].
  log.decay(LocalTime{1'000'000} + seconds(10), Duration{1});
  EXPECT_EQ(log.total_arrivals(), 0u);
}

// ----------------------------------------------------------------- wire --

TEST(WireTest, KindNamesAreStable) {
  EXPECT_STREQ(to_string(MsgKind::kInitiator), "Initiator");
  EXPECT_STREQ(to_string(MsgKind::kSupport), "support");
  EXPECT_STREQ(to_string(MsgKind::kApprove), "approve");
  EXPECT_STREQ(to_string(MsgKind::kReady), "ready");
  EXPECT_STREQ(to_string(MsgKind::kBcastInit), "init");
  EXPECT_STREQ(to_string(MsgKind::kBcastEchoPrime), "echo'");
}

TEST(WireTest, MessageToStringMentionsFields) {
  WireMessage msg;
  msg.kind = MsgKind::kSupport;
  msg.general = GeneralId{3};
  msg.value = 42;
  msg.sender = 5;
  const std::string s = to_string(msg);
  EXPECT_NE(s.find("support"), std::string::npos);
  EXPECT_NE(s.find("G=3"), std::string::npos);
  EXPECT_NE(s.find("m=42"), std::string::npos);
  EXPECT_NE(s.find("from=5"), std::string::npos);
}

}  // namespace
}  // namespace ssbft
