// End-to-end smoke tests: a correct General reaches agreement.
#include <gtest/gtest.h>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"

namespace ssbft {
namespace {

TEST(CoreSmokeTest, CorrectGeneralAllCorrectNodesDecide) {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.byz_nodes = {};  // no actual faults
  sc.with_proposal(milliseconds(5), /*general=*/0, /*value=*/42);
  sc.run_for = milliseconds(100);
  sc.seed = 1;

  Cluster cluster(sc);
  cluster.run();

  const auto& decisions = cluster.decisions();
  ASSERT_EQ(decisions.size(), 4u);
  for (const auto& d : decisions) {
    EXPECT_TRUE(d.decision.decided());
    EXPECT_EQ(d.decision.value, 42u);
    EXPECT_EQ(d.decision.general.node, 0u);
  }
}

TEST(CoreSmokeTest, ValidityWithSilentFaults) {
  Scenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.adversary = AdversaryKind::kSilent;
  sc.with_proposal(milliseconds(5), 0, 7);
  sc.run_for = milliseconds(300);
  sc.seed = 3;

  Cluster cluster(sc);
  cluster.run();

  const auto metrics = evaluate_run(cluster.decisions(), cluster.proposals(),
                                    cluster.correct_count(), cluster.params());
  EXPECT_EQ(metrics.agreement_violations, 0u);
  EXPECT_EQ(metrics.validity_violations, 0u);
  EXPECT_GE(metrics.unanimous_decides, 1u);
}

}  // namespace
}  // namespace ssbft
