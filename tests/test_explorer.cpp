// Schedule-explorer tests: adversarially chosen (but model-conforming)
// delay schedules must never produce a safety violation — across correct
// Generals, equivocating Generals, quorum fakers, and transient-fault
// starts. Also sanity-checks the explorer machinery itself (determinism,
// prefix-tree coverage, oracle clamping).
#include <gtest/gtest.h>

#include "check/explorer.hpp"
#include "harness/runner.hpp"

namespace ssbft {
namespace {

Scenario small_cluster() {
  Scenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.with_tail_faults(1);
  sc.with_proposal(milliseconds(5), 0, 42);
  sc.run_for = milliseconds(150);
  return sc;
}

TEST(ExplorerTest, CorrectGeneralSurvivesSystematicSchedules) {
  ExplorerConfig config;
  config.base = small_cluster();
  config.trials = 243;  // 3^5: full prefix tree
  config.systematic_depth = 5;
  const auto report = explore(config);
  EXPECT_EQ(report.trials, 243u);
  EXPECT_EQ(report.prefix_combinations, 243u);
  EXPECT_GT(report.decisions_seen, 0u);
  EXPECT_TRUE(report.clean()) << report.violations.size() << " violations; "
                              << (report.violations.empty()
                                      ? ""
                                      : report.violations[0].what);
}

TEST(ExplorerTest, EquivocatingGeneralSurvivesSystematicSchedules) {
  ExplorerConfig config;
  config.base = small_cluster();
  config.base.proposals.clear();
  config.base.adversary = AdversaryKind::kEquivocatingGeneral;
  config.base.equivocate_split = 3;  // one victim: the sharpest variant
  config.expect_validity = false;    // a faulty General has no validity claim
  config.trials = 243;
  config.systematic_depth = 5;
  const auto report = explore(config);
  EXPECT_EQ(report.trials, 243u);
  EXPECT_TRUE(report.clean()) << (report.violations.empty()
                                      ? ""
                                      : report.violations[0].what);
}

TEST(ExplorerTest, QuorumFakerSurvivesSystematicSchedules) {
  ExplorerConfig config;
  config.base = small_cluster();
  config.base.adversary = AdversaryKind::kQuorumFaker;
  config.expect_validity = false;  // fakers may suppress some executions
  config.trials = 128;
  config.systematic_depth = 4;
  const auto report = explore(config);
  EXPECT_TRUE(report.clean()) << (report.violations.empty()
                                      ? ""
                                      : report.violations[0].what);
}

TEST(ExplorerTest, TransientStartSurvivesRandomTailSchedules) {
  ExplorerConfig config;
  config.base = small_cluster();
  config.base.transient_scramble = true;
  const Duration stb = config.base.make_params().delta_stb();
  config.base.proposals.clear();
  config.base.with_proposal(stb + milliseconds(5), 0, 42);
  config.base.run_for = stb + milliseconds(150);
  config.check_after = RealTime::zero() + stb;  // paper: claims start at ∆stb
  config.trials = 64;
  config.systematic_depth = 3;
  const auto report = explore(config);
  EXPECT_TRUE(report.clean()) << (report.violations.empty()
                                      ? ""
                                      : report.violations[0].what);
}

TEST(ExplorerTest, LargerClusterSpotCheck) {
  ExplorerConfig config;
  config.base = small_cluster();
  config.base.n = 7;
  config.base.f = 2;
  config.base.byz_nodes.clear();
  config.base.with_tail_faults(2);
  config.trials = 54;  // 27 systematic prefixes × 2 random tails
  config.systematic_depth = 3;
  const auto report = explore(config);
  EXPECT_TRUE(report.clean()) << (report.violations.empty()
                                      ? ""
                                      : report.violations[0].what);
}

TEST(ExplorerTest, DeterministicAcrossRuns) {
  ExplorerConfig config;
  config.base = small_cluster();
  config.trials = 27;
  config.systematic_depth = 3;
  const auto a = explore(config);
  const auto b = explore(config);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.executions_checked, b.executions_checked);
  EXPECT_EQ(a.decisions_seen, b.decisions_seen);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(ExplorerTest, ExtremePaletteStaysInsideModelEnvelope) {
  // A palette far beyond δ+π must be clamped by the oracle hook — the run
  // then still satisfies the model, so no violation may be reported.
  ExplorerConfig config;
  config.base = small_cluster();
  config.palette = {Duration::zero(), seconds(10)};  // clamped to δ+π
  config.trials = 32;
  config.systematic_depth = 5;
  const auto report = explore(config);
  EXPECT_TRUE(report.clean()) << (report.violations.empty()
                                      ? ""
                                      : report.violations[0].what);
  EXPECT_GT(report.decisions_seen, 0u);
}

}  // namespace
}  // namespace ssbft
