// Pulse-synchronization layer tests: skew, cycle accuracy, rotation past
// faulty Generals, and self-stabilization of the pulse counter.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "adversary/adversaries.hpp"
#include "pulse/pulse_sync.hpp"
#include "sim/world.hpp"

namespace ssbft {
namespace {

struct PulseRecord {
  NodeId node;
  std::uint64_t counter;
  RealTime real_at;
};

class PulseFixture {
 public:
  PulseFixture(std::uint32_t n, std::uint32_t f, std::uint64_t seed,
               std::uint32_t byz_count = 0) {
    WorldConfig wc;
    wc.n = n;
    wc.seed = seed;
    world = std::make_unique<World>(wc);
    params = std::make_unique<Params>(n, f, wc.d_bound());
    nodes.assign(n, nullptr);
    for (NodeId i = 0; i < n; ++i) {
      if (i >= n - byz_count) {
        world->set_behavior(i, std::make_unique<RandomNoiseAdversary>(
                                   milliseconds(2)));
        continue;
      }
      auto sink = [this, i](const PulseEvent& event) {
        pulses.push_back(PulseRecord{i, event.counter, world->now()});
      };
      auto node = std::make_unique<PulseSyncNode>(*params, PulseConfig{}, sink);
      nodes[i] = node.get();
      world->set_behavior(i, std::move(node));
    }
    correct_count = n - byz_count;
  }

  /// Pulses grouped by counter; only counters seen at some node.
  [[nodiscard]] std::map<std::uint64_t, std::vector<PulseRecord>> by_counter()
      const {
    std::map<std::uint64_t, std::vector<PulseRecord>> grouped;
    for (const auto& p : pulses) grouped[p.counter].push_back(p);
    return grouped;
  }

  std::unique_ptr<World> world;
  std::unique_ptr<Params> params;
  std::vector<PulseSyncNode*> nodes;
  std::vector<PulseRecord> pulses;
  std::uint32_t correct_count = 0;
};

TEST(PulseSyncTest, PulsesFireAndCountersAdvance) {
  PulseFixture fx(4, 1, 1);
  fx.world->start();
  const Duration cycle = fx.nodes[0]->cycle();
  fx.world->run_for(8 * cycle);
  ASSERT_FALSE(fx.pulses.empty());
  // At least a handful of full pulses (all correct nodes fired).
  std::uint32_t complete = 0;
  for (const auto& [counter, records] : fx.by_counter()) {
    if (records.size() == fx.correct_count) ++complete;
  }
  EXPECT_GE(complete, 4u);
}

TEST(PulseSyncTest, PulseSkewWithin3d) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    PulseFixture fx(7, 2, seed);
    fx.world->start();
    fx.world->run_for(10 * fx.nodes[0]->cycle());
    std::uint32_t full_pulses = 0;
    for (const auto& [counter, records] : fx.by_counter()) {
      if (records.size() < fx.correct_count) continue;
      ++full_pulses;
      RealTime lo = RealTime::max(), hi = RealTime::min();
      for (const auto& r : records) {
        lo = std::min(lo, r.real_at);
        hi = std::max(hi, r.real_at);
      }
      // Pulse == decision instant ⇒ Timeliness-1a's 3d bound applies (2d
      // with validity; use the general bound).
      EXPECT_LE(hi - lo, 3 * fx.params->d()) << "counter " << counter;
    }
    EXPECT_GE(full_pulses, 5u) << "seed " << seed;
  }
}

TEST(PulseSyncTest, CycleLengthTracksTarget) {
  PulseFixture fx(4, 1, 5);
  fx.world->start();
  const Duration cycle = fx.nodes[0]->cycle();
  fx.world->run_for(10 * cycle);
  // Per node: consecutive pulse spacing within [cycle − slack, watchdog].
  std::map<NodeId, std::vector<RealTime>> per_node;
  for (const auto& p : fx.pulses) per_node[p.node].push_back(p.real_at);
  std::uint32_t intervals = 0;
  for (auto& [node, times] : per_node) {
    for (std::size_t i = 1; i < times.size(); ++i) {
      const Duration gap = times[i] - times[i - 1];
      EXPECT_GE(gap, cycle - 2 * fx.params->delta_agr());
      EXPECT_LE(gap, 2 * cycle + fx.params->delta_agr());
      ++intervals;
    }
  }
  EXPECT_GE(intervals, 12u);
}

TEST(PulseSyncTest, CountersStayMonotonePerNode) {
  PulseFixture fx(7, 2, 7, /*byz_count=*/2);
  fx.world->start();
  fx.world->run_for(10 * fx.nodes[0]->cycle());
  std::map<NodeId, std::uint64_t> last_counter;
  for (const auto& p : fx.pulses) {
    const auto it = last_counter.find(p.node);
    if (it != last_counter.end()) {
      EXPECT_GT(p.counter, it->second);
    }
    last_counter[p.node] = p.counter;
  }
}

TEST(PulseSyncTest, RotationSkipsFaultyGenerals) {
  // With nodes 5,6 Byzantine (noise), slots 5,6 mod 7 produce no decision;
  // the watchdog advances the rotation and pulsing continues.
  PulseFixture fx(7, 2, 9, /*byz_count=*/2);
  fx.world->start();
  fx.world->run_for(16 * fx.nodes[0]->cycle());
  std::uint32_t complete = 0;
  for (const auto& [counter, records] : fx.by_counter()) {
    // Any completed pulse must come from a correct General's slot.
    EXPECT_LT(counter % 7, 5u) << "pulse led by a Byzantine slot?!";
    if (records.size() == fx.correct_count) ++complete;
  }
  EXPECT_GE(complete, 4u);
}

TEST(PulseSyncTest, ConvergesAfterScramble) {
  for (std::uint64_t seed : {11u, 12u}) {
    PulseFixture fx(7, 2, seed, /*byz_count=*/2);
    fx.world->start();
    // Scramble every correct node (counters become garbage, agreement state
    // arbitrary), then let the system run.
    for (NodeId i = 0; i < 5; ++i) fx.world->scramble_node(i);
    const Duration cycle = fx.nodes[0]->cycle();
    fx.world->run_for(fx.params->delta_stb() + 20 * cycle);

    // After convergence there must be a suffix of complete pulses with
    // skew ≤ 3d and with all five correct nodes agreeing on counters.
    std::uint32_t complete_after = 0;
    const RealTime stable =
        RealTime::zero() + fx.params->delta_stb() + 8 * cycle;
    for (const auto& [counter, records] : fx.by_counter()) {
      if (records.size() != fx.correct_count) continue;
      RealTime lo = RealTime::max(), hi = RealTime::min();
      for (const auto& r : records) {
        lo = std::min(lo, r.real_at);
        hi = std::max(hi, r.real_at);
      }
      if (lo < stable) continue;
      EXPECT_LE(hi - lo, 3 * fx.params->d());
      ++complete_after;
    }
    EXPECT_GE(complete_after, 3u) << "seed " << seed;
  }
}

TEST(PulseSyncDeathTest, RejectsTooShortCycle) {
  const Params params{4, 1, milliseconds(1)};
  PulseConfig config;
  config.cycle = milliseconds(1);  // ≪ ∆0 + ∆agr
  EXPECT_DEATH(PulseSyncNode(params, config, nullptr), "precondition");
}

}  // namespace
}  // namespace ssbft
