// Reference-model property tests: the optimized core data structures are
// fuzzed against naive, obviously-correct oracles over thousands of random
// operation sequences. Any divergence is a real bug in the fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/message_log.hpp"
#include "core/timed_var.hpp"
#include "util/rng.hpp"

namespace ssbft {
namespace {

// ---------------------------------------------------------------------------
// ArrivalLog vs. a keep-everything oracle.
// ---------------------------------------------------------------------------

/// Naive oracle: stores every arrival; answers window queries by scanning.
class ArrivalOracle {
 public:
  void note(const ArrivalKey& key, NodeId sender, LocalTime at) {
    arrivals_.push_back({key, sender, at});
  }

  std::uint32_t distinct_in_window(const ArrivalKey& key, LocalTime from,
                                   LocalTime to) const {
    std::set<NodeId> senders;
    for (const auto& a : arrivals_) {
      if (a.key == key && a.at >= from && a.at <= to && !erased(a)) {
        senders.insert(a.sender);
      }
    }
    return std::uint32_t(senders.size());
  }

  std::optional<Duration> shortest_window(const ArrivalKey& key,
                                          std::uint32_t quorum, LocalTime now,
                                          Duration max_window) const {
    if (quorum == 0) return Duration::zero();
    // Scan all candidate α: the answers are determined by arrival times, so
    // test each arrival's time as the window start.
    std::optional<Duration> best;
    for (const auto& a : arrivals_) {
      if (!(a.key == key) || erased(a)) continue;
      if (a.at > now || a.at < now - max_window) continue;
      const Duration alpha = now - a.at;
      if (distinct_in_window(key, now - alpha, now) >= quorum) {
        if (!best || alpha < *best) best = alpha;
      }
    }
    return best;
  }

  std::uint32_t distinct_total(const ArrivalKey& key) const {
    std::set<NodeId> senders;
    for (const auto& a : arrivals_) {
      if (a.key == key && !erased(a)) senders.insert(a.sender);
    }
    return std::uint32_t(senders.size());
  }

  void decay(LocalTime now, Duration keep) {
    arrivals_.erase(std::remove_if(arrivals_.begin(), arrivals_.end(),
                                   [&](const Arrival& a) {
                                     return a.at > now || a.at < now - keep;
                                   }),
                    arrivals_.end());
  }

  void erase_value(Value value) {
    arrivals_.erase(std::remove_if(arrivals_.begin(), arrivals_.end(),
                                   [&](const Arrival& a) {
                                     return a.key.value == value;
                                   }),
                    arrivals_.end());
  }

 private:
  struct Arrival {
    ArrivalKey key;
    NodeId sender;
    LocalTime at;
  };
  // Duplicate (key, sender) pairs: only the latest counts in the real log;
  // mirror that by treating older duplicates as erased.
  bool erased(const Arrival& a) const {
    for (const auto& other : arrivals_) {
      if (other.key == a.key && other.sender == a.sender &&
          other.at > a.at) {
        return true;
      }
    }
    return false;
  }
  std::vector<Arrival> arrivals_;
};

TEST(ReferenceModelTest, ArrivalLogMatchesOracle) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    ArrivalLog log;
    ArrivalOracle oracle;
    LocalTime now{1'000'000};

    const auto random_key = [&rng] {
      ArrivalKey key;
      key.kind = rng.next_bool(0.5) ? MsgKind::kSupport : MsgKind::kApprove;
      key.value = rng.next_below(3);
      return key;
    };

    for (int step = 0; step < 600; ++step) {
      now += Duration{rng.next_in(0, 2000)};
      const auto op = rng.next_below(10);
      if (op < 6) {
        // Arrivals are stamped at receipt time — note()'s contract: `at`
        // is the caller's local now (monotone per node).
        const ArrivalKey key = random_key();
        const NodeId sender = NodeId(rng.next_below(6));
        log.note(key, sender, now);
        oracle.note(key, sender, now);
      } else if (op < 8) {
        const Duration keep{rng.next_in(1'000, 40'000)};
        log.decay(now, keep);
        oracle.decay(now, keep);
      } else if (op == 8) {
        const Value value = rng.next_below(3);
        log.erase_if([value](const ArrivalKey& k) { return k.value == value; });
        oracle.erase_value(value);
      } else {
        // Query step: compare every query on a few random keys.
        for (int q = 0; q < 3; ++q) {
          const ArrivalKey key = random_key();
          const Duration w{rng.next_in(0, 20'000)};
          ASSERT_EQ(log.distinct_in_window(key, now - w, now),
                    oracle.distinct_in_window(key, now - w, now))
              << "seed " << seed << " step " << step;
          ASSERT_EQ(log.distinct_total(key), oracle.distinct_total(key))
              << "seed " << seed << " step " << step;
          const auto quorum = std::uint32_t(rng.next_below(5)) + 1;
          const Duration max_w{rng.next_in(0, 20'000)};
          const auto a = log.shortest_window(key, quorum, now, max_w);
          const auto b = oracle.shortest_window(key, quorum, now, max_w);
          ASSERT_EQ(a.has_value(), b.has_value())
              << "seed " << seed << " step " << step;
          if (a) {
            ASSERT_EQ(a->ns(), b->ns())
                << "seed " << seed << " step " << step;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// TimedVar vs. an eager oracle that applies expiry continuously.
// ---------------------------------------------------------------------------

/// Oracle: records (time, value) sets/resets; derives the value at any time
/// by replaying the history with eager expiry.
class TimedVarOracle {
 public:
  void set(LocalTime at, LocalTime value) { ops_.push_back({at, value}); }
  void reset(LocalTime at) { ops_.push_back({at, std::nullopt}); }

  std::optional<LocalTime> value_at(LocalTime when, Duration expiry) const {
    std::optional<LocalTime> value;
    LocalTime value_since{};
    for (const auto& op : ops_) {
      if (op.at > when) break;
      value = op.value;
      value_since = op.at;
    }
    (void)value_since;
    if (value && (*value > when || *value < when - expiry)) {
      // Eager cleanup would have dropped it by `when` (future values at the
      // next instant; expired ones at value + expiry).
      if (*value < when - expiry) return std::nullopt;
      // Future-stamped: the lazy implementation only heals these when
      // cleanup runs; tolerate both by not asserting on them (the fuzz
      // driver below never sets future values).
    }
    return value;
  }

 private:
  struct Op {
    LocalTime at;
    std::optional<LocalTime> value;
  };
  std::vector<Op> ops_;
};

TEST(ReferenceModelTest, TimedVarMatchesEagerOracle) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    TimedVar var;
    TimedVarOracle oracle;
    LocalTime now{1'000'000};
    const Duration expiry{20'000};
    const Duration keep{200'000};

    for (int step = 0; step < 400; ++step) {
      now += Duration{rng.next_in(1, 5'000)};
      const auto op = rng.next_below(8);
      if (op < 3) {
        // Sets always use a (possibly slightly past) non-future value, as
        // the protocol does (last(G,m) := τq, i_values := τq − d...).
        const LocalTime value = now - Duration{rng.next_in(0, 3'000)};
        var.set(now, value);
        oracle.set(now, value);
      } else if (op < 4) {
        var.reset(now);
        oracle.reset(now);
      } else if (op < 6) {
        var.cleanup(now, expiry, keep);
      } else {
        // Historical query at a random offset within the kept horizon;
        // run cleanup first (the protocol always does).
        var.cleanup(now, expiry, keep);
        const LocalTime probe = now - Duration{rng.next_in(0, 30'000)};
        const auto got = var.value_at(probe);
        const auto want = oracle.value_at(probe, expiry);
        ASSERT_EQ(got.has_value(), want.has_value())
            << "seed " << seed << " step " << step << " probe "
            << probe.ns();
        if (got) {
          ASSERT_EQ(got->ns(), want->ns())
              << "seed " << seed << " step " << step;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ssbft
