// DutyWorld: recurring chaos duty cycles must be invisible to the physics.
// The alternating engine (serial chaos segments ↔ sharded stabilization
// segments, a FULL state migration at every boundary in BOTH directions)
// must produce bit-identical observable histories to an all-serial run —
// for every StackKind, every shard count, any number of cycles. This file
// pins that acceptance matrix, the cut mechanics (piecewise stepping that
// lands exactly on every boundary), fault injection after a reverse
// migration, the per-window stabilization metrics, the Scenario duty-cycle
// normalization/validation, and the export-is-terminal guards on the
// sharded engine.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/metrics.hpp"
#include "harness/sweep.hpp"
#include "sim/duty_world.hpp"
#include "sim/fault_injector.hpp"
#include "sim/shard_world.hpp"

namespace ssbft {
namespace {

/// Stack-shaped scenario with a RECURRING chaos duty cycle: 3 ms bursts at
/// t = 0, 40, 80 ms (width 3, stride 40, count 3), scrambled initial state,
/// forged in-flight messages, and the δ/10 delay floor that gives the
/// stabilization segments their lookahead. Mirrors test_shard's
/// chaos_scenario but with the schedule the alternation exists for.
Scenario duty_scenario(StackKind stack, std::uint32_t shards) {
  Scenario sc;
  sc.stack = stack;
  sc.n = 8;
  sc.f = 2;
  sc.with_tail_faults(2);
  sc.shards = shards;
  sc.link_delay =
      DelayModel::exp_truncated(sc.delta / 10, sc.delta / 5, sc.delta);
  sc.adversary = stack == StackKind::kBaselineTps ? AdversaryKind::kSilent
                                                  : AdversaryKind::kNoise;
  sc.adversary_period = milliseconds(2);
  sc.chaos_period = milliseconds(3);
  sc.chaos_duty = milliseconds(40);
  sc.chaos_count = 3;
  sc.transient_scramble = true;
  sc.transient.spurious_per_node = 16;
  const Params params = sc.make_params();
  switch (stack) {
    case StackKind::kAgree:
      // One proposal into each recovery span: after bursts 1, 2, and 3 —
      // every window's stabilization stretch has observable work to do.
      sc.with_proposal(milliseconds(5), 0, 42);
      sc.with_proposal(milliseconds(50), 1, 43);
      sc.with_proposal(milliseconds(90), 2, 44);
      sc.run_for = milliseconds(150);
      break;
    case StackKind::kBaselineTps:
      sc.with_proposal(milliseconds(4), 0, 7);
      sc.run_for = milliseconds(120);
      break;
    case StackKind::kReplicatedLog:
    case StackKind::kPipelinedLog:
      for (std::uint32_t c = 0; c < 3; ++c) {
        sc.with_proposal(milliseconds(4), NodeId(c), 100 + c);
      }
      sc.run_for = 6 * (params.delta_0() + params.delta_agr() + 10 * params.d());
      break;
    case StackKind::kPulse:
    case StackKind::kClockSync:
      sc.run_for =
          params.delta_stb() + 10 * 2 * (params.delta_0() + params.delta_agr());
      break;
  }
  return sc;
}

bool metrics_equal(const RunMetrics& a, const RunMetrics& b) {
  return a.executions == b.executions &&
         a.agreement_violations == b.agreement_violations &&
         a.validity_violations == b.validity_violations &&
         a.unanimous_decides == b.unanimous_decides &&
         a.max_decision_skew == b.max_decision_skew &&
         a.max_tau_g_skew == b.max_tau_g_skew;
}

/// Every scheduling policy of the windowed engine; the alternating runs
/// must be parity-clean under each (the adaptive per-segment shard counts
/// and repartitioning only move work between workers, never change it).
constexpr ShardSched kAllScheds[] = {ShardSched::kStatic, ShardSched::kBalance,
                                     ShardSched::kSteal, ShardSched::kLax};

// The acceptance matrix: all six StackKinds × shards ∈ {1, 2, 4} × every
// shard_sched policy, each N-cycle alternating run bit-identical to its
// all-serial twin — run digest, event/message counts, verdicts, latencies,
// AND the per-window stabilization metrics.
TEST(DutyCycleParity, EveryStackMatchesAllSerialAtEveryShardCountAndSched) {
  for (std::uint32_t k = 0; k < kStackKindCount; ++k) {
    const Scenario serial_sc = duty_scenario(StackKind(k), 0);
    const SweepRun serial = SweepRunner::run_cell(serial_sc, 21);
    for (std::uint32_t shards : {1u, 2u, 4u}) {
      for (const ShardSched sched : kAllScheds) {
        Scenario sc = duty_scenario(StackKind(k), shards);
        sc.shard_sched = sched;
        const SweepRun run = SweepRunner::run_cell(sc, 21);
        const auto label = [&] {
          return std::string(to_string(StackKind(k))) + " shards " +
                 std::to_string(shards) + " sched " + to_string(sched);
        };
        EXPECT_EQ(run.digest, serial.digest) << label();
        EXPECT_EQ(run.events, serial.events) << label();
        EXPECT_EQ(run.messages, serial.messages) << label();
        EXPECT_EQ(run.pass, serial.pass) << label();
        EXPECT_TRUE(metrics_equal(run.agreement, serial.agreement))
            << label();
        EXPECT_EQ(run.latency_ns, serial.latency_ns) << label();
        ASSERT_EQ(run.windows.size(), serial.windows.size()) << label();
        for (std::size_t w = 0; w < run.windows.size(); ++w) {
          EXPECT_EQ(run.windows[w].digest, serial.windows[w].digest)
              << label() << " window " << w;
          EXPECT_EQ(run.windows[w].events, serial.windows[w].events)
              << label() << " window " << w;
          EXPECT_EQ(run.windows[w].recovery, serial.windows[w].recovery)
              << label() << " window " << w;
        }
      }
    }
  }
}

// Adaptive per-segment shard counts: under a cost-aware policy each
// serial→sharded migration re-sizes the stabilization segment from the
// previous segment's event rate. The choice is derived from simulation
// state only — parity must hold — and every segment's count must stay in
// [1, configured]. Static keeps the configured count everywhere.
TEST(DutyCycleParity, AdaptiveSegmentShardCountsStayParityClean) {
  Scenario serial_sc = duty_scenario(StackKind::kAgree, 0);
  const SweepRun serial = SweepRunner::run_cell(serial_sc, 21);

  const auto run_duty = [&](ShardSched sched, const SweepRun& baseline) {
    Scenario sc = duty_scenario(StackKind::kAgree, 4);
    sc.seed = 21;  // the baseline cell's seed
    sc.shard_sched = sched;
    Cluster cluster(sc);
    ASSERT_TRUE(cluster.sharded());
    cluster.start();
    auto* duty = dynamic_cast<DutyWorld*>(&cluster.world());
    ASSERT_NE(duty, nullptr);
    cluster.world().run_until(RealTime::zero() + sc.run_for);
    EXPECT_EQ(evaluate_stack(cluster).digest, baseline.digest)
        << to_string(sched);
    EXPECT_EQ(cluster.world().dispatched(), baseline.events)
        << to_string(sched);
    // Three serial→sharded cuts (3, 43, 83 ms) ⇒ three sized segments.
    const std::vector<std::uint32_t>& sizes = duty->segment_shards();
    ASSERT_EQ(sizes.size(), 3u) << to_string(sched);
    bool any_multi = false;
    bool any_shrunk = false;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      EXPECT_GE(sizes[i], 1u) << to_string(sched) << " segment " << i;
      EXPECT_LE(sizes[i], 4u) << to_string(sched) << " segment " << i;
      any_multi = any_multi || sizes[i] > 1;
      any_shrunk = any_shrunk || sizes[i] < 4;
      if (sched == ShardSched::kStatic) {
        EXPECT_EQ(sizes[i], 4u) << "segment " << i;
      }
    }
    if (sched != ShardSched::kStatic) {
      // This workload's segments dispatch well under kEventsPerSegmentShard
      // per shard — the rate estimator must have shrunk at least one
      // segment below the configured count (threads cost more than they
      // save here). Deterministic: the estimate reads simulation state only.
      EXPECT_TRUE(any_shrunk) << to_string(sched);
    }
    // The aggregated scheduler stats cover every retired sharded segment;
    // windows are only counted by the threaded (multi-shard) path.
    const ShardSchedStats stats = duty->sched_stats();
    if (sched == ShardSched::kStatic || any_multi) {
      EXPECT_GT(stats.windows, 0u) << to_string(sched);
    }
    EXPECT_LE(stats.measured_windows, stats.windows) << to_string(sched);
    EXPECT_GT(duty->migration_ns(), 0u) << to_string(sched);
  };
  run_duty(ShardSched::kStatic, serial);
  run_duty(ShardSched::kBalance, serial);
}

// Piecewise stepping that lands EXACTLY on every cut — serial→sharded at
// each window end, sharded→serial at each later window start — must be
// indistinguishable from one shot, and the schedule must advance exactly
// one migration per boundary.
TEST(DutyCycleParity, PiecewiseRunsLandOnEveryCutBothDirections) {
  Scenario sc = duty_scenario(StackKind::kAgree, 4);
  sc.seed = 9;
  const SweepRun one_shot = SweepRunner::run_cell(sc, 9);

  Cluster cluster(sc);
  ASSERT_TRUE(cluster.sharded());
  cluster.start();
  auto* duty = dynamic_cast<DutyWorld*>(&cluster.world());
  ASSERT_NE(duty, nullptr);
  // Window edges: 3 (→sharded), 40 (→serial), 43 (→sharded), 80, 83.
  const std::vector<RealTime> expected_cuts = {
      RealTime::zero() + milliseconds(3), RealTime::zero() + milliseconds(40),
      RealTime::zero() + milliseconds(43), RealTime::zero() + milliseconds(80),
      RealTime::zero() + milliseconds(83)};
  ASSERT_EQ(duty->cuts(), expected_cuts);

  std::size_t crossed = 0;
  for (const RealTime cut : expected_cuts) {
    // Just before, exactly onto (inclusive run_until crosses the cut), and
    // a hair past each boundary.
    cluster.world().run_until(cut - microseconds(100));
    EXPECT_EQ(duty->migrations(), crossed) << "before cut " << crossed;
    cluster.world().run_until(cut);
    ++crossed;
    EXPECT_EQ(duty->migrations(), crossed) << "on cut " << crossed;
    cluster.world().run_until(cut + microseconds(100));
    EXPECT_EQ(duty->migrations(), crossed) << "past cut " << crossed;
    // Engine identity flips serial↔sharded at every boundary; the schedule
    // starts serial (first window opens at t = 0).
    EXPECT_EQ(duty->sharded_active(), crossed % 2 == 1);
  }
  EXPECT_EQ(duty->next_cut(), RealTime::max());

  cluster.world().run_until(RealTime::zero() + sc.run_for);
  const StackOutcome outcome = evaluate_stack(cluster);
  EXPECT_EQ(outcome.digest, one_shot.digest);
  EXPECT_EQ(cluster.world().dispatched(), one_shot.events);
}

// FaultInjector rounds after a REVERSE migration (sharded→serial→sharded
// by t = 60 ms) exercise the forged-channel keys and world-RNG position
// carried through both migration directions — still parity-clean.
TEST(DutyCycleParity, PostReverseMigrationFaultInjectionMatchesSerial) {
  const auto run_with_midrun_fault = [](std::uint32_t shards) {
    Scenario sc = duty_scenario(StackKind::kAgree, shards);
    sc.seed = 33;
    Cluster cluster(sc);
    cluster.start();
    // 60 ms: past windows [0,3) and [40,43) — three migrations, including
    // one full sharded→serial reverse leg — inside a sharded segment.
    cluster.world().run_until(RealTime::zero() + milliseconds(60));
    TransientFaultConfig second;
    second.spurious_per_node = 8;
    second.scramble_clocks = false;  // keep it an in-flight-state fault
    FaultInjector injector(cluster.world());
    injector.transient_fault(second);
    cluster.world().run_until(RealTime::zero() + sc.run_for);
    struct Out {
      std::uint64_t digest, events, forged;
    };
    return Out{evaluate_stack(cluster).digest, cluster.world().dispatched(),
               cluster.world().net_stats().forged};
  };
  const auto serial = run_with_midrun_fault(0);
  for (std::uint32_t shards : {2u, 4u}) {
    const auto sharded = run_with_midrun_fault(shards);
    EXPECT_EQ(sharded.digest, serial.digest) << "shards " << shards;
    EXPECT_EQ(sharded.events, serial.events) << "shards " << shards;
    EXPECT_EQ(sharded.forged, serial.forged) << "shards " << shards;
  }
}

// The stabilization observability layer: every window of the schedule gets
// a span, spans carry the schedule's real boundaries, and a healthy run
// re-converges (produces primary-stream records) after every burst.
TEST(DutyCycleParity, WindowMetricsCoverEveryBurst) {
  Scenario sc = duty_scenario(StackKind::kAgree, 4);
  sc.seed = 2;  // a seed whose bursts all leave room to re-converge
  Cluster cluster(sc);
  cluster.run();
  const auto windows = window_stabilization(sc, cluster.probe());
  const auto schedule = sc.chaos_windows();
  ASSERT_EQ(windows.size(), schedule.size());
  ASSERT_EQ(windows.size(), 3u);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    EXPECT_EQ(windows[w].chaos_start, schedule[w].start);
    EXPECT_EQ(windows[w].chaos_end, schedule[w].end);
    ASSERT_TRUE(windows[w].recovery.has_value()) << "window " << w;
    EXPECT_GE(*windows[w].recovery, Duration::zero());
    EXPECT_GT(windows[w].events, 0u);
    EXPECT_NE(windows[w].digest, 0u);
  }
  // The sweep reduction pools the same spans.
  const SweepRun cell = SweepRunner::run_cell(sc, sc.seed);
  ASSERT_EQ(cell.windows.size(), 3u);
}

// A window covering the whole horizon never migrates: the run stays serial
// end to end and matches the serial engine bit for bit (degrade, never
// wrongness).
TEST(DutyWorldTest, ChaosCoveringWholeHorizonStaysSerial) {
  Scenario sc = duty_scenario(StackKind::kAgree, 4);
  sc.chaos_period = milliseconds(200);  // > run_for = 150 ms
  sc.chaos_count = 1;
  sc.chaos_duty = Duration::zero();
  Scenario serial_sc = sc;
  serial_sc.shards = 0;
  const SweepRun serial = SweepRunner::run_cell(serial_sc, sc.seed);

  Cluster cluster(sc);
  cluster.start();
  auto* duty = dynamic_cast<DutyWorld*>(&cluster.world());
  ASSERT_NE(duty, nullptr);
  cluster.world().run_until(RealTime::zero() + sc.run_for);
  EXPECT_EQ(duty->migrations(), 0u);
  EXPECT_FALSE(duty->sharded_active());
  EXPECT_EQ(evaluate_stack(cluster).digest, serial.digest);
  EXPECT_EQ(cluster.world().dispatched(), serial.events);
}

// --- Scenario duty-cycle surface -------------------------------------------

TEST(ScenarioChaosTest, ValidateRejectsDegenerateCycles) {
  Scenario sc;
  EXPECT_EQ(sc.validate_chaos(), nullptr);  // default: no chaos, valid

  sc.chaos_period = milliseconds(-1);
  EXPECT_NE(sc.validate_chaos(), nullptr);
  sc.chaos_period = milliseconds(5);

  sc.chaos_first_start = milliseconds(-2);
  EXPECT_NE(sc.validate_chaos(), nullptr);
  sc.chaos_first_start = Duration::zero();

  sc.chaos_duty = milliseconds(-3);
  EXPECT_NE(sc.validate_chaos(), nullptr);

  // Overlapping recurrence: stride shorter than the window width.
  sc.chaos_duty = milliseconds(2);
  sc.chaos_count = 3;
  EXPECT_NE(sc.validate_chaos(), nullptr);
  // ...but the same stride is fine for a single window (nothing recurs),
  sc.chaos_count = 1;
  EXPECT_EQ(sc.validate_chaos(), nullptr);
  // and a stride equal to the width (back-to-back) is always sound.
  sc.chaos_count = 3;
  sc.chaos_duty = milliseconds(5);
  EXPECT_EQ(sc.validate_chaos(), nullptr);

  // A malformed schedule must never reach an engine.
  Scenario bad = duty_scenario(StackKind::kAgree, 2);
  bad.chaos_duty = milliseconds(1);  // < width 3 ms, count 3
  EXPECT_DEATH(Cluster cluster(bad), "precondition");
}

TEST(ScenarioChaosTest, WindowNormalization) {
  Scenario sc;
  sc.run_for = milliseconds(100);

  // No chaos: zero width or zero count ⇒ empty schedule.
  EXPECT_TRUE(sc.chaos_windows().empty());
  sc.chaos_period = milliseconds(5);
  sc.chaos_count = 0;
  EXPECT_TRUE(sc.chaos_windows().empty());

  // Unset stride ⇒ back-to-back bursts merge into ONE wider window — the
  // degenerate cycle degrades to the single-window shape, never to extra
  // no-op engine switches.
  sc.chaos_count = 3;
  sc.chaos_duty = Duration::zero();
  auto windows = sc.chaos_windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].start, RealTime::zero());
  EXPECT_EQ(windows[0].end, RealTime::zero() + milliseconds(15));

  // Explicit stride equal to the width merges identically.
  sc.chaos_duty = milliseconds(5);
  windows = sc.chaos_windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].end, RealTime::zero() + milliseconds(15));

  // A proper duty cycle: disjoint windows at the stride, offset by
  // chaos_first_start.
  sc.chaos_first_start = milliseconds(10);
  sc.chaos_duty = milliseconds(30);
  windows = sc.chaos_windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].start, RealTime::zero() + milliseconds(10));
  EXPECT_EQ(windows[0].end, RealTime::zero() + milliseconds(15));
  EXPECT_EQ(windows[2].start, RealTime::zero() + milliseconds(70));

  // Windows starting at or past the horizon are dropped — a burst the run
  // never reaches must not schedule dead engine switches.
  sc.chaos_count = 10;
  windows = sc.chaos_windows();
  ASSERT_EQ(windows.size(), 3u);  // starts 10, 40, 70 < 100 ≤ 100, 130, …
  EXPECT_EQ(windows.back().start, RealTime::zero() + milliseconds(70));
}

// --- export-is-terminal guards (sharded engine) ----------------------------
// The serial World's guards are pinned in test_sim; the ShardWorld ones
// live here with the rest of the reverse-migration machinery.

WorldConfig duty_world_config() {
  WorldConfig wc;
  wc.n = 4;
  wc.shards = 2;
  wc.seed = 3;
  wc.link_delay = DelayModel::uniform(microseconds(100), milliseconds(1));
  wc.proc_delay = DelayModel::uniform(Duration::zero(), microseconds(50));
  wc.has_delay_models = true;
  return wc;
}

std::unique_ptr<ShardWorld> exported_shard_world(WorldMigration* out = nullptr) {
  auto world = std::make_unique<ShardWorld>(duty_world_config());
  world->enable_handoff_export();
  world->start();
  world->run_before(RealTime::zero() + milliseconds(2));
  WorldMigration m = world->export_migration();
  if (out != nullptr) *out = std::move(m);
  return world;
}

TEST(ShardExportGuardTest, SecondExportAborts) {
  auto world = exported_shard_world();
  EXPECT_DEATH((void)world->export_migration(), "precondition");
}

TEST(ShardExportGuardTest, DispatchAfterExportAborts) {
  auto world = exported_shard_world();
  EXPECT_DEATH(world->run_until(RealTime::zero() + milliseconds(3)),
               "precondition");
}

TEST(ShardExportGuardTest, ScheduleAfterExportAborts) {
  auto world = exported_shard_world();
  EXPECT_DEATH(world->schedule(RealTime::zero() + milliseconds(3), 0, [] {}),
               "precondition");
}

TEST(ShardExportGuardTest, ExportedStateAdoptsCleanly) {
  // The happy path next to the guards: the exported snapshot round-trips
  // into a serial World and keeps running.
  WorldMigration m;
  auto world = exported_shard_world(&m);
  World adopted(duty_world_config(), std::move(m), /*handoff_export=*/false);
  adopted.run_until(RealTime::zero() + milliseconds(5));
  EXPECT_GE(adopted.now(), RealTime::zero() + milliseconds(2));
}

}  // namespace
}  // namespace ssbft
