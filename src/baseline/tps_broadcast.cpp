#include "baseline/tps_broadcast.hpp"

#include <utility>

namespace ssbft {

TpsBroadcast::TpsBroadcast(const Params& params, GeneralId general,
                           LocalTime anchor, Duration phase_len,
                           AcceptFn on_accept)
    : params_(params),
      general_(general),
      anchor_(anchor),
      phase_len_(phase_len),
      on_accept_(std::move(on_accept)) {}

void TpsBroadcast::broadcast(Value m, std::uint32_t k) {
  pending_broadcasts_.emplace_back(m, k);
}

void TpsBroadcast::buffer(const WireMessage& msg) { buffer_.push_back(msg); }

void TpsBroadcast::send(NodeContext& ctx, MsgKind kind, const Key& key) {
  WireMessage msg;
  msg.kind = kind;
  msg.general = general_;
  msg.value = key.m;
  msg.broadcaster = key.p;
  msg.round = key.k;
  ctx.send_all(msg);
}

void TpsBroadcast::on_phase(NodeContext& ctx, std::uint32_t j) {
  // Drain the buffer accumulated since the previous boundary.
  for (const WireMessage& msg : buffer_) {
    const Key key{msg.broadcaster, msg.value, msg.round};
    auto& inst = insts_[key];
    switch (msg.kind) {
      case MsgKind::kBcastInit:
        if (msg.sender == msg.broadcaster) inst.init_from_p = true;
        break;
      case MsgKind::kBcastEcho:
        inst.echo_senders.insert(msg.sender);
        break;
      case MsgKind::kBcastInitPrime:
        inst.init_prime_senders.insert(msg.sender);
        break;
      case MsgKind::kBcastEchoPrime:
        inst.echo_prime_senders.insert(msg.sender);
        break;
      default:
        break;
    }
  }
  buffer_.clear();

  // Launch broadcasts whose initiation phase (2k) has arrived.
  for (auto it = pending_broadcasts_.begin();
       it != pending_broadcasts_.end();) {
    if (j >= 2 * it->second) {
      send(ctx, MsgKind::kBcastInit, Key{ctx.id(), it->first, it->second});
      it = pending_broadcasts_.erase(it);
    } else {
      ++it;
    }
  }

  for (auto& [key, inst] : insts_) evaluate(ctx, key, inst, j);
}

void TpsBroadcast::evaluate(NodeContext& ctx, const Key& key, Instance& inst,
                            std::uint32_t j) {
  const std::uint32_t k = key.k;

  // Identical structure to msgd-broadcast's W/X/Y/Z — but gated on the
  // lock-step phase index, never on actual message arrival times.
  if (j <= 2 * k && inst.init_from_p && !inst.echo_sent) {
    inst.echo_sent = true;
    send(ctx, MsgKind::kBcastEcho, key);
  }
  if (j <= 2 * k + 1) {
    if (inst.echo_senders.size() >= params_.q_low() &&
        !inst.init_prime_sent) {
      inst.init_prime_sent = true;
      send(ctx, MsgKind::kBcastInitPrime, key);
    }
    if (inst.echo_senders.size() >= params_.q_high() && !inst.accepted) {
      inst.accepted = true;
      on_accept_(key.p, key.m, key.k);
    }
  }
  if (j <= 2 * k + 2) {
    if (inst.init_prime_senders.size() >= params_.q_low()) {
      broadcasters_.insert(key.p);
    }
    if (inst.init_prime_senders.size() >= params_.q_high() &&
        !inst.echo_prime_sent) {
      inst.echo_prime_sent = true;
      send(ctx, MsgKind::kBcastEchoPrime, key);
    }
  }
  if (inst.echo_prime_senders.size() >= params_.q_low() &&
      !inst.echo_prime_sent) {
    inst.echo_prime_sent = true;
    send(ctx, MsgKind::kBcastEchoPrime, key);
  }
  if (inst.echo_prime_senders.size() >= params_.q_high() &&
      !inst.accepted) {
    inst.accepted = true;
    on_accept_(key.p, key.m, key.k);
  }
}

}  // namespace ssbft
