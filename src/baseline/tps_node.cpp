#include "baseline/tps_node.hpp"

#include <functional>
#include <utility>
#include <vector>

namespace ssbft {

TpsNode::TpsNode(Params params, GeneralId general, LocalTime anchor,
                 Duration phase_len, DecisionSink sink)
    : params_(std::move(params)),
      general_(general),
      anchor_(anchor),
      phase_len_(phase_len),
      sink_(std::move(sink)) {}

TpsNode::~TpsNode() = default;

void TpsNode::on_start(NodeContext& ctx) {
  ctx_ = &ctx;
  bcast_ = std::make_unique<TpsBroadcast>(
      params_, general_, anchor_, phase_len_,
      [this](NodeId p, Value m, std::uint32_t k) {
        on_bcast_accept(*ctx_, p, m, k);
      });
  // Phase timers: one per boundary up to the protocol horizon (U1 analog at
  // phase 2f+1, plus the trailing relay phases).
  const std::uint32_t horizon = 2 * params_.f() + 6;
  for (std::uint32_t j = 0; j <= horizon; ++j) {
    ctx.set_timer(anchor_ + std::int64_t(j) * phase_len_, j);
  }
}

void TpsNode::propose(Value m, Payload payload) {
  propose_value_ = m;
  propose_payload_ = std::move(payload);
}

void TpsNode::on_message(NodeContext& /*ctx*/, const WireMessage& msg) {
  if (msg.general != general_) return;
  switch (msg.kind) {
    case MsgKind::kTpsGeneral:
      // Round-0 value from the General; synchrony says every correct node
      // has it by the phase-1 boundary. Equivocation is detectable here.
      if (msg.sender == general_.node) {
        if (general_value_ && *general_value_ != msg.value) {
          general_value_equivocation_ = true;
        }
        general_value_ = msg.value;
      }
      break;
    case MsgKind::kBcastInit:
    case MsgKind::kBcastEcho:
    case MsgKind::kBcastInitPrime:
    case MsgKind::kBcastEchoPrime:
      if (bcast_) bcast_->buffer(msg);
      break;
    default:
      break;
  }
}

void TpsNode::on_timer(NodeContext& ctx, std::uint64_t cookie) {
  on_phase(ctx, std::uint32_t(cookie));
}

void TpsNode::on_phase(NodeContext& ctx, std::uint32_t j) {
  last_phase_ = j;

  // General: disseminate at the phase-0 boundary.
  if (j == 0 && propose_value_ && ctx.id() == general_.node) {
    WireMessage msg;
    msg.kind = MsgKind::kTpsGeneral;
    msg.general = general_;
    msg.value = *propose_value_;
    msg.payload = propose_payload_;
    ctx.send_all(msg);
  }

  if (bcast_) bcast_->on_phase(ctx, j);
  if (returned_) return;

  // R analog (phase 1): adopt the General's unequivocal round-0 value.
  if (j == 1 && general_value_ && !general_value_equivocation_) {
    const Value m = *general_value_;
    bcast_->broadcast(m, 1);
    bcast_->on_phase(ctx, j);  // emit the init this same boundary
    do_return(ctx, m);
    return;
  }

  check_chain(ctx, j);

  // T analog: at phase 2r+1, fewer than r−1 identified broadcasters ⇒ ⊥.
  if (j >= 3 && j % 2 == 1) {
    const std::uint32_t r = (j - 1) / 2;
    if (r <= params_.f() && bcast_->broadcasters().size() + 1 < r) {
      do_return(ctx, kBottom);
      return;
    }
  }
  // U analog: hard deadline at phase 2f+1.
  if (j >= 2 * params_.f() + 1) {
    do_return(ctx, kBottom);
  }
}

std::uint32_t TpsNode::chain_length(
    const std::map<std::uint32_t, std::set<NodeId>>& rounds) const {
  // Same distinct-representatives requirement as ss-Byz-Agree's S1.
  std::vector<std::vector<NodeId>> cand;
  for (std::uint32_t r = 1; r <= params_.f() + 1; ++r) {
    const auto it = rounds.find(r);
    if (it == rounds.end()) break;
    std::vector<NodeId> nodes;
    for (NodeId p : it->second) {
      if (p != general_.node) nodes.push_back(p);
    }
    if (nodes.empty()) break;
    cand.push_back(std::move(nodes));
  }
  std::map<NodeId, std::uint32_t> matched_to;
  std::uint32_t matched = 0;
  for (std::uint32_t round = 0; round < cand.size(); ++round) {
    std::set<NodeId> visited;
    std::function<bool(std::uint32_t)> augment = [&](std::uint32_t r) -> bool {
      for (NodeId p : cand[r]) {
        if (visited.count(p)) continue;
        visited.insert(p);
        const auto it = matched_to.find(p);
        if (it == matched_to.end() || augment(it->second)) {
          matched_to[p] = r;
          return true;
        }
      }
      return false;
    };
    if (!augment(round)) break;
    ++matched;
  }
  return matched;
}

void TpsNode::check_chain(NodeContext& ctx, std::uint32_t j) {
  for (const auto& [value, rounds] : accepts_) {
    const std::uint32_t r = chain_length(rounds);
    if (r == 0) continue;
    if (j <= 2 * r + 1) {  // S analog: within the round-r deadline
      bcast_->broadcast(value, r + 1);
      bcast_->on_phase(ctx, j);
      do_return(ctx, value);
      return;
    }
  }
}

void TpsNode::on_bcast_accept(NodeContext& ctx, NodeId p, Value m,
                              std::uint32_t k) {
  accepts_[m][k].insert(p);
  if (!returned_) check_chain(ctx, last_phase_);
}

void TpsNode::do_return(NodeContext& ctx, Value value) {
  returned_ = true;
  Decision decision;
  decision.node = ctx.id();
  decision.general = general_;
  decision.value = value;
  decision.tau_g = anchor_;
  decision.at = ctx.local_now();
  result_ = decision;
  if (sink_) sink_(decision);
}

}  // namespace ssbft
