// TPS'87-style synchronous Byzantine agreement node (baseline).
//
// Assumes what the paper's protocol does NOT: a synchronized start. Every
// node is configured with the same anchor A on (zero-offset) clocks and
// steps through fixed-length phases. The agreement layer mirrors
// ss-Byz-Agree's R/S/T/U chain logic with Initiator-Accept replaced by the
// synchrony assumption: the General's round-0 value, received during phase
// 0, is adopted at the phase-1 boundary.
//
// This gives E4 its contrast: identical message pattern and resilience, but
// decision latency quantized to multiples of the worst-case phase length Φb
// — however fast the actual network happens to be. It also gives E5's
// companion ablation: started un-synchronized, this protocol simply breaks,
// which is the gap self-stabilization closes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "baseline/tps_broadcast.hpp"
#include "core/node.hpp"  // Decision / DecisionSink
#include "core/params.hpp"
#include "sim/node.hpp"

namespace ssbft {

class TpsNode : public NodeBehavior {
 public:
  /// `anchor`: common phase-0 local time (requires synchronized clocks).
  /// `phase_len`: Φb; must be ≥ d for the synchrony assumption to hold.
  /// `general`: the instance's designated General.
  TpsNode(Params params, GeneralId general, LocalTime anchor,
          Duration phase_len, DecisionSink sink);
  ~TpsNode() override;

  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const WireMessage& msg) override;
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override;
  void rebind(NodeContext& ctx) override { ctx_ = &ctx; }

  /// General role: queue value for dissemination at the phase-0 boundary.
  /// The optional application payload rides the dissemination broadcast.
  void propose(Value m, Payload payload = {});

  [[nodiscard]] bool returned() const { return returned_; }
  [[nodiscard]] std::optional<Decision> result() const { return result_; }

 private:
  void on_phase(NodeContext& ctx, std::uint32_t j);
  void on_bcast_accept(NodeContext& ctx, NodeId p, Value m, std::uint32_t k);
  void check_chain(NodeContext& ctx, std::uint32_t j);
  void do_return(NodeContext& ctx, Value value);
  [[nodiscard]] std::uint32_t chain_length(
      const std::map<std::uint32_t, std::set<NodeId>>& rounds) const;

  Params params_;
  GeneralId general_;
  LocalTime anchor_;
  Duration phase_len_;
  DecisionSink sink_;
  NodeContext* ctx_ = nullptr;

  std::unique_ptr<TpsBroadcast> bcast_;
  std::optional<Value> propose_value_;       // General only
  Payload propose_payload_;                  // body for the dissemination
  std::optional<Value> general_value_;       // received round-0 value
  bool general_value_equivocation_ = false;  // saw two different values
  std::map<Value, std::map<std::uint32_t, std::set<NodeId>>> accepts_;
  bool returned_ = false;
  std::optional<Decision> result_;
  std::uint32_t last_phase_ = 0;
};

}  // namespace ssbft
