// Lock-step (time-driven) reliable broadcast — the Toueg–Perry–Srikanth
// primitive [14] that msgd-broadcast re-derives in message-driven form.
//
// This is the comparison baseline for experiment E4. Nodes share a
// synchronized anchor A (the baseline *assumes* initial synchronization —
// exactly the assumption the paper removes) and advance in fixed-length
// phases: message buffers are examined, and messages sent, only at phase
// boundaries A + j·Φb. The message pattern and quorum tests are identical
// to msgd-broadcast; only the timing discipline differs, so any latency
// difference measured between the two is attributable to message-driven
// rounds, not to protocol structure.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "core/params.hpp"
#include "sim/node.hpp"
#include "util/types.hpp"

namespace ssbft {

class TpsBroadcast {
 public:
  using AcceptFn = std::function<void(NodeId p, Value m, std::uint32_t k)>;

  /// `phase_len` is Φb, the fixed round half-length; must cover worst-case
  /// delivery (≥ d) or the synchrony assumption is violated.
  TpsBroadcast(const Params& params, GeneralId general, LocalTime anchor,
               Duration phase_len, AcceptFn on_accept);

  /// Queue (init, p, m, k) for dissemination at the phase-2k boundary.
  void broadcast(Value m, std::uint32_t k);

  /// Buffer a message; it is processed at the next phase boundary.
  void buffer(const WireMessage& msg);

  /// Execute the phase boundary with index `j` (called by the node's
  /// phase timer): drain buffers, evaluate all instances, emit sends.
  void on_phase(NodeContext& ctx, std::uint32_t j);

  [[nodiscard]] const std::set<NodeId>& broadcasters() const {
    return broadcasters_;
  }
  [[nodiscard]] LocalTime anchor() const { return anchor_; }
  [[nodiscard]] Duration phase_len() const { return phase_len_; }

 private:
  struct Key {
    NodeId p = kNoNode;
    Value m = kBottom;
    std::uint32_t k = 0;
    auto operator<=>(const Key&) const = default;
  };
  struct Instance {
    bool init_from_p = false;
    std::set<NodeId> echo_senders;
    std::set<NodeId> init_prime_senders;
    std::set<NodeId> echo_prime_senders;
    bool echo_sent = false;
    bool init_prime_sent = false;
    bool echo_prime_sent = false;
    bool accepted = false;
  };

  void send(NodeContext& ctx, MsgKind kind, const Key& key);
  void evaluate(NodeContext& ctx, const Key& key, Instance& inst,
                std::uint32_t j);

  const Params& params_;
  GeneralId general_;
  LocalTime anchor_;
  Duration phase_len_;
  AcceptFn on_accept_;

  std::vector<WireMessage> buffer_;
  std::vector<std::pair<Value, std::uint32_t>> pending_broadcasts_;
  std::map<Key, Instance> insts_;
  std::set<NodeId> broadcasters_;
};

}  // namespace ssbft
