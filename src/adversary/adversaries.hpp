// Byzantine node behaviors.
//
// Each strategy below exercises a different clause of the paper's proofs:
//   Silent            — crash/omission (weakest; baseline f-resilience)
//   RandomNoise       — arbitrary-content flooding (stress decay/cleanup)
//   EquivocatingGeneral — different values to different halves (IA-4
//                       Uniqueness, Agreement under a faulty General)
//   StaggeredGeneral  — initiations spread in time across nodes (attacks
//                       the τG consistency of Initiator-Accept, IA-1C/3A)
//   SpamGeneral       — violates IG1/IG2 at will (tests that correct nodes'
//                       pacing checks, not the General's manners, protect
//                       the system)
//   Replay            — records real traffic and replays it later (attacks
//                       the freshness windows and ∆rmv decay)
//   QuorumFaker       — sends support/approve/ready for phantom values to a
//                       chosen subset (attacks Unforgeability, IA-2/TPS-2)
//
// Byzantine nodes have full message-content freedom but authenticated
// identity (the network stamps the true sender, Def. 2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/node.hpp"
#include "util/types.hpp"

namespace ssbft {

/// Crash-faulty node: receives and ignores everything.
class SilentAdversary : public NodeBehavior {
 public:
  void on_message(NodeContext&, const WireMessage&) override {}
};

/// Periodically floods random junk to everyone.
class RandomNoiseAdversary : public NodeBehavior {
 public:
  explicit RandomNoiseAdversary(Duration period, std::uint32_t burst = 4)
      : period_(period), burst_(burst) {}

  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext&, const WireMessage&) override {}
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override;

 private:
  WireMessage random_message(NodeContext& ctx);
  Duration period_;
  std::uint32_t burst_;
};

/// A General that sends value `v0` to nodes with id < split and `v1` to the
/// rest, then plays along with both waves of the primitive. split = n−1
/// (one victim) is the sharpest variant: the v0 wave can complete while the
/// victim must be pulled along by the relay.
class EquivocatingGeneral : public NodeBehavior {
 public:
  /// split == 0 means "n/2" (half-and-half).
  EquivocatingGeneral(Value v0, Value v1, Duration start_delay,
                      std::uint32_t split = 0)
      : v0_(v0), v1_(v1), start_delay_(start_delay), split_(split) {}

  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const WireMessage& msg) override;
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override;

 private:
  Value v0_, v1_;
  Duration start_delay_;
  std::uint32_t split_;
};

/// A General that staggers its (Initiator, G, m) sends across the nodes
/// over a span, hunting for the largest achievable τG disagreement.
class StaggeredGeneral : public NodeBehavior {
 public:
  StaggeredGeneral(Value v, Duration start_delay, Duration span)
      : v_(v), start_delay_(start_delay), span_(span) {}

  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext&, const WireMessage&) override {}
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override;

 private:
  Value v_;
  Duration start_delay_;
  Duration span_;
};

/// A General initiating fresh values far faster than IG1 permits.
class SpamGeneral : public NodeBehavior {
 public:
  explicit SpamGeneral(Duration period) : period_(period) {}

  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext&, const WireMessage&) override {}
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override;

 private:
  Duration period_;
  Value next_value_ = 100;
};

/// Records everything it hears and replays it verbatim after `delay`
/// (the sender field is its own — identity is authenticated — but the
/// payload replays a stale protocol step).
class ReplayAdversary : public NodeBehavior {
 public:
  explicit ReplayAdversary(Duration delay, std::size_t max_store = 4096)
      : delay_(delay), max_store_(max_store) {}

  void on_message(NodeContext& ctx, const WireMessage& msg) override;
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override;

 private:
  Duration delay_;
  std::size_t max_store_;
  std::vector<WireMessage> store_;
};

/// Sends complete support/approve/ready waves for a phantom value (claiming
/// General `g`) to a victim subset, trying to forge an I-accept.
class QuorumFaker : public NodeBehavior {
 public:
  QuorumFaker(GeneralId g, Value phantom, Duration period,
              std::vector<NodeId> victims)
      : g_(g), phantom_(phantom), period_(period), victims_(std::move(victims)) {}

  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext&, const WireMessage&) override {}
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override;

 private:
  GeneralId g_;
  Value phantom_;
  Duration period_;
  std::vector<NodeId> victims_;
};

}  // namespace ssbft
