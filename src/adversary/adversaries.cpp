#include "adversary/adversaries.hpp"

namespace ssbft {

// ---------------------------------------------------------------- noise --

void RandomNoiseAdversary::on_start(NodeContext& ctx) {
  ctx.set_timer_after(period_, 0);
}

WireMessage RandomNoiseAdversary::random_message(NodeContext& ctx) {
  Rng& rng = ctx.rng();
  WireMessage msg;
  msg.kind = MsgKind(rng.next_below(std::uint64_t(MsgKind::kNumKinds)));
  msg.general = GeneralId{NodeId(rng.next_below(ctx.n()))};
  msg.value = rng.next_bool(0.5) ? rng.next_below(4) : rng.next_u64();
  msg.broadcaster = NodeId(rng.next_below(ctx.n()));
  msg.round = std::uint32_t(rng.next_below(2 * ctx.n() + 2));
  return msg;
}

void RandomNoiseAdversary::on_timer(NodeContext& ctx, std::uint64_t) {
  for (std::uint32_t i = 0; i < burst_; ++i) {
    ctx.send(NodeId(ctx.rng().next_below(ctx.n())), random_message(ctx));
  }
  ctx.set_timer_after(period_, 0);
}

// --------------------------------------------------------- equivocation --

void EquivocatingGeneral::on_start(NodeContext& ctx) {
  ctx.set_timer_after(start_delay_, 0);
}

void EquivocatingGeneral::on_timer(NodeContext& ctx, std::uint64_t) {
  const std::uint32_t split = split_ == 0 ? ctx.n() / 2 : split_;
  for (NodeId dest = 0; dest < ctx.n(); ++dest) {
    WireMessage msg;
    msg.kind = MsgKind::kInitiator;
    msg.general = GeneralId{ctx.id()};
    msg.value = dest < split ? v0_ : v1_;
    ctx.send(dest, msg);
  }
}

void EquivocatingGeneral::on_message(NodeContext& ctx,
                                     const WireMessage& msg) {
  // Keep both waves alive: echo back support/approve/ready for whatever
  // value the correct nodes are currently testing — to *everyone*, since a
  // split vote is more confusing than a consistent one at this stage.
  if (msg.kind == MsgKind::kSupport || msg.kind == MsgKind::kApprove ||
      msg.kind == MsgKind::kReady) {
    if (msg.general.node != ctx.id()) return;
    WireMessage reply = msg;
    ctx.send_all(reply);
  }
}

// ------------------------------------------------------------- stagger --

void StaggeredGeneral::on_start(NodeContext& ctx) {
  ctx.set_timer_after(start_delay_, 1);
}

void StaggeredGeneral::on_timer(NodeContext& ctx, std::uint64_t cookie) {
  if (cookie == 1) {
    // Schedule one Initiator per destination, spread over the span.
    for (NodeId dest = 0; dest < ctx.n(); ++dest) {
      const Duration offset{ctx.rng().next_in(0, span_.ns())};
      ctx.set_timer_after(offset, 2 + std::uint64_t(dest));
    }
    return;
  }
  const NodeId dest = NodeId(cookie - 2);
  if (dest >= ctx.n()) return;
  WireMessage msg;
  msg.kind = MsgKind::kInitiator;
  msg.general = GeneralId{ctx.id()};
  msg.value = v_;
  ctx.send(dest, msg);
}

// ----------------------------------------------------------------- spam --

void SpamGeneral::on_start(NodeContext& ctx) {
  ctx.set_timer_after(period_, 0);
}

void SpamGeneral::on_timer(NodeContext& ctx, std::uint64_t) {
  WireMessage msg;
  msg.kind = MsgKind::kInitiator;
  msg.general = GeneralId{ctx.id()};
  msg.value = next_value_++;
  ctx.send_all(msg);
  ctx.set_timer_after(period_, 0);
}

// --------------------------------------------------------------- replay --

void ReplayAdversary::on_message(NodeContext& ctx, const WireMessage& msg) {
  if (msg.sender == ctx.id()) return;  // don't re-store own replays
  if (store_.size() >= max_store_) return;
  store_.push_back(msg);
  ctx.set_timer_after(delay_, store_.size() - 1);
}

void ReplayAdversary::on_timer(NodeContext& ctx, std::uint64_t cookie) {
  if (cookie >= store_.size()) return;
  // Replay to everyone; the network will stamp our own id as sender.
  ctx.send_all(store_[cookie]);
}

// ---------------------------------------------------------- quorum fake --

void QuorumFaker::on_start(NodeContext& ctx) {
  ctx.set_timer_after(period_, 0);
}

void QuorumFaker::on_timer(NodeContext& ctx, std::uint64_t) {
  for (const MsgKind kind :
       {MsgKind::kInitiator, MsgKind::kSupport, MsgKind::kApprove,
        MsgKind::kReady}) {
    WireMessage msg;
    msg.kind = kind;
    msg.general = g_;
    msg.value = phantom_;
    for (NodeId victim : victims_) {
      if (victim < ctx.n()) ctx.send(victim, msg);
    }
  }
  ctx.set_timer_after(period_, 0);
}

}  // namespace ssbft
