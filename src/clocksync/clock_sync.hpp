// Self-stabilizing Byzantine clock synchronization atop pulse
// synchronization.
//
// The paper's companion results ([5] "Linear Time Byzantine Self-Stabilizing
// Clock Synchronization", and the §1 discussion) show that synchronized
// pulses make *any* Byzantine algorithm self-stabilizing — clock
// synchronization being the canonical application. This module realizes
// that construction on top of PulseSyncNode (itself built on ss-Byz-Agree):
//
//   * Each node runs a logical clock C(τ) = base + (τ − anchor), a
//     free-running extension of its drifting hardware timer.
//   * Every agreed pulse (counter c) snaps the clock: base := c·cycle,
//     anchor := the pulse instant. Agreement on c makes the snap target
//     identical at all correct nodes; Timeliness-1a makes the snap instants
//     at most 3d real time apart.
//   * Precision therefore converges to  3d·(1+ρ) + 2ρ·cycle  regardless of
//     initial state: one decided pulse after stabilization overwrites any
//     scrambled base/anchor at every correct node.
//   * Optionally the clock wraps modulo M (bounded clocks are what the
//     self-stabilizing clock-sync literature requires — a transient fault
//     can set an unbounded counter arbitrarily high, which a bounded clock
//     "forgets" within one wrap).
//
// Accuracy note: each pulse advances the logical clock by exactly `cycle`,
// while the real gap between pulses is cycle (on the proposer's timer) plus
// the agreement latency. The logical clock therefore runs slightly slow
// relative to real time, by a factor ≈ cycle / (cycle + latency); the rate
// is constant-bounded, which is what digital clock synchronization promises
// (an envelope, not rate-perfect time). bench_clocksync measures it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "clocksync/clock_sync_types.hpp"
#include "core/params.hpp"
#include "pulse/pulse_sync.hpp"
#include "sim/node.hpp"

namespace ssbft {

class ClockSyncNode : public NodeBehavior {
 public:
  using AdjustSink = std::function<void(const ClockAdjustment&)>;

  ClockSyncNode(Params params, ClockSyncConfig config,
                AdjustSink sink = nullptr);
  ~ClockSyncNode() override;

  // --- NodeBehavior --------------------------------------------------------
  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const WireMessage& msg) override;
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override;
  void scramble(NodeContext& ctx, Rng& rng) override;
  void rebind(NodeContext& ctx) override {
    ctx_ = &ctx;
    pulse_->rebind(ctx);
  }

  // --- clock API -----------------------------------------------------------
  /// Current synchronized clock reading. Meaningful (within the precision
  /// bound of other correct nodes) once synchronized() is true.
  [[nodiscard]] Duration clock() const;
  /// True once at least one pulse has snapped the clock since start (or
  /// since the last transient fault hit this node).
  [[nodiscard]] bool synchronized() const { return synchronized_; }
  /// Counter of the pulse that last snapped this clock. The precision bound
  /// applies at *settled* instants — when all correct nodes report the same
  /// value here. During the ≤ 3d window in which a pulse has snapped some
  /// nodes but not yet others, the pairwise skew transiently equals the
  /// adjustment magnitude instead (Timeliness-1a bounds the window, not the
  /// jump; bench_clocksync measures both regimes).
  [[nodiscard]] std::optional<std::uint64_t> last_snap_counter() const {
    return last_snap_counter_;
  }

  [[nodiscard]] Duration cycle() const { return pulse_->cycle(); }
  [[nodiscard]] Duration modulus() const { return modulus_; }
  [[nodiscard]] const Params& params() const { return pulse_->params(); }
  /// The pulse layer (white-box tests).
  [[nodiscard]] PulseSyncNode& pulse_layer() { return *pulse_; }

  /// Precision the construction guarantees between correct nodes once
  /// stable: pulse skew (3d, Timeliness-1a) + relative drift over a cycle.
  [[nodiscard]] Duration precision_bound() const;

 private:
  void on_pulse(const PulseEvent& event);
  [[nodiscard]] Duration wrap(Duration c) const;
  /// Signed minimal residue of (a − b) under the modulus (circular error).
  [[nodiscard]] Duration circular_delta(Duration a, Duration b) const;

  ClockSyncConfig config_;
  Duration modulus_{};
  double slew_rate_ = 0.1;
  AdjustSink sink_;
  std::unique_ptr<PulseSyncNode> pulse_;
  NodeContext* ctx_ = nullptr;

  Duration base_{};       // clock value at anchor_
  LocalTime anchor_{};    // local time of the last snap
  // kSlew: leftover positive residual being absorbed (clock reads
  // base + elapsed + max(0, residual_ − slew_rate·elapsed-since-snap)).
  Duration residual_{};
  bool synchronized_ = false;
  std::optional<std::uint64_t> last_snap_counter_;
};

}  // namespace ssbft
