#include "clocksync/clock_sync.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace ssbft {

ClockSyncNode::ClockSyncNode(Params params, ClockSyncConfig config,
                             AdjustSink sink)
    : config_(config), modulus_(config.modulus), sink_(std::move(sink)) {
  PulseConfig pc;
  pc.cycle = config_.cycle;
  pc.timeout_slack = config_.timeout_slack;
  pulse_ = std::make_unique<PulseSyncNode>(
      std::move(params), pc,
      [this](const PulseEvent& event) { on_pulse(event); });
  if (modulus_ != Duration::zero()) {
    SSBFT_EXPECTS(modulus_ >= 4 * pulse_->cycle());
    // Circular residuals make slewing ill-defined; bounded clocks step.
    SSBFT_EXPECTS(config_.adjust == AdjustMode::kStep);
  }
  if (config_.slew_rate != 0.0) {
    SSBFT_EXPECTS(config_.slew_rate > 0.0 && config_.slew_rate < 1.0);
    slew_rate_ = config_.slew_rate;
  }
}

ClockSyncNode::~ClockSyncNode() = default;

void ClockSyncNode::on_start(NodeContext& ctx) {
  ctx_ = &ctx;
  anchor_ = ctx.local_now();
  pulse_->on_start(ctx);
}

void ClockSyncNode::on_message(NodeContext& ctx, const WireMessage& msg) {
  pulse_->on_message(ctx, msg);
}

void ClockSyncNode::on_timer(NodeContext& ctx, std::uint64_t cookie) {
  pulse_->on_timer(ctx, cookie);
}

void ClockSyncNode::scramble(NodeContext& ctx, Rng& rng) {
  pulse_->scramble(ctx, rng);
  // Arbitrary clock state: any base, any anchor within timer range, and the
  // node may even believe it is synchronized (the worst case).
  base_ = Duration{rng.next_in(-(1LL << 40), 1LL << 40)};
  if (modulus_ != Duration::zero()) base_ = wrap(base_);
  anchor_ = ctx.local_now() - Duration{rng.next_in(0, 1LL << 30)};
  residual_ = Duration{rng.next_in(0, 1LL << 28)};
  synchronized_ = rng.next_bool(0.5);
  last_snap_counter_ =
      synchronized_ ? std::optional<std::uint64_t>{rng.next_u64() % 1000}
                    : std::nullopt;
}

Duration ClockSyncNode::wrap(Duration c) const {
  if (modulus_ == Duration::zero()) return c;
  std::int64_t v = c.ns() % modulus_.ns();
  if (v < 0) v += modulus_.ns();
  return Duration{v};
}

Duration ClockSyncNode::circular_delta(Duration a, Duration b) const {
  if (modulus_ == Duration::zero()) return a - b;
  Duration diff = wrap(a - b);
  if (diff > modulus_ / 2) diff -= modulus_;
  return diff;
}

Duration ClockSyncNode::clock() const {
  const Duration elapsed =
      ctx_ == nullptr ? Duration::zero() : ctx_->local_now() - anchor_;
  Duration reading = base_ + elapsed;
  if (residual_ > Duration::zero()) {
    // kSlew: the unabsorbed part of a backward correction still shows; it
    // shrinks at slew_rate per unit of local time, so d(reading)/dτ =
    // 1 − slew_rate > 0 — strictly monotone.
    const auto absorbed =
        Duration{std::int64_t(slew_rate_ * double(elapsed.ns()))};
    reading += std::max(Duration::zero(), residual_ - absorbed);
  }
  return wrap(reading);
}

Duration ClockSyncNode::precision_bound() const {
  const Params& p = pulse_->params();
  // Snap instants ≤ 3d apart (Timeliness-1a); between snaps the clocks
  // free-run on hardware timers whose relative rate differs by ≤ 2ρ. The
  // 3d pulse skew itself is a real-time bound; reading it on a local timer
  // costs another factor (1+ρ), absorbed in the +d slack below.
  return 4 * p.d();
}

void ClockSyncNode::on_pulse(const PulseEvent& event) {
  SSBFT_ASSERT(ctx_ != nullptr);
  const Duration target = wrap(std::int64_t(event.counter) * pulse_->cycle());
  const Duration previous = clock();
  const Duration adjustment = circular_delta(target, previous);
  base_ = target;
  anchor_ = event.at;
  if (config_.adjust == AdjustMode::kSlew && synchronized_ &&
      adjustment < Duration::zero()) {
    // We were ahead of the snap target: absorb the backward correction by
    // under-running instead of stepping back. (An unsynchronized clock is
    // free-running garbage — stepping it is fine and faster.)
    residual_ = -adjustment;
  } else {
    residual_ = Duration::zero();
  }
  synchronized_ = true;
  last_snap_counter_ = event.counter;
  if (sink_) sink_(ClockAdjustment{event.counter, adjustment, event.at});
}

}  // namespace ssbft
