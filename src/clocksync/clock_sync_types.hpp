// Clock-sync-stack value types: adjustment policy, configuration, and the
// published resynchronization event. Kept free of the protocol
// implementation so declarative layers (Scenario, Probe) can name them
// without compiling the node machinery.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace ssbft {

/// How a pulse's correction is applied to the logical clock.
enum class AdjustMode : std::uint8_t {
  /// Jump to the snap target instantly. Simplest; readings can step
  /// backwards when the pulse gap exceeded a cycle (watchdog-skipped
  /// Byzantine slots), which some applications cannot tolerate.
  kStep,
  /// Apply backward corrections by running the clock *slower* (rate
  /// 1 − slew_rate) until the residual is absorbed — readings are strictly
  /// monotone. Forward corrections still step (stepping forward preserves
  /// monotonicity). During absorption the node's reading is up to the
  /// residual away from the settled envelope; convergence takes
  /// residual / slew_rate local time.
  kSlew,
};

struct ClockSyncConfig {
  /// Forwarded to PulseConfig (zero ⇒ pulse-layer default).
  Duration cycle = Duration::zero();
  Duration timeout_slack = Duration::zero();
  /// Clock modulus M: readings live in [0, M). Zero ⇒ unbounded clock.
  /// If set, must be ≥ 4·cycle so consecutive snap targets are unambiguous.
  /// Wrap-around requires stepping (circular residuals), so modulus ≠ 0
  /// forces AdjustMode::kStep.
  Duration modulus = Duration::zero();
  AdjustMode adjust = AdjustMode::kStep;
  /// Fraction of local-clock rate sacrificed while absorbing a backward
  /// correction in kSlew mode (0 < slew_rate < 1). 0 ⇒ default 0.1.
  double slew_rate = 0.0;
};

/// One resynchronization event: the correction applied when a pulse snapped
/// the logical clock.
struct ClockAdjustment {
  std::uint64_t pulse_counter = 0;
  Duration amount{};  // signed: target − previous reading
  LocalTime at{};
};

}  // namespace ssbft
