#include "pulse/pulse_sync.hpp"

#include <utility>

#include "util/assert.hpp"

namespace ssbft {

PulseSyncNode::PulseSyncNode(Params params, PulseConfig config,
                             PulseSink sink)
    : config_(config), sink_(std::move(sink)) {
  const Duration min_cycle = params.delta_0() + params.delta_agr();
  cycle_ = config_.cycle == Duration::zero() ? 2 * min_cycle : config_.cycle;
  SSBFT_EXPECTS(cycle_ >= min_cycle);
  const Duration slack = config_.timeout_slack == Duration::zero()
                             ? 8 * params.d()
                             : config_.timeout_slack;
  watchdog_timeout_ = cycle_ + params.delta_agr() + slack;
  agree_ = std::make_unique<SsByzNode>(
      std::move(params),
      [this](const Decision& decision) { on_decision(decision); });
}

PulseSyncNode::~PulseSyncNode() = default;

NodeId PulseSyncNode::general_for(std::uint64_t counter) const {
  return NodeId(counter % (ctx_ ? ctx_->n() : 1));
}

void PulseSyncNode::on_start(NodeContext& ctx) {
  ctx_ = &ctx;
  agree_->on_start(ctx);
  // Cold start: everyone waits out one watchdog period; the rotation then
  // produces a proposer. (A warm system pulses long before that.)
  arm_watchdog();
  schedule_own_slot();
}

void PulseSyncNode::on_message(NodeContext& ctx, const WireMessage& msg) {
  agree_->on_message(ctx, msg);
}

void PulseSyncNode::on_timer(NodeContext& ctx, std::uint64_t cookie) {
  if ((cookie & kPulseTimerBit) == 0) {
    agree_->on_timer(ctx, cookie);
    return;
  }
  const auto kind = PulseTimer((cookie >> 32) & 0xFF);
  switch (kind) {
    case PulseTimer::kProposeDue:
      maybe_propose();
      break;
    case PulseTimer::kWatchdog:
      // No staleness check needed: arming cancels the previous watchdog,
      // so only the live one ever fires. No pulse for a whole timeout ⇒
      // the scheduled General is presumed faulty. Advance the rotation;
      // the new designee proposes.
      ++counter_;
      arm_watchdog();
      maybe_propose();
      break;
  }
}

void PulseSyncNode::maybe_propose() {
  if (ctx_ == nullptr) return;
  if (general_for(counter_) != ctx_->id()) return;
  // Propose the current counter as the agreement value. Refusals (IG1/IG3
  // pacing after scrambles) are fine — the watchdog will rotate onwards.
  const ProposeStatus status = agree_->propose(Value(counter_));
  ctx_->log().logf(LogLevel::kDebug, ctx_->id(), "pulse propose c=%llu: %s",
                   static_cast<unsigned long long>(counter_),
                   to_string(status));
}

void PulseSyncNode::on_decision(const Decision& decision) {
  if (!decision.decided()) return;
  const auto c = std::uint64_t(decision.value);
  // Only honour the rotation: value c must come from General c mod n.
  // (A Byzantine node can still be *its own* slots' General — rotation
  // guarantees ≥ n−f of every n consecutive slots are correct-led.)
  if (general_for(c) != decision.general.node) return;
  // Stale/duplicate executions must not move the counter backwards — but a
  // node whose counter is pure scramble-garbage (it has never pulsed) may
  // adopt anything the cluster agrees on. Counters converge *upwards*: the
  // highest scrambled counter reaches its rotation slot within ≤ n watchdog
  // periods, proposes, and one decision pulls every correct node onto it.
  if (c < counter_ && last_pulse_.has_value()) return;
  counter_ = c + 1;
  fire_pulse(c);
  arm_watchdog();
  schedule_own_slot();
}

void PulseSyncNode::fire_pulse(std::uint64_t counter) {
  SSBFT_ASSERT(ctx_ != nullptr);
  const LocalTime now = ctx_->local_now();
  last_pulse_ = now;
  ctx_->log().logf(LogLevel::kDebug, ctx_->id(), "PULSE c=%llu",
                   static_cast<unsigned long long>(counter));
  if (sink_) sink_(PulseEvent{counter, now});
  if (tap_) tap_(PulseEvent{counter, now});
}

void PulseSyncNode::schedule_own_slot() {
  if (ctx_ == nullptr) return;
  if (general_for(counter_) != ctx_->id()) return;
  // Our slot: propose one cycle after the last pulse (or after one cycle
  // from now on a cold start).
  const LocalTime base = last_pulse_.value_or(ctx_->local_now());
  const std::uint64_t cookie =
      kPulseTimerBit | (std::uint64_t(PulseTimer::kProposeDue) << 32);
  slot_timer_ = ctx_->reschedule_timer(slot_timer_, base + cycle_, cookie);
}

void PulseSyncNode::arm_watchdog() {
  if (ctx_ == nullptr) return;
  const std::uint64_t cookie =
      kPulseTimerBit | (std::uint64_t(PulseTimer::kWatchdog) << 32);
  watchdog_timer_ = ctx_->reschedule_timer(
      watchdog_timer_, ctx_->local_now() + watchdog_timeout_, cookie);
}

void PulseSyncNode::scramble(NodeContext& ctx, Rng& rng) {
  agree_->scramble(ctx, rng);
  counter_ = rng.next_u64() % 1000;
  if (rng.next_bool(0.5)) {
    last_pulse_ = ctx.local_now() -
                  Duration{rng.next_in(0, 2 * watchdog_timeout_.ns())};
  } else {
    last_pulse_.reset();
  }
  // The node's main loop keeps running; its watchdog re-arms.
  arm_watchdog();
}

}  // namespace ssbft
