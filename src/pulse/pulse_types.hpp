// Pulse-stack value types: configuration and the published pulse event.
// Kept free of the protocol implementation so declarative layers (Scenario,
// Probe) can name them without compiling the node machinery.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace ssbft {

struct PulseConfig {
  /// Target pulse period. Must be ≥ ∆0 + ∆agr so consecutive agreements
  /// (possibly by the same General after skips) never violate IG1.
  Duration cycle = Duration::zero();  // zero ⇒ 2·(∆0 + ∆agr)
  /// Extra watchdog slack beyond cycle + ∆agr before skipping a General.
  Duration timeout_slack = Duration::zero();  // zero ⇒ 8d
};

struct PulseEvent {
  std::uint64_t counter = 0;
  LocalTime at{};  // local time of the pulse (the decision instant)
};

}  // namespace ssbft
