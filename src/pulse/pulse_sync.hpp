// Self-stabilizing Byzantine pulse synchronization atop ss-Byz-Agree.
//
// The paper (§1) notes that synchronized pulses "can actually be produced
// more efficiently atop the protocol in the current paper" (their [6],
// "Making Order in Chaos") — and that such pulses in turn let *any*
// Byzantine algorithm be made self-stabilizing. This module realizes that
// companion construction:
//
//   * Pulses are numbered by a counter c; the General for pulse c is
//     c mod n (rotating leadership).
//   * The designated General initiates ss-Byz-Agree on value c when its
//     local timer says the cycle elapsed since its previous pulse.
//   * Every correct node fires pulse c when it *decides* (G, c) — so the
//     pulse skew inherits Timeliness-1a: ≤ 3d real time between any two
//     correct nodes' pulses.
//   * A watchdog skips a silent/faulty General: if no pulse arrives within
//     cycle + ∆agr + slack, nodes advance the counter; whoever the rotation
//     now designates proposes.
//   * Counters self-stabilize through the agreement itself: a decided
//     (G, c) overwrites any corrupted local counter with c+1 at every
//     correct node, within 3d of each other.
//
// Requirements: cycle ≥ ∆0 (the General-pacing criterion IG1 — enforced at
// construction) and the usual n > 3f.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/node.hpp"
#include "core/params.hpp"
#include "pulse/pulse_types.hpp"
#include "sim/node.hpp"

namespace ssbft {

class PulseSyncNode : public NodeBehavior {
 public:
  using PulseSink = std::function<void(const PulseEvent&)>;

  PulseSyncNode(Params params, PulseConfig config, PulseSink sink);
  ~PulseSyncNode() override;

  // --- NodeBehavior --------------------------------------------------------
  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const WireMessage& msg) override;
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override;
  void scramble(NodeContext& ctx, Rng& rng) override;
  void rebind(NodeContext& ctx) override {
    ctx_ = &ctx;
    agree_->rebind(ctx);
  }

  [[nodiscard]] std::uint64_t counter() const { return counter_; }
  [[nodiscard]] std::optional<LocalTime> last_pulse_at() const {
    return last_pulse_;
  }
  [[nodiscard]] const Params& params() const { return agree_->params(); }
  [[nodiscard]] Duration cycle() const { return cycle_; }

  /// The embedded agreement node (harness probes, white-box tests).
  [[nodiscard]] SsByzNode& agreement() { return *agree_; }

  /// Secondary observer invoked after the primary sink on every pulse —
  /// lets the harness watch pulses when the sink is consumed by a higher
  /// layer (clock sync).
  void set_pulse_tap(PulseSink tap) { tap_ = std::move(tap); }

 private:
  // Timer-cookie namespace: the top bit separates pulse-layer timers from
  // the embedded SsByzNode's cookies.
  static constexpr std::uint64_t kPulseTimerBit = 1ULL << 63;
  enum class PulseTimer : std::uint8_t { kProposeDue = 1, kWatchdog = 2 };

  void on_decision(const Decision& decision);
  void fire_pulse(std::uint64_t counter);
  void schedule_own_slot();
  void arm_watchdog();
  void maybe_propose();
  [[nodiscard]] NodeId general_for(std::uint64_t counter) const;

  PulseConfig config_;
  Duration cycle_{};
  Duration watchdog_timeout_{};
  PulseSink sink_;
  PulseSink tap_;
  std::unique_ptr<SsByzNode> agree_;
  NodeContext* ctx_ = nullptr;

  std::uint64_t counter_ = 0;
  std::optional<LocalTime> last_pulse_;
  // First-class timer tickets (sim/node.hpp): re-arming cancels the live
  // predecessor, so stale watchdog/slot fires no longer happen at all —
  // this replaces the old watchdog-epoch staleness counter.
  TimerHandle watchdog_timer_{};
  TimerHandle slot_timer_{};
};

}  // namespace ssbft
