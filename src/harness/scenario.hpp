// Declarative experiment scenarios.
//
// A Scenario describes one simulated deployment: which protocol stack runs
// on the correct nodes, cluster size, fault mix, delay distribution,
// workload (who proposes what, when), and whether the run starts from a
// transient-fault state. The Cluster (runner.hpp) turns it into a World via
// the StackRegistry; every bench, example, tool, and integration test is
// phrased this way so experiments are reproducible from (Scenario, seed)
// alone — for any layer of the paper's construction, not just agreement.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "app/log_types.hpp"
#include "clocksync/clock_sync_types.hpp"
#include "core/params.hpp"
#include "pulse/pulse_types.hpp"
#include "sim/delay_model.hpp"
#include "sim/fault_injector.hpp"
#include "sim/network.hpp"  // ChaosWindow
#include "sim/topology.hpp"
#include "sim/world.hpp"    // ShardSched
#include "util/time.hpp"
#include "util/types.hpp"

namespace ssbft {

enum class AdversaryKind {
  kSilent,
  kNoise,
  kEquivocatingGeneral,
  kStaggeredGeneral,
  kSpamGeneral,
  kReplay,
  kQuorumFaker,
};

/// Number of AdversaryKind enumerators (keep in sync; test_enums checks
/// that to_string covers exactly this many).
inline constexpr std::uint32_t kAdversaryKindCount = 7;

[[nodiscard]] const char* to_string(AdversaryKind kind);

/// Which protocol stack the correct nodes run — the paper's layering, each
/// level deployable through the same Scenario → Cluster path:
///   kAgree          ss-Byz-Agree (§3), the base agreement primitive
///   kPulse          pulse synchronization atop agreement (ref [6])
///   kClockSync      self-stabilizing clock sync atop pulses (ref [5])
///   kReplicatedLog  sequential state-machine replication
///   kPipelinedLog   footnote-9 concurrent-instance SMR
///   kBaselineTps    TPS'87 time-driven baseline (synchronized start)
enum class StackKind {
  kAgree,
  kPulse,
  kClockSync,
  kReplicatedLog,
  kPipelinedLog,
  kBaselineTps,
};

/// Number of StackKind enumerators (see kAdversaryKindCount).
inline constexpr std::uint32_t kStackKindCount = 6;

[[nodiscard]] const char* to_string(StackKind kind);

struct Scenario {
  // --- stack -------------------------------------------------------------
  /// Which protocol runs on the correct nodes. Byzantine nodes always run
  /// the configured adversary, whatever the stack.
  StackKind stack = StackKind::kAgree;
  /// Per-stack configuration, consulted by the matching factory only.
  PulseConfig pulse{};          // kPulse
  ClockSyncConfig clock_sync{}; // kClockSync
  LogConfig log{};              // kReplicatedLog
  PipelineConfig pipeline{};    // kPipelinedLog
  struct TpsConfig {
    NodeId general = 0;  // the baseline's designated General
    /// Common phase-0 local time (the synchrony assumption's anchor).
    Duration anchor = milliseconds(5);
    Duration phase_len = Duration::zero();  // zero ⇒ Φb = 2d
  } tps{};                      // kBaselineTps

  // --- topology / model -------------------------------------------------
  std::uint32_t n = 7;
  std::uint32_t f = 2;  // design bound; actual faults = byz_nodes.size()
  Duration delta = milliseconds(1);
  Duration pi = microseconds(50);
  double rho = 1e-4;
  /// Actual link-delay distribution (≤ δ). Unset ⇒ uniform [δ/5, δ].
  std::optional<DelayModel> link_delay;
  /// Spread of initial clock offsets. Unset ⇒ the World default, except
  /// kBaselineTps, whose synchrony assumption forces zero offset.
  std::optional<Duration> max_clock_offset;

  // --- dissemination overlay (sim/topology.hpp) ---------------------------
  /// Broadcast fan-out shape: flat all-to-all (the default, byte-identical
  /// to the pre-topology engine), federated two-level clusters, or a gossip
  /// relay tree. Non-flat topologies DEGRADE TO FLAT when the scenario has
  /// a chaos schedule (relay subtrees must not silently vanish to chaos
  /// drops) — degrade, never wrongness. See validate_topology().
  Topology topology = Topology::kFlat;
  /// kFederated: nodes per contiguous cluster; must be ≥ 1 and divide n.
  std::uint32_t cluster_size = 0;
  /// kGossip: relay-tree arity; must be ≥ 1.
  std::uint32_t gossip_fanout = 0;

  /// nullptr when the topology knobs are well-formed; otherwise a static
  /// message naming the violation. Cluster::build refuses malformed knobs
  /// up front, mirroring validate_chaos.
  [[nodiscard]] const char* validate_topology() const;
  /// The overlay the engines actually run: the configured topology, except
  /// any non-flat choice degrades to flat when chaos windows exist.
  /// Degenerate-but-sound knobs degrade further inside
  /// TopologyConfig::resolved at engine construction.
  [[nodiscard]] TopologyConfig effective_topology() const;

  // --- faults ------------------------------------------------------------
  std::vector<NodeId> byz_nodes;  // which nodes are Byzantine (may be empty)
  AdversaryKind adversary = AdversaryKind::kSilent;
  /// Adversary knobs (used by the kinds that need them).
  Value equivocate_v0 = 1, equivocate_v1 = 2;
  std::uint32_t equivocate_split = 0;  // 0 ⇒ n/2
  Duration adversary_start = milliseconds(2);
  Duration adversary_period = milliseconds(1);
  Duration stagger_span = milliseconds(4);

  // --- initial state / recurring chaos -----------------------------------
  bool transient_scramble = false;
  TransientFaultConfig transient{};
  /// Width of each chaos window: the network behaves arbitrarily for this
  /// long from the window's start. Zero ⇒ no chaos. With the defaults
  /// below this is the classic one-shot transient [0, ι0).
  Duration chaos_period = Duration::zero();
  /// Chaos duty cycle: the first window starts here (default: t=0)...
  Duration chaos_first_start = Duration::zero();
  /// ...windows repeat with this start-to-start stride (zero ⇒ back-to-
  /// back, i.e. the window width — only meaningful with chaos_count > 1;
  /// any other value must be ≥ chaos_period or the windows would overlap,
  /// which validate_chaos rejects)...
  Duration chaos_duty = Duration::zero();
  /// ...for this many windows.
  std::uint32_t chaos_count = 1;

  /// nullptr when the chaos duty cycle is well-formed; otherwise a static
  /// message naming the violation. Cluster::build refuses invalid cycles
  /// up front — a malformed schedule must never silently run.
  [[nodiscard]] const char* validate_chaos() const;
  /// The normalized chaos schedule: absolute windows, sorted, contiguous
  /// ones merged, windows starting at or past run_for dropped. Degenerate
  /// inputs (zero width, zero count, first start past the horizon) degrade
  /// toward an EMPTY schedule — never-faulty network — never to wrongness.
  [[nodiscard]] std::vector<ChaosWindow> chaos_windows() const;

  // --- ablation knobs ------------------------------------------------------
  /// Override Block R's freshness window (zero ⇒ default 5d; Fig. 1's
  /// literal value is 4d — see bench_ablation).
  Duration r1_window = Duration::zero();
  /// Disable the cleanup/decay blocks (removes self-stabilization).
  bool cleanup_enabled = true;
  /// Message-count thresholds (footnote 7): kOptimal = n−f/n−2f,
  /// kMajority = ⌊(n+f)/2⌋+1 / f+1.
  QuorumPolicy quorum_policy = QuorumPolicy::kOptimal;

  // --- wire authentication / payloads --------------------------------------
  /// Message-authentication scheme (sim/auth.hpp). kNull keeps the legacy
  /// abstract-authentication model; kHmac tags every send with a keyed
  /// deterministic MAC and discards tag mismatches at delivery, so chaos
  /// corruption and fault-injector forgeries become measurably rejectable
  /// (net_stats().auth_rejected).
  AuthKind auth = AuthKind::kNull;
  /// Attach a deterministic application payload of this many bytes to each
  /// workload injection (0 ⇒ legacy bare commands). Bodies ride the shared
  /// payload pool end to end; the log stacks hash them into the digest.
  std::uint32_t payload_bytes = 0;

  // --- workload ----------------------------------------------------------
  /// One workload injection. Meaning is stack-dependent: a General-role
  /// propose() for kAgree/kBaselineTps, a client submit() for the log
  /// stacks; the self-clocking stacks (kPulse, kClockSync) ignore it.
  struct Proposal {
    Duration at{};        // real-time offset from t=0
    NodeId general = 0;   // must be a correct node to take effect
    Value value = 1;
  };
  std::vector<Proposal> proposals;

  // --- run control ---------------------------------------------------------
  Duration run_for = milliseconds(200);
  std::uint64_t seed = 1;
  LogLevel log_level = LogLevel::kWarn;
  /// Shards for the conservative-parallel engine (0/1 ⇒ serial engine).
  /// Requires a link_delay with a positive minimum to take effect (the
  /// lookahead); results are bit-identical to serial for any value. With a
  /// chaos schedule the deployment alternates: each chaos window runs on
  /// the serial engine and each stabilization stretch on the windowed
  /// engine, with a full state migration at every boundary
  /// (sim/duty_world.hpp) — still bit-identical to an all-serial run.
  std::uint32_t shards = 0;
  /// Shard scheduling policy: static blocks, cost-aware repartitioning,
  /// deterministic work stealing, or lax (slack-barrier) windows — see
  /// ShardSched in sim/world.hpp. Bit-identical results either way; the
  /// policy only changes how work spreads across shard workers.
  ShardSched shard_sched = ShardSched::kStatic;
  /// Node timers ride the hierarchical timer wheel (WorldConfig doc).
  /// false ⇒ legacy heap-resident timers; observable histories identical.
  bool timer_wheel = true;
  /// Record a structured trace of the run (harness/trace.hpp): protocol
  /// round spans, engine window/steal/migration events, workload and chaos
  /// instants. Observation only — digests are bit-identical either way
  /// (test_trace pins it); read the timeline via Cluster::tracer() and
  /// export with TraceWriter. Builds with -DSSBFT_TRACING=0 record nothing.
  bool trace = false;

  [[nodiscard]] Params make_params() const;
  [[nodiscard]] bool is_byzantine(NodeId id) const;

  /// Convenience: mark the last `count` nodes Byzantine.
  Scenario& with_tail_faults(std::uint32_t count);
  /// Convenience: one proposal by `general` at `at`.
  Scenario& with_proposal(Duration at, NodeId general, Value value);
  /// Convenience: select the protocol stack.
  Scenario& with_stack(StackKind kind);
};

}  // namespace ssbft
