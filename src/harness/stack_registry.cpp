#include "harness/stack_registry.hpp"

#include <utility>

#include "app/pipelined_log.hpp"
#include "app/replicated_log.hpp"
#include "baseline/tps_node.hpp"
#include "clocksync/clock_sync.hpp"
#include "pulse/pulse_sync.hpp"
#include "util/assert.hpp"

namespace ssbft {

namespace {

/// A DecisionSink that stamps real time and forwards to the probe.
DecisionSink decision_publisher(WorldBase& world, Probe& probe) {
  WorldBase* w = &world;
  Probe* p = &probe;
  return [w, p](const Decision& d) { publish_decision(*w, *p, d); };
}

std::unique_ptr<NodeBehavior> make_agree(const StackBuild& b) {
  return std::make_unique<SsByzNode>(b.params,
                                     decision_publisher(b.world, b.probe));
}

std::unique_ptr<NodeBehavior> make_pulse(const StackBuild& b) {
  WorldBase* w = &b.world;
  Probe* p = &b.probe;
  const NodeId id = b.id;
  auto node = std::make_unique<PulseSyncNode>(
      b.params, b.scenario.pulse, [w, p, id](const PulseEvent& e) {
        p->on_pulse(TimedPulse{id, e, w->now()});
      });
  node->agreement().set_decision_tap(decision_publisher(b.world, b.probe));
  return node;
}

std::unique_ptr<NodeBehavior> make_clock_sync(const StackBuild& b) {
  WorldBase* w = &b.world;
  Probe* p = &b.probe;
  const NodeId id = b.id;
  auto node = std::make_unique<ClockSyncNode>(
      b.params, b.scenario.clock_sync, [w, p, id](const ClockAdjustment& a) {
        p->on_adjustment(TimedAdjustment{id, a, w->now()});
      });
  node->pulse_layer().set_pulse_tap([w, p, id](const PulseEvent& e) {
    p->on_pulse(TimedPulse{id, e, w->now()});
  });
  node->pulse_layer().agreement().set_decision_tap(
      decision_publisher(b.world, b.probe));
  return node;
}

std::unique_ptr<NodeBehavior> make_replicated_log(const StackBuild& b) {
  WorldBase* w = &b.world;
  Probe* p = &b.probe;
  const NodeId id = b.id;
  auto node = std::make_unique<ReplicatedLogNode>(
      b.params, b.scenario.log, [w, p, id](const CommittedEntry& e) {
        p->on_commit(TimedCommit{id, e, w->now()});
      });
  node->agreement().set_decision_tap(decision_publisher(b.world, b.probe));
  return node;
}

std::unique_ptr<NodeBehavior> make_pipelined_log(const StackBuild& b) {
  WorldBase* w = &b.world;
  Probe* p = &b.probe;
  const NodeId id = b.id;
  auto node = std::make_unique<PipelinedLogNode>(
      b.params, b.scenario.pipeline, [w, p, id](const PipelinedEntry& e) {
        p->on_delivery(TimedDelivery{id, e, w->now()});
      });
  node->agreement().set_decision_tap(decision_publisher(b.world, b.probe));
  return node;
}

std::unique_ptr<NodeBehavior> make_baseline_tps(const StackBuild& b) {
  const auto& cfg = b.scenario.tps;
  const Duration phase = cfg.phase_len == Duration::zero()
                             ? 2 * b.params.d()
                             : cfg.phase_len;
  return std::make_unique<TpsNode>(
      b.params, GeneralId{cfg.general}, LocalTime::zero() + cfg.anchor, phase,
      decision_publisher(b.world, b.probe));
}

// --- workload injectors ----------------------------------------------------
// The dynamic_casts only reject a behavior when someone replaced a built-in
// factory without replacing the injector; nullopt then surfaces as "nothing
// injected" rather than a bad cast.

std::optional<ProposeStatus> inject_agree(NodeBehavior& behavior, Value v,
                                          const Payload& payload) {
  auto* node = dynamic_cast<SsByzNode*>(&behavior);
  if (node == nullptr) return std::nullopt;
  return node->propose(v, 0, payload);
}

std::optional<ProposeStatus> inject_tps(NodeBehavior& behavior, Value v,
                                        const Payload& payload) {
  auto* node = dynamic_cast<TpsNode*>(&behavior);
  if (node == nullptr) return std::nullopt;
  node->propose(v, payload);
  return ProposeStatus::kSent;
}

std::optional<ProposeStatus> inject_log(NodeBehavior& behavior, Value v,
                                        const Payload& payload) {
  auto* node = dynamic_cast<ReplicatedLogNode*>(&behavior);
  if (node == nullptr) return std::nullopt;
  node->submit(std::uint32_t(v), payload);
  return ProposeStatus::kSent;
}

std::optional<ProposeStatus> inject_pipelined(NodeBehavior& behavior, Value v,
                                              const Payload& payload) {
  auto* node = dynamic_cast<PipelinedLogNode*>(&behavior);
  if (node == nullptr) return std::nullopt;
  node->submit(std::uint32_t(v), payload);
  return ProposeStatus::kSent;
}

}  // namespace

void publish_decision(WorldBase& world, Probe& probe, const Decision& d) {
  TimedDecision td;
  td.decision = d;
  td.real_at = world.now();
  td.tau_g_real = world.real_at(d.node, d.tau_g);
  probe.on_decision(td);
}

StackRegistry& StackRegistry::instance() {
  static StackRegistry registry;
  return registry;
}

StackRegistry::StackRegistry() {
  entries_[StackKind::kAgree] = {make_agree, inject_agree};
  entries_[StackKind::kPulse] = {make_pulse, nullptr};
  entries_[StackKind::kClockSync] = {make_clock_sync, nullptr};
  entries_[StackKind::kReplicatedLog] = {make_replicated_log, inject_log};
  entries_[StackKind::kPipelinedLog] = {make_pipelined_log, inject_pipelined};
  entries_[StackKind::kBaselineTps] = {make_baseline_tps, inject_tps};
}

void StackRegistry::add(StackKind kind, StackFactory factory,
                        StackInjector injector) {
  SSBFT_EXPECTS(factory != nullptr);
  entries_[kind] = {std::move(factory), std::move(injector)};
}

bool StackRegistry::has(StackKind kind) const {
  return entries_.count(kind) != 0;
}

const StackEntry& StackRegistry::entry(StackKind kind) const {
  const auto it = entries_.find(kind);
  SSBFT_EXPECTS(it != entries_.end());
  return it->second;
}

}  // namespace ssbft
