// SweepRunner: parallel multi-scenario execution.
//
// A sweep is a grid of Scenarios × seeds. Every (Scenario, seed) cell runs
// in a fully independent World — its own event queue, network, RNG streams,
// probe — so a run's outcome is a pure function of the cell, no matter
// which worker thread executes it or in what order. Workers pull cells
// longest-job-first (see schedule_order) from an atomic cursor; results
// land in grid order (scenario-major, seed-minor)
// in a preallocated vector, and the per-run digest lets tests assert that a
// 4-thread sweep is bit-identical to serial execution. Reduction produces a
// SweepReport: pass/fail counts, pooled latency percentiles, events/sec and
// scenarios/sec over the whole grid.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "util/stats.hpp"

namespace ssbft {

/// One completed (Scenario, seed) cell.
struct SweepRun {
  std::size_t scenario_index = 0;
  std::uint64_t seed = 0;
  StackKind stack = StackKind::kAgree;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  AdversaryKind adversary = AdversaryKind::kSilent;

  bool pass = false;
  std::uint64_t digest = 0;        // run_digest(): bit-exact run fingerprint
  RunMetrics agreement{};          // decision-stream accounting
  std::vector<double> latency_ns;  // proposal → decided-return latencies
  /// Per-chaos-window re-convergence metrics (empty without a chaos
  /// schedule): one entry per window of Scenario::chaos_windows.
  std::vector<WindowStabilization> windows;

  std::uint64_t events = 0;    // queue dispatches
  std::uint64_t messages = 0;  // wire sends admitted
  Duration sim_time{};         // simulated horizon (scenario.run_for)
  double wall_seconds = 0;     // this run alone, in its worker
};

/// Whole-grid reduction.
struct SweepReport {
  std::vector<SweepRun> runs;  // grid order: scenario-major, seed-minor
  std::uint32_t passed = 0;
  std::uint32_t failed = 0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  double wall_seconds = 0;  // whole-sweep wall clock (not summed CPU)
  double events_per_sec = 0;
  double scenarios_per_sec = 0;
  SampleSet latency;  // pooled decision latencies (ns)
  // Chaos duty-cycle accounting, pooled over the grid: how many windows
  // were observed, how many were followed by a primary-stream record
  // before the next window (re-convergence events), and the recovery-time
  // distribution of those that were.
  std::uint32_t chaos_windows = 0;
  std::uint32_t recovered_windows = 0;
  SampleSet recovery_ns;  // chaos end → first primary record (ns)

  [[nodiscard]] bool all_passed() const { return failed == 0; }
};

struct SweepSpec {
  std::vector<Scenario> scenarios;
  /// Each scenario runs with seeds seed0, seed0+1, …, seed0+seeds−1
  /// (overriding Scenario::seed).
  std::uint32_t seeds_per_scenario = 1;
  std::uint64_t seed0 = 1;
  /// Worker threads; 0 ⇒ hardware concurrency, 1 ⇒ run inline in the
  /// caller's thread (no pool — the serial baseline benches time against).
  /// Cells whose Scenario::shards > 1 spawn their own shard workers INSIDE
  /// a sweep worker; results are identical either way (digest parity), but
  /// combining a wide sweep pool with many-shard cells oversubscribes the
  /// machine — prefer sharding the cells OR the sweep, not both.
  std::uint32_t threads = 0;
  /// Optional per-run observer, invoked in the worker thread after the cell
  /// completes and before its Cluster is destroyed (the only moment node
  /// state is still inspectable). Must be thread-safe when threads > 1.
  std::function<void(const SweepRun&, Cluster&)> per_run;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepSpec spec);

  /// Execute the full grid and reduce. Deterministic per cell; the report's
  /// runs vector is in grid order regardless of worker scheduling.
  [[nodiscard]] SweepReport run();

  /// Evaluate one (Scenario, seed) cell in the calling thread — the exact
  /// procedure a worker applies, exposed for determinism tests and tools.
  [[nodiscard]] static SweepRun run_cell(
      const Scenario& scenario, std::uint64_t seed,
      std::size_t scenario_index = 0,
      const std::function<void(const SweepRun&, Cluster&)>& per_run = nullptr);

  /// Cell pickup order: longest-job-first by estimated cost (run_for × n²),
  /// stable within equal cost. Results always land in grid order; only the
  /// pool's pickup sequence changes. Exposed for tests.
  [[nodiscard]] static std::vector<std::size_t> schedule_order(
      const SweepSpec& spec);

 private:
  SweepSpec spec_;
};

/// Cartesian scenario grid: base × n × f × adversary, with f defaulting to
/// ⌊(n−1)/3⌋ and the actual Byzantine set re-derived as f tail faults per
/// combination. Combinations violating n > 3f are skipped.
struct SweepGrid {
  Scenario base{};
  std::vector<std::uint32_t> ns{};           // empty ⇒ {base.n}
  std::vector<std::uint32_t> fs{};           // empty ⇒ derive per n
  std::vector<AdversaryKind> adversaries{};  // empty ⇒ {base.adversary}

  [[nodiscard]] std::vector<Scenario> expand() const;
};

}  // namespace ssbft
