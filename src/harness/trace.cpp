#include "harness/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

namespace ssbft {

const char* to_string(TraceLayer layer) {
  switch (layer) {
    case TraceLayer::kProtocol: return "protocol";
    case TraceLayer::kEngine: return "engine";
    case TraceLayer::kWorkload: return "workload";
  }
  return "?";
}

const char* to_string(TraceName name) {
  switch (name) {
    case TraceName::kAgreeRound: return "agree_round";
    case TraceName::kQuorumProgress: return "quorum_progress";
    case TraceName::kPulse: return "pulse";
    case TraceName::kClockSnap: return "clock_snap";
    case TraceName::kLogCommit: return "log_commit";
    case TraceName::kCommit: return "commit";
    case TraceName::kDecision: return "decision";
    case TraceName::kDelivery: return "delivery";
    case TraceName::kWindow: return "window";
    case TraceName::kWindowEvents: return "window_events";
    case TraceName::kOwnerImbalance: return "owner_imbalance_x1000";
    case TraceName::kRepartition: return "repartition";
    case TraceName::kSteal: return "steal";
    case TraceName::kLaxPublish: return "lax_publish";
    case TraceName::kChaosWindow: return "chaos_window";
    case TraceName::kMigrateToSerial: return "migrate_to_serial";
    case TraceName::kMigrateToSharded: return "migrate_to_sharded";
    case TraceName::kMigrateExport: return "migrate_export";
    case TraceName::kMigrateAdopt: return "migrate_adopt";
    case TraceName::kInject: return "inject";
    case TraceName::kChaosDrop: return "chaos_drop";
    case TraceName::kChaosCorrupt: return "chaos_corrupt";
    case TraceName::kChaosDelay: return "chaos_delay";
    case TraceName::kChaosDuplicate: return "chaos_duplicate";
    case TraceName::kForged: return "forged";
    case TraceName::kAuthReject: return "auth_reject";
    case TraceName::kRelay: return "topology_relay";
  }
  return "?";
}

void TraceBuffer::append_to(std::vector<TraceRecord>& out) const {
  const std::uint64_t size =
      count_ < ring_.size() ? count_ : std::uint64_t(ring_.size());
  const std::uint64_t first = count_ - size;  // oldest surviving push index
  out.reserve(out.size() + std::size_t(size));
  for (std::uint64_t i = 0; i < size; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
}

namespace {

// Unique per-Tracer epoch: a thread's cached buffer pointer is only valid
// for the tracer that created it; a destroyed tracer's epoch never recurs,
// so stale caches miss instead of dereferencing a dead buffer.
std::atomic<std::uint64_t> g_tracer_epoch{1};

struct TlBufferCache {
  std::uint64_t epoch = 0;
  TraceBuffer* buf = nullptr;
};
thread_local TlBufferCache tl_buffer_cache;

}  // namespace

Tracer::Tracer(std::size_t buffer_capacity)
    : epoch_(g_tracer_epoch.fetch_add(1, std::memory_order_relaxed)),
      capacity_(buffer_capacity == 0 ? 1 : buffer_capacity) {}

Tracer::~Tracer() = default;

TraceBuffer* Tracer::thread_buffer() {
  TlBufferCache& cache = tl_buffer_cache;
  if (cache.epoch == epoch_) return cache.buf;
  std::lock_guard<std::mutex> lock(mutex_);
  thread_buffers_.push_back(std::make_unique<TraceBuffer>(capacity_));
  cache = TlBufferCache{epoch_, thread_buffers_.back().get()};
  return cache.buf;
}

TraceBuffer* Tracer::keyed_buffer(std::uint32_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [k, buf] : keyed_) {
    if (k == key) return buf.get();
  }
  keyed_.emplace_back(key, std::make_unique<TraceBuffer>(capacity_));
  return keyed_.back().second.get();
}

std::vector<TraceRecord> Tracer::merged() const {
  std::vector<TraceRecord> out;
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint32_t> keys;
  for (const auto& [k, buf] : keyed_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  for (const std::uint32_t k : keys) {
    for (const auto& [key, buf] : keyed_) {
      if (key == k) buf->append_to(out);
    }
  }
  for (const auto& buf : thread_buffers_) buf->append_to(out);
  // Stable: equal-time records keep their per-buffer emission order, and
  // the keyed (single-threaded engine) buffers lead — so window/chaos span
  // begin/end pairs never interleave illegally at shared edges.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.when_ns < b.when_ns;
                   });
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [k, buf] : keyed_) total += buf->pushed();
  for (const auto& buf : thread_buffers_) total += buf->pushed();
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [k, buf] : keyed_) total += buf->dropped();
  for (const auto& buf : thread_buffers_) total += buf->dropped();
  return total;
}

namespace {

/// Protocol/workload records render on per-node tracks; engine records on
/// their lane tracks. Offsetting node tids keeps the two spaces disjoint.
constexpr std::uint32_t kNodeTidBase = 1000;

std::uint32_t tid_of(const TraceRecord& r) {
  return r.layer == TraceLayer::kEngine ? r.lane : kNodeTidBase + r.lane;
}

void append_tid_name(std::string& out, std::uint32_t tid) {
  char buf[32];  // longest is "node 4294967295" — keeps `line` provably ample
  if (tid >= kNodeTidBase) {
    std::snprintf(buf, sizeof buf, "node %u", tid - kNodeTidBase);
  } else if (tid == kLaneWindows) {
    std::snprintf(buf, sizeof buf, "engine windows");
  } else if (tid == kLaneDuty) {
    std::snprintf(buf, sizeof buf, "duty cycle");
  } else {
    std::snprintf(buf, sizeof buf, "worker %u", tid - kLaneWorker0);
  }
  char line[160];
  std::snprintf(line, sizeof line,
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":%u,\"args\":{\"name\":\"%s\"}},\n",
                tid, buf);
  out += line;
}

void append_event(std::string& out, const TraceRecord& r, bool last) {
  const char* name = to_string(r.name);
  const char* cat = to_string(r.layer);
  const double ts = double(r.when_ns) / 1000.0;  // microseconds
  const std::uint32_t tid = tid_of(r);
  char line[320];
  switch (r.kind) {
    case TraceKind::kSpanBegin:
      std::snprintf(line, sizeof line,
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"B\","
                    "\"ts\":%.3f,\"pid\":0,\"tid\":%u,"
                    "\"args\":{\"arg\":%lld}}",
                    name, cat, ts, tid, static_cast<long long>(r.arg));
      break;
    case TraceKind::kSpanEnd:
      std::snprintf(line, sizeof line,
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"E\","
                    "\"ts\":%.3f,\"pid\":0,\"tid\":%u}",
                    name, cat, ts, tid);
      break;
    case TraceKind::kAsyncBegin:
    case TraceKind::kAsyncEnd:
      std::snprintf(line, sizeof line,
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                    "\"id\":\"0x%llx\",\"ts\":%.3f,\"pid\":0,\"tid\":%u,"
                    "\"args\":{\"arg\":%lld}}",
                    name, cat, r.kind == TraceKind::kAsyncBegin ? 'b' : 'e',
                    static_cast<unsigned long long>(r.id), ts, tid,
                    static_cast<long long>(r.arg));
      break;
    case TraceKind::kInstant:
      std::snprintf(line, sizeof line,
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                    "\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%u,"
                    "\"args\":{\"arg\":%lld}}",
                    name, cat, ts, tid, static_cast<long long>(r.arg));
      break;
    case TraceKind::kCounter:
      std::snprintf(line, sizeof line,
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\","
                    "\"ts\":%.3f,\"pid\":0,\"tid\":%u,"
                    "\"args\":{\"value\":%lld}}",
                    name, cat, ts, tid, static_cast<long long>(r.arg));
      break;
  }
  out += line;
  out += last ? "\n" : ",\n";
}

}  // namespace

std::string TraceWriter::to_json(std::vector<TraceRecord> records,
                                 std::uint64_t dropped) {
  std::stable_sort(records.begin(), records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.when_ns < b.when_ns;
                   });

  // Normalize: a valid artifact needs every sync stack balanced per lane
  // and every async (name, id) opened as often as it closes. Runs stop
  // mid-round all the time (that is what the horizon means), and a ring
  // can overwrite a begin — drop orphaned ends, close open spans at the
  // final timestamp.
  const std::int64_t last_ns = records.empty() ? 0 : records.back().when_ns;
  std::vector<TraceRecord> kept;
  kept.reserve(records.size());
  std::map<std::uint32_t, std::vector<TraceRecord>> sync_open;  // per tid
  std::map<std::pair<std::uint16_t, std::uint64_t>, std::uint32_t> async_open;
  for (const TraceRecord& r : records) {
    switch (r.kind) {
      case TraceKind::kSpanBegin:
        sync_open[tid_of(r)].push_back(r);
        break;
      case TraceKind::kSpanEnd: {
        auto& stack = sync_open[tid_of(r)];
        if (stack.empty() || stack.back().name != r.name) continue;  // orphan
        stack.pop_back();
        break;
      }
      case TraceKind::kAsyncBegin:
        ++async_open[{std::uint16_t(r.name), r.id}];
        break;
      case TraceKind::kAsyncEnd: {
        auto it = async_open.find({std::uint16_t(r.name), r.id});
        if (it == async_open.end() || it->second == 0) continue;  // orphan
        --it->second;
        break;
      }
      default:
        break;
    }
    kept.push_back(r);
  }
  std::vector<TraceRecord> closers;
  for (auto& [tid, stack] : sync_open) {
    while (!stack.empty()) {  // LIFO: innermost closes first
      TraceRecord end = stack.back();
      stack.pop_back();
      end.kind = TraceKind::kSpanEnd;
      end.when_ns = last_ns;
      closers.push_back(end);
    }
  }
  for (const auto& [key, open] : async_open) {
    for (std::uint32_t i = 0; i < open; ++i) {
      TraceRecord end{};
      end.when_ns = last_ns;
      end.id = key.second;
      end.name = TraceName(key.first);
      end.kind = TraceKind::kAsyncEnd;
      // Layer/lane of the closer are cosmetic; async pairing is by
      // (name, id). Protocol is the only async emitter today.
      end.layer = TraceLayer::kProtocol;
      closers.push_back(end);
    }
  }
  kept.insert(kept.end(), closers.begin(), closers.end());

  std::string out = "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  {
    char buf[96];
    std::snprintf(buf, sizeof buf, "\"dropped_records\":\"%llu\"},\n",
                  static_cast<unsigned long long>(dropped));
    out += buf;
  }
  out += "\"traceEvents\":[\n";
  std::set<std::uint32_t> tids;
  for (const TraceRecord& r : kept) tids.insert(tid_of(r));
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
      "\"args\":{\"name\":\"ssbft-sim\"}},\n";
  for (const std::uint32_t tid : tids) append_tid_name(out, tid);
  if (kept.empty()) {
    // Drop the trailing ",\n" after the last metadata event.
    out.erase(out.size() - 2);
    out += "\n";
  }
  for (std::size_t i = 0; i < kept.size(); ++i) {
    append_event(out, kept[i], i + 1 == kept.size());
  }
  out += "]}\n";
  return out;
}

bool TraceWriter::write_json(const Tracer& tracer, const std::string& path) {
  const std::string json = to_json(tracer.merged(), tracer.dropped());
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), out);
  const bool ok = written == json.size() && std::fclose(out) == 0;
  if (!ok && written != json.size()) std::fclose(out);
  return ok;
}

}  // namespace ssbft
