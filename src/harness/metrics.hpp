// Metrics: turns the Cluster's raw decision stream into the quantities the
// paper's theorems bound.
//
// Decisions are clustered into *executions* (per General, separated by gaps
// larger than the protocol horizon), then each execution is checked for:
//   - Agreement   (no two correct nodes decide different non-⊥ values)
//   - Validity    (everyone decides the correct General's value)
//   - decision skew        max |rt(τq) − rt(τq')|      (bound: 3d / 2d)
//   - τG skew              max |rt(τG_q) − rt(τG_q')|  (bound: 6d / d)
//   - latency              decision − proposal          (bound: ∆agr)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "harness/runner.hpp"
#include "util/stats.hpp"

namespace ssbft {

/// One protocol execution as observed across the cluster.
struct Execution {
  GeneralId general{};
  std::vector<TimedDecision> returns;  // decisions and aborts

  [[nodiscard]] std::uint32_t decided_count() const;
  [[nodiscard]] std::uint32_t abort_count() const;
  /// The unique decided value; nullopt if none or conflicting.
  [[nodiscard]] std::optional<Value> agreed_value() const;
  [[nodiscard]] bool agreement_holds() const;
  /// Max pairwise real-time distance between decisions (non-⊥ only).
  [[nodiscard]] Duration decision_skew() const;
  /// Max pairwise real-time distance between τG estimates (all returns).
  [[nodiscard]] Duration tau_g_skew() const;
  [[nodiscard]] RealTime first_return() const;
  [[nodiscard]] RealTime last_return() const;
};

/// Group raw decisions into executions: same General, gap between
/// consecutive returns ≤ horizon (default: ∆agr + 7d covers Termination).
[[nodiscard]] std::vector<Execution> cluster_executions(
    const std::vector<TimedDecision>& decisions, const Params& params);

/// Cross-execution summary for a whole run.
struct RunMetrics {
  std::uint32_t executions = 0;
  std::uint32_t agreement_violations = 0;
  std::uint32_t validity_violations = 0;  // vs expected (general, value) list
  std::uint32_t unanimous_decides = 0;    // all correct nodes decided same
  Duration max_decision_skew{};
  Duration max_tau_g_skew{};
};

/// Evaluate a run. `expected` maps proposals that *should* decide (correct
/// General workload) — used for validity accounting; pass the cluster's
/// admitted proposals. `correct_nodes` is the number of correct nodes that
/// must appear in a unanimous execution.
[[nodiscard]] RunMetrics evaluate_run(const std::vector<TimedDecision>& decisions,
                                      const std::vector<TimedProposal>& expected,
                                      std::uint32_t correct_nodes,
                                      const Params& params);

// --- pulse stack (Scenario.stack == kPulse / kClockSync) -----------------

/// Aggregate view of a probe's pulse stream.
struct PulseStats {
  SampleSet skew;         // per complete pulse: max − min real fire time
  SampleSet cycle_error;  // per node: |gap − cycle| of consecutive pulses
  std::uint32_t complete_pulses = 0;  // fired at every correct node
  std::uint32_t partial_pulses = 0;
  bool converged = false;
  Duration convergence{};  // t=0 → first complete pulse
};

/// Group the pulse stream by counter; a pulse is complete when all
/// `correct` nodes fired it. `cycle` is the stack's pulse period.
[[nodiscard]] PulseStats evaluate_pulses(const std::vector<TimedPulse>& pulses,
                                         std::uint32_t correct,
                                         Duration cycle);

// --- clock-sync stack (Scenario.stack == kClockSync) ---------------------

/// Max pairwise skew between synchronized correct logical clocks.
[[nodiscard]] Duration clock_skew(Cluster& cluster);
/// Every correct node has been snapped by at least one pulse.
[[nodiscard]] bool clocks_synchronized(Cluster& cluster);
/// All correct nodes snapped to the same pulse counter — the instants the
/// precision bound speaks about (between them a snap is in flight and the
/// skew transiently equals the adjustment size).
[[nodiscard]] bool clocks_settled(Cluster& cluster);

// --- stack-agnostic run evaluation (SweepRunner, CLI) ---------------------

/// Verdict + headline figures for one completed cluster run, judged by the
/// deployed stack's own core guarantee (the same predicates test_stacks and
/// the CLI reports assert):
///   kAgree / kBaselineTps — no Agreement/Validity violations;
///   kPulse               — ≥ 1 complete pulse, skew ≤ 3d;
///   kClockSync           — clocks settled inside the precision bound;
///   kReplicatedLog       — committed logs identical, progress made;
///   kPipelinedLog        — settled slots agree, progress made.
struct StackOutcome {
  bool pass = false;
  RunMetrics agreement{};          // decision-stream accounting (all stacks)
  std::vector<double> latency_ns;  // proposal → decided-return latencies
  std::uint64_t digest = 0;        // run_digest() of every stream + net stats
};

[[nodiscard]] StackOutcome evaluate_stack(Cluster& cluster);

/// First correct node running the stack as T, or nullptr when every node is
/// Byzantine (vacuous run: nothing to judge / report against).
template <typename T>
[[nodiscard]] T* head_node(Cluster& cluster) {
  for (NodeId i = 0; i < cluster.scenario().n; ++i) {
    if (T* node = cluster.node<T>(i)) return node;
  }
  return nullptr;
}

// --- recurring-chaos stabilization (Scenario::chaos_windows) ---------------

/// Re-convergence metrics for one chaos window of a duty-cycle run: what
/// the stack's PRIMARY stream (decisions for the agreement stacks, pulses,
/// clock adjustments, commits, pipelined deliveries) did in the recovery
/// span — from this window's end to the next window's start (or the end of
/// observation). The paper's stabilization claims are exactly statements
/// about these spans: after every burst of chaos, a correct observable
/// re-appears within a bounded time, every time.
struct WindowStabilization {
  RealTime chaos_start{};
  RealTime chaos_end{};
  /// Time from chaos_end to the first primary-stream record in the span;
  /// nullopt when the stack produced nothing before the next window.
  std::optional<Duration> recovery;
  std::uint32_t events = 0;  // primary-stream records in the span
  /// Canonical per-node digest of the span's records (same field layout as
  /// run_digest) — two runs recovering identically hash identically.
  std::uint64_t digest = 0;
};

/// Evaluate every window of the scenario's chaos schedule against the
/// probe's streams. Empty when the scenario has no chaos. Records BEFORE
/// the first window (start-up traffic) belong to no span by design: the
/// quantity of interest is re-convergence after chaos, not cold start.
[[nodiscard]] std::vector<WindowStabilization> window_stabilization(
    const Scenario& scenario, const RecordingProbe& probe);

/// FNV-1a fingerprint of every probe stream plus the network counters —
/// two runs with equal digests produced bit-identical observable histories
/// (decisions, pulse times, adjustments, commits, deliveries, wire stats).
/// Streams are hashed in CANONICAL order: grouped by node id, each node's
/// records in its own publication order. A node's record sequence is a pure
/// function of that node's execution on any engine, while the cross-node
/// interleaving reflects which shard thread appended first — canonical
/// order makes the digest engine-independent, so a sharded run hashes
/// bit-identical to its serial twin. The determinism tests lean on this.
[[nodiscard]] std::uint64_t run_digest(const RecordingProbe& probe,
                                       const NetworkStats& net);

}  // namespace ssbft
