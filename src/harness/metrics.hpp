// Metrics: turns the Cluster's raw decision stream into the quantities the
// paper's theorems bound.
//
// Decisions are clustered into *executions* (per General, separated by gaps
// larger than the protocol horizon), then each execution is checked for:
//   - Agreement   (no two correct nodes decide different non-⊥ values)
//   - Validity    (everyone decides the correct General's value)
//   - decision skew        max |rt(τq) − rt(τq')|      (bound: 3d / 2d)
//   - τG skew              max |rt(τG_q) − rt(τG_q')|  (bound: 6d / d)
//   - latency              decision − proposal          (bound: ∆agr)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "harness/runner.hpp"

namespace ssbft {

/// One protocol execution as observed across the cluster.
struct Execution {
  GeneralId general{};
  std::vector<TimedDecision> returns;  // decisions and aborts

  [[nodiscard]] std::uint32_t decided_count() const;
  [[nodiscard]] std::uint32_t abort_count() const;
  /// The unique decided value; nullopt if none or conflicting.
  [[nodiscard]] std::optional<Value> agreed_value() const;
  [[nodiscard]] bool agreement_holds() const;
  /// Max pairwise real-time distance between decisions (non-⊥ only).
  [[nodiscard]] Duration decision_skew() const;
  /// Max pairwise real-time distance between τG estimates (all returns).
  [[nodiscard]] Duration tau_g_skew() const;
  [[nodiscard]] RealTime first_return() const;
  [[nodiscard]] RealTime last_return() const;
};

/// Group raw decisions into executions: same General, gap between
/// consecutive returns ≤ horizon (default: ∆agr + 7d covers Termination).
[[nodiscard]] std::vector<Execution> cluster_executions(
    const std::vector<TimedDecision>& decisions, const Params& params);

/// Cross-execution summary for a whole run.
struct RunMetrics {
  std::uint32_t executions = 0;
  std::uint32_t agreement_violations = 0;
  std::uint32_t validity_violations = 0;  // vs expected (general, value) list
  std::uint32_t unanimous_decides = 0;    // all correct nodes decided same
  Duration max_decision_skew{};
  Duration max_tau_g_skew{};
};

/// Evaluate a run. `expected` maps proposals that *should* decide (correct
/// General workload) — used for validity accounting; pass the cluster's
/// admitted proposals. `correct_nodes` is the number of correct nodes that
/// must appear in a unanimous execution.
[[nodiscard]] RunMetrics evaluate_run(const std::vector<TimedDecision>& decisions,
                                      const std::vector<TimedProposal>& expected,
                                      std::uint32_t correct_nodes,
                                      const Params& params);

}  // namespace ssbft
