#include "harness/probe.hpp"

#include "harness/trace.hpp"
#include "util/assert.hpp"

namespace ssbft {

void RecordingProbe::clear() {
  decisions_.clear();
  proposals_.clear();
  pulses_.clear();
  adjustments_.clear();
  commits_.clear();
  deliveries_.clear();
}

void ProbeHub::attach(Probe* probe) {
  SSBFT_EXPECTS(probe != nullptr);
  // Same lock as publication: attach during a running sharded world must
  // not race the fan-out loops on the shard workers.
  const std::lock_guard<std::mutex> lock(mutex_);
  probes_.push_back(probe);
}

// Trace emission rides the publication path: every stream already funnels
// through the hub with a real-time stamp, so one emit_at per record covers
// all six stacks without touching protocol code. Publication happens on the
// dispatching thread, whose trace context the engine armed (or didn't — the
// emits below are no-ops on untraced runs).

void ProbeHub::on_decision(const TimedDecision& d) {
  trace::emit_at(d.real_at, TraceLayer::kProtocol, TraceName::kDecision,
                 TraceKind::kInstant, d.decision.node, 0,
                 std::int64_t(d.decision.value));
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Probe* p : probes_) p->on_decision(d);
}

void ProbeHub::on_proposal(const TimedProposal& p) {
  // Log commit latency span: propose → first commit (closed in on_commit;
  // the writer drops surplus ends from the other replicas and auto-closes
  // proposals that never commit).
  trace::emit_at(p.real_at, TraceLayer::kProtocol, TraceName::kLogCommit,
                 TraceKind::kAsyncBegin, p.general, p.value,
                 std::int64_t(p.status));
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Probe* probe : probes_) probe->on_proposal(p);
}

void ProbeHub::on_pulse(const TimedPulse& p) {
  trace::emit_at(p.real_at, TraceLayer::kProtocol, TraceName::kPulse,
                 TraceKind::kInstant, p.node, 0,
                 std::int64_t(p.event.counter));
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Probe* probe : probes_) probe->on_pulse(p);
}

void ProbeHub::on_adjustment(const TimedAdjustment& a) {
  trace::emit_at(a.real_at, TraceLayer::kProtocol, TraceName::kClockSnap,
                 TraceKind::kInstant, a.node, 0,
                 a.adjustment.amount.ns());
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Probe* p : probes_) p->on_adjustment(a);
}

void ProbeHub::on_commit(const TimedCommit& c) {
  trace::emit_at(c.real_at, TraceLayer::kProtocol, TraceName::kCommit,
                 TraceKind::kInstant, c.node, 0,
                 std::int64_t(c.entry.command));
  trace::emit_at(c.real_at, TraceLayer::kProtocol, TraceName::kLogCommit,
                 TraceKind::kAsyncEnd, c.node, c.entry.command,
                 std::int64_t(c.entry.slot));
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Probe* p : probes_) p->on_commit(c);
}

void ProbeHub::on_delivery(const TimedDelivery& d) {
  trace::emit_at(d.real_at, TraceLayer::kProtocol, TraceName::kDelivery,
                 TraceKind::kInstant, d.node, 0,
                 std::int64_t(d.entry.slot));
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Probe* p : probes_) p->on_delivery(d);
}

}  // namespace ssbft
