#include "harness/probe.hpp"

#include "util/assert.hpp"

namespace ssbft {

void RecordingProbe::clear() {
  decisions_.clear();
  proposals_.clear();
  pulses_.clear();
  adjustments_.clear();
  commits_.clear();
  deliveries_.clear();
}

void ProbeHub::attach(Probe* probe) {
  SSBFT_EXPECTS(probe != nullptr);
  // Same lock as publication: attach during a running sharded world must
  // not race the fan-out loops on the shard workers.
  const std::lock_guard<std::mutex> lock(mutex_);
  probes_.push_back(probe);
}

void ProbeHub::on_decision(const TimedDecision& d) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Probe* p : probes_) p->on_decision(d);
}

void ProbeHub::on_proposal(const TimedProposal& p) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Probe* probe : probes_) probe->on_proposal(p);
}

void ProbeHub::on_pulse(const TimedPulse& p) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Probe* probe : probes_) probe->on_pulse(p);
}

void ProbeHub::on_adjustment(const TimedAdjustment& a) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Probe* p : probes_) p->on_adjustment(a);
}

void ProbeHub::on_commit(const TimedCommit& c) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Probe* p : probes_) p->on_commit(c);
}

void ProbeHub::on_delivery(const TimedDelivery& d) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Probe* p : probes_) p->on_delivery(d);
}

}  // namespace ssbft
