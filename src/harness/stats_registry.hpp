// StatsRegistry: one self-describing export surface for run statistics.
//
// Every counter a run produces — wire totals, dispatch counts, shard
// scheduler behavior, duty-cycle migration costs, queue/wheel occupancy,
// trace-buffer health — registers here as (path, value, unit, help), so
// consumers (ssbft_cli --stats-json, tests, notebooks) read one uniform
// document instead of chasing per-engine struct fields. Gauges are sampled
// at collection time; counters are totals since the run started.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace ssbft {

class Cluster;

struct StatsEntry {
  std::string path;   // dotted, e.g. "sched.steals"
  double value = 0;
  const char* unit = "";  // "count", "ns", "ratio", "events", ...
  const char* help = "";
};

class StatsRegistry {
 public:
  void add(std::string path, double value, const char* unit,
           const char* help) {
    entries_.push_back(StatsEntry{std::move(path), value, unit, help});
  }

  [[nodiscard]] const std::vector<StatsEntry>& entries() const {
    return entries_;
  }

  /// The entry at `path`, or nullptr.
  [[nodiscard]] const StatsEntry* find(const std::string& path) const;

  /// {"stats": [{"path": ..., "value": ..., "unit": ..., "help": ...}, ...]}
  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  std::vector<StatsEntry> entries_;
};

/// Snapshot every statistic the deployed engine exposes: run totals, wire
/// counters, shard-scheduler stats (executor- and owner-attributed
/// imbalance), duty-cycle migration counts/costs, serial-engine queue depth
/// and timer-wheel occupancy, and tracer health when tracing is on.
[[nodiscard]] StatsRegistry collect_run_stats(Cluster& cluster);

}  // namespace ssbft
