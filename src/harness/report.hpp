// Fixed-width table printer for bench output — every bench prints the rows
// the EXPERIMENTS.md tables record (paper bound vs measured).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace ssbft {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  void print(std::FILE* out = stdout) const;

  /// Format helpers.
  static std::string fmt_ms(double ns);
  static std::string fmt_ratio(double r);
  static std::string fmt_int(std::uint64_t v);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ssbft
