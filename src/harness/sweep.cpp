#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "harness/stack_registry.hpp"
#include "util/assert.hpp"

namespace ssbft {

SweepRunner::SweepRunner(SweepSpec spec) : spec_(std::move(spec)) {
  SSBFT_EXPECTS(!spec_.scenarios.empty());
  SSBFT_EXPECTS(spec_.seeds_per_scenario > 0);
}

SweepRun SweepRunner::run_cell(
    const Scenario& scenario, std::uint64_t seed, std::size_t scenario_index,
    const std::function<void(const SweepRun&, Cluster&)>& per_run) {
  Scenario sc = scenario;
  sc.seed = seed;

  const auto wall0 = std::chrono::steady_clock::now();
  Cluster cluster(sc);
  cluster.run();
  const auto wall1 = std::chrono::steady_clock::now();

  StackOutcome outcome = evaluate_stack(cluster);

  SweepRun run;
  run.scenario_index = scenario_index;
  run.seed = seed;
  run.stack = sc.stack;
  run.n = sc.n;
  run.f = sc.f;
  run.adversary = sc.adversary;
  run.pass = outcome.pass;
  run.digest = outcome.digest;
  run.agreement = outcome.agreement;
  run.latency_ns = std::move(outcome.latency_ns);
  run.windows = window_stabilization(sc, cluster.probe());
  run.events = cluster.world().dispatched();
  run.messages = cluster.world().net_stats().sent;
  run.sim_time = sc.run_for;
  run.wall_seconds = std::chrono::duration<double>(wall1 - wall0).count();

  if (per_run) per_run(run, cluster);
  return run;
}

std::vector<std::size_t> SweepRunner::schedule_order(const SweepSpec& spec) {
  const std::size_t seeds = spec.seeds_per_scenario;
  std::vector<std::size_t> order(spec.scenarios.size() * seeds);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Longest-job-first: a cell's cost scales with its simulated horizon and
  // the Θ(n²) per-instant message load. Starting the big cells first keeps
  // the pool's tail short on heterogeneous grids; the stable sort keeps
  // equal-cost cells in grid order. Where results LAND is untouched (grid
  // order), so reports and digests are identical to FIFO pickup.
  const auto cost = [&](std::size_t cell) {
    const Scenario& sc = spec.scenarios[cell / seeds];
    return double(sc.run_for.ns()) * double(sc.n) * double(sc.n);
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cost(a) > cost(b);
                   });
  return order;
}

SweepReport SweepRunner::run() {
  const std::size_t seeds = spec_.seeds_per_scenario;
  const std::size_t cells = spec_.scenarios.size() * seeds;

  SweepReport report;
  report.runs.resize(cells);

  const std::vector<std::size_t> order = schedule_order(spec_);
  const auto wall0 = std::chrono::steady_clock::now();
  std::atomic<std::size_t> cursor{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t pick = cursor.fetch_add(1, std::memory_order_relaxed);
      if (pick >= cells) return;
      const std::size_t cell = order[pick];
      const std::size_t scenario_index = cell / seeds;
      const std::uint64_t seed = spec_.seed0 + std::uint64_t(cell % seeds);
      report.runs[cell] = run_cell(spec_.scenarios[scenario_index], seed,
                                   scenario_index, spec_.per_run);
    }
  };

  std::uint32_t threads = spec_.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (threads <= 1) {
    worker();  // inline: the serial baseline, no pool overhead
  } else {
    // Touch the registry once before the pool starts: factories are then
    // looked up concurrently against an immutable map.
    (void)StackRegistry::instance();
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  const auto wall1 = std::chrono::steady_clock::now();

  report.wall_seconds = std::chrono::duration<double>(wall1 - wall0).count();
  for (const auto& run : report.runs) {
    (run.pass ? report.passed : report.failed)++;
    report.events += run.events;
    report.messages += run.messages;
    for (const double l : run.latency_ns) report.latency.add(l);
    for (const WindowStabilization& w : run.windows) {
      ++report.chaos_windows;
      if (w.recovery) {
        ++report.recovered_windows;
        report.recovery_ns.add(double(w.recovery->ns()));
      }
    }
  }
  if (report.wall_seconds > 0) {
    report.events_per_sec = double(report.events) / report.wall_seconds;
    report.scenarios_per_sec = double(cells) / report.wall_seconds;
  }
  return report;
}

std::vector<Scenario> SweepGrid::expand() const {
  const std::vector<std::uint32_t> n_axis = ns.empty() ? std::vector{base.n} : ns;
  const std::vector<AdversaryKind> adv_axis =
      adversaries.empty() ? std::vector{base.adversary} : adversaries;

  std::vector<Scenario> out;
  for (const std::uint32_t n : n_axis) {
    const std::vector<std::uint32_t> f_axis =
        fs.empty() ? std::vector{(n - 1) / 3} : fs;
    for (const std::uint32_t f : f_axis) {
      if (n <= 3 * f) continue;  // outside the paper's resilience bound
      for (const AdversaryKind adversary : adv_axis) {
        Scenario sc = base;
        sc.n = n;
        sc.f = f;
        sc.byz_nodes.clear();
        sc.with_tail_faults(f);
        sc.adversary = adversary;
        out.push_back(std::move(sc));
      }
    }
  }
  return out;
}

}  // namespace ssbft
