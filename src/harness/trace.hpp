// Structured tracing: a low-overhead timeline recorder for the simulator.
//
// The tracer answers the question the aggregate metrics (run_digest,
// window_stabilization, ShardSchedStats) cannot: *when* and *where* did
// time go inside a run. Three layers of records share one format:
//   protocol — agreement round spans (anchor → return) with quorum-progress
//              instants, pulse cycles, clock-sync snaps, log commit spans
//              (propose → first commit);
//   engine   — ShardWorld lookahead windows, repartitions, steals,
//              lax-frontier publishes; DutyWorld chaos windows and both
//              migration directions with export/adopt sub-spans;
//   workload — injections, chaos drops/corruptions/delays/duplicates, and
//              forged deliveries on the reserved channel.
//
// Design constraints, in order:
//   1. The tracer OBSERVES, never participates: no RNG draws, no queue
//      interaction, no allocation on the hot path. Digests are bit-identical
//      with tracing on or off (test_trace pins the full matrix).
//   2. Emission is wait-free per thread: records go to per-thread ring
//      buffers (TraceBuffer) that overwrite their oldest records when full,
//      merged post-run by timestamp into one timeline.
//   3. Disabled tracing costs one thread-local load and a branch per site;
//      compiling with -DSSBFT_TRACING=0 removes even that.
//
// Wiring: the Cluster owns a Tracer when Scenario::trace is set and hands
// it to the engines via WorldConfig::tracer. Engines arm a thread-local
// trace::Scope around their dispatch loops (the scope carries the active
// clock), so protocol/network code emits through the free functions below
// without knowing which engine runs it. TraceWriter exports the merged
// timeline as Perfetto / chrome://tracing JSON (load at https://ui.perfetto.dev
// or chrome://tracing).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "util/time.hpp"

// Compile-time kill switch: -DSSBFT_TRACING=0 turns every emission site
// into nothing (the Tracer/TraceWriter types stay available so --trace
// still writes a valid, empty trace).
#ifndef SSBFT_TRACING
#define SSBFT_TRACING 1
#endif

namespace ssbft {

/// How a record renders on the timeline. Sync spans nest per lane (the
/// begin/end pairs form a stack, like a call stack); async spans are keyed
/// by (name, id) and may overlap freely (concurrent agreement rounds).
enum class TraceKind : std::uint8_t {
  kSpanBegin,
  kSpanEnd,
  kAsyncBegin,
  kAsyncEnd,
  kInstant,
  kCounter,
};

/// Which layer of the system emitted the record (the Perfetto category).
enum class TraceLayer : std::uint8_t { kProtocol, kEngine, kWorkload };

[[nodiscard]] const char* to_string(TraceLayer layer);

/// Every record name the simulator emits. A closed enum keeps TraceRecord
/// POD (no string on the hot path) and the writer's name table exhaustive.
enum class TraceName : std::uint16_t {
  // protocol
  kAgreeRound,      // async span: τG anchored → return (id packs node+general)
  kQuorumProgress,  // instant: broadcast accepted into a round set (arg = k)
  kPulse,           // instant: pulse fired (arg = counter)
  kClockSnap,       // instant: clock adjusted (arg = adjustment ns)
  kLogCommit,       // async span: propose → first commit (id = value)
  kCommit,          // instant: one node committed an entry (arg = value)
  kDecision,        // instant: one node returned from agreement (arg = value)
  kDelivery,        // instant: pipelined in-order delivery (arg = seq)
  // engine
  kWindow,          // sync span, lane kLaneWindows: one lookahead window
  kWindowEvents,    // counter: dispatches in the window just accounted
  kOwnerImbalance,  // counter: per-window owner-attributed max/min ×1000
  kRepartition,     // instant: cost-aware boundary recomputation
  kSteal,           // instant: a worker claimed a foreign node (arg = events)
  kLaxPublish,      // instant: a shard published its lax frontier
  kChaosWindow,     // sync span, lane kLaneDuty: network behaves arbitrarily
  kMigrateToSerial,   // sync span, lane kLaneDuty (arg = wall ns)
  kMigrateToSharded,  // sync span, lane kLaneDuty (arg = wall ns)
  kMigrateExport,     // sync sub-span: export_migration (arg = wall ns)
  kMigrateAdopt,      // sync sub-span: adoption rebuild (arg = wall ns)
  // workload
  kInject,          // instant: workload injection admitted (arg = value)
  kChaosDrop,       // instant: chaos window dropped a message
  kChaosCorrupt,    // instant: chaos window corrupted a message
  kChaosDelay,      // instant: chaos window delayed a message (arg = delay ns)
  kChaosDuplicate,  // instant: chaos window duplicated a message
  kForged,          // instant: forged delivery planted (reserved channel)
  kAuthReject,      // instant: authenticator check failed at delivery
  kRelay,           // instant: topology relay duty executed (arg = route)
};

[[nodiscard]] const char* to_string(TraceName name);

/// Engine-layer lane ids (the `lane` field doubles as the Perfetto tid for
/// engine records; protocol/workload records use their node id instead).
inline constexpr std::uint32_t kLaneWindows = 0;  // ShardWorld window spans
inline constexpr std::uint32_t kLaneDuty = 1;     // chaos windows, migrations
inline constexpr std::uint32_t kLaneWorker0 = 2;  // + worker/shard index

/// One timeline record. POD by construction: emission is a struct copy into
/// a preallocated ring — no allocation, no locks, no system calls.
struct TraceRecord {
  std::int64_t when_ns = 0;   // simulation real-time of the record
  std::uint64_t id = 0;       // async span key / extra correlation id
  std::int64_t arg = 0;       // name-specific payload (value, count, ns)
  std::uint32_t lane = 0;     // node id (protocol/workload) or engine lane
  TraceName name{};
  TraceKind kind{};
  TraceLayer layer{};
};
static_assert(std::is_trivially_copyable_v<TraceRecord>);

/// Fixed-capacity overwrite-oldest ring of TraceRecords. Single-writer (one
/// thread), reader only after the run — no synchronization on push.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity) : ring_(capacity) {}

  void push(const TraceRecord& r) {
    ring_[count_ % ring_.size()] = r;
    ++count_;
  }

  /// Records pushed in total (including overwritten ones).
  [[nodiscard]] std::uint64_t pushed() const { return count_; }
  /// Records lost to overwrite.
  [[nodiscard]] std::uint64_t dropped() const {
    return count_ > ring_.size() ? count_ - ring_.size() : 0;
  }
  /// Surviving records, oldest first.
  void append_to(std::vector<TraceRecord>& out) const;

 private:
  std::vector<TraceRecord> ring_;
  std::uint64_t count_ = 0;
};

/// The per-run trace collector. Owns one ring buffer per emitting thread
/// (created on first use, cached thread-locally) plus keyed buffers for
/// single-threaded engine emission, where a deterministic merge order
/// matters (the barrier-completion step runs on whichever worker arrives
/// last — a thread buffer would make the merge order run-dependent).
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t(1) << 16;

  explicit Tracer(std::size_t buffer_capacity = kDefaultCapacity);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The calling thread's ring (thread-local cache; first call locks).
  [[nodiscard]] TraceBuffer* thread_buffer();
  /// A keyed ring independent of the emitting thread. Buffers merge in key
  /// order, before all thread buffers.
  [[nodiscard]] TraceBuffer* keyed_buffer(std::uint32_t key);

  /// Convenience: push through the calling thread's ring.
  void emit(const TraceRecord& r) { thread_buffer()->push(r); }

  /// All surviving records, merged: keyed buffers (by key), then thread
  /// buffers (by creation), stable-sorted by timestamp — so equal-time
  /// records keep their per-buffer emission order.
  [[nodiscard]] std::vector<TraceRecord> merged() const;

  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  const std::uint64_t epoch_;  // unique per Tracer; validates the TL cache
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TraceBuffer>> thread_buffers_;
  std::vector<std::pair<std::uint32_t, std::unique_ptr<TraceBuffer>>> keyed_;
};

namespace trace {

/// The thread's armed emission context: where records go and what time it
/// is. Unarmed (buf == nullptr) ⇒ every emission site is a no-op. Armed by
/// the engines around their dispatch loops via Scope.
struct Ctx {
  TraceBuffer* buf = nullptr;
  const RealTime* now = nullptr;  // the active queue's clock (stable address)
};

inline thread_local Ctx tl_ctx;

/// RAII arming of the calling thread's emission context. Null tracer ⇒
/// no-op (the common, untraced case). Scopes nest; the previous context is
/// restored on exit.
class Scope {
 public:
  Scope(Tracer* tracer, const RealTime* now) {
#if SSBFT_TRACING
    if (tracer == nullptr) return;
    prev_ = tl_ctx;
    tl_ctx = Ctx{tracer->thread_buffer(), now};
    armed_ = true;
#else
    (void)tracer;
    (void)now;
#endif
  }
  ~Scope() {
#if SSBFT_TRACING
    if (armed_) tl_ctx = prev_;
#endif
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Ctx prev_{};
  bool armed_ = false;
};

// --- emission sites ---------------------------------------------------------
// All free functions: protocol and network code calls these without holding
// a Tracer (or even knowing whether one exists). Unarmed ⇒ one TL load and
// a branch; SSBFT_TRACING=0 ⇒ nothing at all.

inline void emit(TraceLayer layer, TraceName name, TraceKind kind,
                 std::uint32_t lane, std::uint64_t id, std::int64_t arg) {
#if SSBFT_TRACING
  const Ctx& c = tl_ctx;
  if (c.buf == nullptr) return;
  c.buf->push(TraceRecord{c.now->ns(), id, arg, lane, name, kind, layer});
#else
  (void)layer; (void)name; (void)kind; (void)lane; (void)id; (void)arg;
#endif
}

/// Explicit-timestamp form (probe records carry their own real_at).
inline void emit_at(RealTime when, TraceLayer layer, TraceName name,
                    TraceKind kind, std::uint32_t lane, std::uint64_t id,
                    std::int64_t arg) {
#if SSBFT_TRACING
  const Ctx& c = tl_ctx;
  if (c.buf == nullptr) return;
  c.buf->push(TraceRecord{when.ns(), id, arg, lane, name, kind, layer});
#else
  (void)when; (void)layer; (void)name; (void)kind; (void)lane; (void)id;
  (void)arg;
#endif
}

inline void instant(TraceLayer layer, TraceName name, std::uint32_t lane,
                    std::int64_t arg = 0) {
  emit(layer, name, TraceKind::kInstant, lane, 0, arg);
}

inline void async_begin(TraceLayer layer, TraceName name, std::uint64_t id,
                        std::uint32_t lane, std::int64_t arg = 0) {
  emit(layer, name, TraceKind::kAsyncBegin, lane, id, arg);
}

inline void async_end(TraceLayer layer, TraceName name, std::uint64_t id,
                      std::uint32_t lane, std::int64_t arg = 0) {
  emit(layer, name, TraceKind::kAsyncEnd, lane, id, arg);
}

}  // namespace trace

/// Exports a merged record timeline as Perfetto / chrome://tracing JSON
/// ({"traceEvents": [...]}). The writer normalizes before serializing:
/// records sort by timestamp, orphaned span ends are dropped, and spans
/// still open at the end of the trace are closed at the final timestamp —
/// so the artifact always satisfies tools/trace_check.py (balanced,
/// monotone) even when a run stops mid-round or a ring overwrote a begin.
class TraceWriter {
 public:
  /// Serialize to a string (tests); `dropped` lands in otherData.
  [[nodiscard]] static std::string to_json(std::vector<TraceRecord> records,
                                           std::uint64_t dropped = 0);
  /// Serialize straight to `path`. Returns false on I/O failure.
  static bool write_json(const Tracer& tracer, const std::string& path);
};

}  // namespace ssbft
