#include "harness/report.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ssbft {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  SSBFT_EXPECTS(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto rule = [&] {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::fputc('+', out);
      for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
    }
    std::fputs("+\n", out);
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "| %-*s ", int(widths[c]), cells[c].c_str());
    }
    std::fputs("|\n", out);
  };
  rule();
  line(columns_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::string Table::fmt_ms(double ns) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", ns * 1e-6);
  return buf;
}

std::string Table::fmt_ratio(double r) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fx", r);
  return buf;
}

std::string Table::fmt_int(std::uint64_t v) { return std::to_string(v); }

}  // namespace ssbft
