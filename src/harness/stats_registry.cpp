#include "harness/stats_registry.hpp"

#include <cstdio>

#include "harness/runner.hpp"
#include "harness/trace.hpp"
#include "sim/duty_world.hpp"
#include "sim/payload.hpp"
#include "sim/shard_world.hpp"

namespace ssbft {

const StatsEntry* StatsRegistry::find(const std::string& path) const {
  for (const StatsEntry& e : entries_) {
    if (e.path == path) return &e;
  }
  return nullptr;
}

std::string StatsRegistry::to_json() const {
  std::string out = "{\"stats\": [\n";
  char line[512];
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const StatsEntry& e = entries_[i];
    std::snprintf(line, sizeof line,
                  "  {\"path\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", "
                  "\"help\": \"%s\"}%s\n",
                  e.path.c_str(), e.value, e.unit, e.help,
                  i + 1 == entries_.size() ? "" : ",");
    out += line;
  }
  out += "]}\n";
  return out;
}

bool StatsRegistry::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), out);
  const bool flushed = std::fclose(out) == 0;
  return written == json.size() && flushed;
}

namespace {

void add_sched_stats(StatsRegistry& reg, const ShardSchedStats& st) {
  reg.add("sched.windows", double(st.windows), "count",
          "lookahead windows run by the sharded engine");
  reg.add("sched.measured_windows", double(st.measured_windows), "count",
          "windows with at least one dispatch");
  reg.add("sched.window_events", double(st.window_events), "events",
          "dispatches summed over measured windows");
  reg.add("sched.repartitions", double(st.repartitions), "count",
          "cost-aware boundary recomputations");
  reg.add("sched.steals", double(st.steals), "count",
          "foreign-shard node claims");
  reg.add("sched.stolen_events", double(st.stolen_events), "events",
          "events executed on a thief worker");
  reg.add("sched.imbalance_mean", st.imbalance_mean(), "ratio",
          "mean per-window max/min EXECUTOR dispatch ratio");
  reg.add("sched.imbalance_max", st.imbalance_max, "ratio",
          "worst per-window executor imbalance");
  reg.add("sched.owner_imbalance_mean", st.owner_imbalance_mean(), "ratio",
          "mean per-window max/min OWNER-shard dispatch ratio (feeds the "
          "repartitioner under kSteal)");
  reg.add("sched.owner_imbalance_max", st.owner_imbalance_max, "ratio",
          "worst per-window owner-shard imbalance");
}

}  // namespace

StatsRegistry collect_run_stats(Cluster& cluster) {
  StatsRegistry reg;
  WorldBase& world = cluster.world();

  reg.add("run.now_ms", world.now().millis(), "ms",
          "simulation time of the last dispatch / run horizon");
  reg.add("run.dispatched", double(world.dispatched()), "events",
          "events dispatched (net of suppressed timer pops)");
  reg.add("run.shards", double(cluster.shards()), "count",
          "shard count the deployment runs on (1 = serial engine)");

  const NetworkStats net = world.net_stats();
  reg.add("net.sent", double(net.sent), "count", "sends admitted");
  reg.add("net.delivered", double(net.delivered), "count",
          "copies handed to a destination");
  reg.add("net.dropped", double(net.dropped), "count",
          "chaos-dropped messages");
  reg.add("net.corrupted", double(net.corrupted), "count",
          "chaos-corrupted messages");
  reg.add("net.duplicated", double(net.duplicated), "count",
          "chaos-duplicated messages");
  reg.add("net.forged", double(net.forged), "count",
          "forged deliveries on the reserved channel");
  reg.add("net.auth_rejected", double(net.auth_rejected), "count",
          "deliveries discarded by the authenticator check");
  reg.add("net.payload_bytes", double(net.payload_bytes), "bytes",
          "application payload bytes admitted at send (per unicast copy)");
  reg.add("net.payload_live", double(payload_pool().live()), "slots",
          "pool slots still referenced at collection time (0 = no leaks)");
  reg.add("net.pool_peak_bytes", double(payload_pool().peak_bytes()), "bytes",
          "high-water mark of payload bytes resident in live pool slots");
  reg.add("net.topology_hops", double(net.topology_hops), "count",
          "deliveries that arrived via a topology relay (route != direct)");
  reg.add("net.fanout_msgs", double(net.fanout_msgs), "count",
          "message copies forwarded by topology relay duty");

  if (auto* duty = dynamic_cast<DutyWorld*>(&world)) {
    reg.add("duty.migrations", double(duty->migrations()), "count",
            "engine switches performed");
    reg.add("duty.migration_ns", double(duty->migration_ns()), "ns",
            "wall time inside export/adopt (dispatch excluded)");
    reg.add("duty.segments", double(duty->segment_shards().size()), "count",
            "sharded stabilization segments");
    add_sched_stats(reg, duty->sched_stats());
  } else if (auto* shard = dynamic_cast<ShardWorld*>(&world)) {
    add_sched_stats(reg, shard->sched_stats());
  } else if (auto* serial = dynamic_cast<World*>(&world)) {
    // Serial-engine gauges, sampled now: how deep the event heap and the
    // timer wheel sit at the end of the run.
    reg.add("queue.depth", double(serial->queue().size()), "events",
            "events pending in the heap");
    reg.add("queue.slab_capacity", double(serial->queue().slab_capacity()),
            "slots", "slab slots allocated (peak in-flight, chunk-rounded)");
    reg.add("queue.peak_bytes", double(serial->queue().peak_bytes()), "bytes",
            "queue backing-store footprint (closure slab + heap; grow-only, "
            "so current = peak)");
    reg.add("wheel.armed", double(serial->timers().armed()), "count",
            "timer records still armed in the wheel");
    reg.add("wheel.live", double(serial->timers().live()), "count",
            "live timer slab records (armed + handed over)");
    reg.add("wheel.peak_records", double(serial->timers().peak_live()),
            "count", "high-water mark of live timer records");
    reg.add("wheel.overflow", double(serial->timers().overflow_size()),
            "count", "records parked in the overflow level");
  }

  if (const Tracer* tracer = cluster.tracer()) {
    reg.add("trace.recorded", double(tracer->recorded()), "count",
            "trace records emitted");
    reg.add("trace.dropped", double(tracer->dropped()), "count",
            "trace records lost to ring overwrite");
  }
  return reg;
}

}  // namespace ssbft
