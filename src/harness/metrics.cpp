#include "harness/metrics.hpp"

#include <algorithm>
#include <map>

#include "app/pipelined_log.hpp"
#include "app/replicated_log.hpp"
#include "clocksync/clock_sync.hpp"
#include "pulse/pulse_sync.hpp"

namespace ssbft {

std::uint32_t Execution::decided_count() const {
  std::uint32_t count = 0;
  for (const auto& r : returns) {
    if (r.decision.decided()) ++count;
  }
  return count;
}

std::uint32_t Execution::abort_count() const {
  return std::uint32_t(returns.size()) - decided_count();
}

std::optional<Value> Execution::agreed_value() const {
  std::optional<Value> value;
  for (const auto& r : returns) {
    if (!r.decision.decided()) continue;
    if (value && *value != r.decision.value) return std::nullopt;
    value = r.decision.value;
  }
  return value;
}

bool Execution::agreement_holds() const {
  return decided_count() == 0 || agreed_value().has_value();
}

Duration Execution::decision_skew() const {
  RealTime lo = RealTime::max(), hi = RealTime::min();
  for (const auto& r : returns) {
    if (!r.decision.decided()) continue;
    lo = std::min(lo, r.real_at);
    hi = std::max(hi, r.real_at);
  }
  return hi >= lo ? hi - lo : Duration::zero();
}

Duration Execution::tau_g_skew() const {
  RealTime lo = RealTime::max(), hi = RealTime::min();
  for (const auto& r : returns) {
    if (!r.decision.decided()) continue;
    lo = std::min(lo, r.tau_g_real);
    hi = std::max(hi, r.tau_g_real);
  }
  return hi >= lo ? hi - lo : Duration::zero();
}

RealTime Execution::first_return() const {
  RealTime t = RealTime::max();
  for (const auto& r : returns) t = std::min(t, r.real_at);
  return t;
}

RealTime Execution::last_return() const {
  RealTime t = RealTime::min();
  for (const auto& r : returns) t = std::max(t, r.real_at);
  return t;
}

std::vector<Execution> cluster_executions(
    const std::vector<TimedDecision>& decisions, const Params& params) {
  // Partition by General, sort by the anchor rt(τG), and split where
  // consecutive anchors are > 4d apart: within one execution anchors lie
  // within 6d of each other (IA-3A / Timeliness-1b), while distinct
  // executions are separated by > 4d (IA-4 Uniqueness) — and in practice by
  // ≥ ∆0. Splitting a pathological 5d-spread execution is safe: both halves
  // carry the same decided value, so no false violation can result.
  std::map<NodeId, std::vector<TimedDecision>> by_general;
  for (const auto& d : decisions) {
    by_general[d.decision.general.node].push_back(d);
  }

  std::vector<Execution> executions;
  for (auto& [general, list] : by_general) {
    std::sort(list.begin(), list.end(),
              [](const TimedDecision& a, const TimedDecision& b) {
                return a.tau_g_real < b.tau_g_real;
              });
    Execution current;
    current.general = GeneralId{general};
    for (const auto& d : list) {
      if (!current.returns.empty() &&
          d.tau_g_real - current.returns.back().tau_g_real > 4 * params.d()) {
        executions.push_back(std::move(current));
        current = Execution{};
        current.general = GeneralId{general};
      }
      current.returns.push_back(d);
    }
    if (!current.returns.empty()) executions.push_back(std::move(current));
  }
  std::sort(executions.begin(), executions.end(),
            [](const Execution& a, const Execution& b) {
              return a.first_return() < b.first_return();
            });
  return executions;
}

RunMetrics evaluate_run(const std::vector<TimedDecision>& decisions,
                        const std::vector<TimedProposal>& expected,
                        std::uint32_t correct_nodes, const Params& params) {
  RunMetrics metrics;
  const auto executions = cluster_executions(decisions, params);
  metrics.executions = std::uint32_t(executions.size());

  for (const auto& exec : executions) {
    if (!exec.agreement_holds()) ++metrics.agreement_violations;
    if (exec.decided_count() == correct_nodes && exec.agreement_holds()) {
      ++metrics.unanimous_decides;
    }
    metrics.max_decision_skew =
        std::max(metrics.max_decision_skew, exec.decision_skew());
    metrics.max_tau_g_skew =
        std::max(metrics.max_tau_g_skew, exec.tau_g_skew());
  }

  // Validity: each admitted proposal by a correct General must yield an
  // execution in which every correct node decides that value.
  for (const auto& proposal : expected) {
    if (proposal.status != ProposeStatus::kSent) continue;
    bool satisfied = false;
    for (const auto& exec : executions) {
      if (exec.general.node != proposal.general) continue;
      if (exec.first_return() + params.delta_agr() < proposal.real_at) continue;
      if (exec.first_return() > proposal.real_at + params.delta_agr()) continue;
      const auto value = exec.agreed_value();
      if (value && *value == proposal.value &&
          exec.decided_count() == correct_nodes) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) ++metrics.validity_violations;
  }
  return metrics;
}

PulseStats evaluate_pulses(const std::vector<TimedPulse>& pulses,
                           std::uint32_t correct, Duration cycle) {
  PulseStats stats;
  std::map<std::uint64_t, std::vector<RealTime>> by_counter;
  std::map<NodeId, std::vector<RealTime>> by_node;
  for (const auto& p : pulses) {
    by_counter[p.event.counter].push_back(p.real_at);
    by_node[p.node].push_back(p.real_at);
  }
  for (const auto& [counter, fires] : by_counter) {
    if (fires.size() < correct) {
      ++stats.partial_pulses;
      continue;
    }
    ++stats.complete_pulses;
    const auto [lo, hi] = std::minmax_element(fires.begin(), fires.end());
    stats.skew.add(*hi - *lo);
    if (!stats.converged) {
      stats.converged = true;
      stats.convergence = *lo - RealTime::zero();
    }
  }
  for (auto& [node, times] : by_node) {
    std::sort(times.begin(), times.end());
    for (std::size_t i = 1; i < times.size(); ++i) {
      stats.cycle_error.add(abs((times[i] - times[i - 1]) - cycle));
    }
  }
  return stats;
}

Duration clock_skew(Cluster& cluster) {
  Duration worst = Duration::zero();
  const std::uint32_t n = cluster.scenario().n;
  for (NodeId i = 0; i < n; ++i) {
    auto* a = cluster.node<ClockSyncNode>(i);
    if (a == nullptr || !a->synchronized()) continue;
    for (NodeId j = i + 1; j < n; ++j) {
      auto* b = cluster.node<ClockSyncNode>(j);
      if (b == nullptr || !b->synchronized()) continue;
      worst = std::max(worst, abs(a->clock() - b->clock()));
    }
  }
  return worst;
}

bool clocks_synchronized(Cluster& cluster) {
  std::uint32_t synced = 0;
  for (NodeId i = 0; i < cluster.scenario().n; ++i) {
    auto* node = cluster.node<ClockSyncNode>(i);
    if (node != nullptr && node->synchronized()) ++synced;
  }
  return synced == cluster.correct_count();
}

namespace {

// FNV-1a, word at a time. Every field is widened to 64 bits explicitly so
// the digest is a pure function of the observable values, never of padding.
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void word(std::uint64_t v) {
    h = (h ^ v) * 0x100000001b3ULL;
  }
  void time(RealTime t) { word(std::uint64_t(t.ns())); }
  void time(LocalTime t) { word(std::uint64_t(t.ns())); }
  void dur(Duration d) { word(std::uint64_t(d.ns())); }
};

/// Canonical stream order (see run_digest doc): group by node id, keep each
/// node's records in publication order. Returned as indices into `stream`.
template <class T, class NodeKey>
std::vector<std::uint32_t> canonical_order(const std::vector<T>& stream,
                                           NodeKey node_key) {
  std::vector<std::uint32_t> order(stream.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return node_key(stream[a]) < node_key(stream[b]);
                   });
  return order;
}

/// Decided-return latencies against the matching admitted proposal: same
/// General, same value, and the LATEST such proposal not after the return —
/// so a re-proposal (or another General's identical value) never inflates
/// the measurement by attributing the decision to an older injection.
/// Iterates decisions in canonical (per-node) order so the latency vector,
/// like the digest, is engine-independent.
std::vector<double> decision_latencies(const Cluster& cluster) {
  std::vector<double> out;
  const auto& decisions = cluster.decisions();
  const auto order = canonical_order(
      decisions, [](const TimedDecision& d) { return d.decision.node; });
  for (const std::uint32_t i : order) {
    const auto& d = decisions[i];
    if (!d.decision.decided()) continue;
    std::optional<RealTime> proposed;
    for (const auto& p : cluster.proposals()) {
      if (p.status != ProposeStatus::kSent) continue;
      if (p.general != d.decision.general.node) continue;
      if (p.value != d.decision.value || p.real_at > d.real_at) continue;
      if (!proposed || p.real_at > *proposed) proposed = p.real_at;
    }
    if (proposed) out.push_back(double((d.real_at - *proposed).ns()));
  }
  return out;
}

/// Fold one stream's records inside [from, to) into a window summary:
/// first-arrival time, count, and a canonical-order digest. `hash` appends
/// one record's fields to the FNV state (same layout as run_digest).
template <class T, class NodeKey, class HashRecord>
void span_metrics(const std::vector<T>& stream, NodeKey node_key,
                  HashRecord hash, RealTime from, RealTime to,
                  WindowStabilization& w) {
  Fnv fnv;
  RealTime first = RealTime::max();
  for (const std::uint32_t i : canonical_order(stream, node_key)) {
    const T& r = stream[i];
    if (r.real_at < from || r.real_at >= to) continue;
    first = std::min(first, r.real_at);
    ++w.events;
    hash(fnv, r);
  }
  if (w.events > 0) {
    w.recovery = first - from;
    w.digest = fnv.h;
  }
}

}  // namespace

std::vector<WindowStabilization> window_stabilization(
    const Scenario& scenario, const RecordingProbe& probe) {
  std::vector<WindowStabilization> out;
  const std::vector<ChaosWindow> windows = scenario.chaos_windows();
  for (std::size_t k = 0; k < windows.size(); ++k) {
    WindowStabilization w;
    w.chaos_start = windows[k].start;
    w.chaos_end = windows[k].end;
    // Recovery span: from this window's end up to the next window's start
    // (chaos re-disrupting the stack ends the span), unbounded for the
    // last window — the probe's streams end where observation ended.
    const RealTime to =
        k + 1 < windows.size() ? windows[k + 1].start : RealTime::max();
    switch (scenario.stack) {
      case StackKind::kAgree:
      case StackKind::kBaselineTps:
        span_metrics(
            probe.decisions(),
            [](const TimedDecision& d) { return d.decision.node; },
            [](Fnv& f, const TimedDecision& d) {
              f.word(d.decision.node);
              f.word(d.decision.general.node);
              f.word(d.decision.general.index);
              f.word(d.decision.value);
              f.time(d.decision.tau_g);
              f.time(d.decision.at);
              f.time(d.real_at);
              f.time(d.tau_g_real);
            },
            w.chaos_end, to, w);
        break;
      case StackKind::kPulse:
        span_metrics(
            probe.pulses(), [](const TimedPulse& p) { return p.node; },
            [](Fnv& f, const TimedPulse& p) {
              f.word(p.node);
              f.word(p.event.counter);
              f.time(p.event.at);
              f.time(p.real_at);
            },
            w.chaos_end, to, w);
        break;
      case StackKind::kClockSync:
        span_metrics(
            probe.adjustments(),
            [](const TimedAdjustment& a) { return a.node; },
            [](Fnv& f, const TimedAdjustment& a) {
              f.word(a.node);
              f.word(a.adjustment.pulse_counter);
              f.dur(a.adjustment.amount);
              f.time(a.adjustment.at);
              f.time(a.real_at);
            },
            w.chaos_end, to, w);
        break;
      case StackKind::kReplicatedLog:
        span_metrics(
            probe.commits(), [](const TimedCommit& c) { return c.node; },
            [](Fnv& f, const TimedCommit& c) {
              f.word(c.node);
              f.word(c.entry.slot);
              f.word(c.entry.command);
              f.word(c.entry.proposer);
              f.word(c.entry.payload_crc);
              f.time(c.entry.at);
              f.time(c.real_at);
            },
            w.chaos_end, to, w);
        break;
      case StackKind::kPipelinedLog:
        span_metrics(
            probe.deliveries(),
            [](const TimedDelivery& d) { return d.node; },
            [](Fnv& f, const TimedDelivery& d) {
              f.word(d.node);
              f.word(d.entry.slot);
              f.word(d.entry.command);
              f.word(d.entry.proposer);
              f.word(d.entry.payload_crc);
              f.word(d.entry.skipped ? 1 : 0);
              f.time(d.real_at);
            },
            w.chaos_end, to, w);
        break;
    }
    out.push_back(w);
  }
  return out;
}

std::uint64_t run_digest(const RecordingProbe& probe,
                         const NetworkStats& net) {
  Fnv fnv;
  for (const std::uint32_t i : canonical_order(
           probe.decisions(),
           [](const TimedDecision& d) { return d.decision.node; })) {
    const auto& d = probe.decisions()[i];
    fnv.word(d.decision.node);
    fnv.word(d.decision.general.node);
    fnv.word(d.decision.general.index);
    fnv.word(d.decision.value);
    fnv.time(d.decision.tau_g);
    fnv.time(d.decision.at);
    fnv.time(d.real_at);
    fnv.time(d.tau_g_real);
  }
  for (const std::uint32_t i : canonical_order(
           probe.proposals(),
           [](const TimedProposal& p) { return p.general; })) {
    const auto& p = probe.proposals()[i];
    fnv.time(p.real_at);
    fnv.word(p.general);
    fnv.word(p.value);
    fnv.word(std::uint64_t(p.status));
  }
  for (const std::uint32_t i : canonical_order(
           probe.pulses(), [](const TimedPulse& p) { return p.node; })) {
    const auto& p = probe.pulses()[i];
    fnv.word(p.node);
    fnv.word(p.event.counter);
    fnv.time(p.event.at);
    fnv.time(p.real_at);
  }
  for (const std::uint32_t i : canonical_order(
           probe.adjustments(),
           [](const TimedAdjustment& a) { return a.node; })) {
    const auto& a = probe.adjustments()[i];
    fnv.word(a.node);
    fnv.word(a.adjustment.pulse_counter);
    fnv.dur(a.adjustment.amount);
    fnv.time(a.adjustment.at);
    fnv.time(a.real_at);
  }
  for (const std::uint32_t i : canonical_order(
           probe.commits(), [](const TimedCommit& c) { return c.node; })) {
    const auto& c = probe.commits()[i];
    fnv.word(c.node);
    fnv.word(c.entry.slot);
    fnv.word(c.entry.command);
    fnv.word(c.entry.proposer);
    fnv.word(c.entry.payload_crc);
    fnv.time(c.entry.at);
    fnv.time(c.real_at);
  }
  for (const std::uint32_t i : canonical_order(
           probe.deliveries(),
           [](const TimedDelivery& d) { return d.node; })) {
    const auto& d = probe.deliveries()[i];
    fnv.word(d.node);
    fnv.word(d.entry.slot);
    fnv.word(d.entry.command);
    fnv.word(d.entry.proposer);
    fnv.word(d.entry.payload_crc);
    fnv.word(d.entry.skipped ? 1 : 0);
    fnv.time(d.real_at);
  }
  fnv.word(net.sent);
  fnv.word(net.delivered);
  fnv.word(net.dropped);
  fnv.word(net.duplicated);
  fnv.word(net.corrupted);
  fnv.word(net.forged);
  fnv.word(net.auth_rejected);
  fnv.word(net.payload_bytes);
  for (const auto k : net.per_kind) fnv.word(k);
  return fnv.h;
}

StackOutcome evaluate_stack(Cluster& cluster) {
  StackOutcome out;
  out.digest = run_digest(cluster.probe(), cluster.world().net_stats());
  out.agreement = evaluate_run(cluster.decisions(), cluster.proposals(),
                               cluster.correct_count(), cluster.params());
  out.latency_ns = decision_latencies(cluster);

  const bool decisions_ok = out.agreement.agreement_violations == 0 &&
                            out.agreement.validity_violations == 0;
  switch (cluster.scenario().stack) {
    case StackKind::kAgree:
    case StackKind::kBaselineTps:
      out.pass = decisions_ok;
      break;
    case StackKind::kPulse: {
      auto* head = head_node<PulseSyncNode>(cluster);
      if (head == nullptr) break;  // vacuous run: nothing to judge
      auto stats = evaluate_pulses(cluster.probe().pulses(),
                                   cluster.correct_count(), head->cycle());
      const Duration bound = 3 * cluster.params().d();
      out.pass = stats.complete_pulses > 0 &&
                 (stats.skew.empty() || stats.skew.max() <= double(bound.ns()));
      break;
    }
    case StackKind::kClockSync: {
      auto* head = head_node<ClockSyncNode>(cluster);
      if (head == nullptr) break;
      out.pass =
          clocks_settled(cluster) && clock_skew(cluster) <= head->precision_bound();
      break;
    }
    case StackKind::kReplicatedLog: {
      const auto* head = head_node<ReplicatedLogNode>(cluster);
      if (head == nullptr) break;
      bool identical = !head->log().empty();
      for (NodeId i = 0; i < cluster.scenario().n; ++i) {
        const auto* node = cluster.node<ReplicatedLogNode>(i);
        if (node != nullptr && node->log() != head->log()) identical = false;
      }
      out.pass = identical;
      break;
    }
    case StackKind::kPipelinedLog: {
      auto* head = head_node<PipelinedLogNode>(cluster);
      if (head == nullptr) break;
      // Progress means a real delivery at the head, not just released
      // holes: a run that only times slots out must not count as passing.
      bool agree = false;
      for (const auto& d : cluster.probe().deliveries()) {
        if (!d.entry.skipped && cluster.node<PipelinedLogNode>(d.node) == head) {
          agree = true;
          break;
        }
      }
      for (NodeId i = 0; i < cluster.scenario().n; ++i) {
        auto* node = cluster.node<PipelinedLogNode>(i);
        if (node == nullptr || node == head) continue;
        for (const auto& [slot, entry] : node->settled()) {
          const auto it = head->settled().find(slot);
          if (it != head->settled().end() && !(it->second == entry)) {
            agree = false;
          }
        }
      }
      out.pass = agree;
      break;
    }
  }
  return out;
}

bool clocks_settled(Cluster& cluster) {
  std::optional<std::uint64_t> counter;
  for (NodeId i = 0; i < cluster.scenario().n; ++i) {
    auto* node = cluster.node<ClockSyncNode>(i);
    if (node == nullptr) continue;
    if (!node->synchronized() || !node->last_snap_counter()) return false;
    if (counter && *counter != *node->last_snap_counter()) return false;
    counter = node->last_snap_counter();
  }
  return counter.has_value();
}

}  // namespace ssbft
