#include "harness/metrics.hpp"

#include <algorithm>
#include <map>

#include "clocksync/clock_sync.hpp"

namespace ssbft {

std::uint32_t Execution::decided_count() const {
  std::uint32_t count = 0;
  for (const auto& r : returns) {
    if (r.decision.decided()) ++count;
  }
  return count;
}

std::uint32_t Execution::abort_count() const {
  return std::uint32_t(returns.size()) - decided_count();
}

std::optional<Value> Execution::agreed_value() const {
  std::optional<Value> value;
  for (const auto& r : returns) {
    if (!r.decision.decided()) continue;
    if (value && *value != r.decision.value) return std::nullopt;
    value = r.decision.value;
  }
  return value;
}

bool Execution::agreement_holds() const {
  return decided_count() == 0 || agreed_value().has_value();
}

Duration Execution::decision_skew() const {
  RealTime lo = RealTime::max(), hi = RealTime::min();
  for (const auto& r : returns) {
    if (!r.decision.decided()) continue;
    lo = std::min(lo, r.real_at);
    hi = std::max(hi, r.real_at);
  }
  return hi >= lo ? hi - lo : Duration::zero();
}

Duration Execution::tau_g_skew() const {
  RealTime lo = RealTime::max(), hi = RealTime::min();
  for (const auto& r : returns) {
    if (!r.decision.decided()) continue;
    lo = std::min(lo, r.tau_g_real);
    hi = std::max(hi, r.tau_g_real);
  }
  return hi >= lo ? hi - lo : Duration::zero();
}

RealTime Execution::first_return() const {
  RealTime t = RealTime::max();
  for (const auto& r : returns) t = std::min(t, r.real_at);
  return t;
}

RealTime Execution::last_return() const {
  RealTime t = RealTime::min();
  for (const auto& r : returns) t = std::max(t, r.real_at);
  return t;
}

std::vector<Execution> cluster_executions(
    const std::vector<TimedDecision>& decisions, const Params& params) {
  // Partition by General, sort by the anchor rt(τG), and split where
  // consecutive anchors are > 4d apart: within one execution anchors lie
  // within 6d of each other (IA-3A / Timeliness-1b), while distinct
  // executions are separated by > 4d (IA-4 Uniqueness) — and in practice by
  // ≥ ∆0. Splitting a pathological 5d-spread execution is safe: both halves
  // carry the same decided value, so no false violation can result.
  std::map<NodeId, std::vector<TimedDecision>> by_general;
  for (const auto& d : decisions) {
    by_general[d.decision.general.node].push_back(d);
  }

  std::vector<Execution> executions;
  for (auto& [general, list] : by_general) {
    std::sort(list.begin(), list.end(),
              [](const TimedDecision& a, const TimedDecision& b) {
                return a.tau_g_real < b.tau_g_real;
              });
    Execution current;
    current.general = GeneralId{general};
    for (const auto& d : list) {
      if (!current.returns.empty() &&
          d.tau_g_real - current.returns.back().tau_g_real > 4 * params.d()) {
        executions.push_back(std::move(current));
        current = Execution{};
        current.general = GeneralId{general};
      }
      current.returns.push_back(d);
    }
    if (!current.returns.empty()) executions.push_back(std::move(current));
  }
  std::sort(executions.begin(), executions.end(),
            [](const Execution& a, const Execution& b) {
              return a.first_return() < b.first_return();
            });
  return executions;
}

RunMetrics evaluate_run(const std::vector<TimedDecision>& decisions,
                        const std::vector<TimedProposal>& expected,
                        std::uint32_t correct_nodes, const Params& params) {
  RunMetrics metrics;
  const auto executions = cluster_executions(decisions, params);
  metrics.executions = std::uint32_t(executions.size());

  for (const auto& exec : executions) {
    if (!exec.agreement_holds()) ++metrics.agreement_violations;
    if (exec.decided_count() == correct_nodes && exec.agreement_holds()) {
      ++metrics.unanimous_decides;
    }
    metrics.max_decision_skew =
        std::max(metrics.max_decision_skew, exec.decision_skew());
    metrics.max_tau_g_skew =
        std::max(metrics.max_tau_g_skew, exec.tau_g_skew());
  }

  // Validity: each admitted proposal by a correct General must yield an
  // execution in which every correct node decides that value.
  for (const auto& proposal : expected) {
    if (proposal.status != ProposeStatus::kSent) continue;
    bool satisfied = false;
    for (const auto& exec : executions) {
      if (exec.general.node != proposal.general) continue;
      if (exec.first_return() + params.delta_agr() < proposal.real_at) continue;
      if (exec.first_return() > proposal.real_at + params.delta_agr()) continue;
      const auto value = exec.agreed_value();
      if (value && *value == proposal.value &&
          exec.decided_count() == correct_nodes) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) ++metrics.validity_violations;
  }
  return metrics;
}

PulseStats evaluate_pulses(const std::vector<TimedPulse>& pulses,
                           std::uint32_t correct, Duration cycle) {
  PulseStats stats;
  std::map<std::uint64_t, std::vector<RealTime>> by_counter;
  std::map<NodeId, std::vector<RealTime>> by_node;
  for (const auto& p : pulses) {
    by_counter[p.event.counter].push_back(p.real_at);
    by_node[p.node].push_back(p.real_at);
  }
  for (const auto& [counter, fires] : by_counter) {
    if (fires.size() < correct) {
      ++stats.partial_pulses;
      continue;
    }
    ++stats.complete_pulses;
    const auto [lo, hi] = std::minmax_element(fires.begin(), fires.end());
    stats.skew.add(*hi - *lo);
    if (!stats.converged) {
      stats.converged = true;
      stats.convergence = *lo - RealTime::zero();
    }
  }
  for (auto& [node, times] : by_node) {
    std::sort(times.begin(), times.end());
    for (std::size_t i = 1; i < times.size(); ++i) {
      stats.cycle_error.add(abs((times[i] - times[i - 1]) - cycle));
    }
  }
  return stats;
}

Duration clock_skew(Cluster& cluster) {
  Duration worst = Duration::zero();
  const std::uint32_t n = cluster.scenario().n;
  for (NodeId i = 0; i < n; ++i) {
    auto* a = cluster.node<ClockSyncNode>(i);
    if (a == nullptr || !a->synchronized()) continue;
    for (NodeId j = i + 1; j < n; ++j) {
      auto* b = cluster.node<ClockSyncNode>(j);
      if (b == nullptr || !b->synchronized()) continue;
      worst = std::max(worst, abs(a->clock() - b->clock()));
    }
  }
  return worst;
}

bool clocks_synchronized(Cluster& cluster) {
  std::uint32_t synced = 0;
  for (NodeId i = 0; i < cluster.scenario().n; ++i) {
    auto* node = cluster.node<ClockSyncNode>(i);
    if (node != nullptr && node->synchronized()) ++synced;
  }
  return synced == cluster.correct_count();
}

bool clocks_settled(Cluster& cluster) {
  std::optional<std::uint64_t> counter;
  for (NodeId i = 0; i < cluster.scenario().n; ++i) {
    auto* node = cluster.node<ClockSyncNode>(i);
    if (node == nullptr) continue;
    if (!node->synchronized() || !node->last_snap_counter()) return false;
    if (counter && *counter != *node->last_snap_counter()) return false;
    counter = node->last_snap_counter();
  }
  return counter.has_value();
}

}  // namespace ssbft
