// Cluster: the stack-agnostic deployment facade.
//
// A Cluster turns a Scenario into a running World: it builds the configured
// protocol stack on every correct node through the StackRegistry, installs
// the configured adversary on every Byzantine node, schedules the workload,
// and publishes every stack's metrics streams — decisions, pulses, clock
// adjustments, committed entries, deliveries — through a Probe, each record
// stamped with the *real* time the nodes themselves never see.
#pragma once

#include <memory>
#include <vector>

#include "core/node.hpp"
#include "harness/probe.hpp"
#include "harness/scenario.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"

namespace ssbft {

class Tracer;  // harness/trace.hpp

class Cluster {
 public:
  explicit Cluster(const Scenario& scenario);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// The deployed engine: the serial World, the sharded engine when the
  /// scenario asks for shards AND offers a positive delay floor (the
  /// lookahead), or — for chaos scenarios with shards — the alternating
  /// DutyWorld (serial inside each chaos window, windowed between them,
  /// migrating at every boundary; see sim/duty_world.hpp). Without a
  /// lookahead, sharding degrades to serial execution, never to wrongness.
  /// Serial-only internals (network(), queue()) abort on the sharded
  /// engine and on the alternating engine during its sharded segments;
  /// everything else is common.
  [[nodiscard]] WorldBase& world() { return *world_; }
  /// Shards the deployment actually runs on (1 ⇒ serial engine; for the
  /// alternating engine: its sharded segments' shard count).
  [[nodiscard]] std::uint32_t shards() const { return shards_; }
  [[nodiscard]] bool sharded() const { return shards_ > 1; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const Scenario& scenario() const { return scenario_; }

  /// The stack node at `id` as type T, or nullptr if `id` is Byzantine (or
  /// runs a different behavior than T). Defaults to the agreement stack's
  /// node type, so `cluster.node(0)` keeps reading naturally for kAgree.
  template <typename T = SsByzNode>
  [[nodiscard]] T* node(NodeId id) {
    SSBFT_EXPECTS(id < scenario_.n);
    return dynamic_cast<T*>(stack_nodes_[id]);
  }

  /// Untyped stack behavior at `id` (nullptr if Byzantine).
  [[nodiscard]] NodeBehavior* behavior_at(NodeId id) {
    SSBFT_EXPECTS(id < scenario_.n);
    return stack_nodes_[id];
  }

  /// Schedule a workload injection (in addition to the scenario's). The
  /// meaning is stack-dependent: propose() for kAgree/kBaselineTps,
  /// submit() for the log stacks, ignored by kPulse/kClockSync.
  void propose_at(Duration at, NodeId general, Value value);

  /// Start the world (and apply the scenario's transient scramble, if any)
  /// without running. Use with world().run_* for piecewise runs that sample
  /// state mid-flight; idempotent, and implied by run().
  void start();

  /// Run the whole scenario (start + run_for). Streams accumulate in the
  /// probe either way.
  void run();

  // --- observation --------------------------------------------------------
  /// The deployment's recording probe (every stream, real-time stamped).
  [[nodiscard]] const RecordingProbe& probe() const { return recording_; }
  /// Attach an additional observer (not owned; must outlive the run).
  void add_probe(Probe* probe) { hub_.attach(probe); }
  /// The structured-trace collector, or nullptr unless Scenario::trace was
  /// set. Export with TraceWriter::write_json after the run.
  [[nodiscard]] Tracer* tracer() const { return tracer_.get(); }

  /// Convenience accessors for the agreement streams (every stack publishes
  /// them — for layered stacks, via the embedded agreement node's tap).
  [[nodiscard]] const std::vector<TimedDecision>& decisions() const {
    return recording_.decisions();
  }
  [[nodiscard]] const std::vector<TimedProposal>& proposals() const {
    return recording_.proposals();
  }
  [[nodiscard]] std::uint32_t correct_count() const { return correct_count_; }

 private:
  void build();
  void inject(NodeId target, Value value);

  Scenario scenario_;
  Params params_;
  // Probes before the world: behaviors hold sinks into the hub, so the hub
  // must outlive every behavior the world owns.
  ProbeHub hub_;
  RecordingProbe recording_;
  // Tracer before the world: engines cache per-thread buffers while
  // dispatching, so the collector must outlive the engine.
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<WorldBase> world_;
  std::vector<NodeBehavior*> stack_nodes_;  // indexed by NodeId, may be null
  std::uint32_t correct_count_ = 0;
  std::uint32_t shards_ = 1;
  bool started_ = false;
  bool ran_ = false;
};

}  // namespace ssbft
