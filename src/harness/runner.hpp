// Cluster: builds a World from a Scenario and records everything the
// metrics layer needs — decisions stamped with *real* time (which the nodes
// themselves never see), actual proposal times, and network statistics.
#pragma once

#include <memory>
#include <vector>

#include "core/node.hpp"
#include "harness/scenario.hpp"
#include "sim/world.hpp"

namespace ssbft {

/// A Decision plus the omniscient real-time view of it.
struct TimedDecision {
  Decision decision{};
  RealTime real_at{};     // real time of the return
  RealTime tau_g_real{};  // rt(τG): the node's anchor mapped to real time
};

/// A proposal that was actually admitted by the General role.
struct TimedProposal {
  RealTime real_at{};
  NodeId general = kNoNode;
  Value value = kBottom;
  ProposeStatus status = ProposeStatus::kSent;
};

class Cluster {
 public:
  explicit Cluster(const Scenario& scenario);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] World& world() { return *world_; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const Scenario& scenario() const { return scenario_; }

  /// The protocol node at `id`, or nullptr if `id` is Byzantine.
  [[nodiscard]] SsByzNode* node(NodeId id);

  /// Schedule a proposal (in addition to the scenario's workload).
  void propose_at(Duration at, NodeId general, Value value);

  /// Run the whole scenario (start + run_for). Can be called piecewise via
  /// world().run_*; decisions accumulate either way.
  void run();

  [[nodiscard]] const std::vector<TimedDecision>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] const std::vector<TimedProposal>& proposals() const {
    return proposals_;
  }
  [[nodiscard]] std::uint32_t correct_count() const { return correct_count_; }

 private:
  void build();

  Scenario scenario_;
  Params params_;
  std::unique_ptr<World> world_;
  std::vector<TimedDecision> decisions_;
  std::vector<TimedProposal> proposals_;
  std::vector<SsByzNode*> protocol_nodes_;  // indexed by NodeId, may be null
  std::uint32_t correct_count_ = 0;
  bool ran_ = false;
};

}  // namespace ssbft
