#include "harness/runner.hpp"

#include <utility>

#include "adversary/adversaries.hpp"
#include "util/assert.hpp"

namespace ssbft {

namespace {

std::unique_ptr<NodeBehavior> make_adversary(const Scenario& sc, NodeId id) {
  switch (sc.adversary) {
    case AdversaryKind::kSilent:
      return std::make_unique<SilentAdversary>();
    case AdversaryKind::kNoise:
      return std::make_unique<RandomNoiseAdversary>(sc.adversary_period);
    case AdversaryKind::kEquivocatingGeneral:
      return std::make_unique<EquivocatingGeneral>(
          sc.equivocate_v0, sc.equivocate_v1, sc.adversary_start,
          sc.equivocate_split);
    case AdversaryKind::kStaggeredGeneral:
      return std::make_unique<StaggeredGeneral>(
          sc.equivocate_v0, sc.adversary_start, sc.stagger_span);
    case AdversaryKind::kSpamGeneral:
      return std::make_unique<SpamGeneral>(sc.adversary_period);
    case AdversaryKind::kReplay:
      return std::make_unique<ReplayAdversary>(sc.adversary_period * 8);
    case AdversaryKind::kQuorumFaker: {
      std::vector<NodeId> victims;
      for (NodeId v = 0; v < sc.n / 2; ++v) victims.push_back(v);
      return std::make_unique<QuorumFaker>(GeneralId{id}, sc.equivocate_v0,
                                           sc.adversary_period,
                                           std::move(victims));
    }
  }
  return std::make_unique<SilentAdversary>();
}

}  // namespace

Cluster::Cluster(const Scenario& scenario)
    : scenario_(scenario), params_(scenario.make_params()) {
  build();
}

Cluster::~Cluster() = default;

void Cluster::build() {
  WorldConfig wc;
  wc.n = scenario_.n;
  wc.delta = scenario_.delta;
  wc.pi = scenario_.pi;
  wc.rho = scenario_.rho;
  if (scenario_.link_delay) {
    wc.link_delay = *scenario_.link_delay;
    wc.proc_delay = DelayModel::uniform(Duration::zero(), scenario_.pi);
    wc.has_delay_models = true;
  }
  wc.seed = scenario_.seed;
  wc.log_level = scenario_.log_level;
  world_ = std::make_unique<World>(wc);

  protocol_nodes_.assign(scenario_.n, nullptr);
  for (NodeId id = 0; id < scenario_.n; ++id) {
    if (scenario_.is_byzantine(id)) {
      world_->set_behavior(id, make_adversary(scenario_, id));
      continue;
    }
    ++correct_count_;
    auto sink = [this](const Decision& decision) {
      TimedDecision td;
      td.decision = decision;
      td.real_at = world_->now();
      td.tau_g_real = world_->real_at(decision.node, decision.tau_g);
      decisions_.push_back(td);
    };
    auto node = std::make_unique<SsByzNode>(params_, sink);
    protocol_nodes_[id] = node.get();
    world_->set_behavior(id, std::move(node));
  }

  if (scenario_.chaos_period > Duration::zero()) {
    world_->network().set_faulty_until(RealTime::zero() +
                                       scenario_.chaos_period);
  }

  for (const auto& proposal : scenario_.proposals) {
    propose_at(proposal.at, proposal.general, proposal.value);
  }
}

SsByzNode* Cluster::node(NodeId id) {
  SSBFT_EXPECTS(id < scenario_.n);
  return protocol_nodes_[id];
}

void Cluster::propose_at(Duration at, NodeId general, Value value) {
  SSBFT_EXPECTS(general < scenario_.n);
  world_->queue().schedule(RealTime::zero() + at, [this, general, value] {
    SsByzNode* node = protocol_nodes_[general];
    if (node == nullptr) return;  // Byzantine "General": adversary's job
    const ProposeStatus status = node->propose(value);
    proposals_.push_back(
        TimedProposal{world_->now(), general, value, status});
  });
}

void Cluster::run() {
  SSBFT_EXPECTS(!ran_);
  ran_ = true;
  world_->start();
  if (scenario_.transient_scramble) {
    FaultInjector injector(*world_);
    injector.transient_fault(scenario_.transient);
  }
  world_->run_until(RealTime::zero() + scenario_.run_for);
}

}  // namespace ssbft
