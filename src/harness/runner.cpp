#include "harness/runner.hpp"

#include <utility>

#include "adversary/adversaries.hpp"
#include "harness/stack_registry.hpp"
#include "harness/trace.hpp"
#include "sim/fault_injector.hpp"
#include "sim/duty_world.hpp"
#include "sim/shard_world.hpp"

namespace ssbft {

namespace {

std::unique_ptr<NodeBehavior> make_adversary(const Scenario& sc, NodeId id) {
  switch (sc.adversary) {
    case AdversaryKind::kSilent:
      return std::make_unique<SilentAdversary>();
    case AdversaryKind::kNoise:
      return std::make_unique<RandomNoiseAdversary>(sc.adversary_period);
    case AdversaryKind::kEquivocatingGeneral:
      return std::make_unique<EquivocatingGeneral>(
          sc.equivocate_v0, sc.equivocate_v1, sc.adversary_start,
          sc.equivocate_split);
    case AdversaryKind::kStaggeredGeneral:
      return std::make_unique<StaggeredGeneral>(
          sc.equivocate_v0, sc.adversary_start, sc.stagger_span);
    case AdversaryKind::kSpamGeneral:
      return std::make_unique<SpamGeneral>(sc.adversary_period);
    case AdversaryKind::kReplay:
      return std::make_unique<ReplayAdversary>(sc.adversary_period * 8);
    case AdversaryKind::kQuorumFaker: {
      // Victims: the first ⌊n/2⌋ CORRECT nodes. Blindly taking ids 0..n/2
      // could include the faker itself and fellow Byzantine nodes — wasting
      // the attack budget and making the victim set depend on where the
      // Byzantine ids happen to sit.
      std::vector<NodeId> victims;
      for (NodeId v = 0; v < sc.n && victims.size() < sc.n / 2; ++v) {
        if (v == id || sc.is_byzantine(v)) continue;
        victims.push_back(v);
      }
      return std::make_unique<QuorumFaker>(GeneralId{id}, sc.equivocate_v0,
                                           sc.adversary_period,
                                           std::move(victims));
    }
  }
  SSBFT_EXPECTS(!"unknown AdversaryKind");  // every kind returns above
  std::abort();
}

}  // namespace

Cluster::Cluster(const Scenario& scenario)
    : scenario_(scenario), params_(scenario.make_params()) {
  hub_.attach(&recording_);
  build();
}

Cluster::~Cluster() = default;

void Cluster::build() {
  WorldConfig wc;
  wc.n = scenario_.n;
  wc.delta = scenario_.delta;
  wc.pi = scenario_.pi;
  wc.rho = scenario_.rho;
  if (scenario_.link_delay) {
    wc.link_delay = *scenario_.link_delay;
    wc.proc_delay = DelayModel::uniform(Duration::zero(), scenario_.pi);
    wc.has_delay_models = true;
  }
  if (scenario_.max_clock_offset) {
    wc.max_clock_offset = *scenario_.max_clock_offset;
  } else if (scenario_.stack == StackKind::kBaselineTps) {
    // The baseline's synchrony assumption: a common, already-synchronized
    // start. The paper's protocol never gets this gift.
    wc.max_clock_offset = Duration::zero();
  }
  wc.seed = scenario_.seed;
  wc.log_level = scenario_.log_level;
  wc.auth = scenario_.auth;
  wc.shards = scenario_.shards;
  wc.shard_sched = scenario_.shard_sched;
  wc.timer_wheel = scenario_.timer_wheel;
  if (scenario_.trace) {
    tracer_ = std::make_unique<Tracer>();
    wc.tracer = tracer_.get();
  }
  wc.resolve_delay_models();
  // A malformed chaos duty cycle (overlapping windows, negative knobs)
  // must never silently run — refuse at build time. Degenerate-but-sound
  // cycles normalize to fewer (possibly zero) windows instead.
  SSBFT_EXPECTS(scenario_.validate_chaos() == nullptr);
  // Same contract for the dissemination overlay: malformed knobs refuse,
  // chaos schedules degrade non-flat topologies to flat (effective_topology).
  SSBFT_EXPECTS(scenario_.validate_topology() == nullptr);
  wc.topology = scenario_.effective_topology();
  const std::vector<ChaosWindow> windows = scenario_.chaos_windows();
  // Engine selection — schedule-aware: the sharded engine needs a
  // conservative lookahead (positive delay floor); without one, sharding
  // degrades to the serial engine — identical results either way
  // (test_shard). A chaos schedule no longer pins the whole run serial:
  // each window is a serial-engine segment (its delays undercut any
  // lookahead), so the DutyWorld alternates — serial inside the windows,
  // the windowed engine between them — with a full state migration at
  // every boundary. The stabilization stretches scale, digests stay
  // bit-identical to all-serial (test_duty).
  shards_ = ShardWorld::effective_shards(wc);
  if (shards_ > 1 && !windows.empty()) {
    world_ = std::make_unique<DutyWorld>(wc, windows);
  } else if (shards_ > 1) {
    world_ = std::make_unique<ShardWorld>(wc);
  } else {
    world_ = std::make_unique<World>(wc);
    if (!windows.empty()) world_->network().set_faulty_windows(windows);
  }

  const StackFactory& factory =
      StackRegistry::instance().entry(scenario_.stack).factory;
  stack_nodes_.assign(scenario_.n, nullptr);
  for (NodeId id = 0; id < scenario_.n; ++id) {
    if (scenario_.is_byzantine(id)) {
      world_->set_behavior(id, make_adversary(scenario_, id));
      continue;
    }
    ++correct_count_;
    auto behavior =
        factory(StackBuild{scenario_, params_, id, *world_, hub_});
    stack_nodes_[id] = behavior.get();
    world_->set_behavior(id, std::move(behavior));
  }

  for (const auto& proposal : scenario_.proposals) {
    propose_at(proposal.at, proposal.general, proposal.value);
  }
}

void Cluster::propose_at(Duration at, NodeId general, Value value) {
  SSBFT_EXPECTS(general < scenario_.n);
  world_->schedule(RealTime::zero() + at, general, [this, general, value] {
    inject(general, value);
  });
}

void Cluster::inject(NodeId target, Value value) {
  NodeBehavior* behavior = stack_nodes_[target];
  if (behavior == nullptr) return;  // Byzantine target: adversary's job
  const StackInjector& injector =
      StackRegistry::instance().entry(scenario_.stack).injector;
  if (!injector) return;  // self-clocking stack: no external workload
  // The command body: a deterministic pattern derived from the value, so
  // every engine builds bit-identical bytes (and every correct node can be
  // checked against the same checksum downstream).
  const Payload payload = scenario_.payload_bytes == 0
                              ? Payload{}
                              : make_patterned_payload(scenario_.payload_bytes,
                                                       value);
  const auto status = injector(*behavior, value, payload);
  trace::instant(TraceLayer::kWorkload, TraceName::kInject, target,
                 std::int64_t(value));
  if (status) {
    hub_.on_proposal(TimedProposal{world_->now(), target, value, *status});
  }
}

void Cluster::start() {
  if (started_) return;
  started_ = true;
  world_->start();
  if (scenario_.transient_scramble) {
    FaultInjector injector(*world_);
    injector.transient_fault(scenario_.transient);
  }
}

void Cluster::run() {
  SSBFT_EXPECTS(!ran_);
  ran_ = true;
  start();
  world_->run_until(RealTime::zero() + scenario_.run_for);
}

}  // namespace ssbft
