// Probe: the stack-agnostic observer interface through which every
// deployment publishes its metrics streams.
//
// Each protocol stack produces a different primary stream — agreement
// decisions, pulses, clock adjustments, committed log entries, pipelined
// deliveries — and every record is stamped with the *real* time of the
// event (which the nodes themselves never see). The Cluster wires the
// stack's sinks into a Probe at build time; RecordingProbe accumulates the
// streams for post-run analysis, and ProbeHub fans events out to any number
// of additional observers (assertions, live dashboards). The hub is also
// where the structured tracer (harness/trace.hpp) taps the protocol
// streams: every publication doubles as a timeline record, exported by
// TraceWriter as Perfetto JSON via `ssbft_cli --trace out.json`.
#pragma once

#include <mutex>
#include <vector>

#include "app/log_types.hpp"
#include "clocksync/clock_sync_types.hpp"
#include "core/node.hpp"
#include "pulse/pulse_types.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace ssbft {

/// A Decision plus the omniscient real-time view of it.
struct TimedDecision {
  Decision decision{};
  RealTime real_at{};     // real time of the return
  RealTime tau_g_real{};  // rt(τG): the node's anchor mapped to real time
};

/// A proposal that was actually admitted by the General role (or submitted
/// to a log stack; `status` is kSent for stacks without pacing feedback).
struct TimedProposal {
  RealTime real_at{};
  NodeId general = kNoNode;
  Value value = kBottom;
  ProposeStatus status = ProposeStatus::kSent;
};

/// One pulse fired at one node (kPulse / kClockSync stacks).
struct TimedPulse {
  NodeId node = kNoNode;
  PulseEvent event{};
  RealTime real_at{};
};

/// One clock snap at one node (kClockSync stack).
struct TimedAdjustment {
  NodeId node = kNoNode;
  ClockAdjustment adjustment{};
  RealTime real_at{};
};

/// One committed entry at one node (kReplicatedLog stack).
struct TimedCommit {
  NodeId node = kNoNode;
  CommittedEntry entry{};
  RealTime real_at{};
};

/// One in-order delivery at one node (kPipelinedLog stack).
struct TimedDelivery {
  NodeId node = kNoNode;
  PipelinedEntry entry{};
  RealTime real_at{};
};

/// Observer over every stream a stack can publish. Default: ignore.
class Probe {
 public:
  virtual ~Probe() = default;

  virtual void on_decision(const TimedDecision&) {}
  virtual void on_proposal(const TimedProposal&) {}
  virtual void on_pulse(const TimedPulse&) {}
  virtual void on_adjustment(const TimedAdjustment&) {}
  virtual void on_commit(const TimedCommit&) {}
  virtual void on_delivery(const TimedDelivery&) {}
};

/// Accumulates every stream; the Cluster's default probe.
class RecordingProbe final : public Probe {
 public:
  void on_decision(const TimedDecision& d) override { decisions_.push_back(d); }
  void on_proposal(const TimedProposal& p) override { proposals_.push_back(p); }
  void on_pulse(const TimedPulse& p) override { pulses_.push_back(p); }
  void on_adjustment(const TimedAdjustment& a) override {
    adjustments_.push_back(a);
  }
  void on_commit(const TimedCommit& c) override { commits_.push_back(c); }
  void on_delivery(const TimedDelivery& d) override {
    deliveries_.push_back(d);
  }

  [[nodiscard]] const std::vector<TimedDecision>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] const std::vector<TimedProposal>& proposals() const {
    return proposals_;
  }
  [[nodiscard]] const std::vector<TimedPulse>& pulses() const {
    return pulses_;
  }
  [[nodiscard]] const std::vector<TimedAdjustment>& adjustments() const {
    return adjustments_;
  }
  [[nodiscard]] const std::vector<TimedCommit>& commits() const {
    return commits_;
  }
  [[nodiscard]] const std::vector<TimedDelivery>& deliveries() const {
    return deliveries_;
  }

  void clear();

 private:
  std::vector<TimedDecision> decisions_;
  std::vector<TimedProposal> proposals_;
  std::vector<TimedPulse> pulses_;
  std::vector<TimedAdjustment> adjustments_;
  std::vector<TimedCommit> commits_;
  std::vector<TimedDelivery> deliveries_;
};

/// Fans every event out to all attached probes (none owned). Publication is
/// serialized by a mutex: shard workers (sim/shard_world.hpp) publish
/// concurrently, and the attached probes (RecordingProbe included) need not
/// be thread-safe themselves. Per-NODE record order is the node's own
/// execution order on any engine; the cross-node interleaving is arbitrary
/// under sharding, which is why metrics::run_digest canonicalizes per node.
class ProbeHub final : public Probe {
 public:
  void attach(Probe* probe);

  void on_decision(const TimedDecision& d) override;
  void on_proposal(const TimedProposal& p) override;
  void on_pulse(const TimedPulse& p) override;
  void on_adjustment(const TimedAdjustment& a) override;
  void on_commit(const TimedCommit& c) override;
  void on_delivery(const TimedDelivery& d) override;

 private:
  std::mutex mutex_;
  std::vector<Probe*> probes_;
};

}  // namespace ssbft
