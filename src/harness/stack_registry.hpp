// StackRegistry: StackKind → behavior factory.
//
// The Cluster builds the behavior for every correct node by looking up the
// Scenario's StackKind here; the factory constructs the protocol stack and
// wires its sinks (and the taps of embedded layers) into the deployment's
// Probe, stamping each event with real time. The six built-in stacks are
// pre-registered; new stacks plug in through add() without touching the
// Cluster — the client/manager factory idiom, applied to protocol layers.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "core/params.hpp"
#include "harness/probe.hpp"
#include "harness/scenario.hpp"
#include "sim/node.hpp"
#include "sim/world.hpp"

namespace ssbft {

/// Everything a factory may consult while building one correct node.
/// The world and probe references are owned by the Cluster and outlive
/// every behavior built against them.
struct StackBuild {
  const Scenario& scenario;
  const Params& params;
  NodeId id;
  WorldBase& world;  // real-time stamping inside probe sinks
  Probe& probe;  // where the node's streams are published
};

using StackFactory =
    std::function<std::unique_ptr<NodeBehavior>(const StackBuild&)>;

/// Injects one workload value into a behavior this stack's factory built:
/// propose() for agreement-style stacks, submit() for logs. The payload is
/// the command's application body (empty under the legacy bare-command
/// workload); stacks attach it to the initiating broadcast, where it rides
/// the shared payload pool. Returns the admitted status, or nullopt when
/// nothing was injected (the stack takes no external workload, or the
/// behavior is not this stack's type).
using StackInjector = std::function<std::optional<ProposeStatus>(
    NodeBehavior&, Value, const Payload&)>;

/// One deployable stack: how to build a correct node, and how to feed it
/// workload. `injector` may be null for self-clocking stacks.
struct StackEntry {
  StackFactory factory;
  StackInjector injector;
};

class StackRegistry {
 public:
  /// The process-wide registry, with the built-in stacks pre-registered.
  [[nodiscard]] static StackRegistry& instance();

  /// Register (or replace) the entry for `kind`. The injector travels with
  /// the factory so a replacement stack keeps workload delivery coherent.
  void add(StackKind kind, StackFactory factory,
           StackInjector injector = nullptr);

  [[nodiscard]] bool has(StackKind kind) const;
  /// Asserts the kind is registered.
  [[nodiscard]] const StackEntry& entry(StackKind kind) const;

 private:
  StackRegistry();  // registers the built-ins

  std::map<StackKind, StackEntry> entries_;
};

/// Publishes `d` (as seen at real time world.now()) to `probe`.
void publish_decision(WorldBase& world, Probe& probe, const Decision& d);

}  // namespace ssbft
