#include "harness/scenario.hpp"

#include <algorithm>

#include "sim/world.hpp"

namespace ssbft {

const char* to_string(AdversaryKind kind) {
  // Exhaustive: no default, so -Wswitch flags a new enumerator here; the
  // kAdversaryKindCount unit test catches it at runtime too.
  switch (kind) {
    case AdversaryKind::kSilent: return "silent";
    case AdversaryKind::kNoise: return "noise";
    case AdversaryKind::kEquivocatingGeneral: return "equivocating-general";
    case AdversaryKind::kStaggeredGeneral: return "staggered-general";
    case AdversaryKind::kSpamGeneral: return "spam-general";
    case AdversaryKind::kReplay: return "replay";
    case AdversaryKind::kQuorumFaker: return "quorum-faker";
  }
  return "?";
}

const char* to_string(StackKind kind) {
  switch (kind) {
    case StackKind::kAgree: return "agree";
    case StackKind::kPulse: return "pulse";
    case StackKind::kClockSync: return "clock-sync";
    case StackKind::kReplicatedLog: return "replicated-log";
    case StackKind::kPipelinedLog: return "pipelined-log";
    case StackKind::kBaselineTps: return "baseline-tps";
  }
  return "?";
}

Params Scenario::make_params() const {
  WorldConfig wc;
  wc.delta = delta;
  wc.pi = pi;
  wc.rho = rho;
  Params params{n, f, wc.d_bound()};
  if (r1_window != Duration::zero()) params.set_r1_window(r1_window);
  params.set_cleanup_enabled(cleanup_enabled);
  params.set_quorum_policy(quorum_policy);
  return params;
}

bool Scenario::is_byzantine(NodeId id) const {
  return std::find(byz_nodes.begin(), byz_nodes.end(), id) != byz_nodes.end();
}

Scenario& Scenario::with_tail_faults(std::uint32_t count) {
  byz_nodes.clear();
  for (std::uint32_t i = 0; i < count && i < n; ++i) {
    byz_nodes.push_back(n - 1 - i);
  }
  return *this;
}

Scenario& Scenario::with_proposal(Duration at, NodeId general, Value value) {
  proposals.push_back(Proposal{at, general, value});
  return *this;
}

Scenario& Scenario::with_stack(StackKind kind) {
  stack = kind;
  return *this;
}

}  // namespace ssbft
