#include "harness/scenario.hpp"

#include <algorithm>

#include "sim/world.hpp"
#include "util/assert.hpp"

namespace ssbft {

const char* to_string(AdversaryKind kind) {
  // Exhaustive: no default, so -Wswitch flags a new enumerator here; the
  // kAdversaryKindCount unit test catches it at runtime too.
  switch (kind) {
    case AdversaryKind::kSilent: return "silent";
    case AdversaryKind::kNoise: return "noise";
    case AdversaryKind::kEquivocatingGeneral: return "equivocating-general";
    case AdversaryKind::kStaggeredGeneral: return "staggered-general";
    case AdversaryKind::kSpamGeneral: return "spam-general";
    case AdversaryKind::kReplay: return "replay";
    case AdversaryKind::kQuorumFaker: return "quorum-faker";
  }
  return "?";
}

const char* to_string(StackKind kind) {
  switch (kind) {
    case StackKind::kAgree: return "agree";
    case StackKind::kPulse: return "pulse";
    case StackKind::kClockSync: return "clock-sync";
    case StackKind::kReplicatedLog: return "replicated-log";
    case StackKind::kPipelinedLog: return "pipelined-log";
    case StackKind::kBaselineTps: return "baseline-tps";
  }
  return "?";
}

Params Scenario::make_params() const {
  WorldConfig wc;
  wc.delta = delta;
  wc.pi = pi;
  wc.rho = rho;
  Params params{n, f, wc.d_bound()};
  if (r1_window != Duration::zero()) params.set_r1_window(r1_window);
  params.set_cleanup_enabled(cleanup_enabled);
  params.set_quorum_policy(quorum_policy);
  return params;
}

const char* Scenario::validate_chaos() const {
  if (chaos_period < Duration::zero()) {
    return "chaos_period must be non-negative";
  }
  if (chaos_first_start < Duration::zero()) {
    return "chaos_first_start must be non-negative";
  }
  if (chaos_duty < Duration::zero()) {
    return "chaos_duty must be non-negative";
  }
  if (chaos_count > 1 && chaos_duty != Duration::zero() &&
      chaos_duty < chaos_period) {
    return "chaos_duty < chaos_period: recurring chaos windows would overlap";
  }
  return nullptr;
}

const char* Scenario::validate_topology() const {
  if (topology == Topology::kFederated) {
    if (cluster_size == 0) {
      return "federated topology requires cluster_size >= 1";
    }
    if (n % cluster_size != 0) {
      return "cluster_size must divide n exactly";
    }
  }
  if (topology == Topology::kGossip && gossip_fanout == 0) {
    return "gossip topology requires gossip_fanout >= 1";
  }
  return nullptr;
}

TopologyConfig Scenario::effective_topology() const {
  SSBFT_EXPECTS(validate_topology() == nullptr);
  if (topology != Topology::kFlat && !chaos_windows().empty()) {
    // A chaos window drops/corrupts per HOP: one lost relay copy would
    // silently orphan a whole subtree of destinations. Under chaos the
    // overlay degrades to the flat fan-out — every destination keeps its
    // own independent chance of delivery — never to wrongness.
    return TopologyConfig{};
  }
  return TopologyConfig{topology, cluster_size, gossip_fanout};
}

std::vector<ChaosWindow> Scenario::chaos_windows() const {
  SSBFT_EXPECTS(validate_chaos() == nullptr);
  std::vector<ChaosWindow> out;
  if (chaos_period <= Duration::zero() || chaos_count == 0) return out;
  // Unset stride ⇒ back-to-back windows, which merge into one below —
  // count > 1 without a stride degrades to a single wider window.
  const Duration stride =
      chaos_duty > Duration::zero() ? chaos_duty : chaos_period;
  Duration start = chaos_first_start;
  for (std::uint32_t k = 0; k < chaos_count; ++k, start += stride) {
    // A window starting at or past the horizon can never matter: drop it
    // (and everything after) rather than schedule dead engine switches.
    if (start >= run_for) break;
    const RealTime s = RealTime::zero() + start;
    const RealTime e = s + chaos_period;
    if (!out.empty() && out.back().end == s) {
      out.back().end = e;  // contiguous: one longer window, fewer cuts
    } else {
      out.push_back(ChaosWindow{s, e});
    }
  }
  return out;
}

bool Scenario::is_byzantine(NodeId id) const {
  return std::find(byz_nodes.begin(), byz_nodes.end(), id) != byz_nodes.end();
}

Scenario& Scenario::with_tail_faults(std::uint32_t count) {
  byz_nodes.clear();
  for (std::uint32_t i = 0; i < count && i < n; ++i) {
    byz_nodes.push_back(n - 1 - i);
  }
  return *this;
}

Scenario& Scenario::with_proposal(Duration at, NodeId general, Value value) {
  proposals.push_back(Proposal{at, general, value});
  return *this;
}

Scenario& Scenario::with_stack(StackKind kind) {
  stack = kind;
  return *this;
}

}  // namespace ssbft
