// The Initiator-Accept primitive (paper §4, Fig. 2).
//
// One instance runs per (node, General). Its job: give all correct nodes a
// consistent local-time anchor τG for an initiation by a possibly-Byzantine
// General, and converge them on one candidate value. The guarantees (once
// the system is stable, n > 3f):
//
//   IA-1 Correctness    — correct G ⇒ all I-accept its value within 4d of
//                         the invocation, within 2d of each other, τG
//                         estimates within d; t0−d ≤ rt(τG) ≤ rt(τq) ≤ t0+4d
//   IA-2 Unforgeability — nobody invoked ⇒ nobody I-accepts
//   IA-3 ∆agr-Relay     — one I-accept ⇒ all do, within 2d, τG within 6d
//   IA-4 Uniqueness     — distinct values are ≥ 4d apart; repeats of the
//                         same value are ≤ 6d or > 2∆rmv−3d apart
//
// Message flow: (Initiator) → support → approve → ready → I-accept, with
// the window/quorum tests of blocks K/L/M/N. All state decays (cleanup
// block), which is what makes the primitive self-stabilizing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "core/flat_map.hpp"
#include "core/message_log.hpp"
#include "core/params.hpp"
#include "core/timed_var.hpp"
#include "sim/node.hpp"
#include "util/types.hpp"

namespace ssbft {

class InitiatorAccept {
 public:
  /// Called when Line N4 issues I-accept ⟨G, m, τG⟩.
  using IAcceptFn = std::function<void(Value m, LocalTime tau_g)>;

  InitiatorAccept(const Params& params, GeneralId general, IAcceptFn on_accept);

  /// Block K: explicit invocation upon receiving (Initiator, G, m).
  void invoke(NodeContext& ctx, Value m);

  /// Feed a support/approve/ready message (Initiator handled via invoke()).
  void on_message(NodeContext& ctx, const WireMessage& msg);

  /// Full reset (ss-Byz-Agree's "3d after returning a value reset
  /// Initiator-Accept"); also used by a General before a new invocation.
  void reset();

  /// Transient-fault hook: arbitrary state.
  void scramble(NodeContext& ctx, Rng& rng);

  // --- introspection (tests, and the General's IG3 failure detection) ---
  [[nodiscard]] std::optional<LocalTime> last_l4() const { return last_l4_; }
  [[nodiscard]] std::optional<LocalTime> last_m4() const { return last_m4_; }
  [[nodiscard]] std::optional<LocalTime> last_n4() const { return last_n4_; }
  [[nodiscard]] std::optional<LocalTime> i_value_of(Value m) const;
  [[nodiscard]] std::vector<Value> i_value_keys() const;
  /// True iff Block K's preconditions would pass for value `m` right now
  /// (after cleanup); `why` receives a short diagnostic when they fail.
  [[nodiscard]] bool k1_would_pass(LocalTime now, Value m,
                                   std::string* why = nullptr) const;
  [[nodiscard]] bool ready_set(Value m) const { return ready_since_.contains(m); }
  [[nodiscard]] std::size_t log_size() const { return log_.total_arrivals(); }
  /// Count of N4 executions whose i_values entry had already decayed — can
  /// only happen outside stability; surfaced for diagnostics.
  [[nodiscard]] std::uint64_t accepts_without_anchor() const {
    return accepts_without_anchor_;
  }

 private:
  void cleanup(LocalTime now);
  void evaluate(NodeContext& ctx);
  void evaluate_value(NodeContext& ctx, Value m, LocalTime now);
  bool rate_limited_send(NodeContext& ctx, MsgKind kind, Value m);
  [[nodiscard]] bool ignoring(Value m, LocalTime now) const;
  void touch(Value m, LocalTime now);  // lastq(G,m) := τq

  const Params& params_;
  GeneralId general_;
  IAcceptFn on_accept_;

  // Per-value tables are sorted FlatMaps: a handful of live values probed
  // on every message, iterated in the same ascending order the std::map
  // originals had (evaluate()'s candidate loop sends while walking them).
  ArrivalLog log_;                                // support/approve/ready
  FlatMap<Value, LocalTime> i_values_;            // i_values[G,m]
  TimedVar last_g_;                               // lastq(G)
  FlatMap<Value, TimedVar> last_gm_;              // lastq(G,m)
  FlatMap<Value, LocalTime> ready_since_;         // ready_{G,m} set-time
  FlatMap<Value, LocalTime> ignore_until_;        // N4's 3d ignore window
  std::optional<LocalTime> last_support_sent_;    // any (support, G, *)
  FlatMap<std::pair<std::uint8_t, Value>, LocalTime> last_sent_;  // resend cap

  std::optional<LocalTime> last_l4_;
  std::optional<LocalTime> last_m4_;
  std::optional<LocalTime> last_n4_;
  std::uint64_t accepts_without_anchor_ = 0;
};

}  // namespace ssbft
