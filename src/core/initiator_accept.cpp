#include "core/initiator_accept.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ssbft {

namespace {

// Candidate values under per-value evaluation = values with any logged
// activity plus values with standing state.
template <class Map>
void add_keys(std::vector<Value>& out, const Map& map) {
  for (const auto& [value, unused] : map) {
    if (std::find(out.begin(), out.end(), value) == out.end()) {
      out.push_back(value);
    }
  }
}

}  // namespace

InitiatorAccept::InitiatorAccept(const Params& params, GeneralId general,
                                 IAcceptFn on_accept)
    : params_(params), general_(general), on_accept_(std::move(on_accept)) {}

std::optional<LocalTime> InitiatorAccept::i_value_of(Value m) const {
  const auto it = i_values_.find(m);
  if (it == i_values_.end()) return std::nullopt;
  return it->second;
}

std::vector<Value> InitiatorAccept::i_value_keys() const {
  std::vector<Value> keys;
  keys.reserve(i_values_.size());
  for (const auto& [value, unused] : i_values_) keys.push_back(value);
  return keys;
}

bool InitiatorAccept::k1_would_pass(LocalTime now, Value m,
                                    std::string* why) const {
  const auto fail = [why](const char* reason) {
    if (why) *why = reason;
    return false;
  };
  for (const auto& [value, unused] : i_values_) {
    if (value != m) return fail("i_values holds another value");
  }
  if (!last_g_.is_bottom()) return fail("last(G) set");
  if (last_support_sent_ && *last_support_sent_ >= now - params_.d() &&
      *last_support_sent_ <= now) {
    return fail("support sent within last d");
  }
  if (const auto it = last_gm_.find(m);
      it != last_gm_.end() && it->second.value_at(now - params_.d())) {
    return fail("last(G,m) set d ago");
  }
  if (const auto it = ignore_until_.find(m);
      it != ignore_until_.end() && now < it->second) {
    return fail("inside N4 ignore window");
  }
  if (why) *why = "ok";
  return true;
}

bool InitiatorAccept::ignoring(Value m, LocalTime now) const {
  const auto it = ignore_until_.find(m);
  return it != ignore_until_.end() && now < it->second;
}

void InitiatorAccept::touch(Value m, LocalTime now) {
  last_gm_[m].set(now, now);
}

bool InitiatorAccept::rate_limited_send(NodeContext& ctx, MsgKind kind,
                                        Value m) {
  // The paper allows repeated sends and explicitly ignores the optimization
  // of suppressing them (§4). We cap each (kind, value) at one send per d;
  // receivers count distinct senders, so duplicates carry no information.
  const LocalTime now = ctx.local_now();
  auto& last = last_sent_[{std::uint8_t(kind), m}];
  if (last != LocalTime{} && now - last < params_.d() && last <= now) {
    return false;
  }
  last = now;
  WireMessage msg;
  msg.kind = kind;
  msg.general = general_;
  msg.value = m;
  ctx.send_all(msg);
  return true;
}

void InitiatorAccept::invoke(NodeContext& ctx, Value m) {
  const LocalTime now = ctx.local_now();
  cleanup(now);

  // --- Block K ---------------------------------------------------------
  // K1: every test guards the General's compliance with the Sending
  // Validity Criteria, judged on this node's own (possibly stale) state.
  const bool other_values_bottom = std::all_of(
      i_values_.begin(), i_values_.end(),
      [m](const auto& kv) { return kv.first == m; });
  const bool last_g_bottom = last_g_.is_bottom();
  const bool no_recent_support =
      !last_support_sent_.has_value() ||
      *last_support_sent_ < now - params_.d() || *last_support_sent_ > now;
  // lastq(G,m) = ⊥ at τq − d: the data structure must reflect its state d
  // time units in the past (Fig. 2 commentary).
  const bool last_gm_bottom_d_ago = [&] {
    const auto it = last_gm_.find(m);
    return it == last_gm_.end() ||
           !it->second.value_at(now - params_.d()).has_value();
  }();

  if (other_values_bottom && last_g_bottom && no_recent_support &&
      last_gm_bottom_d_ago && !ignoring(m, now)) {
    // K2: record a time prior to the invocation (the General's message took
    // up to d to arrive), send support, and mark the send.
    auto [it, inserted] = i_values_.try_emplace(m, now - params_.d());
    if (!inserted) it->second = std::max(it->second, now - params_.d());
    last_support_sent_ = now;
    rate_limited_send(ctx, MsgKind::kSupport, m);
    touch(m, now);
  }

  evaluate(ctx);
}

void InitiatorAccept::on_message(NodeContext& ctx, const WireMessage& msg) {
  SSBFT_EXPECTS(msg.kind == MsgKind::kSupport ||
                msg.kind == MsgKind::kApprove || msg.kind == MsgKind::kReady);
  const LocalTime now = ctx.local_now();
  cleanup(now);
  if (ignoring(msg.value, now)) return;  // N4's 3d ignore window
  log_.note(ArrivalKey{msg.kind, msg.value, kNoNode, 0}, msg.sender, now);
  evaluate(ctx);
}

void InitiatorAccept::evaluate(NodeContext& ctx) {
  const LocalTime now = ctx.local_now();
  std::vector<Value> candidates = log_.values_with(MsgKind::kSupport);
  for (Value v : log_.values_with(MsgKind::kApprove)) {
    if (std::find(candidates.begin(), candidates.end(), v) == candidates.end())
      candidates.push_back(v);
  }
  for (Value v : log_.values_with(MsgKind::kReady)) {
    if (std::find(candidates.begin(), candidates.end(), v) == candidates.end())
      candidates.push_back(v);
  }
  add_keys(candidates, ready_since_);
  for (Value m : candidates) {
    if (!ignoring(m, now)) evaluate_value(ctx, m, now);
  }
}

void InitiatorAccept::evaluate_value(NodeContext& ctx, Value m,
                                     LocalTime now) {
  const Duration d = params_.d();
  const ArrivalKey support{MsgKind::kSupport, m, kNoNode, 0};
  const ArrivalKey approve{MsgKind::kApprove, m, kNoNode, 0};
  const ArrivalKey ready{MsgKind::kReady, m, kNoNode, 0};

  // --- Block L ---------------------------------------------------------
  // L1/L2: ≥ n−2f distinct supports within the shortest window α ≤ 4d;
  // record a time prior to the (hypothetical) invocation event.
  if (const auto alpha = log_.shortest_window(support, params_.q_low(),
                                              now, 4 * d)) {
    const LocalTime recording = now - *alpha - 2 * d;
    auto [it, inserted] = i_values_.try_emplace(m, recording);
    if (!inserted) it->second = std::max(it->second, recording);
    touch(m, now);
  }
  // L3/L4: ≥ n−f distinct supports within [τq−2d, τq] ⇒ approve.
  // The timestamp records that the line's condition held (the General's IG3
  // monitoring watches it); the duplicate-send suppression is orthogonal.
  if (log_.distinct_in_window(support, now - 2 * d, now) >=
      params_.q_high()) {
    rate_limited_send(ctx, MsgKind::kApprove, m);
    last_l4_ = now;
    touch(m, now);
  }

  // --- Block M ---------------------------------------------------------
  // M1/M2: ≥ n−2f approves within [τq−5d, τq] ⇒ ready flag.
  if (log_.distinct_in_window(approve, now - 5 * d, now) >=
      params_.q_low()) {
    ready_since_[m] = now;
    touch(m, now);
  }
  // M3/M4: ≥ n−f approves within [τq−3d, τq] ⇒ send ready. As with L4, the
  // timestamp records the condition holding — the ready may already be on
  // the wire via N2's amplification, which satisfies the same obligation.
  if (log_.distinct_in_window(approve, now - 3 * d, now) >=
      params_.q_high()) {
    rate_limited_send(ctx, MsgKind::kReady, m);
    last_m4_ = now;
    touch(m, now);
  }

  // --- Block N (untimed: spread-out nodes must be able to collect) ------
  const bool is_ready = ready_since_.contains(m);
  if (is_ready &&
      log_.distinct_total(ready) >= params_.q_low()) {
    // N2: amplify.
    rate_limited_send(ctx, MsgKind::kReady, m);
    touch(m, now);
  }
  if (is_ready && log_.distinct_total(ready) >= params_.q_high()) {
    // N4: fix τG, clear the instance's IA state, I-accept.
    LocalTime tau_g;
    if (const auto it = i_values_.find(m); it != i_values_.end()) {
      tau_g = it->second;
    } else {
      // Only reachable from a corrupted state (Lemma 2 rules it out under
      // stability): an arbitrary-but-sane anchor keeps the node going; the
      // agreement layer's R1/U1 checks will discard it.
      tau_g = now;
      ++accepts_without_anchor_;
    }
    i_values_.clear();
    log_.erase_if([m](const ArrivalKey& key) { return key.value == m; });
    ignore_until_[m] = now + 3 * d;
    touch(m, now);
    last_g_.set(now, now);
    last_n4_ = now;
    ctx.log().logf(LogLevel::kDebug, ctx.id(),
                   "I-accept (G=%u, m=%llu, tauG=%lld)", general_.node,
                   static_cast<unsigned long long>(m),
                   static_cast<long long>(tau_g.ns()));
    on_accept_(m, tau_g);
  }
}

void InitiatorAccept::cleanup(LocalTime now) {
  if (!params_.cleanup_enabled()) return;  // ablation A2
  const Duration d = params_.d();
  const Duration rmv = params_.delta_rmv();

  // Remove any value or message older than ∆rmv (or stamped in the future).
  log_.decay(now, rmv);
  for (auto it = i_values_.begin(); it != i_values_.end();) {
    if (it->second > now || it->second < now - rmv) {
      it = i_values_.erase(it);
    } else {
      ++it;
    }
  }
  // ready flags decay after ∆rmv (proof of Claim 1).
  for (auto it = ready_since_.begin(); it != ready_since_.end();) {
    if (it->second > now || it->second < now - rmv) {
      it = ready_since_.erase(it);
    } else {
      ++it;
    }
  }
  // lastq(G): expire after ∆0 − 6d. lastq(G,m): after 2∆rmv + 9d.
  last_g_.cleanup(now, params_.delta_0() - 6 * d, 2 * rmv + 10 * d);
  for (auto& [value, var] : last_gm_) {
    var.cleanup(now, 2 * rmv + 9 * d, 2 * rmv + 10 * d);
  }
  for (auto it = last_gm_.begin(); it != last_gm_.end();) {
    if (it->second.is_bottom() && !it->second.value_at(now - d).has_value()) {
      it = last_gm_.erase(it);
    } else {
      ++it;
    }
  }
  // Bookkeeping that only backs short windows.
  if (last_support_sent_ &&
      (*last_support_sent_ > now || *last_support_sent_ < now - 2 * d)) {
    last_support_sent_.reset();
  }
  for (auto it = ignore_until_.begin(); it != ignore_until_.end();) {
    if (it->second <= now || it->second > now + 4 * d) {
      it = ignore_until_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = last_sent_.begin(); it != last_sent_.end();) {
    if (it->second > now || it->second < now - 2 * d) {
      it = last_sent_.erase(it);
    } else {
      ++it;
    }
  }
  if (last_l4_ && (*last_l4_ > now || *last_l4_ < now - rmv)) last_l4_.reset();
  if (last_m4_ && (*last_m4_ > now || *last_m4_ < now - rmv)) last_m4_.reset();
  if (last_n4_ && (*last_n4_ > now || *last_n4_ < now - rmv)) last_n4_.reset();
}

void InitiatorAccept::reset() {
  log_.clear();
  i_values_.clear();
  ready_since_.clear();
  ignore_until_.clear();
  last_support_sent_.reset();
  last_sent_.clear();
  // Survivors: lastq(G)/lastq(G,m) pace the General's re-invocations
  // (∆0 / ∆v) across executions, and the L4/M4/N4 timestamps are the
  // General's IG3 bookkeeping (it must remember that its last invocation
  // *succeeded* even after the post-return primitive reset). All of them
  // still decay through cleanup().
}

void InitiatorAccept::scramble(NodeContext& ctx, Rng& rng) {
  const LocalTime now = ctx.local_now();
  const Duration span = params_.delta_rmv();
  reset();
  log_.scramble(rng, now, span, ctx.n(), 48);
  const std::uint32_t extra = std::uint32_t(rng.next_below(3));
  for (std::uint32_t i = 0; i < extra; ++i) {
    const Value m = rng.next_below(4);
    i_values_[m] = now + Duration{rng.next_in(-span.ns(), span.ns())};
    if (rng.next_bool(0.5)) {
      ready_since_[m] = now + Duration{rng.next_in(-span.ns(), span.ns())};
    }
  }
  last_g_.scramble(rng, now, span);
  last_gm_[rng.next_below(4)].scramble(rng, now, span);
}

}  // namespace ssbft
