// SsByzNode: the deployable protocol node.
//
// Owns one ss-Byz-Agree instance per General (created lazily on first
// traffic), routes messages/timers to them, and implements the General role:
// Q0 (disseminating (Initiator, G, m)) guarded by the Sending Validity
// Criteria —
//   IG1: ≥ ∆0 since the previous initiation,
//   IG2: ≥ ∆v since the previous initiation with the same value,
//   IG3: no Initiator-Accept invocation failed in the last ∆reset (lines
//        L4/M4/N4 must complete within 2d/3d/4d of the invocation; on
//        failure the General stays silent for ∆reset).
//
// Every protocol decision/abort is published through a DecisionSink; the
// harness uses it to check Agreement/Validity/Timeliness in real time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "core/params.hpp"
#include "core/ss_byz_agree.hpp"
#include "sim/node.hpp"
#include "util/types.hpp"

namespace ssbft {

/// One protocol return at one node, as published to the application.
struct Decision {
  NodeId node = kNoNode;
  GeneralId general{};
  Value value = kBottom;  // kBottom ⇔ abort (⊥)
  LocalTime tau_g{};
  LocalTime at{};
  [[nodiscard]] bool decided() const { return value != kBottom; }
};

using DecisionSink = std::function<void(const Decision&)>;

/// Outcome of a propose() call (General role, block Q0).
enum class ProposeStatus {
  kSent,
  kTooSoon,          // IG1: < ∆0 since last initiation
  kTooSoonSameValue, // IG2: < ∆v since last initiation of this value
  kBackoff,          // IG3: a recent invocation failed; silent for ∆reset
  kNotStarted,       // node not started yet
};

/// Number of ProposeStatus enumerators (test_enums checks that to_string
/// covers exactly this many).
inline constexpr std::uint32_t kProposeStatusCount = 5;

[[nodiscard]] const char* to_string(ProposeStatus s);

class SsByzNode : public NodeBehavior {
 public:
  SsByzNode(Params params, DecisionSink sink);
  ~SsByzNode() override;

  // --- NodeBehavior ------------------------------------------------------
  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const WireMessage& msg) override;
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override;
  void scramble(NodeContext& ctx, Rng& rng) override;
  void rebind(NodeContext& ctx) override { ctx_ = &ctx; }

  // --- General role (application API) -------------------------------------
  /// Initiate agreement on `m` with this node as General, on concurrent-
  /// invocation instance `index` (footnote 9; 0 = the paper's base
  /// protocol). The Sending Validity Criteria (IG1–IG3) are tracked per
  /// index: each (G, index) instance has independent message logs and
  /// freshness windows, so pacing one instance has nothing to protect in
  /// another. Call only from within the event loop. An optional application
  /// `payload` rides the Initiator broadcast (shared payload pool) — the
  /// agreement logic never reads it; log stacks bind it to the committed
  /// command.
  ProposeStatus propose(Value m, std::uint32_t index = 0,
                        Payload payload = {});

  /// IG-criteria bookkeeping reset (used by tests that replay histories).
  void clear_general_state();

  /// Secondary observer invoked after the primary sink for every published
  /// return. Stacks built atop this node (pulse, logs) consume the primary
  /// sink themselves; the tap lets the harness watch the agreement stream
  /// of ANY stack without disturbing the stack's own plumbing.
  void set_decision_tap(DecisionSink tap) { tap_ = std::move(tap); }

  [[nodiscard]] const Params& params() const { return params_; }
  /// Instance accessor for white-box tests (may create the instance).
  [[nodiscard]] SsByzAgree& instance(GeneralId general);
  [[nodiscard]] bool has_instance(GeneralId general) const;
  [[nodiscard]] std::optional<LocalTime> backoff_until(
      std::uint32_t index = 0) const {
    const auto it = pacing_.find(index);
    return it == pacing_.end() ? std::nullopt : it->second.backoff_until;
  }

 private:
  enum class TimerOp : std::uint8_t {
    kAgreeRoundDeadline = 1,  // forwarded to SsByzAgree
    kAgreePostReturn = 2,     // forwarded to SsByzAgree
    kIg3CheckL4 = 3,
    kIg3CheckM4 = 4,
    kIg3CheckN4 = 5,
  };

  static std::uint64_t encode_cookie(GeneralId general, TimerOp op,
                                     std::uint32_t payload);
  static void decode_cookie(std::uint64_t cookie, GeneralId& general,
                            TimerOp& op, std::uint32_t& payload);

  SsByzAgree& get_instance(GeneralId general);
  void ig3_check(NodeContext& ctx, TimerOp op, std::uint32_t index);

  Params params_;
  DecisionSink sink_;
  DecisionSink tap_;
  NodeContext* ctx_ = nullptr;  // set at on_start; stable for node lifetime

  std::map<GeneralId, std::unique_ptr<SsByzAgree>> instances_;

  // General-role pacing state, per concurrent-invocation index (footnote
  // 9). Scramble targets it like everything else.
  struct GeneralPacing {
    std::optional<LocalTime> last_initiation;
    std::map<Value, LocalTime> last_initiation_of_value;
    std::optional<LocalTime> backoff_until;
    std::optional<LocalTime> pending_invocation;  // IG3 monitoring window
  };
  std::map<std::uint32_t, GeneralPacing> pacing_;
};

}  // namespace ssbft
