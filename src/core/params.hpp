// Protocol parameters and every derived constant of §3.
//
//   Φ      = τGskew + 2d = 8d          phase length
//   ∆agr   = (2f+1)·Φ                  agreement upper bound
//   ∆0     = 13d                       min gap between initiations
//   ∆rmv   = ∆agr + ∆0                 value/message decay
//   ∆v     = 15d + 2·∆rmv              min gap between same-value initiations
//   ∆node  = ∆v + ∆agr                 non-faulty → correct promotion
//   ∆reset = 20d + 4·∆rmv              General silence after failed invocation
//   ∆stb   = 2·∆reset                  stabilization time
//
// `d` here is the paper's d = (δ+π)(1+ρ): the bound on send+process between
// correct nodes *as measured on any correct local timer* (§2), so protocol
// code compares local durations against multiples of d directly.
#pragma once

#include <cstdint>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace ssbft {

/// Which pair of message-count thresholds the protocol blocks use
/// (footnote 7 of the paper: the Quorum coherence condition "can be
/// replaced by (n+f)/2 correct nodes with some modifications to the
/// structure of the protocol").
///
/// Both policies preserve the two facts every proof leans on:
///   * any two high quorums intersect in a correct node (2·q_high − n > f);
///   * any low quorum contains at least one correct node (q_low ≥ f+1);
///   * a high quorum seen by one node yields a low quorum at every node
///     (q_high − f ≥ q_low).
enum class QuorumPolicy : std::uint8_t {
  /// The paper's literal thresholds: n−f and n−2f. Maximal safety margin;
  /// every stage waits for the (n−f)-th message.
  kOptimal,
  /// Footnote-7 thresholds: ⌊(n+f)/2⌋+1 and f+1. Strictly smaller when
  /// n > 3f+1, so stages stop waiting earlier when the cluster is
  /// over-provisioned — at the cost of requiring only (n+f)/2 correct nodes
  /// to be responsive rather than n−f.
  kMajority,
};

[[nodiscard]] constexpr const char* to_string(QuorumPolicy p) {
  return p == QuorumPolicy::kOptimal ? "optimal" : "majority";
}

class Params {
 public:
  /// Requires the optimal resilience bound n > 3f (and n ≥ 2).
  Params(std::uint32_t n, std::uint32_t f, Duration d) : n_(n), f_(f), d_(d) {
    SSBFT_EXPECTS(n >= 2);
    SSBFT_EXPECTS(n > 3 * f);
    SSBFT_EXPECTS(d > Duration::zero());
  }

  [[nodiscard]] std::uint32_t n() const { return n_; }
  [[nodiscard]] std::uint32_t f() const { return f_; }
  [[nodiscard]] Duration d() const { return d_; }

  /// Raw complements (workload math, coherence accounting).
  [[nodiscard]] std::uint32_t n_minus_f() const { return n_ - f_; }
  [[nodiscard]] std::uint32_t n_minus_2f() const { return n_ - 2 * f_; }

  /// Protocol thresholds under the active QuorumPolicy. Every "received
  /// from ≥ n−f / ≥ n−2f distinct nodes" test in Figures 1–3 reads these.
  [[nodiscard]] std::uint32_t q_high() const {
    return quorum_policy_ == QuorumPolicy::kOptimal ? n_ - f_
                                                    : (n_ + f_) / 2 + 1;
  }
  [[nodiscard]] std::uint32_t q_low() const {
    return quorum_policy_ == QuorumPolicy::kOptimal ? n_ - 2 * f_ : f_ + 1;
  }
  [[nodiscard]] QuorumPolicy quorum_policy() const { return quorum_policy_; }
  Params& set_quorum_policy(QuorumPolicy policy) {
    quorum_policy_ = policy;
    return *this;
  }

  [[nodiscard]] Duration tau_g_skew() const { return 6 * d_; }
  [[nodiscard]] Duration phi() const { return tau_g_skew() + 2 * d_; }
  [[nodiscard]] Duration delta_agr() const {
    return std::int64_t(2 * f_ + 1) * phi();
  }
  [[nodiscard]] Duration delta_0() const { return 13 * d_; }
  [[nodiscard]] Duration delta_rmv() const { return delta_agr() + delta_0(); }
  [[nodiscard]] Duration delta_v() const { return 15 * d_ + 2 * delta_rmv(); }
  [[nodiscard]] Duration delta_node() const { return delta_v() + delta_agr(); }
  [[nodiscard]] Duration delta_reset() const {
    return 20 * d_ + 4 * delta_rmv();
  }
  [[nodiscard]] Duration delta_stb() const { return 2 * delta_reset(); }

  /// ss-Byz-Agree cleanup horizon: (2f+1)·Φ + 3d (Fig. 1).
  [[nodiscard]] Duration agree_cleanup() const { return delta_agr() + 3 * d_; }
  /// msgd-broadcast cleanup horizon: (2f+3)·Φ (Fig. 3).
  [[nodiscard]] Duration bcast_cleanup() const {
    return std::int64_t(2 * f_ + 3) * phi();
  }

  // --- ablation knobs (defaults = shipped behaviour; see bench_ablation) ---

  /// Block R freshness window. Fig. 1 writes 4d; we ship 5d (the bound
  /// IA-1D actually supports — see the deviation note in ss_byz_agree.cpp
  /// and DESIGN.md). bench_ablation measures both.
  [[nodiscard]] Duration r1_window() const {
    return r1_window_ == Duration::zero() ? 5 * d_ : r1_window_;
  }
  Params& set_r1_window(Duration w) {
    r1_window_ = w;
    return *this;
  }

  /// Concurrent-invocation bound (footnote 9): messages carrying an
  /// instance index ≥ this are dropped. Bounds the per-General instance
  /// table a Byzantine node can force correct nodes to materialize. Must
  /// fit the 8-bit index field of the timer-cookie encoding (≤ 256).
  [[nodiscard]] std::uint32_t max_indices() const { return max_indices_; }
  Params& set_max_indices(std::uint32_t k) {
    SSBFT_EXPECTS(k >= 1 && k <= 256);
    max_indices_ = k;
    return *this;
  }

  /// Master switch for the cleanup/decay blocks. Disabling them removes the
  /// self-stabilization machinery — the protocol still works from a clean
  /// boot, but cannot converge from arbitrary states (bench_ablation A2).
  [[nodiscard]] bool cleanup_enabled() const { return cleanup_enabled_; }
  Params& set_cleanup_enabled(bool enabled) {
    cleanup_enabled_ = enabled;
    return *this;
  }

 private:
  std::uint32_t n_;
  std::uint32_t f_;
  Duration d_;
  Duration r1_window_{};  // zero ⇒ default 5d
  bool cleanup_enabled_ = true;
  QuorumPolicy quorum_policy_ = QuorumPolicy::kOptimal;
  std::uint32_t max_indices_ = 8;
};

}  // namespace ssbft
