// A ⊥-able local-time variable with bounded history.
//
// Block K of Initiator-Accept tests `last(G,m) = ⊥ at τq − d` — the value a
// variable held *d time units ago*. TimedVar records its recent change
// events so such historical queries are exact, and supports the cleanup
// rules of Fig. 2 (expiry after a deadline; removal of clearly-wrong, i.e.
// future, timestamps). It is also a scramble target: a transient fault may
// load it with an arbitrary change history.
#pragma once

#include <deque>
#include <optional>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace ssbft {

class TimedVar {
 public:
  /// Current value (⊥ = nullopt) *before* applying expiry; callers are
  /// expected to run cleanup() on every event before reading.
  [[nodiscard]] std::optional<LocalTime> get() const { return value_; }
  [[nodiscard]] bool is_bottom() const { return !value_.has_value(); }

  /// Set to `v`, recording that the change happened at local time `now`.
  void set(LocalTime now, LocalTime v);

  /// Reset to ⊥ at local time `now`.
  void reset(LocalTime now);

  /// Value the variable held at time `at` (exact while `at` is within the
  /// retained history; the history is trimmed by cleanup()).
  [[nodiscard]] std::optional<LocalTime> value_at(LocalTime at) const;

  /// Fig. 2 cleanup: reset to ⊥ if the stored value is in the future
  /// (value > now) or expired (value < now − expiry). Also trims history
  /// older than `history_keep` before `now`.
  void cleanup(LocalTime now, Duration expiry, Duration history_keep);

  /// Transient fault: arbitrary current value and a bogus history entry.
  void scramble(Rng& rng, LocalTime now, Duration span);

 private:
  struct Change {
    LocalTime at;
    std::optional<LocalTime> value;
  };

  void record(LocalTime at, std::optional<LocalTime> value);

  std::optional<LocalTime> value_;
  std::deque<Change> history_;
};

}  // namespace ssbft
