#include "core/msgd_broadcast.hpp"

#include <utility>

#include "util/assert.hpp"

namespace ssbft {

MsgdBroadcast::MsgdBroadcast(const Params& params, GeneralId general,
                             AcceptFn on_accept)
    : params_(params), general_(general), on_accept_(std::move(on_accept)) {}

LocalTime MsgdBroadcast::deadline(std::uint32_t phase_count) const {
  SSBFT_EXPECTS(tau_g_.has_value());
  return *tau_g_ + std::int64_t(phase_count) * params_.phi();
}

void MsgdBroadcast::set_anchor(NodeContext& ctx, LocalTime tau_g) {
  tau_g_ = tau_g;
  // Messages logged before the anchor existed become processable now — but
  // decay them FIRST. A dormant instance receives no broadcast traffic, so
  // the per-message cleanup never ran; without this purge, transient-fault
  // state planted arbitrarily long ago (stale echo quorums, accepted flags)
  // would replay the instant the anchor arrives and could smuggle a junk
  // value into Block S past ∆stb. (Found by the schedule explorer — see
  // test_explorer.cpp.)
  cleanup(ctx.local_now());
  evaluate_all(ctx);
}

void MsgdBroadcast::send(NodeContext& ctx, MsgKind kind, const Key& key) {
  WireMessage msg;
  msg.kind = kind;
  msg.general = general_;
  msg.value = key.m;
  msg.broadcaster = key.p;
  msg.round = key.k;
  ctx.send_all(msg);
}

void MsgdBroadcast::broadcast(NodeContext& ctx, Value m, std::uint32_t k) {
  // Line V: p sends (init, p, m, k) to all (it will receive its own copy and
  // proceed through W/X like everyone else).
  const Key key{ctx.id(), m, k};
  send(ctx, MsgKind::kBcastInit, key);
}

void MsgdBroadcast::on_message(NodeContext& ctx, const WireMessage& msg) {
  const LocalTime now = ctx.local_now();
  cleanup(now);

  const Key key{msg.broadcaster, msg.value, msg.round};
  auto& inst = insts_[key];
  inst.last_activity = now;
  switch (msg.kind) {
    case MsgKind::kBcastInit:
      // Only the claimed broadcaster itself can authenticate an init; the
      // network guarantees the sender field (Def. 2.2).
      if (msg.sender == msg.broadcaster) inst.init_from_p = true;
      break;
    case MsgKind::kBcastEcho:
      inst.echo_senders.insert(msg.sender);
      break;
    case MsgKind::kBcastInitPrime:
      inst.init_prime_senders.insert(msg.sender);
      break;
    case MsgKind::kBcastEchoPrime:
      inst.echo_prime_senders.insert(msg.sender);
      break;
    default:
      SSBFT_ASSERT(false);
  }

  // "Nodes execute the blocks only when τG is defined."
  if (tau_g_.has_value()) evaluate(ctx, key, inst);
}

void MsgdBroadcast::evaluate_all(NodeContext& ctx) {
  if (!tau_g_.has_value()) return;
  for (auto& [key, inst] : insts_) evaluate(ctx, key, inst);
}

void MsgdBroadcast::evaluate(NodeContext& ctx, const Key& key,
                             Instance& inst) {
  const LocalTime now = ctx.local_now();
  const std::uint32_t k = key.k;

  // --- Block W: τq ≤ τG + 2k·Φ -----------------------------------------
  if (now <= deadline(2 * k) && inst.init_from_p && !inst.echo_sent) {
    inst.echo_sent = true;
    send(ctx, MsgKind::kBcastEcho, key);
    // Our own echo also counts toward the quorums below once it loops back
    // through the network.
  }

  // --- Block X: τq ≤ τG + (2k+1)·Φ --------------------------------------
  if (now <= deadline(2 * k + 1)) {
    if (inst.echo_senders.size() >= params_.q_low() &&
        !inst.init_prime_sent) {
      inst.init_prime_sent = true;
      send(ctx, MsgKind::kBcastInitPrime, key);
    }
    if (inst.echo_senders.size() >= params_.q_high() && !inst.accepted) {
      accept(ctx, key, inst);  // X5
    }
  }

  // --- Block Y: τq ≤ τG + (2k+2)·Φ --------------------------------------
  if (now <= deadline(2 * k + 2)) {
    if (inst.init_prime_senders.size() >= params_.q_low()) {
      broadcasters_.insert(key.p);  // Y3 (TPS-4 detection)
    }
    if (inst.init_prime_senders.size() >= params_.q_high() &&
        !inst.echo_prime_sent) {
      inst.echo_prime_sent = true;
      send(ctx, MsgKind::kBcastEchoPrime, key);  // Y5
    }
  }

  // --- Block Z: at any time ---------------------------------------------
  if (inst.echo_prime_senders.size() >= params_.q_low() &&
      !inst.echo_prime_sent) {
    inst.echo_prime_sent = true;
    send(ctx, MsgKind::kBcastEchoPrime, key);  // Z3
  }
  if (inst.echo_prime_senders.size() >= params_.q_high() &&
      !inst.accepted) {
    accept(ctx, key, inst);  // Z5
  }
}

void MsgdBroadcast::accept(NodeContext& ctx, const Key& key, Instance& inst) {
  inst.accepted = true;
  ctx.log().logf(LogLevel::kDebug, ctx.id(),
                 "bcast-accept (G=%u, p=%u, m=%llu, k=%u)", general_.node,
                 key.p, static_cast<unsigned long long>(key.m), key.k);
  on_accept_(key.p, key.m, key.k);
}

bool MsgdBroadcast::has_accepted(NodeId p, Value m, std::uint32_t k) const {
  const auto it = insts_.find(Key{p, m, k});
  return it != insts_.end() && it->second.accepted;
}

void MsgdBroadcast::cleanup(LocalTime now) {
  if (!params_.cleanup_enabled()) return;  // ablation A2
  // Fig. 3 cleanup: remove anything older than (2f+3)·Φ (future-stamped
  // activity can only exist after a transient fault — drop it too).
  const Duration keep = params_.bcast_cleanup();
  for (auto it = insts_.begin(); it != insts_.end();) {
    if (it->second.last_activity < now - keep ||
        it->second.last_activity > now) {
      it = insts_.erase(it);
    } else {
      ++it;
    }
  }
}

void MsgdBroadcast::reset() {
  tau_g_.reset();
  insts_.clear();
  broadcasters_.clear();
}

void MsgdBroadcast::scramble(NodeContext& ctx, Rng& rng) {
  const LocalTime now = ctx.local_now();
  reset();
  if (rng.next_bool(0.5)) {
    tau_g_ = now + Duration{rng.next_in(-params_.delta_agr().ns(),
                                        params_.delta_agr().ns())};
  }
  const std::uint32_t count = std::uint32_t(rng.next_below(6));
  for (std::uint32_t i = 0; i < count; ++i) {
    Key key{NodeId(rng.next_below(ctx.n())), rng.next_below(4),
            std::uint32_t(rng.next_below(2 * params_.f() + 2))};
    auto& inst = insts_[key];
    inst.last_activity =
        now + Duration{rng.next_in(-params_.bcast_cleanup().ns(), 0)};
    inst.init_from_p = rng.next_bool(0.5);
    inst.accepted = rng.next_bool(0.3);
    const auto senders = rng.next_below(ctx.n() + 1);
    for (std::uint64_t s = 0; s < senders; ++s) {
      inst.echo_senders.insert(NodeId(rng.next_below(ctx.n())));
      if (rng.next_bool(0.5)) {
        inst.echo_prime_senders.insert(NodeId(rng.next_below(ctx.n())));
      }
    }
    if (rng.next_bool(0.3)) {
      broadcasters_.insert(NodeId(rng.next_below(ctx.n())));
    }
  }
}

}  // namespace ssbft
