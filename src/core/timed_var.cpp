#include "core/timed_var.hpp"

#include <algorithm>

namespace ssbft {

void TimedVar::set(LocalTime now, LocalTime v) {
  value_ = v;
  record(now, value_);
}

void TimedVar::reset(LocalTime now) {
  if (!value_.has_value()) return;
  value_ = std::nullopt;
  record(now, value_);
}

void TimedVar::record(LocalTime at, std::optional<LocalTime> value) {
  // Changes arrive in non-decreasing `at` order during normal operation;
  // after a scramble the history may be garbage, which value_at tolerates.
  history_.push_back(Change{at, value});
}

std::optional<LocalTime> TimedVar::value_at(LocalTime at) const {
  // Latest change with time <= at determines the value; if no such change
  // is retained, the variable is presumed ⊥ (pre-history == expired).
  std::optional<LocalTime> result;
  for (const auto& change : history_) {
    if (change.at <= at) result = change.value;
  }
  return result;
}

void TimedVar::cleanup(LocalTime now, Duration expiry, Duration history_keep) {
  if (value_.has_value() && *value_ > now) {
    // Future-stamped: "clearly wrong" (transient garbage), removed now.
    value_ = std::nullopt;
    record(now, value_);
  } else if (value_.has_value() && *value_ < now - expiry) {
    // Expired. Record the reset at the *logical* expiry instant, not at the
    // time this lazy sweep happens to run — historical queries (Block K's
    // "⊥ at τq − d") must see the value the eager protocol would have had.
    LocalTime expired_at = std::min(now, *value_ + expiry);
    if (!history_.empty()) expired_at = std::max(expired_at, history_.back().at);
    value_ = std::nullopt;
    record(expired_at, value_);
  }
  while (!history_.empty() && history_.front().at < now - history_keep) {
    // Keep at least one change at/before the horizon so value_at stays
    // correct for queries within [now - history_keep, now].
    if (history_.size() >= 2 && history_[1].at <= now - history_keep) {
      history_.pop_front();
    } else {
      break;
    }
  }
}

void TimedVar::scramble(Rng& rng, LocalTime now, Duration span) {
  history_.clear();
  if (rng.next_bool(0.5)) {
    value_ = std::nullopt;
  } else {
    value_ = now + Duration{rng.next_in(-span.ns(), span.ns())};
  }
  history_.push_back(Change{now - Duration{rng.next_in(0, span.ns())}, value_});
}

}  // namespace ssbft
