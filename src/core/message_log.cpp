#include "core/message_log.hpp"

#include <algorithm>

namespace ssbft {

void ArrivalLog::note(const ArrivalKey& key, NodeId sender, LocalTime at) {
  map_[key].note(sender, at);
}

std::uint32_t ArrivalLog::distinct_in_window(const ArrivalKey& key,
                                             LocalTime from,
                                             LocalTime to) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return 0;
  std::uint32_t count = 0;
  it->second.for_each([&](NodeId, LocalTime at) {
    if (at >= from && at <= to) ++count;
  });
  return count;
}

std::optional<Duration> ArrivalLog::shortest_window(const ArrivalKey& key,
                                                    std::uint32_t quorum,
                                                    LocalTime now,
                                                    Duration max_window) const {
  if (quorum == 0) return Duration::zero();
  const auto it = map_.find(key);
  if (it == map_.end() || it->second.size() < quorum) return std::nullopt;

  // Windows end at `now`, so a window of size α contains a sender iff its
  // latest arrival is ≥ now−α; the quorum-th most recent latest-arrival
  // determines the minimal α.
  std::vector<LocalTime> latest;
  latest.reserve(it->second.size());
  it->second.for_each([&](NodeId, LocalTime at) {
    if (at <= now && at >= now - max_window) latest.push_back(at);
  });
  if (latest.size() < quorum) return std::nullopt;
  std::nth_element(latest.begin(), latest.begin() + (quorum - 1), latest.end(),
                   [](LocalTime a, LocalTime b) { return a > b; });
  return now - latest[quorum - 1];
}

std::uint32_t ArrivalLog::distinct_total(const ArrivalKey& key) const {
  const auto it = map_.find(key);
  return it == map_.end() ? 0 : it->second.size();
}

std::vector<Value> ArrivalLog::values_with(MsgKind kind) const {
  std::vector<Value> values;
  for (const auto& [key, senders] : map_) {
    if (key.kind != kind || senders.empty()) continue;
    if (std::find(values.begin(), values.end(), key.value) == values.end()) {
      values.push_back(key.value);
    }
  }
  return values;
}

void ArrivalLog::erase_if(const std::function<bool(const ArrivalKey&)>& pred) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (pred(it->first)) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void ArrivalLog::decay(LocalTime now, Duration keep) {
  for (auto it = map_.begin(); it != map_.end();) {
    it->second.decay(now, keep);
    if (it->second.empty()) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void ArrivalLog::clear() { map_.clear(); }

std::size_t ArrivalLog::total_arrivals() const {
  std::size_t total = 0;
  for (const auto& [key, senders] : map_) total += senders.size();
  return total;
}

void ArrivalLog::scramble(Rng& rng, LocalTime now, Duration span,
                          std::uint32_t n_nodes, std::uint32_t entries) {
  static constexpr MsgKind kKinds[] = {MsgKind::kSupport, MsgKind::kApprove,
                                       MsgKind::kReady, MsgKind::kBcastEcho,
                                       MsgKind::kBcastEchoPrime};
  for (std::uint32_t i = 0; i < entries; ++i) {
    ArrivalKey key;
    key.kind = kKinds[rng.next_below(std::size(kKinds))];
    key.value = rng.next_below(4);
    if (key.kind == MsgKind::kBcastEcho || key.kind == MsgKind::kBcastEchoPrime) {
      key.broadcaster = NodeId(rng.next_below(n_nodes));
      key.round = std::uint32_t(rng.next_below(8)) + 1;
    }
    const LocalTime at = now + Duration{rng.next_in(-span.ns(), span.ns())};
    note(key, NodeId(rng.next_below(n_nodes)), at);
  }
}

}  // namespace ssbft
