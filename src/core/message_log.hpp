// Timestamped message-arrival log with sliding-window quorum queries.
//
// Initiator-Accept's blocks L and M test conditions of the form "received
// (kind, G, m) from ≥ k distinct nodes within [τq−w, τq]" — windows always
// end at the current local time, so only each sender's *latest* arrival is
// relevant, and the log stores exactly that. Block L1 additionally asks for
// the *shortest* such window (the α ≤ 4d in Fig. 2); Block N counts distinct
// senders with no window at all. msgd-broadcast reuses the same structure
// keyed additionally by (broadcaster, round).
//
// Everything here decays (Fig. 2/3 cleanup): arrivals older than the keep
// horizon — or stamped in the future, which can only happen after a
// transient fault — are purged before every query.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/wire.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace ssbft {

/// Log key: message kind + value (+ broadcaster/round for msgd-broadcast;
/// Initiator-Accept leaves them at their defaults).
struct ArrivalKey {
  MsgKind kind = MsgKind::kInitiator;
  Value value = kBottom;
  NodeId broadcaster = kNoNode;
  std::uint32_t round = 0;

  friend bool operator==(const ArrivalKey&, const ArrivalKey&) = default;
};

struct ArrivalKeyHash {
  std::size_t operator()(const ArrivalKey& k) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(k.value);
    h ^= std::hash<std::uint32_t>{}(k.broadcaster) + 0x9e3779b9 + (h << 6);
    h ^= (std::size_t(k.kind) << 8 | k.round) + 0x9e3779b9 + (h << 6);
    return h;
  }
};

class ArrivalLog {
 public:
  /// Record an arrival at local time `at` (keeps the latest per sender).
  /// Contract: in normal operation `at` is the receipt time (the caller's
  /// local now), so per-sender timestamps are monotone; non-monotone or
  /// future stamps only enter through scramble() and are purged by decay().
  /// The latest-per-sender representation is exact under this contract
  /// because every window query ends at the caller's current time.
  void note(const ArrivalKey& key, NodeId sender, LocalTime at);

  /// Distinct senders with an arrival in [from, to].
  [[nodiscard]] std::uint32_t distinct_in_window(const ArrivalKey& key,
                                                 LocalTime from,
                                                 LocalTime to) const;

  /// Smallest α ≤ max_window such that [now−α, now] holds arrivals from
  /// ≥ `quorum` distinct senders; nullopt if no such α exists.
  [[nodiscard]] std::optional<Duration> shortest_window(const ArrivalKey& key,
                                                        std::uint32_t quorum,
                                                        LocalTime now,
                                                        Duration max_window) const;

  /// Distinct senders irrespective of time (Block N; decay still applies).
  [[nodiscard]] std::uint32_t distinct_total(const ArrivalKey& key) const;

  /// All values that currently have arrivals of `kind` (candidate set for
  /// per-value rule evaluation).
  [[nodiscard]] std::vector<Value> values_with(MsgKind kind) const;

  /// Remove every record whose key satisfies `pred` (N4's "remove all (G,m)
  /// messages", per-value resets).
  void erase_if(const std::function<bool(const ArrivalKey&)>& pred);

  /// Cleanup: drop arrivals older than now−keep or later than now.
  void decay(LocalTime now, Duration keep);

  void clear();
  [[nodiscard]] std::size_t total_arrivals() const;

  /// Transient fault: populate with arbitrary arrivals around `now`.
  void scramble(Rng& rng, LocalTime now, Duration span, std::uint32_t n_nodes,
                std::uint32_t entries);

 private:
  using SenderMap = std::unordered_map<NodeId, LocalTime>;
  std::unordered_map<ArrivalKey, SenderMap, ArrivalKeyHash> map_;
};

}  // namespace ssbft
