// Timestamped message-arrival log with sliding-window quorum queries.
//
// Initiator-Accept's blocks L and M test conditions of the form "received
// (kind, G, m) from ≥ k distinct nodes within [τq−w, τq]" — windows always
// end at the current local time, so only each sender's *latest* arrival is
// relevant, and the log stores exactly that. Block L1 additionally asks for
// the *shortest* such window (the α ≤ 4d in Fig. 2); Block N counts distinct
// senders with no window at all. msgd-broadcast reuses the same structure
// keyed additionally by (broadcaster, round).
//
// Everything here decays (Fig. 2/3 cleanup): arrivals older than the keep
// horizon — or stamped in the future, which can only happen after a
// transient fault — are purged before every query.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/wire.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace ssbft {

/// Log key: message kind + value (+ broadcaster/round for msgd-broadcast;
/// Initiator-Accept leaves them at their defaults).
struct ArrivalKey {
  MsgKind kind = MsgKind::kInitiator;
  Value value = kBottom;
  NodeId broadcaster = kNoNode;
  std::uint32_t round = 0;

  friend bool operator==(const ArrivalKey&, const ArrivalKey&) = default;
};

struct ArrivalKeyHash {
  std::size_t operator()(const ArrivalKey& k) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(k.value);
    h ^= std::hash<std::uint32_t>{}(k.broadcaster) + 0x9e3779b9 + (h << 6);
    h ^= (std::size_t(k.kind) << 8 | k.round) + 0x9e3779b9 + (h << 6);
    return h;
  }
};

/// Flat latest-arrival-per-sender table: one open-addressed array of
/// (sender, at) slots instead of a node-based unordered_map. Every query
/// (window counts, quorum windows, decay) is a linear sweep over
/// contiguous 16-byte slots — the hot path of Initiator-Accept's per-
/// message rule evaluation — and the table stays exact under the same
/// latest-per-sender contract as before. Deletion (decay) rebuilds the
/// table in place, which costs the same O(capacity) as the sweep that
/// found the stale entries.
class SenderTable {
 public:
  /// Keep the latest arrival for `sender`.
  void note(NodeId sender, LocalTime at) {
    if (slots_.empty()) rehash(kMinCapacity);
    Slot& s = probe(sender);
    if (s.used) {
      if (s.at < at) s.at = at;
      return;
    }
    s.used = true;
    s.sender = sender;
    s.at = at;
    ++count_;
    if (count_ * 4 >= slots_.size() * 3) rehash(slots_.size() * 2);
  }

  [[nodiscard]] std::uint32_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Visits every (sender, latest-arrival) pair; order unspecified (all
  /// consumers aggregate, none observe order).
  template <class F>
  void for_each(F&& f) const {
    for (const Slot& s : slots_) {
      if (s.used) f(s.sender, s.at);
    }
  }

  /// Drops entries with `at > now || at < now - keep`; rebuilds on erase.
  void decay(LocalTime now, Duration keep) {
    bool stale = false;
    for (const Slot& s : slots_) {
      if (s.used && (s.at > now || s.at < now - keep)) {
        stale = true;
        break;
      }
    }
    if (!stale) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    count_ = 0;
    for (const Slot& s : old) {
      if (s.used && s.at <= now && s.at >= now - keep) note(s.sender, s.at);
    }
  }

 private:
  struct Slot {
    LocalTime at{};
    NodeId sender = 0;
    bool used = false;
  };
  static constexpr std::size_t kMinCapacity = 8;  // power of two

  [[nodiscard]] Slot& probe(NodeId sender) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = (sender * std::uint64_t{0x9E3779B97F4A7C15}) & mask;
    while (slots_[i].used && slots_[i].sender != sender) i = (i + 1) & mask;
    return slots_[i];
  }

  void rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    for (const Slot& s : old) {
      if (s.used) probe(s.sender) = s;
    }
  }

  std::vector<Slot> slots_;
  std::uint32_t count_ = 0;
};

class ArrivalLog {
 public:
  /// Record an arrival at local time `at` (keeps the latest per sender).
  /// Contract: in normal operation `at` is the receipt time (the caller's
  /// local now), so per-sender timestamps are monotone; non-monotone or
  /// future stamps only enter through scramble() and are purged by decay().
  /// The latest-per-sender representation is exact under this contract
  /// because every window query ends at the caller's current time.
  void note(const ArrivalKey& key, NodeId sender, LocalTime at);

  /// Distinct senders with an arrival in [from, to].
  [[nodiscard]] std::uint32_t distinct_in_window(const ArrivalKey& key,
                                                 LocalTime from,
                                                 LocalTime to) const;

  /// Smallest α ≤ max_window such that [now−α, now] holds arrivals from
  /// ≥ `quorum` distinct senders; nullopt if no such α exists.
  [[nodiscard]] std::optional<Duration> shortest_window(const ArrivalKey& key,
                                                        std::uint32_t quorum,
                                                        LocalTime now,
                                                        Duration max_window) const;

  /// Distinct senders irrespective of time (Block N; decay still applies).
  [[nodiscard]] std::uint32_t distinct_total(const ArrivalKey& key) const;

  /// All values that currently have arrivals of `kind` (candidate set for
  /// per-value rule evaluation).
  [[nodiscard]] std::vector<Value> values_with(MsgKind kind) const;

  /// Remove every record whose key satisfies `pred` (N4's "remove all (G,m)
  /// messages", per-value resets).
  void erase_if(const std::function<bool(const ArrivalKey&)>& pred);

  /// Cleanup: drop arrivals older than now−keep or later than now.
  void decay(LocalTime now, Duration keep);

  void clear();
  [[nodiscard]] std::size_t total_arrivals() const;

  /// Transient fault: populate with arbitrary arrivals around `now`.
  void scramble(Rng& rng, LocalTime now, Duration span, std::uint32_t n_nodes,
                std::uint32_t entries);

 private:
  // The outer index stays an unordered_map on purpose: values_with()
  // exposes its iteration order to Initiator-Accept's candidate loop
  // (visit order decides send order, which decides digests), and that
  // order is a function of the key insert/erase sequence alone — which
  // this refactor leaves untouched. The hot per-message work (window
  // counts, decay sweeps) all lives in the flat SenderTable values.
  std::unordered_map<ArrivalKey, SenderTable, ArrivalKeyHash> map_;
};

}  // namespace ssbft
