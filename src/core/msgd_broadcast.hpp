// The msgd-broadcast primitive (paper §5, Fig. 3).
//
// A message-driven re-formulation of the Toueg–Perry–Srikanth reliable
// broadcast. Rounds are anchored at τG (the local-time estimate produced by
// Initiator-Accept) and the per-round conditions are *upper bounds only*:
// if the anticipated messages arrive early, the primitive rushes ahead at
// actual network speed — the paper's headline systems contribution.
//
// Satisfies (system stable, n > 3f), with Φ = 8d:
//   TPS-1 Correctness   — correct p broadcasts (p,m,k) by τG+(2k−1)Φ ⇒ all
//                         accept by τG+(2k+1)Φ, within 3d real time
//   TPS-2 Unforgeability — p didn't broadcast ⇒ nobody accepts (p,m,k)
//   TPS-3 Relay         — accepted at τG+rΦ somewhere ⇒ everywhere by (r+2)Φ
//   TPS-4 Detection     — accepted (p,m,k) ⇒ p ∈ broadcasters everywhere by
//                         τG+(2k+2)Φ; and only actual broadcasters ever join
//
// Message flow per (p, m, k):  init → echo → {init', echo'} → accept.
// Messages arriving before τG is known are logged and replayed when the
// anchor is set ("nodes log messages until they are able to process them").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/flat_map.hpp"
#include "core/node_set.hpp"
#include "core/params.hpp"
#include "sim/node.hpp"
#include "util/types.hpp"

namespace ssbft {

class MsgdBroadcast {
 public:
  /// Called on accept (p, m, k) — at most once per triple.
  using AcceptFn = std::function<void(NodeId p, Value m, std::uint32_t k)>;

  MsgdBroadcast(const Params& params, GeneralId general, AcceptFn on_accept);

  /// Anchor the round structure at τG (set by the agreement layer when
  /// Initiator-Accept fires). Re-evaluates everything logged so far.
  void set_anchor(NodeContext& ctx, LocalTime tau_g);
  [[nodiscard]] std::optional<LocalTime> anchor() const { return tau_g_; }

  /// Line V: this node p broadcasts (p, m, k).
  void broadcast(NodeContext& ctx, Value m, std::uint32_t k);

  /// Feed an init/echo/init'/echo' message.
  void on_message(NodeContext& ctx, const WireMessage& msg);

  [[nodiscard]] const NodeSet& broadcasters() const { return broadcasters_; }
  [[nodiscard]] bool has_accepted(NodeId p, Value m, std::uint32_t k) const;

  void reset();
  void scramble(NodeContext& ctx, Rng& rng);

  [[nodiscard]] std::size_t instance_count() const { return insts_.size(); }

 private:
  struct Key {
    NodeId p = kNoNode;       // claimed broadcaster
    Value m = kBottom;
    std::uint32_t k = 0;
    auto operator<=>(const Key&) const = default;
  };

  // Per-instance sender tracking is flat NodeSets: blocks W/X/Y/Z only
  // insert and compare cardinality against the quorums, so membership
  // bits + a popcount-backed count replace three node-based std::sets.
  struct Instance {
    bool init_from_p = false;        // received (init,p,m,k) from p itself
    NodeSet echo_senders;
    NodeSet init_prime_senders;
    NodeSet echo_prime_senders;
    bool echo_sent = false;
    bool init_prime_sent = false;
    bool echo_prime_sent = false;
    bool accepted = false;
    LocalTime last_activity{};
  };

  void evaluate(NodeContext& ctx, const Key& key, Instance& inst);
  void evaluate_all(NodeContext& ctx);
  void cleanup(LocalTime now);
  void send(NodeContext& ctx, MsgKind kind, const Key& key);
  void accept(NodeContext& ctx, const Key& key, Instance& inst);
  [[nodiscard]] LocalTime deadline(std::uint32_t phase_count) const;

  const Params& params_;
  GeneralId general_;
  AcceptFn on_accept_;
  std::optional<LocalTime> tau_g_;
  // Instance records live contiguously in one sorted arena (FlatMap):
  // evaluate_all walks them in the exact Key order the std::map had.
  FlatMap<Key, Instance> insts_;
  NodeSet broadcasters_;
};

}  // namespace ssbft
