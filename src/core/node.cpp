#include "core/node.hpp"

#include <utility>

#include "util/assert.hpp"

namespace ssbft {

const char* to_string(ProposeStatus s) {
  switch (s) {
    case ProposeStatus::kSent: return "sent";
    case ProposeStatus::kTooSoon: return "too-soon (IG1)";
    case ProposeStatus::kTooSoonSameValue: return "too-soon-same-value (IG2)";
    case ProposeStatus::kBackoff: return "backoff (IG3)";
    case ProposeStatus::kNotStarted: return "not-started";
  }
  return "?";
}

SsByzNode::SsByzNode(Params params, DecisionSink sink)
    : params_(std::move(params)), sink_(std::move(sink)) {}

SsByzNode::~SsByzNode() = default;

std::uint64_t SsByzNode::encode_cookie(GeneralId general, TimerOp op,
                                       std::uint32_t payload) {
  // Layout (bits, high→low): node 48..61 | index 40..47 | op 32..39 |
  // payload 0..31. Bits 62/63 stay clear — embedding layers (pulse, log)
  // use them to separate their own timer namespaces.
  SSBFT_ASSERT(general.node < (1u << 14));
  SSBFT_ASSERT(general.index < (1u << 8));
  return (std::uint64_t(general.node) << 48) |
         (std::uint64_t(general.index) << 40) | (std::uint64_t(op) << 32) |
         payload;
}

void SsByzNode::decode_cookie(std::uint64_t cookie, GeneralId& general,
                              TimerOp& op, std::uint32_t& payload) {
  general.node = NodeId((cookie >> 48) & 0x3FFF);
  general.index = std::uint32_t((cookie >> 40) & 0xFF);
  op = TimerOp((cookie >> 32) & 0xFF);
  payload = std::uint32_t(cookie & 0xFFFFFFFF);
}

void SsByzNode::on_start(NodeContext& ctx) { ctx_ = &ctx; }

SsByzAgree& SsByzNode::get_instance(GeneralId general) {
  auto it = instances_.find(general);
  if (it == instances_.end()) {
    auto inst = std::make_unique<SsByzAgree>(
        params_, general, [this, general](const AgreeResult& result) {
          if (!sink_ && !tap_) return;
          Decision decision;
          decision.node = ctx_ ? ctx_->id() : kNoNode;
          decision.general = general;
          decision.value = result.value;
          decision.tau_g = result.tau_g;
          decision.at = result.returned_at;
          if (sink_) sink_(decision);
          if (tap_) tap_(decision);
        });
    auto* raw = inst.get();
    raw->set_timer_service(
        [this, general](LocalTime when, SsByzAgree::TimerKind kind,
                        std::uint32_t payload) {
          SSBFT_ASSERT(ctx_ != nullptr);
          const TimerOp op = kind == SsByzAgree::TimerKind::kRoundDeadline
                                 ? TimerOp::kAgreeRoundDeadline
                                 : TimerOp::kAgreePostReturn;
          return ctx_->set_timer(when, encode_cookie(general, op, payload));
        },
        [this](TimerHandle handle) {
          return ctx_ != nullptr && ctx_->cancel_timer(handle);
        });
    it = instances_.emplace(general, std::move(inst)).first;
  }
  return *it->second;
}

SsByzAgree& SsByzNode::instance(GeneralId general) {
  return get_instance(general);
}

bool SsByzNode::has_instance(GeneralId general) const {
  return instances_.count(general) != 0;
}

void SsByzNode::on_message(NodeContext& ctx, const WireMessage& msg) {
  switch (msg.kind) {
    case MsgKind::kInitiator:
    case MsgKind::kSupport:
    case MsgKind::kApprove:
    case MsgKind::kReady:
    case MsgKind::kBcastInit:
    case MsgKind::kBcastEcho:
    case MsgKind::kBcastInitPrime:
    case MsgKind::kBcastEchoPrime: {
      if (msg.general.node >= ctx.n()) return;  // forged junk instance id
      // Footnote-9 bound: indices ≥ max_indices are dropped, capping the
      // instance table a Byzantine sender can force us to materialize.
      if (msg.general.index >= params_.max_indices()) return;
      get_instance(msg.general).on_message(ctx, msg);
      break;
    }
    default:
      break;  // baseline traffic etc.
  }
}

void SsByzNode::on_timer(NodeContext& ctx, std::uint64_t cookie) {
  GeneralId general;
  TimerOp op;
  std::uint32_t payload;
  decode_cookie(cookie, general, op, payload);
  switch (op) {
    case TimerOp::kAgreeRoundDeadline:
      get_instance(general).on_timer(
          ctx, SsByzAgree::TimerKind::kRoundDeadline, payload);
      break;
    case TimerOp::kAgreePostReturn:
      get_instance(general).on_timer(ctx, SsByzAgree::TimerKind::kPostReturn,
                                     payload);
      break;
    case TimerOp::kIg3CheckL4:
    case TimerOp::kIg3CheckM4:
    case TimerOp::kIg3CheckN4:
      ig3_check(ctx, op, general.index);
      break;
  }
}

ProposeStatus SsByzNode::propose(Value m, std::uint32_t index,
                                 Payload payload) {
  if (ctx_ == nullptr) return ProposeStatus::kNotStarted;
  SSBFT_EXPECTS(index < params_.max_indices());
  NodeContext& ctx = *ctx_;
  const LocalTime now = ctx.local_now();
  GeneralPacing& pacing = pacing_[index];

  // Heal scrambled pacing state (future timestamps are "clearly wrong").
  if (pacing.last_initiation && *pacing.last_initiation > now) {
    pacing.last_initiation.reset();
  }
  if (pacing.backoff_until &&
      *pacing.backoff_until > now + params_.delta_reset()) {
    pacing.backoff_until.reset();
  }
  for (auto it = pacing.last_initiation_of_value.begin();
       it != pacing.last_initiation_of_value.end();) {
    if (it->second > now || it->second < now - 2 * params_.delta_v()) {
      it = pacing.last_initiation_of_value.erase(it);
    } else {
      ++it;
    }
  }

  // IG3: stay silent for ∆reset after a failed invocation.
  if (pacing.backoff_until && now < *pacing.backoff_until) {
    return ProposeStatus::kBackoff;
  }
  // IG1: ≥ ∆0 between any two initiations (of this instance index).
  if (pacing.last_initiation &&
      now - *pacing.last_initiation < params_.delta_0()) {
    return ProposeStatus::kTooSoon;
  }
  // IG2: ≥ ∆v between initiations with the same value (same index).
  if (const auto it = pacing.last_initiation_of_value.find(m);
      it != pacing.last_initiation_of_value.end() &&
      now - it->second < params_.delta_v()) {
    return ProposeStatus::kTooSoonSameValue;
  }

  // "The General, before initiating the primitive, removes from its memory
  // all previously received messages associated with any previous invocation
  // of the primitive with him as a General."
  const GeneralId self{ctx.id(), index};
  get_instance(self).initiator_accept().reset();

  pacing.last_initiation = now;
  pacing.last_initiation_of_value[m] = now;
  pacing.pending_invocation = now;

  // IG3 monitoring: its own L4/M4/N4 must complete within 2d/3d/4d of the
  // invocation. The General's own Initiator message takes up to d to loop
  // back (that arrival is "the invocation" at this node), so each check is
  // scheduled d later than the line's budget.
  const Duration d = params_.d();
  ctx.set_timer(now + 3 * d, encode_cookie(self, TimerOp::kIg3CheckL4, 0));
  ctx.set_timer(now + 4 * d, encode_cookie(self, TimerOp::kIg3CheckM4, 0));
  ctx.set_timer(now + 5 * d, encode_cookie(self, TimerOp::kIg3CheckN4, 0));

  // Q0: send (Initiator, G, m) to all — including itself; its own arrival
  // triggers Q1/Block K at this node like at every other node.
  WireMessage msg;
  msg.kind = MsgKind::kInitiator;
  msg.general = self;
  msg.value = m;
  msg.payload = std::move(payload);  // application body; opaque to agreement
  ctx.send_all(msg);
  ctx.log().logf(LogLevel::kInfo, ctx.id(), "propose m=%llu",
                 static_cast<unsigned long long>(m));
  return ProposeStatus::kSent;
}

void SsByzNode::ig3_check(NodeContext& ctx, TimerOp op, std::uint32_t index) {
  GeneralPacing& pacing = pacing_[index];
  if (!pacing.pending_invocation) return;
  const LocalTime invoked = *pacing.pending_invocation;
  auto& ia = get_instance(GeneralId{ctx.id(), index}).initiator_accept();

  const auto completed_since = [invoked](std::optional<LocalTime> t) {
    return t.has_value() && *t >= invoked;
  };
  // A later milestone subsumes an earlier one: a node can legitimately
  // reach N4 through Block N's ready-amplification without ever satisfying
  // M3's own-window test (its own approve loops back into the post-N4
  // ignore window). IG3 exists to detect *stalled* invocations — a
  // completed N4 is the opposite of a stall.
  const bool l4 = completed_since(ia.last_l4());
  const bool m4 = completed_since(ia.last_m4());
  const bool n4 = completed_since(ia.last_n4());

  bool ok = true;
  switch (op) {
    case TimerOp::kIg3CheckL4: ok = l4 || m4 || n4; break;
    case TimerOp::kIg3CheckM4: ok = m4 || n4; break;
    case TimerOp::kIg3CheckN4:
      ok = n4;
      if (ok) pacing.pending_invocation.reset();  // fully succeeded
      break;
    default: return;
  }
  if (!ok) {
    pacing.backoff_until = ctx.local_now() + params_.delta_reset();
    pacing.pending_invocation.reset();
    ctx.log().logf(LogLevel::kInfo, ctx.id(),
                   "IG3 failure detected; silent for ∆reset");
  }
}

void SsByzNode::clear_general_state() { pacing_.clear(); }

void SsByzNode::scramble(NodeContext& ctx, Rng& rng) {
  const LocalTime now = ctx.local_now();
  const Duration span = params_.delta_reset();
  // Scramble (or spawn) a handful of per-General instances, including
  // indexed ones (footnote 9 instances are as scramble-prone as any).
  for (NodeId g = 0; g < ctx.n(); ++g) {
    if (rng.next_bool(0.5)) get_instance(GeneralId{g}).scramble(ctx, rng);
    if (rng.next_bool(0.2)) {
      const auto index =
          std::uint32_t(rng.next_below(params_.max_indices()));
      get_instance(GeneralId{g, index}).scramble(ctx, rng);
    }
  }
  for (std::uint32_t index = 0; index < params_.max_indices(); ++index) {
    if (!rng.next_bool(index == 0 ? 0.9 : 0.2)) continue;
    GeneralPacing& pacing = pacing_[index];
    if (rng.next_bool(0.5)) {
      pacing.last_initiation =
          now + Duration{rng.next_in(-span.ns(), span.ns())};
    }
    if (rng.next_bool(0.3)) {
      pacing.backoff_until =
          now + Duration{rng.next_in(-span.ns(), span.ns())};
    }
    if (rng.next_bool(0.5)) {
      pacing.last_initiation_of_value[rng.next_below(4)] =
          now + Duration{rng.next_in(-span.ns(), span.ns())};
    }
    pacing.pending_invocation.reset();
  }
}

}  // namespace ssbft
