// Flat membership set over dense NodeIds — the quorum/vote-tracking
// replacement for the per-instance std::set<NodeId> in the hot protocol
// structs (msgd-broadcast echo/init tracking, ss-Byz-Agree accept records).
//
// Small sets (the common case per broadcast instance at small n, and for
// adversarial instances that never gather a quorum) live in an inline
// sorted array — no allocation at all. Past kInlineCapacity distinct ids
// the set promotes to a dynamic bitset whose word array is sized once to
// the highest id seen (rounded to 64) and grows on demand; membership is
// a single bit test, thresholds come from a cached cardinality that a
// popcount sweep (`popcount_words()`) can audit at any time.
//
// Iteration (`for_each`) is always in ascending id order — identical to
// the std::set iteration order it replaces, so consumers that walk the
// members (e.g. the chain-length matching in ss_byz_agree) see the exact
// sequence the ordered-container implementation produced.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace ssbft {

class NodeSet {
 public:
  /// Distinct ids held inline before promoting to the bitset.
  static constexpr std::uint32_t kInlineCapacity = 8;

  /// Inserts `id`; returns true when it was not already present.
  bool insert(NodeId id) {
    if (!promoted()) {
      std::uint32_t pos = 0;
      while (pos < count_ && inline_[pos] < id) ++pos;
      if (pos < count_ && inline_[pos] == id) return false;
      if (count_ < kInlineCapacity) {
        for (std::uint32_t i = count_; i > pos; --i) {
          inline_[i] = inline_[i - 1];
        }
        inline_[pos] = id;
        ++count_;
        return true;
      }
      promote(id);
    }
    std::uint64_t& word = word_for(id);
    const std::uint64_t mask = std::uint64_t{1} << (id & 63u);
    if (word & mask) return false;
    word |= mask;
    ++count_;
    return true;
  }

  /// std::set-compatible membership probe: 1 when present, else 0.
  [[nodiscard]] std::uint32_t count(NodeId id) const {
    if (!promoted()) {
      for (std::uint32_t i = 0; i < count_; ++i) {
        if (inline_[i] == id) return 1;
      }
      return 0;
    }
    const std::uint32_t w = id >> 6;
    if (w >= words_.size()) return 0;
    return (words_[w] >> (id & 63u)) & 1u;
  }

  [[nodiscard]] bool contains(NodeId id) const { return count(id) != 0; }

  /// Cardinality — O(1); `popcount_words()` recomputes it from the bits.
  [[nodiscard]] std::uint32_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// The popcount form of size(), for threshold checks that want to read
  /// straight off the bit words (and for auditing the cached count).
  [[nodiscard]] std::uint32_t popcount_words() const {
    if (!promoted()) return count_;
    std::uint32_t total = 0;
    for (const std::uint64_t w : words_) total += std::popcount(w);
    return total;
  }

  void clear() {
    words_.clear();
    words_.shrink_to_fit();
    count_ = 0;
  }

  /// Visits members in ascending id order (the std::set iteration order).
  template <class F>
  void for_each(F&& f) const {
    if (!promoted()) {
      for (std::uint32_t i = 0; i < count_; ++i) f(inline_[i]);
      return;
    }
    for (std::uint32_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        f(NodeId((w << 6) + std::uint32_t(b)));
        bits &= bits - 1;
      }
    }
  }

 private:
  [[nodiscard]] bool promoted() const { return !words_.empty(); }

  std::uint64_t& word_for(NodeId id) {
    const std::uint32_t w = id >> 6;
    if (w >= words_.size()) words_.resize(w + 1, 0);
    return words_[w];
  }

  void promote(NodeId incoming) {
    NodeId max_id = incoming;
    for (std::uint32_t i = 0; i < count_; ++i) {
      if (inline_[i] > max_id) max_id = inline_[i];
    }
    words_.resize((max_id >> 6) + 1, 0);
    for (std::uint32_t i = 0; i < count_; ++i) {
      words_[inline_[i] >> 6] |= std::uint64_t{1} << (inline_[i] & 63u);
    }
  }

  NodeId inline_[kInlineCapacity] = {};
  std::vector<std::uint64_t> words_;  // empty until promoted
  std::uint32_t count_ = 0;
};

}  // namespace ssbft
