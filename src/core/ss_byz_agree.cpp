#include "core/ss_byz_agree.hpp"

#include <utility>
#include <vector>

#include "harness/trace.hpp"
#include "util/assert.hpp"

namespace ssbft {

SsByzAgree::SsByzAgree(const Params& params, GeneralId general,
                       ReturnFn on_return)
    : params_(params),
      general_(general),
      on_return_(std::move(on_return)),
      ia_(params, general,
          [this](Value m, LocalTime tau_g) { on_i_accept(m, tau_g); }),
      bc_(params, general, [this](NodeId p, Value m, std::uint32_t k) {
        on_bcast_accept(p, m, k);
      }) {}

void SsByzAgree::invoke(NodeContext& ctx, Value m) {
  ctx_ = &ctx;
  cleanup(ctx.local_now());
  // Q1: invoke Initiator-Accept. (Q0, the General's own send, lives in the
  // node layer — the General also receives its own Initiator message and
  // lands here like everyone else.)
  ia_.invoke(ctx, m);
  ctx_ = nullptr;
}

void SsByzAgree::on_message(NodeContext& ctx, const WireMessage& msg) {
  ctx_ = &ctx;
  cleanup(ctx.local_now());
  check_deadline_state(ctx);
  switch (msg.kind) {
    case MsgKind::kInitiator:
      // Q1 — only the authenticated General can invoke Block K on its own
      // behalf (the network guarantees msg.sender, Def. 2.2); a Byzantine
      // third party must not be able to impersonate an initiation.
      if (msg.sender == general_.node) ia_.invoke(ctx, msg.value);
      break;
    case MsgKind::kSupport:
    case MsgKind::kApprove:
    case MsgKind::kReady:
      ia_.on_message(ctx, msg);
      break;
    case MsgKind::kBcastInit:
    case MsgKind::kBcastEcho:
    case MsgKind::kBcastInitPrime:
    case MsgKind::kBcastEchoPrime:
      bc_.on_message(ctx, msg);
      break;
    default:
      break;  // not ours (e.g. baseline traffic on a mixed network)
  }
  ctx_ = nullptr;
}

void SsByzAgree::on_i_accept(Value m, LocalTime tau_g) {
  SSBFT_ASSERT(ctx_ != nullptr);
  NodeContext& ctx = *ctx_;
  if (returned_) return;  // stopped; still serving primitives for 3d

  const LocalTime now = ctx.local_now();
  tau_g_ = tau_g;
  ia_value_ = m;
  // Round span: anchored (I-accept fixed τG) → return. Async, keyed by
  // (node, General): one node may serve many Generals' instances at once.
  trace::async_begin(TraceLayer::kProtocol, TraceName::kAgreeRound,
                     (std::uint64_t(ctx.id()) << 32) | general_.node, ctx.id(),
                     std::int64_t(m));
  // Decay stale accepts_ before anchoring: scrambled accept records from a
  // transient fault must not feed Block S when the replay below re-enters
  // check_block_s (the per-message cleanup never ran if this instance was
  // dormant since the fault).
  cleanup(now);
  // Anchoring replays broadcasts that were buffered while τG was unknown —
  // which can *synchronously* complete an S-path decision (via the accept
  // callback re-entering check_block_s). Re-check before running Block R.
  bc_.set_anchor(ctx, tau_g);
  if (returned_) return;

  // Schedule the T1 checks at τG+(2r+1)Φ (r = 2..f; r ≤ 1 is vacuous) and
  // the U1 hard deadline at τG+(2f+1)Φ, payload kU1Payload. A nanosecond
  // past the bound makes "τq >" true. The previous invocation's checks are
  // cancelled first (superseded anchor); handlers still re-validate against
  // the *current* τG, so any timer that escapes cancellation — a scramble
  // can lose handles — stays harmless.
  cancel_deadlines();
  if (request_timer_) {
    for (std::uint32_t r = 2; r <= params_.f(); ++r) {
      const LocalTime when =
          tau_g + std::int64_t(2 * r + 1) * params_.phi() + Duration{1};
      arm_deadline(when, r);
    }
    const LocalTime hard =
        tau_g + std::int64_t(2 * params_.f() + 1) * params_.phi() + Duration{1};
    arm_deadline(hard, kU1Payload);
  }

  // Block R: a fresh I-accept lets the node adopt and relay immediately.
  //
  // DEVIATION FROM FIG. 1 (documented in DESIGN.md): the paper writes
  // τq − τG ≤ 4d, but its own IA-1D only guarantees rt(τq) ≤ t0 + 4d and
  // rt(τG) ≥ t0 − d, i.e. a gap of up to 5d. Under per-hop delay jitter the
  // 4d test genuinely fails at some correct nodes even for a correct
  // General; if the *only* node that passes is the General itself, its
  // round-1 relay is excluded by S1's p_i ≠ G requirement and the remaining
  // correct nodes abort — breaking Agreement. 5d is what IA-1D supports,
  // and it keeps every downstream proof step intact (the R-path decision
  // still happens before τG + Φ = 8d, which is all Lemma 8's r = 0 case
  // uses). Params::r1_window() defaults to 5d; bench_ablation measures the
  // literal 4d variant.
  if (now - tau_g <= params_.r1_window()) {
    bc_.broadcast(ctx, m, 1);  // R3: msgd-broadcast(q, ⟨G,m⟩, 1)
    do_return(ctx, m);         // R4
    return;
  }

  // Otherwise fall through to S/T/U: maybe the relayed chain arrives.
  check_block_s(ctx);
}

void SsByzAgree::on_bcast_accept(NodeId p, Value m, std::uint32_t k) {
  SSBFT_ASSERT(ctx_ != nullptr);
  NodeContext& ctx = *ctx_;
  auto& rec = accepts_[m];
  rec.rounds[k].insert(p);
  rec.last_update = ctx.local_now();
  trace::instant(TraceLayer::kProtocol, TraceName::kQuorumProgress, ctx.id(),
                 std::int64_t(k));
  if (!returned_ && tau_g_.has_value()) check_block_s(ctx);
}

std::uint32_t SsByzAgree::chain_length(const RoundTable& rounds,
                                       std::uint32_t max_r) const {
  // Rounds 1..r must each contribute a *distinct* broadcaster p_i ≠ G
  // (S1's "∀i,j: p_i ≠ p_j ≠ G"). Greedy fails on adversarial overlap, so
  // run augmenting-path bipartite matching round→broadcaster; tiny sizes
  // (r ≤ f+1) make this cheap.
  std::vector<std::vector<NodeId>> cand;  // per round 1..max_r
  for (std::uint32_t r = 1; r <= max_r; ++r) {
    const auto it = rounds.find(r);
    if (it == rounds.end()) break;
    std::vector<NodeId> nodes;
    it->second.for_each([&](NodeId p) {
      if (p != general_.node) nodes.push_back(p);
    });
    if (nodes.empty()) break;
    cand.push_back(std::move(nodes));
  }

  FlatMap<NodeId, std::uint32_t> matched_to;  // broadcaster → round index
  std::uint32_t matched_rounds = 0;
  for (std::uint32_t round = 0; round < cand.size(); ++round) {
    NodeSet visited;
    // Try to find an augmenting path for `round`.
    std::function<bool(std::uint32_t)> augment = [&](std::uint32_t r) -> bool {
      for (NodeId p : cand[r]) {
        if (visited.contains(p)) continue;
        visited.insert(p);
        const auto it = matched_to.find(p);
        if (it == matched_to.end()) {
          matched_to[p] = r;
          return true;
        }
        // Recursing can insert into matched_to (invalidating `it`), so
        // take the displaced round out first and re-probe to reassign.
        const std::uint32_t displaced = it->second;
        if (augment(displaced)) {
          matched_to[p] = r;
          return true;
        }
      }
      return false;
    };
    if (augment(round)) {
      ++matched_rounds;
    } else {
      break;  // rounds are a prefix: chain stops at the first unmatchable
    }
  }
  return matched_rounds;
}

void SsByzAgree::check_block_s(NodeContext& ctx) {
  SSBFT_ASSERT(tau_g_.has_value());
  const LocalTime now = ctx.local_now();

  for (auto& [value, rec] : accepts_) {
    const std::uint32_t r = chain_length(rec.rounds, params_.f() + 1);
    if (r == 0) continue;
    // S1 deadline: decision at chain length r is valid while
    // τq ≤ τG + (2r+1)·Φ.
    if (now <= *tau_g_ + std::int64_t(2 * r + 1) * params_.phi()) {
      bc_.broadcast(ctx, value, r + 1);  // S3
      do_return(ctx, value);             // S4
      return;
    }
  }
}

void SsByzAgree::on_timer(NodeContext& ctx, TimerKind kind,
                          std::uint32_t payload) {
  ctx_ = &ctx;
  cleanup(ctx.local_now());
  switch (kind) {
    case TimerKind::kRoundDeadline: {
      if (returned_ || !tau_g_.has_value()) break;
      const LocalTime now = ctx.local_now();
      if (payload == kU1Payload) {
        // U1: hard deadline (2f+1)·Φ — abort unconditionally (stale timers
        // from a superseded τG are filtered by the deadline re-check).
        if (now > *tau_g_ + std::int64_t(2 * params_.f() + 1) * params_.phi()) {
          do_return(ctx, kBottom);
        }
        break;
      }
      // T1: past τG+(2r+1)Φ the broadcaster set must have ≥ r−1 members.
      const std::uint32_t r = payload;
      if (now > *tau_g_ + std::int64_t(2 * r + 1) * params_.phi() &&
          bc_.broadcasters().size() + 1 < r) {  // |b| < r−1, unsigned-safe
        do_return(ctx, kBottom);
      }
      break;
    }
    case TimerKind::kPostReturn:
      // 3d after returning: reset the primitives and become ready for the
      // General's next invocation.
      ia_.reset();
      bc_.reset();
      tau_g_.reset();
      ia_value_.reset();
      accepts_.clear();
      returned_ = false;
      break;
  }
  ctx_ = nullptr;
}

void SsByzAgree::check_deadline_state(NodeContext& ctx) {
  // U1 in Fig. 1 is a *condition*, continuously evaluated — not a one-shot
  // timer. After a transient fault this instance may hold a τG for which no
  // deadline timer was ever scheduled; evaluating the condition on every
  // event (and healing future-stamped anchors, which are "clearly wrong")
  // restores termination from arbitrary states.
  if (!tau_g_.has_value() || returned_) return;
  const LocalTime now = ctx.local_now();
  if (*tau_g_ > now) {
    tau_g_.reset();
    ia_value_.reset();
    return;
  }
  if (now > *tau_g_ + params_.delta_agr()) do_return(ctx, kBottom);
}

void SsByzAgree::arm_deadline(LocalTime when, std::uint32_t payload) {
  deadline_timers_.push_back(
      request_timer_(when, TimerKind::kRoundDeadline, payload));
}

void SsByzAgree::cancel_deadlines() {
  if (cancel_timer_) {
    for (const TimerHandle handle : deadline_timers_) cancel_timer_(handle);
  }
  deadline_timers_.clear();
}

void SsByzAgree::do_return(NodeContext& ctx, Value value) {
  SSBFT_ASSERT(!returned_);
  returned_ = true;
  // A returned instance never evaluates T1/U1 again: retire the checks
  // instead of dispatching them as no-ops. (This is the dense-timer hot
  // path — every decided execution used to leave up to f stale deadline
  // fires in the queue.)
  cancel_deadlines();
  AgreeResult result;
  result.general = general_;
  result.value = value;
  result.tau_g = tau_g_.value_or(LocalTime{});
  result.returned_at = ctx.local_now();
  last_result_ = result;
  trace::async_end(TraceLayer::kProtocol, TraceName::kAgreeRound,
                   (std::uint64_t(ctx.id()) << 32) | general_.node, ctx.id(),
                   std::int64_t(value));
  ctx.log().logf(LogLevel::kDebug, ctx.id(),
                 "return (G=%u, value=%llu, decided=%d)", general_.node,
                 static_cast<unsigned long long>(value),
                 int(result.decided()));
  if (request_timer_) {
    request_timer_(ctx.local_now() + 3 * params_.d(), TimerKind::kPostReturn,
                   0);
  }
  on_return_(result);
}

void SsByzAgree::cleanup(LocalTime now) {
  // Fig. 1 cleanup: erase values/messages older than (2f+1)Φ + 3d.
  const Duration keep = params_.agree_cleanup();
  for (auto it = accepts_.begin(); it != accepts_.end();) {
    if (it->second.last_update < now - keep || it->second.last_update > now) {
      it = accepts_.erase(it);
    } else {
      ++it;
    }
  }
}

void SsByzAgree::reset() {
  cancel_deadlines();
  ia_.reset();
  bc_.reset();
  tau_g_.reset();
  ia_value_.reset();
  accepts_.clear();
  returned_ = false;
  last_result_.reset();
}

void SsByzAgree::scramble(NodeContext& ctx, Rng& rng) {
  const LocalTime now = ctx.local_now();
  // A transient fault erases the node's memory of its handles without
  // cancelling anything in flight: drop them (the stale timers fire and
  // are filtered by the handlers' re-validation, as before the fault).
  deadline_timers_.clear();
  reset();
  ctx_ = &ctx;
  ia_.scramble(ctx, rng);
  bc_.scramble(ctx, rng);
  if (rng.next_bool(0.5)) {
    tau_g_ = now + Duration{rng.next_in(-params_.delta_agr().ns(),
                                        params_.delta_agr().ns())};
    ia_value_ = rng.next_below(4);
    // The node's main loop keeps polling its clock against U1 even from an
    // arbitrary state; re-arming the deadline models exactly that.
    if (request_timer_) {
      arm_deadline(*tau_g_ + params_.delta_agr() + Duration{1}, kU1Payload);
    }
  }
  const std::uint32_t count = std::uint32_t(rng.next_below(4));
  for (std::uint32_t i = 0; i < count; ++i) {
    auto& rec = accepts_[rng.next_below(4)];
    rec.last_update = now - Duration{rng.next_in(0, params_.agree_cleanup().ns())};
    rec.rounds[std::uint32_t(rng.next_below(params_.f() + 2)) + 1].insert(
        NodeId(rng.next_below(ctx.n())));
  }
  // A scrambled node may even believe it already returned.
  returned_ = rng.next_bool(0.25);
  if (returned_ && request_timer_) {
    // Ensure the stuck "returned" state heals: schedule the post-return
    // reset as the protocol would have.
    request_timer_(now + 3 * params_.d(), TimerKind::kPostReturn, 0);
  }
  ctx_ = nullptr;
}

}  // namespace ssbft
