// The ss-Byz-Agree protocol (paper §3, Fig. 1).
//
// One instance per (node, General). The instance owns its Initiator-Accept
// and msgd-broadcast primitives and implements blocks Q/R/S/T/U:
//
//   Q  — invoke Initiator-Accept upon the General's (Initiator, G, m)
//   R  — fresh I-accept (τq − τG ≤ 4d): adopt the value, relay at round 1,
//        decide
//   S  — a chain of r relayed broadcasts (p_i, ⟨G,m⟩, i), i = 1..r, with
//        distinct p_i ≠ G, seen by τG+(2r+1)Φ: adopt, relay at r+1, decide
//   T  — too few identified broadcasters by τG+(2r+1)Φ: abort (⊥)
//   U  — hard deadline τG+(2f+1)Φ: abort (⊥)
//
// After returning, the node keeps serving the primitives for 3d (so peers
// can finish), then resets them — making the instance reusable for the
// General's next invocation (recurrent agreement).
//
// Properties once stable (n > 3f): Agreement, Validity, Termination, and
// the Timeliness bounds of §3 — all measured by the bench suite.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/flat_map.hpp"
#include "core/initiator_accept.hpp"
#include "core/msgd_broadcast.hpp"
#include "core/params.hpp"
#include "sim/node.hpp"
#include "util/types.hpp"

namespace ssbft {

/// Outcome of one protocol execution at one node.
struct AgreeResult {
  GeneralId general{};
  Value value = kBottom;  // kBottom ⇔ abort (⊥)
  LocalTime tau_g{};      // anchor estimate for the General's initiation
  LocalTime returned_at{};
  [[nodiscard]] bool decided() const { return value != kBottom; }
};

class SsByzAgree {
 public:
  using ReturnFn = std::function<void(const AgreeResult&)>;

  /// Timer cookies the owner must route back via on_timer. The owner
  /// namespaces them per instance; the low bits are:
  enum class TimerKind : std::uint8_t {
    kRoundDeadline = 1,  // T1/U1 checks; payload = round r (or kU1Payload)
    kPostReturn = 2,     // reset primitives 3d after returning
  };

  /// kRoundDeadline payload marking the U1 hard deadline.
  static constexpr std::uint32_t kU1Payload = 0xFFFFFFFF;

  SsByzAgree(const Params& params, GeneralId general, ReturnFn on_return);

  /// Block Q1: received (Initiator, G, m).
  void invoke(NodeContext& ctx, Value m);

  /// Route any support/approve/ready/init/echo/init'/echo' for this General.
  void on_message(NodeContext& ctx, const WireMessage& msg);

  /// Timer dispatch: `kind` + payload as scheduled via RequestTimerFn.
  void on_timer(NodeContext& ctx, TimerKind kind, std::uint32_t payload);

  /// The owner supplies the timer service (cookie namespacing is its job).
  /// The request function returns the handle minted by NodeContext; the
  /// optional cancel function lets the instance retire its round-deadline
  /// timers the moment it returns instead of letting them fire as no-ops
  /// (handlers still re-validate — a transient fault can lose any handle).
  using RequestTimerFn = std::function<TimerHandle(
      LocalTime when, TimerKind kind, std::uint32_t payload)>;
  using CancelTimerFn = std::function<bool(TimerHandle handle)>;
  void set_timer_service(RequestTimerFn fn, CancelTimerFn cancel = nullptr) {
    request_timer_ = std::move(fn);
    cancel_timer_ = std::move(cancel);
  }

  [[nodiscard]] bool running() const { return tau_g_.has_value() && !returned_; }
  [[nodiscard]] bool returned() const { return returned_; }
  [[nodiscard]] std::optional<AgreeResult> last_result() const {
    return last_result_;
  }

  [[nodiscard]] InitiatorAccept& initiator_accept() { return ia_; }
  [[nodiscard]] MsgdBroadcast& broadcastp() { return bc_; }

  void reset();
  void scramble(NodeContext& ctx, Rng& rng);

 private:
  /// Arm a T1/U1 deadline check and remember its handle for cancellation.
  void arm_deadline(LocalTime when, std::uint32_t payload);
  /// Retire every outstanding deadline check (returned / superseded).
  void cancel_deadlines();

  void on_i_accept(Value m, LocalTime tau_g);
  void on_bcast_accept(NodeId p, Value m, std::uint32_t k);
  void check_block_s(NodeContext& ctx);
  void check_deadline_state(NodeContext& ctx);
  void do_return(NodeContext& ctx, Value value);
  void cleanup(LocalTime now);
  /// Per-round broadcaster sets: sparse sorted round index (wire rounds
  /// are attacker-controlled — no dense array) over flat bitset members.
  using RoundTable = FlatMap<std::uint32_t, NodeSet>;

  /// Largest r such that rounds 1..r of `rounds` admit distinct
  /// representatives (a bipartite matching), capped at `max_r`.
  [[nodiscard]] std::uint32_t chain_length(const RoundTable& rounds,
                                           std::uint32_t max_r) const;

  const Params& params_;
  GeneralId general_;
  ReturnFn on_return_;
  RequestTimerFn request_timer_;
  CancelTimerFn cancel_timer_;
  std::vector<TimerHandle> deadline_timers_;  // this invocation's T1/U1 checks

  InitiatorAccept ia_;
  MsgdBroadcast bc_;

  // The NodeContext is only valid during a callback; primitives invoke the
  // accept hooks synchronously from on_message/invoke, so we stash the
  // current ctx for the duration of each entry point.
  NodeContext* ctx_ = nullptr;

  std::optional<LocalTime> tau_g_;
  std::optional<Value> ia_value_;
  bool returned_ = false;
  std::optional<AgreeResult> last_result_;

  // Accepted broadcasts: value → round → broadcasters, all flat (sorted
  // value/round slots, bitset members). Entries decay after (2f+1)Φ + 3d
  // (Fig. 1 cleanup).
  struct AcceptRec {
    RoundTable rounds;
    LocalTime last_update{};
  };
  FlatMap<Value, AcceptRec> accepts_;
};

}  // namespace ssbft
