// Sorted flat map — the cache-friendly replacement for the small
// std::map tables in the hot protocol structs (initiator_accept's
// per-value timestamp tables, msgd_broadcast's per-(p,m,k) instance
// index, ss_byz_agree's per-value accept records).
//
// Entries live contiguously in one sorted vector ("arena-backed"): a
// lookup is a binary search over a dense array instead of a pointer
// chase, iteration is a linear sweep in ascending key order — exactly
// the std::map iteration order it replaces, which is what keeps the
// refactor digest-identical (several call sites send messages while
// walking these tables, so visit order is behavior). Inserts shift the
// tail; these tables hold a handful of live values/instances, and each
// key is inserted once while being probed per message, so the read-side
// win dominates.
//
// Only the std::map surface the protocol code uses is provided:
// operator[], find, try_emplace, erase (by key and by iterator,
// returning the next iterator — the erase-while-iterating cleanup
// idiom), begin/end, size/empty/clear.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace ssbft {

template <class K, class V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  [[nodiscard]] iterator find(const K& key) {
    const iterator it = lower(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  [[nodiscard]] const_iterator find(const K& key) const {
    const const_iterator it = lower(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }

  [[nodiscard]] bool contains(const K& key) const {
    return find(key) != entries_.end();
  }

  V& operator[](const K& key) {
    const iterator it = lower(key);
    if (it != entries_.end() && it->first == key) return it->second;
    return entries_.emplace(it, key, V{})->second;
  }

  template <class... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    iterator it = lower(key);
    if (it != entries_.end() && it->first == key) return {it, false};
    it = entries_.emplace(it, std::piecewise_construct,
                          std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  iterator erase(const_iterator it) { return entries_.erase(it); }

  std::size_t erase(const K& key) {
    const iterator it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }

 private:
  [[nodiscard]] iterator lower(const K& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  [[nodiscard]] const_iterator lower(const K& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace ssbft
