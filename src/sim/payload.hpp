// Shared payload pool: the single owner of all in-flight message bytes.
//
// A WireMessage's variable-size body travels as a `Payload` — a small value
// handle. Payloads at or below one cacheline (kInlineCapacity) are stored
// inline in the handle itself; anything larger lives in a refcounted slot of
// the process-wide PayloadPool, and copying the handle only bumps the slot's
// refcount. The pool is deliberately global (one per process, not per
// engine): a slot reference survives engine construction/destruction, so
// in-flight messages cross both duty-cycle migration directions
// (serial → sharded and back) with their refcounts intact — the snapshot's
// PendingDelivery copies hold the bytes alive, the dying engine's queue
// closures release theirs, and nothing is ever re-copied.
//
// Thread-safety: slot acquisition/free-listing is mutex-guarded and
// refcounts are atomic, because shard workers copy and destroy handles
// concurrently (mailbox pushes, event-closure moves, barrier drains). The
// bytes themselves are immutable once acquired — corrupting a payload
// (sim/network.hpp chaos) clones a fresh slot instead of mutating a shared
// one. Slot indices are an allocation-order artifact and are never
// observable; everything digest-visible (size, bytes, checksum) is content.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace ssbft {

class PayloadPool;

/// The process-wide pool (see file comment for why it is global).
[[nodiscard]] PayloadPool& payload_pool();

class PayloadPool {
 public:
  /// Copy `size` bytes into a pool slot (refs = 1) and return its index.
  /// The only place payload bytes are ever copied into the pool.
  [[nodiscard]] std::uint32_t acquire(const void* data, std::uint32_t size);
  /// Share an existing slot (handle copy). Lock-free.
  void add_ref(std::uint32_t index);
  /// Drop one reference; the last release recycles the slot.
  void release(std::uint32_t index);

  [[nodiscard]] const std::uint8_t* data(std::uint32_t index) const;
  [[nodiscard]] std::uint32_t size(std::uint32_t index) const;
  [[nodiscard]] std::uint64_t checksum(std::uint32_t index) const;

  /// Live (referenced) slots. Zero after a run whose engines, snapshots,
  /// and probes have all let go — the leak pin tests assert exactly this.
  [[nodiscard]] std::uint32_t live() const {
    return live_.load(std::memory_order_relaxed);
  }
  /// Total bytes ever memcpy'd into pool slots. A shared slot is filled
  /// once however many deliveries reference it, so this counter is how the
  /// zero-copy pin measures "unicast send no longer copies per delivery".
  [[nodiscard]] std::uint64_t bytes_copied() const {
    return bytes_copied_.load(std::memory_order_relaxed);
  }
  /// High-water mark of bytes resident in live slots — how much payload
  /// memory the run actually needed at once (stats_registry leaf
  /// net.pool_peak_bytes). Monotone over the process, like the pool.
  [[nodiscard]] std::uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

 private:
  // Chunked, address-stable slabs recycled through a free list (the same
  // layout as the event queue's closure slab): growth never relocates a
  // live slot, and a warm pool performs no allocation. Slot byte buffers
  // are kept across reuse when large enough.
  struct Slot {
    std::atomic<std::uint32_t> refs{0};
    std::uint32_t size = 0;
    std::uint32_t capacity = 0;
    std::uint32_t next_free = kNullSlot;
    std::uint64_t checksum = 0;  // FNV-1a over the bytes, cached at fill
    std::unique_ptr<std::uint8_t[]> bytes;
  };
  static constexpr std::uint32_t kNullSlot = ~std::uint32_t{0};
  static constexpr std::uint32_t kSlotChunk = 64;
  struct Chunk {
    Slot slots[kSlotChunk];
  };

  [[nodiscard]] Slot& slot(std::uint32_t index) {
    return chunks_[index / kSlotChunk]->slots[index % kSlotChunk];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t index) const {
    return chunks_[index / kSlotChunk]->slots[index % kSlotChunk];
  }

  mutable std::mutex mutex_;  // guards chunks_ growth and the free list
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::uint32_t free_head_ = kNullSlot;
  std::atomic<std::uint32_t> live_{0};
  std::atomic<std::uint64_t> bytes_copied_{0};
  std::atomic<std::uint64_t> resident_bytes_{0};  // sum of live slot sizes
  std::atomic<std::uint64_t> peak_bytes_{0};      // max resident ever seen
};

/// FNV-1a over a byte range (the payload checksum; also reused by the
/// authenticator and the app-log commit records).
[[nodiscard]] std::uint64_t payload_fnv(const void* data, std::size_t size);

/// Value handle for a message body. Copy = header copy plus a refcount bump
/// for pooled bodies (never a byte copy); bodies ≤ kInlineCapacity ride
/// inline in the handle. Immutable content; compared by content.
class Payload {
 public:
  /// Bodies at or below this many bytes (one cacheline) skip the pool.
  static constexpr std::uint32_t kInlineCapacity = 64;

  Payload() = default;
  /// Copy `size` bytes in — the one place bytes enter the payload system.
  Payload(const void* data, std::uint32_t size);

  Payload(const Payload& other);
  Payload& operator=(const Payload& other);
  Payload(Payload&& other) noexcept;
  Payload& operator=(Payload&& other) noexcept;
  ~Payload() { reset(); }

  [[nodiscard]] const std::uint8_t* data() const {
    return pooled() ? payload_pool().data(slot_) : inline_;
  }
  [[nodiscard]] std::uint32_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool pooled() const { return slot_ != kNoSlot; }
  /// Cached FNV-1a over the bytes (0 for an empty payload).
  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }

  /// Content equality (size + bytes); never compares slot identity.
  friend bool operator==(const Payload& a, const Payload& b) {
    if (a.size_ != b.size_) return false;
    if (a.size_ == 0) return true;
    if (a.checksum_ != b.checksum_) return false;
    return std::memcmp(a.data(), b.data(), a.size_) == 0;
  }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  void reset();

  std::uint32_t size_ = 0;
  std::uint32_t slot_ = kNoSlot;   // kNoSlot ⇒ inline storage
  std::uint64_t checksum_ = 0;
  std::uint8_t inline_[kInlineCapacity];
};

/// Deterministic patterned payload of `size` bytes derived from `tag` —
/// the workload/test generator (no global RNG, so any engine or thread
/// minting the same (size, tag) gets identical bytes).
[[nodiscard]] Payload make_patterned_payload(std::uint32_t size,
                                             std::uint64_t tag);

}  // namespace ssbft
