#include "sim/wire.hpp"

namespace ssbft {

const char* to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kInitiator: return "Initiator";
    case MsgKind::kSupport: return "support";
    case MsgKind::kApprove: return "approve";
    case MsgKind::kReady: return "ready";
    case MsgKind::kBcastInit: return "init";
    case MsgKind::kBcastEcho: return "echo";
    case MsgKind::kBcastInitPrime: return "init'";
    case MsgKind::kBcastEchoPrime: return "echo'";
    case MsgKind::kTpsGeneral: return "tps-general";
    case MsgKind::kNumKinds: break;
  }
  return "?";
}

std::string to_string(const WireMessage& m) {
  std::string s = "(";
  s += to_string(m.kind);
  s += ", G=" + std::to_string(m.general.node);
  s += ", m=" + std::to_string(m.value);
  if (m.broadcaster != kNoNode) s += ", p=" + std::to_string(m.broadcaster);
  if (m.round != 0) s += ", k=" + std::to_string(m.round);
  if (!m.payload.empty()) {
    s += ", |b|=" + std::to_string(m.payload.size());
  }
  if (m.auth != 0) s += ", auth";
  s += ", from=" + std::to_string(m.sender);
  s += ")";
  return s;
}

}  // namespace ssbft
