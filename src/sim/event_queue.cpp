#include "sim/event_queue.hpp"

#include <utility>

namespace ssbft {

void EventQueue::schedule(RealTime when, Action action) {
  SSBFT_EXPECTS(when >= now_);
  heap_.push(Entry{when, seq_++, std::move(action)});
}

RealTime EventQueue::next_time() const {
  SSBFT_EXPECTS(!heap_.empty());
  return heap_.top().when;
}

void EventQueue::run_one() {
  SSBFT_EXPECTS(!heap_.empty());
  // priority_queue::top() is const; the action is moved out via const_cast,
  // which is safe because the entry is popped immediately after.
  auto& top = const_cast<Entry&>(heap_.top());
  now_ = top.when;
  Action action = std::move(top.action);
  heap_.pop();
  ++dispatched_;
  action();
}

void EventQueue::run_until(RealTime deadline) {
  while (!heap_.empty() && heap_.top().when <= deadline) run_one();
  if (now_ < deadline) now_ = deadline;
}

}  // namespace ssbft
