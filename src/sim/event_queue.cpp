#include "sim/event_queue.hpp"

namespace ssbft {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNullSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slot(index).next_free;
    return index;
  }
  // New chunk: hand out its first slot, thread the rest onto the free list.
  slab_.push_back(std::make_unique<SlotChunk>());
  const std::uint32_t base = std::uint32_t(slab_.size() - 1) * kSlotChunk;
  for (std::uint32_t i = kSlotChunk; i-- > 1;) {
    slot(base + i).next_free = free_head_;
    free_head_ = base + i;
  }
  return base;
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& released = slot(index);
  released.ops = nullptr;
  released.next_free = free_head_;
  free_head_ = index;
}

void EventQueue::push_entry(Entry entry) {
  // Hole insertion: shift later parents down, write the new entry once.
  heap_.push_back(entry);
  std::size_t child = heap_.size() - 1;
  while (child > 0) {
    const std::size_t parent = (child - 1) / 2;
    if (!earlier(entry, heap_[parent])) break;
    heap_[child] = heap_[parent];
    child = parent;
  }
  heap_[child] = entry;
}

EventQueue::Entry EventQueue::pop_entry() {
  const Entry top = heap_.front();
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t count = heap_.size();
  std::size_t parent = 0;
  while (true) {
    const std::size_t left = 2 * parent + 1;
    if (left >= count) break;
    const std::size_t right = left + 1;
    const std::size_t least =
        (right < count && earlier(heap_[right], heap_[left])) ? right : left;
    if (!earlier(heap_[least], last)) break;
    heap_[parent] = heap_[least];
    parent = least;
  }
  if (count > 0) heap_[parent] = last;
  return top;
}

void EventQueue::run_one() {
  SSBFT_EXPECTS(!heap_.empty());
  const Entry top = pop_entry();
  now_ = top.when;
  ++dispatched_;
  // Pop by move: Ops::run relocates the callable out of its slot, recycles
  // the slot, and dispatches — one indirect call for the whole pop path.
  slot(top.slot).ops->run(*this, top.slot);
}

void EventQueue::run_until(RealTime deadline) {
  while (!heap_.empty() && heap_.front().when <= deadline) run_one();
  if (now_ < deadline) now_ = deadline;
}

void EventQueue::clear() {
  for (const Entry& entry : heap_) {
    Slot& pending = slot(entry.slot);
    pending.ops->destroy(pending.storage);
    pending.ops = nullptr;
  }
  heap_.clear();
}

}  // namespace ssbft
