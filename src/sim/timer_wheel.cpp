#include "sim/timer_wheel.hpp"

#include <algorithm>
#include <bit>

namespace ssbft {

void TimerWheel::release_record(std::uint32_t index) {
  Record& r = records_[index];
  ++r.generation;  // every outstanding handle to this arming goes stale
  r.list = kFree;
  r.prev = kNull;
  r.next = free_head_;
  free_head_ = index;
  --live_;
}

void TimerWheel::unlink(std::uint32_t index) {
  Record& r = records_[index];
  const std::uint32_t list = r.list;
  SSBFT_ASSERT(list < kListCount);
  if (r.prev != kNull) {
    records_[r.prev].next = r.next;
  } else {
    heads_[list] = r.next;
  }
  if (r.next != kNull) records_[r.next].prev = r.prev;
  r.prev = r.next = kNull;
  r.list = kFree;
  --armed_;
  if (list < kSlotLists) {
    if (heads_[list] == kNull) {
      occupied_[list / kSlots] &= ~(1ull << (list % kSlots));
    }
  } else if (list == kOverflowList) {
    --overflow_count_;
  } else if (heads_[kReadyList] == kNull) {
    ready_min_ = RealTime::max();
  }
}

TimerHandle TimerWheel::arm_external(RealTime when, EventKey key, NodeId node,
                                     std::uint64_t cookie) {
  const std::uint32_t index = alloc_record();
  Record& r = records_[index];
  r.when = when;
  r.seq = key.seq;
  r.creator = key.creator;
  r.node = node;
  r.cookie = cookie;
  r.list = kInHeap;  // the caller schedules the fire event itself
  return TimerHandle{index, r.generation};
}

bool TimerWheel::cancel(TimerHandle handle) {
  if (handle.index >= records_.size()) return false;
  Record& r = records_[handle.index];
  if (r.generation != handle.generation || r.list == kFree) return false;
  if (r.list != kInHeap) unlink(handle.index);
  release_record(handle.index);
  return true;
}

bool TimerWheel::claim(TimerHandle handle, NodeId& node,
                       std::uint64_t& cookie) {
  if (handle.index >= records_.size()) return false;
  Record& r = records_[handle.index];
  if (r.generation != handle.generation || r.list != kInHeap) return false;
  node = r.node;
  cookie = r.cookie;
  release_record(handle.index);
  return true;
}

void TimerWheel::earliest_slot(std::uint64_t& slot_tick,
                               std::uint32_t& list) const {
  slot_tick = ~std::uint64_t{0};
  list = kNull;
  for (std::uint32_t level = 0; level < kLevels; ++level) {
    const std::uint64_t occ = occupied_[level];
    if (occ == 0) continue;
    const std::uint32_t shift = kSlotBits * level;
    const std::uint64_t level_tick = tick_ >> shift;
    const std::uint32_t cur = std::uint32_t(level_tick) & (kSlots - 1);
    const std::uint64_t ahead = occ >> cur;
    SSBFT_ASSERT(ahead != 0);  // XOR placement: slots are strictly ahead
    const std::uint32_t offset = std::uint32_t(std::countr_zero(ahead));
    const std::uint64_t start = (level_tick + offset) << shift;
    if (start < slot_tick) {
      slot_tick = start;
      list = level * kSlots + cur + offset;
    }
  }
}

RealTime TimerWheel::compute_next_due() const {
  RealTime best = RealTime::max();
  if (heads_[kReadyList] != kNull) best = ready_min_;
  std::uint64_t slot_tick;
  std::uint32_t list;
  earliest_slot(slot_tick, list);
  if (list != kNull) {
    best = std::min(best, RealTime{std::int64_t(slot_tick << kTickShift)});
  }
  if (overflow_count_ > 0) {
    best = std::min(best,
                    RealTime{std::int64_t(overflow_min_tick_ << kTickShift)});
  }
  return best;
}

void TimerWheel::flush_ready(std::vector<Due>& out) {
  std::uint32_t index = heads_[kReadyList];
  heads_[kReadyList] = kNull;
  ready_min_ = RealTime::max();
  while (index != kNull) {
    Record& r = records_[index];
    const std::uint32_t next = r.next;
    r.prev = r.next = kNull;
    r.list = kInHeap;
    --armed_;
    out.push_back(
        Due{r.when, EventKey{r.creator, r.seq}, TimerHandle{index, r.generation}});
    index = next;
  }
}

bool TimerWheel::rescan_overflow(std::vector<Due>& out) {
  // Lower-bound gate: if even the earliest parked record cannot be within
  // the wheel's horizon, nobody is. (A record whose span-crossing keeps it
  // parked just past the gate is re-walked on later advances until the
  // wheel enters its span — overflow is the cold path by construction.)
  if (overflow_count_ == 0 || overflow_min_tick_ >= tick_ + kHorizonTicks) {
    return false;
  }
  std::uint32_t index = heads_[kOverflowList];
  heads_[kOverflowList] = kNull;
  overflow_min_tick_ = ~std::uint64_t{0};
  armed_ -= overflow_count_;
  overflow_count_ = 0;
  while (index != kNull) {
    Record& r = records_[index];
    const std::uint32_t next = r.next;
    r.prev = r.next = kNull;
    r.list = kFree;  // transient; place() assigns the real list
    place(index, &out);
    index = next;
  }
  return true;
}

void TimerWheel::export_records(std::vector<ExportedRecord>& out,
                                std::vector<std::uint32_t>& generations) const {
  out.clear();
  generations.resize(records_.size());
  for (std::uint32_t index = 0; index < records_.size(); ++index) {
    const Record& r = records_[index];
    generations[index] = r.generation;
    if (r.list == kFree) continue;
    out.push_back(ExportedRecord{r.when, EventKey{r.creator, r.seq}, r.node,
                                 r.cookie, TimerHandle{index, r.generation}});
  }
}

void TimerWheel::import_records(const std::vector<ExportedRecord>& records,
                                const std::vector<std::uint32_t>& generations,
                                RealTime now,
                                const std::function<bool(NodeId)>& accept,
                                std::uint32_t self, std::uint32_t parties) {
  SSBFT_EXPECTS(records_.empty() && live_ == 0);
  SSBFT_EXPECTS(parties > 0 && self < parties);
  records_.resize(generations.size());
  // Every index that held a LIVE record at export, whether or not this
  // importer adopts it: a sibling importer may adopt it, so recycling it
  // here would let two wheels hold different live timers at one index —
  // fatal for the reverse merge.
  std::vector<bool> snapshot_live(generations.size(), false);
  for (std::uint32_t index = 0; index < generations.size(); ++index) {
    records_[index].generation = generations[index];
  }
  tick_ = tick_of(now);
  for (const ExportedRecord& rec : records) {
    SSBFT_ASSERT(rec.handle.index < records_.size());
    snapshot_live[rec.handle.index] = true;
    if (!accept(rec.node)) continue;
    Record& r = records_[rec.handle.index];
    SSBFT_ASSERT(r.generation == rec.handle.generation);
    r.when = rec.when;
    r.seq = rec.key.seq;
    r.creator = rec.key.creator;
    r.node = rec.node;
    r.cookie = rec.cookie;
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    place(rec.handle.index, nullptr);
  }
  // Partition the recyclable space: this importer may reuse only the
  // snapshot-FREE slots on its own residue class mod `parties`, and appends
  // new indices on that class too (strided alloc cursor). Sibling importers
  // of the same snapshot therefore never allocate the same index, so their
  // later exports merge by plain concatenation. Free list is threaded
  // descending, so allocation hands out ascending indices. Index choice is
  // unobservable either way (dispatch order is the keys'); the adopted
  // generation map is what matters.
  for (std::uint32_t index = std::uint32_t(records_.size()); index-- > 0;) {
    if (snapshot_live[index] || index % parties != self) continue;
    records_[index].next = free_head_;
    free_head_ = index;
  }
  const std::uint32_t base = std::uint32_t(records_.size());
  alloc_stride_ = parties;
  alloc_next_ = base + (self + parties - base % parties) % parties;
}

void TimerWheel::advance(RealTime t, std::vector<Due>& out) {
  out.clear();
  const std::uint64_t target = tick_of(t);
  if (heads_[kReadyList] != kNull) flush_ready(out);
  std::uint64_t slot_tick;
  std::uint32_t list;
  while (true) {
    earliest_slot(slot_tick, list);
    if (list == kNull || slot_tick > target) break;
    if (slot_tick > tick_) tick_ = slot_tick;
    // Lazy cascade: detach the whole slot, clear its occupancy bit, then
    // re-place every record relative to the new wheel time — due records
    // go straight into the batch, the rest drop to a strictly lower level.
    std::uint32_t index = heads_[list];
    heads_[list] = kNull;
    occupied_[list / kSlots] &= ~(1ull << (list % kSlots));
    while (index != kNull) {
      Record& r = records_[index];
      const std::uint32_t next = r.next;
      r.prev = r.next = kNull;
      r.list = kFree;  // transient; place() assigns the real list
      --armed_;
      place(index, &out);
      index = next;
    }
  }
  if (target > tick_) tick_ = target;
  if (rescan_overflow(out)) {
    next_due_valid_ = false;  // the final scan below is stale
  } else {
    // Refresh the cache from the exit scan: slots are final, the ready
    // list is empty (nothing schedules during an advance), and the
    // overflow bound survives unchanged.
    RealTime best = list == kNull
                        ? RealTime::max()
                        : RealTime{std::int64_t(slot_tick << kTickShift)};
    if (overflow_count_ > 0) {
      best = std::min(
          best, RealTime{std::int64_t(overflow_min_tick_ << kTickShift)});
    }
    next_due_cache_ = best;
    next_due_valid_ = true;
  }
}

}  // namespace ssbft
