#include "sim/network.hpp"

#include <algorithm>
#include <utility>

#include "harness/trace.hpp"
#include "util/assert.hpp"

namespace ssbft {

Network::Network(EventQueue& queue, std::uint32_t n, DelayModel link_delay,
                 DelayModel proc_delay, ChaosConfig chaos, std::uint64_t seed,
                 DeliverFn deliver, AuthKind auth)
    : queue_(queue),
      n_(n),
      link_delay_(link_delay),
      proc_delay_(proc_delay),
      chaos_(chaos),
      send_seq_(n, 0),
      deliver_(std::move(deliver)),
      auth_(auth, seed) {
  SSBFT_EXPECTS(n_ > 0);
  SSBFT_EXPECTS(chaos_.max_delay >= Duration::zero());
  if (chaos_.max_delay == Duration::zero()) {
    chaos_.max_delay = link_delay_.max * 20;
  }
  // A zero-width link-delay model (link_delay_.max == 0) would degenerate
  // the fallback to rng.next_in(0, 0) — instantaneous, undroppable-window
  // "chaos". Clamp to a positive floor so a chaotic network always has a
  // real delay envelope.
  chaos_.max_delay = std::max(chaos_.max_delay, chaos_delay_floor());
  link_rng_.reserve(n_);
  for (NodeId id = 0; id < n_; ++id) {
    link_rng_.push_back(derive_link_rng(seed, id));
  }
}

void Network::send(NodeId from, NodeId dest, WireMessage msg) {
  // Unicast copies are always direct — a behavior echoing back a received
  // relay copy must not re-disseminate it.
  admit(from, dest, std::move(msg), kRouteDirect);
}

void Network::admit(NodeId from, NodeId dest, WireMessage msg,
                    std::uint8_t route_mark) {
  SSBFT_EXPECTS(dest < n_);
  msg.sender = from;        // authenticated identity (Def. 2.2)
  msg.route = route_mark;   // dissemination duty; outside the signed fields
  auth_.sign(msg);          // tag at origin (binds the sender)
  ++stats_.sent;
  stats_.per_kind[std::size_t(msg.kind)]++;
  stats_.payload_bytes += msg.payload.size();
  tap(TapEvent::Kind::kSent, from, dest, msg);
  route(from, dest, std::move(msg));
}

void Network::send_all(NodeId from, const WireMessage& msg) {
  // Flat: plain per-destination fan-out. The payload pool makes this
  // zero-copy already: each unicast copy of `msg` shares the pooled body by
  // reference, so broadcast needs no separate pooled path (and the chaos /
  // handoff-export machinery has exactly one delivery funnel to reason
  // about). Bookkeeping order (stats, tap, delay draws) per destination is
  // the historical pooled-broadcast order, bit-identical by construction.
  if (!topo_.active()) {
    for (NodeId dest = 0; dest < n_; ++dest) send(from, dest, msg);
    return;
  }
  // Overlay: the origin emits only its own share of the fan-out; receivers
  // of route-marked copies forward the rest at delivery (relay()).
  topology_origin_targets(topo_, n_, from,
                          [&](NodeId dest, std::uint8_t route_mark) {
                            admit(from, dest, msg, route_mark);
                          });
}

void Network::relay(NodeId self, const WireMessage& msg) {
  if (!topo_.active() || msg.route == kRouteDirect) return;
  ++stats_.topology_hops;
  trace::instant(TraceLayer::kWorkload, TraceName::kRelay, self,
                 std::int64_t(msg.route));
  topology_relay_targets(
      topo_, n_, self, msg.sender, msg.route,
      [&](NodeId dest, std::uint8_t route_mark) {
        // Forwarded bytes keep the ORIGIN's sender and tag (a relay cannot
        // re-sign); delay/key draws come from the relay's own streams, and
        // the copy is not re-counted as sent — fanout_msgs tracks it.
        WireMessage copy = msg;
        copy.route = route_mark;
        ++stats_.fanout_msgs;
        route(self, dest, std::move(copy));
      });
}

Duration Network::sample_delay(NodeId from, NodeId dest,
                               const WireMessage& msg) {
  Rng& rng = link_rng_[from];
  Duration delay = link_delay_.sample(rng) + proc_delay_.sample(rng);
  if (oracle_) {
    if (const auto chosen = oracle_(msg.sender, dest, msg, oracle_seq_++)) {
      // Clamp into the non-faulty envelope: the oracle steers the schedule
      // but cannot break the bounded-delay model.
      delay = std::clamp(*chosen, Duration::zero(),
                         link_delay_.max + proc_delay_.max);
    }
  }
  return delay;
}

void Network::inject_raw(NodeId dest, WireMessage msg, Duration delay) {
  SSBFT_EXPECTS(dest < n_);
  ++stats_.forged;
  tap(TapEvent::Kind::kForged, kNoNode, dest, msg);
  trace::instant(TraceLayer::kWorkload, TraceName::kForged, dest,
                 std::int64_t(delay.ns()));
  schedule_delivery(queue_.now() + delay, EventKey{kForgedCreator, forged_seq_++},
                    dest, msg, /*forged=*/true);
}

void Network::route(NodeId from, NodeId dest, WireMessage msg) {
  if (faulty_now()) {
    // Chaos draws come from the AUTHENTIC sender's stream (corruption may
    // rewrite msg.sender, never which stream paid for it).
    Rng& rng = link_rng_[from];
    if (rng.next_bool(chaos_.drop_prob)) {
      ++stats_.dropped;
      tap(TapEvent::Kind::kDropped, msg.sender, dest, msg);
      trace::instant(TraceLayer::kWorkload, TraceName::kChaosDrop, dest);
      return;
    }
    if (rng.next_bool(chaos_.corrupt_prob)) {
      // A faulty network may tamper with anything, including the sender.
      corrupt(from, msg);
      ++stats_.corrupted;
      trace::instant(TraceLayer::kWorkload, TraceName::kChaosCorrupt, dest);
    }
    const Duration delay{rng.next_in(0, chaos_.max_delay.ns())};
    trace::instant(TraceLayer::kWorkload, TraceName::kChaosDelay, dest,
                   std::int64_t(delay.ns()));
    schedule_delivery(queue_.now() + delay, next_key(from), dest, msg,
                      /*forged=*/false);
    if (rng.next_bool(chaos_.duplicate_prob)) {
      ++stats_.duplicated;
      trace::instant(TraceLayer::kWorkload, TraceName::kChaosDuplicate, dest);
      const Duration dup_delay{rng.next_in(0, chaos_.max_delay.ns())};
      schedule_delivery(queue_.now() + dup_delay, next_key(from), dest, msg,
                        /*forged=*/false);
    }
    return;
  }

  // Non-faulty: arrival within δ, processing within π of arrival. The
  // destination handler runs once processing completes. The closure carries
  // the payload inline in the event slab — no allocation, no further copy.
  const Duration delay = sample_delay(from, dest, msg);
  schedule_delivery(queue_.now() + delay, next_key(from), dest, msg,
                    /*forged=*/false);
}

void Network::schedule_delivery(RealTime when, EventKey key, NodeId dest,
                                const WireMessage& msg, bool forged) {
  // Delivery-side verification happens inside the closure (i.e. at the
  // delivery instant) in every variant below: the check is a pure function
  // of message content, so serial, sharded, and migrated runs reject the
  // same copies at the same points of the total order.
  if (!handoff_export_) {
    if (forged) {
      queue_.schedule(when, key, [this, dest, msg] {
        if (!auth_.verify(msg)) {
          reject(dest, msg);
          return;
        }
        relay(dest, msg);  // relay duty precedes local processing
        deliver_(dest, msg);
      });
    } else {
      queue_.schedule(when, key, [this, dest, msg] {
        if (!auth_.verify(msg)) {
          reject(dest, msg);
          return;
        }
        relay(dest, msg);  // relay duty precedes local processing
        ++stats_.delivered;
        tap(TapEvent::Kind::kDelivered, msg.sender, dest, msg);
        deliver_(dest, msg);
      });
    }
    return;
  }
  // Handoff-export mode: the message rides in the tracking slab, the event
  // closure carries only the slot index. Whatever is still in the slab when
  // the run is exported IS the in-flight message set.
  const std::uint32_t index = track(PendingDelivery{when, key, dest, msg, forged});
  queue_.schedule(when, key, [this, index] {
    const PendingDelivery pending = untrack(index);
    if (!auth_.verify(pending.msg)) {
      reject(pending.dest, pending.msg);
      return;
    }
    relay(pending.dest, pending.msg);  // relay duty precedes local processing
    if (!pending.forged) {
      ++stats_.delivered;
      tap(TapEvent::Kind::kDelivered, pending.msg.sender, pending.dest,
          pending.msg);
    }
    deliver_(pending.dest, pending.msg);
  });
}

void Network::reject(NodeId dest, const WireMessage& msg) {
  ++stats_.auth_rejected;
  tap(TapEvent::Kind::kRejected, msg.sender, dest, msg);
  trace::instant(TraceLayer::kWorkload, TraceName::kAuthReject, dest);
}

void Network::enable_handoff_export() {
  SSBFT_EXPECTS(stats_.sent == 0 && stats_.forged == 0);  // before traffic
  handoff_export_ = true;
}

std::uint32_t Network::track(const PendingDelivery& pending) {
  SSBFT_EXPECTS(!exported_);  // traffic after export ⇒ stale snapshot
  if (!pending_free_.empty()) {
    const std::uint32_t index = pending_free_.back();
    pending_free_.pop_back();
    pending_[index] = pending;
    pending_live_[index] = true;
    return index;
  }
  pending_.push_back(pending);
  pending_live_.push_back(true);
  return std::uint32_t(pending_.size() - 1);
}

Network::PendingDelivery Network::untrack(std::uint32_t index) {
  SSBFT_EXPECTS(!exported_);  // dispatch after export ⇒ stale snapshot
  SSBFT_ASSERT(pending_live_[index]);
  pending_live_[index] = false;
  pending_free_.push_back(index);
  return pending_[index];
}

std::vector<Network::PendingDelivery> Network::pending_deliveries() const {
  std::vector<PendingDelivery> out;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_live_[i]) out.push_back(pending_[i]);
  }
  return out;
}

void Network::corrupt(NodeId from, WireMessage& msg) {
  // Any tampering here leaves msg.auth stale, so under AuthKind::kHmac the
  // verifier discards the copy at delivery (auth_rejected) — the faulty
  // network garbles traffic but cannot mint valid tags.
  Rng& rng = link_rng_[from];
  switch (rng.next_below(7)) {
    case 0: msg.kind = MsgKind(rng.next_below(std::uint64_t(MsgKind::kNumKinds))); break;
    case 1: msg.sender = NodeId(rng.next_below(n_)); break;
    case 2: msg.value = rng.next_u64(); break;
    case 3: msg.general = GeneralId{NodeId(rng.next_below(n_))}; break;
    case 4: msg.round = std::uint32_t(rng.next_below(64)); break;
    case 5: msg.auth = rng.next_u64(); break;  // tag tamper
    case 6: {
      // Payload tamper. Shared pool slots are immutable, so the corrupted
      // copy gets its OWN (cloned or fabricated) body; other recipients of
      // the same broadcast keep the original bytes. One draw either way.
      const std::uint64_t r = rng.next_u64();
      if (msg.payload.empty()) {
        msg.payload = Payload{&r, sizeof r};
      } else {
        std::vector<std::uint8_t> bytes(msg.payload.data(),
                                        msg.payload.data() + msg.payload.size());
        bytes[r % bytes.size()] ^= std::uint8_t((r >> 32) | 1);
        msg.payload = Payload{bytes.data(), std::uint32_t(bytes.size())};
      }
      break;
    }
  }
}

void Network::tap(TapEvent::Kind kind, NodeId from, NodeId to,
                  const WireMessage& msg) {
  if (!tap_) return;
  TapEvent event;
  event.kind = kind;
  event.at = queue_.now();
  event.from = from;
  event.to = to;
  event.msg = msg;
  tap_(event);
}
}  // namespace ssbft
