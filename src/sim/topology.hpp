// Topology-aware dissemination for broadcast fan-out.
//
// Network::send_all / Shard::send_all historically fan a broadcast out as n
// independent unicasts — O(n) work at the ORIGIN per broadcast, which is the
// scaling wall for 10k-node worlds (every broadcaster pays n sends, and the
// origin's in-flight burst peaks at n copies). The topology axis keeps the
// destination set identical (every node still receives exactly one copy)
// while moving the fan-out work onto an overlay:
//
//   kFlat       all-to-all, the historical behavior; byte-identical to the
//               pre-topology engine (digest parity is pinned).
//   kFederated  two-level clusters of `cluster_size` contiguous nodes. The
//               origin sends direct copies to its own cluster and one
//               representative copy to the FIRST node of every other
//               cluster; each representative forwards direct copies to its
//               cluster-mates. Origin out-degree: cluster_size + n/cluster
//               − 1 instead of n; every copy travels ≤ 2 hops.
//   kGossip     a fanout-ary relay tree over the virtual ring rooted at the
//               origin (heap numbering: position v forwards to v·f+1 …
//               v·f+f). Origin out-degree 1, relay out-degree ≤ fanout,
//               depth ⌈log_f n⌉.
//
// Relaying is a NETWORK-layer overlay, not a protocol change: a forwarded
// copy preserves the origin's authenticated sender and tag (the relay
// forwards bytes, it cannot re-sign), and relay nodes forward faithfully
// even when their behavior is Byzantine — the adversary model still attacks
// through protocol messages, not through the simulated switch fabric. The
// WireMessage::route marker carries the relay duty; it is outside the
// authenticated field set and outside run_digest.
//
// Relayed dissemination stretches the effective delivery bound: a copy may
// traverse up to 2 (federated) or ⌈log_f n⌉ (gossip) sampled link+proc
// delays. The protocol's Φ = 8d budget absorbs the federated hop; gossip at
// depth is a bandwidth/latency trade the harness exposes but does not hide
// (docs/ARCHITECTURE.md, "Topology & dissemination").
#pragma once

#include <cstdint>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace ssbft {

enum class Topology : std::uint8_t {
  kFlat,
  kFederated,
  kGossip,
};

/// Number of Topology enumerators (test_enums checks to_string coverage).
inline constexpr std::uint32_t kTopologyCount = 3;

[[nodiscard]] const char* to_string(Topology topology);

/// WireMessage::route markers. kRouteDirect copies are final deliveries;
/// the other two carry relay duty executed by the receiver at the delivery
/// instant (before its behavior sees the copy).
inline constexpr std::uint8_t kRouteDirect = 0;     // no relay duty
inline constexpr std::uint8_t kRouteGossip = 1;     // forward to tree children
inline constexpr std::uint8_t kRouteFederated = 2;  // rep: fan to cluster

struct TopologyConfig {
  Topology kind = Topology::kFlat;
  /// kFederated: nodes per cluster (contiguous ids; must divide n).
  std::uint32_t cluster_size = 0;
  /// kGossip: relay-tree arity (≥ 1).
  std::uint32_t fanout = 0;

  [[nodiscard]] bool active() const { return kind != Topology::kFlat; }

  /// Validate against a world of `n` nodes and normalize. Malformed knobs
  /// (federated cluster_size of 0 or not dividing n; gossip fanout of 0)
  /// are hard precondition failures — a misconfigured overlay must never
  /// silently run. DEGENERATE-but-sound knobs degrade to kFlat, never to
  /// wrongness: one cluster spanning the world, single-node clusters, or a
  /// gossip fanout reaching everyone in one hop are all just flat fan-out
  /// with extra steps.
  [[nodiscard]] TopologyConfig resolved(std::uint32_t n) const {
    TopologyConfig out = *this;
    switch (kind) {
      case Topology::kFlat:
        out.cluster_size = 0;
        out.fanout = 0;
        return out;
      case Topology::kFederated:
        SSBFT_EXPECTS(cluster_size > 0);
        SSBFT_EXPECTS(n % cluster_size == 0);
        out.fanout = 0;
        if (cluster_size <= 1 || cluster_size >= n) return TopologyConfig{};
        return out;
      case Topology::kGossip:
        SSBFT_EXPECTS(fanout > 0);
        out.cluster_size = 0;
        if (n <= 1 || fanout >= n - 1) return TopologyConfig{};
        return out;
    }
    return TopologyConfig{};
  }
};

/// Origin fan-out of one send_all under `topo` (already resolved): invoke
/// `emit(dest, route)` once per copy the ORIGIN itself puts on the wire, in
/// ascending destination order (determinism: the emission order is part of
/// the origin's key/stream draw order). kFlat emits the historical
/// all-to-all loop.
template <class Emit>
void topology_origin_targets(const TopologyConfig& topo, std::uint32_t n,
                             NodeId from, Emit&& emit) {
  switch (topo.kind) {
    case Topology::kFlat:
      for (NodeId dest = 0; dest < n; ++dest) emit(dest, kRouteDirect);
      return;
    case Topology::kGossip:
      // One self-addressed copy roots the relay tree: the origin occupies
      // virtual position 0 and forwards to its children on delivery, so
      // origin fan-out work is O(1) per broadcast.
      emit(from, kRouteGossip);
      return;
    case Topology::kFederated: {
      const NodeId own_first = from - (from % topo.cluster_size);
      for (NodeId dest = 0; dest < n; ++dest) {
        if (dest >= own_first && dest < own_first + topo.cluster_size) {
          emit(dest, kRouteDirect);  // own cluster (self included): direct
        } else if (dest % topo.cluster_size == 0) {
          emit(dest, kRouteFederated);  // other cluster's representative
        }
      }
      return;
    }
  }
}

/// Relay duty of node `self` upon delivering a copy with route marker
/// `route` from authenticated origin `origin`: invoke `emit(dest, route)`
/// per forwarded copy, in deterministic order. A kRouteDirect copy (or a
/// marker that does not match the configured topology — possible only for
/// fault-injector plants) carries no duty.
template <class Emit>
void topology_relay_targets(const TopologyConfig& topo, std::uint32_t n,
                            NodeId self, NodeId origin, std::uint8_t route,
                            Emit&& emit) {
  if (route == kRouteGossip && topo.kind == Topology::kGossip) {
    // Heap-numbered fanout-ary tree over the virtual ring rooted at the
    // origin: self sits at position v, forwards to v·f+1 … v·f+f. The `% n`
    // clamp keeps a forged origin (e.g. kNoNode) deterministic and bounded.
    const std::uint64_t root = origin % n;
    const std::uint64_t v = (std::uint64_t(self) + n - root) % n;
    for (std::uint32_t j = 1; j <= topo.fanout; ++j) {
      const std::uint64_t child = v * topo.fanout + j;
      if (child >= n) break;
      emit(NodeId((root + child) % n), kRouteGossip);
    }
    return;
  }
  if (route == kRouteFederated && topo.kind == Topology::kFederated) {
    // Representative copy: fan direct copies to the cluster-mates. Self
    // keeps its own copy (delivered normally after this duty runs).
    const NodeId own_first = self - (self % topo.cluster_size);
    for (NodeId dest = own_first; dest < own_first + topo.cluster_size;
         ++dest) {
      if (dest != self) emit(dest, kRouteDirect);
    }
  }
}

}  // namespace ssbft
