#include "sim/duty_world.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "harness/trace.hpp"
#include "util/assert.hpp"

namespace ssbft {

DutyWorld::DutyWorld(WorldConfig config,
                     std::vector<ChaosWindow> windows)
    : WorldBase(config), windows_(std::move(windows)) {
  SSBFT_EXPECTS(!windows_.empty());
  // The sharded segments must actually shard, or the wrapper is pointless —
  // the Cluster builds a plain serial World with the same window schedule
  // otherwise.
  SSBFT_EXPECTS(ShardWorld::effective_shards(config_) > 1);
  for (const ChaosWindow& w : windows_) {
    SSBFT_EXPECTS(w.start < w.end);
    // A window's start is a sharded→serial cut (skipped when the run opens
    // inside the window), its end a serial→sharded cut.
    if (w.start > RealTime::zero()) {
      SSBFT_EXPECTS(cuts_.empty() || w.start > cuts_.back());  // pre-merged
      cuts_.push_back(w.start);
    }
    cuts_.push_back(w.end);
  }
#if SSBFT_TRACING
  if (config_.tracer != nullptr) {
    // The whole chaos schedule is known up front; emit the window spans now
    // so the timeline shows them even if the run stops early. The writer
    // auto-closes / clips nothing here — both edges are real schedule times.
    TraceBuffer* buf = config_.tracer->keyed_buffer(kLaneDuty);
    for (const ChaosWindow& w : windows_) {
      buf->push(TraceRecord{w.start.ns(), 0, 0, kLaneDuty,
                            TraceName::kChaosWindow, TraceKind::kSpanBegin,
                            TraceLayer::kEngine});
      buf->push(TraceRecord{w.end.ns(), 0, 0, kLaneDuty,
                            TraceName::kChaosWindow, TraceKind::kSpanEnd,
                            TraceLayer::kEngine});
    }
  }
#endif
  if (windows_.front().start == RealTime::zero()) {
    serial_ = std::make_unique<World>(config_);
    // Before ANY traffic: in-flight messages must be exportable at the cut.
    serial_->enable_handoff_export();
    serial_->network().set_faulty_windows(windows_);
  } else {
    // No previous segment to rate-estimate from: the opening sharded
    // segment always uses the configured count.
    sharded_ = std::make_unique<ShardWorld>(config_);
    sharded_->enable_handoff_export();
    segment_shards_.push_back(sharded_->shard_count());
  }
}

DutyWorld::~DutyWorld() = default;

WorldBase& DutyWorld::active() {
  return sharded_ ? static_cast<WorldBase&>(*sharded_)
                  : static_cast<WorldBase&>(*serial_);
}

const WorldBase& DutyWorld::active() const {
  return sharded_ ? static_cast<const WorldBase&>(*sharded_)
                  : static_cast<const WorldBase&>(*serial_);
}

void DutyWorld::set_behavior(NodeId id,
                             std::unique_ptr<NodeBehavior> behavior) {
  active().set_behavior(id, std::move(behavior));
}

NodeBehavior* DutyWorld::behavior(NodeId id) { return active().behavior(id); }

void DutyWorld::start() { active().start(); }

void DutyWorld::fire_action(std::uint64_t seq) {
  auto node = actions_.extract(seq);
  SSBFT_ASSERT(!node.empty());
  node.mapped().action();
}

void DutyWorld::migrate_to(RealTime cut) {
  ++migrations_;
  // More boundaries ahead ⇒ the adopting engine must itself track in-flight
  // deliveries for the NEXT export; on the final segment the tracking slab
  // (pure overhead by then) stays off.
  const bool more = cursor_ < cuts_.size();
  [[maybe_unused]] const bool to_sharded = serial_ != nullptr;
  // Drain the retiring segment first (that is dispatch work, not switch
  // overhead), then clock the export → adopt → re-register span.
  if (serial_) {
    // Every event strictly before the cut dispatches here (chaos sends all
    // originate inside the window, hence before the cut). What remains in
    // flight fires at or after it.
    serial_->run_before(cut);
  } else {
    sharded_->run_before(cut);
  }
  const auto wall_start = std::chrono::steady_clock::now();
  auto wall_export = wall_start;
  if (serial_) {
    WorldMigration m = serial_->export_migration();
    serial_.reset();
    wall_export = std::chrono::steady_clock::now();
    // Adaptive policies size the stabilization segment's shard count from
    // the chaos segment's event rate; static keeps the configured count.
    WorldConfig wc = config_;
    wc.shards = segment_shard_count(cut, m.dispatched);
    sharded_ = std::make_unique<ShardWorld>(std::move(wc), std::move(m), more);
    segment_shards_.push_back(sharded_->shard_count());
  } else {
    // Reverse direction: merge the shards back into one snapshot, adopt
    // serially for the next window.
    sched_total_ += sharded_->sched_stats();
    WorldMigration m = sharded_->export_migration();
    sharded_.reset();
    wall_export = std::chrono::steady_clock::now();
    serial_ = std::make_unique<World>(config_, std::move(m), more);
    // Window membership is decided at SEND time against absolute real time,
    // so the full schedule transfers as-is; the cursor re-advances cheaply.
    serial_->network().set_faulty_windows(windows_);
  }
  // Re-register the surviving workload actions under their ORIGINAL keys —
  // identical (when, key) dispatch slots, so the switch stays invisible to
  // an all-serial run. The originals stay in the map: a still-pending
  // action may have to survive the NEXT migration too.
  for (const auto& [seq, a] : actions_) {
    auto wrapper = [this, seq = seq] { fire_action(seq); };
    if (serial_) {
      serial_->queue().schedule(a.when, a.key, std::move(wrapper));
    } else {
      sharded_->schedule_keyed(a.when, a.key, a.target, std::move(wrapper));
    }
  }
  const auto wall_end = std::chrono::steady_clock::now();
  const auto ns_between = [](auto from, auto to) {
    return std::int64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            to - from)
                            .count());
  };
  migration_ns_ += std::uint64_t(ns_between(wall_start, wall_end));
#if SSBFT_TRACING
  if (config_.tracer != nullptr) {
    // The migration is a simulation-time instant (everything lands at the
    // cut), so the spans are zero-width on the timeline; the wall-clock cost
    // of each half rides in the args instead.
    TraceBuffer* buf = config_.tracer->keyed_buffer(kLaneDuty);
    const TraceName name = to_sharded ? TraceName::kMigrateToSharded
                                      : TraceName::kMigrateToSerial;
    const std::int64_t cut_ns = cut.ns();
    buf->push(TraceRecord{cut_ns, 0, ns_between(wall_start, wall_end),
                          kLaneDuty, name, TraceKind::kSpanBegin,
                          TraceLayer::kEngine});
    buf->push(TraceRecord{cut_ns, 0, ns_between(wall_start, wall_export),
                          kLaneDuty, TraceName::kMigrateExport,
                          TraceKind::kSpanBegin, TraceLayer::kEngine});
    buf->push(TraceRecord{cut_ns, 0, 0, kLaneDuty, TraceName::kMigrateExport,
                          TraceKind::kSpanEnd, TraceLayer::kEngine});
    buf->push(TraceRecord{cut_ns, 0, ns_between(wall_export, wall_end),
                          kLaneDuty, TraceName::kMigrateAdopt,
                          TraceKind::kSpanBegin, TraceLayer::kEngine});
    buf->push(TraceRecord{cut_ns, 0, 0, kLaneDuty, TraceName::kMigrateAdopt,
                          TraceKind::kSpanEnd, TraceLayer::kEngine});
    buf->push(TraceRecord{cut_ns, 0, 0, kLaneDuty, name, TraceKind::kSpanEnd,
                          TraceLayer::kEngine});
  }
#endif
  // Rate-estimation bookkeeping: the next segment starts at this cut.
  segment_dispatch_base_ = dispatched();
  segment_start_ = cut;
}

std::uint32_t DutyWorld::segment_shard_count(RealTime cut,
                                             std::uint64_t dispatched_now) {
  if (config_.shard_sched == ShardSched::kStatic) return config_.shards;
  const std::uint32_t max_shards = ShardWorld::effective_shards(config_);
  const std::int64_t elapsed = cut.ns() - segment_start_.ns();
  // Upcoming segment length: to the next cut, or (open-ended tail) assume
  // the previous segment's length. All inputs are simulation state, so the
  // choice is identical on every host — determinism survives.
  const std::int64_t upcoming =
      (cursor_ < cuts_.size() ? cuts_[cursor_].ns() : cut.ns() + elapsed) -
      cut.ns();
  if (elapsed <= 0 || upcoming <= 0) return max_shards;
  const double rate =
      double(dispatched_now - segment_dispatch_base_) / double(elapsed);
  const double expected = rate * double(upcoming);
  const double ideal = std::ceil(expected / double(kEventsPerSegmentShard));
  return std::uint32_t(
      std::clamp(ideal, 1.0, double(max_shards)));
}

void DutyWorld::cross_cuts_until(RealTime t) {
  while (cursor_ < cuts_.size() && cuts_[cursor_] <= t) {
    migrate_to(cuts_[cursor_++]);
  }
}

void DutyWorld::run_until(RealTime t) {
  cross_cuts_until(t);
  active().run_until(t);
}

void DutyWorld::run_to_quiescence(RealTime hard_deadline) {
  cross_cuts_until(hard_deadline);
  active().run_to_quiescence(hard_deadline);
}

RealTime DutyWorld::now() const { return active().now(); }

LocalTime DutyWorld::local_now(NodeId id) const {
  return active().local_now(id);
}

RealTime DutyWorld::real_at(NodeId id, LocalTime tau) const {
  return active().real_at(id, tau);
}

DriftingClock& DutyWorld::clock(NodeId id) { return active().clock(id); }

Rng& DutyWorld::rng() { return active().rng(); }

Logger& DutyWorld::log() { return active().log(); }

void DutyWorld::scramble_node(NodeId id) { active().scramble_node(id); }

void DutyWorld::schedule(RealTime when, NodeId target,
                         std::function<void()> action) {
  SSBFT_EXPECTS(target < config_.n);
  // Either engine mints the next world-channel seq for the wrapper event;
  // register the action under that seq so it can follow every remaining
  // migration. The wrapper adds no draws, no extra events, and the
  // identical key — invisible to an all-serial run.
  const std::uint64_t seq =
      serial_ ? serial_->queue().global_seq() : sharded_->world_seq();
  auto [it, inserted] = actions_.emplace(
      seq, WorldMigration::PendingAction{when, EventKey{kGlobalCreator, seq},
                                         target, std::move(action)});
  SSBFT_ASSERT(inserted);
  active().schedule(when, target, [this, seq] { fire_action(seq); });
}

void DutyWorld::inject_raw(NodeId dest, WireMessage msg, Duration delay) {
  active().inject_raw(dest, msg, delay);
}

NetworkStats DutyWorld::net_stats() const { return active().net_stats(); }

std::uint64_t DutyWorld::dispatched() const { return active().dispatched(); }

Network& DutyWorld::network() {
  SSBFT_EXPECTS(serial_ != nullptr);  // sharded segment: no single Network
  return serial_->network();
}

EventQueue& DutyWorld::queue() {
  SSBFT_EXPECTS(serial_ != nullptr);  // sharded segment: no single queue
  return serial_->queue();
}

}  // namespace ssbft
