#include "sim/duty_world.hpp"

#include <utility>

#include "util/assert.hpp"

namespace ssbft {

DutyWorld::DutyWorld(WorldConfig config,
                     std::vector<ChaosWindow> windows)
    : WorldBase(config), windows_(std::move(windows)) {
  SSBFT_EXPECTS(!windows_.empty());
  // The sharded segments must actually shard, or the wrapper is pointless —
  // the Cluster builds a plain serial World with the same window schedule
  // otherwise.
  SSBFT_EXPECTS(ShardWorld::effective_shards(config_) > 1);
  for (const ChaosWindow& w : windows_) {
    SSBFT_EXPECTS(w.start < w.end);
    // A window's start is a sharded→serial cut (skipped when the run opens
    // inside the window), its end a serial→sharded cut.
    if (w.start > RealTime::zero()) {
      SSBFT_EXPECTS(cuts_.empty() || w.start > cuts_.back());  // pre-merged
      cuts_.push_back(w.start);
    }
    cuts_.push_back(w.end);
  }
  if (windows_.front().start == RealTime::zero()) {
    serial_ = std::make_unique<World>(config_);
    // Before ANY traffic: in-flight messages must be exportable at the cut.
    serial_->enable_handoff_export();
    serial_->network().set_faulty_windows(windows_);
  } else {
    sharded_ = std::make_unique<ShardWorld>(config_);
    sharded_->enable_handoff_export();
  }
}

DutyWorld::~DutyWorld() = default;

WorldBase& DutyWorld::active() {
  return sharded_ ? static_cast<WorldBase&>(*sharded_)
                  : static_cast<WorldBase&>(*serial_);
}

const WorldBase& DutyWorld::active() const {
  return sharded_ ? static_cast<const WorldBase&>(*sharded_)
                  : static_cast<const WorldBase&>(*serial_);
}

void DutyWorld::set_behavior(NodeId id,
                             std::unique_ptr<NodeBehavior> behavior) {
  active().set_behavior(id, std::move(behavior));
}

NodeBehavior* DutyWorld::behavior(NodeId id) { return active().behavior(id); }

void DutyWorld::start() { active().start(); }

void DutyWorld::fire_action(std::uint64_t seq) {
  auto node = actions_.extract(seq);
  SSBFT_ASSERT(!node.empty());
  node.mapped().action();
}

void DutyWorld::migrate_to(RealTime cut) {
  ++migrations_;
  // More boundaries ahead ⇒ the adopting engine must itself track in-flight
  // deliveries for the NEXT export; on the final segment the tracking slab
  // (pure overhead by then) stays off.
  const bool more = cursor_ < cuts_.size();
  if (serial_) {
    // Drain the serial chaos segment: every event strictly before the cut
    // dispatches here (chaos sends all originate inside the window, hence
    // before the cut). What remains in flight fires at or after it.
    serial_->run_before(cut);
    WorldMigration m = serial_->export_migration();
    serial_.reset();
    sharded_ = std::make_unique<ShardWorld>(config_, std::move(m), more);
  } else {
    // Reverse direction: drain the sharded stabilization segment, merge the
    // shards back into one snapshot, adopt serially for the next window.
    sharded_->run_before(cut);
    WorldMigration m = sharded_->export_migration();
    sharded_.reset();
    serial_ = std::make_unique<World>(config_, std::move(m), more);
    // Window membership is decided at SEND time against absolute real time,
    // so the full schedule transfers as-is; the cursor re-advances cheaply.
    serial_->network().set_faulty_windows(windows_);
  }
  // Re-register the surviving workload actions under their ORIGINAL keys —
  // identical (when, key) dispatch slots, so the switch stays invisible to
  // an all-serial run. The originals stay in the map: a still-pending
  // action may have to survive the NEXT migration too.
  for (const auto& [seq, a] : actions_) {
    auto wrapper = [this, seq = seq] { fire_action(seq); };
    if (serial_) {
      serial_->queue().schedule(a.when, a.key, std::move(wrapper));
    } else {
      sharded_->schedule_keyed(a.when, a.key, a.target, std::move(wrapper));
    }
  }
}

void DutyWorld::cross_cuts_until(RealTime t) {
  while (cursor_ < cuts_.size() && cuts_[cursor_] <= t) {
    migrate_to(cuts_[cursor_++]);
  }
}

void DutyWorld::run_until(RealTime t) {
  cross_cuts_until(t);
  active().run_until(t);
}

void DutyWorld::run_to_quiescence(RealTime hard_deadline) {
  cross_cuts_until(hard_deadline);
  active().run_to_quiescence(hard_deadline);
}

RealTime DutyWorld::now() const { return active().now(); }

LocalTime DutyWorld::local_now(NodeId id) const {
  return active().local_now(id);
}

RealTime DutyWorld::real_at(NodeId id, LocalTime tau) const {
  return active().real_at(id, tau);
}

DriftingClock& DutyWorld::clock(NodeId id) { return active().clock(id); }

Rng& DutyWorld::rng() { return active().rng(); }

Logger& DutyWorld::log() { return active().log(); }

void DutyWorld::scramble_node(NodeId id) { active().scramble_node(id); }

void DutyWorld::schedule(RealTime when, NodeId target,
                         std::function<void()> action) {
  SSBFT_EXPECTS(target < config_.n);
  // Either engine mints the next world-channel seq for the wrapper event;
  // register the action under that seq so it can follow every remaining
  // migration. The wrapper adds no draws, no extra events, and the
  // identical key — invisible to an all-serial run.
  const std::uint64_t seq =
      serial_ ? serial_->queue().global_seq() : sharded_->world_seq();
  auto [it, inserted] = actions_.emplace(
      seq, WorldMigration::PendingAction{when, EventKey{kGlobalCreator, seq},
                                         target, std::move(action)});
  SSBFT_ASSERT(inserted);
  active().schedule(when, target, [this, seq] { fire_action(seq); });
}

void DutyWorld::inject_raw(NodeId dest, WireMessage msg, Duration delay) {
  active().inject_raw(dest, msg, delay);
}

NetworkStats DutyWorld::net_stats() const { return active().net_stats(); }

std::uint64_t DutyWorld::dispatched() const { return active().dispatched(); }

Network& DutyWorld::network() {
  SSBFT_EXPECTS(serial_ != nullptr);  // sharded segment: no single Network
  return serial_->network();
}

EventQueue& DutyWorld::queue() {
  SSBFT_EXPECTS(serial_ != nullptr);  // sharded segment: no single queue
  return serial_->queue();
}

}  // namespace ssbft
